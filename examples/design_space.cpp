/**
 * @file
 * Design-space / stability example: evaluate a "proposed optimization"
 * (halving the L1 D-cache load-to-use latency) the way the paper's
 * Section 5.3 recommends — across several simulator configurations at
 * once — and see whether the conclusion is stable.
 *
 * A researcher using only one simulator would report a single number;
 * this example shows how much that number moves across the validated
 * model, a stripped model, and the abstract RUU model.
 */

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "validate/machines.hh"
#include "validate/metrics.hh"
#include "workloads/macro.hh"

using namespace simalpha;
using namespace simalpha::workloads;
using namespace simalpha::validate;

int
main()
{
    setQuiet(true);
    std::vector<Program> suite = spec2000Suite();

    const char *configs[] = {"sim-alpha", "sim-alpha-no-luse",
                             "sim-stripped", "sim-outorder"};

    std::printf("Proposed optimization: 3-cycle -> 1-cycle L1 D-cache\n");
    std::printf("(harmonic-mean IPC over the ten macrobenchmarks)\n\n");
    std::printf("%-20s %10s %10s %10s\n", "simulator", "base",
                "optimized", "gain");
    std::printf("----------------------------------------------------\n");

    for (const char *cfg : configs) {
        std::vector<RunResult> base, fast;
        for (const Program &prog : suite) {
            base.push_back(
                makeMachine(cfg, Optimization::None)->run(prog));
            fast.push_back(
                makeMachine(cfg, Optimization::FastL1)->run(prog));
        }
        double b = aggregateIpc(base);
        double f = aggregateIpc(fast);
        std::printf("%-20s %10.3f %10.3f %+9.2f%%\n", cfg, b, f,
                    (f - b) / b * 100.0);
    }

    std::printf("\nA stable optimization shows similar gains down the "
                "column; a large spread\nmeans the conclusion depends "
                "on the simulator, not the idea (Section 5.3).\n");
    return 0;
}

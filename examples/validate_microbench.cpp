/**
 * @file
 * Validation-workflow example: pick one microbenchmark (by name, from
 * the command line) and run it across the four machines of the paper's
 * Table 2 — the golden reference, the buggy first-cut simulator, the
 * validated simulator, and the abstract RUU machine — then show the
 * IPCs, the percent CPI errors, and what a DCPI-style sampled
 * measurement of the reference would have reported.
 *
 * Usage:
 *   ./build/examples/validate_microbench [bench-name]
 *   ./build/examples/validate_microbench C-R
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "validate/dcpi.hh"
#include "validate/machines.hh"
#include "validate/metrics.hh"
#include "workloads/microbench.hh"

using namespace simalpha;
using namespace simalpha::workloads;
using namespace simalpha::validate;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string which = argc > 1 ? argv[1] : "C-R";

    auto suite = microbenchSuite();
    auto names = microbenchNames();
    const Program *prog = nullptr;
    for (std::size_t i = 0; i < names.size(); i++)
        if (names[i] == which)
            prog = &suite[i];
    if (!prog) {
        std::printf("unknown benchmark '%s'; choose one of:\n",
                    which.c_str());
        for (const std::string &n : names)
            std::printf("  %s\n", n.c_str());
        return 1;
    }

    std::printf("validating '%s' (%zu static instructions)\n\n",
                which.c_str(), prog->text.size());

    RunResult ref = makeMachine("ds10l")->run(*prog);
    std::printf("%-14s IPC %6.3f  (%llu insts in %llu cycles)\n",
                "ds10l", ref.ipc(),
                (unsigned long long)ref.instsCommitted,
                (unsigned long long)ref.cycles);

    for (const char *name :
         {"sim-initial", "sim-alpha", "sim-outorder"}) {
        RunResult r = makeMachine(name)->run(*prog);
        std::printf("%-14s IPC %6.3f  error %+7.1f%%\n", name, r.ipc(),
                    percentErrorCpi(ref, r));
    }

    // What would DCPI have reported for the reference machine?
    std::printf("\nDCPI-style measurement of the reference "
                "(sampled, Section 2.3):\n");
    for (Cycle interval : {Cycle(1000), Cycle(40000), Cycle(64000)}) {
        DcpiParams dp;
        dp.samplingInterval = interval;
        DcpiMeasurement m = measure(ref, dp);
        std::printf("  interval %6llu: reported IPC %6.3f "
                    "(measurement error %+5.2f%%)\n",
                    (unsigned long long)interval, m.reportedIpc,
                    m.cycleError * 100.0);
    }
    return 0;
}

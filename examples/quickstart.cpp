/**
 * @file
 * Quickstart: assemble a small MiniAlpha program, run it on the
 * validated sim-alpha configuration, and print the timing result plus a
 * few machine event counters.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/core.hh"
#include "isa/assembler.hh"

using namespace simalpha;

int
main()
{
    // A loop that sums an in-cache array: 64 elements, 10,000 passes.
    ProgramBuilder b("quickstart-sum");
    const Addr array = Program::kDataBase;
    for (int i = 0; i < 64; i++)
        b.dataWord(array + Addr(8 * i), RegVal(i));

    b.lda(R(10), 1);                    // constant 1
    b.lda(R(9), 10000);                 // outer iterations
    b.label("outer");
    b.lda(R(20), 0x14000);              // array base (high part)
    b.lda(R(11), 16);
    b.sll(R(20), R(11), R(20));         // r20 = 0x140000000
    b.lda(R(21), 64);                   // element count
    b.label("inner");
    b.ldq(R(1), 0, R(20));
    b.addq(R(7), R(1), R(7));           // accumulate
    b.lda(R(20), 8, R(20));             // advance
    b.subq(R(21), R(10), R(21));
    b.bne(R(21), "inner");
    b.subq(R(9), R(10), R(9));
    b.bne(R(9), "outer");
    b.halt();
    Program prog = b.finish();

    // Run it on the validated simulator.
    AlphaCore machine(AlphaCoreParams::simAlpha());
    RunResult res = machine.run(prog);

    std::printf("program:  %s\n", res.program.c_str());
    std::printf("machine:  %s\n", res.machine.c_str());
    std::printf("insts:    %llu\n",
                (unsigned long long)res.instsCommitted);
    std::printf("cycles:   %llu\n", (unsigned long long)res.cycles);
    std::printf("IPC:      %.3f\n", res.ipc());
    std::printf("\nselected events:\n");
    for (const char *ev : {"branch_mispredicts", "slot_misses",
                           "replay_traps", "load_use_replays",
                           "map_stalls", "way_mispredicts"}) {
        std::printf("  %-22s %llu\n", ev,
                    (unsigned long long)machine.statGroup().get(ev));
    }
    std::printf("  %-22s %llu / %llu\n", "l1d hits/misses",
                (unsigned long long)machine.memorySystem()->dcache().hits(),
                (unsigned long long)
                    machine.memorySystem()->dcache().misses());
    return 0;
}

/**
 * @file
 * Bug-hunt example: re-enacts the Section 3.4 debugging methodology.
 *
 * Start from the buggy first-cut simulator (sim-initial), pick the
 * microbenchmark with the worst error, and use event-count comparison
 * (the Bose & Conte technique of Section 6) to localize which
 * mechanism diverges from the reference. Then fix one injected bug at a
 * time and watch the mean error fall — the paper's 74.7% -> 2% journey
 * in miniature.
 */

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "core/core.hh"
#include "validate/events.hh"
#include "validate/machines.hh"
#include "validate/metrics.hh"
#include "workloads/microbench.hh"

using namespace simalpha;
using namespace simalpha::workloads;
using namespace simalpha::validate;

namespace {

double
meanSuiteError(const AlphaCoreParams &params,
               const std::vector<Program> &suite,
               const std::vector<RunResult> &refs)
{
    std::vector<double> errs;
    for (std::size_t i = 0; i < suite.size(); i++) {
        AlphaCore sim(params);
        errs.push_back(percentErrorCpi(refs[i], sim.run(suite[i])));
    }
    return meanAbsoluteError(errs);
}

} // namespace

int
main()
{
    setQuiet(true);
    // A fast subset of the validation suite (control + one of each).
    std::vector<Program> suite;
    suite.push_back(controlConditionalA({}));
    suite.push_back(controlSwitch(1, {}));
    suite.push_back(executeDependentMul({}));
    suite.push_back(memoryDependent({}));

    std::vector<RunResult> refs;
    for (const Program &p : suite) {
        AlphaCore golden(AlphaCoreParams::golden());
        refs.push_back(golden.run(p));
    }

    // Step 1: measure the buggy simulator and find the worst bench.
    std::printf("step 1: where does sim-initial hurt?\n");
    AlphaCoreParams buggy = AlphaCoreParams::simInitial();
    std::size_t worst = 0;
    double worst_err = 0.0;
    for (std::size_t i = 0; i < suite.size(); i++) {
        AlphaCore sim(buggy);
        double e = percentErrorCpi(refs[i], sim.run(suite[i]));
        std::printf("  %-8s %+8.1f%%\n", suite[i].name.c_str(), e);
        if (std::abs(e) > std::abs(worst_err)) {
            worst_err = e;
            worst = i;
        }
    }

    // Step 2: event-count comparison on the worst bench (Section 6).
    std::printf("\nstep 2: event divergences on %s\n",
                suite[worst].name.c_str());
    AlphaCore golden(AlphaCoreParams::golden());
    golden.run(suite[worst]);
    AlphaCore sim(buggy);
    sim.run(suite[worst]);
    auto divs = compareEvents(golden, sim, 0.05);
    std::printf("%s", formatDivergences(divs, 6).c_str());

    // Step 3: fix the injected bugs one at a time, tracking the mean.
    std::printf("\nstep 3: fix one bug at a time "
                "(mean |error| over the subset)\n");
    std::printf("  %-38s %8.1f%%\n", "all bugs in",
                meanSuiteError(buggy, suite, refs));

    struct Fix
    {
        const char *label;
        void (*apply)(AlphaCoreParams &);
    };
    const Fix fixes[] = {
        {"+ early branch recovery (slot adder)",
         [](AlphaCoreParams &p) { p.bugLateBranchRecovery = false; }},
        {"+ speculative predictor update",
         [](AlphaCoreParams &p) { p.speculativeUpdate = true; }},
        {"+ correct way-predictor charge",
         [](AlphaCoreParams &p) { p.bugExtraWayPredCycle = false; }},
        {"+ 10-cycle jump flush",
         [](AlphaCoreParams &p) { p.bugUnderchargedJump = false; }},
        {"+ 7-cycle multiply latency",
         [](AlphaCoreParams &p) { p.bugShortMulLatency = false; }},
        {"+ full trap-address compare",
         [](AlphaCoreParams &p) { p.bugMaskedLoadTrapAddr = false; }},
        {"+ remaining fixes (full sim-alpha)",
         [](AlphaCoreParams &p) { p = AlphaCoreParams::simAlpha(); }},
    };
    for (const Fix &fix : fixes) {
        fix.apply(buggy);
        std::printf("  %-38s %8.1f%%\n", fix.label,
                    meanSuiteError(buggy, suite, refs));
    }

    std::printf("\nThis is the paper's Section 3.4 arc: each fix is one "
                "of the catalogued\nmodeling/specification/abstraction "
                "errors, and the validation suite\nquantifies its "
                "contribution.\n");
    return 0;
}

/**
 * @file
 * Checkpointed, sampled simulation: the subsystem that retires the
 * instruction caps on the detailed tables.
 *
 * The functional emulator executes ~3 orders of magnitude faster than
 * the detailed core (BENCH_perf.json), so a long workload is simulated
 * the way the paper's §2.3 sampling-error methodology assumes: fast-
 * forward architecturally, drop checkpoints of full architectural
 * state at planned offsets, and run the detailed model only on short
 * measurement windows restored from those checkpoints — each warmed up
 * before measurement, the per-window IPCs aggregated into a mean and a
 * Student-t confidence interval that campaigns surface as an explicit
 * sampling-error bar.
 *
 * Checkpoints are architectural state only (registers, PC, retired-
 * instruction count, dirty memory) and therefore machine-independent:
 * every timing model restores from the same blob. They are serialized
 * as single-line text blobs into the existing content-addressed result
 * store (src/store/), keyed by the *program's* content hash plus the
 * instruction offset — so every shard, isolation mode, and host
 * pointed at one store shares one set of checkpoints, and the store's
 * gc/export/import/integrity machinery applies to them unchanged.
 */

#ifndef SIMALPHA_CHECKPOINT_CHECKPOINT_HH
#define SIMALPHA_CHECKPOINT_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/emulator.hh"
#include "store/store.hh"

namespace simalpha {
namespace checkpoint {

// -------------------------------------------------------------------
// Serialization: one checkpoint ⇄ one single-line text blob
// -------------------------------------------------------------------

/**
 * Serialize a checkpoint as one line of text (the store's publish()
 * rejects embedded newlines, so the format is a line by construction):
 *
 *   ckpt1 pc=<hex> seq=<dec> halted=<0|1> regs=<64 hex words> \
 *       mem=<addr:word;...>
 *
 * Memory words are sorted by address, so equal states serialize to
 * equal bytes regardless of page-table iteration order.
 */
std::string serializeCheckpoint(const Checkpoint &ckpt);

/** Parse serializeCheckpoint() output. Returns false with *error
 *  filled on any malformed input (wrong magic, bad field, trailing
 *  garbage) — a corrupt blob must read as a miss, never as state. */
bool parseCheckpoint(const std::string &text, Checkpoint *out,
                     std::string *error);

// -------------------------------------------------------------------
// Store keying: program content hash × instruction offset
// -------------------------------------------------------------------

/**
 * FNV-1a content hash of a program (name, entry PC, every text
 * instruction, every initial data word). Checkpoints hold pure
 * architectural state, so they are keyed by the *workload's* identity
 * rather than any machine manifest — the same blob warms a sim-alpha
 * window and a sim-outorder window alike.
 */
std::uint64_t programHash(const Program &program);

/** Store key of the checkpoint at @p insts retired instructions. */
std::string checkpointKey(const Program &program, std::uint64_t insts);

/** Store key of the fast-forward metadata for @p program capped at
 *  @p maxInsts (see FastForwardInfo). */
std::string metaKey(const Program &program, std::uint64_t maxInsts);

/** What one emulator fast-forward learned about a workload: how long
 *  it runs under a cap, and whether it halted before the cap. */
struct FastForwardInfo
{
    std::uint64_t totalInsts = 0;
    bool finished = false;      ///< program halted before the cap
};

/** One line: "ffwd1 total=<dec> finished=<0|1>". */
std::string serializeMeta(const FastForwardInfo &info);
bool parseMeta(const std::string &text, FastForwardInfo *out);

// -------------------------------------------------------------------
// Sampling specification and window planning
// -------------------------------------------------------------------

/** The `--sample windows=N,len=K,warmup=W` triple. Zero windows (the
 *  default) means conventional, unsampled execution. */
struct SampleSpec
{
    std::uint64_t windows = 0;  ///< detailed measurement windows
    std::uint64_t len = 0;      ///< measured instructions per window
    std::uint64_t warmup = 0;   ///< warm-up instructions per window

    bool enabled() const { return windows > 0; }

    bool
    operator==(const SampleSpec &o) const
    {
        return windows == o.windows && len == o.len &&
               warmup == o.warmup;
    }
    bool operator!=(const SampleSpec &o) const { return !(*this == o); }
};

/** Parse "windows=N,len=K,warmup=W" (warmup optional, default 0).
 *  Returns false with *error filled on malformed text or a spec with
 *  windows>0 but len==0. */
bool parseSampleSpec(const std::string &text, SampleSpec *out,
                     std::string *error);

/** Canonical text form, parseable by parseSampleSpec(). */
std::string formatSampleSpec(const SampleSpec &spec);

/** One planned measurement window. */
struct WindowPlan
{
    std::uint64_t checkpointAt = 0; ///< restore offset (insts retired)
    std::uint64_t warmup = 0;       ///< insts to warm after restore
    std::uint64_t measure = 0;      ///< insts measured after warm-up
};

/**
 * Deterministically place measurement windows over a workload of
 * @p totalInsts instructions: window starts are evenly spaced, each
 * preceded by min(spec.warmup, start) warm-up instructions, and the
 * final window is clamped to the end of the run. Windows that would
 * start at or beyond totalInsts are dropped, so short workloads yield
 * fewer (possibly overlapping-free) windows than requested rather
 * than empty measurements.
 */
std::vector<WindowPlan> planWindows(std::uint64_t totalInsts,
                                    const SampleSpec &spec);

// -------------------------------------------------------------------
// Fast-forward + checkpoint collection
// -------------------------------------------------------------------

/**
 * Run the functional emulator to at most @p maxInsts (0 = to halt)
 * and report the workload length under that cap. Cheap relative to
 * any detailed window (~25M insts/s).
 */
FastForwardInfo fastForward(const Program &program,
                            std::uint64_t maxInsts);

/**
 * Produce the checkpoints at the given retired-instruction offsets
 * (ascending or not — they are sorted internally, duplicates served
 * once). Present store entries are restored from disk; missing ones
 * are generated by a single emulator fast-forward pass that resumes
 * from the nearest preceding hit and published back to the store.
 * With @p store null (or closed), everything is generated in-process.
 *
 * @p out receives one checkpoint per *requested* offset, in request
 * order. Returns false with *error filled only on invariant-grade
 * failures (an offset beyond the program's halt).
 */
bool collectCheckpoints(const Program &program,
                        const std::vector<std::uint64_t> &offsets,
                        store::ResultStore *store,
                        std::vector<Checkpoint> *out,
                        std::string *error);

/**
 * Refresh the store's last-use sidecars for every entry a sampled
 * cell with this plan would read (the meta entry and each window's
 * checkpoint), without reading the blobs. Called when a sampled
 * result is served from the store: the checkpoints were not touched
 * by the warm rerun, and without this, gc would evict exactly the
 * entries the next cold window run needs most.
 * @return entries actually present and touched.
 */
std::size_t touchPlannedCheckpoints(const Program &program,
                                    std::uint64_t maxInsts,
                                    const SampleSpec &spec,
                                    store::ResultStore *store);

// -------------------------------------------------------------------
// Sample statistics
// -------------------------------------------------------------------

/** Mean ± 95% confidence interval of per-window IPC samples. */
struct SampleStats
{
    std::uint64_t n = 0;
    double mean = 0.0;
    double stddev = 0.0;    ///< sample standard deviation (n-1)
    double ciHalf = 0.0;    ///< t_{0.975,n-1} * stddev / sqrt(n)
};

/** Closed-form two-sided 95% Student-t critical value for @p df
 *  degrees of freedom (table for 1..30, 1.960 beyond). */
double tCritical95(std::uint64_t df);

/** Compute SampleStats over @p samples (n<2 yields zero spread). */
SampleStats sampleStats(const std::vector<double> &samples);

} // namespace checkpoint
} // namespace simalpha

#endif // SIMALPHA_CHECKPOINT_CHECKPOINT_HH

#include "checkpoint.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

namespace simalpha {
namespace checkpoint {

namespace {

constexpr const char *kCkptMagic = "ckpt1";
constexpr const char *kMetaMagic = "ffwd1";

void
appendHex(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llx", (unsigned long long)v);
    out += buf;
}

/** Parse a hex field terminated by @p term (or end of string). */
bool
readHex(const char *&p, std::uint64_t *out)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(p, &end, 16);
    if (end == p)
        return false;
    p = end;
    *out = v;
    return true;
}

bool
readDec(const char *&p, std::uint64_t *out)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(p, &end, 10);
    if (end == p)
        return false;
    p = end;
    *out = v;
    return true;
}

bool
eatLit(const char *&p, const char *lit)
{
    std::size_t n = std::strlen(lit);
    if (std::strncmp(p, lit, n) != 0)
        return false;
    p += n;
    return true;
}

} // namespace

// -------------------------------------------------------------------
// Serialization
// -------------------------------------------------------------------

std::string
serializeCheckpoint(const Checkpoint &ckpt)
{
    // Sorted memory makes equal states byte-equal regardless of the
    // sparse memory's hash-map iteration order.
    std::vector<std::pair<Addr, RegVal>> mem = ckpt.memory;
    std::sort(mem.begin(), mem.end());

    std::string out = kCkptMagic;
    out += " pc=";
    appendHex(out, ckpt.pc);
    out += " seq=";
    out += std::to_string(ckpt.seq);
    out += " halted=";
    out += ckpt.halted ? '1' : '0';
    out += " regs=";
    for (std::size_t i = 0; i < ckpt.regs.size(); i++) {
        if (i)
            out += ',';
        appendHex(out, ckpt.regs[i]);
    }
    out += " mem=";
    for (std::size_t i = 0; i < mem.size(); i++) {
        if (i)
            out += ';';
        appendHex(out, mem[i].first);
        out += ':';
        appendHex(out, mem[i].second);
    }
    return out;
}

bool
parseCheckpoint(const std::string &text, Checkpoint *out,
                std::string *error)
{
    auto fail = [&](const char *what) {
        if (error)
            *error = std::string("malformed checkpoint blob: ") + what;
        return false;
    };

    const char *p = text.c_str();
    if (!eatLit(p, kCkptMagic))
        return fail("bad magic");

    Checkpoint c;
    std::uint64_t v = 0;
    if (!eatLit(p, " pc=") || !readHex(p, &v))
        return fail("pc");
    c.pc = v;
    if (!eatLit(p, " seq=") || !readDec(p, &v))
        return fail("seq");
    c.seq = v;
    if (!eatLit(p, " halted=") || !readDec(p, &v) || v > 1)
        return fail("halted");
    c.halted = v != 0;
    if (!eatLit(p, " regs="))
        return fail("regs");
    for (std::size_t i = 0; i < c.regs.size(); i++) {
        if (i && !eatLit(p, ","))
            return fail("regs separator");
        if (!readHex(p, &v))
            return fail("regs value");
        c.regs[i] = v;
    }
    if (!eatLit(p, " mem="))
        return fail("mem");
    while (*p) {
        std::uint64_t addr = 0, word = 0;
        if (!c.memory.empty() && !eatLit(p, ";"))
            return fail("mem separator");
        if (!readHex(p, &addr) || !eatLit(p, ":") ||
            !readHex(p, &word))
            return fail("mem pair");
        c.memory.emplace_back(addr, word);
    }
    *out = std::move(c);
    return true;
}

// -------------------------------------------------------------------
// Keying
// -------------------------------------------------------------------

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void
mixBytes(std::uint64_t &h, const void *data, std::size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
mixU64(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; i++) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= kFnvPrime;
    }
}

std::string
hex16(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
    return buf;
}

} // namespace

std::uint64_t
programHash(const Program &program)
{
    std::uint64_t h = kFnvOffset;
    mixBytes(h, program.name.data(), program.name.size());
    mixU64(h, program.entryPc);
    mixU64(h, program.text.size());
    for (const Instruction &inst : program.text) {
        mixU64(h, std::uint64_t(inst.op));
        mixU64(h, std::uint64_t(inst.ra));
        mixU64(h, std::uint64_t(inst.rb));
        mixU64(h, std::uint64_t(inst.rc));
        mixU64(h, std::uint64_t(inst.imm));
        mixU64(h, std::uint64_t(inst.target));
    }
    mixU64(h, program.data.size());
    for (const auto &dw : program.data) {
        mixU64(h, dw.first);
        mixU64(h, dw.second);
    }
    return h ? h : 1;
}

std::string
checkpointKey(const Program &program, std::uint64_t insts)
{
    return "ckpt|" + hex16(programHash(program)) + "|" +
           std::to_string(insts);
}

std::string
metaKey(const Program &program, std::uint64_t maxInsts)
{
    return "ckpt-meta|" + hex16(programHash(program)) + "|" +
           std::to_string(maxInsts);
}

std::string
serializeMeta(const FastForwardInfo &info)
{
    return std::string(kMetaMagic) + " total=" +
           std::to_string(info.totalInsts) + " finished=" +
           (info.finished ? "1" : "0");
}

bool
parseMeta(const std::string &text, FastForwardInfo *out)
{
    const char *p = text.c_str();
    std::uint64_t total = 0, fin = 0;
    if (!eatLit(p, kMetaMagic) || !eatLit(p, " total=") ||
        !readDec(p, &total) || !eatLit(p, " finished=") ||
        !readDec(p, &fin) || fin > 1 || *p)
        return false;
    out->totalInsts = total;
    out->finished = fin != 0;
    return true;
}

// -------------------------------------------------------------------
// Sampling spec + planning
// -------------------------------------------------------------------

bool
parseSampleSpec(const std::string &text, SampleSpec *out,
                std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = "bad --sample spec '" + text + "': " + what;
        return false;
    };

    SampleSpec spec;
    bool sawWindows = false, sawLen = false;
    const char *p = text.c_str();
    while (*p) {
        std::uint64_t v = 0;
        if (eatLit(p, "windows=")) {
            if (!readDec(p, &v))
                return fail("windows needs a number");
            spec.windows = v;
            sawWindows = true;
        } else if (eatLit(p, "len=")) {
            if (!readDec(p, &v))
                return fail("len needs a number");
            spec.len = v;
            sawLen = true;
        } else if (eatLit(p, "warmup=")) {
            if (!readDec(p, &v))
                return fail("warmup needs a number");
            spec.warmup = v;
        } else {
            return fail("expected windows=/len=/warmup=");
        }
        if (*p && !eatLit(p, ","))
            return fail("expected ','");
    }
    if (!sawWindows || spec.windows == 0)
        return fail("windows must be > 0");
    if (!sawLen || spec.len == 0)
        return fail("len must be > 0");
    *out = spec;
    return true;
}

std::string
formatSampleSpec(const SampleSpec &spec)
{
    return "windows=" + std::to_string(spec.windows) +
           ",len=" + std::to_string(spec.len) +
           ",warmup=" + std::to_string(spec.warmup);
}

std::vector<WindowPlan>
planWindows(std::uint64_t totalInsts, const SampleSpec &spec)
{
    std::vector<WindowPlan> plan;
    if (!spec.enabled() || totalInsts == 0)
        return plan;

    // Window i measures [start_i, start_i + len), starts evenly
    // spaced at i * total / windows. The first window therefore
    // anchors at instruction 0 (no warm-up possible there) and the
    // spacing is a pure function of (total, windows) — deterministic
    // for every jobs count, shard split, and resume.
    for (std::uint64_t i = 0; i < spec.windows; i++) {
        std::uint64_t start =
            (totalInsts / spec.windows) * i;
        if (i > 0 && start >= totalInsts)
            break;
        WindowPlan w;
        w.warmup = std::min(spec.warmup, start);
        w.checkpointAt = start - w.warmup;
        w.measure = std::min(spec.len, totalInsts - start);
        if (w.measure == 0)
            continue;
        plan.push_back(w);
    }
    return plan;
}

// -------------------------------------------------------------------
// Fast-forward + collection
// -------------------------------------------------------------------

FastForwardInfo
fastForward(const Program &program, std::uint64_t maxInsts)
{
    Emulator emu(program);
    FastForwardInfo info;
    // Batch through the predecoded dispatcher; ~0 means "to the halt".
    while (!emu.halted() &&
           (maxInsts == 0 || info.totalInsts < maxInsts)) {
        std::uint64_t want = maxInsts == 0
            ? std::uint64_t(1) << 30
            : maxInsts - info.totalInsts;
        std::uint64_t ran = emu.run(want);
        info.totalInsts += ran;
        if (ran == 0)
            break;
    }
    info.finished = emu.halted();
    return info;
}

bool
collectCheckpoints(const Program &program,
                   const std::vector<std::uint64_t> &offsets,
                   store::ResultStore *store,
                   std::vector<Checkpoint> *out,
                   std::string *error)
{
    bool useStore = store && store->isOpen();

    // Resolve each distinct offset exactly once; ascending order so
    // the generation pass below is a single forward sweep.
    std::vector<std::uint64_t> distinct = offsets;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());

    std::map<std::uint64_t, Checkpoint> resolved;
    std::vector<std::uint64_t> missing;
    for (std::uint64_t offset : distinct) {
        std::string payload, perror;
        Checkpoint c;
        if (useStore &&
            store->lookup(checkpointKey(program, offset), &payload) &&
            parseCheckpoint(payload, &c, &perror) && c.seq == offset) {
            resolved[offset] = std::move(c);
        } else {
            missing.push_back(offset);
        }
    }

    // One generation pass over the ascending missing offsets, always
    // resuming from the nearest preceding already-resolved state —
    // a warm store turns an O(total) sweep into O(largest gap).
    Emulator emu(program);
    std::uint64_t at = 0;
    for (std::uint64_t target : missing) {
        auto it = resolved.upper_bound(target);
        if (it != resolved.begin()) {
            --it;
            if (it->first > at) {
                emu.restore(it->second);
                at = it->first;
            }
        }
        while (at < target) {
            if (emu.halted()) {
                if (error)
                    *error = "checkpoint offset " +
                             std::to_string(target) +
                             " is beyond the program's halt (" +
                             std::to_string(at) + " instructions)";
                return false;
            }
            at += emu.run(target - at);
        }
        Checkpoint c = emu.checkpoint();
        if (useStore) {
            std::string serror;
            // Publication failure is non-fatal: the blob exists in
            // memory and the next cold run regenerates it.
            (void)store->publish(checkpointKey(program, target),
                                 serializeCheckpoint(c), &serror);
        }
        resolved[target] = std::move(c);
    }

    out->clear();
    out->reserve(offsets.size());
    for (std::uint64_t offset : offsets)
        out->push_back(resolved[offset]);
    return true;
}

std::size_t
touchPlannedCheckpoints(const Program &program, std::uint64_t maxInsts,
                        const SampleSpec &spec,
                        store::ResultStore *store)
{
    if (!store || !store->isOpen() || !spec.enabled())
        return 0;

    // The plan is derivable without running anything iff the meta
    // entry is present; if it is gone, the checkpoints are already
    // cold and the next run regenerates everything anyway.
    std::string payload;
    FastForwardInfo info;
    if (!store->lookup(metaKey(program, maxInsts), &payload) ||
        !parseMeta(payload, &info))
        return 0;

    std::size_t touched = 1;    // lookup() refreshed the meta sidecar
    std::vector<std::uint64_t> seen;
    for (const WindowPlan &w : planWindows(info.totalInsts, spec)) {
        if (std::find(seen.begin(), seen.end(), w.checkpointAt) !=
            seen.end())
            continue;
        seen.push_back(w.checkpointAt);
        if (store->touch(checkpointKey(program, w.checkpointAt)))
            touched++;
    }
    return touched;
}

// -------------------------------------------------------------------
// Sample statistics
// -------------------------------------------------------------------

double
tCritical95(std::uint64_t df)
{
    // Two-sided 95% critical values of Student's t distribution
    // (df 1..30); the normal limit beyond.
    static const double kT[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        return 0.0;
    if (df <= 30)
        return kT[df - 1];
    return 1.960;
}

SampleStats
sampleStats(const std::vector<double> &samples)
{
    SampleStats s;
    s.n = samples.size();
    if (s.n == 0)
        return s;
    double sum = 0.0;
    for (double x : samples)
        sum += x;
    s.mean = sum / double(s.n);
    if (s.n < 2)
        return s;
    double ss = 0.0;
    for (double x : samples) {
        double d = x - s.mean;
        ss += d * d;
    }
    s.stddev = std::sqrt(ss / double(s.n - 1));
    s.ciHalf = tCritical95(s.n - 1) * s.stddev /
               std::sqrt(double(s.n));
    return s;
}

} // namespace checkpoint
} // namespace simalpha

#include "branch.hh"

#include "common/logging.hh"

namespace simalpha {

namespace {

/** Saturating 2-bit counter helpers. */
inline void
bump2(std::uint8_t &c, bool up)
{
    if (up) {
        if (c < 3)
            c++;
    } else {
        if (c > 0)
            c--;
    }
}

} // namespace

TournamentPredictor::TournamentPredictor(bool speculative_update)
    : _speculativeUpdate(speculative_update),
      _localHistory(kLocalEntries, 0),
      _localCounters(kLocalEntries, 3),      // weakly not-taken of 0..7
      _globalCounters(kGlobalEntries, 1),
      _choiceCounters(kChoiceEntries, 1)
{
}

void
TournamentPredictor::reset()
{
    // Mirror the constructor's initial counter values exactly.
    _localHistory.assign(_localHistory.size(), 0);
    _localCounters.assign(_localCounters.size(), 3);
    _globalCounters.assign(_globalCounters.size(), 1);
    _choiceCounters.assign(_choiceCounters.size(), 1);
    _globalHistory = 0;
    _lookups = 0;
}

void
TournamentPredictor::injectBitFlip(std::uint64_t index,
                                   std::uint32_t bit)
{
    // Fold over the concatenated arrays + the global history register;
    // XOR within each cell's width so counters stay in legal range.
    std::size_t n = _localHistory.size() + _localCounters.size() +
                    _globalCounters.size() + _choiceCounters.size() + 1;
    std::size_t i = std::size_t(index % n);
    if (i < _localHistory.size()) {
        _localHistory[i] ^=
            std::uint16_t(1u << (bit % kLocalHistoryBits));
        return;
    }
    i -= _localHistory.size();
    if (i < _localCounters.size()) {
        _localCounters[i] ^= std::uint8_t(1u << (bit % 3));
        return;
    }
    i -= _localCounters.size();
    if (i < _globalCounters.size()) {
        _globalCounters[i] ^= std::uint8_t(1u << (bit % 2));
        return;
    }
    i -= _globalCounters.size();
    if (i < _choiceCounters.size()) {
        _choiceCounters[i] ^= std::uint8_t(1u << (bit % 2));
        return;
    }
    _globalHistory ^= std::uint16_t(1u << (bit % kGlobalHistoryBits));
}

std::uint32_t
TournamentPredictor::localIndexFor(Addr pc) const
{
    return std::uint32_t(pc >> 2) & (kLocalEntries - 1);
}

bool
TournamentPredictor::predict(Addr pc, BranchSnapshot &snap)
{
    _lookups++;

    std::uint32_t lidx = localIndexFor(pc);
    std::uint16_t lhist = _localHistory[lidx];
    bool local_pred =
        _localCounters[lhist & ((1u << kLocalHistoryBits) - 1)] > 3;

    std::uint32_t gidx = _globalHistory & (kGlobalEntries - 1);
    bool global_pred = _globalCounters[gidx] > 1;

    std::uint32_t cidx = std::uint32_t(pc >> 2) & (kChoiceEntries - 1);
    bool use_global = _choiceCounters[cidx] > 1;

    bool pred = use_global ? global_pred : local_pred;

    snap.globalHistory = _globalHistory;
    snap.localHistory = lhist;
    snap.localIndex = lidx;
    snap.usedGlobal = use_global;
    snap.prediction = pred;

    if (_speculativeUpdate) {
        // Histories shift in the *predicted* outcome immediately and are
        // repaired on recovery.
        _globalHistory = std::uint16_t(
            ((_globalHistory << 1) | (pred ? 1 : 0)) &
            ((1u << kGlobalHistoryBits) - 1));
        _localHistory[lidx] = std::uint16_t(
            ((lhist << 1) | (pred ? 1 : 0)) &
            ((1u << kLocalHistoryBits) - 1));
    }

    return pred;
}

void
TournamentPredictor::update(Addr pc, bool taken, const BranchSnapshot &snap)
{
    // Train the counters the prediction actually read.
    std::uint16_t lhist =
        snap.localHistory & ((1u << kLocalHistoryBits) - 1);
    std::uint8_t &lctr = _localCounters[lhist];
    if (taken) {
        if (lctr < 7)
            lctr++;
    } else {
        if (lctr > 0)
            lctr--;
    }
    bool local_was_right = (lctr > 3) == taken;       // approximation

    std::uint32_t gidx = snap.globalHistory & (kGlobalEntries - 1);
    bump2(_globalCounters[gidx], taken);
    bool global_was_right =
        (_globalCounters[gidx] > 1) == taken;          // approximation

    std::uint32_t cidx = std::uint32_t(pc >> 2) & (kChoiceEntries - 1);
    if (global_was_right != local_was_right)
        bump2(_choiceCounters[cidx], global_was_right);

    if (!_speculativeUpdate) {
        _globalHistory = std::uint16_t(
            ((_globalHistory << 1) | (taken ? 1 : 0)) &
            ((1u << kGlobalHistoryBits) - 1));
        _localHistory[snap.localIndex] = std::uint16_t(
            ((_localHistory[snap.localIndex] << 1) | (taken ? 1 : 0)) &
            ((1u << kLocalHistoryBits) - 1));
    }
}

void
TournamentPredictor::recover(const BranchSnapshot &snap, bool actual_taken)
{
    if (!_speculativeUpdate)
        return;
    // Rebuild the histories as if the branch had been predicted correctly.
    _globalHistory = std::uint16_t(
        ((snap.globalHistory << 1) | (actual_taken ? 1 : 0)) &
        ((1u << kGlobalHistoryBits) - 1));
    _localHistory[snap.localIndex] = std::uint16_t(
        ((snap.localHistory << 1) | (actual_taken ? 1 : 0)) &
        ((1u << kLocalHistoryBits) - 1));
}

void
TournamentPredictor::restore(const BranchSnapshot &snap)
{
    if (!_speculativeUpdate)
        return;
    _globalHistory = snap.globalHistory;
    _localHistory[snap.localIndex] = snap.localHistory;
}

ReturnAddressStack::ReturnAddressStack()
    : _stack(kEntries, 0)
{
}

ReturnAddressStack::Snapshot
ReturnAddressStack::snapshot() const
{
    Snapshot s;
    s.tos = _tos;
    s.tosValue = _stack[(_tos + kEntries - 1) % kEntries];
    return s;
}

void
ReturnAddressStack::restore(const Snapshot &snap)
{
    _tos = snap.tos;
    _stack[(_tos + kEntries - 1) % kEntries] = snap.tosValue;
}

void
ReturnAddressStack::push(Addr return_pc)
{
    _stack[_tos] = return_pc;
    _tos = std::uint8_t((_tos + 1) % kEntries);
}

Addr
ReturnAddressStack::pop()
{
    _tos = std::uint8_t((_tos + kEntries - 1) % kEntries);
    return _stack[_tos];
}

Addr
ReturnAddressStack::peek() const
{
    return _stack[(_tos + kEntries - 1) % kEntries];
}

Btb::Btb(int sets, int ways)
    : _sets(sets), _ways(ways), _entries(std::size_t(sets) * ways)
{
    if (sets <= 0 || (sets & (sets - 1)) != 0)
        fatal("BTB set count must be a positive power of two (got %d)",
              sets);
}

Addr
Btb::lookup(Addr pc)
{
    std::size_t set = std::size_t((pc >> 2) & Addr(_sets - 1));
    for (int w = 0; w < _ways; w++) {
        Entry &e = _entries[set * _ways + w];
        if (e.tag == pc) {
            e.lastUse = ++_useTick;
            return e.target;
        }
    }
    return kNoAddr;
}

void
Btb::update(Addr pc, Addr target)
{
    std::size_t set = std::size_t((pc >> 2) & Addr(_sets - 1));
    Entry *victim = nullptr;
    for (int w = 0; w < _ways; w++) {
        Entry &e = _entries[set * _ways + w];
        if (e.tag == pc) {
            e.target = target;
            e.lastUse = ++_useTick;
            return;
        }
        if (!victim || e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = ++_useTick;
}

TwoLevelPredictor::TwoLevelPredictor(int table_entries, int history_bits)
    : _historyBits(history_bits),
      _counters(std::size_t(table_entries), 1)
{
    if (table_entries <= 0 || (table_entries & (table_entries - 1)) != 0)
        fatal("2-level table size must be a power of two");
}

std::uint32_t
TwoLevelPredictor::indexFor(Addr pc, std::uint32_t history) const
{
    std::uint32_t folded = std::uint32_t(pc >> 2) ^ history;
    return folded & std::uint32_t(_counters.size() - 1);
}

bool
TwoLevelPredictor::predict(Addr pc, std::uint32_t &snap)
{
    snap = _history;
    bool pred = _counters[indexFor(pc, _history)] > 1;
    _history = ((_history << 1) | (pred ? 1 : 0)) &
               ((1u << _historyBits) - 1);
    return pred;
}

void
TwoLevelPredictor::update(Addr pc, bool taken, std::uint32_t snap)
{
    bump2(_counters[indexFor(pc, snap)], taken);
}

void
TwoLevelPredictor::recover(std::uint32_t snap, bool actual_taken)
{
    _history = ((snap << 1) | (actual_taken ? 1 : 0)) &
               ((1u << _historyBits) - 1);
}

} // namespace simalpha

#include "frontend.hh"

#include "common/logging.hh"

namespace simalpha {

LinePredictor::LinePredictor(int entries, int init_hysteresis)
    : _entries(std::size_t(entries)), _initHysteresis(init_hysteresis)
{
    if (entries <= 0 || (entries & (entries - 1)) != 0)
        fatal("line predictor size must be a power of two");
    if (init_hysteresis < 0 || init_hysteresis > 3)
        fatal("line predictor hysteresis init must be 0..3");
    for (auto &e : _entries)
        e.hysteresis = std::uint8_t(init_hysteresis);
}

std::size_t
LinePredictor::indexFor(Addr pc) const
{
    // Index by octaword: each entry covers one 16-byte fetch packet.
    return std::size_t((pc >> 4) & Addr(_entries.size() - 1));
}

Addr
LinePredictor::predict(Addr pc)
{
    const Entry &e = _entries[indexFor(pc)];
    if (e.next == kNoAddr)
        return (pc & ~Addr(15)) + 16;   // untrained: sequential fetch
    return e.next;
}

bool
LinePredictor::train(Addr pc, Addr actual_next)
{
    Entry &e = _entries[indexFor(pc)];
    Addr predicted =
        e.next == kNoAddr ? (pc & ~Addr(15)) + 16 : e.next;
    if (predicted == actual_next) {
        if (e.hysteresis < 3)
            e.hysteresis++;
        return false;
    }
    _mispredicts++;
    // Hysteresis: strong entries weaken first, weak entries retrain.
    if (e.hysteresis > 1) {
        e.hysteresis--;
        return false;
    }
    e.next = actual_next;
    e.hysteresis = std::uint8_t(_initHysteresis);
    return true;
}

WayPredictor::WayPredictor(int entries)
    : _ways(std::size_t(entries), 0)
{
    if (entries <= 0 || (entries & (entries - 1)) != 0)
        fatal("way predictor size must be a power of two");
}

std::size_t
WayPredictor::indexFor(Addr line_addr) const
{
    return std::size_t((line_addr >> 6) & Addr(_ways.size() - 1));
}

int
WayPredictor::predict(Addr line_addr) const
{
    return _ways[indexFor(line_addr)];
}

void
WayPredictor::update(Addr line_addr, int actual_way)
{
    _ways[indexFor(line_addr)] = std::uint8_t(actual_way);
}

StoreWaitPredictor::StoreWaitPredictor(int entries, Cycle clear_interval)
    : _bits(std::size_t(entries), false), _clearInterval(clear_interval)
{
    if (entries <= 0 || (entries & (entries - 1)) != 0)
        fatal("store-wait table size must be a power of two");
}

void
StoreWaitPredictor::maybeClear(Cycle now)
{
    if (_clearInterval != 0 && now - _lastClear >= _clearInterval) {
        std::fill(_bits.begin(), _bits.end(), false);
        _lastClear = now;
    }
}

bool
StoreWaitPredictor::shouldWait(Addr load_pc, Cycle now)
{
    maybeClear(now);
    return _bits[std::size_t((load_pc >> 2) & Addr(_bits.size() - 1))];
}

void
StoreWaitPredictor::markConflict(Addr load_pc)
{
    _bits[std::size_t((load_pc >> 2) & Addr(_bits.size() - 1))] = true;
}

} // namespace simalpha

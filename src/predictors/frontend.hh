/**
 * @file
 * Front-end fetch predictors of the 21264: the line predictor (next-fetch
 * prediction trained by a small hysteresis state machine) and the I-cache
 * way predictor.
 */

#ifndef SIMALPHA_PREDICTORS_FRONTEND_HH
#define SIMALPHA_PREDICTORS_FRONTEND_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace simalpha {

/**
 * The line predictor holds, for each fetched octaword, a pointer to the
 * next octaword to fetch. We model it as a direct-mapped table indexed by
 * the current fetch PC, storing the predicted next fetch PC and a
 * hysteresis bit.
 *
 * The 21264's training state machine has two bits per entry; the paper
 * found that initializing them to `01` minimized error, so the initial
 * hysteresis value is configurable.
 */
class LinePredictor
{
  public:
    /**
     * @param entries table size (power of two)
     * @param init_hysteresis initial 2-bit state machine value; the paper
     *        chose binary 01 (retrain on first mispredict)
     */
    explicit LinePredictor(int entries = 1024, int init_hysteresis = 1);

    /** Predicted next octaword fetch PC after fetching at `pc`. */
    Addr predict(Addr pc);

    /**
     * Train toward the actual next fetch PC.
     * @return true if the entry actually switched its prediction
     */
    bool train(Addr pc, Addr actual_next);

    /** Speculative train (line predictor trains during fetch). */
    void speculativeTrain(Addr pc, Addr next) { train(pc, next); }

    std::uint64_t mispredicts() const { return _mispredicts; }

    /** Restore freshly-constructed state (campaign core reuse). */
    void
    reset()
    {
        for (auto &e : _entries)
            e = Entry{kNoAddr, std::uint8_t(_initHysteresis)};
        _mispredicts = 0;
    }

  private:
    struct Entry
    {
        Addr next = kNoAddr;
        std::uint8_t hysteresis;
    };

    std::size_t indexFor(Addr pc) const;

    std::vector<Entry> _entries;
    int _initHysteresis;
    std::uint64_t _mispredicts = 0;
};

/**
 * The I-cache way predictor: one predicted way per I-cache line index.
 * A way misprediction costs a two-cycle fetch bubble.
 */
class WayPredictor
{
  public:
    explicit WayPredictor(int entries = 1024);

    int predict(Addr line_addr) const;
    void update(Addr line_addr, int actual_way);

    /** Restore freshly-constructed state (campaign core reuse). */
    void
    reset()
    {
        _ways.assign(_ways.size(), 0);
    }

  private:
    std::size_t indexFor(Addr line_addr) const;

    std::vector<std::uint8_t> _ways;
};

/**
 * The load-use (hit/miss) predictor: a single 4-bit saturating counter.
 * Predicts "hit" when the counter's high bit is set; increments by one on
 * a hit, decrements by two on a miss (Kessler's description).
 */
class LoadUsePredictor
{
  public:
    bool predictHit() const { return _counter >= 8; }

    void
    update(bool hit)
    {
        if (hit) {
            if (_counter < 15)
                _counter++;
        } else {
            _counter = _counter >= 2 ? std::uint8_t(_counter - 2) : 0;
        }
    }

    int counter() const { return _counter; }

    /** Restore freshly-constructed state (campaign core reuse). */
    void reset() { _counter = 15; }

  private:
    std::uint8_t _counter = 15;     // cold caches still mostly hit
};

/**
 * The store-wait predictor: a 1024x1-bit table indexed by load PC. A set
 * bit forces the load to wait for all earlier unresolved stores. The
 * table is periodically cleared so stale conflicts do not throttle loads
 * forever.
 */
class StoreWaitPredictor
{
  public:
    explicit StoreWaitPredictor(int entries = 1024,
                                Cycle clear_interval = 32768);

    /** Should this load wait for earlier stores? */
    bool shouldWait(Addr load_pc, Cycle now);

    /** Mark a load that caused a store replay trap. */
    void markConflict(Addr load_pc);

    /** Restore freshly-constructed state (campaign core reuse). */
    void
    reset()
    {
        _bits.assign(_bits.size(), false);
        _lastClear = 0;
    }

  private:
    void maybeClear(Cycle now);

    std::vector<bool> _bits;
    Cycle _clearInterval;
    Cycle _lastClear = 0;
};

} // namespace simalpha

#endif // SIMALPHA_PREDICTORS_FRONTEND_HH

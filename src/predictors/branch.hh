/**
 * @file
 * The 21264 tournament branch predictor (local + global + choice) with
 * speculative history update and mis-speculation repair, plus the simpler
 * two-level adaptive predictor and BTB used by the abstract out-of-order
 * model.
 *
 * Geometry follows the paper (Section 2.1): the local predictor holds
 * 1024 10-bit local histories indexing 1024 3-bit counters; the global
 * predictor indexes 4096 2-bit counters with a 12-bit path history; the
 * choice predictor indexes 4096 2-bit counters by PC.
 */

#ifndef SIMALPHA_PREDICTORS_BRANCH_HH
#define SIMALPHA_PREDICTORS_BRANCH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace simalpha {

/**
 * Snapshot of predictor history taken at prediction time; restored when
 * the predicting branch turns out mis-speculated.
 */
struct BranchSnapshot
{
    std::uint16_t globalHistory = 0;
    std::uint16_t localHistory = 0;
    std::uint32_t localIndex = 0;
    bool usedGlobal = false;
    bool prediction = false;
};

class TournamentPredictor
{
  public:
    /**
     * @param speculative_update update histories at predict time and
     *        repair on mis-speculation (the validated 21264 behaviour);
     *        when false, histories update only at commit (the
     *        sim-initial bug).
     */
    explicit TournamentPredictor(bool speculative_update = true);

    /** Predict a conditional branch and snapshot history state. */
    bool predict(Addr pc, BranchSnapshot &snap);

    /** Commit-time training with the actual outcome. */
    void update(Addr pc, bool taken, const BranchSnapshot &snap);

    /** Roll history back to the snapshot (mis-speculation recovery). */
    void recover(const BranchSnapshot &snap, bool actual_taken);

    /** Restore history exactly as it was before the prediction (used
     *  when the predicting branch itself is squashed and refetched). */
    void restore(const BranchSnapshot &snap);

    std::uint64_t lookups() const { return _lookups; }

    /** Restore freshly-constructed state (campaign core reuse). */
    void reset();

    /**
     * Soft-error injection: XOR one bit of one predictor cell. The
     * index folds over the concatenation of the local-history, local-
     * counter, global-counter, and choice-counter arrays plus the
     * global history register; the bit folds into each cell's width,
     * so counters and histories stay inside their legal ranges.
     */
    void injectBitFlip(std::uint64_t index, std::uint32_t bit);

  private:
    static constexpr int kLocalEntries = 1024;
    static constexpr int kLocalHistoryBits = 10;
    static constexpr int kLocalCounterMax = 7;     // 3-bit
    static constexpr int kGlobalEntries = 4096;
    static constexpr int kGlobalHistoryBits = 12;
    static constexpr int kChoiceEntries = 4096;

    std::uint32_t localIndexFor(Addr pc) const;

    bool _speculativeUpdate;
    std::vector<std::uint16_t> _localHistory;
    std::vector<std::uint8_t> _localCounters;
    std::vector<std::uint8_t> _globalCounters;
    std::vector<std::uint8_t> _choiceCounters;
    std::uint16_t _globalHistory = 0;
    std::uint64_t _lookups = 0;
};

/**
 * 32-entry return address stack with speculative push/pop and
 * top-of-stack repair on recovery.
 */
class ReturnAddressStack
{
  public:
    struct Snapshot
    {
        std::uint8_t tos = 0;
        Addr tosValue = 0;
    };

    static constexpr int kEntries = 32;

    ReturnAddressStack();

    Snapshot snapshot() const;
    void restore(const Snapshot &snap);

    void push(Addr return_pc);
    Addr pop();

    /** Read the top of stack without popping (non-speculative mode). */
    Addr peek() const;

    /** Restore freshly-constructed state (campaign core reuse). */
    void
    reset()
    {
        _stack.assign(_stack.size(), 0);
        _tos = 0;
    }

  private:
    std::vector<Addr> _stack;
    std::uint8_t _tos = 0;      // index of next free slot
};

/**
 * Branch target buffer for the abstract model: 4-way set-associative
 * with true-LRU replacement.
 */
class Btb
{
  public:
    Btb(int sets, int ways);

    /** @return target PC, or kNoAddr on miss. */
    Addr lookup(Addr pc);
    void update(Addr pc, Addr target);

    /** Restore freshly-constructed state (campaign core reuse). */
    void
    reset()
    {
        _entries.assign(_entries.size(), Entry{});
        _useTick = 0;
    }

  private:
    struct Entry
    {
        Addr tag = kNoAddr;
        Addr target = 0;
        std::uint64_t lastUse = 0;
    };

    int _sets;
    int _ways;
    std::uint64_t _useTick = 0;
    std::vector<Entry> _entries;
};

/**
 * SimpleScalar-style 2-level adaptive predictor (GAg-like): a shared
 * history register indexing a table of 2-bit counters, XOR-folded with
 * the PC (gshare).
 */
class TwoLevelPredictor
{
  public:
    TwoLevelPredictor(int table_entries = 4096, int history_bits = 12);

    /** Predict and speculatively shift the history register.
     *  @param[out] snap pre-prediction history, for mispredict repair */
    bool predict(Addr pc, std::uint32_t &snap);

    /** Commit-time counter training (history already shifted). */
    void update(Addr pc, bool taken, std::uint32_t snap);

    /** Repair the history after a mispredict (actual outcome known). */
    void recover(std::uint32_t snap, bool actual_taken);

    /** Restore freshly-constructed state (campaign core reuse). */
    void
    reset()
    {
        _history = 0;
        _counters.assign(_counters.size(), 1);
    }

  private:
    std::uint32_t indexFor(Addr pc, std::uint32_t history) const;

    int _historyBits;
    std::uint32_t _history = 0;
    std::vector<std::uint8_t> _counters;
};

} // namespace simalpha

#endif // SIMALPHA_PREDICTORS_BRANCH_HH

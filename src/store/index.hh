/**
 * @file
 * Binary per-shard index over the result store's JSON entries.
 *
 * Each shard directory <root>/<hh>/ may carry an `index.bin` mapping
 * every entry key in the shard to the byte range of its payload inside
 * the existing entry file. A warm lookup that goes through the index
 * does one mmap'd binary search plus one pread of the payload bytes,
 * verified against the record's FNV-1a — no JSON header parse, no key
 * unescaping, and byte-identity for free because the payload bytes
 * served are the verbatim blob the entry file already holds.
 *
 * The index is strictly an accelerator and strictly rebuildable:
 *  - entries published after the index was built are simply absent from
 *    it and fall back to the scan path;
 *  - entries republished with different bytes fail the record's payload
 *    check and fall back to the scan path;
 *  - a corrupt index file is quarantined as index.bin.corrupt and the
 *    shard behaves as if unindexed.
 * Nothing ever trusts the index over the entry file's own bytes.
 *
 * On-disk layout (all integers little-endian):
 *
 *     header  (32 bytes): magic "SAIDX1\n\0", u32 version=1, u32 count,
 *                         u64 heapBytes, u64 fileCheck
 *     records (count × 32 bytes, sorted by keyHash):
 *                         u64 keyHash, u32 keyOff, u32 keyLen,
 *                         u32 payloadOff, u32 payloadLen,
 *                         u64 payloadCheck
 *     heap    (heapBytes): concatenated raw key bytes
 *
 * fileCheck is the FNV-1a of everything after the header, so a torn or
 * bit-flipped index reads as corrupt, never as wrong answers. Within a
 * shard, key hashes are unique (two keys with equal hashes would share
 * one entry file), so records are binary-searchable by hash alone.
 */

#ifndef SIMALPHA_STORE_INDEX_HH
#define SIMALPHA_STORE_INDEX_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace simalpha {
namespace store {

/** The index file's name inside a shard directory. */
extern const char *const kShardIndexFile;

/** A loaded, immutable, mmap'd shard index. */
class ShardIndex
{
  public:
    struct Record
    {
        std::string_view key;           ///< view into the mmap'd heap
        std::uint64_t keyHash = 0;
        std::uint32_t payloadOff = 0;   ///< offset within the entry file
        std::uint32_t payloadLen = 0;
        std::uint64_t payloadCheck = 0; ///< FNV-1a of the payload bytes
    };

    /**
     * mmap and validate <shardDir>/index.bin.
     * @return the index, or nullptr when the file is absent (normal) or
     *         invalid (*corrupt set true — caller quarantines)
     */
    static std::unique_ptr<ShardIndex> load(const std::string &shardDir,
                                            bool *corrupt);

    ~ShardIndex();
    ShardIndex(const ShardIndex &) = delete;
    ShardIndex &operator=(const ShardIndex &) = delete;

    std::size_t size() const { return _count; }

    /** Binary-search @p keyHash and confirm the full key bytes. */
    bool find(std::string_view key, std::uint64_t keyHash,
              Record *out) const;

    /** Binary-search @p keyHash alone (hashes are unique per shard). */
    bool findByHash(std::uint64_t keyHash, Record *out) const;

    /** Record @p i in hash order (for index-driven export walks). */
    bool recordAt(std::size_t i, Record *out) const;

  private:
    ShardIndex() = default;

    const unsigned char *_map = nullptr;
    std::size_t _mapLen = 0;
    std::uint32_t _count = 0;
    const unsigned char *_records = nullptr;
    const char *_heap = nullptr;
    std::uint64_t _heapBytes = 0;

    bool decodeAt(std::size_t i, Record *out) const;
};

/**
 * Build (or rebuild) a shard's index.bin from `entries` — already
 * validated (key, payloadOff, payloadLen, payloadCheck) tuples for
 * every entry file in the shard. Written atomically (temp + rename)
 * under an advisory flock on index.bin.lock. An empty entry list
 * removes the index file instead.
 */
struct IndexEntry
{
    std::string key;
    std::uint32_t payloadOff = 0;
    std::uint32_t payloadLen = 0;
    std::uint64_t payloadCheck = 0;
};

bool writeShardIndex(const std::string &shardDir,
                     std::vector<IndexEntry> entries,
                     std::string *error);

} // namespace store
} // namespace simalpha

#endif // SIMALPHA_STORE_INDEX_HH

#include "index.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace simalpha {
namespace store {

const char *const kShardIndexFile = "index.bin";

namespace {

constexpr char kMagic[8] = {'S', 'A', 'I', 'D', 'X', '1', '\n', '\0'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kRecordBytes = 32;

std::uint64_t
fnv1a64(const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; i++) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint32_t
loadU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; i--)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
loadU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; i--)
        v = (v << 8) | p[i];
    return v;
}

void
appendU32(std::string *out, std::uint32_t v)
{
    for (int i = 0; i < 4; i++, v >>= 8)
        out->push_back(char(v & 0xFF));
}

void
appendU64(std::string *out, std::uint64_t v)
{
    for (int i = 0; i < 8; i++, v >>= 8)
        out->push_back(char(v & 0xFF));
}

} // namespace

ShardIndex::~ShardIndex()
{
    if (_map)
        ::munmap(const_cast<unsigned char *>(_map), _mapLen);
}

std::unique_ptr<ShardIndex>
ShardIndex::load(const std::string &shardDir, bool *corrupt)
{
    if (corrupt)
        *corrupt = false;
    std::string path = shardDir + "/" + kShardIndexFile;
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return nullptr; // absent (or unreadable): shard is unindexed

    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) ||
        std::size_t(st.st_size) < kHeaderBytes) {
        ::close(fd);
        if (corrupt)
            *corrupt = true;
        return nullptr;
    }
    std::size_t len = std::size_t(st.st_size);
    void *map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
        if (corrupt)
            *corrupt = true;
        return nullptr;
    }

    std::unique_ptr<ShardIndex> idx(new ShardIndex());
    idx->_map = static_cast<const unsigned char *>(map);
    idx->_mapLen = len;

    const unsigned char *p = idx->_map;
    std::uint32_t count = loadU32(p + 8);
    std::uint32_t version = loadU32(p + 12);
    std::uint64_t heap_bytes = loadU64(p + 16);
    std::uint64_t file_check = loadU64(p + 24);
    std::uint64_t body = len - kHeaderBytes;
    if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0 ||
        version != kVersion ||
        std::uint64_t(count) * kRecordBytes + heap_bytes != body ||
        fnv1a64(p + kHeaderBytes, std::size_t(body)) != file_check) {
        if (corrupt)
            *corrupt = true;
        return nullptr;
    }

    idx->_count = count;
    idx->_records = p + kHeaderBytes;
    idx->_heap = reinterpret_cast<const char *>(
        p + kHeaderBytes + std::size_t(count) * kRecordBytes);
    idx->_heapBytes = heap_bytes;
    return idx;
}

bool
ShardIndex::decodeAt(std::size_t i, Record *out) const
{
    const unsigned char *r = _records + i * kRecordBytes;
    std::uint32_t key_off = loadU32(r + 8);
    std::uint32_t key_len = loadU32(r + 12);
    if (std::uint64_t(key_off) + key_len > _heapBytes)
        return false; // malformed record: treat as not found
    out->keyHash = loadU64(r);
    out->key = std::string_view(_heap + key_off, key_len);
    out->payloadOff = loadU32(r + 16);
    out->payloadLen = loadU32(r + 20);
    out->payloadCheck = loadU64(r + 24);
    return true;
}

bool
ShardIndex::findByHash(std::uint64_t keyHash, Record *out) const
{
    std::size_t lo = 0, hi = _count;
    while (lo < hi) {
        std::size_t mid = lo + (hi - lo) / 2;
        std::uint64_t h = loadU64(_records + mid * kRecordBytes);
        if (h < keyHash)
            lo = mid + 1;
        else if (h > keyHash)
            hi = mid;
        else
            return decodeAt(mid, out);
    }
    return false;
}

bool
ShardIndex::find(std::string_view key, std::uint64_t keyHash,
                 Record *out) const
{
    Record rec;
    if (!findByHash(keyHash, &rec) || rec.key != key)
        return false;
    *out = rec;
    return true;
}

bool
ShardIndex::recordAt(std::size_t i, Record *out) const
{
    if (i >= _count)
        return false;
    return decodeAt(i, out);
}

bool
writeShardIndex(const std::string &shardDir,
                std::vector<IndexEntry> entries, std::string *error)
{
    std::string path = shardDir + "/" + kShardIndexFile;
    if (entries.empty()) {
        // No entries left: an absent index is the canonical empty one.
        if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
            if (error)
                *error = path + ": " + std::strerror(errno);
            return false;
        }
        return true;
    }

    struct Keyed
    {
        std::uint64_t hash;
        const IndexEntry *entry;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(entries.size());
    for (const IndexEntry &e : entries)
        keyed.push_back({fnv1a64(e.key.data(), e.key.size()), &e});
    std::sort(keyed.begin(), keyed.end(),
              [](const Keyed &a, const Keyed &b) {
                  if (a.hash != b.hash)
                      return a.hash < b.hash;
                  return a.entry->key < b.entry->key;
              });

    std::string heap;
    std::string records;
    records.reserve(keyed.size() * kRecordBytes);
    for (const Keyed &k : keyed) {
        appendU64(&records, k.hash);
        appendU32(&records, std::uint32_t(heap.size()));
        appendU32(&records, std::uint32_t(k.entry->key.size()));
        appendU32(&records, k.entry->payloadOff);
        appendU32(&records, k.entry->payloadLen);
        appendU64(&records, k.entry->payloadCheck);
        heap += k.entry->key;
    }

    std::string content(kMagic, sizeof(kMagic));
    appendU32(&content, std::uint32_t(keyed.size()));
    appendU32(&content, kVersion);
    appendU64(&content, std::uint64_t(heap.size()));
    appendU64(&content,
              fnv1a64((records + heap).data(),
                      records.size() + heap.size()));
    content += records;
    content += heap;

    // Serialize concurrent rebuilds of the same shard, then publish
    // atomically so readers only ever map a complete index.
    std::string lock_path = path + ".lock";
    int lock_fd = ::open(lock_path.c_str(),
                         O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (lock_fd >= 0)
        ::flock(lock_fd, LOCK_EX);

    std::string tmp = path + ".tmp." + std::to_string(std::uint64_t(::getpid()));
    bool ok = false;
    int fd = ::open(tmp.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        if (error)
            *error = tmp + ": " + std::strerror(errno);
    } else {
        std::size_t off = 0;
        ok = true;
        while (off < content.size()) {
            ssize_t n = ::write(fd, content.data() + off,
                                content.size() - off);
            if (n <= 0) {
                if (error)
                    *error = tmp + ": " + std::strerror(errno);
                ok = false;
                break;
            }
            off += std::size_t(n);
        }
        if (ok && ::fsync(fd) != 0) {
            if (error)
                *error = tmp + ": " + std::strerror(errno);
            ok = false;
        }
        ::close(fd);
        if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) {
            if (error)
                *error = path + ": " + std::strerror(errno);
            ok = false;
        }
        if (!ok)
            ::unlink(tmp.c_str());
    }

    if (lock_fd >= 0) {
        ::flock(lock_fd, LOCK_UN);
        ::close(lock_fd);
    }
    return ok;
}

} // namespace store
} // namespace simalpha

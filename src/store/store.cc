#include "store.hh"

#include "index.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace simalpha {
namespace store {

namespace fs = std::filesystem;

namespace {

constexpr const char *kHeaderPrefix = "{\"simalpha_store\":1,\"key\":\"";
constexpr const char *kCheckPrefix = "\",\"check\":\"";
constexpr const char *kHeaderSuffix = "\"}";

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char ch : s) {
        h ^= ch;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
hex16(std::uint64_t h)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; i--, h >>= 4)
        out[std::size_t(i)] = digits[h & 0xF];
    return out;
}

/** The journal writers' escaping rules (store entries must embed keys
 *  and payloads that round-trip byte for byte). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Consume an escaped JSON string body starting at *pos (just past the
 *  opening quote); leaves *pos past the closing quote. */
bool
readStringBody(const std::string &s, std::size_t *pos, std::string *out)
{
    out->clear();
    std::size_t p = *pos;
    while (p < s.size()) {
        char c = s[p++];
        if (c == '"') {
            *pos = p;
            return true;
        }
        if (c != '\\') {
            *out += c;
            continue;
        }
        if (p >= s.size())
            return false;
        char esc = s[p++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (p + 4 > s.size())
                return false;
            unsigned v = 0;
            for (int i = 0; i < 4; i++) {
                char h = s[p++];
                v <<= 4;
                if (h >= '0' && h <= '9')
                    v |= unsigned(h - '0');
                else if (h >= 'a' && h <= 'f')
                    v |= unsigned(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    v |= unsigned(h - 'A' + 10);
                else
                    return false;
            }
            if (v > 0xFF)
                return false;   // the writer only escapes raw bytes
            *out += char(v);
            break;
          }
          default:
            return false;
        }
    }
    return false;
}

bool
eatLiteral(const std::string &s, std::size_t *pos, const char *lit)
{
    std::size_t n = std::strlen(lit);
    if (s.compare(*pos, n, lit) != 0)
        return false;
    *pos += n;
    return true;
}

std::string
headerLine(const std::string &key, const std::string &payload)
{
    std::string line = kHeaderPrefix;
    line += escapeJson(key);
    line += kCheckPrefix;
    line += hex16(fnv1a64(payload));
    line += kHeaderSuffix;
    return line;
}

/** Parse a header line into the recorded key and integrity hash. */
bool
parseHeader(const std::string &line, std::string *key,
            std::string *check)
{
    std::size_t pos = 0;
    if (!eatLiteral(line, &pos, kHeaderPrefix))
        return false;
    if (!readStringBody(line, &pos, key))
        return false;
    // readStringBody consumed the closing quote; kCheckPrefix starts
    // with one, so step back over it.
    pos--;
    if (!eatLiteral(line, &pos, kCheckPrefix))
        return false;
    if (pos + 16 > line.size())
        return false;
    *check = line.substr(pos, 16);
    pos += 16;
    return eatLiteral(line, &pos, kHeaderSuffix) && pos == line.size();
}

/** Atomic write: temp file in the target's directory, then rename. */
bool
writeAtomic(const std::string &path, const std::string &content,
            std::uint64_t seq, std::string *error)
{
    std::string tmp = path + ".tmp." + std::to_string(long(::getpid())) +
                      "." + std::to_string(seq);
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (error)
            *error = "cannot open '" + tmp + "' for writing";
        return false;
    }
    out << content;
    out.close();
    if (!out) {
        std::remove(tmp.c_str());
        if (error)
            *error = "write to '" + tmp + "' failed";
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        if (error)
            *error = "cannot rename '" + tmp + "' to '" + path + "'";
        return false;
    }
    return true;
}

/** Slurp a whole file; false (not an error) when it does not exist. */
bool
slurp(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    *out = os.str();
    return !in.bad();
}

/** An flock(2)-scoped advisory lock; no-throw, best effort on systems
 *  or filesystems without flock support. */
class ScopedFlock
{
  public:
    explicit ScopedFlock(const std::string &path)
    {
        _fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (_fd >= 0)
            ::flock(_fd, LOCK_EX);
    }

    ~ScopedFlock()
    {
        if (_fd >= 0) {
            ::flock(_fd, LOCK_UN);
            ::close(_fd);
        }
    }

    ScopedFlock(const ScopedFlock &) = delete;
    ScopedFlock &operator=(const ScopedFlock &) = delete;

  private:
    int _fd = -1;
};

/** Read exactly [off, off+len) of @p path via pread(2); false on any
 *  short read (a rewritten or truncated entry — caller falls back). */
bool
preadRange(const std::string &path, std::uint64_t off, std::size_t len,
           std::string *out)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return false;
    out->resize(len);
    std::size_t got = 0;
    while (got < len) {
        ssize_t n = ::pread(fd, out->data() + got, len - got,
                            off_t(off + got));
        if (n <= 0)
            break;
        got += std::size_t(n);
    }
    ::close(fd);
    return got == len;
}

bool
isEntryName(const std::string &name)
{
    return name.size() == 14 + 5 &&
           name.compare(name.size() - 5, 5, ".json") == 0 &&
           name.find_first_not_of("0123456789abcdef") == 14;
}

/** Parse 16 lowercase hex digits; false on anything else. */
bool
hexToU64(const std::string &hex, std::uint64_t *out)
{
    if (hex.size() != 16)
        return false;
    std::uint64_t v = 0;
    for (char c : hex) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= std::uint64_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= std::uint64_t(c - 'a' + 10);
        else
            return false;
    }
    *out = v;
    return true;
}

/** The 16-hex key hash an entry path encodes (shard + stem). */
bool
entryPathHash(const std::string &path, std::uint64_t *out)
{
    fs::path p(path);
    std::string stem = p.filename().string();
    if (!isEntryName(stem))
        return false;
    return hexToU64(p.parent_path().filename().string() +
                        stem.substr(0, 14),
                    out);
}

/** Every *.json entry path under @p root (unsorted). */
std::vector<std::string>
listEntries(const std::string &root, std::uint64_t *corrupt_files)
{
    std::vector<std::string> entries;
    std::error_code ec;
    for (const fs::directory_entry &shard :
         fs::directory_iterator(root, ec)) {
        if (!shard.is_directory(ec))
            continue;
        std::string shard_name = shard.path().filename().string();
        if (shard_name.size() != 2 ||
            shard_name.find_first_not_of("0123456789abcdef") !=
                std::string::npos)
            continue;
        for (const fs::directory_entry &file :
             fs::directory_iterator(shard.path(), ec)) {
            std::string name = file.path().filename().string();
            if (isEntryName(name))
                entries.push_back(file.path().string());
            else if (corrupt_files && name.size() > 8 &&
                     name.compare(name.size() - 8, 8, ".corrupt") == 0)
                (*corrupt_files)++;
        }
    }
    std::sort(entries.begin(), entries.end());
    return entries;
}

} // namespace

ResultStore::~ResultStore() = default;

std::string
ResultStore::keyHash(const std::string &key)
{
    return hex16(fnv1a64(key));
}

std::string
ResultStore::entryPath(const std::string &key) const
{
    std::string hash = keyHash(key);
    return _root + "/" + hash.substr(0, 2) + "/" + hash.substr(2) +
           ".json";
}

bool
ResultStore::open(const std::string &root, std::string *error)
{
    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec || !fs::is_directory(root)) {
        if (error)
            *error = "cannot create result store at '" + root + "'";
        return false;
    }
    _root = root;
    return true;
}

void
ResultStore::quarantine(const std::string &path)
{
    if (std::rename(path.c_str(), (path + ".corrupt").c_str()) != 0)
        std::remove(path.c_str());
    _quarantined.fetch_add(1);
}

void
ResultStore::touchSidecar(const std::string &entry_path)
{
    // Only the sidecar's mtime matters to gc; the decimal timestamp in
    // the content is for humans. A concurrent toucher can tear the
    // content, never the mtime.
    auto now = std::chrono::system_clock::now().time_since_epoch();
    std::ofstream out(entry_path + ".atime",
                      std::ios::binary | std::ios::trunc);
    out << std::chrono::duration_cast<std::chrono::seconds>(now).count()
        << "\n";
}

bool
ResultStore::readEntry(const std::string &path, std::string *key,
                       std::string *payload, bool *corrupt,
                       std::uint32_t *payloadOff)
{
    *corrupt = false;
    std::string content;
    if (!slurp(path, &content))
        return false;

    std::size_t nl = content.find('\n');
    if (nl == std::string::npos) {
        *corrupt = true;
        return false;
    }
    std::string header = content.substr(0, nl);
    std::string body = content.substr(nl + 1);
    if (!body.empty() && body.back() == '\n')
        body.pop_back();
    else {
        *corrupt = true;    // torn write can't survive rename; corrupt
        return false;
    }

    std::string check;
    if (!parseHeader(header, key, &check) ||
        check != hex16(fnv1a64(body))) {
        *corrupt = true;
        return false;
    }
    if (payloadOff)
        *payloadOff = std::uint32_t(nl + 1);
    *payload = std::move(body);
    return true;
}

bool
ResultStore::readEntryCounted(const std::string &path, std::string *key,
                              std::string *payload, bool *corrupt,
                              std::uint32_t *payloadOff) const
{
    _entryParses.fetch_add(1);
    return readEntry(path, key, payload, corrupt, payloadOff);
}

std::shared_ptr<const ShardIndex>
ResultStore::shardIndexFor(const std::string &shard_dir) const
{
    std::lock_guard<std::mutex> guard(_indexMu);
    auto it = _indexes.find(shard_dir);
    if (it != _indexes.end())
        return it->second;

    bool corrupt = false;
    std::shared_ptr<const ShardIndex> idx =
        ShardIndex::load(shard_dir, &corrupt);
    if (corrupt) {
        // Same policy as a corrupt entry: move it aside, don't serve
        // from it, let the next buildIndexes() replace it.
        std::string path = shard_dir + "/" + kShardIndexFile;
        if (std::rename(path.c_str(),
                        (path + ".corrupt").c_str()) != 0)
            std::remove(path.c_str());
        _quarantined.fetch_add(1);
    }
    _indexes.emplace(shard_dir, idx);
    return idx;
}

bool
ResultStore::lookup(const std::string &key, std::string *payload)
{
    if (!isOpen())
        return false;
    std::string path = entryPath(key);

    // Fast path: serve the payload bytes by the shard index's
    // (offset, length, hash) record — no header parse, no unescaping.
    // Any disagreement with the file (entry rewritten since the index
    // was built, quarantined, evicted) drops to the scan path below.
    std::uint64_t hash = fnv1a64(key);
    auto idx = shardIndexFor(fs::path(path).parent_path().string());
    if (idx) {
        ShardIndex::Record rec;
        if (idx->find(key, hash, &rec)) {
            std::string body;
            if (preadRange(path, rec.payloadOff, rec.payloadLen,
                           &body) &&
                fnv1a64(body) == rec.payloadCheck) {
                _hits.fetch_add(1);
                _indexHits.fetch_add(1);
                _bytesRead.fetch_add(body.size());
                touchSidecar(path);
                *payload = std::move(body);
                return true;
            }
            _indexStale.fetch_add(1);
        }
    }

    std::string stored_key, body;
    bool corrupt = false;
    if (!readEntryCounted(path, &stored_key, &body, &corrupt)) {
        if (corrupt)
            quarantine(path);
        _misses.fetch_add(1);
        return false;
    }
    if (stored_key != key) {
        // A 64-bit hash collision: not our entry, not corruption.
        _misses.fetch_add(1);
        return false;
    }
    _hits.fetch_add(1);
    _bytesRead.fetch_add(body.size());
    touchSidecar(path);
    *payload = std::move(body);
    return true;
}

bool
ResultStore::touch(const std::string &key)
{
    if (!isOpen())
        return false;
    std::string path = entryPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec) || ec)
        return false;
    touchSidecar(path);
    return true;
}

bool
ResultStore::publish(const std::string &key, const std::string &payload,
                     std::string *error)
{
    if (!isOpen()) {
        if (error)
            *error = "result store is not open";
        return false;
    }
    if (payload.find('\n') != std::string::npos) {
        if (error)
            *error = "store payloads are single lines (embedded "
                     "newline rejected)";
        return false;
    }
    std::string path = entryPath(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec) {
        if (error)
            *error = "cannot create store shard directory for '" +
                     path + "'";
        return false;
    }

    std::string content = headerLine(key, payload);
    content += '\n';
    content += payload;
    content += '\n';

    // The advisory lock serializes writers of this entry; readers never
    // take it (rename is atomic), so a reader can't block a writer.
    ScopedFlock lock(path + ".lock");
    if (!writeAtomic(path, content, _tmpSeq.fetch_add(1), error))
        return false;
    touchSidecar(path);
    _publishes.fetch_add(1);
    _bytesWritten.fetch_add(content.size());
    return true;
}

StoreCounters
ResultStore::counters() const
{
    StoreCounters c;
    c.hits = _hits.load();
    c.misses = _misses.load();
    c.publishes = _publishes.load();
    c.bytesRead = _bytesRead.load();
    c.bytesWritten = _bytesWritten.load();
    c.quarantined = _quarantined.load();
    c.indexHits = _indexHits.load();
    c.indexStale = _indexStale.load();
    c.entryParses = _entryParses.load();
    return c;
}

StoreUsage
ResultStore::usage(std::string *error) const
{
    StoreUsage u;
    if (!isOpen()) {
        if (error)
            *error = "result store is not open";
        return u;
    }
    std::error_code ec;
    for (const std::string &path : listEntries(_root, &u.corrupt)) {
        u.entries++;
        u.bytes += fs::file_size(path, ec);
    }
    return u;
}

StoreUsage
ResultStore::verifyAll(std::vector<std::string> *corruptPaths,
                       std::string *error)
{
    StoreUsage u;
    if (!isOpen()) {
        if (error)
            *error = "result store is not open";
        return u;
    }
    std::error_code ec;
    for (const std::string &path : listEntries(_root, &u.corrupt)) {
        std::string key, payload;
        bool corrupt = false;
        bool ok = readEntryCounted(path, &key, &payload, &corrupt);
        // A well-formed entry filed under the wrong path is as
        // unservable as a bad hash: lookups address by key hash.
        if (ok && entryPath(key) != path)
            ok = false;
        if (!ok) {
            quarantine(path);
            u.corrupt++;
            if (corruptPaths)
                corruptPaths->push_back(path);
            continue;
        }
        u.entries++;
        u.bytes += fs::file_size(path, ec);
    }
    return u;
}

GcOutcome
ResultStore::gc(const GcOptions &options, std::string *error)
{
    GcOutcome out;
    if (!isOpen()) {
        if (error)
            *error = "result store is not open";
        return out;
    }

    // One collector at a time; readers and writers are unaffected
    // (they never take this lock).
    ScopedFlock lock(_root + "/.gc.lock");

    struct Entry
    {
        std::string path;
        std::uint64_t size;
        fs::file_time_type lastUse;
    };
    std::vector<Entry> entries;
    std::error_code ec;
    for (const std::string &path : listEntries(_root, nullptr)) {
        Entry e;
        e.path = path;
        e.size = fs::file_size(path, ec);
        e.lastUse = fs::last_write_time(path + ".atime", ec);
        if (ec)
            e.lastUse = fs::last_write_time(path, ec);
        entries.push_back(std::move(e));
    }
    out.scanned = entries.size();

    // Oldest first; ties broken by path so gc is deterministic.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.lastUse != b.lastUse)
                      return a.lastUse < b.lastUse;
                  return a.path < b.path;
              });

    std::uint64_t total = 0;
    for (const Entry &e : entries)
        total += e.size;

    auto now = fs::file_time_type::clock::now();
    std::vector<std::string> touched_shards;
    auto removeEntry = [&](const Entry &e) {
        fs::remove(e.path, ec);
        fs::remove(e.path + ".atime", ec);
        fs::remove(e.path + ".lock", ec);
        touched_shards.push_back(
            fs::path(e.path).parent_path().string());
        out.removed++;
        out.bytesRemoved += e.size;
        total -= e.size;
    };

    std::size_t i = 0;
    if (options.maxAgeSeconds > 0) {
        auto cutoff = now - std::chrono::duration_cast<
                                fs::file_time_type::duration>(
                                std::chrono::duration<double>(
                                    options.maxAgeSeconds));
        for (; i < entries.size() && entries[i].lastUse < cutoff; i++)
            removeEntry(entries[i]);
    }
    if (options.maxBytes > 0)
        for (; i < entries.size() && total > options.maxBytes; i++)
            removeEntry(entries[i]);

    for (; i < entries.size(); i++) {
        out.entriesKept++;
        out.bytesKept += entries[i].size;
    }

    // An index over a shard gc evicted from would serve only stale
    // fallbacks; drop it (the next buildIndexes() re-creates it) and
    // forget any cached mapping of it.
    if (!touched_shards.empty()) {
        std::sort(touched_shards.begin(), touched_shards.end());
        touched_shards.erase(std::unique(touched_shards.begin(),
                                         touched_shards.end()),
                             touched_shards.end());
        std::lock_guard<std::mutex> guard(_indexMu);
        for (const std::string &shard : touched_shards) {
            fs::remove(shard + "/" + kShardIndexFile, ec);
            fs::remove(shard + "/" + kShardIndexFile + ".lock", ec);
            _indexes.erase(shard);
        }
    }

    // Sweep sidecars and locks whose entry is gone (earlier gc kills,
    // quarantines, or crashed writers).
    for (const fs::directory_entry &shard :
         fs::directory_iterator(_root, ec)) {
        if (!shard.is_directory(ec))
            continue;
        for (const fs::directory_entry &file :
             fs::directory_iterator(shard.path(), ec)) {
            std::string name = file.path().filename().string();
            for (const char *suffix : {".json.atime", ".json.lock"}) {
                std::size_t n = std::strlen(suffix);
                if (name.size() > n &&
                    name.compare(name.size() - n, n, suffix) == 0) {
                    std::string entry = file.path().string();
                    entry.resize(entry.size() + 5 - n);  // keep ".json"
                    if (!fs::exists(entry, ec))
                        fs::remove(file.path(), ec);
                }
            }
        }
    }
    return out;
}

bool
ResultStore::buildIndexes(IndexOutcome *outcome, std::string *error)
{
    IndexOutcome out;
    bool ok = true;
    if (!isOpen()) {
        if (error)
            *error = "result store is not open";
        if (outcome)
            *outcome = out;
        return false;
    }

    std::error_code ec;
    for (const fs::directory_entry &shard :
         fs::directory_iterator(_root, ec)) {
        if (!shard.is_directory(ec))
            continue;
        std::string shard_name = shard.path().filename().string();
        if (shard_name.size() != 2 ||
            shard_name.find_first_not_of("0123456789abcdef") !=
                std::string::npos)
            continue;
        std::string shard_dir = shard.path().string();

        bool corrupt_index = false;
        std::unique_ptr<ShardIndex> old =
            ShardIndex::load(shard_dir, &corrupt_index);
        if (corrupt_index) {
            std::string ipath = shard_dir + "/" + kShardIndexFile;
            if (std::rename(ipath.c_str(),
                            (ipath + ".corrupt").c_str()) != 0)
                std::remove(ipath.c_str());
            _quarantined.fetch_add(1);
            out.corruptIndexes++;
        }

        // The one deliberately parse-heavy pass: every valid,
        // correctly-filed entry in the shard becomes one record.
        std::vector<IndexEntry> fresh;
        std::uint64_t agreed_here = 0;
        for (const fs::directory_entry &file :
             fs::directory_iterator(shard.path(), ec)) {
            std::string name = file.path().filename().string();
            if (!isEntryName(name))
                continue;
            std::string path = file.path().string();
            std::string key, payload;
            bool corrupt = false;
            std::uint32_t payload_off = 0;
            if (!readEntryCounted(path, &key, &payload, &corrupt,
                                  &payload_off))
                continue;   // verifyAll owns quarantining; just skip
            if (entryPath(key) != path)
                continue;   // misfiled entries are unservable
            IndexEntry e;
            e.key = key;
            e.payloadOff = payload_off;
            e.payloadLen = std::uint32_t(payload.size());
            e.payloadCheck = fnv1a64(payload);
            if (old) {
                ShardIndex::Record rec;
                if (old->find(e.key, fnv1a64(e.key), &rec) &&
                    rec.payloadOff == e.payloadOff &&
                    rec.payloadLen == e.payloadLen &&
                    rec.payloadCheck == e.payloadCheck)
                    agreed_here++;
            }
            fresh.push_back(std::move(e));
        }

        out.agreed += agreed_here;
        if (old)
            out.staleDropped += std::uint64_t(old->size()) - agreed_here;

        std::uint64_t record_count = fresh.size();
        if (!writeShardIndex(shard_dir, std::move(fresh), error)) {
            ok = false;
            continue;
        }
        if (record_count > 0) {
            out.shards++;
            out.entries += record_count;
        }
    }

    {
        // Drop every cached mapping so this handle (and its threads)
        // see the fresh generation on the next lookup.
        std::lock_guard<std::mutex> guard(_indexMu);
        _indexes.clear();
    }
    if (outcome)
        *outcome = out;
    return ok;
}

bool
ResultStore::exportTo(const std::string &path, std::uint64_t *exported,
                      std::string *error) const
{
    if (!isOpen()) {
        if (error)
            *error = "result store is not open";
        return false;
    }
    std::ostringstream os;
    if (!exportLines(
            ExportFilter{},
            [&](const std::string &line) {
                os << line << "\n";
                return true;
            },
            exported, error))
        return false;
    return writeAtomic(path, os.str(), 0, error);
}

bool
ResultStore::exportLines(
    const ExportFilter &filter,
    const std::function<bool(const std::string &line)> &emit,
    std::uint64_t *exported, std::string *error) const
{
    if (!isOpen()) {
        if (error)
            *error = "result store is not open";
        return false;
    }
    std::error_code ec;
    bool filtered = filter.newerThanSeconds > 0;
    fs::file_time_type cutoff{};
    if (filtered)
        cutoff = fs::file_time_type::clock::now() -
                 std::chrono::duration_cast<
                     fs::file_time_type::duration>(
                     std::chrono::duration<double>(
                         filter.newerThanSeconds));
    std::uint64_t count = 0;
    for (const std::string &entry : listEntries(_root, nullptr)) {
        if (filtered) {
            auto mtime = fs::last_write_time(entry, ec);
            if (ec || mtime < cutoff)
                continue;
        }
        std::string key, payload;
        // Index fast path: the entry's filename is its key hash, so an
        // indexed shard hands sync pulls key and payload bytes without
        // a single header parse. Any mismatch falls back to the scan.
        bool served = false;
        std::uint64_t hash = 0;
        if (entryPathHash(entry, &hash)) {
            auto idx =
                shardIndexFor(fs::path(entry).parent_path().string());
            ShardIndex::Record rec;
            if (idx && idx->findByHash(hash, &rec)) {
                if (preadRange(entry, rec.payloadOff, rec.payloadLen,
                               &payload) &&
                    fnv1a64(payload) == rec.payloadCheck) {
                    key.assign(rec.key.data(), rec.key.size());
                    _indexHits.fetch_add(1);
                    _bytesRead.fetch_add(payload.size());
                    served = true;
                } else {
                    _indexStale.fetch_add(1);
                }
            }
        }
        if (!served) {
            bool corrupt = false;
            if (!readEntryCounted(entry, &key, &payload, &corrupt))
                continue;   // unreadable or corrupt: not exportable
        }
        if (!emit(formatExportLine(key, payload))) {
            if (error)
                *error = "export aborted by consumer";
            return false;
        }
        count++;
    }
    if (exported)
        *exported = count;
    return true;
}

std::string
ResultStore::formatExportLine(const std::string &key,
                              const std::string &payload)
{
    return "{\"key\":\"" + escapeJson(key) + "\",\"payload\":\"" +
           escapeJson(payload) + "\"}";
}

bool
ResultStore::parseExportLine(const std::string &line, std::string *key,
                             std::string *payload)
{
    std::size_t pos = 0;
    if (!eatLiteral(line, &pos, "{\"key\":\"") ||
        !readStringBody(line, &pos, key))
        return false;
    pos--;      // step back over the consumed closing quote
    if (!eatLiteral(line, &pos, "\",\"payload\":\"") ||
        !readStringBody(line, &pos, payload))
        return false;
    pos--;
    return eatLiteral(line, &pos, "\"}") && pos == line.size();
}

bool
ResultStore::importFrom(const std::string &path,
                        std::uint64_t *imported, std::string *error)
{
    if (!isOpen()) {
        if (error)
            *error = "result store is not open";
        return false;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open '" + path + "' for import";
        return false;
    }
    std::uint64_t count = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string key, payload;
        if (!parseExportLine(line, &key, &payload))
            continue;
        if (publish(key, payload, nullptr))
            count++;
    }
    if (in.bad()) {
        if (error)
            *error = "error reading '" + path + "'";
        return false;
    }
    if (imported)
        *imported = count;
    return true;
}

} // namespace store
} // namespace simalpha

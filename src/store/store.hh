/**
 * @file
 * Content-addressed, disk-backed result store shared across shards,
 * supervisors, and successive campaign runs.
 *
 * The store maps an opaque result key (the runner's cache key:
 * manifest hash × workload × instruction cap × seed) to one JSON blob
 * under a sharded directory tree:
 *
 *     <root>/<hh>/<14-hex>.json          the entry (header + payload)
 *     <root>/<hh>/<14-hex>.json.atime    last-use sidecar (LRU for gc)
 *     <root>/<hh>/<14-hex>.json.lock     advisory writer lock
 *
 * where the 16 hex digits are the FNV-1a hash of the key. An entry is
 * two lines: a header recording the full key and an integrity hash of
 * the payload, then the payload verbatim. Publication is atomic
 * (temp-file-then-rename, serialized per entry by an advisory
 * flock(2)); loads verify the integrity hash and the full key (a hash
 * collision therefore reads as a miss, never as a wrong result), and
 * an entry failing its integrity check is quarantined aside as
 * *.corrupt rather than served.
 *
 * The layout itself is the authoritative index, so any number of
 * uncoordinated processes — thread-pool runners, process shards,
 * successive `simalpha --campaign` invocations, or different hosts
 * sharing a filesystem — can read and write one store relying only on
 * POSIX rename/flock/unlink semantics. A reader holding an open
 * descriptor keeps its entry's bytes alive even if gc unlinks the
 * file mid-read.
 *
 * Each shard may additionally carry a binary `index.bin` (see
 * index.hh) built by buildIndexes(). When present and valid, lookups
 * and export walks serve payload bytes by (offset, length, FNV) out of
 * the entry files directly — zero JSON header parsing and zero key
 * unescaping on the warm path. The index is purely an accelerator:
 * entries published after the build, rewritten entries, and corrupt or
 * missing index files all fall back to the scan path transparently
 * (a corrupt index is quarantined as index.bin.corrupt). A handle
 * caches each shard's index for its lifetime; buildIndexes() on the
 * same handle refreshes the cache.
 *
 * The store knows nothing about campaigns or cells: keys and payloads
 * are opaque strings, which keeps this library free of any dependency
 * on the runner (the runner depends on the store, not vice versa).
 */

#ifndef SIMALPHA_STORE_STORE_HH
#define SIMALPHA_STORE_STORE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace simalpha {
namespace store {

class ShardIndex;

/** Traffic counters of one open store handle (this process's use of
 *  the store, not the store's on-disk contents). */
struct StoreCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t publishes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t quarantined = 0;
    /** Hits served straight off a shard index (subset of hits). */
    std::uint64_t indexHits = 0;
    /** Index records that no longer matched the entry bytes (the
     *  lookup fell back to the scan path). */
    std::uint64_t indexStale = 0;
    /** Full entry-file parses (header decode + key unescape). A warm
     *  indexed rerun keeps this at zero — the assertion behind the
     *  "no per-entry JSON parsing" guarantee. */
    std::uint64_t entryParses = 0;
};

/** On-disk contents, from a directory walk. */
struct StoreUsage
{
    std::uint64_t entries = 0;      ///< well-formed *.json entries seen
    std::uint64_t bytes = 0;        ///< their total size
    std::uint64_t corrupt = 0;      ///< *.corrupt quarantine files
};

/** Which entries an exportLines() walk emits. */
struct ExportFilter
{
    /** Only entries whose on-disk mtime lies within the last
     *  this-many seconds (0 = every entry). Lets a fleet dispatcher
     *  harvest just what a worker published during a job instead of
     *  re-shipping the whole store. */
    double newerThanSeconds = 0.0;
};

struct GcOptions
{
    /** Evict least-recently-used entries until the store holds at most
     *  this many bytes (0 = no size bound). */
    std::uint64_t maxBytes = 0;
    /** Evict entries not used for longer than this (0 = no age bound). */
    double maxAgeSeconds = 0.0;
};

/** What buildIndexes() did, including how much of any previous index
 *  generation the fresh scan confirmed. */
struct IndexOutcome
{
    std::uint64_t shards = 0;        ///< index files written
    std::uint64_t entries = 0;       ///< records across those files
    /** Records of the previous indexes the rebuild reproduced
     *  byte-for-byte (key, offsets, payload hash all unchanged). */
    std::uint64_t agreed = 0;
    /** Previous-index records the scan contradicted or dropped
     *  (entry rewritten, quarantined, or gone). */
    std::uint64_t staleDropped = 0;
    /** index.bin files that failed validation and were quarantined
     *  aside as index.bin.corrupt. */
    std::uint64_t corruptIndexes = 0;
};

struct GcOutcome
{
    std::uint64_t scanned = 0;
    std::uint64_t removed = 0;
    std::uint64_t bytesRemoved = 0;
    std::uint64_t entriesKept = 0;
    std::uint64_t bytesKept = 0;
};

class ResultStore
{
  public:
    ResultStore() = default;
    ~ResultStore();
    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** Open a store rooted at @p root, creating the directory if
     *  needed. Returns false with *error filled if the root cannot be
     *  created or is not a directory. */
    bool open(const std::string &root, std::string *error);

    bool isOpen() const { return !_root.empty(); }
    const std::string &root() const { return _root; }

    /**
     * Look @p key up. On a hit fills *payload with the stored blob and
     * returns true. A missing entry, a hash collision (entry recording
     * a different key), or a corrupt entry is a miss; corrupt entries
     * are additionally quarantined as *.corrupt. Thread-safe.
     */
    bool lookup(const std::string &key, std::string *payload);

    /**
     * Publish @p payload under @p key: atomic temp-then-rename under an
     * advisory per-entry flock, so concurrent writers of the same key
     * serialize and the last writer wins with no torn state visible to
     * any reader. Returns false with *error filled on I/O failure.
     * Thread-safe.
     */
    bool publish(const std::string &key, const std::string &payload,
                 std::string *error);

    /**
     * Refresh @p key's last-use sidecar without reading the payload,
     * as if the entry had just been looked up. For callers who decide
     * from other state that an entry is still needed (e.g. a warm
     * sampled rerun whose result was served without touching its
     * checkpoint blobs) — without this, gc's LRU order would evict
     * exactly the entries the next cold run needs. Returns false if
     * no entry exists under @p key. Thread-safe.
     */
    bool touch(const std::string &key);

    /** Snapshot of this handle's traffic counters. */
    StoreCounters counters() const;

    /** Walk the tree and report what is on disk. */
    StoreUsage usage(std::string *error) const;

    /**
     * Integrity-check every entry (header well-formed, payload hash
     * matches, key hashes to the entry's own path). Corrupt entries
     * are quarantined as *.corrupt and their paths appended to
     * *corruptPaths (may be null). Returns the post-walk usage; the
     * `corrupt` field counts quarantine files including ones just
     * created.
     */
    StoreUsage verifyAll(std::vector<std::string> *corruptPaths,
                         std::string *error);

    /**
     * Evict entries least-recently-used first (last use = the atime
     * sidecar's mtime, falling back to the entry's own mtime) until
     * both bounds of @p options hold. Holds an exclusive flock on
     * <root>/.gc.lock so two collectors never race; concurrent readers
     * are safe because an unlinked-but-open entry remains readable.
     * Orphan sidecar/lock files are swept too.
     */
    GcOutcome gc(const GcOptions &options, std::string *error);

    /**
     * (Re)build every shard's index.bin from the entries on disk:
     * each shard is scanned once (this is the one deliberately
     * parse-heavy operation), records are written sorted by key hash,
     * and the file is published atomically under an advisory flock on
     * index.bin.lock. Shards left with no valid entries lose their
     * index file. Invalid existing indexes are quarantined as
     * index.bin.corrupt and counted; surviving records are compared
     * against the fresh scan so callers can report index-vs-scan
     * agreement. Refreshes this handle's index cache. Returns false
     * with *error filled on I/O failure (the outcome still reflects
     * the work done up to that point).
     */
    bool buildIndexes(IndexOutcome *outcome, std::string *error);

    /**
     * Serialize every valid entry into @p path as JSONL
     * ({"key":...,"payload":...} per line, written atomically), for
     * moving results between hosts. *exported (may be null) receives
     * the entry count.
     */
    bool exportTo(const std::string &path, std::uint64_t *exported,
                  std::string *error) const;

    /** Publish every line of an exportTo() file into this store
     *  (last-writer-wins with whatever is already present). */
    bool importFrom(const std::string &path, std::uint64_t *imported,
                    std::string *error);

    /**
     * Stream every valid entry passing @p filter to @p emit as one
     * exportTo()-format line (no trailing newline), without building
     * the whole dump in memory — the transport the serve protocol's
     * `sync` op uses. @p emit returning false aborts the walk (the
     * consumer's error wins); *exported (may be null) receives the
     * emitted count.
     */
    bool exportLines(
        const ExportFilter &filter,
        const std::function<bool(const std::string &line)> &emit,
        std::uint64_t *exported, std::string *error) const;

    /** One dump line, {"key":"...","payload":"..."} — the format
     *  exportTo() writes and importFrom() reads. */
    static std::string formatExportLine(const std::string &key,
                                        const std::string &payload);

    /** Parse formatExportLine() output; false on anything else. */
    static bool parseExportLine(const std::string &line,
                                std::string *key, std::string *payload);

    /** 16-hex-digit FNV-1a of @p key — the entry address. Exposed for
     *  tests and external tooling. */
    static std::string keyHash(const std::string &key);

  private:
    /** <root>/<hh>/<14-hex>.json for @p key. */
    std::string entryPath(const std::string &key) const;

    /** Read + validate one entry file; fills key/payload on success.
     *  Returns false for unreadable or corrupt entries (*corrupt set
     *  true when the contents are malformed rather than missing).
     *  *payloadOff (may be null) receives the payload's byte offset
     *  within the file — what the shard index records. */
    static bool readEntry(const std::string &path, std::string *key,
                          std::string *payload, bool *corrupt,
                          std::uint32_t *payloadOff = nullptr);

    /** readEntry() plus the entryParses counter — every scan-path
     *  parse goes through here so the warm-path zero-parse guarantee
     *  is measurable. */
    bool readEntryCounted(const std::string &path, std::string *key,
                          std::string *payload, bool *corrupt,
                          std::uint32_t *payloadOff = nullptr) const;

    /** The cached (possibly absent) index of the shard directory
     *  holding @p entry_path's entries. Loads and validates on first
     *  use; quarantines a corrupt index file. */
    std::shared_ptr<const ShardIndex>
    shardIndexFor(const std::string &shard_dir) const;

    /** Move a failed entry aside as <path>.corrupt (best effort). */
    void quarantine(const std::string &path);

    /** Record "used now" in the entry's atime sidecar (best effort). */
    static void touchSidecar(const std::string &entry_path);

    std::string _root;

    mutable std::atomic<std::uint64_t> _hits{0};
    mutable std::atomic<std::uint64_t> _misses{0};
    mutable std::atomic<std::uint64_t> _publishes{0};
    mutable std::atomic<std::uint64_t> _bytesRead{0};
    mutable std::atomic<std::uint64_t> _bytesWritten{0};
    mutable std::atomic<std::uint64_t> _quarantined{0};
    mutable std::atomic<std::uint64_t> _indexHits{0};
    mutable std::atomic<std::uint64_t> _indexStale{0};
    mutable std::atomic<std::uint64_t> _entryParses{0};
    std::atomic<std::uint64_t> _tmpSeq{0};

    /** Per-shard index cache (shard dir -> loaded index or nullptr for
     *  "no valid index"), filled lazily, refreshed by buildIndexes(). */
    mutable std::mutex _indexMu;
    mutable std::map<std::string, std::shared_ptr<const ShardIndex>>
        _indexes;
};

} // namespace store
} // namespace simalpha

#endif // SIMALPHA_STORE_STORE_HH

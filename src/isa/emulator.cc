#include "emulator.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"

namespace simalpha {

SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    auto it = _pages.find(addr >> kPageShift);
    return it == _pages.end() ? nullptr : it->second.get();
}

SparseMemory::Page &
SparseMemory::touchPage(Addr addr)
{
    auto &slot = _pages[addr >> kPageShift];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

RegVal
SparseMemory::read64(Addr addr) const
{
    RegVal v = 0;
    // Handle straddling page boundaries byte-by-byte; the common case is
    // an aligned access entirely within one page.
    for (int i = 0; i < 8; i++) {
        Addr a = addr + Addr(i);
        const Page *p = findPage(a);
        std::uint8_t byte = p ? (*p)[a & (kPageBytes - 1)] : 0;
        v |= RegVal(byte) << (8 * i);
    }
    return v;
}

void
SparseMemory::write64(Addr addr, RegVal value)
{
    for (int i = 0; i < 8; i++) {
        Addr a = addr + Addr(i);
        touchPage(a)[a & (kPageBytes - 1)] =
            std::uint8_t((value >> (8 * i)) & 0xff);
    }
}

std::uint32_t
SparseMemory::read32(Addr addr) const
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; i++) {
        Addr a = addr + Addr(i);
        const Page *p = findPage(a);
        std::uint8_t byte = p ? (*p)[a & (kPageBytes - 1)] : 0;
        v |= std::uint32_t(byte) << (8 * i);
    }
    return v;
}

void
SparseMemory::write32(Addr addr, std::uint32_t value)
{
    for (int i = 0; i < 4; i++) {
        Addr a = addr + Addr(i);
        touchPage(a)[a & (kPageBytes - 1)] =
            std::uint8_t((value >> (8 * i)) & 0xff);
    }
}

std::vector<std::pair<Addr, RegVal>>
SparseMemory::exportWords() const
{
    std::vector<std::pair<Addr, RegVal>> words;
    for (const auto &[page_no, page] : _pages) {
        Addr base = page_no << kPageShift;
        for (Addr off = 0; off < kPageBytes; off += 8) {
            RegVal v = 0;
            for (int i = 0; i < 8; i++)
                v |= RegVal((*page)[off + Addr(i)]) << (8 * i);
            if (v != 0)
                words.emplace_back(base + off, v);
        }
    }
    return words;
}

namespace {

double
asDouble(RegVal v)
{
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

RegVal
asBits(double d)
{
    RegVal v;
    std::memcpy(&v, &d, sizeof(v));
    return v;
}

} // namespace

Emulator::Emulator(const Program &program)
    : _prog(program), _pc(program.entryPc)
{
    for (const auto &[addr, value] : program.data)
        _mem.write64(addr, value);
}

RegVal
Emulator::reg(RegIndex r) const
{
    if (r == kNoReg || isZeroRegIndex(r))
        return 0;
    return _regs[r];
}

void
Emulator::setReg(RegIndex r, RegVal v)
{
    if (r == kNoReg || isZeroRegIndex(r))
        return;
    _regs[r] = v;
}

RegVal
Emulator::readIntReg(int i) const
{
    return reg(intReg(i));
}

RegVal
Emulator::readFpRaw(int i) const
{
    return reg(fpReg(i));
}

double
Emulator::readFpReg(int i) const
{
    return asDouble(reg(fpReg(i)));
}

void
Emulator::writeIntReg(int i, RegVal v)
{
    setReg(intReg(i), v);
}

void
Emulator::writeFpReg(int i, double v)
{
    setReg(fpReg(i), asBits(v));
}

Checkpoint
Emulator::checkpoint() const
{
    Checkpoint c;
    c.regs = _regs;
    c.pc = _pc;
    c.seq = _seq;
    c.halted = _halted;
    c.memory = _mem.exportWords();
    return c;
}

void
Emulator::restore(const Checkpoint &ckpt)
{
    _regs = ckpt.regs;
    _pc = ckpt.pc;
    _seq = ckpt.seq;
    _halted = ckpt.halted;
    _mem.clear();
    for (const auto &[addr, value] : ckpt.memory)
        _mem.write64(addr, value);
}

ExecutedInst
Emulator::step()
{
    sim_assert(!_halted);

    std::int64_t idx = _prog.indexOf(_pc);
    if (idx < 0)
        panic("PC 0x%llx outside text segment of '%s'",
              (unsigned long long)_pc, _prog.name.c_str());

    const Instruction &inst = _prog.text[std::size_t(idx)];

    ExecutedInst rec;
    rec.seq = _seq++;
    rec.pc = _pc;
    rec.inst = inst;

    Addr next_pc = _pc + 4;
    bool taken = false;

    auto branch_target = [&]() -> Addr {
        sim_assert(inst.target >= 0);
        return _prog.pcOf(std::size_t(inst.target));
    };

    const RegVal a = reg(inst.ra);
    const RegVal b = reg(inst.rb);
    const std::int64_t sa = std::int64_t(a);

    switch (inst.op) {
      case Op::Addq: setReg(inst.rc, a + b); break;
      case Op::Subq: setReg(inst.rc, a - b); break;
      case Op::Mulq: setReg(inst.rc, a * b); break;
      case Op::And: setReg(inst.rc, a & b); break;
      case Op::Bis: setReg(inst.rc, a | b); break;
      case Op::Xor: setReg(inst.rc, a ^ b); break;
      case Op::Sll: setReg(inst.rc, a << (b & 63)); break;
      case Op::Srl: setReg(inst.rc, a >> (b & 63)); break;
      case Op::Cmpeq: setReg(inst.rc, a == b ? 1 : 0); break;
      case Op::Cmplt:
        setReg(inst.rc, sa < std::int64_t(b) ? 1 : 0);
        break;
      case Op::Cmple:
        setReg(inst.rc, sa <= std::int64_t(b) ? 1 : 0);
        break;
      case Op::Lda:
        setReg(inst.rc, b + RegVal(inst.imm));
        break;
      case Op::Cmoveq:
        if (a == 0)
            setReg(inst.rc, b);
        break;
      case Op::Cmovne:
        if (a != 0)
            setReg(inst.rc, b);
        break;

      case Op::Ldq: case Op::Ldt:
        rec.effAddr = b + RegVal(inst.imm);
        setReg(inst.rc, _mem.read64(rec.effAddr));
        break;
      case Op::Ldl:
        rec.effAddr = b + RegVal(inst.imm);
        setReg(inst.rc,
               RegVal(std::int64_t(std::int32_t(
                   _mem.read32(rec.effAddr)))));
        break;
      case Op::Stq: case Op::Stt:
        rec.effAddr = b + RegVal(inst.imm);
        _mem.write64(rec.effAddr, a);
        break;
      case Op::Stl:
        rec.effAddr = b + RegVal(inst.imm);
        _mem.write32(rec.effAddr, std::uint32_t(a));
        break;

      case Op::Addt:
        setReg(inst.rc, asBits(asDouble(a) + asDouble(b)));
        break;
      case Op::Subt:
        setReg(inst.rc, asBits(asDouble(a) - asDouble(b)));
        break;
      case Op::Mult:
        setReg(inst.rc, asBits(asDouble(a) * asDouble(b)));
        break;
      case Op::Divt: case Op::Divs:
        setReg(inst.rc, asBits(asDouble(a) / asDouble(b)));
        break;
      case Op::Sqrtt: case Op::Sqrts:
        setReg(inst.rc, asBits(std::sqrt(asDouble(b))));
        break;
      case Op::Cpys:
        setReg(inst.rc, a);
        break;

      case Op::Beq: taken = (a == 0); break;
      case Op::Bne: taken = (a != 0); break;
      case Op::Blt: taken = (sa < 0); break;
      case Op::Ble: taken = (sa <= 0); break;
      case Op::Bgt: taken = (sa > 0); break;
      case Op::Bge: taken = (sa >= 0); break;

      case Op::Br:
        taken = true;
        break;
      case Op::Bsr:
        setReg(inst.ra, _pc + 4);
        taken = true;
        break;
      case Op::Jmp:
        taken = true;
        next_pc = b;
        break;
      case Op::Jsr:
        setReg(inst.ra, _pc + 4);
        taken = true;
        next_pc = b;
        break;
      case Op::Ret:
        taken = true;
        next_pc = b;
        break;

      case Op::Unop:
        break;
      case Op::Halt:
        _halted = true;
        rec.halted = true;
        break;
    }

    if (inst.isPcRelBranch() && taken)
        next_pc = branch_target();

    rec.taken = taken;
    rec.nextPc = next_pc;
    _pc = next_pc;
    return rec;
}

} // namespace simalpha

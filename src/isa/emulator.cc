#include "emulator.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace simalpha {

SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    auto it = _pages.find(addr >> kPageShift);
    return it == _pages.end() ? nullptr : it->second.get();
}

SparseMemory::Page &
SparseMemory::touchPage(Addr addr)
{
    auto &slot = _pages[addr >> kPageShift];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

SparseMemory::Page *
SparseMemory::cachedFind(Addr addr) const
{
    Addr page_no = addr >> kPageShift;
    if (_lastPageNo == page_no)
        return _lastPage;
    Page *p = findPage(addr);
    if (p) {
        _lastPageNo = page_no;
        _lastPage = p;
    }
    return p;
}

SparseMemory::Page &
SparseMemory::cachedTouch(Addr addr)
{
    Addr page_no = addr >> kPageShift;
    if (_lastPageNo == page_no)
        return *_lastPage;
    Page &p = touchPage(addr);
    _lastPageNo = page_no;
    _lastPage = &p;
    return p;
}

RegVal
SparseMemory::read64(Addr addr) const
{
    if constexpr (std::endian::native == std::endian::little) {
        // Aligned accesses cannot straddle a page: one lookup + memcpy.
        if ((addr & 7) == 0) {
            const Page *p = cachedFind(addr);
            if (!p)
                return 0;
            RegVal v;
            std::memcpy(&v, p->data() + (addr & (kPageBytes - 1)), 8);
            return v;
        }
    }
    RegVal v = 0;
    // Handle straddling page boundaries byte-by-byte; the common case is
    // an aligned access entirely within one page.
    for (int i = 0; i < 8; i++) {
        Addr a = addr + Addr(i);
        const Page *p = cachedFind(a);
        std::uint8_t byte = p ? (*p)[a & (kPageBytes - 1)] : 0;
        v |= RegVal(byte) << (8 * i);
    }
    return v;
}

void
SparseMemory::write64(Addr addr, RegVal value)
{
    if constexpr (std::endian::native == std::endian::little) {
        if ((addr & 7) == 0) {
            Page &p = cachedTouch(addr);
            std::memcpy(p.data() + (addr & (kPageBytes - 1)), &value, 8);
            return;
        }
    }
    for (int i = 0; i < 8; i++) {
        Addr a = addr + Addr(i);
        cachedTouch(a)[a & (kPageBytes - 1)] =
            std::uint8_t((value >> (8 * i)) & 0xff);
    }
}

std::uint32_t
SparseMemory::read32(Addr addr) const
{
    if constexpr (std::endian::native == std::endian::little) {
        if ((addr & 3) == 0) {
            const Page *p = cachedFind(addr);
            if (!p)
                return 0;
            std::uint32_t v;
            std::memcpy(&v, p->data() + (addr & (kPageBytes - 1)), 4);
            return v;
        }
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; i++) {
        Addr a = addr + Addr(i);
        const Page *p = cachedFind(a);
        std::uint8_t byte = p ? (*p)[a & (kPageBytes - 1)] : 0;
        v |= std::uint32_t(byte) << (8 * i);
    }
    return v;
}

void
SparseMemory::write32(Addr addr, std::uint32_t value)
{
    if constexpr (std::endian::native == std::endian::little) {
        if ((addr & 3) == 0) {
            Page &p = cachedTouch(addr);
            std::memcpy(p.data() + (addr & (kPageBytes - 1)), &value, 4);
            return;
        }
    }
    for (int i = 0; i < 4; i++) {
        Addr a = addr + Addr(i);
        cachedTouch(a)[a & (kPageBytes - 1)] =
            std::uint8_t((value >> (8 * i)) & 0xff);
    }
}

std::vector<std::pair<Addr, RegVal>>
SparseMemory::exportWords() const
{
    std::vector<std::pair<Addr, RegVal>> words;
    for (const auto &[page_no, page] : _pages) {
        Addr base = page_no << kPageShift;
        for (Addr off = 0; off < kPageBytes; off += 8) {
            RegVal v = 0;
            for (int i = 0; i < 8; i++)
                v |= RegVal((*page)[off + Addr(i)]) << (8 * i);
            if (v != 0)
                words.emplace_back(base + off, v);
        }
    }
    return words;
}

namespace {

double
asDouble(RegVal v)
{
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

RegVal
asBits(double d)
{
    RegVal v;
    std::memcpy(&v, &d, sizeof(v));
    return v;
}

} // namespace

DecodedInst
Emulator::decodeOne(const Instruction &inst)
{
    auto src_slot = [](RegIndex r) -> std::uint8_t {
        if (r == kNoReg || isZeroRegIndex(r))
            return std::uint8_t(kZeroSlot);
        return r;
    };
    auto dst_slot = [](RegIndex r) -> std::uint8_t {
        if (r == kNoReg || isZeroRegIndex(r))
            return std::uint8_t(kSinkSlot);
        return r;
    };

    DecodedInst d;
    d.handler = std::uint8_t(inst.op);
    d.srcA = src_slot(inst.ra);
    d.srcB = src_slot(inst.rb);
    // Calls link through ra; everything else writes rc.
    d.dst = dst_slot(inst.isCall() ? inst.ra : inst.rc);
    d.pcRel = inst.isPcRelBranch() ? 1 : 0;
    d.target = inst.target;
    d.targetPc = inst.target >= 0 ? Program::kTextBase + 4 * Addr(inst.target) : 0;
    d.imm = inst.imm;
    return d;
}

Emulator::Emulator(const Program &program)
    : _prog(program), _pc(program.entryPc)
{
    for (const auto &[addr, value] : program.data)
        _mem.write64(addr, value);

    _dec.reserve(program.text.size());
    for (const Instruction &inst : program.text)
        _dec.push_back(decodeOne(inst));
    _ip = program.indexOf(_pc);

    const char *slow = std::getenv("SIMALPHA_SLOWPATH");
    _slowpath = slow && std::strcmp(slow, "1") == 0;
}

RegVal
Emulator::reg(RegIndex r) const
{
    if (r == kNoReg || isZeroRegIndex(r))
        return 0;
    return _regs[r];
}

void
Emulator::setReg(RegIndex r, RegVal v)
{
    if (r == kNoReg || isZeroRegIndex(r))
        return;
    _regs[r] = v;
}

RegVal
Emulator::readIntReg(int i) const
{
    return reg(intReg(i));
}

RegVal
Emulator::readFpRaw(int i) const
{
    return reg(fpReg(i));
}

double
Emulator::readFpReg(int i) const
{
    return asDouble(reg(fpReg(i)));
}

void
Emulator::writeIntReg(int i, RegVal v)
{
    setReg(intReg(i), v);
}

void
Emulator::writeFpReg(int i, double v)
{
    setReg(fpReg(i), asBits(v));
}

Checkpoint
Emulator::checkpoint() const
{
    Checkpoint c;
    std::copy_n(_regs.begin(), c.regs.size(), c.regs.begin());
    c.pc = _pc;
    c.seq = _seq;
    c.halted = _halted;
    c.memory = _mem.exportWords();
    return c;
}

void
Emulator::restore(const Checkpoint &ckpt)
{
    std::copy_n(ckpt.regs.begin(), ckpt.regs.size(), _regs.begin());
    _regs[kZeroSlot] = 0;
    _regs[kSinkSlot] = 0;
    _pc = ckpt.pc;
    _ip = _prog.indexOf(_pc);
    _seq = ckpt.seq;
    _halted = ckpt.halted;
    _mem.clear();
    for (const auto &[addr, value] : ckpt.memory)
        _mem.write64(addr, value);
}

ExecutedInst
Emulator::step()
{
    return _slowpath ? stepSlow() : stepFast();
}

ExecutedInst
Emulator::stepFast()
{
    sim_assert(!_halted);

    if (_ip < 0 || std::size_t(_ip) >= _dec.size())
        panic("PC 0x%llx outside text segment of '%s'",
              (unsigned long long)_pc, _prog.name.c_str());

    const DecodedInst &d = _dec[std::size_t(_ip)];
    const Instruction &inst = _prog.text[std::size_t(_ip)];

    ExecutedInst rec;
    rec.seq = _seq++;
    rec.pc = _pc;
    rec.inst = inst;

    Addr next_pc = _pc + 4;
    std::int64_t next_ip = _ip + 1;
    bool taken = false;
    bool indirect = false;

    RegVal *const regs = _regs.data();
    const RegVal a = regs[d.srcA];
    const RegVal b = regs[d.srcB];
    const std::int64_t sa = std::int64_t(a);

    switch (Op(d.handler)) {
      case Op::Addq: regs[d.dst] = a + b; break;
      case Op::Subq: regs[d.dst] = a - b; break;
      case Op::Mulq: regs[d.dst] = a * b; break;
      case Op::And: regs[d.dst] = a & b; break;
      case Op::Bis: regs[d.dst] = a | b; break;
      case Op::Xor: regs[d.dst] = a ^ b; break;
      case Op::Sll: regs[d.dst] = a << (b & 63); break;
      case Op::Srl: regs[d.dst] = a >> (b & 63); break;
      case Op::Cmpeq: regs[d.dst] = a == b ? 1 : 0; break;
      case Op::Cmplt:
        regs[d.dst] = sa < std::int64_t(b) ? 1 : 0;
        break;
      case Op::Cmple:
        regs[d.dst] = sa <= std::int64_t(b) ? 1 : 0;
        break;
      case Op::Lda:
        regs[d.dst] = b + RegVal(d.imm);
        break;
      case Op::Cmoveq:
        if (a == 0)
            regs[d.dst] = b;
        break;
      case Op::Cmovne:
        if (a != 0)
            regs[d.dst] = b;
        break;

      case Op::Ldq: case Op::Ldt:
        rec.effAddr = b + RegVal(d.imm);
        regs[d.dst] = _mem.read64(rec.effAddr);
        break;
      case Op::Ldl:
        rec.effAddr = b + RegVal(d.imm);
        regs[d.dst] =
            RegVal(std::int64_t(std::int32_t(_mem.read32(rec.effAddr))));
        break;
      case Op::Stq: case Op::Stt:
        rec.effAddr = b + RegVal(d.imm);
        _mem.write64(rec.effAddr, a);
        break;
      case Op::Stl:
        rec.effAddr = b + RegVal(d.imm);
        _mem.write32(rec.effAddr, std::uint32_t(a));
        break;

      case Op::Addt:
        regs[d.dst] = asBits(asDouble(a) + asDouble(b));
        break;
      case Op::Subt:
        regs[d.dst] = asBits(asDouble(a) - asDouble(b));
        break;
      case Op::Mult:
        regs[d.dst] = asBits(asDouble(a) * asDouble(b));
        break;
      case Op::Divt: case Op::Divs:
        regs[d.dst] = asBits(asDouble(a) / asDouble(b));
        break;
      case Op::Sqrtt: case Op::Sqrts:
        regs[d.dst] = asBits(std::sqrt(asDouble(b)));
        break;
      case Op::Cpys:
        regs[d.dst] = a;
        break;

      case Op::Beq: taken = (a == 0); break;
      case Op::Bne: taken = (a != 0); break;
      case Op::Blt: taken = (sa < 0); break;
      case Op::Ble: taken = (sa <= 0); break;
      case Op::Bgt: taken = (sa > 0); break;
      case Op::Bge: taken = (sa >= 0); break;

      case Op::Br:
        taken = true;
        break;
      case Op::Bsr:
        regs[d.dst] = _pc + 4;
        taken = true;
        break;
      case Op::Jmp:
        taken = true;
        indirect = true;
        next_pc = b;
        break;
      case Op::Jsr:
        regs[d.dst] = _pc + 4;
        taken = true;
        indirect = true;
        next_pc = b;
        break;
      case Op::Ret:
        taken = true;
        indirect = true;
        next_pc = b;
        break;

      case Op::Unop:
        break;
      case Op::Halt:
        _halted = true;
        rec.halted = true;
        break;
    }

    if (taken && d.pcRel) {
        sim_assert(d.target >= 0);
        next_ip = d.target;
        next_pc = d.targetPc;
    } else if (indirect) {
        next_ip = _prog.indexOf(next_pc);
    }

    rec.taken = taken;
    rec.nextPc = next_pc;
    _pc = next_pc;
    _ip = next_ip;
    return rec;
}

std::uint64_t
Emulator::run(std::uint64_t max_insts)
{
    if (_slowpath) {
        // Reference mode: the retained switch interpreter, one record at
        // a time, with the per-instruction decode-equivalence assertion.
        std::uint64_t n = 0;
        while (n < max_insts && !_halted) {
            stepSlow();
            ++n;
        }
        return n;
    }
    return runBatch(max_insts);
}

std::uint64_t
Emulator::runBatch(std::uint64_t max_insts)
{
    if (_halted || max_insts == 0)
        return 0;

    RegVal *const regs = _regs.data();
    const DecodedInst *const dec = _dec.data();
    const std::int64_t ntext = std::int64_t(_dec.size());
    std::int64_t ip = _ip;
    Addr pc = _pc;
    std::uint64_t n = 0;
    const DecodedInst *d = nullptr;

#if defined(__GNUC__) || defined(__clang__)
    // Computed-goto dispatch: one indirect jump per instruction, no
    // bounds-checked switch and no per-step record materialization.
    // Order must match the Op enumeration exactly.
    static const void *kJump[] = {
        &&L_Addq, &&L_Subq, &&L_Mulq, &&L_And, &&L_Bis, &&L_Xor,
        &&L_Sll, &&L_Srl, &&L_Cmpeq, &&L_Cmplt, &&L_Cmple, &&L_Lda,
        &&L_Cmoveq, &&L_Cmovne,
        &&L_Ldq, &&L_Stq, &&L_Ldl, &&L_Stl, &&L_Ldt, &&L_Stt,
        &&L_Addt, &&L_Subt, &&L_Mult, &&L_Divt, &&L_Divs,
        &&L_Sqrtt, &&L_Sqrts, &&L_Cpys,
        &&L_Beq, &&L_Bne, &&L_Blt, &&L_Ble, &&L_Bgt, &&L_Bge,
        &&L_Br, &&L_Bsr, &&L_Jmp, &&L_Jsr, &&L_Ret,
        &&L_Unop, &&L_Halt,
    };
    static_assert(sizeof(kJump) / sizeof(kJump[0]) ==
                  std::size_t(Op::Halt) + 1,
                  "jump table must cover every opcode");

#define SIMALPHA_FETCH() \
    do { \
        if (n >= max_insts) \
            goto L_done; \
        if (ip < 0 || ip >= ntext) \
            goto L_badpc; \
        d = &dec[ip]; \
        goto *kJump[d->handler]; \
    } while (0)
#define SIMALPHA_FALL() \
    do { ++ip; pc += 4; ++n; SIMALPHA_FETCH(); } while (0)
#define SIMALPHA_TAKEN() \
    do { \
        sim_assert(d->target >= 0); \
        ip = d->target; \
        pc = d->targetPc; \
        ++n; \
        SIMALPHA_FETCH(); \
    } while (0)
#define SIMALPHA_JUMP(tgt) \
    do { \
        pc = (tgt); \
        ip = _prog.indexOf(pc); \
        ++n; \
        SIMALPHA_FETCH(); \
    } while (0)

    SIMALPHA_FETCH();

L_Addq: regs[d->dst] = regs[d->srcA] + regs[d->srcB]; SIMALPHA_FALL();
L_Subq: regs[d->dst] = regs[d->srcA] - regs[d->srcB]; SIMALPHA_FALL();
L_Mulq: regs[d->dst] = regs[d->srcA] * regs[d->srcB]; SIMALPHA_FALL();
L_And: regs[d->dst] = regs[d->srcA] & regs[d->srcB]; SIMALPHA_FALL();
L_Bis: regs[d->dst] = regs[d->srcA] | regs[d->srcB]; SIMALPHA_FALL();
L_Xor: regs[d->dst] = regs[d->srcA] ^ regs[d->srcB]; SIMALPHA_FALL();
L_Sll:
    regs[d->dst] = regs[d->srcA] << (regs[d->srcB] & 63);
    SIMALPHA_FALL();
L_Srl:
    regs[d->dst] = regs[d->srcA] >> (regs[d->srcB] & 63);
    SIMALPHA_FALL();
L_Cmpeq:
    regs[d->dst] = regs[d->srcA] == regs[d->srcB] ? 1 : 0;
    SIMALPHA_FALL();
L_Cmplt:
    regs[d->dst] =
        std::int64_t(regs[d->srcA]) < std::int64_t(regs[d->srcB]) ? 1 : 0;
    SIMALPHA_FALL();
L_Cmple:
    regs[d->dst] =
        std::int64_t(regs[d->srcA]) <= std::int64_t(regs[d->srcB]) ? 1 : 0;
    SIMALPHA_FALL();
L_Lda: regs[d->dst] = regs[d->srcB] + RegVal(d->imm); SIMALPHA_FALL();
L_Cmoveq:
    if (regs[d->srcA] == 0)
        regs[d->dst] = regs[d->srcB];
    SIMALPHA_FALL();
L_Cmovne:
    if (regs[d->srcA] != 0)
        regs[d->dst] = regs[d->srcB];
    SIMALPHA_FALL();

L_Ldq:
L_Ldt:
    regs[d->dst] = _mem.read64(regs[d->srcB] + RegVal(d->imm));
    SIMALPHA_FALL();
L_Ldl:
    regs[d->dst] = RegVal(std::int64_t(
        std::int32_t(_mem.read32(regs[d->srcB] + RegVal(d->imm)))));
    SIMALPHA_FALL();
L_Stq:
L_Stt:
    _mem.write64(regs[d->srcB] + RegVal(d->imm), regs[d->srcA]);
    SIMALPHA_FALL();
L_Stl:
    _mem.write32(regs[d->srcB] + RegVal(d->imm),
                 std::uint32_t(regs[d->srcA]));
    SIMALPHA_FALL();

L_Addt:
    regs[d->dst] = asBits(asDouble(regs[d->srcA]) + asDouble(regs[d->srcB]));
    SIMALPHA_FALL();
L_Subt:
    regs[d->dst] = asBits(asDouble(regs[d->srcA]) - asDouble(regs[d->srcB]));
    SIMALPHA_FALL();
L_Mult:
    regs[d->dst] = asBits(asDouble(regs[d->srcA]) * asDouble(regs[d->srcB]));
    SIMALPHA_FALL();
L_Divt:
L_Divs:
    regs[d->dst] = asBits(asDouble(regs[d->srcA]) / asDouble(regs[d->srcB]));
    SIMALPHA_FALL();
L_Sqrtt:
L_Sqrts:
    regs[d->dst] = asBits(std::sqrt(asDouble(regs[d->srcB])));
    SIMALPHA_FALL();
L_Cpys: regs[d->dst] = regs[d->srcA]; SIMALPHA_FALL();

L_Beq:
    if (regs[d->srcA] == 0)
        SIMALPHA_TAKEN();
    SIMALPHA_FALL();
L_Bne:
    if (regs[d->srcA] != 0)
        SIMALPHA_TAKEN();
    SIMALPHA_FALL();
L_Blt:
    if (std::int64_t(regs[d->srcA]) < 0)
        SIMALPHA_TAKEN();
    SIMALPHA_FALL();
L_Ble:
    if (std::int64_t(regs[d->srcA]) <= 0)
        SIMALPHA_TAKEN();
    SIMALPHA_FALL();
L_Bgt:
    if (std::int64_t(regs[d->srcA]) > 0)
        SIMALPHA_TAKEN();
    SIMALPHA_FALL();
L_Bge:
    if (std::int64_t(regs[d->srcA]) >= 0)
        SIMALPHA_TAKEN();
    SIMALPHA_FALL();

L_Br: SIMALPHA_TAKEN();
L_Bsr:
    regs[d->dst] = pc + 4;
    SIMALPHA_TAKEN();
L_Jmp: SIMALPHA_JUMP(regs[d->srcB]);
L_Jsr: {
    // Read the target before writing the link: jsr ra,(ra) is legal.
    const RegVal jsr_target = regs[d->srcB];
    regs[d->dst] = pc + 4;
    SIMALPHA_JUMP(jsr_target);
}
L_Ret: SIMALPHA_JUMP(regs[d->srcB]);

L_Unop: SIMALPHA_FALL();
L_Halt:
    _halted = true;
    pc += 4;
    ++ip;
    ++n;
    goto L_done;

L_badpc:
    _pc = pc;
    _ip = ip;
    _seq += n;
    panic("PC 0x%llx outside text segment of '%s'",
          (unsigned long long)pc, _prog.name.c_str());

L_done:
    _pc = pc;
    _ip = ip;
    _seq += n;
    return n;

#undef SIMALPHA_FETCH
#undef SIMALPHA_FALL
#undef SIMALPHA_TAKEN
#undef SIMALPHA_JUMP

#else
    // Portable fallback: the predecoded single-step path in a loop.
    (void)regs;
    (void)dec;
    (void)ntext;
    (void)ip;
    (void)pc;
    (void)d;
    while (n < max_insts && !_halted) {
        stepFast();
        ++n;
    }
    return n;
#endif
}

ExecutedInst
Emulator::stepSlow()
{
    sim_assert(!_halted);

    std::int64_t idx = _prog.indexOf(_pc);
    if (idx < 0)
        panic("PC 0x%llx outside text segment of '%s'",
              (unsigned long long)_pc, _prog.name.c_str());

    const Instruction &inst = _prog.text[std::size_t(idx)];

    // Equivalence check against the predecoded image: the fast paths
    // execute _dec, the slowpath executes the Instruction directly, and
    // the two must describe the same operation.
    sim_assert(_dec[std::size_t(idx)] == decodeOne(inst));

    ExecutedInst rec;
    rec.seq = _seq++;
    rec.pc = _pc;
    rec.inst = inst;

    Addr next_pc = _pc + 4;
    bool taken = false;

    auto branch_target = [&]() -> Addr {
        sim_assert(inst.target >= 0);
        return _prog.pcOf(std::size_t(inst.target));
    };

    const RegVal a = reg(inst.ra);
    const RegVal b = reg(inst.rb);
    const std::int64_t sa = std::int64_t(a);

    switch (inst.op) {
      case Op::Addq: setReg(inst.rc, a + b); break;
      case Op::Subq: setReg(inst.rc, a - b); break;
      case Op::Mulq: setReg(inst.rc, a * b); break;
      case Op::And: setReg(inst.rc, a & b); break;
      case Op::Bis: setReg(inst.rc, a | b); break;
      case Op::Xor: setReg(inst.rc, a ^ b); break;
      case Op::Sll: setReg(inst.rc, a << (b & 63)); break;
      case Op::Srl: setReg(inst.rc, a >> (b & 63)); break;
      case Op::Cmpeq: setReg(inst.rc, a == b ? 1 : 0); break;
      case Op::Cmplt:
        setReg(inst.rc, sa < std::int64_t(b) ? 1 : 0);
        break;
      case Op::Cmple:
        setReg(inst.rc, sa <= std::int64_t(b) ? 1 : 0);
        break;
      case Op::Lda:
        setReg(inst.rc, b + RegVal(inst.imm));
        break;
      case Op::Cmoveq:
        if (a == 0)
            setReg(inst.rc, b);
        break;
      case Op::Cmovne:
        if (a != 0)
            setReg(inst.rc, b);
        break;

      case Op::Ldq: case Op::Ldt:
        rec.effAddr = b + RegVal(inst.imm);
        setReg(inst.rc, _mem.read64(rec.effAddr));
        break;
      case Op::Ldl:
        rec.effAddr = b + RegVal(inst.imm);
        setReg(inst.rc,
               RegVal(std::int64_t(std::int32_t(
                   _mem.read32(rec.effAddr)))));
        break;
      case Op::Stq: case Op::Stt:
        rec.effAddr = b + RegVal(inst.imm);
        _mem.write64(rec.effAddr, a);
        break;
      case Op::Stl:
        rec.effAddr = b + RegVal(inst.imm);
        _mem.write32(rec.effAddr, std::uint32_t(a));
        break;

      case Op::Addt:
        setReg(inst.rc, asBits(asDouble(a) + asDouble(b)));
        break;
      case Op::Subt:
        setReg(inst.rc, asBits(asDouble(a) - asDouble(b)));
        break;
      case Op::Mult:
        setReg(inst.rc, asBits(asDouble(a) * asDouble(b)));
        break;
      case Op::Divt: case Op::Divs:
        setReg(inst.rc, asBits(asDouble(a) / asDouble(b)));
        break;
      case Op::Sqrtt: case Op::Sqrts:
        setReg(inst.rc, asBits(std::sqrt(asDouble(b))));
        break;
      case Op::Cpys:
        setReg(inst.rc, a);
        break;

      case Op::Beq: taken = (a == 0); break;
      case Op::Bne: taken = (a != 0); break;
      case Op::Blt: taken = (sa < 0); break;
      case Op::Ble: taken = (sa <= 0); break;
      case Op::Bgt: taken = (sa > 0); break;
      case Op::Bge: taken = (sa >= 0); break;

      case Op::Br:
        taken = true;
        break;
      case Op::Bsr:
        setReg(inst.ra, _pc + 4);
        taken = true;
        break;
      case Op::Jmp:
        taken = true;
        next_pc = b;
        break;
      case Op::Jsr:
        setReg(inst.ra, _pc + 4);
        taken = true;
        next_pc = b;
        break;
      case Op::Ret:
        taken = true;
        next_pc = b;
        break;

      case Op::Unop:
        break;
      case Op::Halt:
        _halted = true;
        rec.halted = true;
        break;
    }

    if (inst.isPcRelBranch() && taken)
        next_pc = branch_target();

    rec.taken = taken;
    rec.nextPc = next_pc;
    _pc = next_pc;
    _ip = _prog.indexOf(_pc);
    return rec;
}

} // namespace simalpha

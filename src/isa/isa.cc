#include "isa.hh"

#include <sstream>

#include "common/logging.hh"

namespace simalpha {

OpClass
Instruction::opClass() const
{
    switch (op) {
      case Op::Addq: case Op::Subq: case Op::And: case Op::Bis:
      case Op::Xor: case Op::Sll: case Op::Srl: case Op::Cmpeq:
      case Op::Cmplt: case Op::Cmple: case Op::Lda:
      case Op::Cmoveq: case Op::Cmovne:
        return OpClass::IntAlu;
      case Op::Mulq:
        return OpClass::IntMul;
      case Op::Ldq: case Op::Ldl:
        return OpClass::IntLoad;
      case Op::Stq: case Op::Stl:
        return OpClass::IntStore;
      case Op::Ldt:
        return OpClass::FpLoad;
      case Op::Stt:
        return OpClass::FpStore;
      case Op::Addt: case Op::Subt: case Op::Cpys:
        return OpClass::FpAdd;
      case Op::Mult:
        return OpClass::FpMul;
      case Op::Divt:
        return OpClass::FpDivD;
      case Op::Divs:
        return OpClass::FpDivS;
      case Op::Sqrtt:
        return OpClass::FpSqrtD;
      case Op::Sqrts:
        return OpClass::FpSqrtS;
      case Op::Beq: case Op::Bne: case Op::Blt:
      case Op::Ble: case Op::Bgt: case Op::Bge:
        return OpClass::CondBranch;
      case Op::Br:
        return OpClass::UncondBranch;
      case Op::Bsr: case Op::Jsr:
        return OpClass::Call;
      case Op::Jmp:
        return OpClass::IndirectJump;
      case Op::Ret:
        return OpClass::Return;
      case Op::Unop:
        return OpClass::Nop;
      case Op::Halt:
        return OpClass::Halt;
    }
    panic("unreachable opcode %d", int(op));
}

bool
Instruction::isCondBranch() const
{
    switch (op) {
      case Op::Beq: case Op::Bne: case Op::Blt:
      case Op::Ble: case Op::Bgt: case Op::Bge:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isPcRelBranch() const
{
    return isCondBranch() || op == Op::Br || op == Op::Bsr;
}

bool
Instruction::isIndirect() const
{
    return op == Op::Jmp || op == Op::Jsr || op == Op::Ret;
}

bool
Instruction::isFp() const
{
    switch (opClass()) {
      case OpClass::FpAdd: case OpClass::FpMul:
      case OpClass::FpDivS: case OpClass::FpDivD:
      case OpClass::FpSqrtS: case OpClass::FpSqrtD:
      case OpClass::FpLoad: case OpClass::FpStore:
        return true;
      default:
        return false;
    }
}

int
Instruction::latency() const
{
    // Table 1 of the paper.
    switch (opClass()) {
      case OpClass::IntAlu:
        return 1;
      case OpClass::IntMul:
        return 7;
      case OpClass::IntLoad:
        return 3;
      case OpClass::IntStore: case OpClass::FpStore:
        return 1;
      case OpClass::FpAdd: case OpClass::FpMul:
        return 4;
      case OpClass::FpDivS:
        return 12;
      case OpClass::FpDivD:
        return 15;
      case OpClass::FpSqrtS:
        return 18;
      case OpClass::FpSqrtD:
        return 33;
      case OpClass::FpLoad:
        return 4;
      case OpClass::CondBranch:
        return 1;
      case OpClass::UncondBranch: case OpClass::Call:
      case OpClass::IndirectJump: case OpClass::Return:
        return 3;
      case OpClass::Nop: case OpClass::Halt:
        return 1;
    }
    panic("unreachable op class");
}

namespace {

bool
readsRa(Op op)
{
    switch (op) {
      case Op::Lda: case Op::Br: case Op::Bsr: case Op::Jsr:
      case Op::Ldq: case Op::Ldl: case Op::Ldt:
      case Op::Unop: case Op::Halt:
      case Op::Sqrtt: case Op::Sqrts: case Op::Jmp: case Op::Ret:
        return false;
      default:
        return true;
    }
}

bool
readsRb(Op op)
{
    switch (op) {
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Ble:
      case Op::Bgt: case Op::Bge: case Op::Br: case Op::Bsr:
      case Op::Unop: case Op::Halt:
        return false;
      default:
        return true;
    }
}

} // namespace

int
Instruction::srcRegs(RegIndex out[3]) const
{
    int n = 0;
    auto add = [&](RegIndex r) {
        if (r != kNoReg && !isZeroRegIndex(r))
            out[n++] = r;
    };
    if (readsRa(op))
        add(ra);
    if (readsRb(op))
        add(rb);
    // Conditional moves additionally read the old destination.
    if (op == Op::Cmoveq || op == Op::Cmovne)
        add(rc);
    return n;
}

RegIndex
Instruction::dstReg() const
{
    RegIndex d = kNoReg;
    switch (op) {
      case Op::Stq: case Op::Stl: case Op::Stt:
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Ble:
      case Op::Bgt: case Op::Bge: case Op::Br: case Op::Jmp:
      case Op::Ret: case Op::Unop: case Op::Halt:
        d = kNoReg;
        break;
      case Op::Bsr: case Op::Jsr:
        d = ra;     // link register
        break;
      default:
        d = rc;
        break;
    }
    if (d != kNoReg && isZeroRegIndex(d))
        d = kNoReg;
    return d;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Addq: return "addq";
      case Op::Subq: return "subq";
      case Op::Mulq: return "mulq";
      case Op::And: return "and";
      case Op::Bis: return "bis";
      case Op::Xor: return "xor";
      case Op::Sll: return "sll";
      case Op::Srl: return "srl";
      case Op::Cmpeq: return "cmpeq";
      case Op::Cmplt: return "cmplt";
      case Op::Cmple: return "cmple";
      case Op::Lda: return "lda";
      case Op::Cmoveq: return "cmoveq";
      case Op::Cmovne: return "cmovne";
      case Op::Ldq: return "ldq";
      case Op::Stq: return "stq";
      case Op::Ldl: return "ldl";
      case Op::Stl: return "stl";
      case Op::Ldt: return "ldt";
      case Op::Stt: return "stt";
      case Op::Addt: return "addt";
      case Op::Subt: return "subt";
      case Op::Mult: return "mult";
      case Op::Divt: return "divt";
      case Op::Divs: return "divs";
      case Op::Sqrtt: return "sqrtt";
      case Op::Sqrts: return "sqrts";
      case Op::Cpys: return "cpys";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Ble: return "ble";
      case Op::Bgt: return "bgt";
      case Op::Bge: return "bge";
      case Op::Br: return "br";
      case Op::Bsr: return "bsr";
      case Op::Jmp: return "jmp";
      case Op::Jsr: return "jsr";
      case Op::Ret: return "ret";
      case Op::Unop: return "unop";
      case Op::Halt: return "halt";
    }
    return "???";
}

namespace {

std::string
regName(RegIndex r)
{
    if (r == kNoReg)
        return "-";
    std::ostringstream os;
    if (isFpRegIndex(r))
        os << "f" << int(r - kNumIntRegs);
    else
        os << "r" << int(r);
    return os.str();
}

} // namespace

std::string
Instruction::disassemble() const
{
    std::ostringstream os;
    os << opName(op);
    if (isNop() || isHalt())
        return os.str();
    os << " ";
    if (isMem()) {
        RegIndex v = isLoad() ? rc : ra;
        os << regName(v) << ", " << imm << "(" << regName(rb) << ")";
    } else if (isCondBranch()) {
        os << regName(ra) << ", @" << target;
    } else if (op == Op::Br) {
        os << "@" << target;
    } else if (op == Op::Bsr) {
        os << regName(ra) << ", @" << target;
    } else if (isIndirect()) {
        os << regName(ra) << ", (" << regName(rb) << ")";
    } else if (op == Op::Lda) {
        os << regName(rc) << ", " << imm << "(" << regName(rb) << ")";
    } else {
        os << regName(ra) << ", " << regName(rb) << ", " << regName(rc);
    }
    return os.str();
}

const Instruction &
Program::fetch(Addr pc) const
{
    static const Instruction unop{};
    std::int64_t idx = indexOf(pc);
    if (idx < 0)
        return unop;
    return text[std::size_t(idx)];
}

} // namespace simalpha

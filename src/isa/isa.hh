/**
 * @file
 * The MiniAlpha ISA: a faithful Alpha-subset RISC used by every workload
 * in this repository.
 *
 * MiniAlpha keeps the properties of the Alpha ISA that the 21264 pipeline
 * model cares about: fixed 4-byte instructions fetched in octaword-aligned
 * packets of four, 32 integer + 32 floating-point registers with a
 * hardwired zero register in each file (r31/f31), `unop` padding, separate
 * PC-relative conditional/unconditional branches versus indirect jumps
 * (whose targets cannot be computed by the slot-stage adder), and the
 * instruction-class latencies of Table 1 of the paper.
 */

#ifndef SIMALPHA_ISA_ISA_HH
#define SIMALPHA_ISA_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace simalpha {

/** Number of architectural integer (and, separately, fp) registers. */
constexpr int kNumIntRegs = 32;
constexpr int kNumFpRegs = 32;

/** The hardwired zero registers. */
constexpr int kIntZeroReg = 31;
constexpr int kFpZeroReg = 31;

/**
 * A flat architectural register index: 0..31 integer, 32..63 fp.
 * kNoReg means "no register operand".
 */
using RegIndex = std::uint8_t;
constexpr RegIndex kNoReg = 255;

inline RegIndex intReg(int i) { return RegIndex(i); }
inline RegIndex fpReg(int i) { return RegIndex(kNumIntRegs + i); }
inline bool isFpRegIndex(RegIndex r) { return r != kNoReg && r >= kNumIntRegs; }
inline bool
isZeroRegIndex(RegIndex r)
{
    return r == intReg(kIntZeroReg) || r == fpReg(kFpZeroReg);
}

/** MiniAlpha opcodes. */
enum class Op : std::uint8_t
{
    // Integer operate.
    Addq,       ///< rc = ra + rb
    Subq,       ///< rc = ra - rb
    Mulq,       ///< rc = ra * rb
    And,        ///< rc = ra & rb
    Bis,        ///< rc = ra | rb (Alpha's OR)
    Xor,        ///< rc = ra ^ rb
    Sll,        ///< rc = ra << (rb & 63)
    Srl,        ///< rc = ra >> (rb & 63) (logical)
    Cmpeq,      ///< rc = (ra == rb)
    Cmplt,      ///< rc = (signed ra < rb)
    Cmple,      ///< rc = (signed ra <= rb)
    Lda,        ///< rc = rb + imm (also used as "load immediate" with rb=r31)
    Cmoveq,     ///< if (ra == 0) rc = rb  (reads old rc as well)
    Cmovne,     ///< if (ra != 0) rc = rb

    // Memory.
    Ldq,        ///< rc = mem64[rb + imm]
    Stq,        ///< mem64[rb + imm] = ra
    Ldl,        ///< rc = sext(mem32[rb + imm]) (longword load)
    Stl,        ///< mem32[rb + imm] = ra<31:0>
    Ldt,        ///< fc = mem64[rb + imm] (fp load)
    Stt,        ///< mem64[rb + imm] = fa (fp store)

    // Floating point operate (double unless noted).
    Addt,       ///< fc = fa + fb
    Subt,       ///< fc = fa - fb
    Mult,       ///< fc = fa * fb
    Divt,       ///< fc = fa / fb          (double divide)
    Divs,       ///< fc = fa / fb          (single divide)
    Sqrtt,      ///< fc = sqrt(fb)         (double)
    Sqrts,      ///< fc = sqrt(fb)         (single)
    Cpys,       ///< fc = fa (fp move / sign copy)

    // Control. Conditional branches test integer ra against zero.
    Beq,        ///< branch if ra == 0
    Bne,        ///< branch if ra != 0
    Blt,        ///< branch if ra < 0 (signed)
    Ble,        ///< branch if ra <= 0
    Bgt,        ///< branch if ra > 0
    Bge,        ///< branch if ra >= 0
    Br,         ///< unconditional PC-relative branch
    Bsr,        ///< PC-relative call: ra = return address
    Jmp,        ///< indirect jump via rb (target NOT slot-computable)
    Jsr,        ///< indirect call via rb: ra = return address
    Ret,        ///< indirect return via rb (RAS-hinted)

    // Misc.
    Unop,       ///< the Alpha universal no-op (padding)
    Halt,       ///< terminate the program (stand-in for exit syscall)
};

/** Functional-unit / latency class of an instruction (Table 1). */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< 1 cycle
    IntMul,     ///< 7 cycles
    IntLoad,    ///< 3-cycle load-to-use on a D-cache hit
    IntStore,
    FpAdd,      ///< 4 cycles (covers FP add and multiply pipes' adds)
    FpMul,      ///< 4 cycles
    FpDivS,     ///< 12 cycles, unpipelined
    FpDivD,     ///< 15 cycles, unpipelined
    FpSqrtS,    ///< 18 cycles, unpipelined
    FpSqrtD,    ///< 33 cycles, unpipelined
    FpLoad,     ///< 4-cycle load-to-use on a D-cache hit
    FpStore,
    CondBranch,
    UncondBranch,   ///< 3 cycles (Table 1 "unconditional jump")
    Call,
    IndirectJump,
    Return,
    Nop,
    Halt,
};

/** A decoded MiniAlpha instruction. */
struct Instruction
{
    Op op = Op::Unop;
    RegIndex ra = kNoReg;       ///< first source (or link register for calls)
    RegIndex rb = kNoReg;       ///< second source / base register
    RegIndex rc = kNoReg;       ///< destination
    std::int64_t imm = 0;       ///< displacement / immediate
    std::int32_t target = -1;   ///< branch target, as a text-segment index

    OpClass opClass() const;

    bool isCondBranch() const;
    /** Any PC-relative control transfer (cond or uncond, incl. bsr). */
    bool isPcRelBranch() const;
    /** Indirect control transfer (jmp/jsr/ret): slot adder cannot help. */
    bool isIndirect() const;
    bool isControl() const { return isPcRelBranch() || isIndirect(); }
    bool isCall() const { return op == Op::Bsr || op == Op::Jsr; }
    bool isReturn() const { return op == Op::Ret; }
    bool
    isLoad() const
    {
        return op == Op::Ldq || op == Op::Ldl || op == Op::Ldt;
    }
    bool
    isStore() const
    {
        return op == Op::Stq || op == Op::Stl || op == Op::Stt;
    }
    bool isMem() const { return isLoad() || isStore(); }
    /** Access width in bytes for memory operations. */
    int
    memBytes() const
    {
        return (op == Op::Ldl || op == Op::Stl) ? 4 : 8;
    }
    bool isFp() const;
    bool isNop() const { return op == Op::Unop; }
    bool isHalt() const { return op == Op::Halt; }

    /** Execution latency in cycles (Table 1); loads report hit latency. */
    int latency() const;

    /**
     * Source architectural registers (zero registers excluded).
     * @param out array of at least 3 entries
     * @return number of sources written
     */
    int srcRegs(RegIndex out[3]) const;

    /** Destination register, or kNoReg (zero-register dests excluded). */
    RegIndex dstReg() const;

    std::string disassemble() const;
};

/** Mnemonic for an opcode. */
const char *opName(Op op);

/**
 * A loaded program image: a text segment of decoded instructions plus
 * initial data regions. Instruction i lives at textBase + 4*i.
 */
class Program
{
  public:
    static constexpr Addr kTextBase = 0x120000000ULL;
    static constexpr Addr kDataBase = 0x140000000ULL;
    static constexpr Addr kStackBase = 0x160000000ULL;

    std::vector<Instruction> text;

    /** Initial 64-bit data words: (address, value). */
    std::vector<std::pair<Addr, RegVal>> data;

    std::string name = "anonymous";

    Addr entryPc = kTextBase;

    Addr textBase() const { return kTextBase; }
    Addr pcOf(std::size_t index) const { return kTextBase + 4 * index; }

    /** Text index of a PC, or -1 if outside the text segment. */
    std::int64_t
    indexOf(Addr pc) const
    {
        if (pc < kTextBase || (pc - kTextBase) % 4 != 0)
            return -1;
        std::uint64_t idx = (pc - kTextBase) / 4;
        return idx < text.size() ? std::int64_t(idx) : -1;
    }

    /** Fetch the static instruction at a PC; Unop if out of range. */
    const Instruction &fetch(Addr pc) const;
};

} // namespace simalpha

#endif // SIMALPHA_ISA_ISA_HH

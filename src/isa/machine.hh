/**
 * @file
 * The abstract timed-machine interface every simulator model implements
 * (the detailed 21264 model and the abstract RUU model), plus the run
 * result record the validation harness consumes.
 */

#ifndef SIMALPHA_ISA_MACHINE_HH
#define SIMALPHA_ISA_MACHINE_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace simalpha {

/** Outcome of running one program to completion on a machine. */
struct RunResult
{
    std::string machine;
    std::string program;
    Cycle cycles = 0;
    std::uint64_t instsCommitted = 0;
    bool finished = false;      ///< program halted (vs hit the inst limit)

    double
    ipc() const
    {
        return cycles ? double(instsCommitted) / double(cycles) : 0.0;
    }

    double
    cpi() const
    {
        return instsCommitted ? double(cycles) / double(instsCommitted)
                              : 0.0;
    }
};

class Machine
{
  public:
    virtual ~Machine() = default;

    /**
     * Run a program until it halts or the instruction limit is reached.
     * @param program the workload
     * @param max_insts committed-instruction limit (0 = unlimited)
     */
    virtual RunResult run(const Program &program,
                          std::uint64_t max_insts = 0) = 0;

    /** Event counters accumulated during the last run. */
    virtual stats::Group &statGroup() = 0;

    virtual std::string name() const = 0;
};

} // namespace simalpha

#endif // SIMALPHA_ISA_MACHINE_HH

/**
 * @file
 * The abstract timed-machine interface every simulator model implements
 * (the detailed 21264 model and the abstract RUU model), plus the run
 * result record the validation harness consumes.
 */

#ifndef SIMALPHA_ISA_MACHINE_HH
#define SIMALPHA_ISA_MACHINE_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/error.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace simalpha {

struct Checkpoint;      // full architectural state (isa/emulator.hh)

namespace inject {
struct StateInjection;  // one planned bit flip (inject/inject.hh)
}

/** Outcome of running one program to completion on a machine. */
struct RunResult
{
    std::string machine;
    std::string program;
    Cycle cycles = 0;
    std::uint64_t instsCommitted = 0;
    bool finished = false;      ///< program halted (vs hit the inst limit)

    double
    ipc() const
    {
        return cycles ? double(instsCommitted) / double(cycles) : 0.0;
    }

    double
    cpi() const
    {
        return instsCommitted ? double(cycles) / double(instsCommitted)
                              : 0.0;
    }
};

class Machine
{
  public:
    virtual ~Machine() = default;

    /**
     * Run a program until it halts or the instruction limit is reached.
     * @param program the workload
     * @param max_insts committed-instruction limit (0 = unlimited)
     */
    virtual RunResult run(const Program &program,
                          std::uint64_t max_insts = 0) = 0;

    /**
     * Sampled-simulation window: reset, restore architectural state
     * from @p start (a checkpoint of this program at some retired-
     * instruction offset), commit @p warmup_insts to warm the
     * microarchitectural state, then measure @p measure_insts more.
     *
     * The returned cycles/instsCommitted cover the *measured* region
     * only (warm-up excluded); `finished` reports whether the program
     * halted inside the window. When @p measured_counters is non-null
     * it receives the measured-region event-counter deltas (counters
     * at window end minus counters at warm-up end). A checkpoint at
     * offset 0 with zero warm-up makes runWindow equivalent to run().
     *
     * The base class throws ConfigError: only the timing cores
     * support window restoration (fault-drill stand-ins do not).
     */
    virtual RunResult
    runWindow(const Program &program, const Checkpoint &start,
              std::uint64_t warmup_insts, std::uint64_t measure_insts,
              std::map<std::string, std::uint64_t> *measured_counters =
                  nullptr)
    {
        (void)program;
        (void)start;
        (void)warmup_insts;
        (void)measure_insts;
        (void)measured_counters;
        throw ConfigError("machine '" + name() +
                          "' does not support checkpoint windows");
    }

    /**
     * Arm a single-bit state injection for subsequent run() calls.
     * The flip strikes at the planned cycle; @p cycle_budget, when
     * nonzero, bounds the injected run (exceeding it throws
     * TimeoutError, so a flip that merely slows the machine down is
     * classified instead of running forever). Passing nullptr
     * disarms. The spec stays armed across run() calls until
     * disarmed — callers lending a pooled machine must disarm it
     * before returning it.
     *
     * The base class only accepts disarming: stand-in machines have
     * no state to inject into.
     */
    virtual bool
    armInjection(const inject::StateInjection *injection,
                 Cycle cycle_budget)
    {
        (void)cycle_budget;
        return injection == nullptr;
    }

    /**
     * One line describing what the last run's applied injection
     * actually hit after geometry folding ("rob slot 12 doneCycle bit
     * 3", ...); empty if nothing was applied (disarmed, or the run
     * ended before the strike cycle).
     */
    virtual std::string injectionNote() const { return {}; }

    /**
     * Final architectural state of the last completed run, for outcome
     * classification. Returns false on machines that cannot expose it
     * (stand-ins) or before any run.
     */
    virtual bool architecturalState(Checkpoint *out) const
    {
        (void)out;
        return false;
    }

    /** Event counters accumulated during the last run. */
    virtual stats::Group &statGroup() = 0;

    virtual std::string name() const = 0;
};

} // namespace simalpha

#endif // SIMALPHA_ISA_MACHINE_HH

/**
 * @file
 * ProgramBuilder: a fluent in-process assembler for MiniAlpha.
 *
 * Workload generators construct programs through this interface:
 *
 *     ProgramBuilder b("loop-demo");
 *     b.lda(R(1), 100);
 *     b.label("top");
 *     b.subq(R(1), R(2), R(1));  // uses r2 preloaded with 1
 *     b.bne(R(1), "top");
 *     b.halt();
 *     Program p = b.finish();
 *
 * Labels may be referenced before definition; finish() resolves them and
 * fails fatally on dangling references.
 */

#ifndef SIMALPHA_ISA_ASSEMBLER_HH
#define SIMALPHA_ISA_ASSEMBLER_HH

#include <map>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace simalpha {

/** Convenience constructors for register indices. */
inline RegIndex R(int i) { return intReg(i); }
inline RegIndex F(int i) { return fpReg(i); }

class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** Define a label at the current text position. */
    ProgramBuilder &label(const std::string &name);

    // Integer operate.
    ProgramBuilder &addq(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &subq(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &mulq(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &and_(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &bis(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &xor_(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &sll(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &srl(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &cmpeq(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &cmplt(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &cmple(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &cmoveq(RegIndex ra, RegIndex rb, RegIndex rc);
    ProgramBuilder &cmovne(RegIndex ra, RegIndex rb, RegIndex rc);

    /** rc = rb + imm; lda(rc, imm) alone is "load immediate". */
    ProgramBuilder &lda(RegIndex rc, std::int64_t imm,
                        RegIndex rb = intReg(kIntZeroReg));

    // Memory.
    ProgramBuilder &ldq(RegIndex rc, std::int64_t disp, RegIndex base);
    ProgramBuilder &stq(RegIndex ra, std::int64_t disp, RegIndex base);
    ProgramBuilder &ldl(RegIndex rc, std::int64_t disp, RegIndex base);
    ProgramBuilder &stl(RegIndex ra, std::int64_t disp, RegIndex base);
    ProgramBuilder &ldt(RegIndex fc, std::int64_t disp, RegIndex base);
    ProgramBuilder &stt(RegIndex fa, std::int64_t disp, RegIndex base);

    // Floating point.
    ProgramBuilder &addt(RegIndex fa, RegIndex fb, RegIndex fc);
    ProgramBuilder &subt(RegIndex fa, RegIndex fb, RegIndex fc);
    ProgramBuilder &mult(RegIndex fa, RegIndex fb, RegIndex fc);
    ProgramBuilder &divt(RegIndex fa, RegIndex fb, RegIndex fc);
    ProgramBuilder &divs(RegIndex fa, RegIndex fb, RegIndex fc);
    ProgramBuilder &sqrtt(RegIndex fb, RegIndex fc);
    ProgramBuilder &sqrts(RegIndex fb, RegIndex fc);
    ProgramBuilder &cpys(RegIndex fa, RegIndex fc);

    // Control.
    ProgramBuilder &beq(RegIndex ra, const std::string &target);
    ProgramBuilder &bne(RegIndex ra, const std::string &target);
    ProgramBuilder &blt(RegIndex ra, const std::string &target);
    ProgramBuilder &ble(RegIndex ra, const std::string &target);
    ProgramBuilder &bgt(RegIndex ra, const std::string &target);
    ProgramBuilder &bge(RegIndex ra, const std::string &target);
    ProgramBuilder &br(const std::string &target);
    ProgramBuilder &bsr(RegIndex link, const std::string &target);
    ProgramBuilder &jmp(RegIndex rb);
    ProgramBuilder &jsr(RegIndex link, RegIndex rb);
    ProgramBuilder &ret(RegIndex rb);

    // Misc.
    ProgramBuilder &unop(int count = 1);
    ProgramBuilder &halt();

    /** Deposit an initial 64-bit word in the data segment. */
    ProgramBuilder &dataWord(Addr addr, RegVal value);

    /** Deposit the PC of a label (resolved at finish) — jump tables. */
    ProgramBuilder &dataWordLabel(Addr addr, const std::string &label);

    /** Current text index (for computing label-free loop bounds). */
    std::size_t here() const { return _prog.text.size(); }

    /**
     * Pad with unops until the next instruction lands on an octaword
     * (16-byte, 4-instruction) boundary, optionally offset by `slot`
     * instructions past the boundary.
     */
    ProgramBuilder &alignOctaword(int slot = 0);

    /** Resolve labels and return the finished program. */
    Program finish();

  private:
    Instruction &emit(Op op);
    ProgramBuilder &branchTo(Op op, RegIndex ra, const std::string &target);

    Program _prog;
    std::map<std::string, std::int32_t> _labels;
    std::vector<std::pair<std::size_t, std::string>> _fixups;
    std::vector<std::pair<Addr, std::string>> _dataFixups;
    bool _finished = false;
};

} // namespace simalpha

#endif // SIMALPHA_ISA_ASSEMBLER_HH

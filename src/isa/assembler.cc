#include "assembler.hh"

#include "common/logging.hh"

namespace simalpha {

ProgramBuilder::ProgramBuilder(std::string name)
{
    _prog.name = std::move(name);
}

Instruction &
ProgramBuilder::emit(Op op)
{
    if (_finished)
        panic("emit after finish() on program '%s'", _prog.name.c_str());
    _prog.text.push_back(Instruction{});
    _prog.text.back().op = op;
    return _prog.text.back();
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    if (_labels.count(name))
        fatal("duplicate label '%s'", name.c_str());
    _labels[name] = std::int32_t(_prog.text.size());
    return *this;
}

#define THREE_OP(fn, opcode)                                                \
    ProgramBuilder &                                                        \
    ProgramBuilder::fn(RegIndex ra, RegIndex rb, RegIndex rc)               \
    {                                                                       \
        Instruction &i = emit(opcode);                                      \
        i.ra = ra; i.rb = rb; i.rc = rc;                                    \
        return *this;                                                       \
    }

THREE_OP(addq, Op::Addq)
THREE_OP(subq, Op::Subq)
THREE_OP(mulq, Op::Mulq)
THREE_OP(and_, Op::And)
THREE_OP(bis, Op::Bis)
THREE_OP(xor_, Op::Xor)
THREE_OP(sll, Op::Sll)
THREE_OP(srl, Op::Srl)
THREE_OP(cmpeq, Op::Cmpeq)
THREE_OP(cmplt, Op::Cmplt)
THREE_OP(cmple, Op::Cmple)
THREE_OP(cmoveq, Op::Cmoveq)
THREE_OP(cmovne, Op::Cmovne)
THREE_OP(addt, Op::Addt)
THREE_OP(subt, Op::Subt)
THREE_OP(mult, Op::Mult)
THREE_OP(divt, Op::Divt)
THREE_OP(divs, Op::Divs)

#undef THREE_OP

ProgramBuilder &
ProgramBuilder::lda(RegIndex rc, std::int64_t imm, RegIndex rb)
{
    Instruction &i = emit(Op::Lda);
    i.rb = rb; i.rc = rc; i.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::ldq(RegIndex rc, std::int64_t disp, RegIndex base)
{
    Instruction &i = emit(Op::Ldq);
    i.rc = rc; i.rb = base; i.imm = disp;
    return *this;
}

ProgramBuilder &
ProgramBuilder::stq(RegIndex ra, std::int64_t disp, RegIndex base)
{
    Instruction &i = emit(Op::Stq);
    i.ra = ra; i.rb = base; i.imm = disp;
    return *this;
}

ProgramBuilder &
ProgramBuilder::ldl(RegIndex rc, std::int64_t disp, RegIndex base)
{
    Instruction &i = emit(Op::Ldl);
    i.rc = rc; i.rb = base; i.imm = disp;
    return *this;
}

ProgramBuilder &
ProgramBuilder::stl(RegIndex ra, std::int64_t disp, RegIndex base)
{
    Instruction &i = emit(Op::Stl);
    i.ra = ra; i.rb = base; i.imm = disp;
    return *this;
}

ProgramBuilder &
ProgramBuilder::ldt(RegIndex fc, std::int64_t disp, RegIndex base)
{
    Instruction &i = emit(Op::Ldt);
    i.rc = fc; i.rb = base; i.imm = disp;
    return *this;
}

ProgramBuilder &
ProgramBuilder::stt(RegIndex fa, std::int64_t disp, RegIndex base)
{
    Instruction &i = emit(Op::Stt);
    i.ra = fa; i.rb = base; i.imm = disp;
    return *this;
}

ProgramBuilder &
ProgramBuilder::sqrtt(RegIndex fb, RegIndex fc)
{
    Instruction &i = emit(Op::Sqrtt);
    i.rb = fb; i.rc = fc;
    return *this;
}

ProgramBuilder &
ProgramBuilder::sqrts(RegIndex fb, RegIndex fc)
{
    Instruction &i = emit(Op::Sqrts);
    i.rb = fb; i.rc = fc;
    return *this;
}

ProgramBuilder &
ProgramBuilder::cpys(RegIndex fa, RegIndex fc)
{
    Instruction &i = emit(Op::Cpys);
    i.ra = fa; i.rb = fa; i.rc = fc;
    return *this;
}

ProgramBuilder &
ProgramBuilder::branchTo(Op op, RegIndex ra, const std::string &target)
{
    Instruction &i = emit(op);
    i.ra = ra;
    _fixups.emplace_back(_prog.text.size() - 1, target);
    return *this;
}

ProgramBuilder &
ProgramBuilder::beq(RegIndex ra, const std::string &t)
{ return branchTo(Op::Beq, ra, t); }

ProgramBuilder &
ProgramBuilder::bne(RegIndex ra, const std::string &t)
{ return branchTo(Op::Bne, ra, t); }

ProgramBuilder &
ProgramBuilder::blt(RegIndex ra, const std::string &t)
{ return branchTo(Op::Blt, ra, t); }

ProgramBuilder &
ProgramBuilder::ble(RegIndex ra, const std::string &t)
{ return branchTo(Op::Ble, ra, t); }

ProgramBuilder &
ProgramBuilder::bgt(RegIndex ra, const std::string &t)
{ return branchTo(Op::Bgt, ra, t); }

ProgramBuilder &
ProgramBuilder::bge(RegIndex ra, const std::string &t)
{ return branchTo(Op::Bge, ra, t); }

ProgramBuilder &
ProgramBuilder::br(const std::string &t)
{ return branchTo(Op::Br, kNoReg, t); }

ProgramBuilder &
ProgramBuilder::bsr(RegIndex link, const std::string &t)
{ return branchTo(Op::Bsr, link, t); }

ProgramBuilder &
ProgramBuilder::jmp(RegIndex rb)
{
    Instruction &i = emit(Op::Jmp);
    i.rb = rb;
    return *this;
}

ProgramBuilder &
ProgramBuilder::jsr(RegIndex link, RegIndex rb)
{
    Instruction &i = emit(Op::Jsr);
    i.ra = link; i.rb = rb;
    return *this;
}

ProgramBuilder &
ProgramBuilder::ret(RegIndex rb)
{
    Instruction &i = emit(Op::Ret);
    i.rb = rb;
    return *this;
}

ProgramBuilder &
ProgramBuilder::unop(int count)
{
    for (int i = 0; i < count; i++)
        emit(Op::Unop);
    return *this;
}

ProgramBuilder &
ProgramBuilder::halt()
{
    emit(Op::Halt);
    return *this;
}

ProgramBuilder &
ProgramBuilder::dataWord(Addr addr, RegVal value)
{
    _prog.data.emplace_back(addr, value);
    return *this;
}

ProgramBuilder &
ProgramBuilder::alignOctaword(int slot)
{
    sim_assert(slot >= 0 && slot < 4);
    while (int(_prog.text.size() % 4) != slot)
        emit(Op::Unop);
    return *this;
}

ProgramBuilder &
ProgramBuilder::dataWordLabel(Addr addr, const std::string &label)
{
    _dataFixups.emplace_back(addr, label);
    return *this;
}

Program
ProgramBuilder::finish()
{
    for (const auto &[index, name] : _fixups) {
        auto it = _labels.find(name);
        if (it == _labels.end())
            fatal("undefined label '%s' in program '%s'",
                  name.c_str(), _prog.name.c_str());
        _prog.text[index].target = it->second;
    }
    for (const auto &[addr, name] : _dataFixups) {
        auto it = _labels.find(name);
        if (it == _labels.end())
            fatal("undefined data label '%s' in program '%s'",
                  name.c_str(), _prog.name.c_str());
        _prog.data.emplace_back(addr,
                                _prog.pcOf(std::size_t(it->second)));
    }
    _fixups.clear();
    _dataFixups.clear();
    _finished = true;
    return _prog;
}

} // namespace simalpha

/**
 * @file
 * The MiniAlpha functional emulator ("oracle core").
 *
 * Timing models drive their correct path from this emulator: each step()
 * architecturally executes one instruction and reports everything the
 * timing model needs (actual next PC, branch outcome, effective address).
 * Wrong-path work is decoded from the static Program image instead and is
 * never executed here.
 */

#ifndef SIMALPHA_ISA_EMULATOR_HH
#define SIMALPHA_ISA_EMULATOR_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace simalpha {

/** One architecturally executed (correct-path) dynamic instruction. */
struct ExecutedInst
{
    InstSeq seq = 0;            ///< dynamic instruction number
    Addr pc = 0;
    Addr nextPc = 0;            ///< actual successor PC
    Instruction inst;
    bool taken = false;         ///< control transfer taken (non-fallthrough)
    Addr effAddr = kNoAddr;     ///< effective address for memory ops
    bool halted = false;        ///< this instruction was a Halt
};

/**
 * Sparse byte-addressable memory backed by 4 KB pages. Loads of never-
 * written locations return zero, matching a zero-filled address space.
 */
class SparseMemory
{
  public:
    RegVal read64(Addr addr) const;
    void write64(Addr addr, RegVal value);
    std::uint32_t read32(Addr addr) const;
    void write32(Addr addr, std::uint32_t value);

    /** Number of distinct pages touched (for tests / footprint stats). */
    std::size_t pagesTouched() const { return _pages.size(); }

    /** Export all touched memory as (address, word) pairs. */
    std::vector<std::pair<Addr, RegVal>> exportWords() const;

    /** Drop every page (restore starts from a zero-filled space). */
    void clear() { _pages.clear(); }

  private:
    static constexpr Addr kPageShift = 12;
    static constexpr Addr kPageBytes = Addr(1) << kPageShift;

    using Page = std::array<std::uint8_t, kPageBytes>;

    Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> _pages;
};

/**
 * A snapshot of complete architectural state (registers, PC, memory),
 * restorable onto an emulator of the same program — the checkpoint
 * facility sim-alpha inherited from the SimpleScalar tool set.
 */
struct Checkpoint
{
    std::array<RegVal, kNumIntRegs + kNumFpRegs> regs{};
    Addr pc = 0;
    InstSeq seq = 0;
    bool halted = false;
    /** Dirty memory as (address, 64-bit word) pairs, page-packed. */
    std::vector<std::pair<Addr, RegVal>> memory;
};

class Emulator
{
  public:
    explicit Emulator(const Program &program);

    /** Capture the full architectural state. */
    Checkpoint checkpoint() const;

    /** Restore a previously captured state of the same program. */
    void restore(const Checkpoint &ckpt);

    /** Execute one instruction; undefined after halted(). */
    ExecutedInst step();

    bool halted() const { return _halted; }
    Addr pc() const { return _pc; }
    InstSeq instsExecuted() const { return _seq; }

    RegVal readIntReg(int i) const;
    RegVal readFpRaw(int i) const;
    double readFpReg(int i) const;
    void writeIntReg(int i, RegVal v);
    void writeFpReg(int i, double v);

    /**
     * XOR one bit of an architectural register (soft-error
     * injection). Callers should treat the hardwired-zero registers
     * as masked-by-construction: reads bypass the backing array, but
     * a flipped backing word would still show up in checkpoint().
     */
    void
    flipRegisterBit(std::uint64_t reg, std::uint32_t bit)
    {
        _regs[std::size_t(reg % _regs.size())] ^=
            RegVal(1) << (bit % 64);
    }

    SparseMemory &memory() { return _mem; }
    const SparseMemory &memory() const { return _mem; }

    const Program &program() const { return _prog; }

  private:
    RegVal reg(RegIndex r) const;
    void setReg(RegIndex r, RegVal v);

    const Program &_prog;
    SparseMemory _mem;
    std::array<RegVal, kNumIntRegs + kNumFpRegs> _regs{};
    Addr _pc;
    InstSeq _seq = 0;
    bool _halted = false;
};

} // namespace simalpha

#endif // SIMALPHA_ISA_EMULATOR_HH

/**
 * @file
 * The MiniAlpha functional emulator ("oracle core").
 *
 * Timing models drive their correct path from this emulator: each step()
 * architecturally executes one instruction and reports everything the
 * timing model needs (actual next PC, branch outcome, effective address).
 * Wrong-path work is decoded from the static Program image instead and is
 * never executed here.
 */

#ifndef SIMALPHA_ISA_EMULATOR_HH
#define SIMALPHA_ISA_EMULATOR_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace simalpha {

/** One architecturally executed (correct-path) dynamic instruction. */
struct ExecutedInst
{
    InstSeq seq = 0;            ///< dynamic instruction number
    Addr pc = 0;
    Addr nextPc = 0;            ///< actual successor PC
    Instruction inst;
    bool taken = false;         ///< control transfer taken (non-fallthrough)
    Addr effAddr = kNoAddr;     ///< effective address for memory ops
    bool halted = false;        ///< this instruction was a Halt
};

/**
 * Sparse byte-addressable memory backed by 4 KB pages. Loads of never-
 * written locations return zero, matching a zero-filled address space.
 *
 * Aligned accesses that fit inside one page (the overwhelmingly common
 * case) take a single page lookup through a one-entry page cache and a
 * memcpy; accesses that straddle a page boundary or are misaligned fall
 * back to the byte loop. Both paths produce identical bytes.
 */
class SparseMemory
{
  public:
    RegVal read64(Addr addr) const;
    void write64(Addr addr, RegVal value);
    std::uint32_t read32(Addr addr) const;
    void write32(Addr addr, std::uint32_t value);

    /** Number of distinct pages touched (for tests / footprint stats). */
    std::size_t pagesTouched() const { return _pages.size(); }

    /** Export all touched memory as (address, word) pairs. */
    std::vector<std::pair<Addr, RegVal>> exportWords() const;

    /** Drop every page (restore starts from a zero-filled space). */
    void
    clear()
    {
        _pages.clear();
        _lastPageNo = kNoPage;
        _lastPage = nullptr;
    }

  private:
    static constexpr Addr kPageShift = 12;
    static constexpr Addr kPageBytes = Addr(1) << kPageShift;
    static constexpr Addr kNoPage = ~Addr(0);

    using Page = std::array<std::uint8_t, kPageBytes>;

    Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);
    /** One-entry cache over findPage; only existing pages are cached
     *  (pages are never freed except by clear(), so the pointer is
     *  stable across rehashes). */
    Page *cachedFind(Addr addr) const;
    Page &cachedTouch(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> _pages;
    mutable Addr _lastPageNo = kNoPage;
    mutable Page *_lastPage = nullptr;
};

/**
 * A snapshot of complete architectural state (registers, PC, memory),
 * restorable onto an emulator of the same program — the checkpoint
 * facility sim-alpha inherited from the SimpleScalar tool set.
 */
struct Checkpoint
{
    std::array<RegVal, kNumIntRegs + kNumFpRegs> regs{};
    Addr pc = 0;
    InstSeq seq = 0;
    bool halted = false;
    /** Dirty memory as (address, 64-bit word) pairs, page-packed. */
    std::vector<std::pair<Addr, RegVal>> memory;
};

/**
 * One predecoded instruction: operands resolved at decode time to slots
 * in the extended register file (real registers 0..63, plus a hardwired
 * zero-source slot and a write-sink slot for discarded destinations),
 * immediates widened, and PC-relative targets resolved to text indices.
 * The execution loops dispatch on `handler` without re-inspecting the
 * Instruction encoding.
 */
struct DecodedInst
{
    std::uint8_t handler = 0;   ///< dense opcode, == uint8_t(Instruction::op)
    std::uint8_t srcA = 0;      ///< extended-file slot read for `ra`
    std::uint8_t srcB = 0;      ///< extended-file slot read for `rb`
    std::uint8_t dst = 0;       ///< extended-file slot written
    std::uint8_t pcRel = 0;     ///< nonzero for PC-relative control transfers
    std::int32_t target = -1;   ///< taken successor as a text index
    Addr targetPc = 0;          ///< taken successor as a PC (target >= 0)
    std::int64_t imm = 0;

    bool
    operator==(const DecodedInst &o) const
    {
        return handler == o.handler && srcA == o.srcA && srcB == o.srcB &&
               dst == o.dst && pcRel == o.pcRel && target == o.target &&
               targetPc == o.targetPc && imm == o.imm;
    }
};

class Emulator
{
  public:
    explicit Emulator(const Program &program);

    /** Capture the full architectural state. */
    Checkpoint checkpoint() const;

    /** Restore a previously captured state of the same program. */
    void restore(const Checkpoint &ckpt);

    /** Execute one instruction; undefined after halted(). */
    ExecutedInst step();

    /**
     * Architecturally execute up to `max_insts` instructions through the
     * predecoded batch dispatcher (computed goto on GNU compilers),
     * without materializing per-instruction records — the fast-forward
     * path for checkpoint collection and `--sample` runs. Stops early at
     * Halt. State afterwards is byte-identical to calling step() the
     * same number of times. Under SIMALPHA_SLOWPATH=1 the batch runs
     * through the retained switch interpreter instead, asserting per
     * instruction that the predecoded image agrees with a fresh decode.
     * @return instructions executed
     */
    std::uint64_t run(std::uint64_t max_insts);

    bool halted() const { return _halted; }
    Addr pc() const { return _pc; }
    InstSeq instsExecuted() const { return _seq; }

    RegVal readIntReg(int i) const;
    RegVal readFpRaw(int i) const;
    double readFpReg(int i) const;
    void writeIntReg(int i, RegVal v);
    void writeFpReg(int i, double v);

    /**
     * XOR one bit of an architectural register (soft-error
     * injection). Callers should treat the hardwired-zero registers
     * as masked-by-construction: reads bypass the backing array, but
     * a flipped backing word would still show up in checkpoint().
     */
    void
    flipRegisterBit(std::uint64_t reg, std::uint32_t bit)
    {
        _regs[std::size_t(reg % (kNumIntRegs + kNumFpRegs))] ^=
            RegVal(1) << (bit % 64);
    }

    SparseMemory &memory() { return _mem; }
    const SparseMemory &memory() const { return _mem; }

    const Program &program() const { return _prog; }

    /** The predecoded text image (exposed for equivalence tests). */
    const std::vector<DecodedInst> &decodedText() const { return _dec; }

    /** Predecode one instruction (pure; used for the slowpath check). */
    static DecodedInst decodeOne(const Instruction &inst);

  private:
    /** Extended register file layout: slots 0..63 are the architectural
     *  registers; kZeroSlot is a hardwired-zero source (never written);
     *  kSinkSlot absorbs writes to zero registers / kNoReg (never
     *  read). Remapping operands into these slots at decode time
     *  removes every zero-register branch from the execute loops. */
    static constexpr std::size_t kZeroSlot = kNumIntRegs + kNumFpRegs;
    static constexpr std::size_t kSinkSlot = kZeroSlot + 1;

    RegVal reg(RegIndex r) const;
    void setReg(RegIndex r, RegVal v);

    ExecutedInst stepFast();
    /** The original fully-generic switch interpreter, retained as the
     *  SIMALPHA_SLOWPATH=1 reference; asserts decode equivalence. */
    ExecutedInst stepSlow();
    std::uint64_t runBatch(std::uint64_t max_insts);

    const Program &_prog;
    SparseMemory _mem;
    std::array<RegVal, kNumIntRegs + kNumFpRegs + 2> _regs{};
    std::vector<DecodedInst> _dec;
    Addr _pc;
    std::int64_t _ip;           ///< text index of _pc, or -1 if outside
    InstSeq _seq = 0;
    bool _halted = false;
    bool _slowpath = false;     ///< SIMALPHA_SLOWPATH=1 at construction
};

} // namespace simalpha

#endif // SIMALPHA_ISA_EMULATOR_HH

/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef SIMALPHA_COMMON_TYPES_HH
#define SIMALPHA_COMMON_TYPES_HH

#include <cstdint>

namespace simalpha {

/** A memory address (byte granularity, 64-bit virtual or physical). */
using Addr = std::uint64_t;

/** A simulation cycle count. */
using Cycle = std::uint64_t;

/** A dynamic instruction sequence number (the 21264 "inum" generalized). */
using InstSeq = std::uint64_t;

/** A 64-bit architectural register value. */
using RegVal = std::uint64_t;

/** Sentinel for "no cycle" / "not scheduled". */
constexpr Cycle kNoCycle = ~Cycle(0);

/** Sentinel for invalid addresses. */
constexpr Addr kNoAddr = ~Addr(0);

} // namespace simalpha

#endif // SIMALPHA_COMMON_TYPES_HH

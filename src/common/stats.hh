/**
 * @file
 * A small statistics package in the spirit of the gem5/SimpleScalar stats
 * facilities: named counters, derived formulas, and bucketed distributions,
 * grouped so a machine model can dump everything it measured.
 */

#ifndef SIMALPHA_COMMON_STATS_HH
#define SIMALPHA_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "types.hh"

namespace simalpha {
namespace stats {

/** A monotonically increasing (or explicitly set) event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }
    void set(std::uint64_t v) { _value = v; }
    void reset() { _value = 0; }

    std::uint64_t value() const { return _value; }
    operator std::uint64_t() const { return _value; }

  private:
    std::uint64_t _value = 0;
};

/** A histogram over fixed-width buckets with under/overflow tracking. */
class Distribution
{
  public:
    /**
     * @param min lowest sampled value placed in bucket 0
     * @param max values above max land in the overflow bucket
     * @param bucket_size width of each bucket
     */
    Distribution(std::uint64_t min, std::uint64_t max,
                 std::uint64_t bucket_size);
    Distribution() : Distribution(0, 63, 1) {}

    void sample(std::uint64_t value, std::uint64_t count = 1);
    void reset();

    std::uint64_t samples() const { return _samples; }
    std::uint64_t total() const { return _total; }
    double mean() const;
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t bucketCount(std::size_t i) const { return _buckets.at(i); }
    std::size_t numBuckets() const { return _buckets.size(); }

  private:
    std::uint64_t _min;
    std::uint64_t _max;
    std::uint64_t _bucketSize;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _overflow = 0;
    std::uint64_t _samples = 0;
    std::uint64_t _total = 0;
};

/**
 * A named collection of counters, lazily created on first reference.
 * Machine models own one group and bump counters by name; formulas are
 * registered as closures evaluated at dump time.
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    /** Fetch-or-create a counter. */
    Counter &counter(const std::string &name);

    /** Fetch-or-create a distribution with default geometry. */
    Distribution &distribution(const std::string &name);

    /** Register a derived value computed at dump time. */
    void formula(const std::string &name, std::function<double()> fn);

    /** Read a counter value; 0 if never touched. */
    std::uint64_t get(const std::string &name) const;

    /** True if the counter was ever created. */
    bool has(const std::string &name) const;

    /** Zero all counters and distributions. */
    void reset();

    /** Render "name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return _name; }

    /** All counter names, sorted (for iteration in tests/benches). */
    std::vector<std::string> counterNames() const;

    /**
     * Copy every counter into a plain sorted name->value map: the
     * thread-independent event snapshot a campaign cell carries after
     * its machine is destroyed.
     */
    std::map<std::string, std::uint64_t> snapshot() const;

  private:
    std::string _name;
    std::map<std::string, Counter> _counters;
    std::map<std::string, Distribution> _distributions;
    std::map<std::string, std::function<double()>> _formulas;
};

} // namespace stats

/** Arithmetic mean of a vector (0 for empty input). */
double arithmeticMean(const std::vector<double> &xs);

/** Harmonic mean of a vector (0 for empty input); all xs must be > 0. */
double harmonicMean(const std::vector<double> &xs);

/** Population standard deviation (0 for fewer than 2 samples). */
double stdDeviation(const std::vector<double> &xs);

} // namespace simalpha

#endif // SIMALPHA_COMMON_STATS_HH

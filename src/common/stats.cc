#include "stats.hh"

#include <cmath>
#include <iomanip>

#include "logging.hh"

namespace simalpha {
namespace stats {

Distribution::Distribution(std::uint64_t min, std::uint64_t max,
                           std::uint64_t bucket_size)
    : _min(min), _max(max), _bucketSize(bucket_size)
{
    if (bucket_size == 0)
        fatal("Distribution bucket size must be nonzero");
    if (max < min)
        fatal("Distribution max < min");
    _buckets.assign((max - min) / bucket_size + 1, 0);
}

void
Distribution::sample(std::uint64_t value, std::uint64_t count)
{
    _samples += count;
    _total += value * count;
    if (value > _max) {
        _overflow += count;
        return;
    }
    std::uint64_t v = value < _min ? 0 : (value - _min) / _bucketSize;
    _buckets[v] += count;
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _overflow = 0;
    _samples = 0;
    _total = 0;
}

double
Distribution::mean() const
{
    return _samples ? double(_total) / double(_samples) : 0.0;
}

Counter &
Group::counter(const std::string &name)
{
    return _counters[name];
}

Distribution &
Group::distribution(const std::string &name)
{
    auto it = _distributions.find(name);
    if (it == _distributions.end())
        it = _distributions.emplace(name, Distribution()).first;
    return it->second;
}

void
Group::formula(const std::string &name, std::function<double()> fn)
{
    _formulas[name] = std::move(fn);
}

std::uint64_t
Group::get(const std::string &name) const
{
    auto it = _counters.find(name);
    return it == _counters.end() ? 0 : it->second.value();
}

bool
Group::has(const std::string &name) const
{
    return _counters.count(name) != 0;
}

void
Group::reset()
{
    for (auto &kv : _counters)
        kv.second.reset();
    for (auto &kv : _distributions)
        kv.second.reset();
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &kv : _counters)
        os << _name << "." << kv.first << " " << kv.second.value() << "\n";
    for (const auto &kv : _formulas)
        os << _name << "." << kv.first << " " << kv.second() << "\n";
    for (const auto &kv : _distributions) {
        os << _name << "." << kv.first << ".samples "
           << kv.second.samples() << "\n";
        os << _name << "." << kv.first << ".mean "
           << kv.second.mean() << "\n";
    }
}

std::vector<std::string>
Group::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(_counters.size());
    for (const auto &kv : _counters)
        names.push_back(kv.first);
    return names;
}

std::map<std::string, std::uint64_t>
Group::snapshot() const
{
    // Skip zero-valued counters: cores pre-create (bind) their hot
    // counters at construction, and an event that never fired must
    // look the same in artifacts as a counter that was never created.
    std::map<std::string, std::uint64_t> out;
    for (const auto &kv : _counters)
        if (kv.second.value())
            out[kv.first] = kv.second.value();
    return out;
}

} // namespace stats

double
arithmeticMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / double(xs.size());
}

double
harmonicMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double inv = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            fatal("harmonicMean requires positive inputs (got %f)", x);
        inv += 1.0 / x;
    }
    return double(xs.size()) / inv;
}

double
stdDeviation(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double mean = arithmeticMean(xs);
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    return std::sqrt(var / double(xs.size()));
}

} // namespace simalpha

/**
 * @file
 * Static enum⇄name tables for spec grammars.
 *
 * Every textual spec that names enum values (fault kinds, injection
 * targets, outcome labels) defines exactly one table and derives the
 * formatter, the parser, and the "valid values are ..." list in its
 * error messages from it — so the three can never drift apart.
 */

#ifndef SIMALPHA_COMMON_NAMES_HH
#define SIMALPHA_COMMON_NAMES_HH

#include <cstddef>
#include <string>

namespace simalpha {

/** One row of a static enum⇄name table. */
template <typename E>
struct EnumName
{
    E value;
    const char *name;
};

/** The canonical name of @p value, or @p fallback if untabled. */
template <typename E, std::size_t N>
const char *
enumName(const EnumName<E> (&table)[N], E value, const char *fallback)
{
    for (const EnumName<E> &row : table)
        if (row.value == value)
            return row.name;
    return fallback;
}

/** Reverse lookup; leaves *out untouched on unknown names. */
template <typename E, std::size_t N>
bool
enumByName(const EnumName<E> (&table)[N], const std::string &name,
           E *out)
{
    for (const EnumName<E> &row : table)
        if (name == row.name) {
            *out = row.value;
            return true;
        }
    return false;
}

/** "a, b, c" — for error messages listing the valid names. */
template <typename E, std::size_t N>
std::string
enumNameList(const EnumName<E> (&table)[N])
{
    std::string out;
    for (const EnumName<E> &row : table) {
        if (!out.empty())
            out += ", ";
        out += row.name;
    }
    return out;
}

} // namespace simalpha

#endif // SIMALPHA_COMMON_NAMES_HH

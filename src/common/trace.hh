/**
 * @file
 * Category-based debug tracing in the gem5 DPRINTF idiom.
 *
 * Categories are enabled at process start through the SIMALPHA_TRACE
 * environment variable (comma-separated, e.g.
 * `SIMALPHA_TRACE=fetch,recovery ./build/tools/simalpha ...`), so a
 * release build carries zero-cost disabled trace points:
 *
 *     TRACE(Fetch, "[%llu] fetch pc=%llx", cycle, pc);
 *
 * Output goes to stderr, prefixed with the category name.
 */

#ifndef SIMALPHA_COMMON_TRACE_HH
#define SIMALPHA_COMMON_TRACE_HH

#include <cstdint>

namespace simalpha {
namespace trace {

/** Trace categories, one bit each. */
enum class Category : std::uint32_t
{
    Fetch = 1u << 0,
    Map = 1u << 1,
    Issue = 1u << 2,
    Retire = 1u << 3,
    Recovery = 1u << 4,
    Memory = 1u << 5,
    Predictor = 1u << 6,
    Trap = 1u << 7,
};

/** Is a category enabled (cheap mask test)? */
bool enabled(Category cat);

/** Enable/disable a category programmatically (tests). */
void setEnabled(Category cat, bool on);

/** Parse a comma-separated category list ("fetch,recovery" or "all");
 *  unknown names are ignored with a warning. Called once at startup
 *  from the SIMALPHA_TRACE environment variable, and directly by
 *  tests. */
void enableFromString(const char *spec);

/** Emit one trace line (already gated by enabled()). */
void emit(Category cat, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace trace
} // namespace simalpha

/** Trace-point macro: evaluates arguments only when the category is on. */
#define TRACE(cat, ...)                                                     \
    do {                                                                    \
        if (::simalpha::trace::enabled(                                     \
                ::simalpha::trace::Category::cat))                          \
            ::simalpha::trace::emit(                                        \
                ::simalpha::trace::Category::cat, __VA_ARGS__);             \
    } while (0)

#endif // SIMALPHA_COMMON_TRACE_HH

/**
 * @file
 * The structured simulator error taxonomy.
 *
 * Library code never calls std::abort()/std::exit() directly: a defect
 * surfaces as a typed exception so the campaign layer can contain it to
 * one cell while the rest of a (machine × workload) grid completes.
 * Only the top-level driver (tools/simalpha.cc) installs a handler and
 * turns the class into a process exit code.
 *
 *   InvariantError  a modeling bug (sim_assert / panic)
 *   ConfigError     a user error: bad configuration or argument (fatal)
 *   WorkloadError   a workload that cannot be built or is malformed
 *   DeadlockError   a core stopped committing (forward-progress watchdog),
 *                   carrying a diagnostic machine-state snapshot
 *   TransientError  an environmental failure (I/O, resources) that a
 *                   bounded per-cell retry may clear
 *   CrashError      a worker process died (signal, OOM kill, nonzero
 *                   exit) — only ever raised by the process-isolation
 *                   supervisor, never from inside a simulation
 *   TimeoutError    a cell exceeded its wall-clock budget and its
 *                   worker was killed by the supervisor
 *
 * For interactive debugging, SIMALPHA_ABORT_ON_PANIC=1 restores the
 * historical hard abort at the panic site so a debugger stops with the
 * full stack intact.
 */

#ifndef SIMALPHA_COMMON_ERROR_HH
#define SIMALPHA_COMMON_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace simalpha {

/** Base of the taxonomy: a classified, optionally retryable failure. */
class SimError : public std::runtime_error
{
  public:
    SimError(std::string kind, const std::string &message,
             bool retryable = false)
        : std::runtime_error(message), _kind(std::move(kind)),
          _retryable(retryable)
    {
    }

    /** Stable class mnemonic ("invariant", "config", ...) used in
     *  artifacts, journals, and CLI summaries. */
    const std::string &kind() const { return _kind; }

    /** True if re-executing the failed work may succeed (environmental
     *  causes); deterministic modeling failures are never retryable. */
    bool retryable() const { return _retryable; }

  private:
    std::string _kind;
    bool _retryable;
};

/** A violated simulator invariant — sim_assert()/panic(). */
class InvariantError : public SimError
{
  public:
    explicit InvariantError(const std::string &message)
        : SimError("invariant", message)
    {
    }
};

/** A user error: bad configuration or argument — fatal(). */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &message)
        : SimError("config", message)
    {
    }
};

/** A workload that cannot be built or is malformed. */
class WorkloadError : public SimError
{
  public:
    explicit WorkloadError(const std::string &message)
        : SimError("workload", message)
    {
    }
};

/** An environmental failure that a bounded retry may clear. */
class TransientError : public SimError
{
  public:
    explicit TransientError(const std::string &message)
        : SimError("transient", message, /*retryable=*/true)
    {
    }
};

/**
 * A worker process died under the process-isolation supervisor: the
 * wait status said signal death or an unexpected exit. The failure is
 * attributed to the cell that was in flight when the worker died; it
 * is deterministic from the cell's point of view (the same cell would
 * kill the next worker too), so it is never retryable.
 */
class CrashError : public SimError
{
  public:
    explicit CrashError(const std::string &message)
        : SimError("crash", message)
    {
    }
};

/** A cell exceeded its wall-clock budget; the supervisor killed its
 *  worker. Not retryable: re-running would hang again. */
class TimeoutError : public SimError
{
  public:
    explicit TimeoutError(const std::string &message)
        : SimError("timeout", message)
    {
    }
};

/**
 * Machine-state snapshot captured by the forward-progress watchdog at
 * the moment a core is declared deadlocked.
 */
struct DeadlockInfo
{
    std::string machine;
    std::string program;
    Cycle cycle = 0;                ///< cycle the watchdog fired
    Cycle lastCommitCycle = 0;      ///< last cycle that committed
    std::uint64_t committed = 0;    ///< instructions committed so far
    Addr fetchPc = 0;
    /** In-flight instructions in the window (ROB / RUU occupancy). */
    std::size_t windowOccupancy = 0;
    /** Disassembly + status of the oldest in-flight instruction, empty
     *  if the window is empty. */
    std::string oldestInst;
    /** Free-form core-specific state (queues, pending recovery, ...). */
    std::string detail;

    /** One-line human-readable rendering (the exception message). */
    std::string summary() const;
};

/** A core stopped committing: no forward progress for the configured
 *  watchdog interval. */
class DeadlockError : public SimError
{
  public:
    explicit DeadlockError(DeadlockInfo info)
        : SimError("deadlock", info.summary()), _info(std::move(info))
    {
    }

    const DeadlockInfo &info() const { return _info; }

  private:
    DeadlockInfo _info;
};

} // namespace simalpha

#endif // SIMALPHA_COMMON_ERROR_HH

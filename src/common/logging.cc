#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace simalpha {

namespace {

std::atomic<std::uint64_t> warn_counter{0};
std::atomic<bool> quiet_mode{false};

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    warn_counter.fetch_add(1, std::memory_order_relaxed);
    if (quiet_mode.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    if (quiet_mode.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

std::uint64_t
warnCount()
{
    return warn_counter.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    quiet_mode.store(quiet, std::memory_order_relaxed);
}

} // namespace simalpha

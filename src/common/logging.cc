#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/error.hh"

namespace simalpha {

namespace {

std::atomic<std::uint64_t> warn_counter{0};
std::atomic<bool> quiet_mode{false};

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n < 0)
        return fmt;
    std::string out(std::size_t(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

bool
abortOnPanic()
{
    const char *env = std::getenv("SIMALPHA_ABORT_ON_PANIC");
    return env && env[0] == '1' && env[1] == '\0';
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformat(fmt, args);
    va_end(args);

    std::string where = std::string(file) + ":" + std::to_string(line);
    if (abortOnPanic()) {
        // Debugger mode: stop at the site with the stack intact.
        std::fprintf(stderr, "panic: %s: %s\n", where.c_str(),
                     message.c_str());
        std::abort();
    }
    throw InvariantError(where + ": " + message);
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformat(fmt, args);
    va_end(args);
    // User errors carry no source location: the message is the
    // diagnosis, and the top-level handler owns presentation.
    (void)file;
    (void)line;
    throw ConfigError(message);
}

void
warnImpl(const char *fmt, ...)
{
    warn_counter.fetch_add(1, std::memory_order_relaxed);
    if (quiet_mode.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    if (quiet_mode.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

std::uint64_t
warnCount()
{
    return warn_counter.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    quiet_mode.store(quiet, std::memory_order_relaxed);
}

} // namespace simalpha

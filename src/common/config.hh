/**
 * @file
 * A typed key/value configuration dictionary.
 *
 * Machine factories build Config objects; model constructors read typed
 * parameters with explicit defaults. Unknown-key reads with no default are
 * user errors (fatal), matching the gem5 configuration discipline.
 */

#ifndef SIMALPHA_COMMON_CONFIG_HH
#define SIMALPHA_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace simalpha {

class Config
{
  public:
    Config() = default;

    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, bool value);
    void set(const std::string &key, double value);
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, const char *value);

    bool has(const std::string &key) const;

    std::int64_t getInt(const std::string &key) const;
    std::int64_t getInt(const std::string &key, std::int64_t dflt) const;
    bool getBool(const std::string &key) const;
    bool getBool(const std::string &key, bool dflt) const;
    double getDouble(const std::string &key) const;
    double getDouble(const std::string &key, double dflt) const;
    std::string getString(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &dflt) const;

    /** Merge other's entries over this one's (other wins on conflict). */
    void merge(const Config &other);

    /** All keys, sorted. */
    std::vector<std::string> keys() const;

    /** Render the stored value of a key as text (any type). */
    std::string renderValue(const std::string &key) const;

  private:
    enum class Kind { Int, Bool, Double, String };

    struct Entry
    {
        Kind kind;
        std::int64_t i;
        bool b;
        double d;
        std::string s;
    };

    const Entry &lookup(const std::string &key, Kind kind) const;

    std::map<std::string, Entry> _entries;
};

} // namespace simalpha

#endif // SIMALPHA_COMMON_CONFIG_HH

#include "config.hh"

#include "logging.hh"

namespace simalpha {

void
Config::set(const std::string &key, std::int64_t value)
{
    _entries[key] = Entry{Kind::Int, value, false, 0.0, {}};
}

void
Config::set(const std::string &key, bool value)
{
    _entries[key] = Entry{Kind::Bool, 0, value, 0.0, {}};
}

void
Config::set(const std::string &key, double value)
{
    _entries[key] = Entry{Kind::Double, 0, false, value, {}};
}

void
Config::set(const std::string &key, const std::string &value)
{
    _entries[key] = Entry{Kind::String, 0, false, 0.0, value};
}

void
Config::set(const std::string &key, const char *value)
{
    set(key, std::string(value));
}

bool
Config::has(const std::string &key) const
{
    return _entries.count(key) != 0;
}

const Config::Entry &
Config::lookup(const std::string &key, Kind kind) const
{
    auto it = _entries.find(key);
    if (it == _entries.end())
        fatal("config key '%s' not set and no default given", key.c_str());
    if (it->second.kind != kind)
        fatal("config key '%s' accessed with wrong type", key.c_str());
    return it->second;
}

std::int64_t
Config::getInt(const std::string &key) const
{
    return lookup(key, Kind::Int).i;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t dflt) const
{
    return has(key) ? getInt(key) : dflt;
}

bool
Config::getBool(const std::string &key) const
{
    return lookup(key, Kind::Bool).b;
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    return has(key) ? getBool(key) : dflt;
}

double
Config::getDouble(const std::string &key) const
{
    return lookup(key, Kind::Double).d;
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    return has(key) ? getDouble(key) : dflt;
}

std::string
Config::getString(const std::string &key) const
{
    return lookup(key, Kind::String).s;
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    return has(key) ? getString(key) : dflt;
}

void
Config::merge(const Config &other)
{
    for (const auto &kv : other._entries)
        _entries[kv.first] = kv.second;
}

std::string
Config::renderValue(const std::string &key) const
{
    auto it = _entries.find(key);
    if (it == _entries.end())
        fatal("config key '%s' not set", key.c_str());
    const Entry &e = it->second;
    switch (e.kind) {
      case Kind::Int:
        return std::to_string(e.i);
      case Kind::Bool:
        return e.b ? "true" : "false";
      case Kind::Double:
        return std::to_string(e.d);
      case Kind::String:
        return e.s;
    }
    return "";
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> ks;
    ks.reserve(_entries.size());
    for (const auto &kv : _entries)
        ks.push_back(kv.first);
    return ks;
}

} // namespace simalpha

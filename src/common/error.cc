#include "error.hh"

#include <cstdio>
#include <sstream>

namespace simalpha {

std::string
DeadlockInfo::summary() const
{
    std::ostringstream os;
    os << machine << " deadlocked on '" << program << "' at cycle "
       << cycle << " (committed " << committed << ", no commit for "
       << (cycle - lastCommitCycle) << " cycles)";
    char pc[32];
    std::snprintf(pc, sizeof(pc), "0x%llx",
                  (unsigned long long)fetchPc);
    os << ": fetchPc=" << pc << " window=" << windowOccupancy;
    if (!oldestInst.empty())
        os << " oldest=[" << oldestInst << "]";
    if (!detail.empty())
        os << " " << detail;
    return os.str();
}

} // namespace simalpha

#include "trace.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "logging.hh"

namespace simalpha {
namespace trace {

namespace {

std::atomic<std::uint32_t> enabled_mask{0};

struct NamedCategory
{
    const char *name;
    Category cat;
};

constexpr NamedCategory kCategories[] = {
    {"fetch", Category::Fetch},       {"map", Category::Map},
    {"issue", Category::Issue},       {"retire", Category::Retire},
    {"recovery", Category::Recovery}, {"memory", Category::Memory},
    {"predictor", Category::Predictor}, {"trap", Category::Trap},
};

const char *
nameOf(Category cat)
{
    for (const NamedCategory &nc : kCategories)
        if (nc.cat == cat)
            return nc.name;
    return "?";
}

/** One-time initialization from the environment. */
struct EnvInit
{
    EnvInit()
    {
        if (const char *spec = std::getenv("SIMALPHA_TRACE"))
            enableFromString(spec);
    }
};

EnvInit env_init;

} // namespace

bool
enabled(Category cat)
{
    return (enabled_mask.load(std::memory_order_relaxed) &
            std::uint32_t(cat)) != 0;
}

void
setEnabled(Category cat, bool on)
{
    if (on)
        enabled_mask.fetch_or(std::uint32_t(cat),
                              std::memory_order_relaxed);
    else
        enabled_mask.fetch_and(~std::uint32_t(cat),
                               std::memory_order_relaxed);
}

void
enableFromString(const char *spec)
{
    std::string s(spec ? spec : "");
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        std::string token = s.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        if (token == "all") {
            for (const NamedCategory &nc : kCategories)
                setEnabled(nc.cat, true);
            continue;
        }
        bool found = false;
        for (const NamedCategory &nc : kCategories) {
            if (token == nc.name) {
                setEnabled(nc.cat, true);
                found = true;
            }
        }
        if (!found)
            warn("unknown trace category '%s'", token.c_str());
    }
}

void
emit(Category cat, const char *fmt, ...)
{
    std::fprintf(stderr, "%-9s: ", nameOf(cat));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

} // namespace trace
} // namespace simalpha

/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic():  an internal simulator bug — something that must never happen
 *           regardless of user input; throws InvariantError (or aborts
 *           when SIMALPHA_ABORT_ON_PANIC=1 is set, for debugger use).
 * fatal():  a user error (bad configuration, invalid argument); throws
 *           ConfigError.
 * warn():   functionality that may not be modeled exactly right.
 * inform(): status messages with no connotation of incorrectness.
 *
 * Library code installs no handlers: exceptions propagate to the
 * campaign layer (per-cell containment) or to the top-level driver in
 * tools/simalpha.cc, which maps the error class to an exit code. See
 * common/error.hh for the taxonomy.
 */

#ifndef SIMALPHA_COMMON_LOGGING_HH
#define SIMALPHA_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace simalpha {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Number of warnings emitted so far (for tests). */
std::uint64_t warnCount();

/** Suppress warn()/inform() output (benches keep their tables clean). */
void setQuiet(bool quiet);

} // namespace simalpha

#define panic(...) ::simalpha::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::simalpha::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::simalpha::warnImpl(__VA_ARGS__)
#define inform(...) ::simalpha::informImpl(__VA_ARGS__)

/**
 * Assert a simulator invariant; violation is a modeling bug -> panic.
 *
 * Unlike assert(3), sim_assert is deliberately independent of NDEBUG:
 * invariant checks guard the *results* (a silently-wrong cycle count is
 * worse than a failed cell), so Release builds keep them. The
 * SimAssertStaysEnabledUnderNdebug test compiles with NDEBUG defined
 * and fails if this guarantee is ever broken.
 */
#define sim_assert(cond)                                                    \
    do {                                                                    \
        if (!(cond))                                                        \
            panic("assertion failed: %s", #cond);                           \
    } while (0)

#endif // SIMALPHA_COMMON_LOGGING_HH

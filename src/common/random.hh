/**
 * @file
 * Deterministic pseudo-random source (xorshift128+). All stochastic model
 * behaviour (synthetic workload generation, DCPI sampling jitter) draws
 * from explicitly seeded instances so every run is reproducible.
 */

#ifndef SIMALPHA_COMMON_RANDOM_HH
#define SIMALPHA_COMMON_RANDOM_HH

#include <cstdint>

namespace simalpha {

class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x2545F4914F6CDD1DULL)
    {
        // SplitMix64 to spread the seed across both state words.
        std::uint64_t z = seed;
        for (auto *word : {&_s0, &_s1}) {
            z += 0x9E3779B97F4A7C15ULL;
            std::uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
            x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
            *word = x ^ (x >> 31);
        }
        if (_s0 == 0 && _s1 == 0)
            _s0 = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = _s0;
        const std::uint64_t y = _s1;
        _s0 = y;
        x ^= x << 23;
        _s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return _s1 + y;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    unit()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p. */
    bool
    chance(double p)
    {
        return unit() < p;
    }

  private:
    std::uint64_t _s0;
    std::uint64_t _s1;
};

} // namespace simalpha

#endif // SIMALPHA_COMMON_RANDOM_HH

/**
 * @file
 * RuuCore: the abstract out-of-order comparator, modeled after
 * SimpleScalar 3.0b's sim-outorder.
 *
 * A five-stage machine (fetch, dispatch, issue, writeback, commit) built
 * around the Register Update Unit [Sohi], which combines the physical
 * register file, reorder buffer and issue window in a single structure.
 * There is no clustering, no slotting, no line/way prediction, no replay
 * traps, and no cycle-time constraint on the front end — exactly the
 * abstractions the paper shows make such simulators optimistic by about
 * a third.
 */

#ifndef SIMALPHA_OUTORDER_RUU_CORE_HH
#define SIMALPHA_OUTORDER_RUU_CORE_HH

#include <deque>
#include <memory>
#include <optional>

#include "common/error.hh"
#include "core/oracle.hh"
#include "inject/inject.hh"
#include "isa/machine.hh"
#include "memory/hierarchy.hh"
#include "predictors/branch.hh"

namespace simalpha {

struct RuuCoreParams
{
    std::string name = "sim-outorder";
    int fetchWidth = 4;
    int decodeWidth = 4;
    int issueWidth = 4;
    int commitWidth = 4;
    int ruuEntries = 64;
    int lsqEntries = 64;
    /** Extra front-end refill cycles after a branch mispredict (the
     *  shallow SimpleScalar pipe: 3 total with fetch depth). */
    int mispredictExtra = 1;
    int fetchToDispatch = 1;

    // Functional units (generic resources).
    int intAlus = 4;
    int intMuls = 1;
    int fpAddUnits = 1;     ///< matched to the 21264's fp add pipe
    int fpMulUnits = 1;
    int memPorts = 2;

    /** Register-file / bypass study knobs (Figure 2). */
    int regreadCycles = 1;
    bool fullBypass = true;

    /**
     * Optional separate physical register file [Agarwal et al.]: when
     * nonzero, dispatch stalls once this many results are in flight.
     */
    int physRegs = 0;

    MemorySystemParams mem;

    /**
     * Forward-progress watchdog: if no instruction commits for this many
     * cycles the run throws DeadlockError with a machine-state snapshot
     * (0 = disabled). Diagnostic only — excluded from the manifest.
     */
    Cycle watchdogCycles = 100000;

    /** The paper's sim-outorder configuration matched to the 21264. */
    static RuuCoreParams simOutorder();
};

class RuuCore : public Machine
{
  public:
    explicit RuuCore(const RuuCoreParams &params);

    RunResult run(const Program &program,
                  std::uint64_t max_insts = 0) override;

    RunResult runWindow(const Program &program, const Checkpoint &start,
                        std::uint64_t warmup_insts,
                        std::uint64_t measure_insts,
                        std::map<std::string, std::uint64_t>
                            *measured_counters = nullptr) override;

    stats::Group &statGroup() override { return _stats; }
    std::string name() const override { return _p.name; }

    bool armInjection(const inject::StateInjection *injection,
                      Cycle cycle_budget) override;
    std::string injectionNote() const override { return _injectNote; }
    bool architecturalState(Checkpoint *out) const override;

  private:
    struct RuuInst
    {
        InstSeq seq = 0;
        InstSeq oracleSeq = 0;
        Addr pc = 0;
        Instruction inst;
        bool wrongPath = false;
        Addr nextPc = 0;
        bool taken = false;
        Addr effAddr = kNoAddr;
        bool halt = false;

        bool predTaken = false;
        bool mispredicted = false;
        bool hasBpSnap = false;
        BranchSnapshot bpSnap;      ///< predictor history snapshot

        Cycle readyForDispatch = 0;
        Cycle dispatchCycle = kNoCycle;
        Cycle issueCycle = kNoCycle;
        Cycle doneCycle = kNoCycle;
        bool dispatched = false;
        bool issued = false;
        bool completed = false;

        RegIndex srcs[3] = {kNoReg, kNoReg, kNoReg};
        /** In-flight producer of each source, captured at dispatch
         *  (kNoCycle = value already architecturally available). */
        InstSeq producers[3] = {kNoCycle, kNoCycle, kNoCycle};
        int numSrcs = 0;
        RegIndex dst = kNoReg;
    };

    void resetMachine(const Program &program);
    /** The run loop shared by run() and runWindow(): tick until halt
     *  or _maxInsts commits, with the forward-progress watchdog. */
    void runLoop(const Program &program);
    /** Apply the armed bit flip at its strike cycle (ruu_inject.cc). */
    void applyInjection();
    /** Machine-state snapshot for the forward-progress watchdog. */
    DeadlockInfo deadlockSnapshot(const Program &program) const;
    void doCommit();
    void doRecovery();
    void doIssue();
    void doDispatch();
    void doFetch();
    bool fuAvailable(OpClass cls) const;
    void consumeFu(OpClass cls);
    Cycle srcReady(const RuuInst &inst) const;

    // ---- Event-driven wakeup (perf only; cycle-exact semantics) -----
    /** Earliest cycle @p inst could pass the issue gates (kNoCycle if
     *  unissuable: already issued, or a producer not yet scheduled). */
    Cycle issueEntryLB(const RuuInst &inst) const;
    /** Exact refresh of the issue wake-up bound; _cycle + 1 when an
     *  entry is blocked only by FU/width arbitration. */
    Cycle recomputeIssueWake() const;
    /** Earliest cycle dispatch could act (kNoCycle while blocked on a
     *  condition another tracked event must clear). */
    Cycle dispatchEventCycle() const;
    Cycle fetchEventCycle() const;
    /** Target for an idle fast-forward jump; 0 if the coming cycle
     *  may be active. */
    Cycle fastForwardTarget() const;

    RuuCoreParams _p;
    stats::Group _stats;

    /** Hot-path counters resolved once at construction (the string
     *  map in _stats is for dumps/snapshots only). */
    struct BoundCounters
    {
        explicit BoundCounters(stats::Group &g);
        stats::Counter &cycles;
        stats::Counter &instsCommitted;
        stats::Counter &branchMispredicts;
        stats::Counter &instsIssued;
        stats::Counter &storeForwards;
        stats::Counter &instsDispatched;
    };
    BoundCounters _c;

    const Program *_prog = nullptr;
    std::unique_ptr<OracleStream> _oracle;
    std::unique_ptr<MemorySystem> _mem;
    std::unique_ptr<TournamentPredictor> _branchPred;
    std::unique_ptr<Btb> _btb;
    std::unique_ptr<ReturnAddressStack> _ras;

    Cycle _cycle = 0;
    InstSeq _seqCounter = 0;
    std::uint64_t _committed = 0;
    std::uint64_t _maxInsts = 0;
    bool _finished = false;

    Addr _fetchPc = 0;
    Cycle _fetchResumeAt = 0;
    bool _wrongPathMode = false;
    bool _haltFetched = false;

    /** Youngest in-flight writer of each architectural register
     *  (kNoCycle = none); consumers capture their producer at
     *  dispatch. */
    std::vector<InstSeq> _regWriter;

    std::deque<RuuInst> _fetchBuf;
    std::deque<RuuInst> _ruu;

    struct PendingRecovery
    {
        InstSeq seq;
        Cycle atCycle;
        Addr resumePc;
    };
    std::optional<PendingRecovery> _recovery;

    // Per-cycle FU accounting.
    Cycle _fuCycle = kNoCycle;
    int _aluUsed = 0;
    int _mulUsed = 0;
    int _fpAddUsed = 0;
    int _fpMulUsed = 0;
    int _memUsed = 0;

    Cycle _lastCommitCycle = 0;

    // ---- Event-driven wakeup state (lower bounds only: a stale
    // value costs a wasted scan, never a changed outcome) -------------
    /** Memory ops resident in the RUU (incremental replacement for
     *  the per-dispatch LSQ occupancy scan). */
    int _lsqUsed = 0;
    /** Correct-path results in flight (replaces the per-dispatch
     *  physical-register pressure scan). */
    int _inflightDst = 0;
    Cycle _issueWakeAt = 0;     ///< earliest possible issue
    /** SIMALPHA_SLOWPATH=1: execute every cycle, keep the fast
     *  bookkeeping alongside, and assert they agree. */
    bool _slowpath = false;
    Cycle _ffCheckUntil = 0;    ///< slowpath: predicted-idle window end
    bool _activity = false;     ///< slowpath: a stage acted this cycle

    // ---- State injection (inert unless armed) ------------------------
    inject::StateInjection _inject;  ///< armed spec (None = disarmed)
    Cycle _injectBudget = 0;         ///< cycle cap on injected runs
    /** True while armed and the flip has not struck yet (the single
     *  per-cycle poll flag; disarmed runs pay one predicted branch). */
    bool _injectPending = false;
    std::string _injectNote;         ///< what the last strike hit
};

} // namespace simalpha

#endif // SIMALPHA_OUTORDER_RUU_CORE_HH

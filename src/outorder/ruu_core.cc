#include "ruu_core.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace simalpha {

RuuCoreParams
RuuCoreParams::simOutorder()
{
    RuuCoreParams p;
    p.name = "sim-outorder";
    p.mem = MemorySystemParams::ds10l();
    // The paper's configuration: similarly configured caches, a 62-cycle
    // flat DRAM, combined 64-entry LSQ, 64-entry RUU, no victim buffer
    // or hardware I-prefetch (SimpleScalar models neither).
    p.mem.l1i.prefetchLines = 0;
    p.mem.l1d.victimEntries = 0;
    p.mem.dram.flatLatency = 62;
    return p;
}

RuuCore::RuuCore(const RuuCoreParams &params)
    : _p(params), _stats(params.name), _c(_stats)
{
}

RuuCore::BoundCounters::BoundCounters(stats::Group &g)
    : cycles(g.counter("cycles")),
      instsCommitted(g.counter("insts_committed")),
      branchMispredicts(g.counter("branch_mispredicts")),
      instsIssued(g.counter("insts_issued")),
      storeForwards(g.counter("store_forwards")),
      instsDispatched(g.counter("insts_dispatched"))
{
}

void
RuuCore::resetMachine(const Program &program)
{
    _prog = &program;
    // The oracle is program state and is rebuilt every run; the other
    // sub-units have fixed geometry and reset in place on reuse.
    _oracle = std::make_unique<OracleStream>(program);
    if (!_mem) {
        _mem = std::make_unique<MemorySystem>(_p.mem);
        // The paper gives sim-outorder a 2-level adaptive predictor
        // "with a similar quantity of state" to the Alpha's tournament;
        // we model that as the same tournament structure (so prediction
        // quality is comparable and the remaining differences are
        // microarchitectural).
        _branchPred = std::make_unique<TournamentPredictor>(true);
        _btb = std::make_unique<Btb>(512, 4);
        _ras = std::make_unique<ReturnAddressStack>();
    } else {
        _mem->reset();
        _branchPred->reset();
        _btb->reset();
        _ras->reset();
    }

    _cycle = 0;
    _seqCounter = 0;
    _committed = 0;
    _finished = false;
    _fetchPc = program.entryPc;
    _fetchResumeAt = 0;
    _wrongPathMode = false;
    _haltFetched = false;
    _regWriter.assign(kNumIntRegs + kNumFpRegs, kNoCycle);
    _fetchBuf.clear();
    _ruu.clear();
    _recovery.reset();
    _fuCycle = kNoCycle;
    _lastCommitCycle = 0;
    _stats.reset();

    _lsqUsed = 0;
    _inflightDst = 0;
    _issueWakeAt = 0;
    const char *slow = std::getenv("SIMALPHA_SLOWPATH");
    _slowpath = slow && std::strcmp(slow, "1") == 0;
    _ffCheckUntil = 0;
    _activity = false;

    // An armed injection re-arms for every run; the strike itself is
    // per-run state.
    _injectPending = _inject.enabled();
    _injectNote.clear();
}

void
RuuCore::runLoop(const Program &program)
{
    const Cycle budget = _inject.enabled() ? _injectBudget : 0;
    while (!_finished && (_maxInsts == 0 || _committed < _maxInsts)) {
        // The armed flip strikes before the stages of its cycle, on
        // the slow and fast paths alike (fastForwardTarget never
        // jumps across a pending strike).
        if (_injectPending && _cycle >= _inject.cycle)
            applyInjection();
        if (budget && _cycle > budget)
            throw TimeoutError(
                "injected run exceeded its cycle budget (" +
                std::to_string(budget) + " cycles)");
        if (_slowpath) {
            // Dual-run mode: predict the idle window the fast path
            // would skip, execute every cycle anyway, and assert each
            // predicted-idle cycle really was inactive.
            if (_cycle >= _ffCheckUntil) {
                Cycle j = fastForwardTarget();
                if (j)
                    _ffCheckUntil = j;
            }
            _activity = false;
        } else {
            Cycle j = fastForwardTarget();
            if (j) {
                // Every cycle in [_cycle, j) is provably inactive
                // (capped at the watchdog horizon so deadlocks fire
                // at the exact baseline cycle).
                _cycle = j;
                if (_p.watchdogCycles &&
                    _cycle - _lastCommitCycle > _p.watchdogCycles)
                    throw DeadlockError(deadlockSnapshot(program));
                continue;
            }
        }
        doRecovery();
        doCommit();
        doIssue();
        doDispatch();
        doFetch();
        if (_slowpath && _cycle < _ffCheckUntil)
            sim_assert(!_activity);
        _cycle++;
        if (_p.watchdogCycles &&
            _cycle - _lastCommitCycle > _p.watchdogCycles)
            throw DeadlockError(deadlockSnapshot(program));
    }
}

RunResult
RuuCore::run(const Program &program, std::uint64_t max_insts)
{
    resetMachine(program);
    _maxInsts = max_insts;
    runLoop(program);

    RunResult res;
    res.machine = _p.name;
    res.program = program.name;
    res.cycles = _cycle;
    res.instsCommitted = _committed;
    res.finished = _finished;
    _c.cycles.set(_cycle);
    _c.instsCommitted.set(_committed);
    return res;
}

RunResult
RuuCore::runWindow(const Program &program, const Checkpoint &start,
                   std::uint64_t warmup_insts,
                   std::uint64_t measure_insts,
                   std::map<std::string, std::uint64_t>
                       *measured_counters)
{
    resetMachine(program);
    // Swap the reset-state oracle for one resuming at the checkpoint;
    // fetch starts where the restored architectural state left off.
    // Everything microarchitectural (caches, predictors, queues)
    // stays cold — that is what the warm-up phase is for.
    _oracle = std::make_unique<OracleStream>(program, start);
    _fetchPc = start.pc;
    if (start.halted)
        _finished = true;

    if (warmup_insts && !_finished) {
        _maxInsts = warmup_insts;
        runLoop(program);
    }
    Cycle warm_cycles = _cycle;
    std::uint64_t warm_insts = _committed;
    std::map<std::string, std::uint64_t> before;
    if (measured_counters) {
        _c.cycles.set(_cycle);
        _c.instsCommitted.set(_committed);
        before = _stats.snapshot();
    }

    if (!_finished) {
        // measure_insts == 0 runs the window to program completion.
        _maxInsts = measure_insts ? warm_insts + measure_insts : 0;
        runLoop(program);
    }

    RunResult res;
    res.machine = _p.name;
    res.program = program.name;
    res.cycles = _cycle - warm_cycles;
    res.instsCommitted = _committed - warm_insts;
    res.finished = _finished;
    _c.cycles.set(_cycle);
    _c.instsCommitted.set(_committed);
    if (measured_counters) {
        measured_counters->clear();
        for (const auto &kv : _stats.snapshot()) {
            auto it = before.find(kv.first);
            std::uint64_t prior =
                it == before.end() ? 0 : it->second;
            (*measured_counters)[kv.first] = kv.second - prior;
        }
    }
    return res;
}

DeadlockInfo
RuuCore::deadlockSnapshot(const Program &program) const
{
    DeadlockInfo info;
    info.machine = _p.name;
    info.program = program.name;
    info.cycle = _cycle;
    info.lastCommitCycle = _lastCommitCycle;
    info.committed = _committed;
    info.fetchPc = _fetchPc;
    info.windowOccupancy = _ruu.size();
    if (!_ruu.empty()) {
        const RuuInst &h = _ruu.front();
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "seq=%llu pc=0x%llx %s wp=%d issued=%d done=%llu",
                      (unsigned long long)h.seq,
                      (unsigned long long)h.pc,
                      h.inst.disassemble().c_str(), int(h.wrongPath),
                      int(h.issued), (unsigned long long)h.doneCycle);
        info.oldestInst = buf;
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "resumeAt=%llu wrongPath=%d haltFetched=%d fb=%zu "
                  "recovery=%d",
                  (unsigned long long)_fetchResumeAt,
                  int(_wrongPathMode), int(_haltFetched),
                  _fetchBuf.size(), int(_recovery.has_value()));
    info.detail = buf;
    return info;
}

void
RuuCore::doRecovery()
{
    if (!_recovery || _recovery->atCycle > _cycle)
        return;
    PendingRecovery rec = *_recovery;
    _recovery.reset();

    while (!_fetchBuf.empty() && _fetchBuf.back().seq > rec.seq)
        _fetchBuf.pop_back();
    while (!_ruu.empty() && _ruu.back().seq > rec.seq) {
        sim_assert(_ruu.back().wrongPath);
        if (_ruu.back().inst.isMem())
            _lsqUsed--;
        _ruu.pop_back();
    }
    _fetchPc = rec.resumePc;
    _fetchResumeAt =
        std::max(_fetchResumeAt, _cycle + Cycle(_p.mispredictExtra));
    _wrongPathMode = false;
    ++_c.branchMispredicts;
    _activity = true;
}

void
RuuCore::doCommit()
{
    int committed = 0;
    while (committed < _p.commitWidth && !_ruu.empty()) {
        RuuInst &head = _ruu.front();
        if (head.wrongPath) {
            sim_assert(_recovery.has_value());
            break;
        }
        if (!head.completed || head.doneCycle > _cycle)
            break;
        if (head.mispredicted && _recovery &&
            _recovery->seq == head.seq)
            break;

        if (head.inst.isStore())
            _mem->dataAccess(head.effAddr, true, _cycle);
        if (head.inst.isCondBranch() && head.hasBpSnap)
            _branchPred->update(head.pc, head.taken, head.bpSnap);
        if (head.inst.isControl() && head.taken)
            _btb->update(head.pc, head.nextPc);
        if (head.dst != kNoReg && _regWriter[head.dst] == head.seq)
            _regWriter[head.dst] = kNoCycle;

        _oracle->retireBefore(head.oracleSeq + 1);
        _committed++;
        _lastCommitCycle = _cycle;
        committed++;
        _activity = true;
        if (head.halt) {
            _finished = true;
            return;
        }
        if (head.inst.isMem())
            _lsqUsed--;
        if (head.dst != kNoReg && !head.wrongPath)
            _inflightDst--;
        _ruu.pop_front();
    }
}

Cycle
RuuCore::srcReady(const RuuInst &inst) const
{
    Cycle ready = 0;
    for (int i = 0; i < inst.numSrcs; i++) {
        InstSeq writer = inst.producers[i];
        if (writer == kNoCycle)
            continue;   // value was architecturally ready at dispatch
        // Find the producer in the RUU (seq-ordered).
        auto it = std::lower_bound(
            _ruu.begin(), _ruu.end(), writer,
            [](const RuuInst &a, InstSeq s) { return a.seq < s; });
        if (it == _ruu.end() || it->seq != writer)
            continue;
        if (!it->issued)
            return kNoCycle;
        ready = std::max(ready, it->doneCycle);
    }
    return ready;
}

bool
RuuCore::fuAvailable(OpClass cls) const
{
    if (_fuCycle != _cycle)
        return true;
    switch (cls) {
      case OpClass::IntMul:
        return _mulUsed < _p.intMuls;
      case OpClass::FpAdd: case OpClass::FpDivS: case OpClass::FpDivD:
      case OpClass::FpSqrtS: case OpClass::FpSqrtD:
        return _fpAddUsed < _p.fpAddUnits;
      case OpClass::FpMul:
        return _fpMulUsed < _p.fpMulUnits;
      case OpClass::IntLoad: case OpClass::IntStore:
      case OpClass::FpLoad: case OpClass::FpStore:
        return _memUsed < _p.memPorts;
      default:
        return _aluUsed < _p.intAlus;
    }
}

void
RuuCore::consumeFu(OpClass cls)
{
    if (_fuCycle != _cycle) {
        _fuCycle = _cycle;
        _aluUsed = _mulUsed = _fpAddUsed = _fpMulUsed = _memUsed = 0;
    }
    switch (cls) {
      case OpClass::IntMul:
        _mulUsed++;
        break;
      case OpClass::FpAdd: case OpClass::FpDivS: case OpClass::FpDivD:
      case OpClass::FpSqrtS: case OpClass::FpSqrtD:
        _fpAddUsed++;
        break;
      case OpClass::FpMul:
        _fpMulUsed++;
        break;
      case OpClass::IntLoad: case OpClass::IntStore:
      case OpClass::FpLoad: case OpClass::FpStore:
        _memUsed++;
        break;
      default:
        _aluUsed++;
        break;
    }
}

Cycle
RuuCore::issueEntryLB(const RuuInst &inst) const
{
    if (!inst.dispatched || inst.issued)
        return kNoCycle;
    Cycle lb = inst.dispatchCycle + 1;
    if (!inst.wrongPath) {
        Cycle r = srcReady(inst);
        if (r == kNoCycle)
            return kNoCycle;    // a producer is not yet scheduled
        lb = std::max(lb, r);
    }
    return lb;
}

Cycle
RuuCore::recomputeIssueWake() const
{
    Cycle wake = kNoCycle;
    for (const RuuInst &inst : _ruu) {
        Cycle lb = issueEntryLB(inst);
        if (lb <= _cycle) {
            // Held back only by FU or issue-width arbitration: the
            // scan must rerun every cycle.
            return _cycle + 1;
        }
        wake = std::min(wake, lb);
    }
    return wake;
}

Cycle
RuuCore::dispatchEventCycle() const
{
    // Mirrors doDispatch's first-iteration gates; conditions cleared
    // only by another tracked event report kNoCycle.
    if (_fetchBuf.empty())
        return kNoCycle;
    const RuuInst &front = _fetchBuf.front();
    if (int(_ruu.size()) >= _p.ruuEntries)
        return kNoCycle;
    if (front.inst.isMem() && _lsqUsed >= _p.lsqEntries)
        return kNoCycle;
    if (_p.physRegs > 0 && front.dst != kNoReg && !front.wrongPath &&
        _inflightDst >= _p.physRegs)
        return kNoCycle;
    return front.readyForDispatch;
}

Cycle
RuuCore::fetchEventCycle() const
{
    if (_haltFetched && !_wrongPathMode)
        return kNoCycle;
    if (int(_fetchBuf.size()) + _p.fetchWidth > 4 * _p.fetchWidth)
        return kNoCycle;
    if (!_wrongPathMode && _oracle->exhausted())
        return kNoCycle;
    return _fetchResumeAt;
}

Cycle
RuuCore::fastForwardTarget() const
{
    Cycle ev = kNoCycle;
    if (_recovery)
        ev = std::min(ev, _recovery->atCycle);
    if (!_ruu.empty()) {
        const RuuInst &head = _ruu.front();
        if (!head.wrongPath && head.completed &&
            !(head.mispredicted && _recovery &&
              _recovery->seq == head.seq))
            ev = std::min(ev, head.doneCycle);
    }
    ev = std::min(ev, _issueWakeAt);
    ev = std::min(ev, dispatchEventCycle());
    ev = std::min(ev, fetchEventCycle());
    if (_p.watchdogCycles) {
        ev = std::min(ev,
                      _lastCommitCycle + _p.watchdogCycles + 1);
    }
    if (_injectPending) {
        // Never jump across a pending strike: the flip must land at
        // its planned cycle, before that cycle's stages run.
        ev = std::min(ev, _inject.cycle);
    }
    if (ev == kNoCycle || ev <= _cycle + 1)
        return 0;
    return ev;
}

void
RuuCore::doIssue()
{
    Cycle wake0 = _issueWakeAt;
    if (!_slowpath && wake0 > _cycle)
        return;     // no entry can pass the issue gates yet

    int issued = 0;
    for (RuuInst &inst : _ruu) {
        if (issued >= _p.issueWidth)
            break;
        if (inst.issued || !inst.dispatched)
            continue;
        if (inst.dispatchCycle + 1 > _cycle)
            continue;
        if (!inst.wrongPath) {
            Cycle r = srcReady(inst);
            if (r == kNoCycle || r > _cycle)
                continue;
        }
        OpClass cls = inst.inst.opClass();
        if (!fuAvailable(cls))
            continue;
        consumeFu(cls);

        inst.issued = true;
        inst.issueCycle = _cycle;
        issued++;
        ++_c.instsIssued;
        _activity = true;
        if (_slowpath)
            sim_assert(wake0 <= _cycle);

        Cycle done;
        if (inst.wrongPath) {
            done = _cycle + Cycle(inst.inst.latency());
        } else if (inst.inst.isLoad()) {
            // Perfect disambiguation: forward from any older in-flight
            // store to the same word, else access the cache.
            bool forwarded = false;
            for (auto it = _ruu.rbegin(); it != _ruu.rend(); ++it) {
                if (it->seq >= inst.seq || it->wrongPath)
                    continue;
                if (it->inst.isStore() &&
                    (it->effAddr >> 3) == (inst.effAddr >> 3)) {
                    forwarded = true;
                    break;
                }
            }
            if (forwarded) {
                done = _cycle + Cycle(inst.inst.latency());
                ++_c.storeForwards;
            } else {
                MemAccessResult r =
                    _mem->dataAccess(inst.effAddr, false, _cycle + 1);
                done = r.l1Hit ? _cycle + Cycle(inst.inst.latency())
                               : r.done;
            }
        } else if (inst.inst.isStore()) {
            done = _cycle + 1;
        } else {
            done = _cycle + Cycle(inst.inst.latency());
        }
        // Without a full bypass network the result is not visible to
        // consumers until it has been written through the register
        // file.
        if (!_p.fullBypass && inst.dst != kNoReg)
            done += Cycle(_p.regreadCycles);
        inst.doneCycle = done;
        inst.completed = true;

        if (inst.mispredicted && !inst.wrongPath) {
            Cycle resolve =
                _cycle + Cycle(_p.regreadCycles) + 1;
            if (!_recovery || inst.seq < _recovery->seq)
                _recovery = PendingRecovery{inst.seq, resolve,
                                            inst.nextPc};
            if (inst.inst.isCondBranch() && inst.hasBpSnap)
                _branchPred->recover(inst.bpSnap, inst.taken);
            inst.doneCycle = std::max(inst.doneCycle, resolve);
        }
    }

    // An issue schedules new done cycles for consumers: rescan next
    // cycle. A fruitless scan earns an exact recomputed bound.
    _issueWakeAt = issued ? _cycle + 1 : recomputeIssueWake();
}

void
RuuCore::doDispatch()
{
    int dispatched = 0;
    while (dispatched < _p.decodeWidth && !_fetchBuf.empty()) {
        RuuInst &front = _fetchBuf.front();
        if (front.readyForDispatch > _cycle)
            break;
        if (int(_ruu.size()) >= _p.ruuEntries)
            break;
        if (front.inst.isMem()) {
            if (_slowpath) {
                int lsq = 0;
                for (const RuuInst &ri : _ruu)
                    if (ri.inst.isMem())
                        lsq++;
                sim_assert(lsq == _lsqUsed);
            }
            if (_lsqUsed >= _p.lsqEntries)
                break;
        }
        if (_p.physRegs > 0 && front.dst != kNoReg &&
            !front.wrongPath) {
            if (_slowpath) {
                int inflight = 0;
                for (const RuuInst &ri : _ruu)
                    if (ri.dst != kNoReg && !ri.wrongPath)
                        inflight++;
                sim_assert(inflight == _inflightDst);
            }
            if (_inflightDst >= _p.physRegs)
                break;
        }

        RuuInst inst = std::move(front);
        _fetchBuf.pop_front();
        inst.dispatched = true;
        inst.dispatchCycle = _cycle;
        if (!inst.wrongPath) {
            for (int i = 0; i < inst.numSrcs; i++) {
                InstSeq writer = _regWriter[inst.srcs[i]];
                if (writer != kNoCycle && writer < inst.seq)
                    inst.producers[i] = writer;
            }
            if (inst.dst != kNoReg)
                _regWriter[inst.dst] = inst.seq;
        }
        if (inst.inst.isMem())
            _lsqUsed++;
        if (inst.dst != kNoReg && !inst.wrongPath)
            _inflightDst++;
        _ruu.push_back(std::move(inst));
        dispatched++;
        ++_c.instsDispatched;
    }
    if (dispatched) {
        _activity = true;
        // Newly dispatched entries become issuable next cycle.
        _issueWakeAt = std::min(_issueWakeAt, _cycle + 1);
    }
}

void
RuuCore::doFetch()
{
    if (_cycle < _fetchResumeAt)
        return;
    if (_haltFetched && !_wrongPathMode)
        return;
    if (int(_fetchBuf.size()) + _p.fetchWidth > 4 * _p.fetchWidth)
        return;
    if (!_wrongPathMode && _oracle->exhausted())
        return;

    _activity = true;
    MemAccessResult f = _mem->fetchAccess(_fetchPc, _cycle);
    Cycle fdone = f.done;

    int fetched = 0;
    Addr pc = _fetchPc;
    bool redirected = false;

    while (fetched < _p.fetchWidth) {
        RuuInst ri;
        ri.seq = _seqCounter++;
        ri.pc = pc;
        ri.readyForDispatch = fdone + Cycle(_p.fetchToDispatch);

        if (_wrongPathMode) {
            ri.inst = _prog->fetch(pc);
            ri.wrongPath = true;
        } else {
            if (_oracle->exhausted())
                break;
            sim_assert(_oracle->nextPc() == pc);
            const ExecutedInst &rec = _oracle->next();
            ri.oracleSeq = rec.seq;
            ri.inst = rec.inst;
            ri.nextPc = rec.nextPc;
            ri.taken = rec.taken;
            ri.effAddr = rec.effAddr;
            ri.halt = rec.halted;
        }
        RegIndex srcs[3];
        ri.numSrcs = ri.inst.srcRegs(srcs);
        for (int i = 0; i < ri.numSrcs; i++)
            ri.srcs[i] = srcs[i];
        ri.dst = ri.inst.dstReg();

        fetched++;

        bool cut = false;
        Addr next_fetch = pc + 4;

        if (ri.inst.isControl()) {
            bool pred_taken = true;
            if (ri.inst.isCondBranch()) {
                ri.hasBpSnap = true;
                pred_taken = _branchPred->predict(ri.pc, ri.bpSnap);
            }
            ri.predTaken = pred_taken;

            Addr pred_target = kNoAddr;
            if (pred_taken) {
                if (ri.inst.isPcRelBranch())
                    pred_target =
                        _prog->pcOf(std::size_t(ri.inst.target));
                else if (ri.inst.isReturn())
                    pred_target = _ras->pop();
                else
                    pred_target = _btb->lookup(ri.pc);
                if (pred_target == kNoAddr) {
                    // BTB miss on an indirect: fall through and let the
                    // resolution redirect (a mispredict).
                    pred_target = pc + 4;
                    pred_taken = false;
                }
            }
            if (ri.inst.isCall())
                _ras->push(ri.pc + 4);

            if (!_wrongPathMode) {
                Addr actual = ri.taken ? ri.nextPc : pc + 4;
                Addr frontend = pred_taken ? pred_target : pc + 4;
                if (frontend != actual) {
                    ri.mispredicted = true;
                    _wrongPathMode = true;
                    redirected = true;
                    next_fetch = frontend;
                    cut = pred_taken;
                } else if (pred_taken) {
                    next_fetch = pred_target;
                    cut = true;     // taken branches end the packet
                }
            } else {
                if (pred_taken) {
                    next_fetch = pred_target;
                    cut = true;
                }
            }
        } else if (!_wrongPathMode && ri.halt) {
            _haltFetched = true;
            _fetchBuf.push_back(std::move(ri));
            break;
        }

        (void)redirected;
        _fetchBuf.push_back(std::move(ri));
        pc = next_fetch;
        if (cut)
            break;
    }

    _fetchPc = pc;
    _fetchResumeAt = fdone;
}

} // namespace simalpha

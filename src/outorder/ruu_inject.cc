/**
 * @file
 * RuuCore state-injection hooks — the abstract core's counterpart of
 * core_inject.cc, with the RUU playing the role of ROB, LSQ, and
 * issue window at once. Same safety contract: folded indexes, flips
 * within field widths, contained errors only.
 */

#include <algorithm>
#include <cstdio>

#include "outorder/ruu_core.hh"

namespace simalpha {

namespace {

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace

bool
RuuCore::armInjection(const inject::StateInjection *injection,
                      Cycle cycle_budget)
{
    if (!injection || !injection->enabled()) {
        _inject = inject::StateInjection{};
        _injectBudget = 0;
        _injectPending = false;
        _injectNote.clear();
        return true;
    }
    _inject = *injection;
    _injectBudget = cycle_budget;
    // The strike becomes pending when resetMachine() starts a run.
    _injectPending = false;
    _injectNote.clear();
    return true;
}

bool
RuuCore::architecturalState(Checkpoint *out) const
{
    if (!_oracle)
        return false;
    *out = _oracle->emulator().checkpoint();
    return true;
}

void
RuuCore::applyInjection()
{
    _injectPending = false;
    const inject::StateInjection &inj = _inject;
    std::uint64_t salt = inj.index >> 8;
    std::string note = inject::targetName(inj.target);
    note += ' ';

    // Same field menu as AlphaCore's window flips so the two cores
    // expose comparable ROB/LSQ vulnerability surfaces.
    auto flipEntry = [&](RuuInst &d) -> std::string {
        switch (inj.bit % 6) {
          case 0:
            d.issued = !d.issued;
            return "issued flag";
          case 1:
            d.completed = !d.completed;
            return "completed flag";
          case 2:
            d.taken = !d.taken;
            return "taken flag";
          case 3: {
            int shift = int(4 * (salt % 12));
            d.doneCycle ^= Cycle(1) << shift;
            return "doneCycle bit " + std::to_string(shift);
          }
          case 4: {
            int shift = int(3 * (salt % 16));
            d.effAddr ^= Addr(1) << shift;
            return "effAddr bit " + std::to_string(shift);
          }
          default:
            d.mispredicted = !d.mispredicted;
            return "mispredicted flag";
        }
    };

    switch (inj.target) {
      case inject::Target::RegFile: {
        std::uint64_t r = inj.index % (kNumIntRegs + kNumFpRegs);
        if (isZeroRegIndex(RegIndex(r))) {
            note += "r" + std::to_string(r) +
                    " (hardwired zero; flip dropped)";
        } else {
            _oracle->emulator().flipRegisterBit(r, inj.bit);
            note += "r" + std::to_string(r) + " bit " +
                    std::to_string(inj.bit % 64);
        }
        break;
      }
      case inject::Target::RenameMap: {
        // The RUU machine's rename state is the in-flight-writer map:
        // corrupt which producer a later consumer will wait on.
        std::size_t a = std::size_t(inj.index % _regWriter.size());
        _regWriter[a] ^= InstSeq(1) << (inj.bit % 64);
        note += "writer of arch " + std::to_string(a) + " bit " +
                std::to_string(inj.bit % 64);
        break;
      }
      case inject::Target::Rob: {
        if (_ruu.empty()) {
            note += "(window empty; flip dropped)";
            break;
        }
        RuuInst &d = _ruu[std::size_t(inj.index % _ruu.size())];
        note += "slot " + std::to_string(inj.index % _ruu.size()) +
                " " + flipEntry(d);
        break;
      }
      case inject::Target::Lsq: {
        std::vector<std::size_t> mem;
        for (std::size_t i = 0; i < _ruu.size(); i++)
            if (_ruu[i].inst.isMem())
                mem.push_back(i);
        if (mem.empty()) {
            note += "(no resident memory op; flip dropped)";
            break;
        }
        RuuInst &d = _ruu[mem[std::size_t(inj.index % mem.size())]];
        note += "entry " + std::to_string(inj.index % mem.size()) +
                " " + flipEntry(d);
        break;
      }
      case inject::Target::Iq: {
        // The RUU doubles as the issue window: strike an entry that
        // is dispatched but not yet issued.
        std::vector<std::size_t> waiting;
        for (std::size_t i = 0; i < _ruu.size(); i++)
            if (_ruu[i].dispatched && !_ruu[i].issued)
                waiting.push_back(i);
        if (waiting.empty()) {
            note += "(no waiting entry; flip dropped)";
            break;
        }
        RuuInst &d =
            _ruu[waiting[std::size_t(inj.index % waiting.size())]];
        note += "slot " +
                std::to_string(inj.index % waiting.size()) + " " +
                flipEntry(d);
        break;
      }
      case inject::Target::Bpred:
        _branchPred->injectBitFlip(inj.index, inj.bit);
        note += "cell " + std::to_string(inj.index) + " bit " +
                std::to_string(inj.bit);
        break;
      case inject::Target::CacheTag:
        note += _mem->injectCacheTagFlip(inj.index, inj.bit);
        break;
      case inject::Target::CacheData: {
        Emulator &emu = _oracle->emulator();
        auto words = emu.memory().exportWords();
        std::sort(words.begin(), words.end());
        if (words.empty()) {
            note += "(no data written yet; flip dropped)";
            break;
        }
        std::size_t n = words.size();
        std::size_t start = std::size_t(inj.index % n);
        bool struck = false;
        for (std::size_t k = 0; k < n; k++) {
            auto [addr, word] = words[(start + k) % n];
            if (_mem->dcacheProbe(addr)) {
                emu.memory().write64(
                    addr, word ^ (RegVal(1) << (inj.bit % 64)));
                note += "word " + hexAddr(addr) + " bit " +
                        std::to_string(inj.bit % 64);
                struck = true;
                break;
            }
        }
        if (!struck)
            note += "(no cached word resident; flip dropped)";
        break;
      }
      case inject::Target::TlbTag:
        note += _mem->injectTlbTagFlip(inj.index, inj.bit);
        break;
      case inject::Target::None:
        break;
    }

    _injectNote = note;
    // The cached issue bound is a lower bound computed from pre-flip
    // state; the flip can make issue possible earlier.
    _issueWakeAt = _cycle;
}

} // namespace simalpha

/**
 * @file
 * The `fleet` rows of `simalpha bench`: the capped Table-3 campaign
 * measured end-to-end through a two-worker loopback fleet — two
 * worker daemons and a dispatcher front-end on private temp stores,
 * client submit to the front-end over a Unix socket, wall clock from
 * submit to done line — first cold (every cell computes on a worker),
 * then warm (job journals cleared, every cell served from the
 * workers' populated stores through two socket hops).
 *
 * Lives in sim_fleet (above serve); the runner's bench harness
 * reaches it through runner::setFleetBenchHook, wired by the driver.
 */

#ifndef SIMALPHA_FLEET_FLEETBENCH_HH
#define SIMALPHA_FLEET_FLEETBENCH_HH

#include <cstdint>
#include <string>

#include "runner/perfbench.hh"

namespace simalpha {
namespace fleet {

/** runner::FleetBenchFn implementation. False with *error filled if
 *  a daemon cannot start or a cell fails. */
bool measureFleetBench(std::uint64_t maxInsts,
                       runner::PerfPath *cold, runner::PerfPath *warm,
                       std::string *error);

} // namespace fleet
} // namespace simalpha

#endif // SIMALPHA_FLEET_FLEETBENCH_HH

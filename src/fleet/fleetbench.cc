#include "fleet/fleetbench.hh"

#include <unistd.h>

#include <cstdlib>

#include <chrono>
#include <filesystem>
#include <thread>

#include "fleet/dispatcher.hh"
#include "runner/journal.hh"
#include "serve/client.hh"
#include "serve/server.hh"

namespace simalpha {
namespace fleet {

namespace {

using Clock = std::chrono::steady_clock;

struct DaemonHandle
{
    serve::Server *server = nullptr;
    std::thread thread;

    ~DaemonHandle()
    {
        if (server)
            server->requestShutdown();
        if (thread.joinable())
            thread.join();
    }
};

bool
startDaemon(serve::Server &server, DaemonHandle *handle,
            std::string *error)
{
    if (!server.start(error))
        return false;
    handle->server = &server;
    handle->thread = std::thread([&server] { server.run(); });
    return true;
}

/** One timed submit of capped table3 through the fleet front-end. */
bool
timedSubmit(const std::string &address, std::uint64_t maxInsts,
            runner::PerfPath *out, std::string *error)
{
    serve::ClientOptions copts;
    copts.connect = address;
    copts.maxRetries = 0;

    auto t0 = Clock::now();
    serve::SubmitOutcome o =
        serve::submitCampaign(copts, "table3", maxInsts);
    auto t1 = Clock::now();
    if (!o.ok) {
        *error = "fleet bench submit failed: " + o.error;
        return false;
    }
    std::uint64_t insts = 0;
    for (const std::string &line : o.lines) {
        runner::CellResult r;
        std::string key;
        if (!runner::parseJournalLine(line, "table3", &r, &key))
            continue;
        if (!r.ok) {
            *error = "fleet bench cell failed: " + r.error;
            return false;
        }
        insts += r.instsCommitted;
    }
    out->insts = insts;
    out->seconds = std::chrono::duration<double>(t1 - t0).count();
    out->ips =
        out->seconds > 0.0 ? double(out->insts) / out->seconds : 0.0;
    return true;
}

/** Bring up two workers + a dispatcher front-end in @p dir and time
 *  one capped table3 submit through the front. */
bool
runFleetOnce(const std::string &dir, std::uint64_t maxInsts,
             runner::PerfPath *out, std::string *error)
{
    serve::ServeOptions w0, w1;
    w0.storePath = dir + "/w0store";
    w0.listen = dir + "/w0.sock";
    w0.jobs = 1;
    w1.storePath = dir + "/w1store";
    w1.listen = dir + "/w1.sock";
    w1.jobs = 1;

    serve::Server worker0(w0), worker1(w1);
    DaemonHandle d0, d1;
    if (!startDaemon(worker0, &d0, error) ||
        !startDaemon(worker1, &d1, error))
        return false;

    FleetOptions fopts;
    fopts.workers = {WorkerConfig{worker0.boundAddress()},
                     WorkerConfig{worker1.boundAddress()}};
    fopts.seed = 1;
    Dispatcher dispatcher(fopts);
    if (!dispatcher.start(error))
        return false;

    serve::ServeOptions front;
    front.storePath = dir + "/front";
    front.listen = dir + "/front.sock";
    front.executor = dispatcher.executor();
    serve::Server frontServer(front);
    DaemonHandle df;
    if (!startDaemon(frontServer, &df, error))
        return false;

    return timedSubmit(frontServer.boundAddress(), maxInsts, out,
                       error);
}

} // namespace

bool
measureFleetBench(std::uint64_t maxInsts, runner::PerfPath *cold,
                  runner::PerfPath *warm, std::string *error)
{
    char tmpl[] = "/tmp/simalpha-fleetbench-XXXXXX";
    if (!::mkdtemp(tmpl)) {
        *error = "fleet bench: cannot create a temp directory";
        return false;
    }
    const std::string dir = tmpl;

    // Cold: empty stores everywhere — every cell computes on a worker.
    bool ok = runFleetOnce(dir, maxInsts, cold, error);
    if (ok) {
        // Warm: clear every job journal (front and workers) but keep
        // the worker stores, so the rerun times the store-hit path
        // through both socket hops — the fleet's steady-state answer
        // for a repeated table.
        std::error_code ec;
        for (const char *sub : {"/front", "/w0store", "/w1store"})
            std::filesystem::remove_all(dir + sub + "/serve.d", ec);
        ok = runFleetOnce(dir, maxInsts, warm, error);
    }

    // Best-effort scrub of the private temp tree.
    if (dir.rfind("/tmp/simalpha-fleetbench-", 0) == 0) {
        std::string cmd = "rm -rf '" + dir + "'";
        int rc = std::system(cmd.c_str());
        (void)rc;
    }
    return ok;
}

} // namespace fleet
} // namespace simalpha

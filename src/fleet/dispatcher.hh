/**
 * @file
 * The fleet dispatcher: one front-end daemon fanning campaigns out to
 * per-host `simalpha serve` workers over the ordinary serve protocol.
 *
 * The dispatcher *is* a serve::Server — clients connect, submit, and
 * stream results exactly as against a single daemon — whose accepted
 * jobs run through Dispatcher::execute() (the serve::JobExecutor
 * hook) instead of the local runner:
 *
 *   1. replay: the job's master journal under <store>/serve.d/ is
 *      read first, so a restarted dispatcher re-serves settled cells
 *      byte-identically and dispatches only the remainder;
 *   2. partition: the campaign's cells are split round-robin into n
 *      deterministic shard sub-campaigns named
 *      "shard:<i>/<n>:<campaign>" (n = live workers), which each
 *      worker re-derives from the name alone — the same trick the
 *      process-isolation shards use;
 *   3. dispatch: each shard is submitted to a worker through the
 *      retrying client (busy replies and torn streams back off and
 *      retry against the same worker; a worker that stays unreachable
 *      is marked dead and its shard re-dispatched to a live one —
 *      worker-side job journals make every re-dispatch resume, never
 *      recompute, what already settled);
 *   4. merge: returned journal lines are keyed by cell identity and
 *      appended to the master journal in campaign spec order — the
 *      order a single-host `--jobs 1` run settles in — so the master
 *      journal and every derived artifact are byte-identical to a
 *      single-host run at any worker count;
 *   5. sync (opt-in): before dispatch the dispatcher's store is
 *      pushed to every live worker (op "sync", checkpoints and golden
 *      blobs included) and after completion freshly-published worker
 *      entries are harvested back, so a warm fleet rerun computes
 *      nothing anywhere.
 *
 * Failure matrix: a dead worker costs a re-dispatch; a dead
 * dispatcher costs a restart + idempotent resubmit (master journal
 * replay); cancel propagates to every worker as protocol cancel ops;
 * all workers dead is an explicit job failure with every settled cell
 * already journaled.
 */

#ifndef SIMALPHA_FLEET_DISPATCHER_HH
#define SIMALPHA_FLEET_DISPATCHER_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fleet/registry.hh"
#include "serve/server.hh"
#include "store/store.hh"

namespace simalpha {
namespace fleet {

struct FleetOptions
{
    /** Worker daemon addresses (Unix-socket paths or tcp:[HOST:]PORT). */
    std::vector<WorkerConfig> workers;

    /** Pre-seed every live worker's store before dispatch and harvest
     *  new entries back after each job (op "sync"). */
    bool syncStores = false;

    /** Per-attempt budget for one shard submission (connect + stream);
     *  0 = unbounded stream (connects stay bounded separately). */
    double workerTimeoutSeconds = 0.0;
    double connectTimeoutSeconds = 10.0;

    /** Client-level retries per dispatch (busy/torn-stream/connect,
     *  against the same worker). */
    int maxRetries = 3;
    /** Times a shard may be re-dispatched to *another* worker after
     *  its current worker fails terminally. */
    int maxRedispatch = 2;
    double backoffSeconds = 0.2;
    std::uint64_t seed = 0;

    /** fsync the master journal per merged line. */
    bool journalSync = false;
};

/** Cumulative dispatcher statistics. */
struct FleetStats
{
    std::uint64_t jobs = 0;
    std::uint64_t shardsDispatched = 0;
    std::uint64_t redispatches = 0;     ///< shard moved to another worker
    std::uint64_t cellsMerged = 0;      ///< appended to a master journal
    std::uint64_t cellsReplayed = 0;    ///< served from a master journal
    std::uint64_t syncPushedEntries = 0;
    std::uint64_t syncPulledEntries = 0;
    std::string lastSyncError;          ///< sync is best-effort
};

class Dispatcher
{
  public:
    explicit Dispatcher(FleetOptions options);

    /** Probe the configured workers. False with *error filled when
     *  none answer (a dispatcher with no fleet serves nothing). */
    bool start(std::string *error);

    /** The serve::JobExecutor to plug into ServeOptions::executor. */
    serve::JobExecutor executor();

    /** Run one accepted job across the fleet (replay, partition,
     *  dispatch, merge, sync). Throws on unrecoverable failure — the
     *  server marks the job failed; settled cells stay journaled. */
    void execute(const serve::JobWork &work);

    FleetStats stats() const;
    std::vector<WorkerStatus> workers() const;

  private:
    bool ensureStore(const std::string &root, std::string *error);
    void syncPushAll(const std::string &root,
                     const std::vector<std::size_t> &live);
    void syncPullAll(const std::string &root,
                     const std::vector<std::size_t> &live,
                     std::uint64_t newerThanSeconds);

    FleetOptions _opts;
    WorkerRegistry _registry;
    std::unique_ptr<store::ResultStore> _store;
    mutable std::mutex _mu;
    FleetStats _stats;
};

} // namespace fleet
} // namespace simalpha

#endif // SIMALPHA_FLEET_DISPATCHER_HH

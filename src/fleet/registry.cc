#include "fleet/registry.hh"

#include "serve/proto.hh"

namespace simalpha {
namespace fleet {

bool
parseWorkerList(const std::string &text,
                std::vector<WorkerConfig> *out, std::string *error)
{
    out->clear();
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t end = text.find(',', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string item = text.substr(pos, end - pos);
        if (item.empty()) {
            if (error)
                *error = "empty worker address in '" + text + "'";
            return false;
        }
        out->push_back(WorkerConfig{item});
        pos = end + 1;
        if (end == text.size())
            break;
    }
    if (out->empty()) {
        if (error)
            *error = "empty worker list";
        return false;
    }
    return true;
}

WorkerRegistry::WorkerRegistry(std::vector<WorkerConfig> workers,
                               double timeoutSeconds,
                               double connectTimeoutSeconds,
                               std::uint64_t seed)
    : _timeoutSeconds(timeoutSeconds),
      _connectTimeoutSeconds(connectTimeoutSeconds), _seed(seed)
{
    _workers.reserve(workers.size());
    for (const WorkerConfig &w : workers) {
        WorkerStatus s;
        s.address = w.address;
        _workers.push_back(std::move(s));
    }
}

std::size_t
WorkerRegistry::size() const
{
    return _workers.size();
}

serve::ClientOptions
WorkerRegistry::clientFor(std::size_t index) const
{
    serve::ClientOptions opts;
    opts.connect = _workers[index].address;
    opts.timeoutSeconds = _timeoutSeconds;
    opts.connectTimeoutSeconds = _connectTimeoutSeconds;
    opts.maxRetries = 0;
    // Distinct per-worker jitter seeds so retry schedules against
    // different workers never align (same construction as the shard
    // supervisor's per-shard seeds).
    opts.seed = _seed * 0x9E3779B97F4A7C15ULL + index + 1;
    return opts;
}

bool
WorkerRegistry::probe(std::size_t index)
{
    serve::ClientOptions opts = clientFor(index);
    if (opts.timeoutSeconds <= 0.0)
        opts.timeoutSeconds = 10.0;     // probes must terminate
    std::string reply, error;
    if (!serve::requestOnce(opts, "{\"op\":\"health\"}", &reply,
                            &error)) {
        markDead(index, error);
        return false;
    }
    std::map<std::string, std::string> strings;
    std::map<std::string, std::uint64_t> numbers;
    if (!serve::parseServeLine(reply, &strings, &numbers) ||
        strings["event"] != "health") {
        markDead(index, "unexpected health reply: " + reply);
        return false;
    }
    std::lock_guard<std::mutex> lock(_mu);
    WorkerStatus &w = _workers[index];
    w.alive = true;
    w.pid = numbers["pid"];
    w.storePath = strings["store_path"];
    w.cellsComputed = numbers["cells_computed"];
    w.lastError.clear();
    return true;
}

std::size_t
WorkerRegistry::probeAll()
{
    std::size_t live = 0;
    for (std::size_t i = 0; i < _workers.size(); i++)
        if (probe(i))
            live++;
    return live;
}

std::vector<std::size_t>
WorkerRegistry::liveWorkers() const
{
    std::lock_guard<std::mutex> lock(_mu);
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < _workers.size(); i++)
        if (_workers[i].alive)
            out.push_back(i);
    return out;
}

void
WorkerRegistry::markDead(std::size_t index, const std::string &error)
{
    std::lock_guard<std::mutex> lock(_mu);
    _workers[index].alive = false;
    _workers[index].lastError = error;
}

void
WorkerRegistry::noteDispatched(std::size_t index)
{
    std::lock_guard<std::mutex> lock(_mu);
    _workers[index].shardsDispatched++;
}

void
WorkerRegistry::noteCompleted(std::size_t index)
{
    std::lock_guard<std::mutex> lock(_mu);
    _workers[index].shardsCompleted++;
}

void
WorkerRegistry::noteFailed(std::size_t index, const std::string &error)
{
    std::lock_guard<std::mutex> lock(_mu);
    _workers[index].shardsFailed++;
    _workers[index].lastError = error;
}

void
WorkerRegistry::noteLines(std::size_t index, std::uint64_t lines)
{
    std::lock_guard<std::mutex> lock(_mu);
    _workers[index].linesStreamed += lines;
}

std::vector<WorkerStatus>
WorkerRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _workers;
}

} // namespace fleet
} // namespace simalpha

#include "fleet/dispatcher.hh"

#include <atomic>
#include <chrono>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "checkpoint/checkpoint.hh"
#include "runner/artifacts.hh"
#include "runner/campaign.hh"
#include "runner/journal.hh"
#include "serve/client.hh"
#include "serve/proto.hh"

namespace simalpha {
namespace fleet {

namespace {

std::string
cancelRequestLine(const std::string &campaign, std::uint64_t maxInsts,
                  const std::string &sample)
{
    std::ostringstream os;
    os << "{\"op\":\"cancel\",\"campaign\":\""
       << runner::jsonEscape(campaign) << "\"";
    if (maxInsts)
        os << ",\"max_insts\":" << maxInsts;
    if (!sample.empty())
        os << ",\"sample\":\"" << runner::jsonEscape(sample) << "\"";
    os << "}";
    return os.str();
}

} // namespace

Dispatcher::Dispatcher(FleetOptions options)
    : _opts(std::move(options)),
      _registry(_opts.workers, _opts.workerTimeoutSeconds,
                _opts.connectTimeoutSeconds, _opts.seed)
{
}

bool
Dispatcher::start(std::string *error)
{
    if (_registry.size() == 0) {
        if (error)
            *error = "no workers configured";
        return false;
    }
    if (_registry.probeAll() > 0)
        return true;
    if (error) {
        std::string detail;
        for (const WorkerStatus &w : _registry.snapshot()) {
            if (!detail.empty())
                detail += "; ";
            detail += w.address + ": " +
                      (w.lastError.empty() ? "unreachable"
                                           : w.lastError);
        }
        *error = "no live workers (" + detail + ")";
    }
    return false;
}

serve::JobExecutor
Dispatcher::executor()
{
    return [this](const serve::JobWork &work) { execute(work); };
}

bool
Dispatcher::ensureStore(const std::string &root, std::string *error)
{
    if (_store && _store->isOpen())
        return true;
    auto fresh = std::make_unique<store::ResultStore>();
    if (!fresh->open(root, error))
        return false;
    _store = std::move(fresh);
    return true;
}

void
Dispatcher::syncPushAll(const std::string &root,
                        const std::vector<std::size_t> &live)
{
    std::string serror;
    {
        std::lock_guard<std::mutex> lock(_mu);
        if (!ensureStore(root, &serror)) {
            _stats.lastSyncError = "sync push: " + serror;
            return;
        }
    }
    for (std::size_t w : live) {
        serve::ClientOptions copts = _registry.clientFor(w);
        if (copts.timeoutSeconds <= 0.0)
            copts.timeoutSeconds = 120.0;   // whole-store transfers
        std::uint64_t pushed = 0;
        std::string error;
        std::lock_guard<std::mutex> lock(_mu);
        if (serve::syncPush(copts, *_store, store::ExportFilter{},
                            &pushed, &error))
            _stats.syncPushedEntries += pushed;
        else
            _stats.lastSyncError =
                "sync push to " + copts.connect + ": " + error;
    }
}

void
Dispatcher::syncPullAll(const std::string &root,
                        const std::vector<std::size_t> &live,
                        std::uint64_t newerThanSeconds)
{
    std::string serror;
    {
        std::lock_guard<std::mutex> lock(_mu);
        if (!ensureStore(root, &serror)) {
            _stats.lastSyncError = "sync pull: " + serror;
            return;
        }
    }
    for (std::size_t w : live) {
        serve::ClientOptions copts = _registry.clientFor(w);
        if (copts.timeoutSeconds <= 0.0)
            copts.timeoutSeconds = 120.0;
        std::uint64_t pulled = 0;
        std::string error;
        std::lock_guard<std::mutex> lock(_mu);
        if (serve::syncPull(copts, _store.get(), newerThanSeconds,
                            &pulled, &error))
            _stats.syncPulledEntries += pulled;
        else
            _stats.lastSyncError =
                "sync pull from " + copts.connect + ": " + error;
    }
}

void
Dispatcher::execute(const serve::JobWork &work)
{
    const runner::CampaignSpec &spec = *work.spec;
    const std::size_t cellCount = spec.cells.size();
    {
        std::lock_guard<std::mutex> lock(_mu);
        _stats.jobs++;
    }

    // Expected cell keys in spec order — the merge barrier.
    std::vector<std::string> keys(cellCount);
    for (std::size_t i = 0; i < cellCount; i++)
        keys[i] = runner::journalKey(spec.cells[i]);

    // Replay the master journal first: a restarted dispatcher (or a
    // warm resubmit) re-serves settled cells byte-identically and
    // dispatches only the remainder. Torn final lines are discarded,
    // exactly as loadJournal() does.
    std::unordered_map<std::string, std::string> lineByKey;
    std::unordered_set<std::string> journaled;
    {
        std::ifstream in(work.journalPath, std::ios::binary);
        if (in.is_open()) {
            std::string text((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
            std::size_t pos = 0;
            while (pos < text.size()) {
                std::size_t nl = text.find('\n', pos);
                if (nl == std::string::npos)
                    break;
                std::string line = text.substr(pos, nl - pos);
                pos = nl + 1;
                runner::CellResult r;
                std::string key;
                if (runner::parseJournalLine(line, spec.name, &r,
                                             &key)) {
                    lineByKey[key] = line;  // newest wins
                    journaled.insert(key);
                }
            }
        }
    }

    runner::CampaignJournal journal;
    std::string jerror;
    if (!journal.open(work.journalPath, &jerror, _opts.journalSync))
        throw std::runtime_error("cannot open master journal " +
                                 work.journalPath + ": " + jerror);

    std::mutex mu;          // guards lineByKey, journaled, cursor
    std::size_t cursor = 0;

    // Emit every spec-order cell whose line has arrived. Clients and
    // the master journal see lines in exactly the order a single-host
    // `--jobs 1` run settles them, whatever order workers deliver in —
    // that ordering is the whole byte-identity argument. Call with mu
    // held.
    auto emitReady = [&]() {
        while (cursor < cellCount) {
            auto it = lineByKey.find(keys[cursor]);
            if (it == lineByKey.end())
                break;
            const bool replayed = journaled.count(keys[cursor]) != 0;
            if (!replayed) {
                journal.appendRaw(it->second);
                journaled.insert(keys[cursor]);
            }
            runner::CellResult r;
            std::string key;
            const bool ok = runner::parseJournalLine(
                                it->second, spec.name, &r, &key) &&
                            r.ok;
            work.emit(it->second, ok, replayed);
            {
                std::lock_guard<std::mutex> slock(_mu);
                if (replayed)
                    _stats.cellsReplayed++;
                else
                    _stats.cellsMerged++;
            }
            cursor++;
        }
    };

    {
        std::lock_guard<std::mutex> lock(mu);
        emitReady();
    }
    if (cursor >= cellCount) {
        journal.close();
        return;     // fully warm: nothing to dispatch
    }

    // Fresh probe brings restarted workers back before partitioning.
    _registry.probeAll();
    const std::vector<std::size_t> live = _registry.liveWorkers();
    if (live.empty())
        throw std::runtime_error("no live workers for campaign '" +
                                 work.campaign + "'");

    const std::string sampleText =
        work.sample.enabled()
            ? checkpoint::formatSampleSpec(work.sample)
            : std::string();

    if (_opts.syncStores)
        syncPushAll(work.storePath, live);

    const auto startedAt = std::chrono::steady_clock::now();

    // One shard per live worker, never more shards than cells. Each
    // shard is a self-describing sub-campaign the worker re-derives
    // from its name alone.
    std::size_t shardCount = live.size();
    if (cellCount && shardCount > cellCount)
        shardCount = cellCount;
    std::vector<std::string> shardNames(shardCount);
    for (std::size_t i = 0; i < shardCount; i++)
        shardNames[i] =
            runner::shardCampaignName(work.campaign, i, shardCount);

    std::atomic<bool> failed{false};
    std::mutex failMu;
    std::string failure;

    auto runShard = [&](std::size_t shardIndex) {
        const std::string &shardName = shardNames[shardIndex];
        std::string lastError = "never dispatched";
        std::size_t rotation = shardIndex;  // start on "its" worker
        for (int dispatch = 0; dispatch <= _opts.maxRedispatch;
             dispatch++) {
            if (failed.load() ||
                (work.cancel && work.cancel->load()))
                return;
            const std::vector<std::size_t> liveNow =
                _registry.liveWorkers();
            if (liveNow.empty()) {
                lastError = "no live workers left";
                break;
            }
            const std::size_t worker =
                liveNow[rotation % liveNow.size()];
            rotation++;
            _registry.noteDispatched(worker);
            {
                std::lock_guard<std::mutex> lock(_mu);
                _stats.shardsDispatched++;
                if (dispatch > 0)
                    _stats.redispatches++;
            }
            serve::ClientOptions copts = _registry.clientFor(worker);
            copts.maxRetries = _opts.maxRetries;
            copts.backoffSeconds = _opts.backoffSeconds;
            std::uint64_t delivered = 0;
            const serve::SubmitOutcome o = serve::submitCampaign(
                copts, shardName, work.maxInsts, sampleText, false,
                [&](const std::string &line) {
                    delivered++;
                    std::lock_guard<std::mutex> lock(mu);
                    runner::CellResult r;
                    std::string key;
                    if (!runner::parseJournalLine(line, spec.name,
                                                  &r, &key))
                        return;
                    // Duplicate deliveries (attach replays after a
                    // torn stream, a re-dispatched shard) are
                    // byte-identical; first one wins.
                    if (!lineByKey.count(key))
                        lineByKey[key] = line;
                    emitReady();
                });
            _registry.noteLines(worker, delivered);
            if (o.ok) {
                std::string outcome;
                auto it = o.doneStrings.find("outcome");
                if (it != o.doneStrings.end())
                    outcome = it->second;
                if (outcome == "complete") {
                    _registry.noteCompleted(worker);
                    return;
                }
                if (outcome == "cancelled" && work.cancel &&
                    work.cancel->load())
                    return;     // our own cancel, propagated
                lastError = "worker " + copts.connect +
                            " finished shard '" + shardName +
                            "' with outcome '" + outcome + "'";
                _registry.noteFailed(worker, lastError);
            } else {
                lastError =
                    "worker " + copts.connect + ": " + o.error;
                _registry.noteFailed(worker, lastError);
                // Protocol-level rejections leave the worker alive
                // (the next dispatch may fit); transport failures
                // that survived the client's own retries mean the
                // daemon is gone until a probe says otherwise.
                if (o.errorCode.empty())
                    _registry.markDead(worker, lastError);
            }
        }
        bool expected = false;
        if (failed.compare_exchange_strong(expected, true)) {
            std::lock_guard<std::mutex> lock(failMu);
            failure =
                "shard '" + shardName + "' failed: " + lastError;
        }
    };

    // Cancel monitor: the server only flips work.cancel; someone has
    // to tell the workers. Forward protocol cancels for every shard
    // identity so their streams settle as "cancelled" promptly.
    std::atomic<bool> finishing{false};
    std::thread cancelMonitor;
    if (work.cancel) {
        cancelMonitor = std::thread([&]() {
            while (!finishing.load()) {
                if (work.cancel->load()) {
                    for (std::size_t w : _registry.liveWorkers()) {
                        serve::ClientOptions copts =
                            _registry.clientFor(w);
                        if (copts.timeoutSeconds <= 0.0)
                            copts.timeoutSeconds = 10.0;
                        for (const std::string &name : shardNames) {
                            std::string reply, cerror;
                            serve::requestOnce(
                                copts,
                                cancelRequestLine(name, work.maxInsts,
                                                  sampleText),
                                &reply, &cerror);
                        }
                    }
                    return;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
        });
    }

    std::vector<std::thread> threads;
    threads.reserve(shardCount);
    for (std::size_t i = 0; i < shardCount; i++)
        threads.emplace_back(runShard, i);
    for (std::thread &t : threads)
        t.join();
    finishing.store(true);
    if (cancelMonitor.joinable())
        cancelMonitor.join();

    journal.close();

    if (work.cancel && work.cancel->load())
        return;     // the server settles the job as cancelled

    if (failed.load()) {
        std::lock_guard<std::mutex> lock(failMu);
        throw std::runtime_error(failure);
    }

    {
        std::lock_guard<std::mutex> lock(mu);
        if (cursor < cellCount) {
            std::ostringstream os;
            os << "fleet merge incomplete: " << cursor << " of "
               << cellCount << " cells arrived";
            throw std::runtime_error(os.str());
        }
    }

    // Harvest what the workers published during this job (mtime
    // filter, with slack for clock coarseness) so the next run of any
    // overlapping campaign is warm on the dispatcher too.
    if (_opts.syncStores) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::steady_clock::now() - startedAt)
                .count();
        syncPullAll(work.storePath, _registry.liveWorkers(),
                    std::uint64_t(elapsed) + 120);
    }
}

FleetStats
Dispatcher::stats() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _stats;
}

std::vector<WorkerStatus>
Dispatcher::workers() const
{
    return _registry.snapshot();
}

} // namespace fleet
} // namespace simalpha

/**
 * @file
 * The fleet dispatcher's worker registry: the configured `--workers`
 * list, each worker's liveness and dispatch accounting, and the
 * health-probe that decides both.
 *
 * A worker is a plain `simalpha serve` daemon named by its address
 * (Unix-socket path or tcp:[HOST:]PORT). The registry never spawns or
 * supervises them — operators own the daemons; the registry only
 * probes (op "health"), marks dead workers out of rotation when a
 * dispatch fails terminally, and lets a later probe bring a restarted
 * worker back. All methods are thread-safe: shard dispatch threads
 * update accounting concurrently.
 */

#ifndef SIMALPHA_FLEET_REGISTRY_HH
#define SIMALPHA_FLEET_REGISTRY_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/client.hh"

namespace simalpha {
namespace fleet {

/** One worker daemon, as configured. */
struct WorkerConfig
{
    std::string address;  ///< Unix-socket path or tcp:[HOST:]PORT
};

/** Parse a comma-separated `--workers` list. False with *error
 *  filled on an empty list or empty element. */
bool parseWorkerList(const std::string &text,
                     std::vector<WorkerConfig> *out,
                     std::string *error);

/** Snapshot of one worker's state and dispatch accounting. */
struct WorkerStatus
{
    std::string address;
    bool alive = false;
    std::uint64_t pid = 0;           ///< from the last health probe
    std::string storePath;           ///< from the last health probe
    std::uint64_t cellsComputed = 0; ///< worker-reported, last probe
    std::uint64_t shardsDispatched = 0;
    std::uint64_t shardsCompleted = 0;
    std::uint64_t shardsFailed = 0;
    std::uint64_t linesStreamed = 0;
    std::string lastError;
};

class WorkerRegistry
{
  public:
    WorkerRegistry(std::vector<WorkerConfig> workers,
                   double timeoutSeconds, double connectTimeoutSeconds,
                   std::uint64_t seed);

    std::size_t size() const;

    /** Client options for worker @p index (timeouts and a per-worker
     *  jitter seed applied; no retries — callers choose). */
    serve::ClientOptions clientFor(std::size_t index) const;

    /** Health-probe worker @p index: marks it alive (recording pid,
     *  store root, cells_computed) or dead with the probe error. */
    bool probe(std::size_t index);

    /** Probe every worker; returns how many are alive. */
    std::size_t probeAll();

    /** Indexes of live workers, in configured order. */
    std::vector<std::size_t> liveWorkers() const;

    void markDead(std::size_t index, const std::string &error);

    void noteDispatched(std::size_t index);
    void noteCompleted(std::size_t index);
    void noteFailed(std::size_t index, const std::string &error);
    void noteLines(std::size_t index, std::uint64_t lines);

    std::vector<WorkerStatus> snapshot() const;

  private:
    mutable std::mutex _mu;
    std::vector<WorkerStatus> _workers;
    double _timeoutSeconds;
    double _connectTimeoutSeconds;
    std::uint64_t _seed;
};

} // namespace fleet
} // namespace simalpha

#endif // SIMALPHA_FLEET_REGISTRY_HH

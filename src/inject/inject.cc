#include "inject.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "checkpoint/checkpoint.hh"
#include "common/names.hh"
#include "common/random.hh"

namespace simalpha {
namespace inject {

namespace {

/** The one target⇄name table every grammar element derives from. */
constexpr EnumName<Target> kTargets[] = {
    {Target::RegFile, "regfile"},   {Target::RenameMap, "renamemap"},
    {Target::Rob, "rob"},           {Target::Lsq, "lsq"},
    {Target::Iq, "iq"},             {Target::Bpred, "bpred"},
    {Target::CacheTag, "cachetag"}, {Target::CacheData, "cachedata"},
    {Target::TlbTag, "tlbtag"},
};

constexpr EnumName<Outcome> kOutcomes[] = {
    {Outcome::Masked, "masked"},     {Outcome::Sdc, "sdc"},
    {Outcome::Crash, "crash"},       {Outcome::Deadlock, "deadlock"},
    {Outcome::Timeout, "timeout"},
};

bool
parseDecimal(const std::string &text, std::uint64_t *out)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    *out = std::strtoull(text.c_str(), nullptr, 10);
    return true;
}

} // namespace

const char *
targetName(Target target)
{
    return enumName(kTargets, target, "none");
}

bool
targetByName(const std::string &name, Target *out)
{
    return enumByName(kTargets, name, out);
}

std::string
targetNameList()
{
    return enumNameList(kTargets);
}

const std::vector<Target> &
allTargets()
{
    static const std::vector<Target> all = [] {
        std::vector<Target> v;
        for (const EnumName<Target> &row : kTargets)
            v.push_back(row.value);
        return v;
    }();
    return all;
}

std::string
formatInjectSpec(const StateInjection &injection)
{
    std::string out = targetName(injection.target);
    out += ':';
    out += std::to_string(injection.index);
    out += ':';
    out += std::to_string(injection.bit);
    out += ':';
    out += std::to_string(injection.cycle);
    return out;
}

bool
parseInjectSpec(const std::string &text, StateInjection *out,
                std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = "injection spec '" + text + "' " + why +
                     " (targets: " + targetNameList() + ")";
        return false;
    };

    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (parts.size() < 4) {
        std::size_t colon = text.find(':', pos);
        if (colon == std::string::npos) {
            parts.push_back(text.substr(pos));
            break;
        }
        parts.push_back(text.substr(pos, colon - pos));
        pos = colon + 1;
    }
    if (parts.size() != 4)
        return fail("is not <target>:<index>:<bit>:<cycle>");

    StateInjection inj;
    if (!targetByName(parts[0], &inj.target) ||
        inj.target == Target::None)
        return fail("names unknown target '" + parts[0] + "'");
    std::uint64_t bit = 0;
    if (!parseDecimal(parts[1], &inj.index) ||
        !parseDecimal(parts[2], &bit) ||
        !parseDecimal(parts[3], &inj.cycle))
        return fail("has a non-numeric index, bit, or cycle");
    if (bit >= 64)
        return fail("has bit " + parts[2] + " outside [0, 64)");
    inj.bit = std::uint32_t(bit);
    *out = inj;
    return true;
}

std::vector<StateInjection>
makeInjectionPlan(std::size_t cells, std::uint64_t seed,
                  const std::vector<Target> &targets,
                  std::uint64_t maxCycle)
{
    std::vector<StateInjection> plan;
    if (targets.empty())
        return plan;
    plan.reserve(cells);
    Random rng(seed ? seed : 1);
    for (std::size_t i = 0; i < cells; i++) {
        StateInjection inj;
        // Round-robin targets so every structure gets even coverage
        // regardless of how the random draws land.
        inj.target = targets[i % targets.size()];
        inj.index = rng.next();
        inj.bit = std::uint32_t(rng.below(64));
        inj.cycle = 1 + Cycle(rng.below(maxCycle ? maxCycle : 1));
        plan.push_back(inj);
    }
    return plan;
}

const char *
outcomeName(Outcome outcome)
{
    return enumName(kOutcomes, outcome, "crash");
}

bool
outcomeByName(const std::string &name, Outcome *out)
{
    return enumByName(kOutcomes, name, out);
}

std::uint64_t
archDigest(const Checkpoint &state)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix64 = [&](std::uint64_t v) {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 0x100000001b3ULL;
        }
    };
    for (RegVal r : state.regs)
        mix64(r);
    mix64(state.pc);
    mix64(state.halted ? 1 : 0);
    // The emulator exports words in page-table iteration order; sort
    // so equal states digest equally regardless of touch order.
    std::vector<std::pair<Addr, RegVal>> mem = state.memory;
    std::sort(mem.begin(), mem.end());
    for (const auto &[addr, word] : mem) {
        mix64(addr);
        mix64(word);
    }
    return h;
}

std::string
goldenKey(const std::string &manifestHash, const std::string &workload,
          std::uint64_t maxInsts)
{
    return "vgold|" + manifestHash + "|" + workload + "|" +
           std::to_string(maxInsts);
}

std::string
serializeGolden(const GoldenRef &golden)
{
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(golden.digest));
    std::string out = "vgold1 digest=";
    out += digest;
    out += " cycles=" + std::to_string(golden.cycles);
    out += " insts=" + std::to_string(golden.insts);
    out += " finished=";
    out += golden.finished ? '1' : '0';
    return out;
}

bool
parseGolden(const std::string &text, GoldenRef *out)
{
    // Strict parse of our own writer's output, same contract as the
    // checkpoint meta blobs: read what we write, reject everything
    // else (including a corrupted store payload).
    const std::string prefix = "vgold1 digest=";
    if (text.compare(0, prefix.size(), prefix) != 0)
        return false;
    std::size_t pos = prefix.size();
    if (text.size() < pos + 16)
        return false;
    std::string hex = text.substr(pos, 16);
    if (hex.find_first_not_of("0123456789abcdef") != std::string::npos)
        return false;
    GoldenRef g;
    g.digest = std::strtoull(hex.c_str(), nullptr, 16);
    pos += 16;

    auto field = [&](const char *name, std::uint64_t *value) {
        std::string want = std::string(" ") + name + "=";
        if (text.compare(pos, want.size(), want) != 0)
            return false;
        pos += want.size();
        std::size_t start = pos;
        while (pos < text.size() && text[pos] >= '0' &&
               text[pos] <= '9')
            pos++;
        if (pos == start)
            return false;
        *value = std::strtoull(text.substr(start, pos - start).c_str(),
                               nullptr, 10);
        return true;
    };
    std::uint64_t cycles = 0, finished = 0;
    if (!field("cycles", &cycles) || !field("insts", &g.insts) ||
        !field("finished", &finished))
        return false;
    if (pos != text.size() || finished > 1)
        return false;
    g.cycles = cycles;
    g.finished = finished == 1;
    *out = g;
    return true;
}

// ---------------------------------------------------------------------
// Vulnerability table
// ---------------------------------------------------------------------

namespace {

std::string
fixed6(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

VulnRow
finishRow(VulnRow row)
{
    // Non-masked rate with a Student-t 95% CI over the per-cell 0/1
    // indicators — the same helper the sampled campaigns use.
    std::vector<double> indicators;
    indicators.reserve(row.cells);
    for (std::uint64_t i = 0; i < row.masked; i++)
        indicators.push_back(0.0);
    for (std::uint64_t i = 0; i < row.cells - row.masked; i++)
        indicators.push_back(1.0);
    checkpoint::SampleStats stats = checkpoint::sampleStats(indicators);
    row.nonMaskedRate = row.cells ? stats.mean : 0.0;
    row.nonMaskedCi = stats.ciHalf;
    return row;
}

} // namespace

std::vector<VulnRow>
buildVulnTable(const std::vector<OutcomeSample> &samples)
{
    // Canonical target order first so the table is deterministic no
    // matter what order the cells were classified in.
    std::vector<std::string> order;
    for (Target t : allTargets())
        order.push_back(targetName(t));
    for (const OutcomeSample &s : samples)
        if (std::find(order.begin(), order.end(), s.target) ==
            order.end())
            order.push_back(s.target);

    std::vector<VulnRow> rows;
    VulnRow total;
    total.target = "all";
    for (const std::string &target : order) {
        VulnRow row;
        row.target = target;
        for (const OutcomeSample &s : samples) {
            if (s.target != target)
                continue;
            row.cells++;
            Outcome o = Outcome::Crash;
            if (!outcomeByName(s.outcome, &o))
                o = Outcome::Crash;
            switch (o) {
              case Outcome::Masked:
                row.masked++;
                break;
              case Outcome::Sdc:
                row.sdc++;
                break;
              case Outcome::Crash:
                row.crash++;
                break;
              case Outcome::Deadlock:
                row.deadlock++;
                break;
              case Outcome::Timeout:
                row.timeout++;
                break;
            }
        }
        if (!row.cells)
            continue;
        total.cells += row.cells;
        total.masked += row.masked;
        total.sdc += row.sdc;
        total.crash += row.crash;
        total.deadlock += row.deadlock;
        total.timeout += row.timeout;
        rows.push_back(finishRow(row));
    }
    if (total.cells)
        rows.push_back(finishRow(total));
    return rows;
}

std::string
vulnTableJson(const std::vector<VulnRow> &rows)
{
    std::string os = "{\n  \"table\": \"vulnerability\",\n"
                     "  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); i++) {
        const VulnRow &r = rows[i];
        os += i ? ",\n" : "\n";
        os += "    {\"target\": \"" + r.target + "\"";
        os += ", \"cells\": " + std::to_string(r.cells);
        os += ", \"masked\": " + std::to_string(r.masked);
        os += ", \"sdc\": " + std::to_string(r.sdc);
        os += ", \"crash\": " + std::to_string(r.crash);
        os += ", \"deadlock\": " + std::to_string(r.deadlock);
        os += ", \"timeout\": " + std::to_string(r.timeout);
        os += ", \"non_masked_rate\": " + fixed6(r.nonMaskedRate);
        os += ", \"non_masked_ci95\": " + fixed6(r.nonMaskedCi);
        os += "}";
    }
    os += rows.empty() ? "]\n" : "\n  ]\n";
    os += "}\n";
    return os;
}

std::string
vulnTableCsv(const std::vector<VulnRow> &rows)
{
    std::string os = "target,cells,masked,sdc,crash,deadlock,timeout,"
                     "non_masked_rate,non_masked_ci95\n";
    for (const VulnRow &r : rows) {
        os += r.target;
        os += ',' + std::to_string(r.cells);
        os += ',' + std::to_string(r.masked);
        os += ',' + std::to_string(r.sdc);
        os += ',' + std::to_string(r.crash);
        os += ',' + std::to_string(r.deadlock);
        os += ',' + std::to_string(r.timeout);
        os += ',' + fixed6(r.nonMaskedRate);
        os += ',' + fixed6(r.nonMaskedCi);
        os += '\n';
    }
    return os;
}

std::string
vulnTableText(const std::vector<VulnRow> &rows)
{
    char buf[160];
    std::string os;
    std::snprintf(buf, sizeof(buf),
                  "%-10s %6s %7s %5s %6s %9s %8s %11s\n", "target",
                  "cells", "masked", "sdc", "crash", "deadlock",
                  "timeout", "non-masked");
    os += buf;
    for (const VulnRow &r : rows) {
        std::snprintf(buf, sizeof(buf),
                      "%-10s %6llu %7llu %5llu %6llu %9llu %8llu "
                      "%.4f±%.4f\n",
                      r.target.c_str(),
                      static_cast<unsigned long long>(r.cells),
                      static_cast<unsigned long long>(r.masked),
                      static_cast<unsigned long long>(r.sdc),
                      static_cast<unsigned long long>(r.crash),
                      static_cast<unsigned long long>(r.deadlock),
                      static_cast<unsigned long long>(r.timeout),
                      r.nonMaskedRate, r.nonMaskedCi);
        os += buf;
    }
    return os;
}

} // namespace inject
} // namespace simalpha

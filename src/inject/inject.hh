/**
 * @file
 * State-level soft-error injection: targets, plans, and outcome
 * classification.
 *
 * A vulnerability campaign flips exactly one bit of simulated machine
 * state per cell — in the architectural register file, the rename
 * map, the ROB/RUU, the LSQ, an issue-queue slot, the branch
 * predictor, or a cache/TLB tag or data array — at a planned cycle,
 * then compares the injected run against the uninjected golden run
 * and labels the cell masked / SDC / crash / deadlock / timeout.
 *
 * Determinism contract: a StateInjection is four integers
 * (`target:index:bit:cycle`). `index` and `bit` are drawn from the
 * full 64-bit space by the plan generator with zero knowledge of any
 * machine; each core folds them into its own structure geometry
 * (modulo array sizes, XOR within field widths) at apply time. The
 * whole plan is a pure function of (cell count, seed, target list,
 * cycle bound), so process shards re-derive it from the campaign name
 * alone, exactly like sampled campaigns re-derive their SampleSpec.
 */

#ifndef SIMALPHA_INJECT_INJECT_HH
#define SIMALPHA_INJECT_INJECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/emulator.hh"
#include "isa/isa.hh"

namespace simalpha {
namespace inject {

/** The machine structure a flip lands in. */
enum class Target
{
    None,      ///< no injection (the disabled/default state)
    RegFile,   ///< architectural integer/fp register file
    RenameMap, ///< register rename map (arch → phys)
    Rob,       ///< reorder buffer / register update unit entry
    Lsq,       ///< load/store queue entry
    Iq,        ///< issue-queue slot
    Bpred,     ///< branch-predictor tables (counters + histories)
    CacheTag,  ///< cache tag array (L1 I/D or L2)
    CacheData, ///< cached data value (resident dirty word)
    TlbTag,    ///< TLB tag (virtual page number)
};

/** Canonical spec name of a target ("regfile", "rob", ...). */
const char *targetName(Target target);

/** Reverse lookup over the same table. */
bool targetByName(const std::string &name, Target *out);

/** "regfile, renamemap, ..." — for error messages. */
std::string targetNameList();

/** Every injectable target, in canonical (enum) order. */
const std::vector<Target> &allTargets();

/**
 * One planned bit flip. `index` selects the cell within the target
 * structure and `bit` the bit within the cell; both are folded into
 * the concrete geometry by the machine applying the flip. `cycle` is
 * the simulated cycle the flip strikes at (a strike past the end of
 * the run is naturally masked).
 */
struct StateInjection
{
    Target target = Target::None;
    std::uint64_t index = 0;
    std::uint32_t bit = 0;
    Cycle cycle = 0;

    bool enabled() const { return target != Target::None; }

    bool operator==(const StateInjection &o) const
    {
        return target == o.target && index == o.index &&
               bit == o.bit && cycle == o.cycle;
    }
    bool operator!=(const StateInjection &o) const
    {
        return !(*this == o);
    }
};

/** `target:index:bit:cycle`, e.g. "rob:12345:17:1000". */
std::string formatInjectSpec(const StateInjection &injection);

/**
 * Parse formatInjectSpec output. Returns false with *error filled
 * (listing the valid target names) on malformed text.
 */
bool parseInjectSpec(const std::string &text, StateInjection *out,
                     std::string *error);

/**
 * The deterministic per-cell plan: `cells` injections with targets
 * assigned round-robin from @p targets (so every structure gets even
 * coverage), index drawn from the full 64-bit space, bit from [0,64),
 * and cycle from [1, maxCycle]. Pure function of its arguments.
 */
std::vector<StateInjection>
makeInjectionPlan(std::size_t cells, std::uint64_t seed,
                  const std::vector<Target> &targets,
                  std::uint64_t maxCycle);

// ---------------------------------------------------------------------
// Outcome classification
// ---------------------------------------------------------------------

/** What one injected run did, relative to its golden reference. */
enum class Outcome
{
    Masked,   ///< finished with identical architectural state
    Sdc,      ///< finished, but final state/outputs diverged silently
    Crash,    ///< raised a simulation error (invariant, internal, ...)
    Deadlock, ///< the forward-progress watchdog fired
    Timeout,  ///< exceeded its instruction or cycle budget
};

/** Canonical label ("masked", "sdc", "crash", "deadlock", "timeout"). */
const char *outcomeName(Outcome outcome);

/** Reverse lookup over the same table. */
bool outcomeByName(const std::string &name, Outcome *out);

/**
 * Order-independent digest of final architectural state: FNV-1a over
 * the registers, PC, halt flag, and the address-sorted nonzero memory
 * words. The retired-instruction count (`seq`) is deliberately
 * excluded — two runs that converge to identical final state along
 * different-length paths are architecturally indistinguishable.
 */
std::uint64_t archDigest(const Checkpoint &state);

/** The uninjected reference a cell's injected run is judged against. */
struct GoldenRef
{
    std::uint64_t digest = 0; ///< archDigest at halt
    Cycle cycles = 0;         ///< baseline run length in cycles
    std::uint64_t insts = 0;  ///< baseline committed instructions
    bool finished = false;    ///< must be true to classify SDC

    bool operator==(const GoldenRef &o) const
    {
        return digest == o.digest && cycles == o.cycles &&
               insts == o.insts && finished == o.finished;
    }
};

/** Store key for a golden record: machine config + workload + cap. */
std::string goldenKey(const std::string &manifestHash,
                      const std::string &workload,
                      std::uint64_t maxInsts);

/** Single-line store blob: "vgold1 digest=<hex> cycles=... ...". */
std::string serializeGolden(const GoldenRef &golden);

/** Strict parse of serializeGolden output. */
bool parseGolden(const std::string &text, GoldenRef *out);

// ---------------------------------------------------------------------
// Per-structure vulnerability table
// ---------------------------------------------------------------------

/** One classified cell, reduced to what the table needs. */
struct OutcomeSample
{
    std::string target;  ///< targetName() of the struck structure
    std::string outcome; ///< outcomeName() of the classification
};

/** Aggregated outcomes for one target structure. */
struct VulnRow
{
    std::string target;
    std::uint64_t cells = 0;
    std::uint64_t masked = 0;
    std::uint64_t sdc = 0;
    std::uint64_t crash = 0;
    std::uint64_t deadlock = 0;
    std::uint64_t timeout = 0;
    /** Fraction of cells with any non-masked outcome. */
    double nonMaskedRate = 0.0;
    /** 95% Student-t half-interval over the 0/1 indicators. */
    double nonMaskedCi = 0.0;
};

/**
 * Aggregate per-cell outcomes into per-structure rows (canonical
 * target order, then any unrecognized labels, then an "all" total).
 */
std::vector<VulnRow>
buildVulnTable(const std::vector<OutcomeSample> &samples);

/** Render rows as deterministic JSON / CSV / aligned text. */
std::string vulnTableJson(const std::vector<VulnRow> &rows);
std::string vulnTableCsv(const std::vector<VulnRow> &rows);
std::string vulnTableText(const std::vector<VulnRow> &rows);

} // namespace inject
} // namespace simalpha

#endif // SIMALPHA_INJECT_INJECT_HH

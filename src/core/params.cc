#include "params.hh"

#include "common/logging.hh"

namespace simalpha {

AlphaCoreParams
AlphaCoreParams::simAlpha()
{
    AlphaCoreParams p;
    p.name = "sim-alpha";
    // The residual Section 3.6 approximations are what distinguish the
    // validated simulator from the hardware. (The bypass-latency
    // shortcut is implemented but left off here: with this model's
    // per-pipe arbitration it overshoots the small E-D3 effect the
    // paper reports.)
    p.approxBypassLatency = false;
    p.approxDelayedIqRemoval = true;
    p.squashDependentsOnly = true;
    p.approxMaskedStoreTrapAddr = true;
    // sim-alpha gives each cache a private MAF and models a hardware
    // (non-stalling) TLB walk with an uncolored page map.
    p.mem.sharedMaf = false;
    p.mem.itlb.hardwareWalk = true;
    p.mem.dtlb.hardwareWalk = true;
    p.mem.itlb.pageColoring = false;
    p.mem.dtlb.pageColoring = false;
    p.mem.l1d.storesContend = false;
    // DRAM parameters calibrated against the golden machine on M-M,
    // stream, and lmbench (the Section 4.2 procedure; regenerate with
    // bench/table_memcal). The calibration lands on faster device
    // timings than the reference truly has, compensating for the
    // reordering memory controller sim-alpha does not model.
    p.mem.dram.openPage = false;
    p.mem.dram.rasCycles = 2;
    p.mem.dram.casCycles = 2;
    p.mem.dram.prechargeCycles = 1;
    p.mem.dram.controllerCycles = 0;
    return p;
}

AlphaCoreParams
AlphaCoreParams::golden()
{
    AlphaCoreParams p = simAlpha();
    p.name = "ds10l";
    // The reference machine's true DRAM timing (sim-alpha carries the
    // calibrated approximation instead).
    p.mem.dram = DramParams{};
    // Remove the modeling approximations ...
    p.approxBypassLatency = false;
    p.approxDelayedIqRemoval = false;
    p.squashDependentsOnly = false;
    p.approxMaskedStoreTrapAddr = false;
    // ... and add the hardware behaviours sim-alpha does not capture
    // (Sections 4.1 and 5.1): the shared MAF, stores consuming D-cache
    // ports, PAL-code TLB refills that stall, OS page coloring, and the
    // extra mbox trap conditions.
    p.mem.sharedMaf = true;
    p.mem.l1d.storesContend = true;
    p.mem.itlb.hardwareWalk = false;
    p.mem.dtlb.hardwareWalk = false;
    p.mem.itlb.pageColoring = true;
    p.mem.dtlb.pageColoring = true;
    p.mem.dram.reorderingController = true;
    p.mboxExtraTraps = true;
    return p;
}

AlphaCoreParams
AlphaCoreParams::simInitial()
{
    AlphaCoreParams p = simAlpha();
    p.name = "sim-initial";
    p.bugLateBranchRecovery = true;
    p.bugExtraWayPredCycle = true;
    p.bugOctawordSquashPenalty = true;
    p.bugMaskedLoadTrapAddr = true;
    // The two-multiplier FU-mix bug predates the Table 2 snapshot of
    // sim-initial (its E-I already ran near full add throughput); the
    // flag exists and is exercised by tests, but the preset omits it.
    p.bugWrongFuMix = false;
    p.bugNoUnopRemoval = true;
    p.bugAggressiveCluster = true;
    p.bugUnderchargedJump = true;
    p.bugExtraRegreadOnMiss = true;
    p.bugUnderchargedLoadUseRecovery = true;
    p.bugShortMulLatency = true;
    // sim-initial did not update predictors speculatively.
    p.speculativeUpdate = false;
    // The store-wait table IS present (the Table 2 sim-initial column
    // already includes it, per Section 3.4).
    p.storeWaitTable = true;
    return p;
}

AlphaCoreParams
AlphaCoreParams::simStripped()
{
    AlphaCoreParams p = simAlpha();
    p.name = "sim-stripped";
    for (const char *f : {"addr", "eret", "luse", "pref", "spec",
                          "stwt", "vbuf", "maps", "slot", "trap"})
        p.removeFeature(f);
    p.name = "sim-stripped";    // removeFeature decorated the name
    return p;
}

void
AlphaCoreParams::removeFeature(const std::string &feature)
{
    if (feature == "addr") {
        slotAdder = false;
    } else if (feature == "eret") {
        earlyUnopRetire = false;
    } else if (feature == "luse") {
        loadUseSpec = false;
    } else if (feature == "pref") {
        icachePrefetch = false;
        mem.l1i.prefetchLines = 0;
    } else if (feature == "spec") {
        speculativeUpdate = false;
    } else if (feature == "stwt") {
        storeWaitTable = false;
    } else if (feature == "vbuf") {
        victimBuffer = false;
        mem.l1d.victimEntries = 0;
    } else if (feature == "maps") {
        mapStall = false;
    } else if (feature == "slot") {
        slotRestrict = false;
    } else if (feature == "trap") {
        mboxTraps = false;
    } else {
        fatal("unknown feature '%s'", feature.c_str());
    }
    name += "-no-" + feature;
}

AlphaCoreParams
AlphaCoreParams::withoutFeature(const std::string &feature)
{
    AlphaCoreParams p = simAlpha();
    p.removeFeature(feature);
    return p;
}

} // namespace simalpha

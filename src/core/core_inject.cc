/**
 * @file
 * AlphaCore state-injection hooks: arming, the strike-time bit flip
 * for every injection target, and the architectural-state capture the
 * outcome classifier compares against the golden run.
 *
 * Safety contract: a flipped value is never used as an unchecked
 * array index. Indexes fold into structure geometry (modulo sizes)
 * and flips land within each field's legal width, so a wild flip can
 * trip a contained InvariantError but never undefined behaviour —
 * crashes are an *outcome*, not a host-process hazard.
 */

#include <algorithm>
#include <cstdio>

#include "core/core.hh"

namespace simalpha {

namespace {

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

/**
 * Flip one field of a window entry. The bit selects the field class;
 * @p salt (spare entropy from the index draw) selects the bit within
 * wide fields. Shared shape with RuuCore's menu so both cores expose
 * comparable ROB vulnerability surfaces.
 */
std::string
flipWindowEntry(DynInst &d, std::uint32_t bit, std::uint64_t salt)
{
    switch (bit % 6) {
      case 0:
        d.issued = !d.issued;
        return "issued flag";
      case 1:
        d.completed = !d.completed;
        return "completed flag";
      case 2:
        d.taken = !d.taken;
        return "taken flag";
      case 3: {
        int shift = int(4 * (salt % 12));
        d.doneCycle ^= Cycle(1) << shift;
        return "doneCycle bit " + std::to_string(shift);
      }
      case 4: {
        int shift = int(3 * (salt % 16));
        d.effAddr ^= Addr(1) << shift;
        return "effAddr bit " + std::to_string(shift);
      }
      default:
        d.mispredicted = !d.mispredicted;
        return "mispredicted flag";
    }
}

/** Load/store-queue flavored flip: address and memory-status bits. */
std::string
flipMemEntry(DynInst &d, std::uint32_t bit, std::uint64_t salt)
{
    switch (bit % 4) {
      case 0: {
        int shift = int(3 * (salt % 16));
        d.effAddr ^= Addr(1) << shift;
        return "effAddr bit " + std::to_string(shift);
      }
      case 1:
        d.memIssued = !d.memIssued;
        return "memIssued flag";
      case 2:
        d.dcacheHit = !d.dcacheHit;
        return "dcacheHit flag";
      default:
        d.predictedHit = !d.predictedHit;
        return "predictedHit flag";
    }
}

} // namespace

bool
AlphaCore::armInjection(const inject::StateInjection *injection,
                        Cycle cycle_budget)
{
    if (!injection || !injection->enabled()) {
        _inject = inject::StateInjection{};
        _injectBudget = 0;
        _injectPending = false;
        _injectNote.clear();
        return true;
    }
    _inject = *injection;
    _injectBudget = cycle_budget;
    // The strike becomes pending when resetMachine() starts a run.
    _injectPending = false;
    _injectNote.clear();
    return true;
}

bool
AlphaCore::architecturalState(Checkpoint *out) const
{
    if (!_oracle)
        return false;
    *out = _oracle->emulator().checkpoint();
    return true;
}

void
AlphaCore::applyInjection()
{
    _injectPending = false;
    const inject::StateInjection &inj = _inject;
    std::uint64_t salt = inj.index >> 8;
    std::string note = inject::targetName(inj.target);
    note += ' ';

    switch (inj.target) {
      case inject::Target::RegFile: {
        std::uint64_t r = inj.index % (kNumIntRegs + kNumFpRegs);
        if (isZeroRegIndex(RegIndex(r))) {
            // The backing word is never read architecturally but would
            // leak into the state digest; drop the flip instead.
            note += "r" + std::to_string(r) +
                    " (hardwired zero; flip dropped)";
        } else {
            _oracle->emulator().flipRegisterBit(r, inj.bit);
            note += "r" + std::to_string(r) + " bit " +
                    std::to_string(inj.bit % 64);
        }
        break;
      }
      case inject::Target::RenameMap: {
        RegIndex arch = 0;
        PhysReg phys = 0;
        _rename->injectMapFlip(inj.index, inj.bit, &arch, &phys);
        note += "arch " + std::to_string(int(arch)) + " -> p" +
                std::to_string(int(phys));
        break;
      }
      case inject::Target::Rob: {
        if (_rob.empty()) {
            note += "(window empty; flip dropped)";
            break;
        }
        DynInst &d = _rob[std::size_t(inj.index % _rob.size())];
        note += "slot " +
                std::to_string(inj.index % _rob.size()) + " " +
                flipWindowEntry(d, inj.bit, salt);
        break;
      }
      case inject::Target::Lsq: {
        std::vector<std::size_t> mem;
        for (std::size_t i = 0; i < _rob.size(); i++)
            if (_rob[i].inst.isMem())
                mem.push_back(i);
        if (mem.empty()) {
            note += "(no resident memory op; flip dropped)";
            break;
        }
        DynInst &d = _rob[mem[std::size_t(inj.index % mem.size())]];
        note += "entry " + std::to_string(inj.index % mem.size()) +
                " " + flipMemEntry(d, inj.bit, salt);
        break;
      }
      case inject::Target::Iq: {
        const std::vector<DynInst *> &ints = _intIq->entries();
        const std::vector<DynInst *> &fps = _fpIq->entries();
        std::size_t n = ints.size() + fps.size();
        if (n == 0) {
            note += "(queues empty; flip dropped)";
            break;
        }
        std::size_t i = std::size_t(inj.index % n);
        DynInst &d =
            i < ints.size() ? *ints[i] : *fps[i - ints.size()];
        note += "slot " + std::to_string(i) + " " +
                flipWindowEntry(d, inj.bit, salt);
        break;
      }
      case inject::Target::Bpred:
        _branchPred->injectBitFlip(inj.index, inj.bit);
        note += "cell " + std::to_string(inj.index) + " bit " +
                std::to_string(inj.bit);
        break;
      case inject::Target::CacheTag:
        note += _mem->injectCacheTagFlip(inj.index, inj.bit);
        break;
      case inject::Target::CacheData: {
        // Flip a word that is both architecturally live and resident
        // in the D-cache: the flip is visible to every later read,
        // modelling corrupted cached data written back to memory.
        Emulator &emu = _oracle->emulator();
        auto words = emu.memory().exportWords();
        std::sort(words.begin(), words.end());
        if (words.empty()) {
            note += "(no data written yet; flip dropped)";
            break;
        }
        std::size_t n = words.size();
        std::size_t start = std::size_t(inj.index % n);
        bool struck = false;
        for (std::size_t k = 0; k < n; k++) {
            auto [addr, word] = words[(start + k) % n];
            if (_mem->dcacheProbe(addr)) {
                emu.memory().write64(
                    addr, word ^ (RegVal(1) << (inj.bit % 64)));
                note += "word " + hexAddr(addr) + " bit " +
                        std::to_string(inj.bit % 64);
                struck = true;
                break;
            }
        }
        if (!struck)
            note += "(no cached word resident; flip dropped)";
        break;
      }
      case inject::Target::TlbTag:
        note += _mem->injectTlbTagFlip(inj.index, inj.bit);
        break;
      case inject::Target::None:
        break;
    }

    _injectNote = note;
    // Cached wake bounds are lower bounds computed from pre-flip
    // state; the flip can make events earlier, so force a rescan.
    _intWakeAt = _cycle;
    _fpWakeAt = _cycle;
}

} // namespace simalpha

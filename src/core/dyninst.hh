/**
 * @file
 * The in-flight dynamic instruction record of the detailed core model.
 */

#ifndef SIMALPHA_CORE_DYNINST_HH
#define SIMALPHA_CORE_DYNINST_HH

#include "common/types.hh"
#include "isa/isa.hh"
#include "predictors/branch.hh"

namespace simalpha {

/** Physical register index; kNoPhys means "no destination". */
using PhysReg = std::int16_t;
constexpr PhysReg kNoPhys = -1;

struct DynInst
{
    InstSeq seq = 0;            ///< dynamic (fetch-order) number
    InstSeq oracleSeq = 0;      ///< emulator sequence (correct path only)
    Addr pc = 0;
    Instruction inst;
    bool wrongPath = false;

    // Oracle outcome (meaningless on the wrong path).
    Addr nextPc = 0;
    bool taken = false;
    Addr effAddr = kNoAddr;
    bool halt = false;

    // Front-end prediction state.
    bool hasBpSnap = false;
    BranchSnapshot bpSnap;
    bool hasRasSnap = false;
    ReturnAddressStack::Snapshot rasSnap;
    bool predTaken = false;
    Addr predNextFetch = kNoAddr;   ///< what fetch continued with
    bool mispredicted = false;      ///< resolves at execute
    Addr lpTrainPc = kNoAddr;       ///< line-predictor retire training
    Addr lpTrainNext = kNoAddr;

    // Rename state (correct path only; wrong-path insts do not rename).
    PhysReg srcPhys[3] = {kNoPhys, kNoPhys, kNoPhys};
    int numSrcs = 0;
    PhysReg dstPhys = kNoPhys;
    PhysReg oldPhys = kNoPhys;      ///< previous mapping of the arch dest
    RegIndex archDst = kNoReg;

    // Pipeline timing.
    Cycle fetchCycle = 0;
    Cycle readyForMap = 0;
    Cycle mapCycle = kNoCycle;
    Cycle issueCycle = kNoCycle;
    /** Cycle at which same-cluster consumers may issue. */
    Cycle doneCycle = kNoCycle;
    bool issued = false;
    bool completed = false;
    bool retiredEarly = false;      ///< unop removed at map (eret)

    // Execution placement.
    int cluster = -1;               ///< resolved at issue
    int slottedUpper = 0;           ///< subcluster assignment from slot

    // Memory behaviour.
    bool dcacheHit = false;
    bool memIssued = false;         ///< address resolved / access begun
    bool predictedHit = false;      ///< load-use predictor's call
    Cycle replayBlockedUntil = 0;   ///< earliest re-issue after a replay

    bool isBranchLike() const { return inst.isControl(); }
};

} // namespace simalpha

#endif // SIMALPHA_CORE_DYNINST_HH

/**
 * @file
 * OracleStream: a rewindable window over the functional emulator's
 * correct-path instruction stream.
 *
 * The timing model steps the emulator at fetch time. Replay traps refetch
 * correct-path instructions that already executed architecturally, so the
 * stream buffers records until they retire and supports rewinding the
 * read cursor to any still-buffered sequence number.
 */

#ifndef SIMALPHA_CORE_ORACLE_HH
#define SIMALPHA_CORE_ORACLE_HH

#include <deque>

#include "isa/emulator.hh"

namespace simalpha {

class OracleStream
{
  public:
    explicit OracleStream(const Program &program);

    /** Start the stream from restored architectural state instead of
     *  reset: the emulator resumes at @p start and delivered records
     *  carry sequence numbers continuing from start.seq (which is
     *  also the rewind floor — nothing older is reachable). */
    OracleStream(const Program &program, const Checkpoint &start);

    /** Is another correct-path instruction available? */
    bool exhausted() const;

    /** PC of the next instruction the cursor will deliver. */
    Addr nextPc() const;

    /** Deliver the next correct-path record, stepping the emulator if
     *  the cursor is at the frontier. */
    const ExecutedInst &next();

    /** Rewind the cursor so `seq` is the next record delivered. */
    void rewindTo(InstSeq seq);

    /** Drop buffered records with seq < `seq` (they retired). */
    void retireBefore(InstSeq seq);

    std::size_t bufferedRecords() const { return _buffer.size(); }

    const Emulator &emulator() const { return _emu; }
    /** Mutable access for state injection (register/memory flips). */
    Emulator &emulator() { return _emu; }

  private:
    Emulator _emu;
    std::deque<ExecutedInst> _buffer;   ///< records not yet retired
    std::size_t _cursor = 0;            ///< next index into _buffer
    InstSeq _baseSeq = 0;               ///< seq of _buffer.front()
};

} // namespace simalpha

#endif // SIMALPHA_CORE_ORACLE_HH

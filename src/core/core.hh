/**
 * @file
 * AlphaCore: the detailed Alpha 21264 timing model — the paper's primary
 * artifact. One class models the golden reference, sim-alpha,
 * sim-initial, sim-stripped, and every Table-4 ablation, selected purely
 * through AlphaCoreParams switches.
 *
 * The model is execute-at-fetch: a functional emulator (the oracle)
 * steps along the correct path as instructions are fetched; mispredicted
 * control flow sends fetch down the wrong path, where instructions are
 * decoded from the static image and occupy front-end and execution
 * resources until recovery squashes them. Replay traps rewind the oracle
 * and refetch architecturally executed instructions.
 */

#ifndef SIMALPHA_CORE_CORE_HH
#define SIMALPHA_CORE_CORE_HH

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/error.hh"
#include "core/fu_pool.hh"
#include "inject/inject.hh"
#include "core/issue_queue.hh"
#include "core/oracle.hh"
#include "core/params.hh"
#include "core/rename.hh"
#include "isa/machine.hh"
#include "memory/hierarchy.hh"
#include "predictors/branch.hh"
#include "predictors/frontend.hh"

namespace simalpha {

class AlphaCore : public Machine
{
  public:
    explicit AlphaCore(const AlphaCoreParams &params);

    RunResult run(const Program &program,
                  std::uint64_t max_insts = 0) override;

    RunResult runWindow(const Program &program, const Checkpoint &start,
                        std::uint64_t warmup_insts,
                        std::uint64_t measure_insts,
                        std::map<std::string, std::uint64_t>
                            *measured_counters = nullptr) override;

    stats::Group &statGroup() override { return _stats; }
    std::string name() const override { return _p.name; }

    bool armInjection(const inject::StateInjection *injection,
                      Cycle cycle_budget) override;
    std::string injectionNote() const override { return _injectNote; }
    bool architecturalState(Checkpoint *out) const override;

    const AlphaCoreParams &params() const { return _p; }

    /** The memory system of the last/current run (for inspection). */
    MemorySystem *memorySystem() { return _mem.get(); }

  private:
    // ---- Per-run machine state --------------------------------------
    struct Recovery
    {
        enum class Kind { BranchMispredict, Trap, LineMisfire };
        Kind kind;
        InstSeq seq;            ///< dynamic seq of the causing inst
        Cycle atCycle;
        Addr resumePc;
        bool indirect = false;  ///< jump-style flush (longer restart)
        bool markStoreWait = false;
        Addr storeWaitPc = 0;
    };

    /** An outstanding load-use speculation awaiting verification. */
    struct LoadUseCheck
    {
        InstSeq loadSeq;
        Cycle verifyAt;
        Cycle missDone;
        PhysReg loadDst;
        Cycle windowStart;
    };

    void resetMachine(const Program &program);
    /** The run loop shared by run() and runWindow(): tick until halt
     *  or _maxInsts commits, with the forward-progress watchdog. */
    void runLoop(const Program &program);
    void cycleTick();
    /** Apply the armed bit flip at its strike cycle (core_inject.cc). */
    void applyInjection();
    /** Machine-state snapshot for the forward-progress watchdog. */
    DeadlockInfo deadlockSnapshot(const Program &program) const;

    // Pipeline stages (called youngest-stage-last each cycle).
    void doRetire();
    void doVerify();        ///< load-use checks + pending recovery
    void doIssue();
    void doMap();
    void doFetch();

    // Fetch helpers.
    void fetchCorrectPath();
    void fetchWrongPath();
    Cycle icacheTiming(Addr pc, Cycle now);
    /** Direction/target prediction for a control instruction at fetch.
     *  @return the front end's next fetch PC if the packet cuts here */
    Addr predictControl(DynInst &di, Addr lp_next);
    void enqueuePacket(std::vector<DynInst> &packet, Cycle fetch_done);

    // Issue helpers.
    void performIssue(DynInst &inst, int cluster);
    bool storeWaitClear(const DynInst &ld);
    bool operandsReady(const DynInst &inst, int cluster) const;
    Cycle operandReadyCycle(const DynInst &inst, int cluster) const;
    void issueLoad(DynInst &inst);
    void issueStore(DynInst &inst);
    void scheduleRecovery(const Recovery &rec);

    // ---- Event-driven wakeup (perf only; cycle-exact semantics) -----
    /** Earliest cycle @p inst could possibly pass the issue gates
     *  (kNoCycle while an operand has no scheduled ready time). */
    Cycle entryIssueLB(const DynInst &inst, bool fp_queue) const;
    /** Scan @p queue for the earliest possible issue; _cycle + 1 if
     *  an entry is blocked only by per-cycle arbitration. */
    Cycle recomputeWakeAt(const IssueQueue &queue, bool fp_queue) const;
    /** A register acquired a scheduled ready time: cap both queues'
     *  wake-up cycles (over-early is safe, over-late never happens). */
    void
    noteSetReady(Cycle ready)
    {
        _intWakeAt = std::min(_intWakeAt, ready);
        _fpWakeAt = std::min(_fpWakeAt, ready);
    }
    /** Earliest cycle the map stage could act (kNoCycle if blocked on
     *  a condition that another tracked event must clear first). */
    Cycle mapEventCycle() const;
    /** Earliest cycle the fetch stage could act (same convention). */
    Cycle fetchEventCycle() const;
    Cycle nextEventCycle() const;
    /** Target cycle for an idle fast-forward jump; 0 if the coming
     *  cycle may be active (or the jump would not skip anything). */
    Cycle fastForwardTarget() const;

    // Address-indexed views of issued correct-path memory ops in the
    // ROB (replacing the per-issue full ROB scans).
    struct IssuedMemRef
    {
        InstSeq seq;
        Addr addr;
        int bytes;
        Addr pc;
    };
    static void addIssuedRef(std::vector<IssuedMemRef> &index,
                             const DynInst &inst);
    static void removeIssuedRef(std::vector<IssuedMemRef> &index,
                                InstSeq seq);
    bool storeForwardLookup(const DynInst &ld) const;
    const IssuedMemRef *youngestConflictingLoad(const DynInst &ld) const;
    const IssuedMemRef *oldestConflictingLoad(const DynInst &st) const;

    // Squash machinery.
    void squashFrom(InstSeq seq, bool refetch_inclusive);
    void unissueForReplay(const LoadUseCheck &check);

    InstSeq nextSeq() { return _seqCounter++; }

    // ---- Configuration ----------------------------------------------
    AlphaCoreParams _p;
    stats::Group _stats;

    /** Hot-path counters resolved once at construction; the
     *  string-keyed registry in _stats stays for dumps and snapshots
     *  only, never on a per-event path. */
    struct BoundCounters
    {
        explicit BoundCounters(stats::Group &g);
        stats::Counter &cycles;
        stats::Counter &instsCommitted;
        stats::Counter &branchesRetired;
        stats::Counter &mispredictsRetired;
        stats::Counter &jumpMispredicts;
        stats::Counter &branchMispredicts;
        stats::Counter &replayTraps;
        stats::Counter &instsSquashed;
        stats::Counter &instsIssued;
        stats::Counter &storeForwards;
        stats::Counter &loadOrderTraps;
        stats::Counter &mboxExtraTraps;
        stats::Counter &storeReplayTraps;
        stats::Counter &loadUseReplays;
        stats::Counter &loadUseViolations;
        stats::Counter &mapStalls;
        stats::Counter &unopsRemoved;
        stats::Counter &instsMapped;
        stats::Counter &wayMispredicts;
        stats::Counter &icacheMissStalls;
        stats::Counter &fetchPackets;
        stats::Counter &directionMispredicts;
        stats::Counter &targetMispredicts;
        stats::Counter &slotMisses;
        stats::Counter &lineMisfires;
        stats::Counter &wrongPathPackets;
    };
    BoundCounters _c;

    // ---- Run state ---------------------------------------------------
    const Program *_prog = nullptr;
    std::unique_ptr<OracleStream> _oracle;
    std::unique_ptr<MemorySystem> _mem;
    std::unique_ptr<RenameUnit> _rename;
    std::unique_ptr<Scoreboard> _scoreboard;
    std::unique_ptr<FuPool> _fuPool;
    std::unique_ptr<TournamentPredictor> _branchPred;
    std::unique_ptr<LinePredictor> _linePred;
    std::unique_ptr<WayPredictor> _wayPred;
    std::unique_ptr<ReturnAddressStack> _ras;
    std::unique_ptr<LoadUsePredictor> _loadUsePred;
    std::unique_ptr<StoreWaitPredictor> _storeWait;
    std::unique_ptr<IssueQueue> _intIq;
    std::unique_ptr<IssueQueue> _fpIq;

    Cycle _cycle = 0;
    InstSeq _seqCounter = 0;
    std::uint64_t _committed = 0;
    std::uint64_t _maxInsts = 0;
    bool _finished = false;

    Addr _fetchPc = 0;
    Cycle _fetchResumeAt = 0;
    bool _wrongPathMode = false;
    bool _haltFetched = false;
    Cycle _mapBlockedUntil = 0;
    int _lqUsed = 0;
    int _sqUsed = 0;
    Cycle _lastCommitCycle = 0;

    std::deque<DynInst> _fetchQueue;
    std::deque<DynInst> _rob;
    std::optional<Recovery> _recovery;
    std::vector<LoadUseCheck> _loadUseChecks;

    // ---- Event-driven wakeup state (bookkeeping only — every value
    // is a lower bound on when something can happen, so the worst
    // case of a stale value is a wasted scan, never a changed
    // simulation outcome) ---------------------------------------------
    Cycle _intWakeAt = 0;        ///< earliest possible int-queue issue
    Cycle _fpWakeAt = 0;         ///< earliest possible fp-queue issue
    Cycle _nextLoadUseVerify = kNoCycle; ///< min pending verifyAt
    std::vector<IssuedMemRef> _issuedStores; ///< seq-sorted, issued
    std::vector<IssuedMemRef> _issuedLoads;  ///< seq-sorted, issued
    /** SIMALPHA_SLOWPATH=1: run the original scans, maintain the fast
     *  bookkeeping alongside, and assert they agree. */
    bool _slowpath = false;
    Cycle _ffCheckUntil = 0;     ///< slowpath: predicted-idle window end
    bool _activity = false;      ///< slowpath: stage acted this cycle

    /** Outstanding load misses (for the golden extra-trap conditions). */
    struct OutstandingMiss
    {
        Addr block;
        std::size_t set;
        Cycle done;
    };
    std::vector<OutstandingMiss> _outstandingMisses;

    // ---- State injection (inert unless armed) ------------------------
    inject::StateInjection _inject;  ///< armed spec (None = disarmed)
    Cycle _injectBudget = 0;         ///< cycle cap on injected runs
    /** True while armed and the flip has not struck yet: the single
     *  flag the per-cycle poll reads, so disarmed runs pay one
     *  predicted-not-taken branch per tick. */
    bool _injectPending = false;
    std::string _injectNote;         ///< what the last strike hit
};

} // namespace simalpha

#endif // SIMALPHA_CORE_CORE_HH

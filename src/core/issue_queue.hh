/**
 * @file
 * The collapsible issue queues of the 21264: instructions issue strictly
 * oldest-first (by inum), and issued entries vacate the queue either
 * immediately or — under the sim-alpha approximation — two cycles after
 * issue, which shrinks the queue's effective capacity under pressure but
 * makes load-use replay cheaper.
 */

#ifndef SIMALPHA_CORE_ISSUE_QUEUE_HH
#define SIMALPHA_CORE_ISSUE_QUEUE_HH

#include <algorithm>
#include <vector>

#include "core/dyninst.hh"

namespace simalpha {

class IssueQueue
{
  public:
    /**
     * @param capacity queue entries
     * @param removal_delay cycles after issue before the entry frees
     */
    IssueQueue(int capacity, int removal_delay)
        : _capacity(capacity), _removalDelay(removal_delay)
    {
    }

    bool
    full() const
    {
        return int(_entries.size()) >= _capacity;
    }

    int size() const { return int(_entries.size()); }
    int capacity() const { return _capacity; }

    /** Insert at map time (entries arrive in program order). */
    void
    insert(DynInst *inst)
    {
        _entries.push_back(inst);
    }

    /** Re-insert a replayed instruction, preserving age order. */
    void
    reinsert(DynInst *inst)
    {
        auto it = std::lower_bound(
            _entries.begin(), _entries.end(), inst,
            [](const DynInst *a, const DynInst *b) {
                return a->seq < b->seq;
            });
        if (it != _entries.end() && *it == inst)
            return;     // still resident (within the removal window)
        _entries.insert(it, inst);
    }

    /**
     * Free entries whose post-issue removal delay has elapsed. Gated
     * on the earliest scheduled removal (noteIssued), so cycles with
     * nothing due skip the scan; the erase condition itself is
     * unchanged, so removals happen at exactly the same cycle as an
     * ungated every-cycle compact.
     * @return true if any entry was removed
     */
    bool
    compact(Cycle now)
    {
        if (_nextRemoval > now)
            return false;
        std::size_t removed = std::erase_if(
            _entries, [&](const DynInst *inst) {
                return inst->issued &&
                       now >= inst->issueCycle + Cycle(_removalDelay);
            });
        _nextRemoval = kNoCycle;
        for (const DynInst *inst : _entries)
            if (inst->issued)
                _nextRemoval =
                    std::min(_nextRemoval,
                             inst->issueCycle + Cycle(_removalDelay));
        return removed != 0;
    }

    /** An entry of this queue issued at @p at: schedule its removal.
     *  (Entries removed by other means leave _nextRemoval pointing
     *  too early, which only costs a no-op compact — never a late
     *  removal.) */
    void
    noteIssued(Cycle at)
    {
        _nextRemoval = std::min(_nextRemoval, at + Cycle(_removalDelay));
    }

    /** Earliest cycle a compact could remove an entry (kNoCycle if
     *  none scheduled). */
    Cycle nextRemoval() const { return _nextRemoval; }

    /** Remove squashed instructions with seq >= `from`. */
    void
    squashFrom(InstSeq from)
    {
        std::erase_if(_entries, [from](const DynInst *inst) {
            return inst->seq >= from;
        });
    }

    /** Remove one specific instruction (eager removal at issue). */
    void
    remove(const DynInst *inst)
    {
        std::erase_if(_entries,
                      [inst](const DynInst *e) { return e == inst; });
    }

    /** Age-ordered scan access. */
    const std::vector<DynInst *> &entries() const { return _entries; }

    void
    clear()
    {
        _entries.clear();
        _nextRemoval = kNoCycle;
    }

  private:
    int _capacity;
    int _removalDelay;
    Cycle _nextRemoval = kNoCycle;
    std::vector<DynInst *> _entries;
};

} // namespace simalpha

#endif // SIMALPHA_CORE_ISSUE_QUEUE_HH

#include "oracle.hh"

#include "common/logging.hh"

namespace simalpha {

OracleStream::OracleStream(const Program &program)
    : _emu(program)
{
}

OracleStream::OracleStream(const Program &program,
                           const Checkpoint &start)
    : _emu(program)
{
    _emu.restore(start);
    // The emulator's next record is instruction start.seq, so the
    // empty buffer's base must match for rewindTo()'s arithmetic.
    _baseSeq = start.seq;
}

bool
OracleStream::exhausted() const
{
    return _cursor >= _buffer.size() && _emu.halted();
}

Addr
OracleStream::nextPc() const
{
    if (_cursor < _buffer.size())
        return _buffer[_cursor].pc;
    return _emu.pc();
}

const ExecutedInst &
OracleStream::next()
{
    if (_cursor >= _buffer.size()) {
        sim_assert(!_emu.halted());
        _buffer.push_back(_emu.step());
    }
    return _buffer[_cursor++];
}

void
OracleStream::rewindTo(InstSeq seq)
{
    sim_assert(seq >= _baseSeq);
    std::size_t idx = std::size_t(seq - _baseSeq);
    sim_assert(idx <= _buffer.size());
    _cursor = idx;
}

void
OracleStream::retireBefore(InstSeq seq)
{
    while (!_buffer.empty() && _baseSeq < seq) {
        sim_assert(_cursor > 0);
        _buffer.pop_front();
        _cursor--;
        _baseSeq++;
    }
}

} // namespace simalpha

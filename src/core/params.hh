/**
 * @file
 * Configuration of the detailed 21264 core model.
 *
 * Every feature studied in Table 4, every sim-initial bug catalogued in
 * Section 3.4, every residual sim-alpha approximation from Section 3.6,
 * and every hardware-only behaviour the golden reference adds, is an
 * independent switch here. The named factory presets build the exact
 * machines the paper compares.
 */

#ifndef SIMALPHA_CORE_PARAMS_HH
#define SIMALPHA_CORE_PARAMS_HH

#include <string>

#include "common/types.hh"
#include "memory/hierarchy.hh"

namespace simalpha {

struct AlphaCoreParams
{
    std::string name = "sim-alpha";

    // ---- Machine geometry -------------------------------------------
    int fetchWidth = 4;             ///< one octaword per cycle
    int fetchQueueEntries = 32;
    int mapWidth = 4;
    int retireWidth = 11;           ///< bursty retire (Section 2.1)
    int intIqEntries = 20;
    int fpIqEntries = 15;
    int robEntries = 80;
    /** Total physical registers per class: 32 architectural + 40 rename
     *  (the paper's "40 integer and 40 floating point" rename pool). */
    int physIntRegs = 72;
    int physFpRegs = 72;
    int lqEntries = 32;
    int sqEntries = 32;
    int fetchToMapCycles = 2;       ///< fetch -> slot -> map
    int mapToIssueCycles = 1;
    /** Register-file access time (Figure 2 varies this: 1 or 2). */
    int regreadCycles = 1;
    /** Full bypass network; when false, dependent wakeups pay the full
     *  register-file read latency (Figure 2's partial-bypass case). */
    bool fullBypass = true;
    /** Extra front-end restart cycles after an indirect-jump flush; the
     *  paper measured a 10-cycle total penalty per mispredicted jmp. */
    int indirectRestartCycles = 4;
    int branchRestartCycles = 1;
    int trapRestartCycles = 10;     ///< mbox replay-trap flush
    /** Extra full-rollback cycles charged by the sim-initial
     *  late-branch-recovery bug. */
    int lateRecoveryExtraCycles = 8;
    int loadUseRecoveryCycles = 2;  ///< squash window depth (M-D fix)
    int mapStallCycles = 3;         ///< stall when < minFreeRegs remain
    int minFreeRegs = 8;

    // ---- Performance-enhancing features (Table 4) -------------------
    bool slotAdder = true;          ///< addr
    bool earlyUnopRetire = true;    ///< eret
    bool loadUseSpec = true;        ///< luse
    bool icachePrefetch = true;     ///< pref
    bool speculativeUpdate = true;  ///< spec (line + branch histories)
    bool storeWaitTable = true;     ///< stwt
    bool victimBuffer = true;       ///< vbuf

    // ---- Performance-constraining features --------------------------
    bool mapStall = true;           ///< maps
    bool slotRestrict = true;       ///< slot
    bool mboxTraps = true;          ///< trap (replay traps)

    // ---- sim-initial bug injections (Section 3.4) -------------------
    /** Line mispredictions recover only after execute (no slot-stage
     *  override), the dominant C-C / C-R error. */
    bool bugLateBranchRecovery = false;
    /** Charge an extra cycle on every way-predictor access (eon). */
    bool bugExtraWayPredCycle = false;
    /** Charge a one-cycle bubble for clearing post-branch slots of a
     *  fetched octaword. */
    bool bugOctawordSquashPenalty = false;
    /** Mask the low three address bits in the load-order trap compare,
     *  producing spurious replay traps on same-word loads (M-D). */
    bool bugMaskedLoadTrapAddr = false;
    /** Two adders + two multipliers instead of 3 adders + 1 adder/mul. */
    bool bugWrongFuMix = false;
    /** Unops proceed to issue and consume real slots. */
    bool bugNoUnopRemoval = false;
    /** Idealized cluster scheduling (better than the real slot rules). */
    bool bugAggressiveCluster = false;
    /** Indirect jumps charged like ordinary branch mispredictions. */
    bool bugUnderchargedJump = false;
    /** Extra register-read cycle on loads that miss (M-L2's +1). */
    bool bugExtraRegreadOnMiss = false;
    /** One cycle too few of load-use mis-speculation recovery. */
    bool bugUnderchargedLoadUseRecovery = false;
    /** Integer multiply modeled as a one-cycle generic ALU op (the
     *  E-DM1 85.7% overestimate). */
    bool bugShortMulLatency = false;

    // ---- Residual sim-alpha approximations (Section 3.6) ------------
    /** Bypassed results ignore the cross-cluster skew (E-D3's +11.5%). */
    bool approxBypassLatency = false;
    /** Issued instructions leave the queue two cycles after issue. */
    bool approxDelayedIqRemoval = false;
    /** Load-use mis-speculation squashes only the dependents instead of
     *  everything issued inside the speculation window (hardware). */
    bool squashDependentsOnly = false;
    /** Store replay traps compare at word granularity (conservative). */
    bool approxMaskedStoreTrapAddr = false;

    // ---- Hardware-only behaviours (golden reference machine) --------
    /** mbox traps also fire on MAF conflicts / same-set concurrent
     *  misses (the paper's explanation for art's replay-trap storm). */
    bool mboxExtraTraps = false;

    // ---- Memory system -----------------------------------------------
    MemorySystemParams mem = MemorySystemParams::ds10l();

    // ---- Fault containment -------------------------------------------
    /**
     * Forward-progress watchdog: if no instruction commits for this many
     * cycles, the run throws DeadlockError with a machine-state snapshot
     * instead of spinning forever (0 = disabled). A diagnostic
     * threshold, not a modeled structure: it is excluded from the
     * parameter manifest so tuning it never changes a manifest hash.
     */
    Cycle watchdogCycles = 100000;

    // ------------------------------------------------------------------
    /** The validated simulator of the paper. */
    static AlphaCoreParams simAlpha();

    /** The non-validated first cut with all Section 3.4 bugs. */
    static AlphaCoreParams simInitial();

    /** The golden reference standing in for the DS-10L hardware. */
    static AlphaCoreParams golden();

    /** sim-alpha minus all ten low-level features (Section 5.1). */
    static AlphaCoreParams simStripped();

    /**
     * sim-alpha minus one Table-4 feature.
     * @param feature one of: addr eret luse pref spec stwt vbuf maps
     *        slot trap
     */
    static AlphaCoreParams withoutFeature(const std::string &feature);

    /** Apply a single feature removal to this parameter set. */
    void removeFeature(const std::string &feature);
};

} // namespace simalpha

#endif // SIMALPHA_CORE_PARAMS_HH

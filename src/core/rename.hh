/**
 * @file
 * Register renaming: the map-stage rename table and physical register
 * free lists for the 80 physical registers (40 integer + 40 fp) of the
 * 21264, with squash-time rollback.
 */

#ifndef SIMALPHA_CORE_RENAME_HH
#define SIMALPHA_CORE_RENAME_HH

#include <vector>

#include "core/dyninst.hh"

namespace simalpha {

class RenameUnit
{
  public:
    RenameUnit(int phys_int, int phys_fp);

    /** Current mapping of an architectural register. */
    PhysReg lookup(RegIndex arch) const;

    /**
     * Allocate a new physical register for `arch` and update the map.
     * @param[out] old_phys the previous mapping (freed at retire)
     * @return the new physical register, or kNoPhys if the free list for
     *         that class is empty
     */
    PhysReg allocate(RegIndex arch, PhysReg &old_phys);

    /** Undo a rename (squash): restore arch -> old mapping, free phys. */
    void undo(RegIndex arch, PhysReg phys, PhysReg old_phys);

    /** Retire-time release of the displaced mapping. */
    void release(PhysReg old_phys);

    /** Restore freshly-constructed state (campaign core reuse). */
    void reset();

    int freeIntRegs() const { return int(_freeInt.size()); }
    int freeFpRegs() const { return int(_freeFp.size()); }

    /** Total physical registers of each class. */
    int totalInt() const { return _totalInt; }
    int totalFp() const { return _totalFp; }

    /**
     * Soft-error injection: corrupt one rename-map entry. The flipped
     * mapping is folded back into the entry's register class, so every
     * later lookup stays inside the physical register file (a wild
     * mapping models misrouted operand reads, not out-of-bounds
     * state). Returns the architectural index struck and the new
     * mapping via the out-parameters.
     */
    void injectMapFlip(std::uint64_t index, std::uint32_t bit,
                       RegIndex *arch, PhysReg *newPhys);

  private:
    bool isFpPhys(PhysReg p) const { return p >= _totalInt; }

    int _totalInt;
    int _totalFp;
    std::vector<PhysReg> _map;      ///< arch (0..63) -> phys
    std::vector<PhysReg> _freeInt;
    std::vector<PhysReg> _freeFp;
};

/**
 * Scoreboard of physical register readiness, tracked per cluster so
 * cross-cluster consumers observe the one-cycle bypass skew.
 */
class Scoreboard
{
  public:
    explicit Scoreboard(int phys_regs);

    /** Earliest issue cycle of a consumer of `phys` in `cluster`. */
    Cycle readyAt(PhysReg phys, int cluster) const;

    /**
     * Record a result: same-cluster consumers may issue at `ready`,
     * cross-cluster consumers one cycle later. A producing cluster of -1
     * broadcasts with no skew.
     */
    void setReady(PhysReg phys, Cycle ready, int producing_cluster);

    /** Mark a register not-ready (rename-time allocation / replay). */
    void setPending(PhysReg phys);

    /** Mark ready-now (initial state / squash restore). */
    void setReadyNow(PhysReg phys);

    bool pending(PhysReg phys) const;

    /** Restore freshly-constructed state (campaign core reuse). */
    void
    reset()
    {
        _state.assign(_state.size(), State{});
    }

  private:
    struct State
    {
        Cycle ready[2] = {0, 0};
        bool isPending = false;
    };

    std::vector<State> _state;
};

} // namespace simalpha

#endif // SIMALPHA_CORE_RENAME_HH

#include "fu_pool.hh"

#include "common/logging.hh"

namespace simalpha {

FuPool::FuPool(bool wrong_mix)
    : _wrongMix(wrong_mix)
{
    // Integer pipes: cluster 0 {upper, lower}, cluster 1 {upper, lower}.
    // Correct mix: all four execute ALU ops; only cluster 1's upper pipe
    // multiplies; lower pipes perform memory address generation.
    // Buggy mix: the two upper pipes are multipliers that cannot execute
    // plain ALU ops, halving add throughput (the E-I symptom).
    auto int_pipe = [&](int cluster, bool upper) {
        Pipe p{};
        p.cluster = cluster;
        p.upper = upper;
        if (wrong_mix) {
            p.canAlu = !upper;
            p.canMul = upper;
        } else {
            p.canAlu = true;
            p.canMul = upper && cluster == 1;
        }
        p.canMem = !upper;
        return p;
    };
    _pipes.push_back(int_pipe(0, true));
    _pipes.push_back(int_pipe(0, false));
    _pipes.push_back(int_pipe(1, true));
    _pipes.push_back(int_pipe(1, false));

    // Floating-point pipes: one add pipe (also divide/sqrt, unpipelined
    // for those) and one multiply pipe.
    Pipe fadd{};
    fadd.cluster = -1;
    fadd.canFpAdd = true;
    _pipes.push_back(fadd);
    Pipe fmul{};
    fmul.cluster = -1;
    fmul.canFpMul = true;
    _pipes.push_back(fmul);
}

bool
FuPool::unpipelined(OpClass cls)
{
    switch (cls) {
      case OpClass::FpDivS: case OpClass::FpDivD:
      case OpClass::FpSqrtS: case OpClass::FpSqrtD:
        return true;
      default:
        return false;
    }
}

int
FuPool::occupancy(OpClass cls)
{
    switch (cls) {
      case OpClass::FpDivS: return 12;
      case OpClass::FpDivD: return 15;
      case OpClass::FpSqrtS: return 18;
      case OpClass::FpSqrtD: return 33;
      default: return 1;
    }
}

bool
FuPool::pipeFits(const Pipe &p, OpClass cls, int cluster,
                 bool slotted_upper, bool slot_restrict) const
{
    switch (cls) {
      case OpClass::FpAdd: case OpClass::FpDivS: case OpClass::FpDivD:
      case OpClass::FpSqrtS: case OpClass::FpSqrtD:
        return p.canFpAdd;
      case OpClass::FpMul:
        return p.canFpMul;
      case OpClass::FpLoad: case OpClass::FpStore:
      case OpClass::IntLoad: case OpClass::IntStore:
        // Memory ops use the lower pipes of the requested cluster.
        return p.canMem && p.cluster == cluster;
      case OpClass::IntMul:
        return p.canMul && p.cluster == cluster;
      case OpClass::CondBranch: case OpClass::UncondBranch:
      case OpClass::Call: case OpClass::IndirectJump:
      case OpClass::Return:
        // Branches resolve in the upper pipes.
        if (!p.canAlu && !p.canMul)
            return false;
        return p.upper && p.cluster == cluster;
      default:
        // Plain ALU (and nop/halt placeholders).
        if (!p.canAlu)
            return false;
        if (p.cluster != cluster)
            return false;
        // The buggy mix treats units as generic resources, so the
        // subcluster assignment does not constrain them.
        if (slot_restrict && !_wrongMix && p.upper != slotted_upper)
            return false;
        return true;
    }
}

int
FuPool::findPipe(OpClass cls, int cluster, bool slotted_upper,
                 bool slot_restrict, Cycle now) const
{
    for (std::size_t i = 0; i < _pipes.size(); i++) {
        const Pipe &p = _pipes[i];
        if (!pipeFits(p, cls, cluster, slotted_upper, slot_restrict))
            continue;
        if (p.lastIssue == now)
            continue;
        if (p.busyUntil > now)
            continue;
        return int(i);
    }
    return -1;
}

bool
FuPool::available(OpClass cls, int cluster, bool slotted_upper,
                  bool slot_restrict, Cycle now) const
{
    return findPipe(cls, cluster, slotted_upper, slot_restrict, now) >= 0;
}

bool
FuPool::pipeCanIssue(int pipe, OpClass cls, bool slotted_upper,
                     bool slot_restrict, Cycle now) const
{
    const Pipe &p = _pipes[std::size_t(pipe)];
    if (!pipeFits(p, cls, p.cluster, slotted_upper, slot_restrict))
        return false;
    return p.lastIssue != now && p.busyUntil <= now;
}

void
FuPool::reservePipe(int pipe, OpClass cls, Cycle now)
{
    Pipe &p = _pipes[std::size_t(pipe)];
    p.lastIssue = now;
    if (unpipelined(cls))
        p.busyUntil = now + Cycle(occupancy(cls));
}

bool
FuPool::acquire(OpClass cls, int cluster, bool slotted_upper,
                bool slot_restrict, Cycle now)
{
    int idx = findPipe(cls, cluster, slotted_upper, slot_restrict, now);
    if (idx < 0)
        return false;
    Pipe &p = _pipes[std::size_t(idx)];
    p.lastIssue = now;
    if (unpipelined(cls))
        p.busyUntil = now + Cycle(occupancy(cls));
    return true;
}

} // namespace simalpha

#include "core.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/trace.hh"

namespace simalpha {

namespace {

/** Byte-range overlap of two memory accesses. */
bool
overlapExact(Addr a, int a_bytes, Addr b, int b_bytes)
{
    return a < b + Addr(b_bytes) && b < a + Addr(a_bytes);
}

/** Word-granular (low-3-bits-masked) conflict compare. */
bool
overlapWord(Addr a, Addr b)
{
    return (a >> 3) == (b >> 3);
}

Addr
octawordEnd(Addr pc)
{
    return (pc & ~Addr(15)) + 16;
}

/**
 * The slot-stage subcluster assignment: a static table keyed by
 * instruction class and packet position, mirroring the predetermined
 * slotting rules of the 21264.
 * @return 1 for upper, 0 for lower
 */
int
slotAssignment(const Instruction &inst, int packet_slot)
{
    switch (inst.opClass()) {
      case OpClass::IntLoad: case OpClass::IntStore:
      case OpClass::FpLoad: case OpClass::FpStore:
        return 0;       // memory ops use the lower subclusters
      case OpClass::IntMul:
      case OpClass::CondBranch: case OpClass::UncondBranch:
      case OpClass::Call: case OpClass::IndirectJump:
      case OpClass::Return:
        return 1;       // multiplies and branches live in the uppers
      default:
        // Plain ALU ops alternate by packet position (slots 0 and 3 go
        // upper) so a full packet spreads across the subclusters.
        return (packet_slot == 0 || packet_slot == 3) ? 1 : 0;
    }
}

} // namespace

AlphaCore::AlphaCore(const AlphaCoreParams &params)
    : _p(params), _stats(params.name), _c(_stats)
{
}

AlphaCore::BoundCounters::BoundCounters(stats::Group &g)
    : cycles(g.counter("cycles")),
      instsCommitted(g.counter("insts_committed")),
      branchesRetired(g.counter("branches_retired")),
      mispredictsRetired(g.counter("mispredicts_retired")),
      jumpMispredicts(g.counter("jump_mispredicts")),
      branchMispredicts(g.counter("branch_mispredicts")),
      replayTraps(g.counter("replay_traps")),
      instsSquashed(g.counter("insts_squashed")),
      instsIssued(g.counter("insts_issued")),
      storeForwards(g.counter("store_forwards")),
      loadOrderTraps(g.counter("load_order_traps")),
      mboxExtraTraps(g.counter("mbox_extra_traps")),
      storeReplayTraps(g.counter("store_replay_traps")),
      loadUseReplays(g.counter("load_use_replays")),
      loadUseViolations(g.counter("load_use_violations")),
      mapStalls(g.counter("map_stalls")),
      unopsRemoved(g.counter("unops_removed")),
      instsMapped(g.counter("insts_mapped")),
      wayMispredicts(g.counter("way_mispredicts")),
      icacheMissStalls(g.counter("icache_miss_stalls")),
      fetchPackets(g.counter("fetch_packets")),
      directionMispredicts(g.counter("direction_mispredicts")),
      targetMispredicts(g.counter("target_mispredicts")),
      slotMisses(g.counter("slot_misses")),
      lineMisfires(g.counter("line_misfires")),
      wrongPathPackets(g.counter("wrong_path_packets"))
{
}

void
AlphaCore::resetMachine(const Program &program)
{
    _prog = &program;
    // The oracle is program state and is rebuilt every run; every other
    // sub-unit's geometry is fixed by _p, so on reuse the units are
    // reset in place instead of reallocated (campaign core reuse).
    _oracle = std::make_unique<OracleStream>(program);
    if (!_mem) {
        _mem = std::make_unique<MemorySystem>(_p.mem);
        _rename =
            std::make_unique<RenameUnit>(_p.physIntRegs, _p.physFpRegs);
        _scoreboard =
            std::make_unique<Scoreboard>(_p.physIntRegs + _p.physFpRegs);
        _fuPool = std::make_unique<FuPool>(_p.bugWrongFuMix);
        _branchPred =
            std::make_unique<TournamentPredictor>(_p.speculativeUpdate);
        _linePred = std::make_unique<LinePredictor>(1024, 1);
        int icache_sets = _p.mem.l1i.sizeBytes /
                          (_p.mem.l1i.blockBytes * _p.mem.l1i.assoc);
        _wayPred = std::make_unique<WayPredictor>(icache_sets);
        _ras = std::make_unique<ReturnAddressStack>();
        _loadUsePred = std::make_unique<LoadUsePredictor>();
        _storeWait = std::make_unique<StoreWaitPredictor>();
        int removal_delay = _p.approxDelayedIqRemoval ? 2 : 1;
        _intIq =
            std::make_unique<IssueQueue>(_p.intIqEntries, removal_delay);
        _fpIq =
            std::make_unique<IssueQueue>(_p.fpIqEntries, removal_delay);
    } else {
        _mem->reset();
        _rename->reset();
        _scoreboard->reset();
        _fuPool->reset();
        _branchPred->reset();
        _linePred->reset();
        _wayPred->reset();
        _ras->reset();
        _loadUsePred->reset();
        _storeWait->reset();
        _intIq->clear();
        _fpIq->clear();
    }

    _cycle = 0;
    _seqCounter = 0;
    _committed = 0;
    _finished = false;
    _fetchPc = program.entryPc;
    _fetchResumeAt = 0;
    _wrongPathMode = false;
    _haltFetched = false;
    _mapBlockedUntil = 0;
    _lqUsed = 0;
    _sqUsed = 0;
    _lastCommitCycle = 0;
    _fetchQueue.clear();
    _rob.clear();
    _recovery.reset();
    _loadUseChecks.clear();
    _outstandingMisses.clear();
    _stats.reset();

    _intWakeAt = 0;
    _fpWakeAt = 0;
    _nextLoadUseVerify = kNoCycle;
    _issuedStores.clear();
    _issuedLoads.clear();
    const char *slow = std::getenv("SIMALPHA_SLOWPATH");
    _slowpath = slow && std::strcmp(slow, "1") == 0;
    _ffCheckUntil = 0;
    _activity = false;

    // An armed injection re-arms for every run; the strike itself is
    // per-run state.
    _injectPending = _inject.enabled();
    _injectNote.clear();
}

void
AlphaCore::runLoop(const Program &program)
{
    const Cycle budget = _inject.enabled() ? _injectBudget : 0;
    while (!_finished && (_maxInsts == 0 || _committed < _maxInsts)) {
        cycleTick();
        if (_p.watchdogCycles &&
            _cycle - _lastCommitCycle > _p.watchdogCycles)
            throw DeadlockError(deadlockSnapshot(program));
        if (budget && _cycle > budget)
            throw TimeoutError(
                "injected run exceeded its cycle budget (" +
                std::to_string(budget) + " cycles)");
    }
}

RunResult
AlphaCore::run(const Program &program, std::uint64_t max_insts)
{
    resetMachine(program);
    _maxInsts = max_insts;
    runLoop(program);

    RunResult res;
    res.machine = _p.name;
    res.program = program.name;
    res.cycles = _cycle;
    res.instsCommitted = _committed;
    res.finished = _finished;
    _c.cycles.set(_cycle);
    _c.instsCommitted.set(_committed);
    return res;
}

RunResult
AlphaCore::runWindow(const Program &program, const Checkpoint &start,
                     std::uint64_t warmup_insts,
                     std::uint64_t measure_insts,
                     std::map<std::string, std::uint64_t>
                         *measured_counters)
{
    resetMachine(program);
    // Swap the reset-state oracle for one resuming at the checkpoint;
    // fetch starts where the restored architectural state left off.
    // Everything microarchitectural (caches, predictors, queues)
    // stays cold — that is what the warm-up phase is for.
    _oracle = std::make_unique<OracleStream>(program, start);
    _fetchPc = start.pc;
    if (start.halted)
        _finished = true;

    if (warmup_insts && !_finished) {
        _maxInsts = warmup_insts;
        runLoop(program);
    }
    Cycle warm_cycles = _cycle;
    std::uint64_t warm_insts = _committed;
    std::map<std::string, std::uint64_t> before;
    if (measured_counters) {
        _c.cycles.set(_cycle);
        _c.instsCommitted.set(_committed);
        before = _stats.snapshot();
    }

    if (!_finished) {
        // measure_insts == 0 runs the window to program completion.
        _maxInsts = measure_insts ? warm_insts + measure_insts : 0;
        runLoop(program);
    }

    RunResult res;
    res.machine = _p.name;
    res.program = program.name;
    res.cycles = _cycle - warm_cycles;
    res.instsCommitted = _committed - warm_insts;
    res.finished = _finished;
    _c.cycles.set(_cycle);
    _c.instsCommitted.set(_committed);
    if (measured_counters) {
        measured_counters->clear();
        for (const auto &kv : _stats.snapshot()) {
            auto it = before.find(kv.first);
            std::uint64_t prior =
                it == before.end() ? 0 : it->second;
            (*measured_counters)[kv.first] = kv.second - prior;
        }
    }
    return res;
}

DeadlockInfo
AlphaCore::deadlockSnapshot(const Program &program) const
{
    DeadlockInfo info;
    info.machine = _p.name;
    info.program = program.name;
    info.cycle = _cycle;
    info.lastCommitCycle = _lastCommitCycle;
    info.committed = _committed;
    info.fetchPc = _fetchPc;
    info.windowOccupancy = _rob.size();
    if (!_rob.empty()) {
        const DynInst &h = _rob.front();
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "seq=%llu pc=0x%llx %s wp=%d issued=%d "
                      "done=%llu mispred=%d",
                      (unsigned long long)h.seq,
                      (unsigned long long)h.pc,
                      h.inst.disassemble().c_str(), int(h.wrongPath),
                      int(h.issued), (unsigned long long)h.doneCycle,
                      int(h.mispredicted));
        info.oldestInst = buf;
    }
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "resumeAt=%llu wrongPath=%d haltFetched=%d fq=%zu "
                  "mapBlocked=%llu recovery=%d intIq=%d fpIq=%d",
                  (unsigned long long)_fetchResumeAt,
                  int(_wrongPathMode), int(_haltFetched),
                  _fetchQueue.size(),
                  (unsigned long long)_mapBlockedUntil,
                  int(_recovery.has_value()), _intIq->size(),
                  _fpIq->size());
    info.detail = buf;
    return info;
}

void
AlphaCore::cycleTick()
{
    if (_slowpath) {
        // Dual-run mode: predict the idle window the fast path would
        // skip, then execute every cycle anyway and assert each one
        // really was inactive.
        if (_cycle >= _ffCheckUntil) {
            Cycle j = fastForwardTarget();
            if (j)
                _ffCheckUntil = j;
        }
        _activity = false;
    } else {
        Cycle j = fastForwardTarget();
        if (j) {
            // Every cycle in [_cycle, j) is provably inactive: each
            // stage's next possible action is at or after j (capped
            // at the watchdog horizon, so deadlocks still fire at the
            // exact baseline cycle).
            _cycle = j;
            return;
        }
    }

    // The armed flip strikes before the stages of its cycle run, on
    // the slow and fast paths alike (fastForwardTarget never jumps
    // across a pending strike).
    if (_injectPending && _cycle >= _inject.cycle)
        applyInjection();

    doVerify();
    doRetire();
    if (_finished)
        return;
    doIssue();
    doMap();
    doFetch();
    if (_slowpath && _cycle < _ffCheckUntil)
        sim_assert(!_activity);
    _cycle++;
}

// ---------------------------------------------------------------------
// Event-driven wakeup: lower bounds on each stage's next action
// ---------------------------------------------------------------------

Cycle
AlphaCore::entryIssueLB(const DynInst &inst, bool fp_queue) const
{
    Cycle lb = inst.mapCycle + Cycle(_p.mapToIssueCycles);
    lb = std::max(lb, inst.replayBlockedUntil);
    if (!inst.wrongPath) {
        // Wrong-path slots issue whenever a pipe frees; correct-path
        // entries additionally wait for operands on some cluster.
        Cycle r;
        if (fp_queue) {
            r = operandReadyCycle(inst, 0);
        } else {
            Cycle r0 = operandReadyCycle(inst, 0);
            Cycle r1 = operandReadyCycle(inst, 1);
            r = std::min(r0, r1);
        }
        if (r == kNoCycle)
            return kNoCycle;
        lb = std::max(lb, r);
    }
    return lb;
}

Cycle
AlphaCore::recomputeWakeAt(const IssueQueue &queue, bool fp_queue) const
{
    Cycle wake = kNoCycle;
    for (const DynInst *inst : queue.entries()) {
        if (inst->issued || inst->retiredEarly)
            continue;
        Cycle lb = entryIssueLB(*inst, fp_queue);
        if (lb <= _cycle) {
            // Blocked only by per-cycle arbitration (pipe busy,
            // store-wait): must rescan every cycle.
            return _cycle + 1;
        }
        wake = std::min(wake, lb);
    }
    return wake;
}

Cycle
AlphaCore::mapEventCycle() const
{
    // Mirrors doMap's first-iteration gates. Conditions that only a
    // tracked event can clear (ROB/queue space) report kNoCycle; the
    // event that clears them is in nextEventCycle()'s min.
    if (_fetchQueue.empty())
        return kNoCycle;
    const DynInst &front = _fetchQueue.front();
    Cycle cand = std::max(front.readyForMap, _mapBlockedUntil);
    if (int(_rob.size()) >= _p.robEntries)
        return kNoCycle;
    bool is_nop = front.inst.isNop();
    bool remove_early =
        is_nop && _p.earlyUnopRetire && !_p.bugNoUnopRemoval;
    if (!remove_early) {
        bool fp_queue = front.inst.isFp() && !front.inst.isMem();
        const IssueQueue &iq = fp_queue ? *_fpIq : *_intIq;
        if (iq.full())
            return kNoCycle;
        if (front.inst.isLoad() && _lqUsed >= _p.lqEntries)
            return kNoCycle;
        if (front.inst.isStore() && _sqUsed >= _p.sqEntries)
            return kNoCycle;
    }
    if (!front.wrongPath) {
        RegIndex dst = front.inst.dstReg();
        if (dst != kNoReg && !is_nop && !remove_early) {
            bool fp = isFpRegIndex(dst);
            int free_regs =
                fp ? _rename->freeFpRegs() : _rename->freeIntRegs();
            if (_p.mapStall && free_regs < _p.minFreeRegs)
                return cand;    // the stall branch itself is activity
            if (free_regs == 0)
                return kNoCycle;
        }
    }
    return cand;
}

Cycle
AlphaCore::fetchEventCycle() const
{
    // All of these gates are invariant across an idle window: they
    // change only when fetch, map, or a recovery acts.
    if (_haltFetched && !_wrongPathMode)
        return kNoCycle;
    if (int(_fetchQueue.size()) + _p.fetchWidth > _p.fetchQueueEntries)
        return kNoCycle;
    if (!_wrongPathMode && _oracle->exhausted())
        return kNoCycle;
    return _fetchResumeAt;
}

Cycle
AlphaCore::nextEventCycle() const
{
    Cycle ev = kNoCycle;
    if (_recovery)
        ev = std::min(ev, _recovery->atCycle);
    ev = std::min(ev, _nextLoadUseVerify);
    if (!_rob.empty()) {
        const DynInst &head = _rob.front();
        // Incomplete or wrong-path heads unblock via issue/recovery
        // events; a recovery-gated head unblocks when it fires.
        if (!head.wrongPath && head.completed &&
            !(_recovery && head.seq >= _recovery->seq))
            ev = std::min(ev, head.doneCycle);
    }
    ev = std::min(ev, _intIq->nextRemoval());
    ev = std::min(ev, _fpIq->nextRemoval());
    ev = std::min(ev, _intWakeAt);
    ev = std::min(ev, _fpWakeAt);
    ev = std::min(ev, mapEventCycle());
    ev = std::min(ev, fetchEventCycle());
    return ev;
}

Cycle
AlphaCore::fastForwardTarget() const
{
    Cycle j = nextEventCycle();
    if (_p.watchdogCycles) {
        // Jump at most to the cycle where the watchdog fires, so a
        // deadlocked machine still throws with the baseline cycle
        // number and snapshot.
        j = std::min(j, _lastCommitCycle + _p.watchdogCycles + 1);
    }
    if (_injectPending) {
        // Never jump across a pending strike: the flip must land at
        // its planned cycle, before that cycle's stages run.
        j = std::min(j, _inject.cycle);
    }
    if (j == kNoCycle || j <= _cycle + 1)
        return 0;
    return j;
}

// ---------------------------------------------------------------------
// Issued-memory-op indexes (replace full ROB scans at issue time)
// ---------------------------------------------------------------------

void
AlphaCore::addIssuedRef(std::vector<IssuedMemRef> &index,
                        const DynInst &inst)
{
    IssuedMemRef ref{inst.seq, inst.effAddr, inst.inst.memBytes(),
                     inst.pc};
    auto it = std::lower_bound(
        index.begin(), index.end(), ref,
        [](const IssuedMemRef &a, const IssuedMemRef &b) {
            return a.seq < b.seq;
        });
    index.insert(it, ref);
}

void
AlphaCore::removeIssuedRef(std::vector<IssuedMemRef> &index, InstSeq seq)
{
    auto it = std::lower_bound(
        index.begin(), index.end(), seq,
        [](const IssuedMemRef &a, InstSeq s) { return a.seq < s; });
    if (it != index.end() && it->seq == seq)
        index.erase(it);
}

bool
AlphaCore::storeForwardLookup(const DynInst &ld) const
{
    for (auto it = _issuedStores.rbegin(); it != _issuedStores.rend();
         ++it) {
        if (it->seq >= ld.seq)
            continue;
        bool overlap = _p.approxMaskedStoreTrapAddr
                           ? overlapWord(it->addr, ld.effAddr)
                           : overlapExact(it->addr, it->bytes,
                                          ld.effAddr,
                                          ld.inst.memBytes());
        if (overlap)
            return true;
    }
    return false;
}

const AlphaCore::IssuedMemRef *
AlphaCore::youngestConflictingLoad(const DynInst &ld) const
{
    for (auto it = _issuedLoads.rbegin(); it != _issuedLoads.rend();
         ++it) {
        if (it->seq <= ld.seq)
            break;      // seq-sorted: everything further is older
        bool conflict = _p.bugMaskedLoadTrapAddr
                            ? overlapWord(it->addr, ld.effAddr)
                            : overlapExact(it->addr, it->bytes,
                                           ld.effAddr,
                                           ld.inst.memBytes());
        if (conflict)
            return &*it;
    }
    return nullptr;
}

const AlphaCore::IssuedMemRef *
AlphaCore::oldestConflictingLoad(const DynInst &st) const
{
    for (const IssuedMemRef &ref : _issuedLoads) {
        if (ref.seq <= st.seq)
            continue;
        bool conflict = _p.approxMaskedStoreTrapAddr
                            ? overlapWord(ref.addr, st.effAddr)
                            : overlapExact(ref.addr, ref.bytes,
                                           st.effAddr,
                                           st.inst.memBytes());
        if (conflict)
            return &ref;
    }
    return nullptr;
}

// ---------------------------------------------------------------------
// Retire
// ---------------------------------------------------------------------

void
AlphaCore::doRetire()
{
    int retired = 0;
    while (retired < _p.retireWidth && !_rob.empty()) {
        DynInst &head = _rob.front();
        if (head.wrongPath) {
            // A wrong-path head can only exist while its squashing
            // recovery is still pending.
            sim_assert(_recovery.has_value());
            break;
        }
        if (!head.completed || head.doneCycle > _cycle)
            break;
        if (_recovery && head.seq >= _recovery->seq) {
            // A pending recovery will squash (or, for a resolving
            // branch, redirect at) this instruction; hold retirement
            // until the recovery fires.
            break;
        }

        // Commit-time actions.
        if (head.inst.isStore()) {
            _mem->dataAccess(head.effAddr, true, _cycle);
            _sqUsed--;
            removeIssuedRef(_issuedStores, head.seq);
        }
        if (head.inst.isLoad()) {
            _lqUsed--;
            removeIssuedRef(_issuedLoads, head.seq);
        }
        if (head.inst.isCondBranch() && head.hasBpSnap)
            _branchPred->update(head.pc, head.taken, head.bpSnap);
        if (!_p.speculativeUpdate) {
            if (head.lpTrainPc != kNoAddr)
                _linePred->train(head.lpTrainPc, head.lpTrainNext);
            if (head.inst.isCall())
                _ras->push(head.pc + 4);
            else if (head.inst.isReturn())
                _ras->pop();
        }
        _rename->release(head.oldPhys);
        _oracle->retireBefore(head.oracleSeq + 1);

        if (head.inst.isControl())
            ++_c.branchesRetired;
        if (head.mispredicted)
            ++_c.mispredictsRetired;

        _committed++;
        _lastCommitCycle = _cycle;
        retired++;
        _activity = true;

        // Make sure no issue-queue pointer survives the pop.
        _intIq->remove(&head);
        _fpIq->remove(&head);
        if (head.halt) {
            _finished = true;
            _rob.pop_front();
            return;
        }
        _rob.pop_front();
    }
}

// ---------------------------------------------------------------------
// Verification: load-use speculation checks and recovery execution
// ---------------------------------------------------------------------

void
AlphaCore::doVerify()
{
    // Load-use mis-speculation: replay what issued inside the window.
    // Scans are gated on the earliest pending verifyAt; a check is
    // never added without clamping _nextLoadUseVerify, so the gate can
    // only fire early (wasted scan), never late.
    bool verify_gate = _nextLoadUseVerify <= _cycle;
    if (_slowpath || verify_gate) {
        bool erased = false;
        for (std::size_t i = 0; i < _loadUseChecks.size();) {
            if (_loadUseChecks[i].verifyAt <= _cycle) {
                unissueForReplay(_loadUseChecks[i]);
                _loadUseChecks.erase(_loadUseChecks.begin() +
                                     std::ptrdiff_t(i));
                erased = true;
            } else {
                i++;
            }
        }
        if (erased) {
            _activity = true;
            if (_slowpath)
                sim_assert(verify_gate);
        }
        _nextLoadUseVerify = kNoCycle;
        for (const LoadUseCheck &c : _loadUseChecks)
            _nextLoadUseVerify =
                std::min(_nextLoadUseVerify, c.verifyAt);
    }

    if (!_recovery || _recovery->atCycle > _cycle)
        return;
    _activity = true;

    Recovery rec = *_recovery;
    _recovery.reset();
    TRACE(Recovery,
          "[%llu] execute kind=%d seq=%llu resume=0x%llx oracle=0x%llx",
          (unsigned long long)_cycle, int(rec.kind),
          (unsigned long long)rec.seq,
          (unsigned long long)rec.resumePc,
          (unsigned long long)_oracle->nextPc());

    bool inclusive = rec.kind == Recovery::Kind::Trap;
    squashFrom(inclusive ? rec.seq : rec.seq + 1, inclusive);

    if (rec.kind == Recovery::Kind::BranchMispredict) {
        // Fix the resolving branch's own speculative history shift and
        // repair the line predictor toward the actual target.
        DynInst *causer = nullptr;
        for (auto it = _rob.rbegin(); it != _rob.rend(); ++it) {
            if (it->seq == rec.seq) {
                causer = &*it;
                break;
            }
        }
        if (causer) {
            if (causer->inst.isCondBranch() && causer->hasBpSnap)
                _branchPred->recover(causer->bpSnap, causer->taken);
            _linePred->train(causer->pc, rec.resumePc);
            ++(causer->inst.isIndirect() ? _c.jumpMispredicts
                                          : _c.branchMispredicts);
            // The redirect is a one-shot fetch event: if a load-use
            // replay later re-issues this instruction, it must not
            // redirect again.
            causer->mispredicted = false;
        }
        Cycle restart = rec.indirect ? Cycle(_p.indirectRestartCycles)
                                     : Cycle(_p.branchRestartCycles);
        if (_p.bugLateBranchRecovery && !rec.indirect) {
            // sim-initial discovered line mispredictions only after
            // execute and initiated a full rollback: an excessive
            // penalty on every recovery.
            restart += Cycle(_p.lateRecoveryExtraCycles);
        }
        _fetchPc = rec.resumePc;
        _fetchResumeAt = std::max(_fetchResumeAt, _cycle + restart);
        _wrongPathMode = false;
    } else {
        // Replay trap: refetch from the victim itself.
        if (rec.markStoreWait && _p.storeWaitTable)
            _storeWait->markConflict(rec.storeWaitPc);
        ++_c.replayTraps;
        _fetchPc = rec.resumePc;
        _fetchResumeAt =
            std::max(_fetchResumeAt, _cycle + Cycle(_p.trapRestartCycles));
        _wrongPathMode = false;
        _haltFetched = false;
    }
}

void
AlphaCore::squashFrom(InstSeq seq, bool refetch_inclusive)
{
    // Drop pending load-use checks and outstanding-miss records for the
    // squashed region.
    std::erase_if(_loadUseChecks, [seq](const LoadUseCheck &c) {
        return c.loadSeq >= seq;
    });

    // Un-fetched/un-mapped instructions first (youngest first so
    // predictor snapshots unwind in reverse order).
    while (!_fetchQueue.empty() && _fetchQueue.back().seq >= seq) {
        DynInst &di = _fetchQueue.back();
        if (di.hasBpSnap)
            _branchPred->restore(di.bpSnap);
        if (di.hasRasSnap)
            _ras->restore(di.rasSnap);
        _fetchQueue.pop_back();
    }

    _intIq->squashFrom(seq);
    _fpIq->squashFrom(seq);

    InstSeq lowest_oracle = kNoCycle;
    while (!_rob.empty() && _rob.back().seq >= seq) {
        DynInst &di = _rob.back();
        if (di.hasBpSnap)
            _branchPred->restore(di.bpSnap);
        if (di.hasRasSnap)
            _ras->restore(di.rasSnap);
        if (!di.wrongPath) {
            if (di.dstPhys != kNoPhys) {
                _scoreboard->setReadyNow(di.dstPhys);
                _rename->undo(di.archDst, di.dstPhys, di.oldPhys);
            }
            if (di.inst.isLoad())
                _lqUsed--;
            if (di.inst.isStore())
                _sqUsed--;
            lowest_oracle = di.oracleSeq;
        }
        ++_c.instsSquashed;
        _rob.pop_back();
    }

    // Rewind the oracle if architecturally executed instructions were
    // squashed (replay traps refetch them).
    if (refetch_inclusive && lowest_oracle != kNoCycle)
        _oracle->rewindTo(lowest_oracle);

    // Drop the squashed tail of the issued-memory-op indexes.
    auto chop = [seq](std::vector<IssuedMemRef> &index) {
        index.erase(
            std::lower_bound(index.begin(), index.end(), seq,
                             [](const IssuedMemRef &a, InstSeq s) {
                                 return a.seq < s;
                             }),
            index.end());
    };
    chop(_issuedStores);
    chop(_issuedLoads);

    // setReadyNow during the unwind can expose past ready cycles to
    // surviving consumers; re-arm both issue-queue wakeups.
    noteSetReady(_cycle);
}

void
AlphaCore::scheduleRecovery(const Recovery &rec)
{
    TRACE(Recovery,
          "[%llu] schedule kind=%d seq=%llu at=%llu resume=0x%llx",
          (unsigned long long)_cycle, int(rec.kind),
          (unsigned long long)rec.seq, (unsigned long long)rec.atCycle,
          (unsigned long long)rec.resumePc);
    if (!_recovery || rec.seq < _recovery->seq)
        _recovery = rec;
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

Cycle
AlphaCore::operandReadyCycle(const DynInst &inst, int cluster) const
{
    Cycle ready = 0;
    for (int i = 0; i < inst.numSrcs; i++) {
        PhysReg src = inst.srcPhys[i];
        Cycle r;
        if (_p.approxBypassLatency || _p.bugAggressiveCluster) {
            // The sim-alpha bypass shortcut: bypassed values ignore the
            // cross-cluster skew.
            Cycle r0 = _scoreboard->readyAt(src, 0);
            Cycle r1 = _scoreboard->readyAt(src, 1);
            r = std::min(r0, r1);
        } else {
            r = _scoreboard->readyAt(src, cluster);
        }
        if (r == kNoCycle)
            return kNoCycle;
        if (!_p.fullBypass && _p.regreadCycles > 1) {
            // Partial bypass on the 21264: same-pipe forwarding always
            // remains, so only the register-file cycles beyond the
            // first are exposed to dependents (the paper's observation
            // that the Alpha's scheduling absorbs one-cycle bubbles).
            r += Cycle(_p.regreadCycles - 1);
        }
        ready = std::max(ready, r);
    }
    return ready;
}

bool
AlphaCore::operandsReady(const DynInst &inst, int cluster) const
{
    Cycle r = operandReadyCycle(inst, cluster);
    return r != kNoCycle && r <= _cycle;
}

void
AlphaCore::doIssue()
{
    _activity = _intIq->compact(_cycle) || _activity;
    _activity = _fpIq->compact(_cycle) || _activity;

    // A queue whose wake-up lower bound lies in the future holds no
    // entry that can pass the issue gates, so its scan (and every
    // stateful call inside it, e.g. the store-wait predictor's
    // shouldWait) is skipped wholesale.
    Cycle int_wake0 = _intWakeAt;
    Cycle fp_wake0 = _fpWakeAt;
    bool int_issued = false;
    bool fp_issued = false;

    // Per-pipe arbitration: each execution pipe issues the oldest queue
    // entry that can use it this cycle and whose operands have reached
    // its cluster — the collapsible-queue oldest-first policy of the
    // 21264, one winner per pipe.
    for (int pipe = 0; pipe < _fuPool->numPipes(); pipe++) {
        bool fp_pipe = _fuPool->pipeIsFp(pipe);
        Cycle wake0 = fp_pipe ? fp_wake0 : int_wake0;
        if (!_slowpath && wake0 > _cycle)
            continue;
        IssueQueue &queue = fp_pipe ? *_fpIq : *_intIq;
        int cluster = fp_pipe ? -1 : _fuPool->pipeCluster(pipe);

        for (DynInst *inst : queue.entries()) {
            if (inst->issued || inst->retiredEarly)
                continue;
            if (inst->replayBlockedUntil > _cycle)
                continue;
            if (inst->mapCycle + Cycle(_p.mapToIssueCycles) > _cycle)
                continue;

            OpClass cls = inst->inst.opClass();
            if (!_fuPool->pipeCanIssue(pipe, cls,
                                       inst->slottedUpper != 0,
                                       _p.slotRestrict, _cycle))
                continue;

            if (!inst->wrongPath) {
                // Operands must have reached this pipe's cluster.
                int rc = cluster < 0 ? 0 : cluster;
                if (!operandsReady(*inst, rc))
                    continue;
                if (inst->inst.isLoad() && !storeWaitClear(*inst))
                    continue;
            }

            _fuPool->reservePipe(pipe, cls, _cycle);
            performIssue(*inst, cluster);
            queue.noteIssued(_cycle);
            (fp_pipe ? fp_issued : int_issued) = true;
            _activity = true;
            if (_slowpath)
                sim_assert(wake0 <= _cycle);
            break;      // this pipe is consumed for the cycle
        }
    }

    // A queue that issued must be rescanned next cycle; a queue that
    // was scanned fruitlessly gets an exact recomputed bound; a queue
    // that was skipped keeps its bound (clamped by noteSetReady as
    // operands get scheduled).
    _intWakeAt = int_issued
                     ? _cycle + 1
                     : ((int_wake0 <= _cycle || _slowpath)
                            ? recomputeWakeAt(*_intIq, false)
                            : _intWakeAt);
    _fpWakeAt = fp_issued
                    ? _cycle + 1
                    : ((fp_wake0 <= _cycle || _slowpath)
                           ? recomputeWakeAt(*_fpIq, true)
                           : _fpWakeAt);
}

bool
AlphaCore::storeWaitClear(const DynInst &ld)
{
    // A load flagged by the store-wait table waits for every earlier
    // store to resolve its address.
    if (!_p.mboxTraps || !_p.storeWaitTable)
        return true;
    if (!_storeWait->shouldWait(ld.pc, _cycle))
        return true;
    for (const DynInst &older : _rob) {
        if (older.seq >= ld.seq)
            break;
        if (older.inst.isStore() && !older.memIssued)
            return false;
    }
    return true;
}

void
AlphaCore::performIssue(DynInst &inst, int cluster)
{
    inst.issued = true;
    inst.issueCycle = _cycle;
    inst.cluster = cluster < 0 ? 0 : cluster;
    ++_c.instsIssued;

    OpClass cls = inst.inst.opClass();

    if (inst.wrongPath) {
        inst.doneCycle = _cycle + Cycle(inst.inst.latency());
        inst.completed = true;
        return;
    }

    if (inst.inst.isLoad()) {
        issueLoad(inst);
        return;
    }
    if (inst.inst.isStore()) {
        issueStore(inst);
        return;
    }

    int latency = inst.inst.latency();
    if (_p.bugShortMulLatency && cls == OpClass::IntMul)
        latency = 1;
    Cycle done = _cycle + Cycle(latency);
    if (inst.dstPhys != kNoPhys) {
        _scoreboard->setReady(inst.dstPhys, done, cluster);
        noteSetReady(done);
    }
    inst.doneCycle = done;
    inst.completed = true;

    // Control resolution: a mispredicted transfer schedules recovery at
    // its execute cycle.
    if (inst.mispredicted) {
        Cycle resolve = _cycle + Cycle(_p.regreadCycles) + 1;
        Recovery rec;
        rec.kind = Recovery::Kind::BranchMispredict;
        rec.seq = inst.seq;
        rec.atCycle = resolve;
        rec.resumePc = inst.nextPc;
        rec.indirect =
            inst.inst.isIndirect() && !_p.bugUnderchargedJump;
        scheduleRecovery(rec);
        inst.doneCycle = std::max(inst.doneCycle, resolve);
    }
}

void
AlphaCore::issueLoad(DynInst &ld)
{
    ld.memIssued = true;

    bool is_fp = ld.inst.isFp();
    // Load-to-use latency tracks the configured D-cache hit latency
    // (fp loads pay one extra cycle, Table 1).
    int hit_lat = _p.mem.l1d.hitLatency + (is_fp ? 1 : 0);

    // Search older issued stores for a forwarding partner (the
    // seq-sorted index replaces the original full ROB scan).
    bool forwarded = storeForwardLookup(ld);
    if (_slowpath) {
        bool scan_forwarded = false;
        for (auto it = _rob.rbegin(); it != _rob.rend(); ++it) {
            if (it->seq >= ld.seq)
                continue;
            if (!it->inst.isStore() || it->wrongPath)
                continue;
            bool overlap = _p.approxMaskedStoreTrapAddr
                               ? overlapWord(it->effAddr, ld.effAddr)
                               : overlapExact(it->effAddr,
                                              it->inst.memBytes(),
                                              ld.effAddr,
                                              ld.inst.memBytes());
            if (it->memIssued && overlap) {
                // Store-to-load forwarding from the store queue.
                scan_forwarded = true;
                break;
            }
        }
        sim_assert(scan_forwarded == forwarded);
        forwarded = scan_forwarded;
    }

    Cycle hit_done = _cycle + Cycle(hit_lat);
    Cycle real_done;
    bool hit;

    if (forwarded) {
        hit = true;
        real_done = hit_done;
        ++_c.storeForwards;
    } else {
        MemAccessResult r = _mem->dataAccess(
            ld.effAddr, false, _cycle + Cycle(_p.regreadCycles));
        hit = r.l1Hit;
        if (r.pipelineStall) {
            // PAL-code DTLB refill stalls the machine front end.
            _fetchResumeAt =
                std::max(_fetchResumeAt, _cycle + r.pipelineStall);
            _mapBlockedUntil =
                std::max(_mapBlockedUntil, _cycle + r.pipelineStall);
        }
        real_done = hit ? hit_done : r.done;
        if (!hit && _p.bugExtraRegreadOnMiss)
            real_done += 1;
    }

    // Load-use (hit/miss) speculation.
    bool pred_hit = _loadUsePred->predictHit();
    ld.predictedHit = pred_hit;
    _loadUsePred->update(hit);

    if (_p.loadUseSpec && pred_hit) {
        // Consumers wake as if the load hits; a miss replays the window.
        if (ld.dstPhys != kNoPhys) {
            _scoreboard->setReady(ld.dstPhys, hit_done, ld.cluster);
            noteSetReady(hit_done);
        }
        if (!hit) {
            LoadUseCheck check;
            check.loadSeq = ld.seq;
            check.verifyAt = hit_done + 2;
            check.missDone = real_done;
            check.loadDst = ld.dstPhys;
            check.windowStart = hit_done;
            _loadUseChecks.push_back(check);
            _nextLoadUseVerify =
                std::min(_nextLoadUseVerify, check.verifyAt);
        }
    } else {
        // Conservative scheduling: consumers wait for the verified
        // outcome (two extra cycles on a hit).
        Cycle ready = hit ? hit_done + 2 : real_done;
        if (_p.loadUseSpec && !pred_hit && !hit)
            ready = real_done;
        if (ld.dstPhys != kNoPhys) {
            _scoreboard->setReady(ld.dstPhys, ready, ld.cluster);
            noteSetReady(ready);
        }
    }

    ld.dcacheHit = hit;
    ld.doneCycle = real_done;
    ld.completed = true;
    addIssuedRef(_issuedLoads, ld);

    if (!_p.mboxTraps)
        return;

    // Load-load order traps: this load may reveal that a younger load
    // to a conflicting address already executed out of order. The
    // trap victim is the youngest such load (first hit of the
    // original youngest-first ROB scan).
    const IssuedMemRef *ll_victim = youngestConflictingLoad(ld);
    if (_slowpath) {
        const DynInst *scan_victim = nullptr;
        for (auto it = _rob.rbegin(); it != _rob.rend(); ++it) {
            if (it->seq <= ld.seq || it->wrongPath)
                continue;
            if (!it->inst.isLoad() || !it->memIssued)
                continue;
            bool conflict = _p.bugMaskedLoadTrapAddr
                                ? overlapWord(it->effAddr, ld.effAddr)
                                : overlapExact(it->effAddr,
                                               it->inst.memBytes(),
                                               ld.effAddr,
                                               ld.inst.memBytes());
            if (conflict) {
                scan_victim = &*it;
                break;
            }
        }
        sim_assert((scan_victim != nullptr) == (ll_victim != nullptr));
        if (scan_victim)
            sim_assert(scan_victim->seq == ll_victim->seq);
    }
    if (ll_victim) {
        Recovery rec;
        rec.kind = Recovery::Kind::Trap;
        rec.seq = ll_victim->seq;
        rec.atCycle = _cycle + 2;
        rec.resumePc = ll_victim->pc;
        scheduleRecovery(rec);
        ++_c.loadOrderTraps;
    }

    // Golden-only mbox trap conditions: MAF pressure and same-set
    // concurrent misses flush the pipeline (the art pathology).
    if (_p.mboxExtraTraps && !hit && !forwarded) {
        std::erase_if(_outstandingMisses, [this](const OutstandingMiss &m) {
            return m.done <= _cycle;
        });
        Addr block = ld.effAddr >> 6;
        std::size_t sets =
            std::size_t(_p.mem.l1d.sizeBytes /
                        (_p.mem.l1d.blockBytes * _p.mem.l1d.assoc));
        std::size_t set = std::size_t(block & Addr(sets - 1));
        bool already = false;
        int same_set = 0;
        for (const OutstandingMiss &m : _outstandingMisses) {
            if (m.block == block)
                already = true;
            else if (m.set == set)
                same_set++;
        }
        // MAF exhaustion, or a third concurrent miss to one 2-way set
        // (no place to put the fill), flushes the pipe.
        bool trap = int(_outstandingMisses.size()) >=
                        _p.mem.l1d.mshrEntries ||
                    same_set >= _p.mem.l1d.assoc;
        if (!already)
            _outstandingMisses.push_back({block, set, real_done});
        if (trap) {
            Recovery rec;
            rec.kind = Recovery::Kind::Trap;
            rec.seq = ld.seq;
            rec.atCycle = _cycle + 2;
            rec.resumePc = ld.pc;
            scheduleRecovery(rec);
            ++_c.mboxExtraTraps;
        }
    }
}

void
AlphaCore::issueStore(DynInst &st)
{
    st.memIssued = true;
    st.doneCycle = _cycle + 1;
    st.completed = true;
    addIssuedRef(_issuedStores, st);

    if (!_p.mboxTraps)
        return;

    // Store replay trap: a younger load to a conflicting address already
    // executed; squash and refetch it, and teach the store-wait table.
    // The victim is the oldest such load (first hit of the original
    // oldest-first ROB scan).
    const IssuedMemRef *victim = oldestConflictingLoad(st);
    if (_slowpath) {
        const DynInst *scan_victim = nullptr;
        for (const DynInst &di : _rob) {
            if (di.seq <= st.seq || di.wrongPath)
                continue;
            if (!di.inst.isLoad() || !di.memIssued)
                continue;
            bool conflict = _p.approxMaskedStoreTrapAddr
                                ? overlapWord(di.effAddr, st.effAddr)
                                : overlapExact(di.effAddr,
                                               di.inst.memBytes(),
                                               st.effAddr,
                                               st.inst.memBytes());
            if (conflict) {
                scan_victim = &di;
                break;
            }
        }
        sim_assert((scan_victim != nullptr) == (victim != nullptr));
        if (scan_victim)
            sim_assert(scan_victim->seq == victim->seq);
    }
    if (victim) {
        Recovery rec;
        rec.kind = Recovery::Kind::Trap;
        rec.seq = victim->seq;
        rec.atCycle = _cycle + 2;
        rec.resumePc = victim->pc;
        rec.markStoreWait = true;
        rec.storeWaitPc = victim->pc;
        scheduleRecovery(rec);
        ++_c.storeReplayTraps;
    }
}

void
AlphaCore::unissueForReplay(const LoadUseCheck &check)
{
    // The load's destination becomes ready only when the miss returns
    // (possibly already in the past: clamp the wake-ups so a consumer
    // made issuable this very cycle is still scanned).
    if (check.loadDst != kNoPhys) {
        _scoreboard->setReady(check.loadDst, check.missDone, -1);
        noteSetReady(check.missDone);
    }

    Cycle recovery_cycles =
        _p.bugUnderchargedLoadUseRecovery
            ? Cycle(_p.loadUseRecoveryCycles - 1)
            : Cycle(_p.loadUseRecoveryCycles);

    // Poison propagation for dependents-only squash.
    std::vector<bool> poisoned(
        std::size_t(_p.physIntRegs + _p.physFpRegs), false);
    if (check.loadDst != kNoPhys)
        poisoned[std::size_t(check.loadDst)] = true;

    bool any = false;
    for (DynInst &di : _rob) {
        if (di.seq == check.loadSeq || !di.issued || di.retiredEarly)
            continue;
        if (di.issueCycle < check.windowStart ||
            di.issueCycle >= check.windowStart + 2)
            continue;
        bool squash;
        if (_p.squashDependentsOnly) {
            squash = false;
            for (int i = 0; i < di.numSrcs; i++)
                if (di.srcPhys[i] != kNoPhys &&
                    poisoned[std::size_t(di.srcPhys[i])])
                    squash = true;
        } else {
            squash = !di.wrongPath;
        }
        if (!squash)
            continue;

        any = true;
        di.issued = false;
        di.issueCycle = kNoCycle;
        di.completed = false;
        di.memIssued = false;
        di.replayBlockedUntil = check.verifyAt + recovery_cycles;
        if (di.inst.isLoad())
            removeIssuedRef(_issuedLoads, di.seq);
        else if (di.inst.isStore())
            removeIssuedRef(_issuedStores, di.seq);
        if (di.dstPhys != kNoPhys) {
            _scoreboard->setPending(di.dstPhys);
            poisoned[std::size_t(di.dstPhys)] = true;
        }
        if (di.inst.isFp() && !di.inst.isMem()) {
            _fpIq->reinsert(&di);
            _fpWakeAt = std::min(_fpWakeAt, di.replayBlockedUntil);
        } else {
            _intIq->reinsert(&di);
            _intWakeAt = std::min(_intWakeAt, di.replayBlockedUntil);
        }
        ++_c.loadUseReplays;
    }
    if (any)
        ++_c.loadUseViolations;
}

// ---------------------------------------------------------------------
// Map (rename/dispatch)
// ---------------------------------------------------------------------

void
AlphaCore::doMap()
{
    if (_mapBlockedUntil > _cycle)
        return;

    int mapped = 0;
    while (mapped < _p.mapWidth && !_fetchQueue.empty()) {
        DynInst &front = _fetchQueue.front();
        if (front.readyForMap > _cycle)
            break;
        if (int(_rob.size()) >= _p.robEntries)
            break;

        bool is_nop = front.inst.isNop();
        bool remove_early = is_nop && _p.earlyUnopRetire &&
                            !_p.bugNoUnopRemoval;

        if (!remove_early) {
            // Queue space.
            bool fp_queue = front.inst.isFp() && !front.inst.isMem();
            IssueQueue &iq = fp_queue ? *_fpIq : *_intIq;
            if (iq.full())
                break;
            if (front.inst.isLoad() && _lqUsed >= _p.lqEntries)
                break;
            if (front.inst.isStore() && _sqUsed >= _p.sqEntries)
                break;
        }

        // Rename (correct path only).
        if (!front.wrongPath) {
            RegIndex dst = front.inst.dstReg();
            if (dst != kNoReg && !front.inst.isNop()) {
                bool fp = isFpRegIndex(dst);
                int free_regs = fp ? _rename->freeFpRegs()
                                   : _rename->freeIntRegs();
                if (_p.mapStall && free_regs < _p.minFreeRegs) {
                    // The rename table stalls three cycles when fewer
                    // than eight free names remain.
                    _mapBlockedUntil = _cycle + Cycle(_p.mapStallCycles);
                    ++_c.mapStalls;
                    _activity = true;
                    return;
                }
                if (free_regs == 0)
                    break;
            }
        }

        // Commit the dequeue.
        DynInst di = std::move(front);
        _fetchQueue.pop_front();
        di.mapCycle = _cycle;

        if (!di.wrongPath) {
            RegIndex dst = di.inst.dstReg();
            // Resolve sources before allocating the destination so
            // "r1 = r1 + 1" reads the old mapping.
            RegIndex srcs[3];
            int n = di.inst.srcRegs(srcs);
            di.numSrcs = 0;
            if (!remove_early) {
                for (int i = 0; i < n; i++)
                    di.srcPhys[di.numSrcs++] = _rename->lookup(srcs[i]);
            }
            if (dst != kNoReg && !remove_early) {
                PhysReg old_phys = kNoPhys;
                PhysReg p = _rename->allocate(dst, old_phys);
                sim_assert(p != kNoPhys);
                di.dstPhys = p;
                di.oldPhys = old_phys;
                di.archDst = dst;
                _scoreboard->setPending(p);
            }
            if (di.inst.isLoad())
                _lqUsed++;
            if (di.inst.isStore())
                _sqUsed++;
        }

        _rob.push_back(std::move(di));
        DynInst &placed = _rob.back();

        if (remove_early) {
            // Unops vanish at map: they hold a ROB slot but never issue.
            placed.retiredEarly = true;
            placed.issued = true;
            placed.completed = true;
            placed.issueCycle = _cycle;
            placed.doneCycle = _cycle;
            ++_c.unopsRemoved;
        } else {
            bool fp_queue = placed.inst.isFp() && !placed.inst.isMem();
            (fp_queue ? *_fpIq : *_intIq).insert(&placed);
            Cycle &wake = fp_queue ? _fpWakeAt : _intWakeAt;
            wake = std::min(wake,
                            _cycle + Cycle(_p.mapToIssueCycles));
        }
        mapped++;
        ++_c.instsMapped;
    }
    if (mapped)
        _activity = true;
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

Cycle
AlphaCore::icacheTiming(Addr pc, Cycle now)
{
    MemAccessResult f = _mem->fetchAccess(pc, now);
    Cycle done = f.done;

    if (f.pipelineStall) {
        // PAL-code ITLB refill: the front end stalls outright.
        done += f.pipelineStall;
    }

    if (f.l1Hit) {
        Addr paddr = _mem->itlb().translateProbe(pc);
        int actual = _mem->icache().wayOf(paddr);
        int predicted = _wayPred->predict(pc);
        if (actual >= 0 && actual != predicted) {
            done += 2;      // way misprediction bubble
            if (_p.bugExtraWayPredCycle)
                done += 1;  // over-charged way-predictor access
            ++_c.wayMispredicts;
        }
        if (actual >= 0)
            _wayPred->update(pc, actual);
    } else {
        ++_c.icacheMissStalls;
        if (_p.bugExtraWayPredCycle)
            done += 1;
    }

    return done;
}

Addr
AlphaCore::predictControl(DynInst &di, Addr lp_next)
{
    // Returns the front end's chosen next-fetch PC given that the packet
    // cuts at this (predicted- or actually-taken) control instruction.
    const Instruction &inst = di.inst;
    bool early_target = _p.slotAdder && !_p.bugLateBranchRecovery;

    if (inst.isPcRelBranch()) {
        Addr target = _prog->pcOf(std::size_t(inst.target));
        if (early_target)
            return target;
        return lp_next;     // only the line predictor steers fetch
    }
    if (inst.isReturn()) {
        if (_p.speculativeUpdate)
            return _ras->pop();
        return _ras->peek();
    }
    // Indirect jump/call: the slot adder cannot help; the line predictor
    // supplies the target guess.
    return lp_next;
}

void
AlphaCore::enqueuePacket(std::vector<DynInst> &packet, Cycle fetch_done)
{
    for (DynInst &di : packet) {
        di.fetchCycle = _cycle;
        di.readyForMap = fetch_done + Cycle(_p.fetchToMapCycles);
        _fetchQueue.push_back(std::move(di));
    }
    packet.clear();
}

void
AlphaCore::doFetch()
{
    if (_cycle < _fetchResumeAt)
        return;
    if (_haltFetched && !_wrongPathMode)
        return;
    if (int(_fetchQueue.size()) + _p.fetchWidth > _p.fetchQueueEntries)
        return;
    if (!_wrongPathMode && _oracle->exhausted())
        return;

    _activity = true;
    if (_wrongPathMode)
        fetchWrongPath();
    else
        fetchCorrectPath();
    ++_c.fetchPackets;
}

void
AlphaCore::fetchCorrectPath()
{
    Addr packet_pc = _fetchPc;
    TRACE(Fetch, "[%llu] fetch pc=0x%llx",
          (unsigned long long)_cycle, (unsigned long long)packet_pc);
    if (_oracle->nextPc() != packet_pc)
        panic("%s: fetch/oracle desync at cycle %llu: fetchPc=0x%llx "
              "oracle=0x%llx committed=%llu",
              _p.name.c_str(), (unsigned long long)_cycle,
              (unsigned long long)packet_pc,
              (unsigned long long)_oracle->nextPc(),
              (unsigned long long)_committed);

    Cycle fdone = icacheTiming(packet_pc, _cycle);
    Addr oct_end = octawordEnd(packet_pc);
    Addr lp_next = _linePred->predict(packet_pc);

    std::vector<DynInst> packet;
    packet.reserve(4);

    Addr pc_cur = packet_pc;
    DynInst *cut_inst = nullptr;     // control inst that ends the packet
    bool cut_predicted_taken = false;
    bool nt_mispredict = false;      // predicted NT, actually taken
    bool ends_halt = false;

    while (pc_cur < oct_end && int(packet.size()) < _p.fetchWidth &&
           !_oracle->exhausted()) {
        const ExecutedInst &rec = _oracle->next();
        sim_assert(rec.pc == pc_cur);

        DynInst di;
        di.seq = nextSeq();
        di.oracleSeq = rec.seq;
        di.pc = rec.pc;
        di.inst = rec.inst;
        di.nextPc = rec.nextPc;
        di.taken = rec.taken;
        di.effAddr = rec.effAddr;
        di.halt = rec.halted;
        di.slottedUpper = slotAssignment(di.inst, int(packet.size()));

        if (di.inst.isControl()) {
            // Direction prediction (conditional) / always-taken.
            bool pred_taken = true;
            if (di.inst.isCondBranch()) {
                di.hasBpSnap = true;
                pred_taken = _branchPred->predict(di.pc, di.bpSnap);
            }
            if (di.inst.isCall() || di.inst.isReturn()) {
                di.hasRasSnap = _p.speculativeUpdate;
                if (di.hasRasSnap)
                    di.rasSnap = _ras->snapshot();
            }
            if (di.inst.isCall() && _p.speculativeUpdate)
                _ras->push(di.pc + 4);
            di.predTaken = pred_taken;

            if (pred_taken) {
                packet.push_back(std::move(di));
                cut_inst = &packet.back();
                cut_predicted_taken = true;
                break;
            }
            if (rec.taken) {
                // Predicted not-taken, actually taken: a direction
                // mispredict. Fetch believes nothing happened and keeps
                // streaming sequentially (wrong path).
                di.mispredicted = true;
                packet.push_back(std::move(di));
                cut_inst = &packet.back();
                nt_mispredict = true;
                break;
            }
            // Correctly predicted not-taken: the packet continues.
            packet.push_back(std::move(di));
        } else {
            bool halted = rec.halted;
            packet.push_back(std::move(di));
            if (halted) {
                ends_halt = true;
                break;
            }
        }
        pc_cur += 4;
    }

    if (packet.empty()) {
        // Nothing fetched (oracle exhausted at packet start).
        return;
    }

    Cycle bubbles = 0;

    if (ends_halt) {
        _haltFetched = true;
        enqueuePacket(packet, fdone);
        _fetchResumeAt = fdone;
        return;
    }

    if (nt_mispredict) {
        // Fill the rest of the octaword with wrong-path slots and keep
        // fetching sequentially until the branch resolves.
        Addr wp = cut_inst->pc + 4;
        while (wp < oct_end && int(packet.size()) < _p.fetchWidth) {
            DynInst wdi;
            wdi.seq = nextSeq();
            wdi.pc = wp;
            wdi.inst = _prog->fetch(wp);
            wdi.wrongPath = true;
            wdi.slottedUpper = slotAssignment(wdi.inst,
                                              int(packet.size()));
            packet.push_back(std::move(wdi));
            wp += 4;
        }
        // push_back may have reallocated; re-find the mispredicted inst.
        for (DynInst &d : packet)
            if (d.mispredicted)
                cut_inst = &d;
        cut_inst->predNextFetch = oct_end;
        _wrongPathMode = true;
        _fetchPc = oct_end;
        ++_c.directionMispredicts;
        enqueuePacket(packet, fdone);
        _fetchResumeAt = fdone;
        return;
    }

    if (cut_predicted_taken) {
        Addr frontend_next = predictControl(*cut_inst, lp_next);
        cut_inst->predNextFetch = frontend_next;

        bool early_target = _p.slotAdder && !_p.bugLateBranchRecovery;
        bool slot_steered =
            (cut_inst->inst.isPcRelBranch() && early_target) ||
            cut_inst->inst.isReturn();
        if (slot_steered && frontend_next != lp_next) {
            // Branch predictor / RAS overrides the line predictor: one
            // bubble while fetch resteers (slot miss).
            bubbles += 1;
            ++_c.slotMisses;
        }
        if (_p.speculativeUpdate && slot_steered &&
            frontend_next != lp_next) {
            // Speculative line training applies only when the slot
            // stage has new information (an override); reinforcing the
            // line predictor's own guess would fight the recovery-time
            // correction.
            _linePred->speculativeTrain(packet_pc, frontend_next);
        } else if (!_p.speculativeUpdate) {
            cut_inst->lpTrainPc = packet_pc;
            cut_inst->lpTrainNext =
                cut_inst->taken ? cut_inst->nextPc : cut_inst->pc + 4;
        }

        if (_p.bugOctawordSquashPenalty &&
            (cut_inst->pc + 4) < oct_end) {
            // Buggy one-cycle charge for clearing the squashed slots
            // after a taken branch inside the octaword.
            bubbles += 1;
        }

        Addr actual_next =
            cut_inst->taken ? cut_inst->nextPc : cut_inst->pc + 4;
        if (frontend_next == actual_next) {
            _fetchPc = frontend_next;
        } else {
            // Target or direction mispredict: fetch goes down the
            // predicted (wrong) path until the transfer resolves.
            cut_inst->mispredicted = true;
            TRACE(Predictor,
                  "[%llu] mispredict seq=%llu pc=0x%llx pred=0x%llx "
                  "actual=0x%llx",
                  (unsigned long long)_cycle,
                  (unsigned long long)cut_inst->seq,
                  (unsigned long long)cut_inst->pc,
                  (unsigned long long)frontend_next,
                  (unsigned long long)actual_next);
            _wrongPathMode = true;
            _fetchPc = frontend_next;
            ++(cut_inst->inst.isCondBranch() ? _c.directionMispredicts
                                              : _c.targetMispredicts);
        }
        enqueuePacket(packet, fdone);
        _fetchResumeAt = fdone + bubbles;
        return;
    }

    // The packet ran to the end of the octaword with no (predicted or
    // actual) taken control transfer: sequential flow.
    Addr actual_next = oct_end;
    _fetchPc = actual_next;
    if (lp_next == actual_next) {
        _fetchResumeAt = fdone;
    } else {
        // Line predictor misfired on straight-line code; the slot stage
        // notices there is no branch to justify the jump and resteers —
        // unless the buggy first-cut simulator is modeled, which only
        // discovered line mispredictions after execute and initiated a
        // full rollback (Section 3.4).
        ++_c.lineMisfires;
        Cycle bubble = 2;
        if (_p.bugLateBranchRecovery)
            bubble = 7 + Cycle(_p.lateRecoveryExtraCycles);
        _fetchResumeAt = fdone + bubble;
    }
    _linePred->train(packet_pc, actual_next);
    enqueuePacket(packet, fdone);
}

void
AlphaCore::fetchWrongPath()
{
    Addr packet_pc = _fetchPc;
    Cycle fdone = icacheTiming(packet_pc, _cycle);
    Addr oct_end = octawordEnd(packet_pc);
    Addr lp_next = _linePred->predict(packet_pc);

    std::vector<DynInst> packet;
    packet.reserve(4);

    Addr pc_cur = packet_pc;
    Addr next_fetch = oct_end;
    Cycle bubbles = 0;

    while (pc_cur < oct_end && int(packet.size()) < _p.fetchWidth) {
        DynInst di;
        di.seq = nextSeq();
        di.pc = pc_cur;
        di.inst = _prog->fetch(pc_cur);
        di.wrongPath = true;
        di.slottedUpper = slotAssignment(di.inst, int(packet.size()));

        if (di.inst.isControl()) {
            bool pred_taken = true;
            if (di.inst.isCondBranch()) {
                di.hasBpSnap = true;
                pred_taken = _branchPred->predict(di.pc, di.bpSnap);
            }
            if ((di.inst.isCall() || di.inst.isReturn()) &&
                _p.speculativeUpdate) {
                di.hasRasSnap = true;
                di.rasSnap = _ras->snapshot();
            }
            if (di.inst.isCall() && _p.speculativeUpdate)
                _ras->push(di.pc + 4);
            di.predTaken = pred_taken;

            if (pred_taken) {
                next_fetch = predictControl(di, lp_next);
                packet.push_back(std::move(di));
                break;
            }
        }
        packet.push_back(std::move(di));
        pc_cur += 4;
    }

    if (next_fetch == oct_end && lp_next != oct_end)
        next_fetch = lp_next;   // line predictor steers the wrong path

    _fetchPc = next_fetch;
    enqueuePacket(packet, fdone);
    _fetchResumeAt = fdone + bubbles;
    ++_c.wrongPathPackets;
}

} // namespace simalpha

/**
 * @file
 * The 21264 execution pipes: four integer pipes arranged as two clusters
 * (each with an upper and a lower subcluster) and two floating-point
 * pipes. The integer mix is one adder/multiplier plus three adders;
 * memory operations issue through the lower subclusters; branches and
 * multiplies through the upper ones.
 *
 * The sim-initial FU-mix bug (two adders + two multipliers) is modeled
 * as an alternate pipe capability table.
 */

#ifndef SIMALPHA_CORE_FU_POOL_HH
#define SIMALPHA_CORE_FU_POOL_HH

#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace simalpha {

class FuPool
{
  public:
    /**
     * @param wrong_mix install the buggy two-adder/two-multiplier mix
     */
    explicit FuPool(bool wrong_mix);

    /**
     * Try to reserve a pipe for one instruction this cycle.
     * @param cls operation class
     * @param cluster required cluster (0/1) for integer ops; ignored for
     *        fp classes
     * @param slotted_upper the slot-stage subcluster assignment
     * @param slot_restrict honour the subcluster assignment
     * @param now current cycle
     * @return true if a pipe was reserved
     */
    bool acquire(OpClass cls, int cluster, bool slotted_upper,
                 bool slot_restrict, Cycle now);

    /** Probe without reserving. */
    bool available(OpClass cls, int cluster, bool slotted_upper,
                   bool slot_restrict, Cycle now) const;

    // ---- Per-pipe arbitration interface (the issue stage walks the
    // ---- pipes and gives each to its oldest ready requester) --------
    int numPipes() const { return int(_pipes.size()); }
    int pipeCluster(int pipe) const { return _pipes[pipe].cluster; }
    bool pipeIsFp(int pipe) const { return _pipes[pipe].cluster < 0; }

    /** Can this pipe execute `cls` this cycle (capability + busy)? */
    bool pipeCanIssue(int pipe, OpClass cls, bool slotted_upper,
                      bool slot_restrict, Cycle now) const;

    /** Reserve a specific pipe for one op this cycle. */
    void reservePipe(int pipe, OpClass cls, Cycle now);

    /** Restore freshly-constructed state (campaign core reuse); the
     *  capability table is fixed by the mix, only timing resets. */
    void
    reset()
    {
        for (Pipe &p : _pipes) {
            p.lastIssue = kNoCycle;
            p.busyUntil = 0;
        }
    }

  private:
    struct Pipe
    {
        int cluster;        ///< 0/1 integer clusters, -1 fp
        bool upper;
        bool canAlu;
        bool canMul;
        bool canMem;
        bool canFpAdd;      ///< fp add/div/sqrt pipe
        bool canFpMul;
        Cycle lastIssue = kNoCycle;  ///< pipelined: one issue per cycle
        Cycle busyUntil = 0;         ///< unpipelined occupancy
    };

    bool pipeFits(const Pipe &p, OpClass cls, int cluster,
                  bool slotted_upper, bool slot_restrict) const;
    int findPipe(OpClass cls, int cluster, bool slotted_upper,
                 bool slot_restrict, Cycle now) const;
    static bool unpipelined(OpClass cls);
    static int occupancy(OpClass cls);

    std::vector<Pipe> _pipes;
    bool _wrongMix;
};

} // namespace simalpha

#endif // SIMALPHA_CORE_FU_POOL_HH

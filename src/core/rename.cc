#include "rename.hh"

#include "common/logging.hh"

namespace simalpha {

RenameUnit::RenameUnit(int phys_int, int phys_fp)
    : _totalInt(phys_int), _totalFp(phys_fp),
      _map(kNumIntRegs + kNumFpRegs, kNoPhys)
{
    // Architectural state lives in the first registers of each class;
    // the remainder start on the free lists.
    if (phys_int < kNumIntRegs || phys_fp < kNumFpRegs)
        fatal("need at least %d int / %d fp physical registers",
              kNumIntRegs, kNumFpRegs);
    for (int a = 0; a < kNumIntRegs; a++)
        _map[a] = PhysReg(a);
    for (int a = 0; a < kNumFpRegs; a++)
        _map[kNumIntRegs + a] = PhysReg(_totalInt + a);
    for (int p = kNumIntRegs; p < phys_int; p++)
        _freeInt.push_back(PhysReg(p));
    for (int p = kNumFpRegs; p < phys_fp; p++)
        _freeFp.push_back(PhysReg(_totalInt + p));
}

void
RenameUnit::reset()
{
    // Identical to the constructor body, reusing the vector storage.
    for (int a = 0; a < kNumIntRegs; a++)
        _map[a] = PhysReg(a);
    for (int a = 0; a < kNumFpRegs; a++)
        _map[kNumIntRegs + a] = PhysReg(_totalInt + a);
    _freeInt.clear();
    _freeFp.clear();
    for (int p = kNumIntRegs; p < _totalInt; p++)
        _freeInt.push_back(PhysReg(p));
    for (int p = kNumFpRegs; p < _totalFp; p++)
        _freeFp.push_back(PhysReg(_totalInt + p));
}

PhysReg
RenameUnit::lookup(RegIndex arch) const
{
    sim_assert(arch != kNoReg);
    return _map[arch];
}

PhysReg
RenameUnit::allocate(RegIndex arch, PhysReg &old_phys)
{
    bool fp = isFpRegIndex(arch);
    auto &free_list = fp ? _freeFp : _freeInt;
    if (free_list.empty())
        return kNoPhys;
    PhysReg p = free_list.back();
    free_list.pop_back();
    old_phys = _map[arch];
    _map[arch] = p;
    return p;
}

void
RenameUnit::undo(RegIndex arch, PhysReg phys, PhysReg old_phys)
{
    sim_assert(_map[arch] == phys);
    _map[arch] = old_phys;
    if (isFpPhys(phys))
        _freeFp.push_back(phys);
    else
        _freeInt.push_back(phys);
}

void
RenameUnit::release(PhysReg old_phys)
{
    if (old_phys == kNoPhys)
        return;
    if (isFpPhys(old_phys))
        _freeFp.push_back(old_phys);
    else
        _freeInt.push_back(old_phys);
}

void
RenameUnit::injectMapFlip(std::uint64_t index, std::uint32_t bit,
                          RegIndex *arch, PhysReg *newPhys)
{
    std::size_t a = std::size_t(index % _map.size());
    PhysReg old = _map[a];
    int base = isFpPhys(old) ? _totalInt : 0;
    int count = isFpPhys(old) ? _totalFp : _totalInt;
    // XOR within 7 bits (the widest legal class is < 128 regs), then
    // fold back into the class so the corrupted mapping still names a
    // real physical register of the same kind.
    int rel = (int(old) - base) ^ (1 << (bit % 7));
    _map[a] = PhysReg(base + rel % count);
    if (arch)
        *arch = RegIndex(a);
    if (newPhys)
        *newPhys = _map[a];
}

Scoreboard::Scoreboard(int phys_regs)
    : _state(std::size_t(phys_regs))
{
}

Cycle
Scoreboard::readyAt(PhysReg phys, int cluster) const
{
    sim_assert(phys != kNoPhys);
    if (_state[phys].isPending)
        return kNoCycle;
    return _state[phys].ready[cluster & 1];
}

void
Scoreboard::setReady(PhysReg phys, Cycle ready, int producing_cluster)
{
    State &s = _state[phys];
    s.isPending = false;
    if (producing_cluster < 0) {
        s.ready[0] = s.ready[1] = ready;
    } else {
        s.ready[producing_cluster & 1] = ready;
        s.ready[(producing_cluster & 1) ^ 1] = ready + 1;
    }
}

void
Scoreboard::setPending(PhysReg phys)
{
    _state[phys].isPending = true;
}

void
Scoreboard::setReadyNow(PhysReg phys)
{
    _state[phys].isPending = false;
    _state[phys].ready[0] = 0;
    _state[phys].ready[1] = 0;
}

bool
Scoreboard::pending(PhysReg phys) const
{
    return _state[phys].isPending;
}

} // namespace simalpha

#include "serve/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "common/logging.hh"
#include "runner/journal.hh"
#include "runner/runner.hh"
#include "runner/supervisor.hh"
#include "store/store.hh"

namespace simalpha {
namespace serve {

using Clock = std::chrono::steady_clock;

namespace {

/** Per-connection output high-water mark: a subscriber that cannot
 *  drain this much buffered result data is dead or pathologically
 *  slow, and is dropped so one stuck client cannot grow the daemon's
 *  memory without bound. The campaign keeps running and journaling. */
constexpr std::size_t kMaxConnOutBytes = 4 * 1024 * 1024;

/** Finished jobs whose line buffers stay resident for instant
 *  replay; older ones are evicted (their journals remain on disk, so
 *  a resubmission replays byte-identically, just via the journal). */
constexpr std::size_t kMaxDoneJobsRetained = 8;

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool
ensureDir(const std::string &path, std::string *error)
{
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST)
        return true;
    if (error)
        *error = "cannot create directory '" + path +
                 "': " + std::strerror(errno);
    return false;
}

/** Best-effort blocking-ish write used only for reject-at-accept and
 *  final flushes; regular traffic goes through the buffered path. */
void
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    int spins = 0;
    while (off < data.size() && spins < 1000) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n > 0) {
            off += std::size_t(n);
            continue;
        }
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR)
            return;
        spins++;
        ::usleep(1000);
    }
}

} // namespace

std::string
jobKey(const std::string &campaign, std::uint64_t maxInsts,
       const checkpoint::SampleSpec &sample)
{
    std::string key = campaign;
    key += '\x1f';
    key += std::to_string(maxInsts);
    key += '\x1f';
    if (sample.enabled())
        key += checkpoint::formatSampleSpec(sample);
    return key;
}

std::string
jobIdFromKey(const std::string &key)
{
    return store::ResultStore::keyHash(key);
}

std::string
jobJournalPath(const std::string &storePath, const std::string &jobId)
{
    return storePath + "/serve.d/job-" + jobId + ".journal.jsonl";
}

// ---------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------

struct Server::Job
{
    enum class St { Pending, Running, Done };

    std::string key;
    std::string id;
    std::string campaign;
    runner::CampaignSpec spec;      ///< with cap/sampling applied
    std::uint64_t maxInsts = 0;     ///< as submitted (job identity)
    checkpoint::SampleSpec sample;  ///< as submitted (job identity)
    std::string journalPath;

    St state = St::Pending;
    std::atomic<bool> cancel{false};
    bool cancelled = false;         ///< finished via cancellation
    bool failed = false;            ///< aborted by an exception
    std::string failError;

    /** Verbatim journal-line bytes, in settle order. */
    std::vector<std::string> lines;
    std::size_t okCells = 0;
    std::size_t failedCells = 0;

    int subscribers = 0;
    std::uint64_t doneSeq = 0;      ///< eviction order among Done jobs
};

struct Server::Conn
{
    int fd = -1;
    std::string in;
    std::string out;
    bool closing = false;           ///< flush out, then close
    bool dropped = false;           ///< cut without final flush

    std::shared_ptr<Job> sub;       ///< job this conn streams from
    std::size_t cursor = 0;         ///< job lines already buffered
    bool doneSent = false;

    std::size_t cellsSubmitted = 0; ///< lifetime budget accounting

    /** Sync push in progress: store dump lines still expected (the
     *  per-line cap is kMaxSyncLineBytes while nonzero). */
    std::uint64_t syncRemaining = 0;
    std::uint64_t syncImported = 0;
};

struct Server::State
{
    mutable std::mutex mu;
    std::condition_variable cv;

    std::map<std::string, std::shared_ptr<Job>> jobs;  ///< by key
    std::deque<std::shared_ptr<Job>> pending;
    std::shared_ptr<Job> running;

    bool draining = false;
    bool stopExec = false;
    bool storeDegraded = false;
    std::uint64_t doneCounter = 0;

    ServeStats stats;
};

Server::Server(ServeOptions options)
    : _opts(std::move(options)), _state(new State)
{
}

Server::~Server()
{
    {
        std::lock_guard<std::mutex> lock(_state->mu);
        _state->stopExec = true;
        if (_state->running)
            _state->running->cancel.store(true);
    }
    _state->cv.notify_all();
    if (_executor.joinable())
        _executor.join();
    if (_listenFd >= 0)
        ::close(_listenFd);
    if (_wakeFd[0] >= 0)
        ::close(_wakeFd[0]);
    if (_wakeFd[1] >= 0)
        ::close(_wakeFd[1]);
    if (!_boundAddress.empty() &&
        _boundAddress.rfind("tcp:", 0) != 0)
        ::unlink(_boundAddress.c_str());
}

bool
Server::start(std::string *error)
{
    if (_opts.storePath.empty()) {
        if (error)
            *error = "serve needs a --store directory (results and "
                     "job journals live there)";
        return false;
    }
    if (!ensureDir(_opts.storePath, error) ||
        !ensureDir(_opts.storePath + "/serve.d", error))
        return false;

    if (::pipe(_wakeFd) != 0 || !setNonBlocking(_wakeFd[0]) ||
        !setNonBlocking(_wakeFd[1])) {
        if (error)
            *error = "cannot create the wake pipe";
        return false;
    }

    std::string listen = _opts.listen;
    if (listen.empty())
        listen = _opts.storePath + "/serve.sock";

    if (listen.rfind("tcp:", 0) == 0) {
        std::string host;
        std::uint16_t port = 0;
        if (!parseTcpAddress(listen, &host, &port, error))
            return false;
        const bool hostGiven = listen.find(':', 4) != std::string::npos;
        _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (_listenFd < 0) {
            if (error)
                *error = std::string("cannot create TCP socket: ") +
                         std::strerror(errno);
            return false;
        }
        int one = 1;
        ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
            if (error)
                *error = "cannot bind " + listen + ": '" + host +
                         "' is not an IPv4 address";
            return false;
        }
        addr.sin_port = htons(port);
        if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            if (error)
                *error = "cannot bind " + listen + " (host " + host +
                         ", port " + std::to_string(port) +
                         "): " + std::strerror(errno);
            return false;
        }
        socklen_t len = sizeof(addr);
        ::getsockname(_listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        // Keep the bare "tcp:PORT" spelling when no host was named,
        // so pre-fleet callers see the address shape they passed.
        _boundAddress =
            hostGiven ? "tcp:" + host + ":" +
                            std::to_string(ntohs(addr.sin_port))
                      : "tcp:" + std::to_string(ntohs(addr.sin_port));
    } else {
        sockaddr_un addr{};
        if (listen.size() >= sizeof(addr.sun_path)) {
            if (error)
                *error = "socket path '" + listen +
                         "' exceeds the sockaddr_un limit";
            return false;
        }
        _listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (_listenFd < 0) {
            if (error)
                *error = "cannot create Unix socket";
            return false;
        }
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, listen.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(_listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 &&
            errno == EADDRINUSE) {
            // A leftover socket of a killed daemon, or a live one?
            // Only a live daemon accepts the probe connection.
            int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
            bool live =
                probe >= 0 &&
                ::connect(probe, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0;
            if (probe >= 0)
                ::close(probe);
            if (live) {
                if (error)
                    *error = "another daemon is already serving on " +
                             listen;
                return false;
            }
            ::unlink(listen.c_str());
            if (::bind(_listenFd,
                       reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr)) != 0) {
                if (error)
                    *error = "cannot bind " + listen + ": " +
                             std::strerror(errno);
                return false;
            }
        }
        _boundAddress = listen;
    }

    if (::listen(_listenFd, 16) != 0) {
        if (error)
            *error = std::string("listen failed: ") +
                     std::strerror(errno);
        return false;
    }
    setNonBlocking(_listenFd);

    _startTime = Clock::now();
    _executor = std::thread([this] { executorLoop(); });
    return true;
}

bool
Server::ensureSyncStore(std::string *error)
{
    if (_syncStore && _syncStore->isOpen())
        return true;
    if (!_syncStore)
        _syncStore.reset(new store::ResultStore);
    return _syncStore->open(_opts.storePath, error);
}

void
Server::requestShutdown()
{
    _shutdownRequested.store(true);
    wake();
}

ServeStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(_state->mu);
    return _state->stats;
}

void
Server::wake()
{
    char b = 'w';
    ssize_t n = ::write(_wakeFd[1], &b, 1);
    (void)n;    // a full pipe already guarantees a pending wake-up
}

// ---------------------------------------------------------------
// Executor thread: runs one job at a time off the pending queue.
// ---------------------------------------------------------------

void
Server::executorLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(_state->mu);
            _state->cv.wait_for(
                lock, std::chrono::milliseconds(5), [&] {
                    return _state->stopExec ||
                           !_state->pending.empty();
                });
            if (_state->stopExec)
                return;
            if (_state->pending.empty())
                continue;
            if (_opts.testHoldExecutor &&
                _opts.testHoldExecutor->load())
                continue;
            job = _state->pending.front();
            _state->pending.pop_front();
            if (job->cancel.load()) {
                // Cancelled while queued: settle without running.
                job->state = Job::St::Done;
                job->cancelled = true;
                job->doneSeq = ++_state->doneCounter;
                _state->stats.jobsDone++;
                evictDoneJobsLocked();
                lock.unlock();
                wake();
                continue;
            }
            job->state = Job::St::Running;
            _state->running = job;
        }

        runJob(job);

        {
            std::lock_guard<std::mutex> lock(_state->mu);
            job->state = Job::St::Done;
            job->cancelled = job->cancel.load();
            job->doneSeq = ++_state->doneCounter;
            _state->running.reset();
            _state->stats.jobsDone++;
            evictDoneJobsLocked();
        }
        wake();
    }
}

void
Server::runJob(const std::shared_ptr<Job> &job)
{
    // Every settled cell — computed, store/cache hit, or replayed
    // from the job journal of a killed daemon — lands here as the
    // verbatim line bytes the journal holds, then fans out to every
    // subscriber via the wake pipe.
    auto append = [this, &job](const std::string &line, bool ok,
                               bool served) {
        {
            std::lock_guard<std::mutex> lock(_state->mu);
            job->lines.push_back(line);
            if (ok)
                job->okCells++;
            else
                job->failedCells++;
            if (served)
                _state->stats.cellsServed++;
            else
                _state->stats.cellsComputed++;
        }
        wake();
    };

    try {
        if (_opts.executor) {
            JobWork work;
            work.campaign = job->campaign;
            work.spec = &job->spec;
            work.maxInsts = job->maxInsts;
            work.sample = job->sample;
            work.journalPath = job->journalPath;
            work.storePath = _opts.storePath;
            work.cancel = &job->cancel;
            work.emit = append;
            _opts.executor(work);
        } else if (_opts.isolate == "process") {
            runner::SupervisorOptions so;
            so.campaign = job->campaign;
            so.maxInsts = job->maxInsts;
            so.sample = job->sample;
            so.shards = _opts.shards;
            so.workerBinary = _opts.workerBinary;
            so.storePath = _opts.storePath;
            so.masterJournalPath = job->journalPath;
            so.resume = true;
            so.journalSync = _opts.journalSync;
            so.interruptedAtomic = &job->cancel;
            // Parse with the *derived* spec name: shard:<i>/<n>:<base>
            // jobs journal their lines under the base campaign name.
            so.onLine = [&](const std::string &line) {
                runner::CellResult r;
                std::string key;
                bool ok = runner::parseJournalLine(
                              line, job->spec.name, &r, &key) &&
                          r.ok;
                append(line, ok, false);
            };
            runner::superviseCampaign(so);
        } else {
            runner::RunnerOptions ro;
            ro.jobs = _opts.jobs;
            ro.cache = true;
            ro.storePath = _opts.storePath;
            ro.journalPath = job->journalPath;
            ro.resume = true;
            ro.journalSync = _opts.journalSync;
            ro.cancelAtomic = &job->cancel;
            ro.onCell = [&](const runner::CellResult &r) {
                append(runner::journalLine(job->spec.name, r), r.ok,
                       r.fromJournal || r.fromStore || r.fromCache);
            };
            runner::ExperimentRunner rnr(ro);
            rnr.run(job->spec);
            if (!_opts.storePath.empty() && !rnr.storeOpen()) {
                std::lock_guard<std::mutex> lock(_state->mu);
                _state->storeDegraded = true;
            }
        }
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lock(_state->mu);
        job->failed = true;
        job->failError = e.what();
    }
}

// ---------------------------------------------------------------
// Poll loop (the run() thread owns every socket).
// ---------------------------------------------------------------

void
Server::startDrain()
{
    {
        std::lock_guard<std::mutex> lock(_state->mu);
        if (_state->draining)
            return;
        _state->draining = true;
    }
    _state->cv.notify_all();
}

void
Server::evictDoneJobsLocked()
{
    // Called with _state->mu held. Jobs stay keyed while retained so
    // a resubmission attaches to the in-memory lines; evicted jobs
    // replay from their journal instead — same bytes, slower path.
    for (;;) {
        std::size_t doneFree = 0;
        std::map<std::string, std::shared_ptr<Job>>::iterator oldest =
            _state->jobs.end();
        for (auto it = _state->jobs.begin(); it != _state->jobs.end();
             ++it) {
            Job &j = *it->second;
            if (j.state != Job::St::Done || j.subscribers > 0)
                continue;
            doneFree++;
            if (oldest == _state->jobs.end() ||
                j.doneSeq < oldest->second->doneSeq)
                oldest = it;
        }
        if (doneFree <= kMaxDoneJobsRetained ||
            oldest == _state->jobs.end())
            return;
        _state->jobs.erase(oldest);
    }
}

void
Server::flushConn(Conn &conn)
{
    if (!conn.sub || conn.dropped)
        return;
    bool finished = false;
    {
        std::lock_guard<std::mutex> lock(_state->mu);
        Job &job = *conn.sub;
        while (conn.cursor < job.lines.size()) {
            conn.out += job.lines[conn.cursor];
            conn.out += '\n';
            conn.cursor++;
        }
        if (job.state == Job::St::Done && !conn.doneSent) {
            if (job.failed)
                conn.out +=
                    errorLine("job_failed", job.failError) + "\n";
            conn.out += doneLine(job.campaign, job.id,
                                 job.spec.cells.size(), job.okCells,
                                 job.failedCells,
                                 job.failed      ? "failed"
                                 : job.cancelled ? "cancelled"
                                                 : "complete") +
                        "\n";
            conn.doneSent = true;
            finished = true;
            job.subscribers--;
        }
    }
    if (finished) {
        conn.sub.reset();
        conn.cursor = 0;
        conn.doneSent = false;
    }
    if (conn.out.size() > kMaxConnOutBytes) {
        // A subscriber this far behind is dead or wedged: cut it.
        conn.dropped = true;
        std::lock_guard<std::mutex> lock(_state->mu);
        _state->stats.clientsDropped++;
        if (conn.sub)
            conn.sub->subscribers--;
    }
}

void
Server::handleSubmit(Conn &conn, const Request &req, bool allowRun)
{
    if (conn.sub) {
        conn.out += errorLine("bad_request",
                              "one result stream per connection; "
                              "wait for the done line") +
                    "\n";
        return;
    }

    runner::CampaignSpec spec;
    if (!runner::campaignByName(req.campaign, &spec)) {
        conn.out += errorLine("unknown_campaign",
                              "unknown campaign '" + req.campaign +
                                  "' (table2..table5, smoke, a "
                                  "vuln:... spec, or a "
                                  "shard:<i>/<n>:<base> slice)") +
                    "\n";
        return;
    }
    checkpoint::SampleSpec sample;
    if (!req.sample.empty()) {
        std::string serror;
        if (!checkpoint::parseSampleSpec(req.sample, &sample,
                                         &serror)) {
            conn.out +=
                errorLine("bad_request", "sample: " + serror) + "\n";
            return;
        }
    }
    if (req.maxInsts)
        spec = spec.withMaxInsts(req.maxInsts);
    if (sample.enabled())
        spec = spec.withSampling(sample);

    const std::string key = jobKey(req.campaign, req.maxInsts, sample);
    const std::string id = jobIdFromKey(key);
    const std::size_t cells = spec.cells.size();
    // Journal lines of a shard:<i>/<n>:<base> job carry the *base*
    // campaign name — parse replays with the derived spec name, not
    // the submitted one.
    const std::string lineCampaign = spec.name;

    if (_opts.maxCellsPerCampaign &&
        cells > _opts.maxCellsPerCampaign) {
        std::lock_guard<std::mutex> lock(_state->mu);
        _state->stats.budgetRejections++;
        conn.out +=
            errorLine("budget",
                      "campaign has " + std::to_string(cells) +
                          " cells; this daemon accepts at most " +
                          std::to_string(_opts.maxCellsPerCampaign) +
                          " per submission") +
            "\n";
        return;
    }
    if (_opts.maxClientCells &&
        conn.cellsSubmitted + cells > _opts.maxClientCells) {
        std::lock_guard<std::mutex> lock(_state->mu);
        _state->stats.budgetRejections++;
        conn.out +=
            errorLine("budget",
                      "client cell budget exhausted (" +
                          std::to_string(conn.cellsSubmitted) + " of " +
                          std::to_string(_opts.maxClientCells) +
                          " used; campaign needs " +
                          std::to_string(cells) + " more)") +
            "\n";
        return;
    }

    std::shared_ptr<Job> job;
    std::size_t pendingAhead = 0;
    {
        std::lock_guard<std::mutex> lock(_state->mu);
        auto it = _state->jobs.find(key);
        if (it != _state->jobs.end()) {
            job = it->second;
            _state->stats.attaches++;
        } else if (!allowRun) {
            job = nullptr;      // results op never starts work
        } else if (_state->draining) {
            conn.out += errorLine("draining",
                                  "daemon is draining; no new "
                                  "submissions") +
                        "\n";
            return;
        } else if (_state->pending.size() >= _opts.maxPending) {
            _state->stats.busyRejections++;
            conn.out +=
                errorLine("busy",
                          "submission queue is full (" +
                              std::to_string(_state->pending.size()) +
                              " pending); retry with backoff") +
                "\n";
            return;
        } else {
            job = std::make_shared<Job>();
            job->key = key;
            job->id = id;
            job->campaign = req.campaign;
            job->spec = std::move(spec);
            job->maxInsts = req.maxInsts;
            job->sample = sample;
            job->journalPath =
                jobJournalPath(_opts.storePath, id);
            _state->jobs[key] = job;
            _state->pending.push_back(job);
            pendingAhead = _state->pending.size() - 1;
            _state->stats.submits++;
        }
        if (job) {
            job->subscribers++;
            conn.cellsSubmitted += cells;
        }
    }

    if (job) {
        _state->cv.notify_all();
        conn.sub = job;
        conn.cursor = 0;
        conn.doneSent = false;
        conn.out += acceptedLine(req.campaign, id, cells,
                                 pendingAhead) +
                    "\n";
        flushConn(conn);        // done jobs replay instantly
        return;
    }

    // results op, no live job: replay the on-disk journal if one
    // exists — the warm path of a restarted daemon.
    const std::string path = jobJournalPath(_opts.storePath, id);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        conn.out += errorLine("not_found",
                              "no results for this submission (job " +
                                  id + "); submit it first") +
                    "\n";
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string data = buf.str();
    std::size_t ok = 0, bad = 0, pos = 0;
    std::string out;
    while (pos < data.size()) {
        std::size_t nl = data.find('\n', pos);
        if (nl == std::string::npos)
            break;      // torn tail: not a settled cell
        std::string line = data.substr(pos, nl - pos);
        pos = nl + 1;
        runner::CellResult r;
        std::string k;
        if (!runner::parseJournalLine(line, lineCampaign, &r, &k))
            continue;   // heartbeat / other campaign
        out += line;
        out += '\n';
        if (r.ok)
            ok++;
        else
            bad++;
    }
    conn.out += acceptedLine(req.campaign, id, cells, 0) + "\n";
    conn.out += out;
    conn.out += doneLine(req.campaign, id, cells, ok, bad,
                         ok + bad >= cells ? "complete" : "partial") +
                "\n";
}

void
Server::handleSync(Conn &conn, const Request &req)
{
    if (req.mode == "pull") {
        std::string serror;
        if (!ensureSyncStore(&serror)) {
            conn.out += errorLine("job_failed",
                                  "store unavailable: " + serror) +
                        "\n";
            return;
        }
        store::ExportFilter filter;
        filter.newerThanSeconds = double(req.newerThan);
        std::uint64_t exported = 0;
        if (!_syncStore->exportLines(
                filter,
                [&](const std::string &dump) {
                    conn.out += dump;
                    conn.out += '\n';
                    return true;
                },
                &exported, &serror)) {
            conn.out += errorLine("job_failed",
                                  "sync pull failed: " + serror) +
                        "\n";
            return;
        }
        conn.out += syncedLine("pull", exported) + "\n";
        return;
    }
    if (req.mode == "push") {
        if (req.entries == 0) {
            conn.out += syncedLine("push", 0) + "\n";
            return;
        }
        // The next req.entries lines on this connection are store
        // dump lines, not requests (and get the sync line cap).
        conn.syncRemaining = req.entries;
        conn.syncImported = 0;
        return;
    }
    std::lock_guard<std::mutex> lock(_state->mu);
    _state->stats.badRequests++;
    conn.out += errorLine("bad_request",
                          "sync needs mode \"pull\" or \"push\"") +
                "\n";
}

void
Server::handleSyncEntry(Conn &conn, const std::string &line)
{
    conn.syncRemaining--;
    std::string key, payload;
    std::string serror;
    if (store::ResultStore::parseExportLine(line, &key, &payload) &&
        ensureSyncStore(&serror) &&
        _syncStore->publish(key, payload, nullptr))
        conn.syncImported++;
    if (conn.syncRemaining == 0) {
        conn.out += syncedLine("push", conn.syncImported) + "\n";
        conn.syncImported = 0;
    }
}

void
Server::handleLine(Conn &conn, const std::string &line)
{
    if (conn.syncRemaining > 0) {
        handleSyncEntry(conn, line);
        return;
    }
    Request req;
    std::string perror;
    if (!parseRequest(line, &req, &perror)) {
        std::lock_guard<std::mutex> lock(_state->mu);
        _state->stats.badRequests++;
        conn.out += errorLine("bad_request", perror) + "\n";
        return;
    }

    if (req.op == "hello") {
        conn.out += helloLine(_opts.storePath, _opts.maxPending,
                              _opts.maxClients) +
                    "\n";
        return;
    }
    if (req.op == "health") {
        HealthSnapshot h;
        {
            std::lock_guard<std::mutex> lock(_state->mu);
            h.draining = _state->draining;
            h.storeDegraded = _state->storeDegraded;
            h.jobsPending = _state->pending.size();
            h.jobRunning = _state->running != nullptr;
            h.jobsDone = _state->stats.jobsDone;
            h.cellsComputed = _state->stats.cellsComputed;
            h.cellsServed = _state->stats.cellsServed;
            h.busyRejections = _state->stats.busyRejections;
        }
        h.clients = _clients;
        h.pid = std::uint64_t(::getpid());
        h.uptimeSeconds = std::uint64_t(
            std::chrono::duration_cast<std::chrono::seconds>(
                Clock::now() - _startTime)
                .count());
        h.storePath = _opts.storePath;
        conn.out += healthLine(h) + "\n";
        return;
    }
    if (req.op == "capabilities") {
        Capabilities caps;
        caps.storePath = _opts.storePath;
        caps.isolate = _opts.isolate;
        caps.maxPending = _opts.maxPending;
        caps.maxClients = _opts.maxClients;
        caps.maxCellsPerCampaign = _opts.maxCellsPerCampaign;
        caps.maxClientCells = _opts.maxClientCells;
        conn.out += capabilitiesLine(caps) + "\n";
        return;
    }
    if (req.op == "sync") {
        handleSync(conn, req);
        return;
    }
    if (req.op == "shutdown") {
        conn.out += drainingLine() + "\n";
        startDrain();
        return;
    }
    if (req.op == "submit" || req.op == "results") {
        if (req.campaign.empty()) {
            std::lock_guard<std::mutex> lock(_state->mu);
            _state->stats.badRequests++;
            conn.out += errorLine("bad_request",
                                  req.op + " needs a campaign") +
                        "\n";
            return;
        }
        handleSubmit(conn, req, req.op == "submit");
        return;
    }
    if (req.op == "status" || req.op == "cancel") {
        if (req.campaign.empty()) {
            std::lock_guard<std::mutex> lock(_state->mu);
            _state->stats.badRequests++;
            conn.out += errorLine("bad_request",
                                  req.op + " needs a campaign") +
                        "\n";
            return;
        }
        checkpoint::SampleSpec sample;
        std::string serror;
        if (!req.sample.empty() &&
            !checkpoint::parseSampleSpec(req.sample, &sample,
                                         &serror)) {
            conn.out +=
                errorLine("bad_request", "sample: " + serror) + "\n";
            return;
        }
        const std::string key =
            jobKey(req.campaign, req.maxInsts, sample);
        const std::string id = jobIdFromKey(key);

        std::shared_ptr<Job> job;
        {
            std::lock_guard<std::mutex> lock(_state->mu);
            auto it = _state->jobs.find(key);
            if (it != _state->jobs.end())
                job = it->second;
        }
        if (req.op == "cancel") {
            if (!job) {
                conn.out += errorLine("not_found",
                                      "no live job for this "
                                      "submission (job " +
                                          id + ")") +
                            "\n";
                return;
            }
            job->cancel.store(true);
            _state->cv.notify_all();
            conn.out += cancellingLine(req.campaign, id) + "\n";
            return;
        }
        // status
        if (job) {
            std::lock_guard<std::mutex> lock(_state->mu);
            const char *state =
                job->state == Job::St::Pending   ? "pending"
                : job->state == Job::St::Running ? "running"
                : job->failed                    ? "failed"
                : job->cancelled                 ? "cancelled"
                                                 : "done";
            conn.out += statusLine(req.campaign, id, state,
                                   job->lines.size(),
                                   job->spec.cells.size()) +
                        "\n";
            return;
        }
        runner::CampaignSpec spec;
        std::size_t cells = 0;
        std::string lineCampaign = req.campaign;
        if (runner::campaignByName(req.campaign, &spec)) {
            if (req.maxInsts)
                spec = spec.withMaxInsts(req.maxInsts);
            if (sample.enabled())
                spec = spec.withSampling(sample);
            cells = spec.cells.size();
            lineCampaign = spec.name;   // shard jobs journal the base
        }
        std::ifstream in(jobJournalPath(_opts.storePath, id),
                         std::ios::binary);
        if (!in) {
            conn.out += statusLine(req.campaign, id, "absent", 0,
                                   cells) +
                        "\n";
            return;
        }
        std::size_t settled = 0;
        std::string jline;
        while (std::getline(in, jline)) {
            runner::CellResult r;
            std::string k;
            if (runner::parseJournalLine(jline, lineCampaign, &r, &k))
                settled++;
        }
        conn.out += statusLine(req.campaign, id, "journal", settled,
                               cells) +
                    "\n";
        return;
    }

    {
        std::lock_guard<std::mutex> lock(_state->mu);
        _state->stats.badRequests++;
    }
    conn.out += errorLine("bad_request",
                          "unknown op '" + req.op +
                              "' (hello, submit, results, status, "
                              "cancel, health, capabilities, sync, "
                              "shutdown)") +
                "\n";
}

int
Server::run()
{
    std::vector<std::unique_ptr<Conn>> conns;
    bool drainDeadlineArmed = false;
    bool drainCancelIssued = false;
    Clock::time_point drainDeadline;

    auto dropConn = [&](Conn &conn) {
        if (conn.sub && !conn.dropped) {
            std::lock_guard<std::mutex> lock(_state->mu);
            conn.sub->subscribers--;
        }
        conn.sub.reset();
        if (conn.fd >= 0)
            ::close(conn.fd);
        conn.fd = -1;
    };

    for (;;) {
        if ((_opts.interrupted && *_opts.interrupted) ||
            _shutdownRequested.load())
            startDrain();

        bool draining, idle;
        {
            std::lock_guard<std::mutex> lock(_state->mu);
            draining = _state->draining;
            idle = _state->pending.empty() && !_state->running;
        }
        if (draining) {
            if (!drainDeadlineArmed) {
                drainDeadlineArmed = true;
                drainDeadline =
                    Clock::now() +
                    std::chrono::microseconds(long(
                        std::max(_opts.drainTimeoutSeconds, 0.0) *
                        1e6));
            }
            if (!drainCancelIssued &&
                Clock::now() >= drainDeadline) {
                // Deadline: cancel everything still queued/running;
                // settled cells are already journaled, so nothing a
                // resume cannot recover is lost.
                drainCancelIssued = true;
                std::lock_guard<std::mutex> lock(_state->mu);
                for (auto &kv : _state->jobs)
                    kv.second->cancel.store(true);
                for (auto &j : _state->pending)
                    j->cancel.store(true);
            }
            bool flushed = true;
            for (auto &c : conns)
                if (c->fd >= 0 && !c->out.empty() && !c->dropped)
                    flushed = false;
            if (idle && flushed)
                break;
        }

        std::vector<pollfd> fds;
        fds.push_back({_listenFd, POLLIN, 0});
        fds.push_back({_wakeFd[0], POLLIN, 0});
        for (auto &c : conns) {
            short events = POLLIN;
            if (!c->out.empty() && !c->dropped)
                events |= POLLOUT;
            fds.push_back({c->fd, events, 0});
        }

        int rc = ::poll(fds.data(), nfds_t(fds.size()), 50);
        if (rc < 0 && errno != EINTR)
            return 1;

        if (fds[1].revents & POLLIN) {
            char buf[256];
            while (::read(_wakeFd[0], buf, sizeof(buf)) > 0) {
            }
        }

        // New result lines / finished jobs → every subscriber.
        for (auto &c : conns)
            if (c->fd >= 0)
                flushConn(*c);

        // Connections accepted below are not in this iteration's
        // pollfd set; only the first nPolled were polled.
        const std::size_t nPolled = conns.size();

        if (fds[0].revents & POLLIN) {
            for (;;) {
                int fd = ::accept(_listenFd, nullptr, nullptr);
                if (fd < 0)
                    break;
                setNonBlocking(fd);
                bool drainingNow;
                {
                    std::lock_guard<std::mutex> lock(_state->mu);
                    drainingNow = _state->draining;
                }
                if (drainingNow) {
                    writeAll(fd, drainingLine() + "\n");
                    ::close(fd);
                    continue;
                }
                if (conns.size() >= _opts.maxClients) {
                    {
                        std::lock_guard<std::mutex> lock(_state->mu);
                        _state->stats.busyRejections++;
                    }
                    writeAll(fd,
                             errorLine("busy",
                                       "client limit reached; retry "
                                       "with backoff") +
                                 "\n");
                    ::close(fd);
                    continue;
                }
                auto conn = std::make_unique<Conn>();
                conn->fd = fd;
                conns.push_back(std::move(conn));
                _clients = conns.size();
            }
        }

        for (std::size_t i = 0; i < nPolled; i++) {
            Conn &conn = *conns[i];
            short revents = fds[2 + i].revents;
            if (conn.fd < 0)
                continue;
            if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
                dropConn(conn);
                continue;
            }
            if ((revents & POLLIN) && !conn.closing) {
                char buf[4096];
                for (;;) {
                    ssize_t n = ::read(conn.fd, buf, sizeof(buf));
                    if (n > 0) {
                        conn.in.append(buf, std::size_t(n));
                        const std::size_t cap =
                            conn.syncRemaining ? kMaxSyncLineBytes
                                               : kMaxLineBytes;
                        if (conn.in.size() > cap &&
                            conn.in.find('\n') ==
                                std::string::npos) {
                            conn.out +=
                                errorLine("bad_request",
                                          "request line exceeds "
                                          "the per-line byte cap") +
                                "\n";
                            conn.closing = true;
                            conn.in.clear();
                            break;
                        }
                        continue;
                    }
                    if (n == 0) {
                        conn.closing = true;   // peer sent EOF
                        break;
                    }
                    if (errno == EAGAIN || errno == EWOULDBLOCK ||
                        errno == EINTR)
                        break;
                    dropConn(conn);
                    break;
                }
                if (conn.fd < 0)
                    continue;
                std::size_t pos;
                while ((pos = conn.in.find('\n')) !=
                       std::string::npos) {
                    std::string line = conn.in.substr(0, pos);
                    conn.in.erase(0, pos + 1);
                    if (!line.empty() && line.back() == '\r')
                        line.pop_back();
                    if (line.empty())
                        continue;
                    handleLine(conn, line);
                }
            }
            if ((revents & POLLOUT) || !conn.out.empty()) {
                while (!conn.out.empty()) {
                    ssize_t n = ::write(conn.fd, conn.out.data(),
                                        conn.out.size());
                    if (n > 0) {
                        conn.out.erase(0, std::size_t(n));
                        continue;
                    }
                    if (n < 0 && (errno == EAGAIN ||
                                  errno == EWOULDBLOCK ||
                                  errno == EINTR))
                        break;
                    dropConn(conn);
                    break;
                }
            }
            if (conn.fd >= 0 && conn.dropped)
                dropConn(conn);
            if (conn.fd >= 0 && conn.closing && conn.out.empty() &&
                !conn.sub)
                dropConn(conn);
        }

        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const std::unique_ptr<Conn> &c) {
                                       return c->fd < 0;
                                   }),
                    conns.end());
        _clients = conns.size();
    }

    // Drained: best-effort flush of whatever is still buffered, then
    // tear down.
    for (auto &c : conns) {
        if (c->fd >= 0 && !c->out.empty() && !c->dropped)
            writeAll(c->fd, c->out);
        dropConn(*c);
    }
    return 0;
}

} // namespace serve
} // namespace simalpha

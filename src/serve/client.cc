#include "serve/client.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "checkpoint/checkpoint.hh"
#include "runner/artifacts.hh"
#include "runner/campaign.hh"
#include "runner/journal.hh"
#include "serve/proto.hh"

namespace simalpha {
namespace serve {

using Clock = std::chrono::steady_clock;

namespace {

double
remainingSeconds(Clock::time_point deadline, bool hasDeadline)
{
    if (!hasDeadline)
        return -1.0;    // poll() "forever"
    return std::chrono::duration<double>(deadline - Clock::now())
        .count();
}

/**
 * Connect to a Unix-socket path or a tcp:[HOST:]PORT address, bounded
 * by the earlier of the per-attempt deadline and the connect timeout.
 * The connect itself runs non-blocking so an unreachable (black-holed)
 * host reports "timed out connecting" instead of hanging; the returned
 * descriptor is switched back to blocking for the request exchange.
 */
int
connectTo(const std::string &where, Clock::time_point deadline,
          bool hasDeadline, double connectTimeoutSeconds,
          std::string *error)
{
    sockaddr_storage ss{};
    socklen_t slen = 0;
    int family = AF_UNIX;
    if (where.rfind("tcp:", 0) == 0) {
        std::string host;
        std::uint16_t port = 0;
        if (!parseTcpAddress(where, &host, &port, error))
            return -1;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
            *error = "cannot connect to " + where + ": '" + host +
                     "' is not an IPv4 address";
            return -1;
        }
        addr.sin_port = htons(port);
        std::memcpy(&ss, &addr, sizeof(addr));
        slen = sizeof(addr);
        family = AF_INET;
    } else {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (where.size() >= sizeof(addr.sun_path)) {
            *error = "cannot connect to '" + where +
                     "': socket path exceeds the sockaddr_un limit";
            return -1;
        }
        std::strncpy(addr.sun_path, where.c_str(),
                     sizeof(addr.sun_path) - 1);
        std::memcpy(&ss, &addr, sizeof(addr));
        slen = sizeof(addr);
    }

    int fd = ::socket(family, SOCK_STREAM, 0);
    if (fd < 0) {
        *error = std::string("cannot create socket: ") +
                 std::strerror(errno);
        return -1;
    }

    Clock::time_point connectDeadline = deadline;
    bool hasConnectDeadline = hasDeadline;
    if (connectTimeoutSeconds > 0.0) {
        Clock::time_point t =
            Clock::now() + std::chrono::microseconds(
                               long(connectTimeoutSeconds * 1e6));
        if (!hasConnectDeadline || t < connectDeadline)
            connectDeadline = t;
        hasConnectDeadline = true;
    }

    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr *>(&ss), slen);
    if (rc != 0 && errno != EINPROGRESS && errno != EAGAIN) {
        *error = "cannot connect to " + where + ": " +
                 std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (rc != 0) {
        for (;;) {
            int timeoutMs = -1;
            if (hasConnectDeadline) {
                double remain = std::chrono::duration<double>(
                                    connectDeadline - Clock::now())
                                    .count();
                if (remain <= 0.0) {
                    *error = "timed out connecting to " + where;
                    ::close(fd);
                    return -1;
                }
                timeoutMs = int(remain * 1000.0) + 1;
            }
            pollfd pfd{fd, POLLOUT, 0};
            int prc = ::poll(&pfd, 1, timeoutMs);
            if (prc > 0)
                break;
            if (prc == 0) {
                *error = "timed out connecting to " + where;
                ::close(fd);
                return -1;
            }
            if (errno != EINTR) {
                *error = std::string("poll failed: ") +
                         std::strerror(errno);
                ::close(fd);
                return -1;
            }
        }
        int soError = 0;
        socklen_t elen = sizeof(soError);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &elen);
        if (soError != 0) {
            *error = "cannot connect to " + where + ": " +
                     std::strerror(soError);
            ::close(fd);
            return -1;
        }
    }
    ::fcntl(fd, F_SETFL, flags);
    return fd;
}

bool
sendAll(int fd, const std::string &data, std::string *error)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            *error = std::string("send failed: ") +
                     std::strerror(errno);
            return false;
        }
        off += std::size_t(n);
    }
    return true;
}

/** Read one '\n'-terminated line (buffered in *carry). Returns 1 on
 *  a line, 0 on orderly EOF with nothing buffered, -1 on error or
 *  timeout (with *error filled). */
int
readLine(int fd, std::string *carry, std::string *line,
         Clock::time_point deadline, bool hasDeadline,
         std::string *error, std::size_t maxLineBytes = kMaxLineBytes)
{
    for (;;) {
        std::size_t pos = carry->find('\n');
        if (pos != std::string::npos) {
            *line = carry->substr(0, pos);
            carry->erase(0, pos + 1);
            return 1;
        }
        if (carry->size() > maxLineBytes) {
            *error = "reply line exceeds the per-line byte cap";
            return -1;
        }
        double remain = remainingSeconds(deadline, hasDeadline);
        if (hasDeadline && remain <= 0.0) {
            *error = "timed out waiting for the daemon";
            return -1;
        }
        pollfd pfd{fd, POLLIN, 0};
        int timeoutMs =
            hasDeadline ? int(remain * 1000.0) + 1 : -1;
        int rc = ::poll(&pfd, 1, timeoutMs);
        if (rc == 0) {
            *error = "timed out waiting for the daemon";
            return -1;
        }
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            *error = std::string("poll failed: ") +
                     std::strerror(errno);
            return -1;
        }
        char buf[4096];
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            carry->append(buf, std::size_t(n));
            continue;
        }
        if (n == 0) {
            if (carry->empty())
                return 0;
            *error = "connection closed mid-line";
            return -1;
        }
        if (errno == EINTR)
            continue;
        *error = std::string("read failed: ") + std::strerror(errno);
        return -1;
    }
}

std::string
submitLine(const std::string &op, const std::string &campaign,
           std::uint64_t maxInsts, const std::string &sample)
{
    std::ostringstream os;
    os << "{\"op\":\"" << op << "\",\"campaign\":\""
       << runner::jsonEscape(campaign) << "\"";
    if (maxInsts)
        os << ",\"max_insts\":" << maxInsts;
    if (!sample.empty())
        os << ",\"sample\":\"" << runner::jsonEscape(sample) << "\"";
    os << "}";
    return os.str();
}

} // namespace

double
retryBackoffSeconds(double baseSeconds, int attempt,
                    std::uint64_t seed)
{
    if (attempt < 0)
        attempt = 0;
    if (attempt > 30)
        attempt = 30;
    double delay =
        baseSeconds * double(std::uint64_t(1) << attempt);
    std::uint64_t z =
        seed * 0x9E3779B97F4A7C15ULL + std::uint64_t(attempt);
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    double unit = double(z >> 11) * (1.0 / 9007199254740992.0);
    return delay * (0.75 + 0.5 * unit);
}

SubmitOutcome
submitCampaign(const ClientOptions &options,
               const std::string &campaign, std::uint64_t maxInsts,
               const std::string &sample, bool resultsOnly,
               const std::function<void(const std::string &)> &onLine)
{
    SubmitOutcome out;
    const std::string request =
        submitLine(resultsOnly ? "results" : "submit", campaign,
                   maxInsts, sample) +
        "\n";

    for (int attempt = 0;; attempt++) {
        bool retryable = false;
        std::string aerror;

        if (attempt > 0) {
            double delay = retryBackoffSeconds(
                options.backoffSeconds, attempt - 1, options.seed);
            std::this_thread::sleep_for(
                std::chrono::microseconds(long(delay * 1e6)));
        }

        const bool hasDeadline = options.timeoutSeconds > 0.0;
        Clock::time_point deadline =
            Clock::now() + std::chrono::microseconds(
                               long(options.timeoutSeconds * 1e6));

        out.attempts++;
        out.lines.clear();
        out.doneStrings.clear();
        out.doneNumbers.clear();
        out.errorCode.clear();

        int fd = connectTo(options.connect, deadline, hasDeadline,
                           options.connectTimeoutSeconds, &aerror);
        if (fd < 0) {
            retryable = true;   // daemon restarting, stale socket
        } else if (!sendAll(fd, request, &aerror)) {
            retryable = true;
            ::close(fd);
            fd = -1;
        }

        bool finished = false;
        std::string carry, line;
        while (fd >= 0 && !finished) {
            int rc = readLine(fd, &carry, &line, deadline,
                              hasDeadline, &aerror);
            if (rc <= 0) {
                // EOF or timeout mid-stream: the daemon died or
                // drained under us. The journal has everything that
                // settled; resubmission replays it byte-identically.
                if (rc == 0)
                    aerror = "connection closed mid-stream";
                retryable = true;
                break;
            }
            if (!isServeLine(line)) {
                out.lines.push_back(line);
                if (onLine)
                    onLine(line);
                continue;
            }
            std::map<std::string, std::string> strings;
            std::map<std::string, std::uint64_t> numbers;
            if (!parseServeLine(line, &strings, &numbers)) {
                aerror = "unparseable control line from the daemon";
                retryable = true;
                break;
            }
            const std::string &event = strings["event"];
            if (event == "accepted")
                continue;
            if (event == "done") {
                out.doneStrings = std::move(strings);
                out.doneNumbers = std::move(numbers);
                out.ok = true;
                finished = true;
                continue;
            }
            if (event == "error") {
                out.errorCode = strings["code"];
                aerror = strings["message"];
                // busy is the only protocol-level retryable error:
                // backoff is exactly what the daemon asked for.
                retryable = out.errorCode == "busy";
                break;
            }
            if (event == "draining") {
                out.errorCode = "draining";
                aerror = "daemon is draining";
                retryable = false;
                break;
            }
            // Unknown control events are ignorable (forward compat).
        }
        if (fd >= 0)
            ::close(fd);

        if (finished)
            return out;
        if (!retryable || attempt >= options.maxRetries) {
            out.ok = false;
            out.error = aerror.empty() ? "submission failed" : aerror;
            return out;
        }
    }
}

bool
requestOnce(const ClientOptions &options,
            const std::string &requestLine, std::string *reply,
            std::string *error)
{
    const bool hasDeadline = options.timeoutSeconds > 0.0;
    Clock::time_point deadline =
        Clock::now() + std::chrono::microseconds(
                           long(options.timeoutSeconds * 1e6));
    int fd = connectTo(options.connect, deadline, hasDeadline,
                       options.connectTimeoutSeconds, error);
    if (fd < 0)
        return false;
    if (!sendAll(fd, requestLine + "\n", error)) {
        ::close(fd);
        return false;
    }
    std::string carry;
    int rc =
        readLine(fd, &carry, reply, deadline, hasDeadline, error);
    ::close(fd);
    if (rc == 1)
        return true;
    if (rc == 0 && error)
        *error = "daemon closed the connection without replying";
    return false;
}

bool
linesToResult(const std::string &campaign, std::uint64_t maxInsts,
              const std::string &sample,
              const std::vector<std::string> &lines,
              runner::CampaignResult *out, std::string *error)
{
    runner::CampaignSpec spec;
    if (!runner::campaignByName(campaign, &spec)) {
        if (error)
            *error = "unknown campaign '" + campaign + "'";
        return false;
    }
    if (maxInsts)
        spec = spec.withMaxInsts(maxInsts);
    if (!sample.empty()) {
        checkpoint::SampleSpec s;
        std::string serror;
        if (!checkpoint::parseSampleSpec(sample, &s, &serror)) {
            if (error)
                *error = "sample: " + serror;
            return false;
        }
        spec = spec.withSampling(s);
    }

    std::unordered_map<std::string, runner::CellResult> byKey;
    for (const std::string &line : lines) {
        runner::CellResult r;
        std::string key;
        if (runner::parseJournalLine(line, spec.name, &r, &key))
            byKey[key] = std::move(r);
    }

    out->campaign = spec.name;
    out->cells.assign(spec.cells.size(), runner::CellResult());
    for (std::size_t i = 0; i < spec.cells.size(); i++) {
        auto it = byKey.find(runner::journalKey(spec.cells[i]));
        if (it == byKey.end()) {
            if (error)
                *error = "stream has no result for cell '" +
                         spec.cells[i].workload + "' on '" +
                         spec.cells[i].machine + "'";
            return false;
        }
        runner::CellResult r = it->second;
        r.cell = spec.cells[i];
        out->cells[i] = std::move(r);
    }
    return true;
}

namespace {

/** Shared tail of the sync ops: read until the daemon's `synced`
 *  control line, handing every non-control line to @p onDump. */
bool
readUntilSynced(int fd, Clock::time_point deadline, bool hasDeadline,
                const std::function<void(const std::string &)> &onDump,
                std::uint64_t *reported, std::string *error)
{
    std::string carry, line;
    for (;;) {
        int rc = readLine(fd, &carry, &line, deadline, hasDeadline,
                          error, kMaxSyncLineBytes);
        if (rc == 0) {
            if (error)
                *error = "connection closed before the synced line";
            return false;
        }
        if (rc < 0)
            return false;
        if (!isServeLine(line)) {
            if (onDump)
                onDump(line);
            continue;
        }
        std::map<std::string, std::string> strings;
        std::map<std::string, std::uint64_t> numbers;
        if (!parseServeLine(line, &strings, &numbers)) {
            if (error)
                *error = "unparseable control line from the daemon";
            return false;
        }
        const std::string &event = strings["event"];
        if (event == "synced") {
            if (reported)
                *reported = numbers["entries"];
            return true;
        }
        if (event == "error") {
            if (error)
                *error = strings["message"];
            return false;
        }
        // Other control events are ignorable (forward compat).
    }
}

} // namespace

bool
syncPull(const ClientOptions &options, store::ResultStore *into,
         std::uint64_t newerThanSeconds, std::uint64_t *pulled,
         std::string *error)
{
    if (!into || !into->isOpen()) {
        if (error)
            *error = "sync pull needs an open local store";
        return false;
    }
    const bool hasDeadline = options.timeoutSeconds > 0.0;
    Clock::time_point deadline =
        Clock::now() + std::chrono::microseconds(
                           long(options.timeoutSeconds * 1e6));
    int fd = connectTo(options.connect, deadline, hasDeadline,
                       options.connectTimeoutSeconds, error);
    if (fd < 0)
        return false;
    std::ostringstream req;
    req << "{\"op\":\"sync\",\"mode\":\"pull\"";
    if (newerThanSeconds)
        req << ",\"newer_than\":" << newerThanSeconds;
    req << "}\n";
    if (!sendAll(fd, req.str(), error)) {
        ::close(fd);
        return false;
    }
    std::uint64_t published = 0;
    bool ok = readUntilSynced(
        fd, deadline, hasDeadline,
        [&](const std::string &dump) {
            std::string key, payload;
            if (store::ResultStore::parseExportLine(dump, &key,
                                                    &payload) &&
                into->publish(key, payload, nullptr))
                published++;
        },
        nullptr, error);
    ::close(fd);
    if (ok && pulled)
        *pulled = published;
    return ok;
}

bool
syncPush(const ClientOptions &options, const store::ResultStore &from,
         const store::ExportFilter &filter, std::uint64_t *pushed,
         std::string *error)
{
    // The push request announces the entry count up front, so the
    // walk collects first (a racing publisher changing the store
    // between a counting pass and a sending pass would desync the
    // framing otherwise).
    std::vector<std::string> dumps;
    if (!from.exportLines(
            filter,
            [&](const std::string &line) {
                dumps.push_back(line);
                return true;
            },
            nullptr, error))
        return false;

    const bool hasDeadline = options.timeoutSeconds > 0.0;
    Clock::time_point deadline =
        Clock::now() + std::chrono::microseconds(
                           long(options.timeoutSeconds * 1e6));
    int fd = connectTo(options.connect, deadline, hasDeadline,
                       options.connectTimeoutSeconds, error);
    if (fd < 0)
        return false;
    std::string payload = "{\"op\":\"sync\",\"mode\":\"push\","
                          "\"entries\":" +
                          std::to_string(dumps.size()) + "}\n";
    for (const std::string &dump : dumps) {
        payload += dump;
        payload += '\n';
    }
    bool ok = sendAll(fd, payload, error) &&
              readUntilSynced(fd, deadline, hasDeadline, nullptr,
                              pushed, error);
    ::close(fd);
    return ok;
}

} // namespace serve
} // namespace simalpha

/**
 * @file
 * The `serve` rows of `simalpha bench`: the capped Table-3 campaign
 * measured end-to-end through the service — daemon on a private temp
 * store, client submit over a Unix socket, wall clock from submit to
 * done line — first cold (every cell computes), then warm (the job
 * journal is cleared so every cell is served from the now-populated
 * store, still through the whole socket round trip).
 *
 * Lives in sim_serve (above the runner); the runner's bench harness
 * reaches it through runner::setServeBenchHook, wired by the driver.
 */

#ifndef SIMALPHA_SERVE_SERVEBENCH_HH
#define SIMALPHA_SERVE_SERVEBENCH_HH

#include <cstdint>
#include <string>

#include "runner/perfbench.hh"

namespace simalpha {
namespace serve {

/** runner::ServeBenchFn implementation. False with *error filled if
 *  the daemon cannot start or a cell fails. */
bool measureServeBench(std::uint64_t maxInsts,
                       runner::PerfPath *cold, runner::PerfPath *warm,
                       std::string *error);

} // namespace serve
} // namespace simalpha

#endif // SIMALPHA_SERVE_SERVEBENCH_HH

#include "serve/servebench.hh"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include <chrono>
#include <thread>

#include "runner/journal.hh"
#include "serve/client.hh"
#include "serve/server.hh"

namespace simalpha {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

/** One timed submit of capped table3 through a running daemon.
 *  insts = committed instructions the returned lines carry, so the
 *  resulting ips is comparable with the other bench rows. */
bool
timedSubmit(const std::string &address, std::uint64_t maxInsts,
            runner::PerfPath *out, std::string *error)
{
    ClientOptions copts;
    copts.connect = address;
    copts.maxRetries = 0;

    auto t0 = Clock::now();
    SubmitOutcome o = submitCampaign(copts, "table3", maxInsts);
    auto t1 = Clock::now();
    if (!o.ok) {
        *error = "serve bench submit failed: " + o.error;
        return false;
    }
    std::uint64_t insts = 0;
    for (const std::string &line : o.lines) {
        runner::CellResult r;
        std::string key;
        if (!runner::parseJournalLine(line, "table3", &r, &key))
            continue;
        if (!r.ok) {
            *error = "serve bench cell failed: " + r.error;
            return false;
        }
        insts += r.instsCommitted;
    }
    out->insts = insts;
    out->seconds = std::chrono::duration<double>(t1 - t0).count();
    out->ips =
        out->seconds > 0.0 ? double(out->insts) / out->seconds : 0.0;
    return true;
}

struct DaemonHandle
{
    Server *server = nullptr;
    std::thread thread;

    ~DaemonHandle()
    {
        if (server)
            server->requestShutdown();
        if (thread.joinable())
            thread.join();
    }
};

bool
startDaemon(Server &server, DaemonHandle *handle, std::string *error)
{
    if (!server.start(error))
        return false;
    handle->server = &server;
    handle->thread = std::thread([&server] { server.run(); });
    return true;
}

} // namespace

bool
measureServeBench(std::uint64_t maxInsts, runner::PerfPath *cold,
                  runner::PerfPath *warm, std::string *error)
{
    char tmpl[] = "/tmp/simalpha-servebench-XXXXXX";
    if (!::mkdtemp(tmpl)) {
        *error = "serve bench: cannot create a temp directory";
        return false;
    }
    const std::string dir = tmpl;
    const std::string storePath = dir + "/store";

    ServeOptions sopts;
    sopts.storePath = storePath;
    sopts.listen = dir + "/bench.sock";
    sopts.jobs = 1;     // serial, like every other bench row

    bool ok = false;
    {
        // Cold: empty store, empty journal — every cell computes.
        Server server(sopts);
        DaemonHandle daemon;
        ok = startDaemon(server, &daemon, error) &&
             timedSubmit(server.boundAddress(), maxInsts, cold,
                         error);
    }
    if (ok) {
        // Warm: same store, but the job journal is removed so the
        // rerun exercises the store-hit path (not journal replay) —
        // the service's steady-state answer for a repeated table.
        const std::string journal = jobJournalPath(
            storePath,
            jobIdFromKey(jobKey("table3", maxInsts,
                                checkpoint::SampleSpec())));
        std::remove(journal.c_str());
        Server server(sopts);
        DaemonHandle daemon;
        ok = startDaemon(server, &daemon, error) &&
             timedSubmit(server.boundAddress(), maxInsts, warm,
                         error);
    }

    // Best-effort scrub of the private temp tree.
    if (dir.rfind("/tmp/simalpha-servebench-", 0) == 0) {
        std::string cmd = "rm -rf '" + dir + "'";
        int rc = std::system(cmd.c_str());
        (void)rc;
    }
    return ok;
}

} // namespace serve
} // namespace simalpha

/**
 * @file
 * The wire protocol of the campaign service: newline-delimited JSON
 * over a byte stream (Unix-domain socket by default, TCP optionally).
 *
 * Requests are single flat JSON objects, one per line:
 *
 *   {"op":"hello","client":"bench-rig"}
 *   {"op":"submit","campaign":"table3","max_insts":100000}
 *   {"op":"submit","campaign":"table3","sample":"windows=5,len=1000"}
 *   {"op":"results","campaign":"table3","max_insts":100000}
 *   {"op":"status","campaign":"table3","max_insts":100000}
 *   {"op":"cancel","campaign":"table3","max_insts":100000}
 *   {"op":"health"}
 *   {"op":"shutdown"}
 *
 * Responses are lines of two kinds, distinguished by prefix:
 *
 *   - control lines start with {"serve":1, — hello/accepted/status/
 *     health/done/error events produced by the service itself, and
 *   - result lines start with {"campaign": — the *verbatim bytes* of
 *     campaign-journal lines (runner/journal.hh), streamed as cells
 *     settle. The service never re-encodes a result, so a client
 *     collecting the stream holds exactly the journal an uninterrupted
 *     local run would have written.
 *
 * The parser here is deliberately tiny and hostile-input-safe: flat
 * objects of string/integer values only, bounded by the server's line
 * cap, returning false (never throwing, never reading out of bounds)
 * for anything else. Fuzzable garbage costs one "error" reply line.
 */

#ifndef SIMALPHA_SERVE_PROTO_HH
#define SIMALPHA_SERVE_PROTO_HH

#include <cstdint>
#include <map>
#include <string>

namespace simalpha {
namespace serve {

/** Protocol version spoken by this build (in hello lines). */
constexpr int kProtoVersion = 1;

/** Longest request or control line either side will accept. Result
 *  lines are journal lines and stay far below this. */
constexpr std::size_t kMaxLineBytes = 64 * 1024;

/** A parsed client request. Unknown ops parse fine (op carries the
 *  text) and are rejected by the server with an "error" reply. */
struct Request
{
    std::string op;        ///< "hello", "submit", "status", ...
    std::string campaign;  ///< named campaign ("table3", "smoke", ...)
    std::uint64_t maxInsts = 0;
    std::string sample;    ///< formatted SampleSpec, empty = unsampled
    std::string client;    ///< optional self-identification (hello)
};

/** Parse one request line. Returns false with *error filled for
 *  anything that is not a flat JSON object with the expected field
 *  types; never throws. */
bool parseRequest(const std::string &line, Request *out,
                  std::string *error);

/** True iff @p line is a service control line (vs a verbatim result
 *  line or garbage). */
bool isServeLine(const std::string &line);

/**
 * Parse a control line into its string and integer fields ("serve"
 * itself included, as an integer). Returns false for anything that is
 * not a flat object. Used by the client and the tests; the server
 * only ever writes these.
 */
bool parseServeLine(const std::string &line,
                    std::map<std::string, std::string> *strings,
                    std::map<std::string, std::uint64_t> *numbers);

// ---------------------------------------------------------------
// Control-line builders (no trailing newline; the transport adds it).
// ---------------------------------------------------------------

std::string helloLine(const std::string &storePath,
                      std::size_t maxPending, std::size_t maxClients);

/** code: bad_request, busy, budget, unknown_campaign, draining,
 *  not_found. `busy` and connect failures are the retryable ones. */
std::string errorLine(const std::string &code,
                      const std::string &message);

std::string acceptedLine(const std::string &campaign,
                         const std::string &jobId, std::size_t cells,
                         std::size_t pendingAhead);

/** outcome: "complete", "cancelled", "failed". */
std::string doneLine(const std::string &campaign,
                     const std::string &jobId, std::size_t cells,
                     std::size_t okCells, std::size_t failedCells,
                     const std::string &outcome);

/** state: "pending", "running", "done", "cancelled", "failed",
 *  "journal" (settled lines on disk, no live job), "absent". */
std::string statusLine(const std::string &campaign,
                       const std::string &jobId,
                       const std::string &state, std::size_t settled,
                       std::size_t cells);

struct HealthSnapshot
{
    bool draining = false;
    bool storeDegraded = false;
    std::size_t clients = 0;
    std::size_t jobsPending = 0;
    bool jobRunning = false;
    std::uint64_t jobsDone = 0;
    std::uint64_t cellsComputed = 0;
    std::uint64_t cellsServed = 0;  ///< journal/cache/store, not computed
    std::uint64_t busyRejections = 0;
};

std::string healthLine(const HealthSnapshot &snapshot);

std::string drainingLine();

std::string cancellingLine(const std::string &campaign,
                           const std::string &jobId);

} // namespace serve
} // namespace simalpha

#endif // SIMALPHA_SERVE_PROTO_HH

/**
 * @file
 * The wire protocol of the campaign service: newline-delimited JSON
 * over a byte stream (Unix-domain socket by default, TCP optionally).
 *
 * Requests are single flat JSON objects, one per line:
 *
 *   {"op":"hello","client":"bench-rig"}
 *   {"op":"submit","campaign":"table3","max_insts":100000}
 *   {"op":"submit","campaign":"table3","sample":"windows=5,len=1000"}
 *   {"op":"results","campaign":"table3","max_insts":100000}
 *   {"op":"status","campaign":"table3","max_insts":100000}
 *   {"op":"cancel","campaign":"table3","max_insts":100000}
 *   {"op":"health"}
 *   {"op":"capabilities"}
 *   {"op":"sync","mode":"pull","newer_than":3600}
 *   {"op":"sync","mode":"push","entries":12}
 *   {"op":"shutdown"}
 *
 * Responses are lines of two kinds, distinguished by prefix:
 *
 *   - control lines start with {"serve":1, — hello/accepted/status/
 *     health/done/error events produced by the service itself, and
 *   - result lines start with {"campaign": — the *verbatim bytes* of
 *     campaign-journal lines (runner/journal.hh), streamed as cells
 *     settle. The service never re-encodes a result, so a client
 *     collecting the stream holds exactly the journal an uninterrupted
 *     local run would have written.
 *
 * The `sync` op (protocol 2, the fleet tier's store transport) adds a
 * third line kind: store dump lines {"key":"...","payload":"..."} in
 * the store's exportTo() JSONL format. A pull streams the daemon's
 * store (optionally only entries published in the last `newer_than`
 * seconds) as dump lines followed by a `synced` control line; a push
 * announces `entries` and then sends exactly that many dump lines,
 * which the daemon imports last-writer-wins before replying `synced`.
 * Dump lines may carry checkpoint blobs, so sync mode raises the line
 * cap to kMaxSyncLineBytes.
 *
 * The parser here is deliberately tiny and hostile-input-safe: flat
 * objects of string/integer values only, bounded by the server's line
 * cap, returning false (never throwing, never reading out of bounds)
 * for anything else. Fuzzable garbage costs one "error" reply line.
 */

#ifndef SIMALPHA_SERVE_PROTO_HH
#define SIMALPHA_SERVE_PROTO_HH

#include <cstdint>
#include <map>
#include <string>

namespace simalpha {
namespace serve {

/** Protocol version spoken by this build (in hello and capabilities
 *  lines). Version 2 added the `sync` and `capabilities` ops and the
 *  enriched health line; a version-2 peer still understands every
 *  version-1 exchange. */
constexpr int kProtoVersion = 2;

/** Longest request or control line either side will accept. Result
 *  lines are journal lines and stay far below this. */
constexpr std::size_t kMaxLineBytes = 64 * 1024;

/** Line cap while a connection is in sync mode: store dump lines
 *  carry whole payloads (checkpoint blobs included), which dwarf any
 *  control line. */
constexpr std::size_t kMaxSyncLineBytes = 8 * 1024 * 1024;

/** A parsed client request. Unknown ops parse fine (op carries the
 *  text) and are rejected by the server with an "error" reply. */
struct Request
{
    std::string op;        ///< "hello", "submit", "status", ...
    std::string campaign;  ///< named campaign ("table3", "smoke", ...)
    std::uint64_t maxInsts = 0;
    std::string sample;    ///< formatted SampleSpec, empty = unsampled
    std::string client;    ///< optional self-identification (hello)
    std::string mode;      ///< sync direction: "pull" or "push"
    std::uint64_t entries = 0;   ///< sync push: dump lines to follow
    std::uint64_t newerThan = 0; ///< sync pull: mtime filter, seconds
                                 ///< (0 = whole store)
};

/**
 * Parse a "tcp:PORT" or "tcp:HOST:PORT" address (HOST an IPv4
 * dotted quad; omitted = 127.0.0.1). Shared by the server's bind and
 * the client's connect so both sides accept the same spellings.
 * Returns false with *error filled on anything else.
 */
bool parseTcpAddress(const std::string &address, std::string *host,
                     std::uint16_t *port, std::string *error);

/** Parse one request line. Returns false with *error filled for
 *  anything that is not a flat JSON object with the expected field
 *  types; never throws. */
bool parseRequest(const std::string &line, Request *out,
                  std::string *error);

/** True iff @p line is a service control line (vs a verbatim result
 *  line or garbage). */
bool isServeLine(const std::string &line);

/**
 * Parse a control line into its string and integer fields ("serve"
 * itself included, as an integer). Returns false for anything that is
 * not a flat object. Used by the client and the tests; the server
 * only ever writes these.
 */
bool parseServeLine(const std::string &line,
                    std::map<std::string, std::string> *strings,
                    std::map<std::string, std::uint64_t> *numbers);

// ---------------------------------------------------------------
// Control-line builders (no trailing newline; the transport adds it).
// ---------------------------------------------------------------

std::string helloLine(const std::string &storePath,
                      std::size_t maxPending, std::size_t maxClients);

/** code: bad_request, busy, budget, unknown_campaign, draining,
 *  not_found. `busy` and connect failures are the retryable ones. */
std::string errorLine(const std::string &code,
                      const std::string &message);

std::string acceptedLine(const std::string &campaign,
                         const std::string &jobId, std::size_t cells,
                         std::size_t pendingAhead);

/** outcome: "complete", "cancelled", "failed". */
std::string doneLine(const std::string &campaign,
                     const std::string &jobId, std::size_t cells,
                     std::size_t okCells, std::size_t failedCells,
                     const std::string &outcome);

/** state: "pending", "running", "done", "cancelled", "failed",
 *  "journal" (settled lines on disk, no live job), "absent". */
std::string statusLine(const std::string &campaign,
                       const std::string &jobId,
                       const std::string &state, std::size_t settled,
                       std::size_t cells);

struct HealthSnapshot
{
    bool draining = false;
    bool storeDegraded = false;
    std::size_t clients = 0;
    std::size_t jobsPending = 0;
    bool jobRunning = false;
    std::uint64_t jobsDone = 0;
    std::uint64_t cellsComputed = 0;
    std::uint64_t cellsServed = 0;  ///< journal/cache/store, not computed
    std::uint64_t busyRejections = 0;
    std::uint64_t pid = 0;          ///< daemon process id
    std::uint64_t uptimeSeconds = 0;
    std::string storePath;          ///< store root the daemon serves
};

std::string healthLine(const HealthSnapshot &snapshot);

/** What this daemon can do: protocol version, op list, line caps,
 *  queue/budget limits — the probe a fleet dispatcher uses to admit a
 *  worker. */
struct Capabilities
{
    std::string storePath;
    std::string isolate;            ///< "thread" or "process"
    std::size_t maxPending = 0;
    std::size_t maxClients = 0;
    std::uint64_t maxCellsPerCampaign = 0;  ///< 0 = unlimited
    std::uint64_t maxClientCells = 0;       ///< 0 = unlimited
};

std::string capabilitiesLine(const Capabilities &caps);

/** End-of-sync marker: direction "pull" or "push", entry count. */
std::string syncedLine(const std::string &direction,
                       std::uint64_t entries);

std::string drainingLine();

std::string cancellingLine(const std::string &campaign,
                           const std::string &jobId);

} // namespace serve
} // namespace simalpha

#endif // SIMALPHA_SERVE_PROTO_HH

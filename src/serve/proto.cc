#include "serve/proto.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "runner/artifacts.hh"   // jsonEscape

namespace simalpha {
namespace serve {

using runner::jsonEscape;

namespace {

/**
 * Flat-object scanner shared by request and control-line parsing:
 * strings and unsigned integers only, no nesting, no trailing bytes.
 * Mirrors the journal's LineParser but is independent of it — the
 * wire protocol must stay parseable even if the journal grows richer
 * value kinds.
 */
class FlatParser
{
  public:
    explicit FlatParser(const std::string &text) : _s(text) {}

    bool
    object(std::map<std::string, std::string> *strings,
           std::map<std::string, std::uint64_t> *numbers)
    {
        skipWs();
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return done();
        for (;;) {
            std::string key;
            if (!stringLit(&key))
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            skipWs();
            if (peek() == '"') {
                std::string v;
                if (!stringLit(&v))
                    return false;
                (*strings)[key] = v;
            } else if (std::isdigit(
                           static_cast<unsigned char>(peek()))) {
                std::uint64_t v;
                if (!numberLit(&v))
                    return false;
                (*numbers)[key] = v;
            } else {
                return false;
            }
            skipWs();
            if (eat(',')) {
                skipWs();
                continue;
            }
            if (eat('}'))
                return done();
            return false;
        }
    }

  private:
    bool
    done()
    {
        skipWs();
        return _pos >= _s.size();
    }

    char
    peek() const
    {
        return _pos < _s.size() ? _s[_pos] : '\0';
    }

    bool
    eat(char c)
    {
        if (peek() != c)
            return false;
        _pos++;
        return true;
    }

    void
    skipWs()
    {
        while (_pos < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_pos])))
            _pos++;
    }

    bool
    stringLit(std::string *out)
    {
        if (!eat('"'))
            return false;
        out->clear();
        while (_pos < _s.size()) {
            char c = _s[_pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (_pos >= _s.size())
                return false;
            char esc = _s[_pos++];
            switch (esc) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'n': *out += '\n'; break;
              case 't': *out += '\t'; break;
              default: return false;
            }
        }
        return false;
    }

    bool
    numberLit(std::uint64_t *out)
    {
        std::size_t start = _pos;
        while (_pos < _s.size() &&
               std::isdigit(static_cast<unsigned char>(_s[_pos])))
            _pos++;
        if (_pos == start || _pos - start > 20)
            return false;
        *out = std::strtoull(_s.substr(start, _pos - start).c_str(),
                             nullptr, 10);
        return true;
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

} // namespace

bool
parseTcpAddress(const std::string &address, std::string *host,
                std::uint16_t *port, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = "bad TCP address '" + address + "': " + why;
        return false;
    };
    if (address.rfind("tcp:", 0) != 0)
        return fail("expected tcp:PORT or tcp:HOST:PORT");
    std::string rest = address.substr(4);
    std::string hostText = "127.0.0.1";
    std::string portText = rest;
    std::size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
        hostText = rest.substr(0, colon);
        portText = rest.substr(colon + 1);
        if (hostText.empty())
            return fail("empty host");
    }
    if (portText.empty() ||
        portText.find_first_not_of("0123456789") != std::string::npos)
        return fail("port '" + portText + "' is not a number");
    unsigned long value = std::strtoul(portText.c_str(), nullptr, 10);
    if (value > 65535)
        return fail("port " + portText + " is out of range (0-65535)");
    *host = hostText;
    *port = std::uint16_t(value);
    return true;
}

bool
parseRequest(const std::string &line, Request *out, std::string *error)
{
    if (line.size() > kMaxLineBytes) {
        if (error)
            *error = "request line exceeds the per-line byte cap";
        return false;
    }
    std::map<std::string, std::string> strings;
    std::map<std::string, std::uint64_t> numbers;
    FlatParser parser(line);
    if (!parser.object(&strings, &numbers)) {
        if (error)
            *error = "request is not a flat JSON object of "
                     "string/integer fields";
        return false;
    }
    if (!strings.count("op")) {
        if (error)
            *error = "request has no \"op\" field";
        return false;
    }
    Request r;
    r.op = strings["op"];
    if (strings.count("campaign"))
        r.campaign = strings["campaign"];
    if (numbers.count("max_insts"))
        r.maxInsts = numbers["max_insts"];
    if (strings.count("sample"))
        r.sample = strings["sample"];
    if (strings.count("client"))
        r.client = strings["client"];
    if (strings.count("mode"))
        r.mode = strings["mode"];
    if (numbers.count("entries"))
        r.entries = numbers["entries"];
    if (numbers.count("newer_than"))
        r.newerThan = numbers["newer_than"];
    *out = std::move(r);
    return true;
}

bool
isServeLine(const std::string &line)
{
    return line.rfind("{\"serve\":1,", 0) == 0 ||
           line == "{\"serve\":1}";
}

bool
parseServeLine(const std::string &line,
               std::map<std::string, std::string> *strings,
               std::map<std::string, std::uint64_t> *numbers)
{
    FlatParser parser(line);
    return parser.object(strings, numbers);
}

std::string
helloLine(const std::string &storePath, std::size_t maxPending,
          std::size_t maxClients)
{
    std::ostringstream os;
    os << "{\"serve\":1,\"event\":\"hello\",\"version\":"
       << kProtoVersion << ",\"store\":\"" << jsonEscape(storePath)
       << "\",\"max_pending\":" << maxPending
       << ",\"max_clients\":" << maxClients << "}";
    return os.str();
}

std::string
errorLine(const std::string &code, const std::string &message)
{
    std::ostringstream os;
    os << "{\"serve\":1,\"event\":\"error\",\"code\":\""
       << jsonEscape(code) << "\",\"message\":\""
       << jsonEscape(message) << "\"}";
    return os.str();
}

std::string
acceptedLine(const std::string &campaign, const std::string &jobId,
             std::size_t cells, std::size_t pendingAhead)
{
    std::ostringstream os;
    os << "{\"serve\":1,\"event\":\"accepted\",\"campaign\":\""
       << jsonEscape(campaign) << "\",\"job\":\"" << jsonEscape(jobId)
       << "\",\"cells\":" << cells
       << ",\"pending_ahead\":" << pendingAhead << "}";
    return os.str();
}

std::string
doneLine(const std::string &campaign, const std::string &jobId,
         std::size_t cells, std::size_t okCells,
         std::size_t failedCells, const std::string &outcome)
{
    std::ostringstream os;
    os << "{\"serve\":1,\"event\":\"done\",\"campaign\":\""
       << jsonEscape(campaign) << "\",\"job\":\"" << jsonEscape(jobId)
       << "\",\"cells\":" << cells << ",\"ok\":" << okCells
       << ",\"failed\":" << failedCells << ",\"outcome\":\""
       << jsonEscape(outcome) << "\"}";
    return os.str();
}

std::string
statusLine(const std::string &campaign, const std::string &jobId,
           const std::string &state, std::size_t settled,
           std::size_t cells)
{
    std::ostringstream os;
    os << "{\"serve\":1,\"event\":\"status\",\"campaign\":\""
       << jsonEscape(campaign) << "\",\"job\":\"" << jsonEscape(jobId)
       << "\",\"state\":\"" << jsonEscape(state)
       << "\",\"settled\":" << settled << ",\"cells\":" << cells
       << "}";
    return os.str();
}

std::string
healthLine(const HealthSnapshot &s)
{
    std::ostringstream os;
    os << "{\"serve\":1,\"event\":\"health\",\"status\":\""
       << (s.draining ? "draining" : "ok")
       << "\",\"store\":\"" << (s.storeDegraded ? "degraded" : "ok")
       << "\",\"clients\":" << s.clients
       << ",\"jobs_pending\":" << s.jobsPending
       << ",\"jobs_running\":" << (s.jobRunning ? 1 : 0)
       << ",\"jobs_done\":" << s.jobsDone
       << ",\"cells_computed\":" << s.cellsComputed
       << ",\"cells_served\":" << s.cellsServed
       << ",\"busy_rejections\":" << s.busyRejections
       << ",\"pid\":" << s.pid
       << ",\"uptime_s\":" << s.uptimeSeconds
       << ",\"store_path\":\"" << jsonEscape(s.storePath) << "\"}";
    return os.str();
}

std::string
capabilitiesLine(const Capabilities &caps)
{
    std::ostringstream os;
    os << "{\"serve\":1,\"event\":\"capabilities\",\"version\":"
       << kProtoVersion
       << ",\"ops\":\"hello,submit,status,results,cancel,health,"
          "capabilities,sync,shutdown\""
       << ",\"store_path\":\"" << jsonEscape(caps.storePath)
       << "\",\"isolate\":\"" << jsonEscape(caps.isolate)
       << "\",\"max_line_bytes\":" << kMaxLineBytes
       << ",\"max_sync_line_bytes\":" << kMaxSyncLineBytes
       << ",\"max_pending\":" << caps.maxPending
       << ",\"max_clients\":" << caps.maxClients
       << ",\"max_cells\":" << caps.maxCellsPerCampaign
       << ",\"max_client_cells\":" << caps.maxClientCells << "}";
    return os.str();
}

std::string
syncedLine(const std::string &direction, std::uint64_t entries)
{
    std::ostringstream os;
    os << "{\"serve\":1,\"event\":\"synced\",\"direction\":\""
       << jsonEscape(direction) << "\",\"entries\":" << entries
       << "}";
    return os.str();
}

std::string
drainingLine()
{
    return "{\"serve\":1,\"event\":\"draining\"}";
}

std::string
cancellingLine(const std::string &campaign, const std::string &jobId)
{
    std::ostringstream os;
    os << "{\"serve\":1,\"event\":\"cancelling\",\"campaign\":\""
       << jsonEscape(campaign) << "\",\"job\":\"" << jsonEscape(jobId)
       << "\"}";
    return os.str();
}

} // namespace serve
} // namespace simalpha

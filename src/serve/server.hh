/**
 * @file
 * `simalpha serve` — a long-running, crash-tolerant campaign service.
 *
 * One daemon owns a persistent result store and accepts campaign
 * submissions over a Unix-domain socket (or TCP), multiplexing them
 * onto the in-process ExperimentRunner pool or the process-isolation
 * supervisor. Every job runs with resume semantics against its own
 * append-only journal under <store>/serve.d/, which makes the four
 * interesting cases one code path:
 *
 *   cold submit      journal empty, every cell computes, lines stream
 *                    as they settle;
 *   warm submit      cells already in the store are served from disk
 *                    (byte-identical), streaming near-instantly;
 *   crashed daemon   restart + resubmit replays the job journal and
 *                    computes only the remainder — the client's
 *                    collected stream is byte-identical to an
 *                    uninterrupted run;
 *   repeat submit    a submission matching an in-flight job attaches
 *                    to it (single computation, every subscriber gets
 *                    every line); one matching a finished job replays
 *                    from memory or journal.
 *
 * Robustness posture, in order of the failure matrix in DESIGN.md:
 *
 *   overload         the submission queue is bounded; a full queue is
 *                    an explicit `busy` reply, never a silent hang,
 *                    and per-campaign / per-client cell budgets bound
 *                    the work any one client can enqueue;
 *   client died      a dead or unreadably-slow subscriber is dropped
 *                    (bounded per-connection output buffer); the
 *                    campaign keeps running and journaling;
 *   worker died      under --isolate=process the supervisor respawns
 *                    shards with jittered backoff; under threads a
 *                    cell failure is a contained failed result — the
 *                    daemon itself never goes down with a job;
 *   store degraded   an unopenable store degrades to compute-without-
 *                    cache, reported in health, never an outage;
 *   daemon killed    every settled cell is already journaled (opt-in
 *                    fsync per line); SIGTERM drains with a deadline.
 *
 * Threading: one poll(2) I/O thread (the caller of run()) owns every
 * socket; one executor thread owns the runner. They share a single
 * mutex-guarded state block and wake each other through a self-pipe —
 * no lock is ever held across a blocking syscall or a cell execution.
 */

#ifndef SIMALPHA_SERVE_SERVER_HH
#define SIMALPHA_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/checkpoint.hh"
#include "runner/campaign.hh"
#include "serve/proto.hh"

namespace simalpha {

namespace store {
class ResultStore;
}

namespace serve {

/**
 * One accepted job handed to a custom executor: everything the
 * built-in runner would have used — submitted identity, derived spec,
 * journal path, cancel flag — plus the sink every settled cell's
 * verbatim journal line goes through. The fleet dispatcher is the
 * intended customer: it receives exactly the job Server::runJob would
 * have run locally and executes it across workers instead, inheriting
 * the server's admission control, idempotent attach/replay,
 * streaming, and drain behaviour unchanged.
 */
struct JobWork
{
    std::string campaign;          ///< as submitted (job identity)
    /** Derived spec with cap/sampling applied; valid for the call. */
    const runner::CampaignSpec *spec = nullptr;
    std::uint64_t maxInsts = 0;    ///< as submitted (job identity)
    checkpoint::SampleSpec sample; ///< as submitted (job identity)
    std::string journalPath;       ///< append-only job journal (resume)
    std::string storePath;
    const std::atomic<bool> *cancel = nullptr;
    /** Settled-cell sink: verbatim journal-line bytes, whether the
     *  cell succeeded, and whether it was served (journal/store/warm
     *  worker) rather than computed. */
    std::function<void(const std::string &line, bool ok, bool served)>
        emit;
};

/** Runs one job to completion; throwing marks the job failed. */
using JobExecutor = std::function<void(const JobWork &)>;

struct ServeOptions
{
    /** Persistent result store root (required): results, checkpoints,
     *  and the service's own job journals (<store>/serve.d/) live
     *  here. Created if missing. */
    std::string storePath;

    /** "tcp:PORT" (127.0.0.1) or "tcp:HOST:PORT" (bind HOST, e.g.
     *  0.0.0.0 for all interfaces) for TCP, anything else a
     *  Unix-socket path; empty = <store>/serve.sock. */
    std::string listen;

    /** Runner threads per job (thread isolation); 0 = all cores. */
    int jobs = 0;
    /** "thread" (default) or "process". */
    std::string isolate = "thread";
    /** Worker processes for process isolation; 0 = all cores. */
    int shards = 0;
    /** simalpha binary to exec as shard workers (process mode). */
    std::string workerBinary;

    /** Admission control: jobs queued behind the running one before
     *  submissions bounce with `busy`. */
    std::size_t maxPending = 4;
    /** Concurrent client connections before accepts bounce. */
    std::size_t maxClients = 32;
    /** Largest campaign (in cells) a single submit may enqueue;
     *  0 = unlimited. Exceeding it is a `budget` reply. */
    std::size_t maxCellsPerCampaign = 0;
    /** Total cells one connection may submit over its lifetime;
     *  0 = unlimited. */
    std::size_t maxClientCells = 0;

    /** Seconds a drain (SIGTERM/shutdown) waits for the in-flight job
     *  before cancelling it and exiting anyway. */
    double drainTimeoutSeconds = 10.0;

    /** fsync job journals per line (see runner/journal.hh). */
    bool journalSync = false;

    /** Set by a signal handler: begin drain-then-exit. */
    const volatile std::sig_atomic_t *interrupted = nullptr;

    /** Test hook: while set, the executor picks up no job, so tests
     *  can fill the pending queue deterministically. */
    const std::atomic<bool> *testHoldExecutor = nullptr;

    /** When set, accepted jobs run through this instead of the
     *  built-in runner/supervisor — the hook the fleet dispatcher
     *  plugs into. */
    JobExecutor executor;
};

/** Cumulative daemon statistics (health replies and tests). */
struct ServeStats
{
    std::uint64_t submits = 0;
    std::uint64_t attaches = 0;       ///< submits joining a live job
    std::uint64_t busyRejections = 0;
    std::uint64_t budgetRejections = 0;
    std::uint64_t badRequests = 0;
    std::uint64_t jobsDone = 0;
    std::uint64_t cellsComputed = 0;
    std::uint64_t cellsServed = 0;    ///< journal/cache/store hits
    std::uint64_t clientsDropped = 0; ///< slow/dead subscribers cut
};

class Server
{
  public:
    explicit Server(ServeOptions options);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind and listen (creating <store> and <store>/serve.d). False
     *  with *error filled on any setup failure. */
    bool start(std::string *error);

    /** Serve until drained (shutdown request, interrupt flag, or
     *  requestShutdown()). Returns the process exit code: 0 clean
     *  drain, 1 the I/O loop failed. Call after start(). */
    int run();

    /** Thread-safe: begin drain-then-exit (as if SIGTERMed). */
    void requestShutdown();

    /** Bound address: the Unix socket path, "tcp:PORT" (loopback), or
     *  "tcp:HOST:PORT" when --listen named a host. */
    const std::string &boundAddress() const { return _boundAddress; }

    ServeStats stats() const;

  private:
    struct Job;
    struct Conn;
    struct State;

    void executorLoop();
    void runJob(const std::shared_ptr<Job> &job);
    void wake();
    void handleLine(Conn &conn, const std::string &line);
    void handleSubmit(Conn &conn, const Request &req, bool allowRun);
    void handleSync(Conn &conn, const Request &req);
    void handleSyncEntry(Conn &conn, const std::string &line);
    bool ensureSyncStore(std::string *error);
    void flushSubscribers();
    void flushConn(Conn &conn);
    void evictDoneJobsLocked();
    void startDrain();

    ServeOptions _opts;
    std::string _boundAddress;
    std::chrono::steady_clock::time_point _startTime{};
    /** Store handle of the poll thread, for sync ops (runner jobs
     *  open their own handles; the store is multi-handle-safe). */
    std::unique_ptr<store::ResultStore> _syncStore;
    std::size_t _clients = 0;   ///< poll-thread-owned, for health
    int _listenFd = -1;
    int _wakeFd[2] = {-1, -1};
    std::atomic<bool> _shutdownRequested{false};

    std::unique_ptr<State> _state;
    std::thread _executor;
};

/** Identity of a submission: (campaign, cap, sampling) → the job key
 *  and its 16-hex id (store::ResultStore::keyHash of the key). The
 *  job journal is <store>/serve.d/job-<id>.journal.jsonl. */
std::string jobKey(const std::string &campaign, std::uint64_t maxInsts,
                   const checkpoint::SampleSpec &sample);
std::string jobIdFromKey(const std::string &key);
std::string jobJournalPath(const std::string &storePath,
                           const std::string &jobId);

} // namespace serve
} // namespace simalpha

#endif // SIMALPHA_SERVE_SERVER_HH

/**
 * @file
 * `simalpha submit` — the service client: connect, submit, collect
 * the result-line stream, and retry transient failures (connection
 * refused, `busy` rejections, a daemon that died mid-stream) with
 * bounded exponential backoff and deterministic jitter.
 *
 * Retry safety rests on the server's idempotence: a resubmission of
 * the same (campaign, cap, sampling) identity attaches to the
 * in-flight job or replays its journal, so retrying after a torn
 * stream re-collects the complete byte-identical line set rather
 * than recomputing or duplicating anything. Each attempt therefore
 * discards partial lines and starts clean.
 *
 * Terminal rejections — budget exhausted, unknown campaign, malformed
 * request, draining daemon — are never retried: backing off cannot
 * make them succeed.
 */

#ifndef SIMALPHA_SERVE_CLIENT_HH
#define SIMALPHA_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runner/runner.hh"
#include "store/store.hh"

namespace simalpha {
namespace serve {

struct ClientOptions
{
    /** "tcp:PORT", "tcp:HOST:PORT", or a Unix-socket path (as the
     *  daemon's --listen / bound address). */
    std::string connect;

    /** Per-attempt wall-clock budget in seconds: connect + request +
     *  the whole stream. 0 = no timeout. */
    double timeoutSeconds = 0.0;

    /** Bound on connect(2) alone, so a black-holed host fails fast
     *  with a clear message even when timeoutSeconds is 0 (streams
     *  may legitimately run for hours; connects may not). 0 = bounded
     *  only by timeoutSeconds. */
    double connectTimeoutSeconds = 10.0;

    /** Extra attempts after the first (connect failures, `busy`
     *  replies, and torn streams retry; terminal errors do not). */
    int maxRetries = 3;

    /** First retry delay; doubles per attempt, scaled by a
     *  deterministic jitter factor in [0.75, 1.25) from (seed,
     *  attempt) — see retryBackoffSeconds(). */
    double backoffSeconds = 0.2;
    std::uint64_t seed = 0;
};

/** What one submit (or results) call produced. */
struct SubmitOutcome
{
    bool ok = false;          ///< a done line arrived
    int attempts = 0;         ///< connections made
    std::string error;        ///< terminal failure description
    std::string errorCode;    ///< protocol error code, if any

    /** Verbatim result-line bytes, in arrival order. */
    std::vector<std::string> lines;
    /** Fields of the final done control line. */
    std::map<std::string, std::string> doneStrings;
    std::map<std::string, std::uint64_t> doneNumbers;
};

/** The deterministic retry delay: backoff * 2^attempt scaled by a
 *  jitter factor in [0.75, 1.25) derived from (seed, attempt) — the
 *  same SplitMix construction the shard supervisor uses, so two
 *  clients with different seeds never retry in lockstep and a given
 *  client's schedule is reproducible. */
double retryBackoffSeconds(double baseSeconds, int attempt,
                           std::uint64_t seed);

/**
 * Submit @p campaign (op "submit", or "results" when @p resultsOnly)
 * and collect its stream. @p onLine, when set, sees every verbatim
 * result line as it arrives (before the outcome returns).
 */
SubmitOutcome submitCampaign(
    const ClientOptions &options, const std::string &campaign,
    std::uint64_t maxInsts = 0, const std::string &sample = {},
    bool resultsOnly = false,
    const std::function<void(const std::string &)> &onLine = nullptr);

/**
 * One-shot request (hello/status/cancel/health/shutdown): connect,
 * send @p requestLine, read exactly one reply line. No retries.
 * Returns false with *error filled on connect/timeout/protocol
 * failure.
 */
bool requestOnce(const ClientOptions &options,
                 const std::string &requestLine, std::string *reply,
                 std::string *error);

/**
 * Reassemble a streamed line set into a spec-ordered CampaignResult,
 * exactly as a local `--campaign` run would have produced it — the
 * bridge from a byte stream to artifacts (writeArtifact and friends).
 * Returns false with *error filled if the campaign name is unknown
 * or a cell has no matching line.
 */
bool linesToResult(const std::string &campaign, std::uint64_t maxInsts,
                   const std::string &sample,
                   const std::vector<std::string> &lines,
                   runner::CampaignResult *out, std::string *error);

/**
 * Pull the daemon's store into @p into (op "sync" mode "pull"):
 * every entry — or only ones published in the last
 * @p newerThanSeconds seconds when nonzero — is streamed down as
 * store dump lines and published locally, last-writer-wins. *pulled
 * (may be null) receives the locally-published count. No retries.
 */
bool syncPull(const ClientOptions &options, store::ResultStore *into,
              std::uint64_t newerThanSeconds, std::uint64_t *pulled,
              std::string *error);

/**
 * Push @p from's entries passing @p filter into the daemon's store
 * (op "sync" mode "push") — the pre-seed a fleet dispatcher gives a
 * cold worker. *pushed (may be null) receives the count the daemon
 * reports imported. No retries.
 */
bool syncPush(const ClientOptions &options,
              const store::ResultStore &from,
              const store::ExportFilter &filter, std::uint64_t *pushed,
              std::string *error);

} // namespace serve
} // namespace simalpha

#endif // SIMALPHA_SERVE_CLIENT_HH

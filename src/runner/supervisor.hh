/**
 * @file
 * The process-isolation supervisor behind `simalpha --isolate=process`.
 *
 * The in-process (thread) runner contains any fault that surfaces as a
 * C++ exception — but a SIGSEGV, an OOM kill, a stack overflow, or a
 * runaway cell takes the whole campaign down, which is exactly the
 * silent-cell-loss hazard a large validation sweep must not have. The
 * supervisor moves the containment boundary to the process: it shards
 * a campaign into slices, fork/execs one `simalpha --shard` worker per
 * slice, and watches their journals.
 *
 * Failure model:
 *
 *   worker dies (signal / nonzero exit)
 *       → the in-flight cell (known from its heartbeat line) is the
 *         poison cell: it is recorded as failed with error class
 *         "crash" and the wait status in the message; the worker is
 *         respawned for the remaining cells — bounded respawns with
 *         exponential backoff, poison cell excluded.
 *   cell exceeds its wall-clock budget
 *       → the worker is killed; the cell is recorded with error class
 *         "timeout"; the worker respawns for the rest.
 *   respawn budget exhausted
 *       → every remaining cell of the shard is recorded as "crash".
 *   no fault at all
 *       → the merged result is byte-identical to an in-process
 *         `--jobs N` run of the same campaign (journal lines round-trip
 *         every serialized field).
 *
 * Completed result lines are copied verbatim into the master campaign
 * journal as they appear, and supervisor-declared failures are
 * journaled too — so Ctrl-C or a supervisor crash loses nothing and
 * `--resume` replays every settled cell.
 */

#ifndef SIMALPHA_RUNNER_SUPERVISOR_HH
#define SIMALPHA_RUNNER_SUPERVISOR_HH

#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/shard.hh"

namespace simalpha {
namespace runner {

struct SupervisorOptions
{
    /** Campaign name ("table2".."table5", "smoke") — workers re-derive
     *  the spec from the name, so it must be a named campaign. */
    std::string campaign;
    /** Committed-instruction cap applied to every cell (0 = none). */
    std::uint64_t maxInsts = 0;
    /** Sampled-execution spec applied to every cell (disabled by
     *  default); forwarded to every worker verbatim. */
    checkpoint::SampleSpec sample;

    /** Worker processes; 0 = hardware concurrency. */
    int shards = 0;
    /** Path to the simalpha binary to exec as workers. */
    std::string workerBinary;
    /** Scratch directory for shard journals and worker logs; empty =
     *  derive from the master journal path or a temp directory. */
    std::string scratchDir;

    /** Per-cell wall-clock budget in seconds (0 = no timeout). */
    double cellTimeout = 0.0;
    /** Worker respawns allowed per shard after a death. */
    int maxRespawns = 2;
    /** First respawn delay in seconds; doubles per respawn, with
     *  deterministic per-shard jitter (respawnBackoffSeconds). */
    double backoffSeconds = 0.05;
    /** How long a SIGTERMed worker gets to drain before the
     *  supervisor escalates to SIGKILL. Applies both to interrupt
     *  (Ctrl-C) teardown and to any future cancellation path. */
    double termGraceSeconds = 2.0;

    /** Persistent result store root forwarded to workers (--store);
     *  empty = none. Every shard (and any other campaign pointed at
     *  the same root) shares it without coordination, so a rerun of a
     *  sharded campaign serves already-computed cells from disk. */
    std::string storePath;

    /** Per-cell retry budget forwarded to workers (--retries). */
    int maxRetries = 0;
    /** Fault plan forwarded to workers (--inject), campaign indices. */
    std::vector<FaultInjection> faults;

    /** Master campaign journal (empty = none); with resume, settled
     *  cells are replayed from it instead of re-sharded. */
    std::string masterJournalPath;
    bool resume = false;
    /** fsync the master journal after every line and forward
     *  --journal-sync to every worker (see CampaignJournal). */
    bool journalSync = false;

    /** Called (from the supervising thread) with every result line as
     *  it enters the master journal — worker lines verbatim, declared
     *  failures as freshly rendered journalLine() bytes, and replayed
     *  cells re-rendered at startup — so a caller (the serve daemon)
     *  can stream results without tailing the journal file. */
    std::function<void(const std::string &line)> onLine;

    /** Set by a signal handler: terminate workers and return early. */
    const volatile std::sig_atomic_t *interrupted = nullptr;
    /** Same contract for a cross-thread canceller (a volatile
     *  sig_atomic_t read is not a synchronized load; threads must use
     *  this instead). Either flag interrupts the run. */
    const std::atomic<bool> *interruptedAtomic = nullptr;
};

struct SupervisorOutcome
{
    CampaignResult result;
    /** True if the run was cut short by the interrupted flag; the
     *  result is partial and should not become an artifact. */
    bool interrupted = false;

    std::size_t replayedCells = 0;  ///< served from the master journal
    std::size_t crashedCells = 0;   ///< error class "crash"
    std::size_t timedOutCells = 0;  ///< error class "timeout"
    int spawns = 0;                 ///< worker processes started
    int respawns = 0;               ///< of which after a death

    /** Per-shard persistent-store traffic, indexed by shard id (from
     *  the workers' store-summary journal lines; empty when no store
     *  was configured or no shard spawned). */
    std::vector<StoreTraffic> shardStore;
    /** The same traffic summed across every shard. */
    StoreTraffic storeTraffic;
    /** Scratch directory left on disk for post-mortem (worker logs)
     *  when something went wrong; empty when cleaned up. */
    std::string scratchRetained;
};

/** Run a named campaign under process isolation. Throws ConfigError
 *  for unusable options (unknown campaign, missing worker binary). */
SupervisorOutcome superviseCampaign(const SupervisorOptions &options);

} // namespace runner
} // namespace simalpha

#endif // SIMALPHA_RUNNER_SUPERVISOR_HH

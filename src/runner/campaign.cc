#include "campaign.hh"

#include "validate/manifest.hh"
#include "workloads/macro.hh"
#include "workloads/membench.hh"
#include "workloads/microbench.hh"

namespace simalpha {
namespace runner {

using validate::Optimization;
using namespace simalpha::workloads;

CampaignSpec
CampaignSpec::withMaxInsts(std::uint64_t max_insts) const
{
    CampaignSpec out = *this;
    for (Cell &cell : out.cells)
        cell.maxInsts = max_insts;
    return out;
}

CampaignSpec
CampaignSpec::withSampling(const checkpoint::SampleSpec &spec) const
{
    CampaignSpec out = *this;
    for (Cell &cell : out.cells)
        cell.sample = spec;
    return out;
}

std::uint64_t
cellSeed(const Cell &cell)
{
    if (cell.seed)
        return cell.seed;
    // FNV-1a over the cell identity, so the seed survives reordering
    // and is stable across runs, campaigns, and thread counts.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&](const std::string &s) {
        for (unsigned char ch : s) {
            h ^= ch;
            h *= 0x100000001b3ULL;
        }
        h ^= 0x1F;     // field separator
        h *= 0x100000001b3ULL;
    };
    mix(cell.machine);
    mix(validate::optimizationName(cell.opt));
    mix(cell.workload);
    for (int i = 0; i < 8; i++) {
        h ^= (cell.maxInsts >> (8 * i)) & 0xFF;
        h *= 0x100000001b3ULL;
    }
    // Sampled variants of a cell get their own seed, but a disabled
    // spec must leave the historical seed untouched (golden tables).
    if (cell.sample.enabled()) {
        mix(checkpoint::formatSampleSpec(cell.sample));
    }
    // Same rule for injection: every cell of a vulnerability campaign
    // gets its own seed, plain cells keep their historical one.
    if (cell.inject.enabled()) {
        mix(inject::formatInjectSpec(cell.inject));
    }
    return h ? h : 1;
}

std::string
cellManifestHash(const Cell &cell)
{
    Config config;
    std::string error;
    if (!validate::tryDescribeMachine(cell.machine, cell.opt, &config,
                                      &error))
        return "";
    return validate::manifestHashHex(config);
}

namespace {

/** The spec2000 profile matching a name, if any. */
const MacroProfile *
findProfile(const std::vector<MacroProfile> &profiles,
            const std::string &name)
{
    for (const MacroProfile &p : profiles)
        if (p.name == name)
            return &p;
    return nullptr;
}

/** Direct microbenchmark dispatch (avoids generating the whole suite
 *  for every cell). Names follow microbenchNames(). */
bool
buildMicrobench(const std::string &name, Program *out)
{
    if (name == "C-Ca")
        *out = controlConditionalA();
    else if (name == "C-Cb")
        *out = controlConditionalB();
    else if (name == "C-R")
        *out = controlRecursive();
    else if (name == "C-S1")
        *out = controlSwitch(1);
    else if (name == "C-S2")
        *out = controlSwitch(2);
    else if (name == "C-S3")
        *out = controlSwitch(3);
    else if (name == "C-O")
        *out = controlComplex();
    else if (name == "E-I")
        *out = executeIndependent();
    else if (name == "E-F")
        *out = executeFloat();
    else if (name.rfind("E-D", 0) == 0 && name.size() == 4 &&
             name[3] >= '1' && name[3] <= '6')
        *out = executeDependent(name[3] - '0');
    else if (name == "E-DM1")
        *out = executeDependentMul();
    else if (name == "M-I")
        *out = memoryIndependent();
    else if (name == "M-D")
        *out = memoryDependent();
    else if (name == "M-L2")
        *out = memoryL2();
    else if (name == "M-M")
        *out = memoryMain();
    else if (name == "M-IP")
        *out = memoryInstPrefetch();
    else
        return false;
    return true;
}

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names = microbenchNames();
    for (const MacroProfile &p : spec2000Profiles())
        names.push_back(p.name);
    for (const Program &p : streamSuite(65536, 2))
        names.push_back(p.name);
    names.push_back("lmbench");
    return names;
}

bool
buildWorkload(const std::string &name, Program *out, std::string *error)
{
    if (buildMicrobench(name, out))
        return true;

    auto profiles = spec2000Profiles();
    if (const MacroProfile *p = findProfile(profiles, name)) {
        *out = makeMacro(*p);
        return true;
    }

    for (Program &p : streamSuite(65536, 2)) {
        if (p.name == name) {
            *out = p;
            return true;
        }
    }

    if (name == "lmbench") {
        *out = lmbenchLatency(8192, 64, 30000);
        return true;
    }

    if (error)
        *error = "unknown workload '" + name + "'";
    return false;
}

CampaignSpec
table2Campaign(const std::vector<std::string> &machines)
{
    CampaignSpec spec;
    spec.name = "table2";
    for (const std::string &w : microbenchNames())
        for (const std::string &m : machines)
            spec.cells.push_back({m, Optimization::None, w, 0, 0, {}});
    return spec;
}

CampaignSpec
table2Campaign()
{
    return table2Campaign(
        {"ds10l", "sim-initial", "sim-alpha", "sim-outorder"});
}

CampaignSpec
table3Campaign()
{
    CampaignSpec spec;
    spec.name = "table3";
    for (const MacroProfile &p : spec2000Profiles())
        for (const char *m :
             {"ds10l", "sim-alpha", "sim-stripped", "sim-outorder"})
            spec.cells.push_back({m, Optimization::None, p.name, 0, 0, {}});
    return spec;
}

CampaignSpec
table4Campaign()
{
    CampaignSpec spec;
    spec.name = "table4";
    std::vector<std::string> machines{"sim-alpha"};
    for (const std::string &f : validate::featureNames())
        machines.push_back("sim-alpha-no-" + f);
    for (const MacroProfile &p : spec2000Profiles())
        for (const std::string &m : machines)
            spec.cells.push_back({m, Optimization::None, p.name, 0, 0, {}});
    return spec;
}

CampaignSpec
table5Campaign()
{
    CampaignSpec spec;
    spec.name = "table5";
    const Optimization opts[] = {Optimization::None,
                                 Optimization::FastL1,
                                 Optimization::BigL1,
                                 Optimization::MoreRegs};
    for (const std::string &c : validate::stabilityConfigNames())
        for (Optimization opt : opts)
            for (const MacroProfile &p : spec2000Profiles())
                spec.cells.push_back({c, opt, p.name, 0, 0, {}});
    return spec;
}

CampaignSpec
smokeCampaign()
{
    CampaignSpec spec;
    spec.name = "smoke";
    for (const char *w : {"C-Ca", "C-Cb", "C-R", "C-S1", "C-S2",
                          "C-S3", "C-O", "E-I", "E-D1", "E-D2",
                          "E-D3", "E-D4"})
        spec.cells.push_back(
            {"sim-outorder", Optimization::None, w, 2000, 0, {}});
    return spec;
}

CampaignSpec
dramSweepCampaign()
{
    CampaignSpec spec;
    spec.name = "dramsweep";
    for (const MacroProfile &p : spec2000Profiles())
        for (const char *m :
             {"sim-alpha+dram=classic", "sim-alpha+dram=openpage"})
            spec.cells.push_back({m, Optimization::None, p.name, 0, 0, {}});
    return spec;
}

std::string
vulnCampaignName(const VulnSpec &spec)
{
    std::string name = "vuln:" + spec.machine + ':' + spec.workload +
                       ':' + std::to_string(spec.maxInsts) + ':' +
                       std::to_string(spec.cells) + ':' +
                       std::to_string(spec.seed) + ':';
    const std::vector<inject::Target> &targets =
        spec.targets.empty() ? inject::allTargets() : spec.targets;
    for (std::size_t i = 0; i < targets.size(); i++) {
        if (i)
            name += '+';
        name += inject::targetName(targets[i]);
    }
    return name;
}

bool
parseVulnCampaignName(const std::string &name, VulnSpec *out,
                      std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = "vulnerability campaign '" + name + "' " + why +
                     " (expected vuln:<machine>:<workload>:<max-insts>"
                     ":<cells>:<seed>:<target>[+<target>...])";
        return false;
    };

    std::vector<std::string> parts;
    std::size_t start = 0;
    for (;;) {
        std::size_t colon = name.find(':', start);
        if (colon == std::string::npos) {
            parts.push_back(name.substr(start));
            break;
        }
        parts.push_back(name.substr(start, colon - start));
        start = colon + 1;
    }
    if (parts.size() != 7 || parts[0] != "vuln")
        return fail("is malformed");
    if (parts[1].empty() || parts[2].empty())
        return fail("needs a machine and a workload");

    auto number = [](const std::string &s, std::uint64_t *v) {
        if (s.empty())
            return false;
        *v = 0;
        for (char c : s) {
            if (c < '0' || c > '9')
                return false;
            *v = *v * 10 + std::uint64_t(c - '0');
        }
        return true;
    };

    VulnSpec spec;
    spec.machine = parts[1];
    spec.workload = parts[2];
    if (!number(parts[3], &spec.maxInsts) || spec.maxInsts == 0)
        return fail("needs a positive max-insts cap");
    if (!number(parts[4], &spec.cells) || spec.cells == 0)
        return fail("needs a positive cell count");
    if (!number(parts[5], &spec.seed))
        return fail("has a malformed seed");

    const std::string &tlist = parts[6];
    std::size_t tstart = 0;
    for (;;) {
        std::size_t plus = tlist.find('+', tstart);
        std::string tname =
            plus == std::string::npos
                ? tlist.substr(tstart)
                : tlist.substr(tstart, plus - tstart);
        inject::Target target;
        if (!inject::targetByName(tname, &target))
            return fail("names unknown target '" + tname +
                        "' (targets: " + inject::targetNameList() +
                        ")");
        spec.targets.push_back(target);
        if (plus == std::string::npos)
            break;
        tstart = plus + 1;
    }

    *out = spec;
    return true;
}

CampaignSpec
vulnCampaign(const VulnSpec &spec)
{
    CampaignSpec out;
    VulnSpec full = spec;
    if (full.targets.empty())
        full.targets = inject::allTargets();
    out.name = vulnCampaignName(full);
    // Strike cycles draw from [1, maxInsts]: with IPC ≤ commit width
    // every plausible strike lands inside the golden run's lifetime,
    // and late strikes past halt are naturally masked.
    std::vector<inject::StateInjection> plan = inject::makeInjectionPlan(
        std::size_t(full.cells), full.seed, full.targets, full.maxInsts);
    out.cells.reserve(plan.size());
    for (const inject::StateInjection &injection : plan) {
        Cell cell{full.machine, Optimization::None, full.workload,
                  full.maxInsts, 0, {}, injection};
        out.cells.push_back(std::move(cell));
    }
    return out;
}

std::string
shardCampaignName(const std::string &base, std::size_t index,
                  std::size_t count)
{
    return "shard:" + std::to_string(index) + "/" +
           std::to_string(count) + ":" + base;
}

bool
parseShardCampaignName(const std::string &name, std::size_t *index,
                       std::size_t *count, std::string *base,
                       std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = "bad shard campaign '" + name + "': " + why;
        return false;
    };
    if (name.rfind("shard:", 0) != 0)
        return fail("missing shard: prefix");
    std::size_t slash = name.find('/', 6);
    if (slash == std::string::npos)
        return fail("expected shard:<i>/<n>:<base>");
    // The base name may contain colons (vuln: specs do), so the
    // index/count fields are delimited by the *first* colon after the
    // slash and everything beyond it is the base, verbatim.
    std::size_t colon = name.find(':', slash + 1);
    if (colon == std::string::npos)
        return fail("expected shard:<i>/<n>:<base>");
    std::string indexText = name.substr(6, slash - 6);
    std::string countText = name.substr(slash + 1, colon - slash - 1);
    if (indexText.empty() ||
        indexText.find_first_not_of("0123456789") != std::string::npos)
        return fail("shard index '" + indexText + "' is not a number");
    if (countText.empty() ||
        countText.find_first_not_of("0123456789") != std::string::npos)
        return fail("shard count '" + countText + "' is not a number");
    std::size_t i = std::strtoull(indexText.c_str(), nullptr, 10);
    std::size_t n = std::strtoull(countText.c_str(), nullptr, 10);
    if (n == 0)
        return fail("shard count must be > 0");
    if (i >= n)
        return fail("shard index " + indexText + " out of range for " +
                    countText + " shards");
    std::string rest = name.substr(colon + 1);
    if (rest.empty())
        return fail("empty base campaign name");
    *index = i;
    *count = n;
    *base = rest;
    return true;
}

bool
campaignByName(const std::string &name, CampaignSpec *out)
{
    if (name.rfind("shard:", 0) == 0) {
        std::size_t index = 0;
        std::size_t count = 0;
        std::string base;
        std::string error;
        if (!parseShardCampaignName(name, &index, &count, &base, &error))
            return false;
        CampaignSpec whole;
        if (!campaignByName(base, &whole))
            return false;
        CampaignSpec sliced;
        // Keep the base name: shard journal lines must be the bytes
        // the single-host run writes (see shardCampaignName()).
        sliced.name = whole.name;
        for (std::size_t c = index; c < whole.cells.size(); c += count)
            sliced.cells.push_back(whole.cells[c]);
        *out = std::move(sliced);
        return true;
    }
    if (name.rfind("vuln:", 0) == 0) {
        VulnSpec spec;
        std::string error;
        if (!parseVulnCampaignName(name, &spec, &error))
            return false;
        *out = vulnCampaign(spec);
        return true;
    }
    if (name == "table2")
        *out = table2Campaign();
    else if (name == "table3")
        *out = table3Campaign();
    else if (name == "table4")
        *out = table4Campaign();
    else if (name == "table5")
        *out = table5Campaign();
    else if (name == "smoke")
        *out = smokeCampaign();
    else if (name == "dramsweep")
        *out = dramSweepCampaign();
    else
        return false;
    return true;
}

} // namespace runner
} // namespace simalpha

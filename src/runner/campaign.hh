/**
 * @file
 * Campaign specifications: the (machine × workload) grids behind the
 * paper's Tables 2–5, expressed as flat lists of cells an
 * ExperimentRunner can execute in any order.
 *
 * A cell is fully self-describing — machine name, Table-5 optimization,
 * workload name, instruction limit, and RNG seed — so executing it
 * needs no shared state beyond the immutable workload catalogue, which
 * is what makes parallel campaigns bit-identical to serial ones.
 */

#ifndef SIMALPHA_RUNNER_CAMPAIGN_HH
#define SIMALPHA_RUNNER_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.hh"
#include "inject/inject.hh"
#include "isa/isa.hh"
#include "validate/machines.hh"

namespace simalpha {
namespace runner {

/** One (machine × workload) experiment of a campaign. */
struct Cell
{
    std::string machine;
    validate::Optimization opt = validate::Optimization::None;
    std::string workload;
    /** Committed-instruction cap (0 = run to completion). */
    std::uint64_t maxInsts = 0;
    /**
     * Seed of the cell's private RNG. 0 means "derive from the cell
     * identity" (see cellSeed()); either way every execution of the
     * same cell sees the same stream.
     */
    std::uint64_t seed = 0;
    /**
     * Sampled execution: when enabled, the cell is measured as
     * checkpoint-restored detailed windows instead of one contiguous
     * detailed run, and the result carries a sampling-error bar. A
     * disabled spec (the default) leaves the cell — and its journal
     * key, cache key, and seed — exactly as before.
     */
    checkpoint::SampleSpec sample;
    /**
     * Soft-error injection: when enabled, the cell runs with one
     * planned bit flip armed and its result carries the outcome
     * classification against the uninjected golden run. A disabled
     * spec (the default) leaves the cell — and its journal key,
     * cache key, and seed — exactly as before.
     */
    inject::StateInjection inject;
};

/** A named list of cells, executed together. */
struct CampaignSpec
{
    std::string name;
    std::vector<Cell> cells;

    /** Apply one instruction cap to every cell (for quick sweeps). */
    CampaignSpec withMaxInsts(std::uint64_t max_insts) const;

    /** Apply one sampling spec to every cell (`--sample ...`). */
    CampaignSpec withSampling(const checkpoint::SampleSpec &spec) const;
};

/** Deterministic per-cell seed derived from the cell identity. */
std::uint64_t cellSeed(const Cell &cell);

/** Manifest hash of the cell's machine under the current build; empty
 *  for unknown machines. Shared by the runner's cache/replay
 *  validation and the supervisor's journal merge. */
std::string cellManifestHash(const Cell &cell);

/** Names of every bundled workload (microbench, SPEC2000 synthetics,
 *  stream kernels, lmbench), in catalogue order. */
std::vector<std::string> workloadNames();

/**
 * Generate a bundled workload by name. Each call builds a fresh
 * Program (generation is deterministic), so concurrent cells never
 * share mutable state.
 * @return false with *error filled on an unknown name.
 */
bool buildWorkload(const std::string &name, Program *out,
                   std::string *error);

/** Table 2: the 21 microbenchmarks on the given machines (default:
 *  ds10l, sim-initial, sim-alpha, sim-outorder as in the paper). */
CampaignSpec table2Campaign();
CampaignSpec table2Campaign(const std::vector<std::string> &machines);

/** Table 3: the ten SPEC2000 synthetics on ds10l, sim-alpha,
 *  sim-stripped, sim-outorder. */
CampaignSpec table3Campaign();

/** Table 4: the macro suite on sim-alpha and its ten single-feature
 *  ablations. */
CampaignSpec table4Campaign();

/** Table 5: the macro suite across all 13 stability configurations ×
 *  {none, fastl1, bigl1, regs}. */
CampaignSpec table5Campaign();

/** A 12-cell capped microbenchmark grid on sim-outorder — a campaign
 *  that finishes in well under a second, for isolation-mode smoke
 *  tests and fault drills (`simalpha --campaign smoke`). */
CampaignSpec smokeCampaign();

/** The DRAM-policy sweep (§4.2 as an experiment axis): the ten SPEC2000
 *  synthetics on sim-alpha under every DRAM backend, classic spelled
 *  explicitly so the sweep axis reads off the machine column. Cap with
 *  --max-insts for interactive runs. */
CampaignSpec dramSweepCampaign();

/**
 * A vulnerability campaign: one (machine, workload, cap) identity
 * fanned out over `cells` single-bit injections planned from `seed`
 * across `targets`. The campaign name encodes every parameter, so
 * process shards (which receive only the name) re-derive an identical
 * plan — the same trick sampled campaigns use for their SampleSpec.
 */
struct VulnSpec
{
    std::string machine = "sim-outorder";
    std::string workload;
    /** Committed-instruction cap of the golden run (must be > 0, and
     *  large enough that the workload finishes under it). */
    std::uint64_t maxInsts = 0;
    /** Number of injection cells. */
    std::uint64_t cells = 0;
    /** Plan seed (0 folds to 1 inside the generator). */
    std::uint64_t seed = 0;
    /** Structures to strike, round-robin (empty = all targets). */
    std::vector<inject::Target> targets;
};

/** "vuln:<machine>:<workload>:<maxInsts>:<cells>:<seed>:<t1+t2+..>". */
std::string vulnCampaignName(const VulnSpec &spec);

/** Parse vulnCampaignName() output; false with *error filled. */
bool parseVulnCampaignName(const std::string &name, VulnSpec *out,
                           std::string *error);

/** Build the campaign: `cells` injection cells (deterministic plan)
 *  named by vulnCampaignName(spec). */
CampaignSpec vulnCampaign(const VulnSpec &spec);

/**
 * "shard:<i>/<n>:<base>" — deterministic slice i of base campaign
 * <base> partitioned round-robin over n shards (the same assignment
 * shardCells() gives the process-isolation workers). The returned
 * spec keeps the *base* campaign name, so journal lines produced by a
 * shard are byte-identical to the lines the single-host run writes
 * for those cells — which is what lets a fleet dispatcher merge
 * per-worker shard journals into a master journal indistinguishable
 * from a local run. <base> may itself contain colons (vuln: specs).
 */
std::string shardCampaignName(const std::string &base, std::size_t index,
                              std::size_t count);

/** Parse shardCampaignName() output; false with *error filled. */
bool parseShardCampaignName(const std::string &name, std::size_t *index,
                            std::size_t *count, std::string *base,
                            std::string *error);

/** Campaign by name ("table2".."table5", "smoke", "dramsweep", a
 *  "vuln:..." spec, or a "shard:<i>/<n>:<base>" slice); false on
 *  unknown names. */
bool campaignByName(const std::string &name, CampaignSpec *out);

} // namespace runner
} // namespace simalpha

#endif // SIMALPHA_RUNNER_CAMPAIGN_HH

#include "artifacts.hh"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "validate/metrics.hh"

namespace simalpha {
namespace runner {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Fixed-precision double: deterministic for equal values. */
std::string
fixed6(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

std::string
displayMachine(const CellResult &r)
{
    std::string m = r.cell.machine;
    if (r.cell.opt != validate::Optimization::None)
        m += "+" + validate::optimizationName(r.cell.opt);
    return m;
}

/** Match key for diffing: the full cell identity. */
std::string
identityKey(const CellResult &r)
{
    return r.cell.machine + '\x1f' +
           validate::optimizationName(r.cell.opt) + '\x1f' +
           r.cell.workload + '\x1f' +
           std::to_string(r.cell.maxInsts) + '\x1f' +
           std::to_string(r.seed);
}

} // namespace

std::string
toJson(const CampaignResult &result)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"campaign\": \"" << jsonEscape(result.campaign)
       << "\",\n";
    os << "  \"cells\": [";
    for (std::size_t i = 0; i < result.cells.size(); i++) {
        const CellResult &r = result.cells[i];
        os << (i ? ",\n" : "\n");
        os << "    {\n";
        os << "      \"machine\": \"" << jsonEscape(r.cell.machine)
           << "\",\n";
        os << "      \"optimization\": \""
           << validate::optimizationName(r.cell.opt) << "\",\n";
        os << "      \"workload\": \"" << jsonEscape(r.cell.workload)
           << "\",\n";
        os << "      \"max_insts\": " << r.cell.maxInsts << ",\n";
        os << "      \"seed\": " << r.seed << ",\n";
        os << "      \"ok\": " << (r.ok ? "true" : "false") << ",\n";
        os << "      \"error\": \"" << jsonEscape(r.error) << "\",\n";
        os << "      \"error_class\": \"" << jsonEscape(r.errorClass)
           << "\",\n";
        os << "      \"cycles\": " << r.cycles << ",\n";
        os << "      \"insts\": " << r.instsCommitted << ",\n";
        os << "      \"finished\": " << (r.finished ? "true" : "false")
           << ",\n";
        os << "      \"ipc\": " << fixed6(r.ipc()) << ",\n";
        os << "      \"cpi\": " << fixed6(r.cpi()) << ",\n";
        // Sampling fields only on sampled cells: unsampled campaigns
        // (the golden tables) keep their exact historical bytes.
        if (r.cell.sample.enabled()) {
            os << "      \"sample\": \""
               << checkpoint::formatSampleSpec(r.cell.sample)
               << "\",\n";
            os << "      \"sample_windows\": " << r.sampleWindows
               << ",\n";
            os << "      \"sample_total_insts\": "
               << r.sampleTotalInsts << ",\n";
            os << "      \"sample_ipc_mean\": "
               << fixed6(r.sampleIpcMean) << ",\n";
            os << "      \"sample_ipc_stddev\": "
               << fixed6(r.sampleIpcStddev) << ",\n";
            os << "      \"sample_ipc_ci\": " << fixed6(r.sampleIpcCi)
               << ",\n";
        }
        // Injection fields likewise: only injected cells carry them.
        if (r.cell.inject.enabled()) {
            os << "      \"inject\": \""
               << inject::formatInjectSpec(r.cell.inject) << "\",\n";
            os << "      \"inject_outcome\": \""
               << jsonEscape(r.injectOutcome) << "\",\n";
            os << "      \"inject_detail\": \""
               << jsonEscape(r.injectDetail) << "\",\n";
        }
        os << "      \"manifest_hash\": \"" << r.manifestHash
           << "\",\n";
        os << "      \"counters\": {";
        bool first = true;
        for (const auto &kv : r.counters) {
            os << (first ? "\n" : ",\n");
            os << "        \"" << jsonEscape(kv.first)
               << "\": " << kv.second;
            first = false;
        }
        os << (first ? "}" : "\n      }") << "\n";
        os << "    }";
    }
    os << "\n  ]\n";
    os << "}\n";
    return os.str();
}

std::string
toCsv(const CampaignResult &result)
{
    // Injection columns appear only when some cell injected, so the
    // CSVs of every pre-injection campaign keep their exact bytes
    // (the golden-table artifacts are compared byte-for-byte).
    bool injected = false;
    for (const CellResult &r : result.cells)
        injected = injected || r.cell.inject.enabled();

    std::ostringstream os;
    os << "machine,optimization,workload,max_insts,seed,ok,error,"
          "error_class,cycles,insts,finished,ipc,cpi,manifest_hash,"
          "sample,sample_windows,sample_total_insts,sample_ipc_mean,"
          "sample_ipc_stddev,sample_ipc_ci";
    if (injected)
        os << ",inject,inject_outcome,inject_detail";
    os << "\n";
    for (const CellResult &r : result.cells) {
        // Free-form text may contain commas; quote it.
        auto quote = [](const std::string &s) {
            std::string quoted = "\"";
            for (char c : s)
                quoted += (c == '"') ? "\"\"" : std::string(1, c);
            quoted += "\"";
            return quoted;
        };
        os << r.cell.machine << ','
           << validate::optimizationName(r.cell.opt) << ','
           << r.cell.workload << ',' << r.cell.maxInsts << ','
           << r.seed << ',' << (r.ok ? 1 : 0) << ','
           << quote(r.error) << ','
           << r.errorClass << ','
           << r.cycles << ',' << r.instsCommitted << ','
           << (r.finished ? 1 : 0) << ',' << fixed6(r.ipc()) << ','
           << fixed6(r.cpi()) << ',' << r.manifestHash << ','
           << (r.cell.sample.enabled()
                   ? checkpoint::formatSampleSpec(r.cell.sample)
                   : std::string())
           << ',' << r.sampleWindows << ',' << r.sampleTotalInsts
           << ',' << fixed6(r.sampleIpcMean) << ','
           << fixed6(r.sampleIpcStddev) << ','
           << fixed6(r.sampleIpcCi);
        if (injected)
            os << ','
               << (r.cell.inject.enabled()
                       ? inject::formatInjectSpec(r.cell.inject)
                       : std::string())
               << ',' << r.injectOutcome << ','
               << quote(r.injectDetail);
        os << "\n";
    }
    return os.str();
}

bool
writeFileAtomic(const std::string &path, const std::string &content,
                std::string *error)
{
    // The temporary lives in the target's directory so the final
    // rename(2) never crosses a filesystem and is atomic.
    std::string tmp =
        path + ".tmp." + std::to_string(long(::getpid()));
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (error)
            *error = "cannot open '" + tmp + "' for writing";
        return false;
    }
    out << content;
    out.close();
    if (!out) {
        std::remove(tmp.c_str());
        if (error)
            *error = "write to '" + tmp + "' failed";
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        if (error)
            *error = "cannot rename '" + tmp + "' to '" + path + "'";
        return false;
    }
    return true;
}

bool
writeArtifact(const CampaignResult &result, const std::string &path,
              std::string *error)
{
    bool csv = path.size() >= 4 &&
               path.compare(path.size() - 4, 4, ".csv") == 0;
    return writeFileAtomic(path, csv ? toCsv(result) : toJson(result),
                           error);
}

std::vector<CellDiff>
diffCampaigns(const CampaignResult &a, const CampaignResult &b)
{
    std::vector<CellDiff> diffs;

    auto describe = [](const CellResult &r, const std::string &field,
                       const std::string &va, const std::string &vb) {
        return CellDiff{r.cell.machine,
                        validate::optimizationName(r.cell.opt),
                        r.cell.workload, field, va, vb};
    };

    std::map<std::string, const CellResult *> bIndex;
    for (const CellResult &r : b.cells)
        bIndex[identityKey(r)] = &r;

    std::map<std::string, bool> seen;
    for (const CellResult &ra : a.cells) {
        std::string key = identityKey(ra);
        seen[key] = true;
        auto it = bIndex.find(key);
        if (it == bIndex.end()) {
            diffs.push_back(
                describe(ra, "missing", "present", "absent"));
            continue;
        }
        const CellResult &rb = *it->second;
        if (ra.ok != rb.ok)
            diffs.push_back(describe(ra, "ok",
                                     ra.ok ? "true" : "false",
                                     rb.ok ? "true" : "false"));
        if (ra.errorClass != rb.errorClass)
            diffs.push_back(describe(ra, "error_class", ra.errorClass,
                                     rb.errorClass));
        if (ra.cycles != rb.cycles)
            diffs.push_back(describe(ra, "cycles",
                                     std::to_string(ra.cycles),
                                     std::to_string(rb.cycles)));
        if (ra.instsCommitted != rb.instsCommitted)
            diffs.push_back(
                describe(ra, "insts",
                         std::to_string(ra.instsCommitted),
                         std::to_string(rb.instsCommitted)));
        if (ra.manifestHash != rb.manifestHash)
            diffs.push_back(describe(ra, "manifest_hash",
                                     ra.manifestHash,
                                     rb.manifestHash));
        if (ra.counters != rb.counters)
            diffs.push_back(describe(ra, "counters",
                                     "(differ)", "(differ)"));
        if (ra.sampleWindows != rb.sampleWindows ||
            ra.sampleTotalInsts != rb.sampleTotalInsts ||
            fixed6(ra.sampleIpcMean) != fixed6(rb.sampleIpcMean) ||
            fixed6(ra.sampleIpcStddev) != fixed6(rb.sampleIpcStddev) ||
            fixed6(ra.sampleIpcCi) != fixed6(rb.sampleIpcCi))
            diffs.push_back(describe(ra, "sample",
                                     "(differ)", "(differ)"));
        if (ra.injectOutcome != rb.injectOutcome)
            diffs.push_back(describe(ra, "inject_outcome",
                                     ra.injectOutcome,
                                     rb.injectOutcome));
    }
    for (const CellResult &rb : b.cells)
        if (!seen.count(identityKey(rb)))
            diffs.push_back(
                describe(rb, "missing", "absent", "present"));
    return diffs;
}

std::vector<MachineAggregate>
aggregateByMachine(const CampaignResult &result)
{
    std::vector<MachineAggregate> out;
    std::map<std::string, std::size_t> index;
    std::map<std::string, std::vector<RunResult>> runs;

    for (const CellResult &r : result.cells) {
        std::string m = displayMachine(r);
        if (!index.count(m)) {
            index[m] = out.size();
            out.push_back({m, 0, 0, 0, 0, 0.0});
        }
        MachineAggregate &agg = out[index[m]];
        if (!r.ok) {
            agg.cellsFailed++;
            continue;
        }
        agg.cellsOk++;
        agg.totalCycles += r.cycles;
        agg.totalInsts += r.instsCommitted;
        // Only cells with a measurable IPC feed the harmonic mean:
        // classified injection outcomes (crash/deadlock/timeout) are
        // ok results with zeroed numerics.
        if (r.cycles && r.instsCommitted)
            runs[m].push_back(r.toRunResult());
    }

    for (MachineAggregate &agg : out)
        if (!runs[agg.machine].empty())
            agg.hmeanIpc = validate::aggregateIpc(runs[agg.machine]);
    return out;
}

std::string
toSummaryJson(const RunSummary &s)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"campaign\": \"" << jsonEscape(s.campaign) << "\",\n";
    os << "  \"cells\": " << s.cells << ",\n";
    os << "  \"ok\": " << s.cellsOk << ",\n";
    os << "  \"failed\": " << s.cellsFailed << ",\n";
    os << "  \"cache_hits\": " << s.cacheHits << ",\n";
    os << "  \"store\": {\n";
    os << "    \"enabled\": " << (s.storeEnabled ? "true" : "false")
       << ",\n";
    os << "    \"path\": \"" << jsonEscape(s.storePath) << "\",\n";
    os << "    \"hits\": " << s.store.hits << ",\n";
    os << "    \"misses\": " << s.store.misses << ",\n";
    os << "    \"bytes_read\": " << s.store.bytesRead << ",\n";
    os << "    \"bytes_written\": " << s.store.bytesWritten << ",\n";
    os << "    \"shards\": [";
    for (std::size_t i = 0; i < s.shardStore.size(); i++) {
        const StoreTraffic &t = s.shardStore[i];
        os << (i ? ",\n" : "\n");
        os << "      {\"shard\": " << i << ", \"hits\": " << t.hits
           << ", \"misses\": " << t.misses
           << ", \"bytes_read\": " << t.bytesRead
           << ", \"bytes_written\": " << t.bytesWritten << "}";
    }
    os << (s.shardStore.empty() ? "]\n" : "\n    ]\n");
    os << "  }\n";
    os << "}\n";
    return os.str();
}

std::string
toSummaryCsv(const RunSummary &s)
{
    std::ostringstream os;
    os << "metric,value\n";
    os << "campaign," << s.campaign << "\n";
    os << "cells," << s.cells << "\n";
    os << "ok," << s.cellsOk << "\n";
    os << "failed," << s.cellsFailed << "\n";
    os << "cache_hits," << s.cacheHits << "\n";
    os << "store_enabled," << (s.storeEnabled ? 1 : 0) << "\n";
    os << "store_hits," << s.store.hits << "\n";
    os << "store_misses," << s.store.misses << "\n";
    os << "store_bytes_read," << s.store.bytesRead << "\n";
    os << "store_bytes_written," << s.store.bytesWritten << "\n";
    for (std::size_t i = 0; i < s.shardStore.size(); i++) {
        const StoreTraffic &t = s.shardStore[i];
        os << "shard" << i << "_store_hits," << t.hits << "\n";
        os << "shard" << i << "_store_misses," << t.misses << "\n";
        os << "shard" << i << "_store_bytes_read," << t.bytesRead
           << "\n";
        os << "shard" << i << "_store_bytes_written,"
           << t.bytesWritten << "\n";
    }
    return os.str();
}

bool
writeSummaryArtifacts(const RunSummary &summary,
                      const std::string &artifactPath,
                      std::string *error)
{
    return writeFileAtomic(artifactPath + ".summary.json",
                           toSummaryJson(summary), error) &&
           writeFileAtomic(artifactPath + ".summary.csv",
                           toSummaryCsv(summary), error);
}

} // namespace runner
} // namespace simalpha

#include "journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "checkpoint/checkpoint.hh"
#include "common/logging.hh"

#include "runner/artifacts.hh"
#include "runner/campaign.hh"

namespace simalpha {
namespace runner {

using validate::Optimization;

std::string
journalKey(const Cell &cell)
{
    std::string key = cell.machine;
    key += '\x1f';
    key += validate::optimizationName(cell.opt);
    key += '\x1f';
    key += cell.workload;
    key += '\x1f';
    key += std::to_string(cell.maxInsts);
    key += '\x1f';
    key += std::to_string(cellSeed(cell));
    // Sampled and unsampled runs of one identity are different
    // measurements; unsampled keys keep their historical bytes.
    if (cell.sample.enabled()) {
        key += '\x1f';
        key += checkpoint::formatSampleSpec(cell.sample);
    }
    // Injected cells likewise: the spec joins the identity, plain
    // cells keep their historical key bytes.
    if (cell.inject.enabled()) {
        key += '\x1f';
        key += inject::formatInjectSpec(cell.inject);
    }
    return key;
}

/** Fixed-point text form of the sampling statistics: the journal's
 *  line parser reads only strings/integers/bools, and a fixed decimal
 *  representation round-trips byte-identically. */
static std::string
fixed6(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

std::string
journalLine(const std::string &campaign, const CellResult &r)
{
    std::ostringstream os;
    os << "{\"campaign\":\"" << jsonEscape(campaign) << "\""
       << ",\"machine\":\"" << jsonEscape(r.cell.machine) << "\""
       << ",\"optimization\":\""
       << validate::optimizationName(r.cell.opt) << "\""
       << ",\"workload\":\"" << jsonEscape(r.cell.workload) << "\""
       << ",\"max_insts\":" << r.cell.maxInsts
       << ",\"seed\":" << r.seed
       << ",\"manifest_hash\":\"" << jsonEscape(r.manifestHash) << "\""
       << ",\"ok\":" << (r.ok ? "true" : "false")
       << ",\"error\":\"" << jsonEscape(r.error) << "\""
       << ",\"error_class\":\"" << jsonEscape(r.errorClass) << "\""
       << ",\"cycles\":" << r.cycles
       << ",\"insts\":" << r.instsCommitted
       << ",\"finished\":" << (r.finished ? "true" : "false");
    // Sampling fields appear only on sampled cells, so every line an
    // unsampled campaign writes is byte-identical to the pre-sampling
    // format (golden artifacts, store payloads, resume keys).
    if (r.cell.sample.enabled()) {
        os << ",\"sample\":\""
           << checkpoint::formatSampleSpec(r.cell.sample) << "\""
           << ",\"sample_windows\":" << r.sampleWindows
           << ",\"sample_total_insts\":" << r.sampleTotalInsts
           << ",\"sample_ipc_mean\":\"" << fixed6(r.sampleIpcMean)
           << "\""
           << ",\"sample_ipc_stddev\":\"" << fixed6(r.sampleIpcStddev)
           << "\""
           << ",\"sample_ipc_ci\":\"" << fixed6(r.sampleIpcCi) << "\"";
    }
    // Injection fields likewise appear only on injected cells, so
    // plain campaigns keep writing their historical bytes.
    if (r.cell.inject.enabled()) {
        os << ",\"inject\":\""
           << inject::formatInjectSpec(r.cell.inject) << "\""
           << ",\"inject_outcome\":\"" << jsonEscape(r.injectOutcome)
           << "\""
           << ",\"inject_detail\":\"" << jsonEscape(r.injectDetail)
           << "\"";
    }
    os << ",\"counters\":{";
    bool first = true;
    for (const auto &kv : r.counters) {
        if (!first)
            os << ",";
        os << "\"" << jsonEscape(kv.first) << "\":" << kv.second;
        first = false;
    }
    os << "}}";
    return os.str();
}

namespace {

/**
 * A minimal parser for the journal's own output: flat objects whose
 * values are strings, unsigned integers, booleans, or one nested
 * string->integer object. Not a general JSON parser — it only needs to
 * read what journalLine() writes (and reject everything else).
 */
class LineParser
{
  public:
    explicit LineParser(const std::string &text) : _s(text) {}

    bool
    object(std::unordered_map<std::string, std::string> *strings,
           std::unordered_map<std::string, std::uint64_t> *numbers,
           std::unordered_map<std::string, bool> *bools,
           std::map<std::string, std::uint64_t> *counters)
    {
        skipWs();
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            std::string key;
            if (!stringLit(&key))
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            skipWs();
            if (peek() == '"') {
                std::string v;
                if (!stringLit(&v))
                    return false;
                (*strings)[key] = v;
            } else if (peek() == 't' || peek() == 'f') {
                bool v;
                if (!boolLit(&v))
                    return false;
                (*bools)[key] = v;
            } else if (peek() == '{') {
                if (key != "counters" || !countersObj(counters))
                    return false;
            } else {
                std::uint64_t v;
                if (!numberLit(&v))
                    return false;
                (*numbers)[key] = v;
            }
            skipWs();
            if (eat(',')) {
                skipWs();
                continue;
            }
            if (eat('}')) {
                skipWs();
                return _pos >= _s.size();
            }
            return false;
        }
    }

  private:
    char
    peek() const
    {
        return _pos < _s.size() ? _s[_pos] : '\0';
    }

    bool
    eat(char c)
    {
        if (peek() != c)
            return false;
        _pos++;
        return true;
    }

    void
    skipWs()
    {
        while (_pos < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_pos])))
            _pos++;
    }

    bool
    stringLit(std::string *out)
    {
        if (!eat('"'))
            return false;
        out->clear();
        while (_pos < _s.size()) {
            char c = _s[_pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (_pos >= _s.size())
                return false;
            char esc = _s[_pos++];
            switch (esc) {
              case '"':
                *out += '"';
                break;
              case '\\':
                *out += '\\';
                break;
              case 'n':
                *out += '\n';
                break;
              case 't':
                *out += '\t';
                break;
              case 'u': {
                if (_pos + 4 > _s.size())
                    return false;
                unsigned v = 0;
                for (int i = 0; i < 4; i++) {
                    char h = _s[_pos++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= unsigned(h - 'A' + 10);
                    else
                        return false;
                }
                // The writer only \u-escapes control bytes.
                if (v > 0xFF)
                    return false;
                *out += char(v);
                break;
              }
              default:
                return false;
            }
        }
        return false;
    }

    bool
    boolLit(bool *out)
    {
        if (_s.compare(_pos, 4, "true") == 0) {
            _pos += 4;
            *out = true;
            return true;
        }
        if (_s.compare(_pos, 5, "false") == 0) {
            _pos += 5;
            *out = false;
            return true;
        }
        return false;
    }

    bool
    numberLit(std::uint64_t *out)
    {
        std::size_t start = _pos;
        while (_pos < _s.size() &&
               std::isdigit(static_cast<unsigned char>(_s[_pos])))
            _pos++;
        if (_pos == start)
            return false;
        *out = std::strtoull(_s.substr(start, _pos - start).c_str(),
                             nullptr, 10);
        return true;
    }

    bool
    countersObj(std::map<std::string, std::uint64_t> *out)
    {
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            std::string key;
            std::uint64_t value;
            if (!stringLit(&key))
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            skipWs();
            if (!numberLit(&value))
                return false;
            (*out)[key] = value;
            skipWs();
            if (eat(',')) {
                skipWs();
                continue;
            }
            return eat('}');
        }
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

Optimization
parseOptimization(const std::string &name)
{
    if (name == "fastl1")
        return Optimization::FastL1;
    if (name == "bigl1")
        return Optimization::BigL1;
    if (name == "regs")
        return Optimization::MoreRegs;
    return Optimization::None;
}

} // namespace

bool
parseJournalLine(const std::string &line, const std::string &campaign,
                 CellResult *result, std::string *key)
{
    std::unordered_map<std::string, std::string> strings;
    std::unordered_map<std::string, std::uint64_t> numbers;
    std::unordered_map<std::string, bool> bools;
    std::map<std::string, std::uint64_t> counters;

    LineParser parser(line);
    if (!parser.object(&strings, &numbers, &bools, &counters))
        return false;
    if (strings["campaign"] != campaign)
        return false;
    if (!strings.count("machine") || !strings.count("workload") ||
        !numbers.count("seed") || !bools.count("ok"))
        return false;

    CellResult r;
    r.cell.machine = strings["machine"];
    r.cell.opt = parseOptimization(strings["optimization"]);
    r.cell.workload = strings["workload"];
    r.cell.maxInsts = numbers["max_insts"];
    r.cell.seed = numbers["seed"];    // pin the journaled seed
    r.seed = numbers["seed"];
    r.manifestHash = strings["manifest_hash"];
    r.ok = bools["ok"];
    r.error = strings["error"];
    r.errorClass = strings["error_class"];
    r.cycles = numbers["cycles"];
    r.instsCommitted = numbers["insts"];
    r.finished = bools.count("finished") ? bools["finished"] : false;
    if (strings.count("sample")) {
        std::string serror;
        if (!checkpoint::parseSampleSpec(strings["sample"],
                                         &r.cell.sample, &serror))
            return false;
        r.sampleWindows = numbers["sample_windows"];
        r.sampleTotalInsts = numbers["sample_total_insts"];
        r.sampleIpcMean =
            std::strtod(strings["sample_ipc_mean"].c_str(), nullptr);
        r.sampleIpcStddev =
            std::strtod(strings["sample_ipc_stddev"].c_str(), nullptr);
        r.sampleIpcCi =
            std::strtod(strings["sample_ipc_ci"].c_str(), nullptr);
    }
    if (strings.count("inject")) {
        std::string ierror;
        if (!inject::parseInjectSpec(strings["inject"], &r.cell.inject,
                                     &ierror))
            return false;
        r.injectOutcome = strings["inject_outcome"];
        r.injectDetail = strings["inject_detail"];
    }
    r.counters = std::move(counters);
    r.fromJournal = true;

    *key = journalKey(r.cell);
    *result = std::move(r);
    return true;
}

bool
loadJournal(const std::string &path, const std::string &campaign,
            std::unordered_map<std::string, CellResult> *out,
            std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        // A journal that does not exist yet is an empty journal.
        return true;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
        if (error)
            *error = "error reading journal '" + path + "'";
        return false;
    }
    std::string data = buf.str();

    // A file not ending in '\n' carries the torn tail of a process
    // killed mid-write: the fragment can never be a valid entry, so
    // discard it loudly rather than feeding it to the parser — the
    // rest of the journal replays as usual.
    std::size_t usable = data.size();
    if (usable > 0 && data[usable - 1] != '\n') {
        std::size_t nl = data.rfind('\n');
        std::size_t torn =
            nl == std::string::npos ? usable : usable - (nl + 1);
        warn("journal '%s' ends in a torn line (%zu bytes, killed "
             "mid-write?); discarding it and replaying the %s",
             path.c_str(), torn,
             nl == std::string::npos ? "empty remainder"
                                     : "intact entries before it");
        usable = nl == std::string::npos ? 0 : nl + 1;
    }

    std::size_t pos = 0;
    while (pos < usable) {
        std::size_t nl = data.find('\n', pos);
        std::string line = data.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;
        CellResult r;
        std::string key;
        if (!parseJournalLine(line, campaign, &r, &key))
            continue;   // other campaign's (or a heartbeat) line
        (*out)[key] = std::move(r);
    }
    return true;
}

bool
journalSyncFromEnv()
{
    const char *env = std::getenv("SIMALPHA_JOURNAL_SYNC");
    return env && env[0] == '1' && env[1] == '\0';
}

CampaignJournal::~CampaignJournal()
{
    close();
}

bool
CampaignJournal::open(const std::string &path, std::string *error,
                      bool sync)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd >= 0)
        ::close(_fd);
    _fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (_fd < 0) {
        if (error)
            *error = "cannot open journal '" + path +
                     "' for append: " + std::strerror(errno);
        return false;
    }
    _sync = sync || journalSyncFromEnv();
    return true;
}

void
CampaignJournal::close()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd >= 0)
        ::close(_fd);
    _fd = -1;
}

void
CampaignJournal::append(const std::string &campaign,
                        const CellResult &result)
{
    appendRaw(journalLine(campaign, result));
}

void
CampaignJournal::appendRaw(const std::string &line)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_fd < 0)
        return;
    // One write(2) per line: O_APPEND writes from a single process
    // never interleave, so a kill between cells tears nothing.
    std::string buf = line;
    buf += '\n';
    std::size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::write(_fd, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;     // best effort, like the flush it replaces
        }
        off += std::size_t(n);
    }
    if (_sync)
        ::fsync(_fd);
}

} // namespace runner
} // namespace simalpha

#include "shard.hh"

#include <sys/wait.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <unordered_map>

#include "common/names.hh"
#include "runner/artifacts.hh"
#include "runner/journal.hh"

namespace simalpha {
namespace runner {

std::vector<std::vector<std::size_t>>
shardCells(std::size_t cellCount, std::size_t shardCount)
{
    if (shardCount == 0)
        shardCount = 1;
    std::vector<std::vector<std::size_t>> shards(shardCount);
    for (std::size_t i = 0; i < cellCount; i++)
        shards[i % shardCount].push_back(i);
    return shards;
}

std::string
formatCellList(const std::vector<std::size_t> &cells)
{
    std::string out;
    for (std::size_t i = 0; i < cells.size(); i++) {
        if (i)
            out += ',';
        out += std::to_string(cells[i]);
    }
    return out;
}

bool
parseCellList(const std::string &text, std::vector<std::size_t> *out,
              std::string *error)
{
    out->clear();
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find(',', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string item = text.substr(pos, end - pos);
        if (item.empty() ||
            item.find_first_not_of("0123456789") != std::string::npos) {
            if (error)
                *error = "bad cell index '" + item + "' in '" + text +
                         "'";
            return false;
        }
        out->push_back(std::strtoull(item.c_str(), nullptr, 10));
        pos = end + 1;
    }
    if (out->empty()) {
        if (error)
            *error = "empty cell list";
        return false;
    }
    return true;
}

namespace {

/** The one kind⇄name table: format, parse, and every error message
 *  listing the valid kinds derive from it (the injection-spec parser
 *  in src/inject/ builds its target table the same way). */
constexpr EnumName<FaultInjection::Kind> kFaultKinds[] = {
    {FaultInjection::Kind::Panic, "panic"},
    {FaultInjection::Kind::Stall, "stall"},
    {FaultInjection::Kind::Throw, "throw"},
    {FaultInjection::Kind::Abort, "abort"},
    {FaultInjection::Kind::Segfault, "segfault"},
    {FaultInjection::Kind::Hang, "hang"},
};

const char *
faultKindName(FaultInjection::Kind kind)
{
    return enumName(kFaultKinds, kind, "throw");
}

bool
faultKindByName(const std::string &name, FaultInjection::Kind *out)
{
    return enumByName(kFaultKinds, name, out);
}

} // namespace

std::string
formatFaultSpec(const FaultInjection &fault)
{
    std::string out = std::to_string(fault.cellIndex);
    out += ':';
    out += faultKindName(fault.kind);
    if (fault.times >= 0) {
        out += ':';
        out += std::to_string(fault.times);
    }
    return out;
}

bool
parseFaultSpec(const std::string &text, FaultInjection *out,
               std::string *error)
{
    std::size_t c1 = text.find(':');
    if (c1 == std::string::npos || c1 == 0) {
        if (error)
            *error = "fault spec '" + text +
                     "' is not <cell>:<kind>[:<times>] (kinds: " +
                     enumNameList(kFaultKinds) + ")";
        return false;
    }
    std::string index = text.substr(0, c1);
    if (index.find_first_not_of("0123456789") != std::string::npos) {
        if (error)
            *error = "bad cell index in fault spec '" + text + "'";
        return false;
    }
    std::size_t c2 = text.find(':', c1 + 1);
    std::string kind = text.substr(
        c1 + 1, c2 == std::string::npos ? std::string::npos
                                        : c2 - c1 - 1);
    FaultInjection fault;
    fault.cellIndex = std::strtoull(index.c_str(), nullptr, 10);
    if (!faultKindByName(kind, &fault.kind)) {
        if (error)
            *error = "unknown fault kind '" + kind + "' (kinds: " +
                     enumNameList(kFaultKinds) + ")";
        return false;
    }
    if (c2 != std::string::npos) {
        std::string times = text.substr(c2 + 1);
        if (times.empty() ||
            times.find_first_not_of("0123456789") !=
                std::string::npos) {
            if (error)
                *error = "bad times in fault spec '" + text + "'";
            return false;
        }
        fault.times = int(std::strtol(times.c_str(), nullptr, 10));
    }
    *out = fault;
    return true;
}

std::string
heartbeatLine(const std::string &campaign, std::size_t cellIndex,
              const std::string &workload)
{
    std::string line = "{\"campaign\":\"";
    line += jsonEscape(campaign);
    line += "\",\"heartbeat\":\"start\",\"cell\":";
    line += std::to_string(cellIndex);
    line += ",\"workload\":\"";
    line += jsonEscape(workload);
    line += "\"}";
    return line;
}

bool
parseHeartbeatLine(const std::string &line, const std::string &campaign,
                   std::size_t *cellIndex)
{
    // An exact-prefix parse of our own writer's output (the same
    // contract the journal parser follows: read what we write, reject
    // everything else).
    std::string prefix = "{\"campaign\":\"";
    prefix += jsonEscape(campaign);
    prefix += "\",\"heartbeat\":\"start\",\"cell\":";
    if (line.compare(0, prefix.size(), prefix) != 0)
        return false;
    std::size_t pos = prefix.size();
    std::size_t start = pos;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9')
        pos++;
    if (pos == start || pos >= line.size() || line[pos] != ',')
        return false;
    *cellIndex =
        std::strtoull(line.substr(start, pos - start).c_str(),
                      nullptr, 10);
    return true;
}

std::string
storeSummaryLine(const std::string &campaign,
                 const StoreTraffic &traffic)
{
    std::string line = "{\"campaign\":\"";
    line += jsonEscape(campaign);
    line += "\",\"store_summary\":{\"hits\":";
    line += std::to_string(traffic.hits);
    line += ",\"misses\":";
    line += std::to_string(traffic.misses);
    line += ",\"bytes_read\":";
    line += std::to_string(traffic.bytesRead);
    line += ",\"bytes_written\":";
    line += std::to_string(traffic.bytesWritten);
    line += "}}";
    return line;
}

bool
parseStoreSummaryLine(const std::string &line,
                      const std::string &campaign, StoreTraffic *out)
{
    // Same exact-prefix contract as parseHeartbeatLine: read what our
    // own writer produced, reject everything else (in particular the
    // campaign-journal parser rejects these lines, so they never leak
    // into merged results).
    std::string prefix = "{\"campaign\":\"";
    prefix += jsonEscape(campaign);
    prefix += "\",\"store_summary\":{\"hits\":";
    if (line.compare(0, prefix.size(), prefix) != 0)
        return false;
    std::size_t pos = prefix.size();
    auto number = [&](const char *sep, std::uint64_t *value) {
        std::size_t start = pos;
        while (pos < line.size() && line[pos] >= '0' &&
               line[pos] <= '9')
            pos++;
        if (pos == start)
            return false;
        *value = std::strtoull(
            line.substr(start, pos - start).c_str(), nullptr, 10);
        std::size_t n = std::strlen(sep);
        if (line.compare(pos, n, sep) != 0)
            return false;
        pos += n;
        return true;
    };
    StoreTraffic t;
    if (!number(",\"misses\":", &t.hits) ||
        !number(",\"bytes_read\":", &t.misses) ||
        !number(",\"bytes_written\":", &t.bytesRead) ||
        !number("}}", &t.bytesWritten))
        return false;
    if (pos != line.size())
        return false;
    *out = t;
    return true;
}

double
respawnBackoffSeconds(double baseSeconds, int respawnsUsed,
                      std::uint64_t shardId)
{
    if (respawnsUsed < 0)
        respawnsUsed = 0;
    if (respawnsUsed > 30)
        respawnsUsed = 30;      // 2^30 * base already means "give up"
    double delay =
        baseSeconds * double(std::uint64_t(1) << respawnsUsed);
    // SplitMix64 over (shardId, respawnsUsed) → a uniform factor in
    // [0.75, 1.25): pure, so every supervisor computes the same delay
    // for the same (shard, attempt), but no two shards share one.
    std::uint64_t z =
        shardId * 0x9E3779B97F4A7C15ULL + std::uint64_t(respawnsUsed);
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    double unit = double(z >> 11) * (1.0 / 9007199254740992.0);
    return delay * (0.75 + 0.5 * unit);
}

bool
describeWaitStatus(int waitStatus, std::string *errorClass,
                   std::string *message)
{
    if (WIFEXITED(waitStatus)) {
        int code = WEXITSTATUS(waitStatus);
        if (code == 0) {
            errorClass->clear();
            message->clear();
            return true;
        }
        *errorClass = "crash";
        *message = "worker exited with status " +
                   std::to_string(code) +
                   " without completing its cells";
        return false;
    }
    if (WIFSIGNALED(waitStatus)) {
        int sig = WTERMSIG(waitStatus);
        const char *name = strsignal(sig);
        *errorClass = "crash";
        *message = "worker killed by signal " + std::to_string(sig) +
                   " (" + (name ? name : "unknown") + ")";
        return false;
    }
    *errorClass = "crash";
    *message = "worker vanished with unintelligible wait status " +
               std::to_string(waitStatus);
    return false;
}

void
mergeShardJournals(const CampaignSpec &spec,
                   const std::vector<std::string> &journalPaths,
                   CampaignResult *out,
                   std::vector<std::size_t> *missing)
{
    // Later journals override earlier ones: loadJournal itself is
    // newest-wins per key, and inserting in path order preserves that
    // across files.
    std::unordered_map<std::string, CellResult> byKey;
    for (const std::string &path : journalPaths) {
        std::unordered_map<std::string, CellResult> one;
        std::string error;
        loadJournal(path, spec.name, &one, &error);
        for (auto &kv : one)
            byKey[kv.first] = std::move(kv.second);
    }

    out->campaign = spec.name;
    out->cells.assign(spec.cells.size(), CellResult());
    if (missing)
        missing->clear();
    for (std::size_t i = 0; i < spec.cells.size(); i++) {
        const Cell &cell = spec.cells[i];
        auto it = byKey.find(journalKey(cell));
        // Unknown machines journal an empty manifest hash, so
        // empty==empty correctly merges still-unknown machines.
        if (it != byKey.end() &&
            it->second.manifestHash == cellManifestHash(cell)) {
            CellResult merged = it->second;
            merged.cell = cell;     // identity of *this* cell
            out->cells[i] = std::move(merged);
            continue;
        }
        out->cells[i].cell = cell;
        out->cells[i].seed = cellSeed(cell);
        if (missing)
            missing->push_back(i);
    }
}

int
runShardWorker(const ShardWorkerOptions &options)
{
    CampaignSpec spec;
    if (!campaignByName(options.campaign, &spec))
        return 2;
    if (options.maxInsts)
        spec = spec.withMaxInsts(options.maxInsts);
    if (options.sample.enabled())
        spec = spec.withSampling(options.sample);

    // The heartbeat stream and the runner's journal share one
    // append-mode file; every line is flushed before the next is
    // produced, so the file is a strict start/result alternation.
    std::ofstream heartbeat(options.journalPath,
                            std::ios::binary | std::ios::app);
    if (!heartbeat)
        return 2;

    // Store traffic is accumulated across the slice and reported as
    // one summary line when the worker stops — normally or on
    // interrupt. (A crashed worker reports nothing; its respawn
    // re-reports the cells it reruns, and cells it completed before
    // crashing are counted by whoever served or published them.)
    StoreTraffic traffic;
    auto reportStore = [&]() {
        if (options.storePath.empty())
            return;
        heartbeat << storeSummaryLine(spec.name, traffic) << '\n';
        heartbeat.flush();
    };

    for (std::size_t index : options.cells) {
        if (index >= spec.cells.size())
            return 2;
        if (options.interrupted && *options.interrupted) {
            reportStore();
            return 3;
        }

        const Cell &cell = spec.cells[index];
        heartbeat << heartbeatLine(spec.name, index, cell.workload)
                  << '\n';
        heartbeat.flush();

        CampaignSpec one;
        one.name = spec.name;
        one.cells.push_back(cell);

        RunnerOptions ro;
        ro.jobs = 1;
        ro.cache = false;
        ro.storePath = options.storePath;
        ro.maxRetries = options.maxRetries;
        ro.journalPath = options.journalPath;
        ro.journalSync = options.journalSync;
        for (const FaultInjection &f : options.faults)
            if (f.cellIndex == index) {
                FaultInjection local = f;
                local.cellIndex = 0;    // index within the 1-cell spec
                ro.faults.push_back(local);
            }

        ExperimentRunner rnr(ro);
        rnr.run(one);
        if (rnr.storeOpen()) {
            store::StoreCounters c = rnr.storeCounters();
            traffic.hits += c.hits;
            traffic.misses += c.misses;
            traffic.bytesRead += c.bytesRead;
            traffic.bytesWritten += c.bytesWritten;
        }
    }
    reportStore();
    return 0;
}

} // namespace runner
} // namespace simalpha

/**
 * @file
 * The append-only JSONL campaign journal behind `--resume`.
 *
 * While a campaign runs, every completed cell is appended (and flushed)
 * as one self-contained JSON line carrying the full serialized result —
 * identity, manifest hash, status, error class, timing, and counters.
 * A killed campaign therefore leaves a journal of exactly the cells
 * that finished; restarting with resume serves those cells from the
 * journal and re-executes only the rest, producing artifacts
 * byte-identical to an uninterrupted run.
 *
 * Entries are keyed by the cell identity (machine, optimization,
 * workload, instruction cap, seed) and validated against the current
 * manifest hash at replay time: if a machine definition changed since
 * the journal was written, the stale entry is ignored and the cell
 * re-runs.
 */

#ifndef SIMALPHA_RUNNER_JOURNAL_HH
#define SIMALPHA_RUNNER_JOURNAL_HH

#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>

#include "runner/runner.hh"

namespace simalpha {
namespace runner {

/** Identity key of a cell inside a journal (machine, optimization,
 *  workload, cap, seed — the same identity the result cache uses). */
std::string journalKey(const Cell &cell);

/** Serialize one completed cell as a single JSONL line (no newline). */
std::string journalLine(const std::string &campaign,
                        const CellResult &result);

/**
 * Parse one journal line. Returns false on malformed input or a
 * campaign mismatch. On success fills *result (cell identity included)
 * and *key with journalKey of that identity.
 */
bool parseJournalLine(const std::string &line,
                      const std::string &campaign, CellResult *result,
                      std::string *key);

/**
 * Load every well-formed entry of @p path belonging to @p campaign,
 * newest-wins. A missing file is not an error (empty map, true).
 * Returns false only on unreadable-but-existing files.
 */
bool loadJournal(const std::string &path, const std::string &campaign,
                 std::unordered_map<std::string, CellResult> *out,
                 std::string *error);

/** Thread-safe append-only writer; one line per completed cell. */
class CampaignJournal
{
  public:
    /** Open @p path for appending. Returns false with *error filled if
     *  the file cannot be opened. */
    bool open(const std::string &path, std::string *error);

    bool isOpen() const { return _out.is_open(); }

    /** Append one completed cell (flushes, so a kill loses at most the
     *  line being written). */
    void append(const std::string &campaign, const CellResult &result);

  private:
    std::mutex _mutex;
    std::ofstream _out;
};

} // namespace runner
} // namespace simalpha

#endif // SIMALPHA_RUNNER_JOURNAL_HH

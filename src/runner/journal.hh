/**
 * @file
 * The append-only JSONL campaign journal behind `--resume`.
 *
 * While a campaign runs, every completed cell is appended (and flushed)
 * as one self-contained JSON line carrying the full serialized result —
 * identity, manifest hash, status, error class, timing, and counters.
 * A killed campaign therefore leaves a journal of exactly the cells
 * that finished; restarting with resume serves those cells from the
 * journal and re-executes only the rest, producing artifacts
 * byte-identical to an uninterrupted run.
 *
 * Entries are keyed by the cell identity (machine, optimization,
 * workload, instruction cap, seed) and validated against the current
 * manifest hash at replay time: if a machine definition changed since
 * the journal was written, the stale entry is ignored and the cell
 * re-runs.
 *
 * Durability: every append is one write(2) on an O_APPEND descriptor,
 * so a kill between cells never interleaves or tears lines written by
 * this process. A process killed *mid-write* (or a power cut) can
 * still leave a torn final line; replay detects the unterminated tail,
 * discards it with a warning, and serves everything before it. Opt-in
 * fsync-per-append (the sync flag, or SIMALPHA_JOURNAL_SYNC=1) extends
 * the guarantee through the OS page cache for campaigns that must
 * survive machine crashes, at the cost of one fsync per cell.
 */

#ifndef SIMALPHA_RUNNER_JOURNAL_HH
#define SIMALPHA_RUNNER_JOURNAL_HH

#include <mutex>
#include <string>
#include <unordered_map>

#include "runner/runner.hh"

namespace simalpha {
namespace runner {

/** Identity key of a cell inside a journal (machine, optimization,
 *  workload, cap, seed — the same identity the result cache uses). */
std::string journalKey(const Cell &cell);

/** Serialize one completed cell as a single JSONL line (no newline). */
std::string journalLine(const std::string &campaign,
                        const CellResult &result);

/**
 * Parse one journal line. Returns false on malformed input or a
 * campaign mismatch. On success fills *result (cell identity included)
 * and *key with journalKey of that identity.
 */
bool parseJournalLine(const std::string &line,
                      const std::string &campaign, CellResult *result,
                      std::string *key);

/**
 * Load every well-formed entry of @p path belonging to @p campaign,
 * newest-wins. A missing file is not an error (empty map, true). A
 * torn final line (no trailing newline — the tail a killed process
 * leaves) is discarded with a warning, never parsed, so a crashed
 * campaign always replays cleanly. Returns false only on
 * unreadable-but-existing files.
 */
bool loadJournal(const std::string &path, const std::string &campaign,
                 std::unordered_map<std::string, CellResult> *out,
                 std::string *error);

/** True when fsync-per-append was requested via the environment
 *  (SIMALPHA_JOURNAL_SYNC=1) — the opt-in shard workers and library
 *  callers inherit without any flag plumbing. */
bool journalSyncFromEnv();

/** Thread-safe append-only writer; one line per completed cell. */
class CampaignJournal
{
  public:
    CampaignJournal() = default;
    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;
    ~CampaignJournal();

    /** Open @p path for appending. @p sync requests fsync-per-append
     *  (forced on by SIMALPHA_JOURNAL_SYNC=1 either way). Returns
     *  false with *error filled if the file cannot be opened. */
    bool open(const std::string &path, std::string *error,
              bool sync = false);

    bool isOpen() const { return _fd >= 0; }
    bool syncing() const { return _sync; }

    /** Append one completed cell (single write(2) of line + newline;
     *  fsync too when syncing, so a kill loses at most the line being
     *  written — and with sync, a machine crash loses nothing that was
     *  appended). */
    void append(const std::string &campaign, const CellResult &result);

    /** Append an already-serialized line verbatim (the supervisor's
     *  master-journal merge copies worker bytes through this, so
     *  resumed campaigns replay the worker's exact serialization). */
    void appendRaw(const std::string &line);

    void close();

  private:
    std::mutex _mutex;
    int _fd = -1;
    bool _sync = false;
};

} // namespace runner
} // namespace simalpha

#endif // SIMALPHA_RUNNER_JOURNAL_HH

#include "runner.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <thread>

#include "checkpoint/checkpoint.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "runner/journal.hh"
#include "validate/manifest.hh"

namespace simalpha {
namespace runner {

using validate::Optimization;

RunResult
CellResult::toRunResult() const
{
    RunResult r;
    r.machine = cell.machine;
    if (cell.opt != Optimization::None)
        r.machine += "+" + validate::optimizationName(cell.opt);
    r.program = cell.workload;
    r.cycles = cycles;
    r.instsCommitted = instsCommitted;
    r.finished = finished;
    return r;
}

const CellResult *
CampaignResult::find(const std::string &machine,
                     const std::string &workload,
                     Optimization opt) const
{
    for (const CellResult &r : cells)
        if (r.cell.machine == machine && r.cell.workload == workload &&
            r.cell.opt == opt)
            return &r;
    return nullptr;
}

std::size_t
CampaignResult::okCount() const
{
    std::size_t n = 0;
    for (const CellResult &r : cells)
        n += r.ok;
    return n;
}

std::size_t
CampaignResult::errorCount() const
{
    return cells.size() - okCount();
}

/** Campaign tag inside store payloads: stored results are shared
 *  across campaigns, so their journal lines carry this fixed name
 *  instead of whichever campaign happened to publish them. */
static constexpr const char *kStorePayloadCampaign = "store";

/** Tag for persisted *deterministic* failures (invariant violations,
 *  deadlocks): re-running the identical configuration would fail the
 *  identical way, so reruns serve the failure instead of recomputing
 *  it. Kept distinct from the success tag so failed entries are
 *  recognizable in the store and can never be mistaken for results.
 *  Transient/crash/timeout failures are never published — they must
 *  re-execute. */
static constexpr const char *kStoreFailedPayloadCampaign =
    "store-failed";

/** Failure classes that are deterministic replays of the simulation
 *  itself (safe to persist); everything else is environmental. */
static bool
deterministicFailure(const CellResult &r)
{
    return !r.ok &&
           (r.errorClass == "invariant" || r.errorClass == "deadlock");
}

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : _opts(options)
{
    if (!_opts.storePath.empty()) {
        std::string error;
        if (!_store.open(_opts.storePath, &error))
            warn("%s (persistent result store disabled)",
                 error.c_str());
    }
}

std::string
ExperimentRunner::currentManifestHash(const Cell &cell)
{
    return cellManifestHash(cell);
}

std::string
ExperimentRunner::cacheKey(const Cell &cell) const
{
    std::string key = currentManifestHash(cell);
    if (key.empty())
        return "";
    key += '|';
    key += cell.workload;
    key += '|';
    key += std::to_string(cell.maxInsts);
    key += '|';
    key += std::to_string(cellSeed(cell));
    // Sampled cells measure different things than full runs of the
    // same identity; keep their keys disjoint. Unsampled keys stay
    // byte-identical to every store entry published before sampling
    // existed.
    if (cell.sample.enabled()) {
        key += "|sample=";
        key += checkpoint::formatSampleSpec(cell.sample);
    }
    // Injected cells likewise get disjoint keys; plain keys keep
    // their historical bytes.
    if (cell.inject.enabled()) {
        key += "|inject=";
        key += inject::formatInjectSpec(cell.inject);
    }
    return key;
}

namespace {

/**
 * The Stall injection's machine: fetches nothing, commits nothing, and
 * relies on its forward-progress watchdog to declare the deadlock —
 * the same detection contract the real cores implement.
 */
class StallingMachine : public Machine
{
  public:
    RunResult
    run(const Program &program, std::uint64_t max_insts) override
    {
        (void)max_insts;
        constexpr Cycle watchdog = 1000;
        for (Cycle cycle = 0;; cycle++) {
            if (cycle > watchdog) {
                DeadlockInfo info;
                info.machine = name();
                info.program = program.name;
                info.cycle = cycle;
                info.lastCommitCycle = 0;
                info.committed = 0;
                info.fetchPc = program.entryPc;
                info.windowOccupancy = 0;
                info.detail = "injected stall";
                throw DeadlockError(info);
            }
        }
    }

    stats::Group &statGroup() override { return _stats; }
    std::string name() const override { return "stall-stub"; }

  private:
    stats::Group _stats{"stall-stub"};
};

} // namespace

/**
 * A small LRU pool of Machine instances keyed by (machine, opt),
 * private to one worker thread. run() begins with a full machine
 * reset, so a pooled core is byte-identical to a freshly built one;
 * fault-injection stand-ins (StallingMachine) are never pooled.
 */
class ExperimentRunner::MachinePool
{
  public:
    /** Fetch-or-build the machine for @p cell; nullptr (with @p error
     *  set) if the machine name is unknown. The pool keeps ownership. */
    Machine *
    acquire(const Cell &cell, std::string *error)
    {
        std::string key =
            cell.machine + "|" + validate::optimizationName(cell.opt);
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (it->key == key) {
                // Move to the back (most recently used).
                Entry hit = std::move(*it);
                _entries.erase(it);
                _entries.push_back(std::move(hit));
                return _entries.back().machine.get();
            }
        }
        std::unique_ptr<Machine> built =
            validate::tryMakeMachine(cell.machine, cell.opt, error);
        if (!built)
            return nullptr;
        if (_entries.size() >= kCapacity)
            _entries.erase(_entries.begin());
        _entries.push_back(Entry{std::move(key), std::move(built)});
        return _entries.back().machine.get();
    }

  private:
    struct Entry
    {
        std::string key;
        std::unique_ptr<Machine> machine;
    };

    /** Distinct configurations kept warm per worker; campaigns sweep
     *  a handful of machines over many workloads, so a few entries
     *  cover nearly every cell. */
    static constexpr std::size_t kCapacity = 4;

    std::vector<Entry> _entries;
};

void
ExperimentRunner::runSampledCell(const Cell &cell, Machine *machine,
                                 const Program &program,
                                 CellResult *result)
{
    namespace ck = checkpoint;

    // Workload length under the cap: one cheap functional pass whose
    // answer is shared through the store across shards and reruns.
    ck::FastForwardInfo info;
    std::string mkey = ck::metaKey(program, cell.maxInsts);
    bool have_meta = false;
    if (_store.isOpen()) {
        std::string payload;
        have_meta = _store.lookup(mkey, &payload) &&
                    ck::parseMeta(payload, &info);
    }
    if (!have_meta) {
        info = ck::fastForward(program, cell.maxInsts);
        if (_store.isOpen()) {
            std::string serror;
            if (!_store.publish(mkey, ck::serializeMeta(info),
                                &serror))
                warn("%s (fast-forward metadata not persisted)",
                     serror.c_str());
        }
    }

    std::vector<ck::WindowPlan> plan =
        ck::planWindows(info.totalInsts, cell.sample);

    std::vector<std::uint64_t> offsets;
    offsets.reserve(plan.size());
    for (const ck::WindowPlan &w : plan)
        offsets.push_back(w.checkpointAt);

    std::vector<Checkpoint> ckpts;
    std::string error;
    if (!ck::collectCheckpoints(program, offsets,
                                _store.isOpen() ? &_store : nullptr,
                                &ckpts, &error))
        throw InvariantError(error);

    // The measured windows. Checkpoints are deterministic functions of
    // the program, so a window's bytes do not depend on whether its
    // checkpoint came from the store or a fresh emulator sweep — which
    // keeps sampled campaigns byte-identical across --jobs, shards,
    // and warm/cold stores.
    Cycle total_cycles = 0;
    std::uint64_t total_insts = 0;
    std::vector<double> ipcs;
    std::map<std::string, std::uint64_t> counters;
    for (std::size_t i = 0; i < plan.size(); i++) {
        std::map<std::string, std::uint64_t> wc;
        RunResult wr = machine->runWindow(program, ckpts[i],
                                          plan[i].warmup,
                                          plan[i].measure, &wc);
        total_cycles += wr.cycles;
        total_insts += wr.instsCommitted;
        if (wr.cycles)
            ipcs.push_back(double(wr.instsCommitted) /
                           double(wr.cycles));
        for (const auto &kv : wc)
            counters[kv.first] += kv.second;
    }

    ck::SampleStats stats = ck::sampleStats(ipcs);
    result->ok = true;
    result->cycles = total_cycles;
    result->instsCommitted = total_insts;
    result->finished = info.finished;
    result->counters = std::move(counters);
    result->sampleWindows = stats.n;
    result->sampleTotalInsts = info.totalInsts;
    result->sampleIpcMean = stats.mean;
    result->sampleIpcStddev = stats.stddev;
    result->sampleIpcCi = stats.ciHalf;
}

inject::GoldenRef
ExperimentRunner::goldenFor(const Cell &cell, Machine *machine,
                            const Program &program,
                            const std::string &manifest_hash)
{
    std::string key =
        inject::goldenKey(manifest_hash, cell.workload, cell.maxInsts);
    {
        std::lock_guard<std::mutex> lock(_goldenMutex);
        auto it = _golden.find(key);
        if (it != _golden.end())
            return it->second;
    }

    inject::GoldenRef golden;
    bool have = false;
    if (_store.isOpen()) {
        std::string payload;
        have = _store.lookup(key, &payload) &&
               inject::parseGolden(payload, &golden);
    }
    if (!have) {
        // A concurrent worker may compute the same golden; both runs
        // produce identical bytes, so the race is benign.
        machine->armInjection(nullptr, 0);
        RunResult r = machine->run(program, cell.maxInsts);
        Checkpoint state;
        if (!machine->architecturalState(&state))
            throw ConfigError(
                "machine '" + cell.machine +
                "' does not expose architectural state for "
                "vulnerability classification");
        golden.digest = inject::archDigest(state);
        golden.cycles = r.cycles;
        golden.insts = r.instsCommitted;
        golden.finished = r.finished;
        if (_store.isOpen()) {
            std::string serror;
            if (!_store.publish(key, inject::serializeGolden(golden),
                                &serror))
                warn("%s (golden reference not persisted)",
                     serror.c_str());
        }
    }

    std::lock_guard<std::mutex> lock(_goldenMutex);
    _golden.emplace(key, golden);
    return golden;
}

void
ExperimentRunner::runInjectedCell(const Cell &cell, Machine *machine,
                                  const Program &program,
                                  CellResult *result)
{
    // The armed spec persists on the pooled machine across runs:
    // disarm on every exit path so later cells see a clean core.
    struct Disarm
    {
        Machine *machine;
        ~Disarm() { machine->armInjection(nullptr, 0); }
    } disarm{machine};

    inject::GoldenRef golden =
        goldenFor(cell, machine, program, result->manifestHash);
    if (!golden.finished)
        throw ConfigError(
            "workload '" + cell.workload + "' does not finish within " +
            std::to_string(cell.maxInsts) +
            " instructions on '" + cell.machine +
            "'; vulnerability classification needs the uninjected "
            "reference run to halt");

    // Budgets derived from the golden run, so a wedged injected run
    // is detected deterministically: an instruction cap the commit
    // stage enforces, and a cycle budget for runs that stop
    // committing in a way the forward-progress watchdog cannot see.
    std::uint64_t inst_cap = golden.insts * 2 + 1000;
    Cycle cycle_budget = golden.cycles * 8 + 100000;
    if (!machine->armInjection(&cell.inject, cycle_budget))
        throw ConfigError("machine '" + cell.machine +
                          "' does not support state injection");

    inject::Outcome outcome;
    std::string detail;
    auto fill_failure = [&](const char *what) {
        detail = machine->injectionNote();
        if (!detail.empty())
            detail += "; ";
        detail += what;
        result->cycles = 0;
        result->instsCommitted = 0;
        result->finished = false;
        result->counters.clear();
    };

    try {
        RunResult r = machine->run(program, inst_cap);
        result->cycles = r.cycles;
        result->instsCommitted = r.instsCommitted;
        result->finished = r.finished;
        result->counters = machine->statGroup().snapshot();
        detail = machine->injectionNote();
        if (detail.empty())
            detail = "(run ended before the strike cycle)";
        if (!r.finished) {
            // Hit the instruction cap without halting: the flip sent
            // execution somewhere it never returns from.
            outcome = inject::Outcome::Timeout;
        } else {
            Checkpoint state;
            if (!machine->architecturalState(&state))
                throw ConfigError(
                    "machine '" + cell.machine +
                    "' does not expose architectural state");
            outcome = inject::archDigest(state) == golden.digest
                          ? inject::Outcome::Masked
                          : inject::Outcome::Sdc;
        }
    } catch (const DeadlockError &e) {
        outcome = inject::Outcome::Deadlock;
        fill_failure(e.what());
    } catch (const TimeoutError &e) {
        outcome = inject::Outcome::Timeout;
        fill_failure(e.what());
    } catch (const SimError &e) {
        outcome = inject::Outcome::Crash;
        fill_failure(e.what());
    } catch (const std::exception &e) {
        outcome = inject::Outcome::Crash;
        fill_failure(e.what());
    }

    result->ok = true;
    result->injectOutcome = inject::outcomeName(outcome);
    result->injectDetail = detail;
}

CellResult
ExperimentRunner::runCell(const Cell &cell, const FaultInjection *fault,
                          int attempt, MachinePool &pool)
{
    CellResult result;
    result.cell = cell;
    result.seed = cellSeed(cell);

    bool fault_active =
        fault && (fault->times < 0 || attempt <= fault->times);

    try {
        std::string error;
        Config config;
        if (!validate::tryDescribeMachine(cell.machine, cell.opt,
                                          &config, &error)) {
            result.error = error;
            result.errorClass = "config";
            return result;
        }
        result.manifestHash = validate::manifestHashHex(config);

        Program program;
        if (!buildWorkload(cell.workload, &program, &error)) {
            result.error = error;
            result.errorClass = "workload";
            return result;
        }

        // Fault stand-ins are built fresh (and discarded); real
        // machines come from the worker's pool and are reused across
        // cells — run() resets them to freshly-constructed state.
        std::unique_ptr<Machine> standIn;
        Machine *machine = nullptr;
        if (fault_active && fault->kind == FaultInjection::Kind::Stall) {
            standIn = std::make_unique<StallingMachine>();
            machine = standIn.get();
        } else {
            machine = pool.acquire(cell, &error);
        }
        if (!machine) {
            result.error = error;
            result.errorClass = "config";
            return result;
        }

        if (fault_active) {
            if (fault->kind == FaultInjection::Kind::Panic)
                panic("injected panic (cell %zu, attempt %d)",
                      fault->cellIndex, attempt);
            if (fault->kind == FaultInjection::Kind::Throw)
                throw TransientError(
                    "injected transient fault (cell " +
                    std::to_string(fault->cellIndex) + ", attempt " +
                    std::to_string(attempt) + ")");
            // The crash modes deliberately bypass the exception-based
            // containment below: no catch clause can help, only a
            // process boundary can.
            if (fault->kind == FaultInjection::Kind::Abort)
                std::abort();
            if (fault->kind == FaultInjection::Kind::Segfault)
                std::raise(SIGSEGV);
            if (fault->kind == FaultInjection::Kind::Hang)
                for (;;)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(50));
        }

        // The cell's private RNG: any stochastic behaviour during cell
        // execution must draw from here (never from shared state),
        // which keeps results independent of scheduling. The bundled
        // workloads and machine models are internally deterministic,
        // so today the stream is untouched; the seed is still recorded
        // in artifacts.
        Random rng(result.seed);
        (void)rng;

        if (cell.sample.enabled() && cell.inject.enabled()) {
            throw ConfigError(
                "a cell cannot be both sampled and injected");
        } else if (cell.inject.enabled()) {
            runInjectedCell(cell, machine, program, &result);
        } else if (cell.sample.enabled()) {
            runSampledCell(cell, machine, program, &result);
        } else {
            RunResult r = machine->run(program, cell.maxInsts);
            result.ok = true;
            result.cycles = r.cycles;
            result.instsCommitted = r.instsCommitted;
            result.finished = r.finished;
            result.counters = machine->statGroup().snapshot();
        }
    } catch (const SimError &e) {
        result.ok = false;
        result.error = e.what();
        result.errorClass = e.kind();
        result.retryable = e.retryable();
        result.cycles = 0;
        result.instsCommitted = 0;
        result.finished = false;
        result.counters.clear();
    } catch (const std::exception &e) {
        // Unclassified failures are treated as environmental: worth a
        // bounded retry, reported as "internal" if they persist.
        result.ok = false;
        result.error = e.what();
        result.errorClass = "internal";
        result.retryable = true;
        result.cycles = 0;
        result.instsCommitted = 0;
        result.finished = false;
        result.counters.clear();
    }
    return result;
}

namespace {

/**
 * A per-worker deque of cell indices with LIFO owner access and FIFO
 * stealing, the classic work-stealing split: owners pop recently
 * pushed (cache-warm) work, thieves take the oldest (largest) items.
 * All work is enqueued before the pool starts, so "every deque empty"
 * means "done" — no condition variables needed.
 */
struct WorkQueue
{
    std::mutex mutex;
    std::deque<std::size_t> items;

    bool
    popFront(std::size_t *out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (items.empty())
            return false;
        *out = items.front();
        items.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t *out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (items.empty())
            return false;
        *out = items.back();
        items.pop_back();
        return true;
    }
};

} // namespace

CampaignResult
ExperimentRunner::run(const CampaignSpec &spec)
{
    CampaignResult result;
    result.campaign = spec.name;
    result.cells.resize(spec.cells.size());

    // Resume: cells already journaled (same campaign + identity) are
    // served from the journal, provided their manifest hash still
    // matches the current machine definition.
    std::unordered_map<std::string, CellResult> replay;
    CampaignJournal journal;
    if (!_opts.journalPath.empty()) {
        std::string jerror;
        if (_opts.resume &&
            !loadJournal(_opts.journalPath, spec.name, &replay,
                         &jerror))
            warn("%s (resuming nothing)", jerror.c_str());
        if (!journal.open(_opts.journalPath, &jerror,
                          _opts.journalSync))
            warn("%s (campaign will not be resumable)",
                 jerror.c_str());
    }

    // Every settled cell flows through here: fire the streaming hook
    // (serialized — the consumer never sees concurrent calls) and
    // store the result in its preallocated slot.
    auto settle = [&](std::size_t i, CellResult &&r) {
        if (_opts.onCell) {
            std::lock_guard<std::mutex> lock(_hookMutex);
            _opts.onCell(r);
        }
        result.cells[i] = std::move(r);
    };

    auto cancelled = [&]() {
        return (_opts.cancel && *_opts.cancel) ||
               (_opts.cancelAtomic &&
                _opts.cancelAtomic->load(std::memory_order_relaxed));
    };

    // Each task writes exactly one preallocated slot, so completion
    // order never affects result order (or bytes). The pool of
    // reusable machines belongs to the calling worker alone.
    auto execute = [&](std::size_t i, MachinePool &pool) {
        const Cell &cell = spec.cells[i];

        // Cancelled (Ctrl-C / service cancel): leave the slot as a
        // default result and journal nothing, so a later --resume
        // re-runs the cell.
        if (cancelled())
            return;

        if (!replay.empty()) {
            auto it = replay.find(journalKey(cell));
            // An unknown machine journals an empty manifest hash, so
            // empty==empty correctly replays still-unknown machines.
            if (it != replay.end() &&
                it->second.manifestHash == currentManifestHash(cell)) {
                CellResult journaled = it->second;
                journaled.cell = cell;  // identity of *this* cell
                settle(i, std::move(journaled));
                return;
            }
        }

        std::string key = (_opts.cache || _store.isOpen())
                              ? cacheKey(cell)
                              : std::string();

        if (!key.empty() && _opts.cache) {
            bool hit = false;
            CellResult cached;
            {
                std::lock_guard<std::mutex> lock(_cacheMutex);
                auto it = _cache.find(key);
                if (it != _cache.end()) {
                    cached = it->second;
                    hit = true;
                }
            }
            if (hit) {
                cached.cell = cell;     // identity of *this* cell
                cached.fromCache = true;
                if (journal.isOpen())
                    journal.append(spec.name, cached);
                _cacheHits.fetch_add(1);
                settle(i, std::move(cached));
                return;
            }
        }

        // The persistent store: same identity key, shared with every
        // other runner/shard/invocation pointed at the same root. The
        // payload is a campaign journal line, which round-trips every
        // serialized field — so a store hit is byte-identical to a
        // computed result in artifacts and journals alike.
        if (!key.empty() && _store.isOpen()) {
            std::string payload;
            CellResult stored;
            std::string stored_key;
            if (_store.lookup(key, &payload) &&
                (parseJournalLine(payload, kStorePayloadCampaign,
                                  &stored, &stored_key) ||
                 parseJournalLine(payload, kStoreFailedPayloadCampaign,
                                  &stored, &stored_key))) {
                stored.cell = cell;     // identity of *this* cell
                stored.fromJournal = false;
                stored.fromStore = true;
                // A warm sampled rerun reads only this result entry,
                // not the checkpoints behind it — refresh their
                // last-use sidecars too, or gc would evict exactly
                // the blobs the next cold window run needs most.
                if (cell.sample.enabled()) {
                    Program program;
                    std::string werror;
                    if (buildWorkload(cell.workload, &program,
                                      &werror))
                        checkpoint::touchPlannedCheckpoints(
                            program, cell.maxInsts, cell.sample,
                            &_store);
                }
                if (_opts.cache) {
                    std::lock_guard<std::mutex> lock(_cacheMutex);
                    _cache.emplace(key, stored);
                }
                if (journal.isOpen())
                    journal.append(spec.name, stored);
                settle(i, std::move(stored));
                return;
            }
        }

        const FaultInjection *fault = nullptr;
        for (const FaultInjection &f : _opts.faults)
            if (f.cellIndex == i)
                fault = &f;

        CellResult r;
        int attempt = 0;
        for (;;) {
            attempt++;
            r = runCell(cell, fault, attempt, pool);
            if (r.ok || !r.retryable || attempt > _opts.maxRetries)
                break;
        }
        r.attempts = attempt;

        // Deterministic failures are persisted only when no fault was
        // injected into the cell: an injected deadlock/panic says
        // nothing about the real configuration and must not be served
        // to a fault-free rerun.
        bool persist_failure = deterministicFailure(r) && !fault;
        if (!key.empty() && (r.ok || persist_failure)) {
            if (_opts.cache && r.ok) {
                std::lock_guard<std::mutex> lock(_cacheMutex);
                _cache.emplace(key, r);
            }
            if (_store.isOpen()) {
                std::string serror;
                const char *tag = r.ok ? kStorePayloadCampaign
                                       : kStoreFailedPayloadCampaign;
                if (!_store.publish(key, journalLine(tag, r), &serror))
                    warn("%s (result not persisted)", serror.c_str());
            }
        }
        if (journal.isOpen())
            journal.append(spec.name, r);
        settle(i, std::move(r));
    };

    int jobs = _opts.jobs;
    if (jobs <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw ? int(hw) : 1;
    }
    jobs = int(std::min<std::size_t>(std::size_t(jobs),
                                     std::max<std::size_t>(
                                         spec.cells.size(), 1)));

    if (jobs <= 1) {
        MachinePool pool;
        for (std::size_t i = 0; i < spec.cells.size(); i++)
            execute(i, pool);
        return result;
    }

    // Round-robin initial distribution over per-worker deques.
    std::vector<WorkQueue> queues((std::size_t(jobs)));
    for (std::size_t i = 0; i < spec.cells.size(); i++)
        queues[i % std::size_t(jobs)].items.push_back(i);

    auto worker = [&](std::size_t self) {
        MachinePool pool;
        std::size_t task;
        for (;;) {
            if (queues[self].popFront(&task)) {
                execute(task, pool);
                continue;
            }
            bool stolen = false;
            for (std::size_t k = 1; k < queues.size() && !stolen; k++) {
                std::size_t victim = (self + k) % queues.size();
                stolen = queues[victim].stealBack(&task);
            }
            if (!stolen)
                return;     // nothing left anywhere: pool drains
            execute(task, pool);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(std::size_t(jobs));
    for (std::size_t w = 0; w < std::size_t(jobs); w++)
        threads.emplace_back(worker, w);
    for (std::thread &t : threads)
        t.join();
    return result;
}

std::size_t
ExperimentRunner::cacheSize() const
{
    std::lock_guard<std::mutex> lock(_cacheMutex);
    return _cache.size();
}

void
ExperimentRunner::clearCache()
{
    std::lock_guard<std::mutex> lock(_cacheMutex);
    _cache.clear();
    _cacheHits.store(0);
}

} // namespace runner
} // namespace simalpha

#include "runner.hh"

#include <algorithm>
#include <deque>
#include <thread>

#include "common/random.hh"
#include "validate/manifest.hh"

namespace simalpha {
namespace runner {

using validate::Optimization;

RunResult
CellResult::toRunResult() const
{
    RunResult r;
    r.machine = cell.machine;
    if (cell.opt != Optimization::None)
        r.machine += "+" + validate::optimizationName(cell.opt);
    r.program = cell.workload;
    r.cycles = cycles;
    r.instsCommitted = instsCommitted;
    r.finished = finished;
    return r;
}

const CellResult *
CampaignResult::find(const std::string &machine,
                     const std::string &workload,
                     Optimization opt) const
{
    for (const CellResult &r : cells)
        if (r.cell.machine == machine && r.cell.workload == workload &&
            r.cell.opt == opt)
            return &r;
    return nullptr;
}

std::size_t
CampaignResult::okCount() const
{
    std::size_t n = 0;
    for (const CellResult &r : cells)
        n += r.ok;
    return n;
}

std::size_t
CampaignResult::errorCount() const
{
    return cells.size() - okCount();
}

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : _opts(options)
{
}

std::string
ExperimentRunner::cacheKey(const Cell &cell) const
{
    Config config;
    std::string error;
    if (!validate::tryDescribeMachine(cell.machine, cell.opt, &config,
                                      &error))
        return "";
    std::string key = validate::manifestHashHex(config);
    key += '|';
    key += cell.workload;
    key += '|';
    key += std::to_string(cell.maxInsts);
    key += '|';
    key += std::to_string(cellSeed(cell));
    return key;
}

CellResult
ExperimentRunner::runCell(const Cell &cell)
{
    CellResult result;
    result.cell = cell;
    result.seed = cellSeed(cell);

    std::string error;
    Config config;
    if (!validate::tryDescribeMachine(cell.machine, cell.opt, &config,
                                      &error)) {
        result.error = error;
        return result;
    }
    result.manifestHash = validate::manifestHashHex(config);

    Program program;
    if (!buildWorkload(cell.workload, &program, &error)) {
        result.error = error;
        return result;
    }

    auto machine =
        validate::tryMakeMachine(cell.machine, cell.opt, &error);
    if (!machine) {
        result.error = error;
        return result;
    }

    // The cell's private RNG: any stochastic behaviour during cell
    // execution must draw from here (never from shared state), which
    // keeps results independent of scheduling. The bundled workloads
    // and machine models are internally deterministic, so today the
    // stream is untouched; the seed is still recorded in artifacts.
    Random rng(result.seed);
    (void)rng;

    RunResult r = machine->run(program, cell.maxInsts);
    result.ok = true;
    result.cycles = r.cycles;
    result.instsCommitted = r.instsCommitted;
    result.finished = r.finished;
    result.counters = machine->statGroup().snapshot();
    return result;
}

namespace {

/**
 * A per-worker deque of cell indices with LIFO owner access and FIFO
 * stealing, the classic work-stealing split: owners pop recently
 * pushed (cache-warm) work, thieves take the oldest (largest) items.
 * All work is enqueued before the pool starts, so "every deque empty"
 * means "done" — no condition variables needed.
 */
struct WorkQueue
{
    std::mutex mutex;
    std::deque<std::size_t> items;

    bool
    popFront(std::size_t *out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (items.empty())
            return false;
        *out = items.front();
        items.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t *out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (items.empty())
            return false;
        *out = items.back();
        items.pop_back();
        return true;
    }
};

} // namespace

CampaignResult
ExperimentRunner::run(const CampaignSpec &spec)
{
    CampaignResult result;
    result.campaign = spec.name;
    result.cells.resize(spec.cells.size());

    // Each task writes exactly one preallocated slot, so completion
    // order never affects result order (or bytes).
    auto execute = [&](std::size_t i) {
        const Cell &cell = spec.cells[i];
        std::string key = _opts.cache ? cacheKey(cell) : std::string();

        if (!key.empty()) {
            std::lock_guard<std::mutex> lock(_cacheMutex);
            auto it = _cache.find(key);
            if (it != _cache.end()) {
                CellResult cached = it->second;
                cached.cell = cell;     // identity of *this* cell
                cached.fromCache = true;
                result.cells[i] = std::move(cached);
                _cacheHits.fetch_add(1);
                return;
            }
        }

        CellResult r = runCell(cell);
        if (!key.empty() && r.ok) {
            std::lock_guard<std::mutex> lock(_cacheMutex);
            _cache.emplace(key, r);
        }
        result.cells[i] = std::move(r);
    };

    int jobs = _opts.jobs;
    if (jobs <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw ? int(hw) : 1;
    }
    jobs = int(std::min<std::size_t>(std::size_t(jobs),
                                     std::max<std::size_t>(
                                         spec.cells.size(), 1)));

    if (jobs <= 1) {
        for (std::size_t i = 0; i < spec.cells.size(); i++)
            execute(i);
        return result;
    }

    // Round-robin initial distribution over per-worker deques.
    std::vector<WorkQueue> queues((std::size_t(jobs)));
    for (std::size_t i = 0; i < spec.cells.size(); i++)
        queues[i % std::size_t(jobs)].items.push_back(i);

    auto worker = [&](std::size_t self) {
        std::size_t task;
        for (;;) {
            if (queues[self].popFront(&task)) {
                execute(task);
                continue;
            }
            bool stolen = false;
            for (std::size_t k = 1; k < queues.size() && !stolen; k++) {
                std::size_t victim = (self + k) % queues.size();
                stolen = queues[victim].stealBack(&task);
            }
            if (!stolen)
                return;     // nothing left anywhere: pool drains
            execute(task);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(std::size_t(jobs));
    for (std::size_t w = 0; w < std::size_t(jobs); w++)
        threads.emplace_back(worker, w);
    for (std::thread &t : threads)
        t.join();
    return result;
}

std::size_t
ExperimentRunner::cacheSize() const
{
    std::lock_guard<std::mutex> lock(_cacheMutex);
    return _cache.size();
}

void
ExperimentRunner::clearCache()
{
    std::lock_guard<std::mutex> lock(_cacheMutex);
    _cache.clear();
    _cacheHits.store(0);
}

} // namespace runner
} // namespace simalpha

/**
 * @file
 * ExperimentRunner: deterministic parallel execution of experiment
 * campaigns.
 *
 * Cells execute on a fixed-size std::thread pool with per-worker
 * work-stealing deques. Determinism comes from isolation, not
 * scheduling: every cell builds its own Machine and its own Program
 * and seeds its own RNG, writes its result into a preallocated slot
 * indexed by spec order, and shares nothing mutable with other cells —
 * so a campaign at --jobs 8 is bit-identical to the same campaign at
 * --jobs 1.
 *
 * An in-memory cache keyed by (manifest hash, workload, instruction
 * cap, seed) skips redundant cells across runs of the same runner —
 * e.g. the 3 base sweeps sharing each Table-5 configuration.
 */

#ifndef SIMALPHA_RUNNER_RUNNER_HH
#define SIMALPHA_RUNNER_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/machine.hh"
#include "runner/campaign.hh"

namespace simalpha {
namespace runner {

/** Outcome of one campaign cell. */
struct CellResult
{
    Cell cell;
    /** Seed the cell's RNG actually used (cellSeed(cell)). */
    std::uint64_t seed = 0;

    /** False if the cell could not run (unknown machine/workload). */
    bool ok = false;
    std::string error;

    Cycle cycles = 0;
    std::uint64_t instsCommitted = 0;
    bool finished = false;
    /** Event counters snapshot from the machine's stat group. */
    std::map<std::string, std::uint64_t> counters;
    /** Identity of the exact configuration that produced the numbers. */
    std::string manifestHash;

    /** Served from the result cache (in-memory note; not serialized,
     *  so cached and computed campaigns stay byte-identical). */
    bool fromCache = false;

    double
    ipc() const
    {
        return cycles ? double(instsCommitted) / double(cycles) : 0.0;
    }

    double
    cpi() const
    {
        return instsCommitted
                   ? double(cycles) / double(instsCommitted)
                   : 0.0;
    }

    /** Bridge to the validate/ metrics helpers. */
    RunResult toRunResult() const;
};

/** All cell results of one campaign, in spec order. */
struct CampaignResult
{
    std::string campaign;
    std::vector<CellResult> cells;

    /** First cell matching (machine, workload[, opt]); null if none. */
    const CellResult *find(const std::string &machine,
                           const std::string &workload,
                           validate::Optimization opt =
                               validate::Optimization::None) const;

    std::size_t okCount() const;
    std::size_t errorCount() const;
};

struct RunnerOptions
{
    /** Worker threads; 0 = hardware concurrency, 1 = run serially in
     *  the calling thread. */
    int jobs = 1;
    /** Reuse results across cells/runs with identical identity. */
    bool cache = true;
};

class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions options = {});

    /** Execute every cell of a campaign; results in spec order. */
    CampaignResult run(const CampaignSpec &spec);

    /** Cells served from cache since construction/clearCache(). */
    std::uint64_t cacheHits() const { return _cacheHits.load(); }

    /** Distinct results currently cached. */
    std::size_t cacheSize() const;

    void clearCache();

    const RunnerOptions &options() const { return _opts; }

  private:
    CellResult runCell(const Cell &cell);
    /** Cache key, or empty if the cell is not cacheable (bad machine). */
    std::string cacheKey(const Cell &cell) const;

    RunnerOptions _opts;

    mutable std::mutex _cacheMutex;
    std::unordered_map<std::string, CellResult> _cache;
    std::atomic<std::uint64_t> _cacheHits{0};
};

} // namespace runner
} // namespace simalpha

#endif // SIMALPHA_RUNNER_RUNNER_HH

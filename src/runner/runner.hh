/**
 * @file
 * ExperimentRunner: deterministic parallel execution of experiment
 * campaigns.
 *
 * Cells execute on a fixed-size std::thread pool with per-worker
 * work-stealing deques. Determinism comes from isolation, not
 * scheduling: every cell builds its own Program and seeds its own RNG,
 * writes its result into a preallocated slot indexed by spec order,
 * and shares nothing mutable with other cells — so a campaign at
 * --jobs 8 is bit-identical to the same campaign at --jobs 1. Machine
 * instances are reused within a worker (never across workers) through
 * a small per-worker pool: a machine resets every sub-unit to
 * freshly-constructed state at the start of each run, so a reused core
 * produces the same bytes as a rebuilt one without re-allocating the
 * caches, predictors, and register structures per cell.
 *
 * An in-memory cache keyed by (manifest hash, workload, instruction
 * cap, seed) skips redundant cells across runs of the same runner —
 * e.g. the 3 base sweeps sharing each Table-5 configuration. With
 * RunnerOptions::storePath set, the same key also addresses a
 * persistent on-disk result store (src/store/) shared by independent
 * runners, process shards, and successive campaign invocations; the
 * lookup order is journal replay → memory → store → compute, and
 * served results are byte-identical to computed ones.
 *
 * Cells are fault-contained: an exception thrown during cell execution
 * (invariant violation, watchdog deadlock, injected fault) becomes a
 * failed CellResult carrying its error class, and every other cell
 * completes bit-identically to a fault-free run at any --jobs. An
 * optional append-only JSONL journal makes campaigns resumable after a
 * crash or kill (see RunnerOptions::journalPath).
 */

#ifndef SIMALPHA_RUNNER_RUNNER_HH
#define SIMALPHA_RUNNER_RUNNER_HH

#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/machine.hh"
#include "runner/campaign.hh"
#include "store/store.hh"

namespace simalpha {
namespace runner {

/** Outcome of one campaign cell. */
struct CellResult
{
    Cell cell;
    /** Seed the cell's RNG actually used (cellSeed(cell)). */
    std::uint64_t seed = 0;

    /** False if the cell could not run (unknown machine/workload) or
     *  its execution failed (invariant violation, deadlock, ...). */
    bool ok = false;
    std::string error;
    /** Error-taxonomy class ("config", "workload", "invariant",
     *  "deadlock", "transient", "internal"); empty when ok. */
    std::string errorClass;

    Cycle cycles = 0;
    std::uint64_t instsCommitted = 0;
    bool finished = false;
    /** Event counters snapshot from the machine's stat group. */
    std::map<std::string, std::uint64_t> counters;
    /** Identity of the exact configuration that produced the numbers. */
    std::string manifestHash;

    // ---- Sampled execution (all zero unless cell.sample.enabled()).
    // For a sampled cell, cycles/instsCommitted/counters above cover
    // only the measured windows; these fields carry the sampling
    // metadata and the per-window IPC statistics. ------------------
    /** Detailed windows actually measured. */
    std::uint64_t sampleWindows = 0;
    /** Functional (full-program) instruction count the windows
     *  represent — the denominator of the speedup claim. */
    std::uint64_t sampleTotalInsts = 0;
    /** Mean / stddev / 95%-CI half-width of the per-window IPCs. */
    double sampleIpcMean = 0.0;
    double sampleIpcStddev = 0.0;
    double sampleIpcCi = 0.0;

    // ---- Soft-error injection (empty unless cell.inject.enabled()).
    // A classified cell is ok=true even when the injected run crashed
    // or deadlocked — the classification itself succeeded, and the
    // outcome label carries what the flip did. --------------------
    /** inject::outcomeName() label: masked/sdc/crash/deadlock/timeout. */
    std::string injectOutcome;
    /** What the strike hit (core's injection note) plus any error. */
    std::string injectDetail;

    /** Served from the result cache (in-memory note; not serialized,
     *  so cached and computed campaigns stay byte-identical). */
    bool fromCache = false;

    /** Served from a resumed campaign journal (in-memory note, not
     *  serialized for the same reason as fromCache). */
    bool fromJournal = false;

    /** Served from the persistent result store (in-memory provenance
     *  note, not serialized — store hits must stay byte-identical to
     *  computed results in every artifact and journal). */
    bool fromStore = false;

    /** Executions this result took (1 + retries); in-memory note. */
    int attempts = 1;

    /** Whether the recorded failure class is retryable (in-memory). */
    bool retryable = false;

    double
    ipc() const
    {
        return cycles ? double(instsCommitted) / double(cycles) : 0.0;
    }

    double
    cpi() const
    {
        return instsCommitted
                   ? double(cycles) / double(instsCommitted)
                   : 0.0;
    }

    /** Bridge to the validate/ metrics helpers. */
    RunResult toRunResult() const;
};

/** All cell results of one campaign, in spec order. */
struct CampaignResult
{
    std::string campaign;
    std::vector<CellResult> cells;

    /** First cell matching (machine, workload[, opt]); null if none. */
    const CellResult *find(const std::string &machine,
                           const std::string &workload,
                           validate::Optimization opt =
                               validate::Optimization::None) const;

    std::size_t okCount() const;
    std::size_t errorCount() const;
};

/**
 * One deterministic fault injected into a campaign cell, for proving
 * containment: the chosen cell fails in a controlled way while every
 * other cell must stay byte-identical to a fault-free run.
 */
struct FaultInjection
{
    /** Index of the target cell in CampaignSpec::cells. */
    std::size_t cellIndex = 0;

    enum class Kind
    {
        Panic,      ///< a modeling bug: the real panic() path fires
        Stall,      ///< a core that stops committing: watchdog fires
        Throw,      ///< an environmental failure (retryable)

        // Real crash modes: these kill or wedge the *process*, so only
        // the process-isolation supervisor survives them. Injecting
        // them into the in-process (thread) runner takes the whole
        // campaign down — which is exactly what they exist to prove.
        Abort,      ///< std::abort(): SIGABRT, like a glibc heap error
        Segfault,   ///< raise(SIGSEGV), like a wild pointer
        Hang,       ///< an infinite loop outside any watchdog's sight
    };
    Kind kind = Kind::Throw;

    /** How many executions of the cell fault (retries count as
     *  executions); < 0 = every execution faults. */
    int times = -1;
};

struct RunnerOptions
{
    /** Worker threads; 0 = hardware concurrency, 1 = run serially in
     *  the calling thread. */
    int jobs = 1;
    /** Reuse results across cells/runs with identical identity. */
    bool cache = true;

    /**
     * Root of a persistent result store shared across runners, process
     * shards, and campaign invocations (empty = disabled). Successful
     * cells are published; lookups are integrity-checked and keyed by
     * the same identity as the in-memory cache, so a machine-definition
     * change (new manifest hash) never serves a stale result.
     */
    std::string storePath;

    /** Extra executions granted to a cell whose failure class is
     *  retryable (transient/internal); deterministic failures
     *  (invariant, deadlock, config, workload) never retry. */
    int maxRetries = 0;

    /** Deterministic fault-injection plan (tests/drills only). */
    std::vector<FaultInjection> faults;

    /**
     * Append-only JSONL campaign journal (empty = disabled). Every
     * completed cell is journaled; with resume=true, cells already
     * journaled under the same campaign, identity, and manifest hash
     * are served from the journal instead of re-executing, making an
     * interrupted-and-restarted campaign byte-identical to an
     * uninterrupted one.
     */
    std::string journalPath;
    bool resume = false;

    /** fsync the journal after every appended cell (also forced on by
     *  SIMALPHA_JOURNAL_SYNC=1): the journal survives not just a
     *  killed process but a crashed machine. */
    bool journalSync = false;

    /**
     * Cooperative cancellation (the Ctrl-C path): when non-null and
     * set, no further cell starts executing — already-running cells
     * finish and are journaled, the rest are left as default results.
     * The flag is a sig_atomic_t so a signal handler can set it.
     */
    const volatile std::sig_atomic_t *cancel = nullptr;

    /** Second cancellation source for in-process callers on another
     *  thread (the campaign service): same semantics as `cancel`, but
     *  an atomic, so cross-thread cancellation is race-free under
     *  TSan. Either flag cancels. */
    const std::atomic<bool> *cancelAtomic = nullptr;

    /**
     * Result-streaming hook: called once for every cell that settles —
     * computed, cache/store hit, or journal replay alike — with the
     * final CellResult, as soon as it is known (not at campaign end).
     * Calls are serialized by the runner (never concurrent), but may
     * come from any worker thread. Cells skipped by cancellation do
     * not fire. The campaign service streams per-cell result lines to
     * its clients through this.
     */
    std::function<void(const CellResult &)> onCell;
};

class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions options = {});

    /** Execute every cell of a campaign; results in spec order. */
    CampaignResult run(const CampaignSpec &spec);

    /** Cells served from cache since construction/clearCache(). */
    std::uint64_t cacheHits() const { return _cacheHits.load(); }

    /** Whether the persistent store opened successfully. */
    bool storeOpen() const { return _store.isOpen(); }

    /** Store traffic of this runner (hits/misses/publishes/bytes). */
    store::StoreCounters storeCounters() const
    {
        return _store.counters();
    }

    /** Distinct results currently cached. */
    std::size_t cacheSize() const;

    void clearCache();

    const RunnerOptions &options() const { return _opts; }

  private:
    /** Per-worker LRU pool of reusable Machine instances (defined in
     *  runner.cc). Machines reset to freshly-constructed state at the
     *  start of every run, so reuse is byte-identical to rebuilding —
     *  it just skips the allocation/construction of every sub-unit. */
    class MachinePool;

    /** Execute one cell; @p fault, when non-null, is this cell's
     *  injection and @p attempt the 1-based execution count. Any
     *  exception escaping execution is converted into a failed result
     *  carrying its taxonomy class — never propagated to the pool.
     *  @p pool is the calling worker's private machine pool. */
    CellResult runCell(const Cell &cell, const FaultInjection *fault,
                       int attempt, MachinePool &pool);
    /** The sampled-execution arm of runCell: fast-forward (or reuse
     *  stored metadata), plan windows, collect checkpoints through the
     *  store, run each detailed window, and aggregate window IPCs into
     *  the result's sampling statistics. Throws SimError subclasses on
     *  failure, which runCell's containment converts as usual. */
    void runSampledCell(const Cell &cell, Machine *machine,
                        const Program &program, CellResult *result);
    /** The injected-execution arm of runCell: fetch (or compute and
     *  publish) the golden reference, arm the planned flip, run, and
     *  classify the outcome against the golden digest. Throws SimError
     *  subclasses only for setup failures (machine cannot inject,
     *  golden run does not finish); outcomes of the injected run
     *  itself are classifications, not errors. */
    void runInjectedCell(const Cell &cell, Machine *machine,
                         const Program &program, CellResult *result);
    /** Golden (uninjected) reference for the cell's identity, served
     *  from the in-memory cache, then the store, then computed on
     *  @p machine and published. */
    inject::GoldenRef goldenFor(const Cell &cell, Machine *machine,
                                const Program &program,
                                const std::string &manifest_hash);
    /** Cache key, or empty if the cell is not cacheable (bad machine). */
    std::string cacheKey(const Cell &cell) const;
    /** Manifest hash of the cell's machine, empty if unknown. */
    static std::string currentManifestHash(const Cell &cell);

    RunnerOptions _opts;

    /** Serializes RunnerOptions::onCell calls across worker threads. */
    std::mutex _hookMutex;

    mutable std::mutex _cacheMutex;
    std::unordered_map<std::string, CellResult> _cache;
    std::atomic<std::uint64_t> _cacheHits{0};

    /** Golden references already resolved this run, keyed by
     *  inject::goldenKey() — a vulnerability campaign shares one
     *  golden run across its thousands of cells. */
    mutable std::mutex _goldenMutex;
    std::unordered_map<std::string, inject::GoldenRef> _golden;

    /** The disk-backed store (closed unless options.storePath set). */
    store::ResultStore _store;
};

} // namespace runner
} // namespace simalpha

#endif // SIMALPHA_RUNNER_RUNNER_HH

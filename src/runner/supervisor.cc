#include "supervisor.hh"

#include <fcntl.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/error.hh"
#include "common/logging.hh"
#include "runner/journal.hh"
#include "runner/shard.hh"

extern char **environ;

namespace simalpha {
namespace runner {

namespace {

using Clock = std::chrono::steady_clock;

/** One worker slot: its slice, its process, and its journal cursor. */
struct ShardState
{
    std::size_t id = 0;
    /** Campaign indices not yet settled (result, poison, or give-up),
     *  in execution order. */
    std::vector<std::size_t> pending;

    pid_t pid = -1;
    bool live = false;
    bool done = false;
    int spawns = 0;             ///< processes started for this shard

    /** Campaign index of the cell the worker is executing (from its
     *  last heartbeat), -1 between cells. */
    long inFlight = -1;
    /** When the supervisor observed that heartbeat. */
    Clock::time_point inFlightSince;
    /** The in-flight cell was SIGKILLed for exceeding its budget. */
    bool timeoutKilled = false;

    std::string journalPath;    ///< current attempt's journal
    std::vector<std::string> journalPaths;  ///< every attempt, for merge
    std::string logPath;        ///< worker stdout/stderr (appended)
    std::streamoff offset = 0;  ///< journal bytes already consumed

    /** Store traffic summed over this shard's worker attempts (each
     *  attempt reports its own summary line as it stops). */
    StoreTraffic store;

    Clock::time_point spawnAt;  ///< backoff: earliest next spawn
};

std::string
cellLabel(const Cell &cell)
{
    std::string label = "'" + cell.workload + "' on '" + cell.machine;
    if (cell.opt != validate::Optimization::None)
        label += "+" + validate::optimizationName(cell.opt);
    label += "'";
    return label;
}

bool
spawnShard(ShardState &shard, const SupervisorOptions &opts,
           const std::string &scratch)
{
    shard.spawns++;
    shard.journalPath = scratch + "/shard-" +
                        std::to_string(shard.id) + "-try" +
                        std::to_string(shard.spawns) + ".jsonl";
    shard.journalPaths.push_back(shard.journalPath);
    shard.offset = 0;
    shard.inFlight = -1;
    shard.timeoutKilled = false;
    shard.logPath = scratch + "/shard-" + std::to_string(shard.id) +
                    ".log";

    std::vector<std::string> args;
    args.push_back(opts.workerBinary);
    args.push_back("--shard");
    args.push_back("--campaign");
    args.push_back(opts.campaign);
    args.push_back("--cells");
    args.push_back(formatCellList(shard.pending));
    args.push_back("--journal");
    args.push_back(shard.journalPath);
    if (opts.maxInsts) {
        args.push_back("--max-insts");
        args.push_back(std::to_string(opts.maxInsts));
    }
    if (opts.sample.enabled()) {
        args.push_back("--sample");
        args.push_back(checkpoint::formatSampleSpec(opts.sample));
    }
    if (!opts.storePath.empty()) {
        args.push_back("--store");
        args.push_back(opts.storePath);
    }
    if (opts.maxRetries) {
        args.push_back("--retries");
        args.push_back(std::to_string(opts.maxRetries));
    }
    for (const FaultInjection &fault : opts.faults) {
        args.push_back("--inject");
        args.push_back(formatFaultSpec(fault));
    }
    if (opts.journalSync)
        args.push_back("--journal-sync");

    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    posix_spawn_file_actions_t actions;
    posix_spawn_file_actions_init(&actions);
    posix_spawn_file_actions_addopen(&actions, 1,
                                     shard.logPath.c_str(),
                                     O_WRONLY | O_CREAT | O_APPEND,
                                     0644);
    posix_spawn_file_actions_adddup2(&actions, 1, 2);

    pid_t pid = -1;
    int rc = posix_spawn(&pid, opts.workerBinary.c_str(), &actions,
                         nullptr, argv.data(), environ);
    posix_spawn_file_actions_destroy(&actions);
    if (rc != 0) {
        shard.live = false;
        return false;
    }
    shard.pid = pid;
    shard.live = true;
    return true;
}

/**
 * Consume newly-appended complete lines of the shard's journal:
 * heartbeats move the in-flight marker, result lines settle the
 * in-flight cell and are copied verbatim into the master journal
 * (verbatim, so resumed campaigns replay the worker's exact bytes)
 * and handed to @p onLine for live streaming.
 */
void
drainJournal(ShardState &shard, const CampaignSpec &spec,
             CampaignJournal &master,
             const std::function<void(const std::string &)> &onLine)
{
    std::ifstream in(shard.journalPath, std::ios::binary);
    if (!in)
        return;
    in.seekg(shard.offset);
    if (!in)
        return;
    std::ostringstream chunk;
    chunk << in.rdbuf();
    std::string data = chunk.str();

    std::size_t pos = 0;
    for (;;) {
        std::size_t nl = data.find('\n', pos);
        if (nl == std::string::npos)
            break;      // a torn final line stays unconsumed
        std::string line = data.substr(pos, nl - pos);
        pos = nl + 1;
        shard.offset += std::streamoff(line.size() + 1);

        std::size_t hb = 0;
        if (parseHeartbeatLine(line, spec.name, &hb)) {
            shard.inFlight = long(hb);
            shard.inFlightSince = Clock::now();
            continue;
        }
        StoreTraffic traffic;
        if (parseStoreSummaryLine(line, spec.name, &traffic)) {
            // Bookkeeping only — never copied into the master journal,
            // so journals stay byte-comparable with in-process runs.
            shard.store.hits += traffic.hits;
            shard.store.misses += traffic.misses;
            shard.store.bytesRead += traffic.bytesRead;
            shard.store.bytesWritten += traffic.bytesWritten;
            continue;
        }
        CellResult result;
        std::string key;
        if (!parseJournalLine(line, spec.name, &result, &key))
            continue;
        master.appendRaw(line);
        if (onLine)
            onLine(line);
        long settled = shard.inFlight;
        if (settled < 0) {
            // No heartbeat seen (shouldn't happen): match by identity.
            for (std::size_t idx : shard.pending)
                if (journalKey(spec.cells[idx]) == key) {
                    settled = long(idx);
                    break;
                }
        }
        if (settled >= 0)
            for (auto it = shard.pending.begin();
                 it != shard.pending.end(); ++it)
                if (long(*it) == settled) {
                    shard.pending.erase(it);
                    break;
                }
        shard.inFlight = -1;
    }
}

} // namespace

SupervisorOutcome
superviseCampaign(const SupervisorOptions &opts)
{
    CampaignSpec spec;
    if (!campaignByName(opts.campaign, &spec))
        throw ConfigError("unknown campaign '" + opts.campaign +
                          "' (table2..table5, smoke, dramsweep)");
    if (opts.maxInsts)
        spec = spec.withMaxInsts(opts.maxInsts);
    if (opts.sample.enabled())
        spec = spec.withSampling(opts.sample);
    if (opts.workerBinary.empty() ||
        ::access(opts.workerBinary.c_str(), X_OK) != 0)
        throw ConfigError("worker binary '" + opts.workerBinary +
                          "' is not executable");

    SupervisorOutcome out;
    out.result.campaign = spec.name;
    out.result.cells.assign(spec.cells.size(), CellResult());

    // Resume: settled cells (ok, contained failures, and previously
    // declared crashes/timeouts) replay from the master journal.
    std::map<std::size_t, CellResult> replayed;
    if (opts.resume && !opts.masterJournalPath.empty()) {
        std::unordered_map<std::string, CellResult> replay;
        std::string jerror;
        if (!loadJournal(opts.masterJournalPath, spec.name, &replay,
                         &jerror))
            warn("%s (resuming nothing)", jerror.c_str());
        for (std::size_t i = 0; i < spec.cells.size(); i++) {
            auto it = replay.find(journalKey(spec.cells[i]));
            if (it != replay.end() &&
                it->second.manifestHash ==
                    cellManifestHash(spec.cells[i])) {
                CellResult r = it->second;
                r.cell = spec.cells[i];
                replayed[i] = std::move(r);
            }
        }
    }

    CampaignJournal master;
    if (!opts.masterJournalPath.empty()) {
        std::string jerror;
        if (!master.open(opts.masterJournalPath, &jerror,
                         opts.journalSync))
            warn("%s (campaign will not be resumable)",
                 jerror.c_str());
    }

    // Stream replayed cells immediately: a live consumer sees the
    // same lines an uninterrupted run would have produced, in spec
    // order, without waiting for any worker to spawn.
    if (opts.onLine)
        for (const auto &kv : replayed)
            opts.onLine(journalLine(spec.name, kv.second));

    // Scratch directory for shard journals and worker logs.
    std::string scratch = opts.scratchDir;
    if (scratch.empty() && !opts.masterJournalPath.empty())
        scratch = opts.masterJournalPath + ".shards.d";
    bool scratchIsTemp = false;
    if (scratch.empty()) {
        char tmpl[] = "/tmp/simalpha-shards-XXXXXX";
        if (!::mkdtemp(tmpl))
            throw ConfigError("cannot create scratch directory for "
                              "shard journals");
        scratch = tmpl;
        scratchIsTemp = true;
    } else if (::mkdir(scratch.c_str(), 0755) != 0 &&
               errno != EEXIST) {
        throw ConfigError("cannot create scratch directory '" +
                          scratch + "'");
    }

    std::vector<std::size_t> work;
    for (std::size_t i = 0; i < spec.cells.size(); i++)
        if (!replayed.count(i))
            work.push_back(i);

    std::size_t nshards = std::size_t(opts.shards);
    if (opts.shards <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        nshards = hw ? hw : 1;
    }
    nshards = std::min<std::size_t>(std::max<std::size_t>(work.size(),
                                                          1),
                                    std::max<std::size_t>(nshards, 1));

    std::vector<ShardState> shards;
    if (!work.empty()) {
        auto slices = shardCells(work.size(), nshards);
        for (std::size_t s = 0; s < slices.size(); s++) {
            ShardState shard;
            shard.id = s;
            for (std::size_t w : slices[s])
                shard.pending.push_back(work[w]);
            shards.push_back(std::move(shard));
        }
    }

    // Supervisor-declared failures (poison cells, timeouts, give-ups),
    // journaled like any other settled cell so --resume replays them.
    std::map<std::size_t, CellResult> failed;
    auto recordFailure = [&](std::size_t index,
                             const std::string &errorClass,
                             const std::string &message) {
        CellResult r;
        r.cell = spec.cells[index];
        r.seed = cellSeed(r.cell);
        r.manifestHash = cellManifestHash(r.cell);
        r.ok = false;
        r.errorClass = errorClass;
        r.error = message;
        std::string line = journalLine(spec.name, r);
        master.appendRaw(line);
        if (opts.onLine)
            opts.onLine(line);
        if (errorClass == "timeout")
            out.timedOutCells++;
        else
            out.crashedCells++;
        failed[index] = std::move(r);
    };

    auto scheduleOrGiveUp = [&](ShardState &shard,
                                const std::string &why) {
        int respawnsUsed = shard.spawns - 1;
        if (respawnsUsed >= opts.maxRespawns) {
            for (std::size_t idx : shard.pending)
                recordFailure(
                    idx, "crash",
                    "shard " + std::to_string(shard.id) +
                        " worker died " +
                        std::to_string(shard.spawns) +
                        " times; giving up on this cell (" + why +
                        ")");
            shard.pending.clear();
            shard.done = true;
            return;
        }
        double delay = respawnBackoffSeconds(
            opts.backoffSeconds, respawnsUsed, shard.id);
        shard.spawnAt =
            Clock::now() +
            std::chrono::microseconds(long(delay * 1e6));
        out.respawns++;
    };

    auto handleExit = [&](ShardState &shard, int status,
                          bool interruptIssued) {
        std::string errorClass, message;
        bool clean = describeWaitStatus(status, &errorClass, &message);

        if (shard.timeoutKilled && shard.inFlight >= 0) {
            std::size_t idx = std::size_t(shard.inFlight);
            std::ostringstream msg;
            msg << "cell " << cellLabel(spec.cells[idx])
                << " exceeded its " << opts.cellTimeout
                << "s wall-clock timeout; shard " << shard.id
                << " worker killed";
            recordFailure(idx, "timeout", msg.str());
            for (auto it = shard.pending.begin();
                 it != shard.pending.end(); ++it)
                if (long(*it) == shard.inFlight) {
                    shard.pending.erase(it);
                    break;
                }
        } else if (!clean && !interruptIssued &&
                   shard.inFlight >= 0) {
            std::size_t idx = std::size_t(shard.inFlight);
            recordFailure(idx, errorClass,
                          message + " (shard " +
                              std::to_string(shard.id) + ", cell " +
                              cellLabel(spec.cells[idx]) +
                              " in flight)");
            for (auto it = shard.pending.begin();
                 it != shard.pending.end(); ++it)
                if (long(*it) == shard.inFlight) {
                    shard.pending.erase(it);
                    break;
                }
        }
        shard.inFlight = -1;
        shard.timeoutKilled = false;

        if (interruptIssued || shard.pending.empty()) {
            shard.done = true;
            return;
        }
        if (clean) {
            // Exited 0 with unsettled cells: the worker skipped them.
            for (std::size_t idx : shard.pending)
                recordFailure(idx, "crash",
                              "worker exited without producing a "
                              "result for this cell (shard " +
                                  std::to_string(shard.id) + ")");
            shard.pending.clear();
            shard.done = true;
            return;
        }
        scheduleOrGiveUp(shard, message);
    };

    for (ShardState &shard : shards)
        if (!spawnShard(shard, opts, scratch))
            scheduleOrGiveUp(shard, "posix_spawn failed");

    bool interruptIssued = false;
    bool killEscalated = false;
    Clock::time_point interruptAt;
    const auto grace = std::chrono::microseconds(
        long(std::max(opts.termGraceSeconds, 0.0) * 1e6));
    auto interruptRequested = [&]() {
        return (opts.interrupted && *opts.interrupted) ||
               (opts.interruptedAtomic &&
                opts.interruptedAtomic->load(
                    std::memory_order_relaxed));
    };

    for (;;) {
        bool allDone = true;
        for (ShardState &shard : shards)
            if (!shard.done)
                allDone = false;
        if (allDone)
            break;

        auto now = Clock::now();
        if (interruptRequested() && !interruptIssued) {
            interruptIssued = true;
            out.interrupted = true;
            interruptAt = now;
            for (ShardState &shard : shards) {
                if (shard.live)
                    ::kill(shard.pid, SIGTERM);
                else if (!shard.done)
                    shard.done = true;  // cancel scheduled respawns
            }
        }
        // A worker stuck past the drain grace (wedged in a cell, or a
        // fault-injected hang) is escalated to SIGKILL exactly once;
        // waitpid below reaps it like any other death.
        if (interruptIssued && !killEscalated &&
            now - interruptAt > grace) {
            killEscalated = true;
            for (ShardState &shard : shards)
                if (shard.live)
                    ::kill(shard.pid, SIGKILL);
        }

        for (ShardState &shard : shards) {
            if (shard.done)
                continue;
            if (!shard.live) {
                if (interruptIssued) {
                    shard.done = true;
                    continue;
                }
                if (now >= shard.spawnAt) {
                    if (!spawnShard(shard, opts, scratch))
                        scheduleOrGiveUp(shard,
                                         "posix_spawn failed");
                }
                continue;
            }

            drainJournal(shard, spec, master, opts.onLine);

            if (opts.cellTimeout > 0 && shard.inFlight >= 0 &&
                !shard.timeoutKilled &&
                Clock::now() - shard.inFlightSince >
                    std::chrono::microseconds(
                        long(opts.cellTimeout * 1e6))) {
                shard.timeoutKilled = true;
                ::kill(shard.pid, SIGKILL);
            }

            int status = 0;
            pid_t reaped = ::waitpid(shard.pid, &status, WNOHANG);
            if (reaped == shard.pid) {
                shard.live = false;
                drainJournal(shard, spec, master, opts.onLine);
                handleExit(shard, status, interruptIssued);
            }
        }

        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    out.spawns = 0;
    for (ShardState &shard : shards)
        out.spawns += shard.spawns;

    for (ShardState &shard : shards) {
        out.shardStore.push_back(shard.store);
        out.storeTraffic.hits += shard.store.hits;
        out.storeTraffic.misses += shard.store.misses;
        out.storeTraffic.bytesRead += shard.store.bytesRead;
        out.storeTraffic.bytesWritten += shard.store.bytesWritten;
    }

    // Merge: replayed cells, supervisor-declared failures, then the
    // shard journals (identity-matched, manifest-validated).
    CampaignResult merged;
    std::vector<std::size_t> missingIdx;
    std::vector<std::string> allJournals;
    for (ShardState &shard : shards)
        for (const std::string &path : shard.journalPaths)
            allJournals.push_back(path);
    mergeShardJournals(spec, allJournals, &merged, &missingIdx);
    std::set<std::size_t> missing(missingIdx.begin(),
                                  missingIdx.end());

    for (std::size_t i = 0; i < spec.cells.size(); i++) {
        auto rit = replayed.find(i);
        if (rit != replayed.end()) {
            out.result.cells[i] = rit->second;
            continue;
        }
        auto fit = failed.find(i);
        if (fit != failed.end()) {
            out.result.cells[i] = fit->second;
            continue;
        }
        if (!missing.count(i) || out.interrupted) {
            // Interrupted runs leave unfinished cells as default
            // results (identity filled); the caller must not turn a
            // partial result into an artifact.
            out.result.cells[i] = merged.cells[i];
            continue;
        }
        recordFailure(i, "crash",
                      "no result from any worker for this cell");
        out.result.cells[i] = failed[i];
    }
    out.replayedCells = replayed.size();

    // Healthy runs clean up after themselves; anything that crashed,
    // timed out, or was interrupted keeps its scratch directory (the
    // worker logs are the post-mortem).
    bool healthy = !out.interrupted && out.crashedCells == 0 &&
                   out.timedOutCells == 0;
    if (healthy || shards.empty()) {
        for (ShardState &shard : shards) {
            for (const std::string &path : shard.journalPaths)
                std::remove(path.c_str());
            if (!shard.logPath.empty())
                std::remove(shard.logPath.c_str());
        }
        ::rmdir(scratch.c_str());   // fails harmlessly if non-empty
    } else {
        out.scratchRetained = scratch;
    }
    (void)scratchIsTemp;

    return out;
}

} // namespace runner
} // namespace simalpha

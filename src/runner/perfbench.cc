#include "runner/perfbench.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include <filesystem>

#include <unistd.h>

#include "common/error.hh"
#include "common/logging.hh"
#include "isa/emulator.hh"
#include "runner/artifacts.hh"
#include "runner/campaign.hh"
#include "runner/runner.hh"
#include "store/store.hh"

#ifndef SIMALPHA_BUILD_TYPE
#define SIMALPHA_BUILD_TYPE "unknown"
#endif

namespace simalpha {
namespace runner {

namespace {

// ---------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------

double
elapsedSeconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

void
finishPath(PerfPath *p)
{
    p->ips = p->seconds > 0.0 ? double(p->insts) / p->seconds : 0.0;
}

/** Time the Table-3 cells of one machine, serially and uncached. */
bool
timeMachinePath(const CampaignSpec &t3, const char *machine,
                PerfPath *out, std::string *error)
{
    CampaignSpec s;
    s.name = std::string("perf-") + machine;
    for (const Cell &c : t3.cells)
        if (c.machine == machine)
            s.cells.push_back(c);

    RunnerOptions ro;
    ro.jobs = 1;
    ro.cache = false;
    ExperimentRunner rnr(ro);

    auto t0 = std::chrono::steady_clock::now();
    CampaignResult cr = rnr.run(s);
    auto t1 = std::chrono::steady_clock::now();

    std::uint64_t insts = 0;
    for (const CellResult &r : cr.cells) {
        if (!r.ok) {
            *error = std::string(machine) + "/" + r.cell.workload +
                     " failed: " + r.error;
            return false;
        }
        insts += r.instsCommitted;
    }
    out->insts = insts;
    out->seconds = elapsedSeconds(t0, t1);
    finishPath(out);
    return true;
}

/**
 * Time checkpoint-sampled sim-alpha over the Table-3 workloads at 10x
 * the detailed cap. `insts` counts the instructions the sampled cells
 * *represent* (their functional fast-forward length), so the resulting
 * ips is the effective rate of the sampled methodology — fast-forward,
 * checkpoint generation, and detailed windows included. No store is
 * attached: every checkpoint is generated in-process, the worst case.
 */
bool
timeSampledPath(const CampaignSpec &t3, std::uint64_t max_insts,
                PerfPath *out, std::string *error)
{
    CampaignSpec s;
    s.name = "perf-sampled";
    for (const Cell &c : t3.cells)
        if (c.machine == "sim-alpha")
            s.cells.push_back(c);

    checkpoint::SampleSpec spec;
    spec.windows = 5;
    spec.len = std::max<std::uint64_t>(max_insts / 10, 500);
    spec.warmup = spec.len / 2;
    s = s.withMaxInsts(max_insts * 10).withSampling(spec);

    RunnerOptions ro;
    ro.jobs = 1;
    ro.cache = false;
    ExperimentRunner rnr(ro);

    auto t0 = std::chrono::steady_clock::now();
    CampaignResult cr = rnr.run(s);
    auto t1 = std::chrono::steady_clock::now();

    std::uint64_t insts = 0;
    for (const CellResult &r : cr.cells) {
        if (!r.ok) {
            *error = "sampled sim-alpha/" + r.cell.workload +
                     " failed: " + r.error;
            return false;
        }
        insts += r.sampleTotalInsts;
    }
    out->insts = insts;
    out->seconds = elapsedSeconds(t0, t1);
    finishPath(out);
    return true;
}

/**
 * The injection-overhead row: the detailed sim-alpha cells again, on
 * a core that has explicitly seen armInjection(nullptr) — the
 * disarmed state every plain campaign runs in. The per-cycle hook is
 * one predicted-not-taken branch, so this must match the detailed
 * row within run-to-run noise. Machine construction and workload
 * generation stay outside the timed region, like the runner's pool.
 */
bool
timeInjectIdlePath(const CampaignSpec &t3, PerfPath *out,
                   std::string *error)
{
    std::vector<Program> progs;
    std::vector<std::uint64_t> caps;
    for (const Cell &c : t3.cells) {
        if (c.machine != "sim-alpha")
            continue;
        Program p;
        if (!buildWorkload(c.workload, &p, error))
            return false;
        progs.push_back(std::move(p));
        caps.push_back(c.maxInsts);
    }
    std::unique_ptr<Machine> machine = validate::tryMakeMachine(
        "sim-alpha", validate::Optimization::None, error);
    if (!machine)
        return false;

    std::uint64_t insts = 0;
    auto t0 = std::chrono::steady_clock::now();
    try {
        for (std::size_t i = 0; i < progs.size(); i++) {
            machine->armInjection(nullptr, 0);
            RunResult r = machine->run(progs[i], caps[i]);
            insts += r.instsCommitted;
        }
    } catch (const SimError &e) {
        *error = std::string("inject-idle run failed: ") + e.what();
        return false;
    }
    auto t1 = std::chrono::steady_clock::now();
    out->insts = insts;
    out->seconds = elapsedSeconds(t0, t1);
    finishPath(out);
    return true;
}

/** The emulator paths run the workload set several times and keep the
 *  fastest pass: a single capped pass is a few milliseconds at
 *  emulator speed, and on a shared machine scheduler noise and
 *  frequency throttling swamp it. Interference is strictly one-sided
 *  (it only ever slows a pass down), so the best pass is the least
 *  contaminated estimate of the code's real rate, and using the same
 *  estimator for the pinned baseline and the smoke gate keeps their
 *  ratio meaningful. */
constexpr int kEmulatorBenchPasses = 10;

/** Keep (insts, seconds) of the fastest pass seen so far. */
void
keepBestPass(std::uint64_t insts,
             std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1, PerfPath *out)
{
    double seconds = elapsedSeconds(t0, t1);
    if (out->seconds == 0.0 ||
        (seconds > 0.0 &&
         double(insts) / seconds > double(out->insts) / out->seconds)) {
        out->insts = insts;
        out->seconds = seconds;
    }
}

/** Time the raw functional Emulator over the same workload set. */
bool
timeEmulatorPath(const CampaignSpec &t3, std::uint64_t max_insts,
                 PerfPath *out, std::string *error)
{
    std::vector<std::string> names;
    for (const Cell &c : t3.cells)
        if (std::find(names.begin(), names.end(), c.workload) ==
            names.end())
            names.push_back(c.workload);

    std::vector<Program> progs;
    for (const std::string &n : names) {
        Program p;
        if (!buildWorkload(n, &p, error))
            return false;
        progs.push_back(p);
    }

    *out = PerfPath{};
    for (int pass = 0; pass < kEmulatorBenchPasses; pass++) {
        std::uint64_t insts = 0;
        auto t0 = std::chrono::steady_clock::now();
        for (const Program &p : progs) {
            Emulator emu(p);
            std::uint64_t n = 0;
            while (!emu.halted() &&
                   (max_insts == 0 || n < max_insts)) {
                emu.step();
                n++;
            }
            insts += n;
        }
        auto t1 = std::chrono::steady_clock::now();
        keepBestPass(insts, t0, t1, out);
    }
    finishPath(out);
    return true;
}

/** The predecoded batch loop over the same workloads: run() amortizes
 *  fetch/dispatch across whole batches, so this row is the emulator's
 *  raw-dispatch ceiling. */
bool
timeEmuPrePath(const CampaignSpec &t3, std::uint64_t max_insts,
               PerfPath *out, std::string *error)
{
    std::vector<std::string> names;
    for (const Cell &c : t3.cells)
        if (std::find(names.begin(), names.end(), c.workload) ==
            names.end())
            names.push_back(c.workload);

    std::vector<Program> progs;
    for (const std::string &n : names) {
        Program p;
        if (!buildWorkload(n, &p, error))
            return false;
        progs.push_back(p);
    }

    *out = PerfPath{};
    for (int pass = 0; pass < kEmulatorBenchPasses; pass++) {
        std::uint64_t insts = 0;
        auto t0 = std::chrono::steady_clock::now();
        for (const Program &p : progs) {
            Emulator emu(p);
            std::uint64_t n = 0;
            while (!emu.halted() &&
                   (max_insts == 0 || n < max_insts)) {
                std::uint64_t ran = emu.run(
                    max_insts == 0 ? std::uint64_t(1) << 30
                                   : max_insts - n);
                if (ran == 0)
                    break;
                n += ran;
            }
            insts += n;
        }
        auto t1 = std::chrono::steady_clock::now();
        keepBestPass(insts, t0, t1, out);
    }
    finishPath(out);
    return true;
}

/**
 * The indexed warm-store replay rate: fill a private store with the
 * whole capped campaign, build its binary shard indexes, then time a
 * warm rerun of the same campaign against it — every cell served by
 * an index record (pread + FNV check), zero per-entry JSON parsing.
 * Fill and index build stay outside the timed region.
 */
bool
timeWarmStorePath(const CampaignSpec &t3, PerfPath *out,
                  std::string *error)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    std::string root =
        (fs::temp_directory_path(ec) /
         ("simalpha-bench-store-" + std::to_string(long(::getpid()))))
            .string();

    auto fail = [&](const std::string &msg) {
        *error = "warm-store: " + msg;
        fs::remove_all(root, ec);
        return false;
    };

    {
        RunnerOptions ro;
        ro.jobs = 1;
        ro.storePath = root;
        ExperimentRunner cold(ro);
        CampaignResult cr = cold.run(t3);
        for (const CellResult &r : cr.cells)
            if (!r.ok)
                return fail("cold " + r.cell.machine + "/" +
                            r.cell.workload + " failed: " + r.error);
    }
    {
        store::ResultStore s;
        std::string serr;
        store::IndexOutcome io;
        if (!s.open(root, &serr) || !s.buildIndexes(&io, &serr))
            return fail(serr);
    }

    RunnerOptions ro;
    ro.jobs = 1;
    ro.storePath = root;
    ExperimentRunner warm(ro);
    auto t0 = std::chrono::steady_clock::now();
    CampaignResult cr = warm.run(t3);
    auto t1 = std::chrono::steady_clock::now();

    std::uint64_t insts = 0;
    for (const CellResult &r : cr.cells) {
        if (!r.ok)
            return fail("warm " + r.cell.machine + "/" +
                        r.cell.workload + " failed: " + r.error);
        insts += r.instsCommitted;
    }
    if (warm.storeCounters().hits < cr.cells.size())
        return fail("warm rerun missed the store (" +
                    std::to_string(warm.storeCounters().hits) + "/" +
                    std::to_string(cr.cells.size()) + " hits)");
    out->insts = insts;
    out->seconds = elapsedSeconds(t0, t1);
    finishPath(out);
    fs::remove_all(root, ec);
    return true;
}

// ---------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------

void
pathToJson(std::ostringstream &o, const char *key, const PerfPath &p)
{
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "\"%s\":{\"insts\":%llu,\"seconds\":%.6f,"
                  "\"ips\":%.1f}",
                  key, (unsigned long long)p.insts, p.seconds, p.ips);
    o << buf;
}

void
entryToJson(std::ostringstream &o, const char *key, const PerfEntry &e)
{
    o << "  \"" << key << "\": {\"build_type\":\""
      << jsonEscape(e.buildType) << "\",\"max_insts\":"
      << (unsigned long long)e.maxInsts << ",";
    pathToJson(o, "detailed", e.detailed);
    o << ",";
    pathToJson(o, "abstract", e.abstracted);
    o << ",";
    pathToJson(o, "emulator", e.emulator);
    o << ",";
    pathToJson(o, "emu_pre", e.emuPre);
    o << ",";
    pathToJson(o, "sampled", e.sampled);
    o << ",";
    pathToJson(o, "inject_idle", e.injectIdle);
    o << ",";
    pathToJson(o, "serve_cold", e.serveCold);
    o << ",";
    pathToJson(o, "serve_warm", e.serveWarm);
    o << ",";
    pathToJson(o, "fleet_cold", e.fleetCold);
    o << ",";
    pathToJson(o, "fleet_warm", e.fleetWarm);
    o << ",";
    pathToJson(o, "warm_store", e.warmStore);
    o << "}";
}

// ---------------------------------------------------------------
// JSON parsing (self-contained; the trajectory file must stay
// machine-readable across PRs, so drift is a hard parse error)
// ---------------------------------------------------------------

struct Json
{
    enum Kind { Null, Num, Str, Obj };
    Kind kind = Null;
    double num = 0.0;
    std::string str;
    std::map<std::string, Json> obj;
};

class JsonParser
{
  public:
    JsonParser(const char *p, const char *end) : _p(p), _end(end) {}

    bool
    parseTop(Json *out)
    {
        if (!parseValue(out))
            return false;
        ws();
        if (_p != _end)
            return fail("trailing content after JSON value");
        return true;
    }

    const std::string &error() const { return _err; }

  private:
    void
    ws()
    {
        while (_p != _end &&
               std::isspace(static_cast<unsigned char>(*_p)))
            _p++;
    }

    bool
    fail(const char *msg)
    {
        if (_err.empty())
            _err = msg;
        return false;
    }

    bool
    parseString(std::string *out)
    {
        if (_p == _end || *_p != '"')
            return fail("expected string");
        _p++;
        out->clear();
        while (_p != _end && *_p != '"') {
            char c = *_p++;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (_p == _end)
                return fail("truncated escape");
            char e = *_p++;
            switch (e) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                if (_end - _p < 4)
                    return fail("truncated \\u escape");
                unsigned v = 0;
                for (int i = 0; i < 4; i++) {
                    char h = *_p++;
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // The writer only \u-escapes control bytes.
                out->push_back(v < 0x80 ? char(v) : '?');
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (_p == _end)
            return fail("unterminated string");
        _p++; // closing quote
        return true;
    }

    bool
    parseNumber(double *out)
    {
        char *endp = nullptr;
        *out = std::strtod(_p, &endp);
        if (endp == _p)
            return fail("expected number");
        _p = endp;
        return true;
    }

    bool
    parseObject(Json *out)
    {
        _p++; // '{'
        out->kind = Json::Obj;
        ws();
        if (_p != _end && *_p == '}') {
            _p++;
            return true;
        }
        for (;;) {
            ws();
            std::string key;
            if (!parseString(&key))
                return false;
            ws();
            if (_p == _end || *_p != ':')
                return fail("expected ':'");
            _p++;
            Json v;
            if (!parseValue(&v))
                return false;
            out->obj[key] = std::move(v);
            ws();
            if (_p == _end)
                return fail("unterminated object");
            if (*_p == ',') {
                _p++;
                continue;
            }
            if (*_p == '}') {
                _p++;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseValue(Json *out)
    {
        ws();
        if (_p == _end)
            return fail("unexpected end of input");
        char c = *_p;
        if (c == '{')
            return parseObject(out);
        if (c == '"') {
            out->kind = Json::Str;
            return parseString(&out->str);
        }
        if (c == '-' || c == '+' ||
            std::isdigit(static_cast<unsigned char>(c))) {
            out->kind = Json::Num;
            return parseNumber(&out->num);
        }
        return fail("unexpected token");
    }

    const char *_p;
    const char *_end;
    std::string _err;
};

const Json *
getField(const Json &o, const char *key, Json::Kind kind,
         std::string *error)
{
    auto it = o.obj.find(key);
    if (it == o.obj.end() || it->second.kind != kind) {
        *error = std::string("missing or ill-typed field \"") + key +
                 "\"";
        return nullptr;
    }
    return &it->second;
}

bool
pathFromJson(const Json &parent, const char *key, PerfPath *p,
             std::string *error)
{
    const Json *j = getField(parent, key, Json::Obj, error);
    if (!j)
        return false;
    const Json *insts = getField(*j, "insts", Json::Num, error);
    const Json *seconds = getField(*j, "seconds", Json::Num, error);
    const Json *ips = getField(*j, "ips", Json::Num, error);
    if (!insts || !seconds || !ips)
        return false;
    p->insts = std::uint64_t(insts->num);
    p->seconds = seconds->num;
    p->ips = ips->num;
    return true;
}

bool
entryFromJson(const Json &parent, const char *key, PerfEntry *e,
              std::string *error)
{
    const Json *j = getField(parent, key, Json::Obj, error);
    if (!j)
        return false;
    const Json *bt = getField(*j, "build_type", Json::Str, error);
    const Json *mi = getField(*j, "max_insts", Json::Num, error);
    if (!bt || !mi)
        return false;
    e->buildType = bt->str;
    e->maxInsts = std::uint64_t(mi->num);
    if (!pathFromJson(*j, "detailed", &e->detailed, error) ||
        !pathFromJson(*j, "abstract", &e->abstracted, error) ||
        !pathFromJson(*j, "emulator", &e->emulator, error))
        return false;
    // Optional: files written before the predecoded batch row existed.
    if (j->obj.count("emu_pre") &&
        !pathFromJson(*j, "emu_pre", &e->emuPre, error))
        return false;
    // Optional: trajectory files written before the sampled path
    // existed have no "sampled" object; its absence is not drift.
    if (j->obj.count("sampled") &&
        !pathFromJson(*j, "sampled", &e->sampled, error))
        return false;
    // Optional for the same reason: files written before the
    // injection-overhead row existed.
    if (j->obj.count("inject_idle") &&
        !pathFromJson(*j, "inject_idle", &e->injectIdle, error))
        return false;
    // Optional: the campaign-service rows arrived with `simalpha
    // serve`; their absence (or a build without the hook) is not
    // drift.
    if (j->obj.count("serve_cold") &&
        !pathFromJson(*j, "serve_cold", &e->serveCold, error))
        return false;
    if (j->obj.count("serve_warm") &&
        !pathFromJson(*j, "serve_warm", &e->serveWarm, error))
        return false;
    // Optional likewise: the fleet rows arrived with the dispatcher.
    if (j->obj.count("fleet_cold") &&
        !pathFromJson(*j, "fleet_cold", &e->fleetCold, error))
        return false;
    if (j->obj.count("fleet_warm") &&
        !pathFromJson(*j, "fleet_warm", &e->fleetWarm, error))
        return false;
    // Optional: files written before the indexed warm-store row.
    if (j->obj.count("warm_store") &&
        !pathFromJson(*j, "warm_store", &e->warmStore, error))
        return false;
    e->valid = true;
    return true;
}

bool
readFile(const std::string &path, std::string *out, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *error = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

void
printPath(const char *name, const PerfPath &p)
{
    std::printf("  %-9s %12llu insts  %8.3f s  %12.0f insts/s\n",
                name, (unsigned long long)p.insts, p.seconds, p.ips);
}

ServeBenchFn g_serveBench = nullptr;
FleetBenchFn g_fleetBench = nullptr;

} // namespace

void
setServeBenchHook(ServeBenchFn fn)
{
    g_serveBench = fn;
}

void
setFleetBenchHook(FleetBenchFn fn)
{
    g_fleetBench = fn;
}

bool
measurePerf(std::uint64_t max_insts, PerfEntry *out, std::string *error)
{
    CampaignSpec t3 = table3Campaign();
    if (max_insts)
        t3 = t3.withMaxInsts(max_insts);

    PerfEntry e;
    e.buildType = SIMALPHA_BUILD_TYPE;
    e.maxInsts = max_insts;
    if (!timeMachinePath(t3, "sim-alpha", &e.detailed, error))
        return false;
    if (!timeMachinePath(t3, "sim-outorder", &e.abstracted, error))
        return false;
    if (!timeEmulatorPath(t3, max_insts, &e.emulator, error))
        return false;
    if (!timeEmuPrePath(t3, max_insts, &e.emuPre, error))
        return false;
    if (!timeSampledPath(t3, max_insts, &e.sampled, error))
        return false;
    if (!timeWarmStorePath(t3, &e.warmStore, error))
        return false;
    if (!timeInjectIdlePath(t3, &e.injectIdle, error))
        return false;
    if (g_serveBench &&
        !g_serveBench(max_insts, &e.serveCold, &e.serveWarm, error))
        return false;
    if (g_fleetBench &&
        !g_fleetBench(max_insts, &e.fleetCold, &e.fleetWarm, error))
        return false;
    e.valid = true;
    *out = e;
    return true;
}

std::string
perfReportToJson(const PerfReport &report)
{
    std::ostringstream o;
    o << "{\n";
    o << "  \"schema_version\": " << report.schemaVersion << ",\n";
    o << "  \"campaign\": \"" << jsonEscape(report.campaign)
      << "\",\n";
    entryToJson(o, "baseline", report.baseline);
    o << ",\n";
    entryToJson(o, "current", report.current);
    o << ",\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", report.speedupDetailed);
    o << "  \"speedup_detailed\": " << buf << "\n";
    o << "}\n";
    return o.str();
}

bool
parsePerfReport(const std::string &text, PerfReport *out,
                std::string *error)
{
    Json root;
    JsonParser p(text.data(), text.data() + text.size());
    if (!p.parseTop(&root)) {
        *error = p.error();
        return false;
    }
    if (root.kind != Json::Obj) {
        *error = "top-level value is not an object";
        return false;
    }
    const Json *ver = getField(root, "schema_version", Json::Num,
                               error);
    if (!ver)
        return false;
    if (int(ver->num) != 1) {
        *error = "unsupported schema_version";
        return false;
    }
    const Json *camp = getField(root, "campaign", Json::Str, error);
    const Json *spd = getField(root, "speedup_detailed", Json::Num,
                               error);
    if (!camp || !spd)
        return false;
    PerfReport r;
    r.schemaVersion = int(ver->num);
    r.campaign = camp->str;
    r.speedupDetailed = spd->num;
    if (!entryFromJson(root, "baseline", &r.baseline, error) ||
        !entryFromJson(root, "current", &r.current, error))
        return false;
    *out = r;
    return true;
}

bool
checkPerfFile(const std::string &path, std::string *error)
{
    std::string text;
    if (!readFile(path, &text, error))
        return false;
    PerfReport r;
    return parsePerfReport(text, &r, error);
}

int
runBenchCommand(int argc, char **argv)
{
    std::string out_path = "BENCH_perf.json";
    std::string check_path;
    std::uint64_t max_insts = kPerfBenchDefaultMaxInsts;
    bool cap_explicit = false;
    bool set_baseline = false;
    bool smoke = false;

    for (int i = 1; i < argc; i++) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench: missing value after %s\n",
                             argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--quick") == 0) {
            max_insts = kPerfBenchQuickMaxInsts;
            cap_explicit = true;
        } else if (std::strcmp(argv[i], "--max-insts") == 0) {
            max_insts = std::strtoull(next(), nullptr, 10);
            cap_explicit = true;
        } else if (std::strcmp(argv[i], "--out") == 0)
            out_path = next();
        else if (std::strcmp(argv[i], "--check") == 0)
            check_path = next();
        else if (std::strcmp(argv[i], "--set-baseline") == 0)
            set_baseline = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else {
            std::fprintf(
                stderr,
                "usage: simalpha bench [--quick] [--max-insts N] "
                "[--out FILE] [--check FILE] [--set-baseline] "
                "[--smoke]\n");
            return 2;
        }
    }

    if (!check_path.empty()) {
        std::string error;
        if (!checkPerfFile(check_path, &error)) {
            std::fprintf(stderr, "bench: %s: %s\n", check_path.c_str(),
                         error.c_str());
            return 1;
        }
        std::printf("bench: %s: schema ok\n", check_path.c_str());
        return 0;
    }

    if (smoke) {
        std::string text, error;
        PerfReport r;
        if (!readFile(out_path, &text, &error) ||
            !parsePerfReport(text, &r, &error)) {
            std::fprintf(stderr,
                         "bench: --smoke needs a valid trajectory "
                         "file %s: %s\n",
                         out_path.c_str(), error.c_str());
            return 1;
        }
        if (!r.baseline.valid || r.baseline.detailed.ips <= 0.0 ||
            r.baseline.emulator.ips <= 0.0) {
            std::fprintf(stderr,
                         "bench: --smoke: %s has no usable pinned "
                         "baseline (run `simalpha bench "
                         "--set-baseline` first)\n",
                         out_path.c_str());
            return 1;
        }

        setQuiet(true);
        std::uint64_t cap =
            cap_explicit ? max_insts : r.baseline.maxInsts;
        std::printf("bench: smoke at max_insts=%llu vs baseline "
                    "(build=%s)...\n",
                    (unsigned long long)cap,
                    r.baseline.buildType.c_str());
        std::fflush(stdout);

        CampaignSpec t3 = table3Campaign();
        if (cap)
            t3 = t3.withMaxInsts(cap);
        // Up to three attempts, keeping the best ips seen per path
        // and stopping as soon as both clear the floor. Interference
        // on a shared machine is one-sided (it only ever slows a
        // trial down), so retrying shields the gate from transient
        // throttling while a genuine regression still fails every
        // attempt.
        PerfPath det, emu;
        double det_ratio = 0.0, emu_ratio = 0.0;
        for (int attempt = 0; attempt < 3; attempt++) {
            PerfPath d, e2;
            if (!timeMachinePath(t3, "sim-alpha", &d, &error) ||
                !timeEmulatorPath(t3, cap, &e2, &error)) {
                std::fprintf(stderr,
                             "bench: smoke measurement failed: %s\n",
                             error.c_str());
                return 1;
            }
            if (attempt == 0 || d.ips > det.ips)
                det = d;
            if (attempt == 0 || e2.ips > emu.ips)
                emu = e2;
            det_ratio = det.ips / r.baseline.detailed.ips;
            emu_ratio = emu.ips / r.baseline.emulator.ips;
            if (det_ratio >= 0.8 && emu_ratio >= 0.8)
                break;
        }
        printPath("detailed", det);
        printPath("emulator", emu);
        std::printf("detailed vs baseline: %.2fx, emulator vs "
                    "baseline: %.2fx (floor 0.80x)\n",
                    det_ratio, emu_ratio);
        if (r.baseline.buildType != SIMALPHA_BUILD_TYPE) {
            std::printf("bench: smoke: build type %s differs from "
                        "baseline %s — thresholds reported, not "
                        "enforced\n",
                        SIMALPHA_BUILD_TYPE,
                        r.baseline.buildType.c_str());
            return 0;
        }
        if (det_ratio < 0.8 || emu_ratio < 0.8) {
            std::fprintf(stderr,
                         "bench: smoke FAILED: ips regressed more "
                         "than 20%% against the pinned baseline\n");
            return 1;
        }
        std::printf("bench: smoke OK\n");
        return 0;
    }

    setQuiet(true);

    // Preserve the pinned baseline of an existing trajectory file. A
    // malformed file is an error, not an overwrite — losing the
    // baseline silently would wreck the trajectory.
    PerfReport report;
    bool had_file = false;
    {
        std::ifstream probe(out_path);
        if (probe.good()) {
            std::string text, error;
            if (!readFile(out_path, &text, &error) ||
                !parsePerfReport(text, &report, &error)) {
                std::fprintf(stderr,
                             "bench: refusing to overwrite malformed "
                             "%s: %s\n",
                             out_path.c_str(), error.c_str());
                return 1;
            }
            had_file = true;
        }
    }

    std::printf("bench: measuring capped table3 (max_insts=%llu, "
                "build=%s)...\n",
                (unsigned long long)max_insts, SIMALPHA_BUILD_TYPE);
    std::fflush(stdout);

    PerfEntry e;
    std::string error;
    if (!measurePerf(max_insts, &e, &error)) {
        std::fprintf(stderr, "bench: measurement failed: %s\n",
                     error.c_str());
        return 1;
    }

    report.current = e;
    if (!had_file || !report.baseline.valid || set_baseline)
        report.baseline = e;
    report.speedupDetailed =
        report.baseline.detailed.ips > 0.0
            ? e.detailed.ips / report.baseline.detailed.ips
            : 1.0;

    if (!writeFileAtomic(out_path, perfReportToJson(report), &error)) {
        std::fprintf(stderr, "bench: %s\n", error.c_str());
        return 1;
    }

    std::printf("current (build=%s, max_insts=%llu):\n",
                e.buildType.c_str(), (unsigned long long)e.maxInsts);
    printPath("detailed", e.detailed);
    printPath("abstract", e.abstracted);
    printPath("emulator", e.emulator);
    printPath("emu-pre", e.emuPre);
    printPath("sampled", e.sampled);
    printPath("inj-idle", e.injectIdle);
    printPath("warmstore", e.warmStore);
    if (e.serveCold.seconds > 0.0 || e.serveWarm.seconds > 0.0) {
        printPath("srv-cold", e.serveCold);
        printPath("srv-warm", e.serveWarm);
        if (e.serveCold.ips > 0.0 && e.serveWarm.ips > 0.0)
            std::printf("serve warm vs cold: %.1fx (store-served "
                        "cells through the socket)\n",
                        e.serveWarm.ips / e.serveCold.ips);
    }
    if (e.fleetCold.seconds > 0.0 || e.fleetWarm.seconds > 0.0) {
        printPath("flt-cold", e.fleetCold);
        printPath("flt-warm", e.fleetWarm);
        if (e.fleetCold.ips > 0.0 && e.fleetWarm.ips > 0.0)
            std::printf("fleet warm vs cold: %.1fx (store-served "
                        "cells through two socket hops)\n",
                        e.fleetWarm.ips / e.fleetCold.ips);
    }
    if (e.detailed.ips > 0.0 && e.injectIdle.ips > 0.0)
        std::printf("inject-idle vs detailed: %.3fx (disarmed "
                    "injection hooks; ~1.0 expected)\n",
                    e.injectIdle.ips / e.detailed.ips);
    if (report.baseline.maxInsts != e.maxInsts)
        std::printf("note: baseline was recorded at max_insts=%llu — "
                    "speedup compares insts/s across caps\n",
                    (unsigned long long)report.baseline.maxInsts);
    std::printf("speedup (detailed vs baseline): %.2fx\n",
                report.speedupDetailed);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}

} // namespace runner
} // namespace simalpha

/**
 * @file
 * Campaign artifacts: deterministic JSON/CSV serialization of campaign
 * results (suitable for golden-value regression and byte-for-byte
 * determinism checks), plus diffing and per-machine aggregation.
 *
 * Serialization is canonical by construction — cells in spec order,
 * counters sorted by name, fixed-precision doubles — so two campaigns
 * that measured the same numbers always render the same bytes.
 */

#ifndef SIMALPHA_RUNNER_ARTIFACTS_HH
#define SIMALPHA_RUNNER_ARTIFACTS_HH

#include <string>
#include <vector>

#include "runner/runner.hh"
#include "runner/shard.hh"

namespace simalpha {
namespace runner {

/** Escape a string for embedding in a JSON string literal (shared by
 *  the artifact writers and the campaign journal). */
std::string jsonEscape(const std::string &s);

/** Render a campaign result as canonical JSON. */
std::string toJson(const CampaignResult &result);

/** Render a campaign result as CSV (one row per cell, no counters). */
std::string toCsv(const CampaignResult &result);

/**
 * Atomically replace @p path with @p content: write a temporary file
 * next to it, then rename over the target. A kill at any instant
 * leaves either the previous file or the complete new one — never a
 * truncated artifact. Returns false with *error filled on I/O failure
 * (the temporary is removed).
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &content, std::string *error);

/**
 * Write an artifact file; format chosen by extension (.csv writes
 * CSV, anything else JSON). The write is atomic (temp + rename).
 * Returns false with *error filled on I/O failure.
 */
bool writeArtifact(const CampaignResult &result,
                   const std::string &path, std::string *error);

/** One field that differs between two campaigns' matching cells. */
struct CellDiff
{
    std::string machine;
    std::string optimization;
    std::string workload;
    std::string field;      ///< "cycles", "insts", "missing", ...
    std::string a;
    std::string b;
};

/**
 * Compare two campaign results cell-by-cell (matched by machine,
 * optimization, workload, maxInsts, seed). Reports differing cycles,
 * instruction counts, status, counters, and cells present on only one
 * side. Empty result = campaigns measured identical numbers.
 */
std::vector<CellDiff> diffCampaigns(const CampaignResult &a,
                                    const CampaignResult &b);

/** Per-machine rollup of one campaign. */
struct MachineAggregate
{
    std::string machine;    ///< machine name (+optimization suffix)
    std::size_t cellsOk = 0;
    std::size_t cellsFailed = 0;
    std::uint64_t totalCycles = 0;
    std::uint64_t totalInsts = 0;
    double hmeanIpc = 0.0;  ///< harmonic-mean IPC over ok cells
};

/** Aggregate a campaign by machine, in first-appearance order. */
std::vector<MachineAggregate>
aggregateByMachine(const CampaignResult &result);

/**
 * Run-level observability — cache and persistent-store traffic — for
 * one campaign invocation. Deliberately written as *sidecar* artifacts
 * (<out>.summary.json / <out>.summary.csv) rather than folded into the
 * main artifact: traffic differs between a cold and a warm store, and
 * the cell-results artifact must stay byte-identical between them.
 */
struct RunSummary
{
    std::string campaign;
    std::size_t cells = 0;
    std::size_t cellsOk = 0;
    std::size_t cellsFailed = 0;

    /** In-memory result-cache hits (thread isolation only). */
    std::uint64_t cacheHits = 0;

    bool storeEnabled = false;
    std::string storePath;
    /** Store traffic of the whole run (all threads / all shards). */
    StoreTraffic store;
    /** Per-shard traffic, indexed by shard id (process isolation
     *  only; empty otherwise). */
    std::vector<StoreTraffic> shardStore;
};

/** Render a run summary as canonical JSON. */
std::string toSummaryJson(const RunSummary &summary);

/** Render a run summary as metric,value CSV (one per-shard row per
 *  traffic counter). */
std::string toSummaryCsv(const RunSummary &summary);

/**
 * Write <artifactPath>.summary.json and <artifactPath>.summary.csv
 * (both atomic). Returns false with *error filled on the first I/O
 * failure.
 */
bool writeSummaryArtifacts(const RunSummary &summary,
                           const std::string &artifactPath,
                           std::string *error);

} // namespace runner
} // namespace simalpha

#endif // SIMALPHA_RUNNER_ARTIFACTS_HH

/**
 * @file
 * The shard protocol between the process-isolation supervisor and its
 * `simalpha --shard` worker processes.
 *
 * A sharded campaign is split into slices of cell indices; each worker
 * re-derives the campaign spec from its name (campaigns are pure
 * functions of their name and instruction cap, so no state needs to
 * cross the exec boundary) and executes its slice serially, writing
 * one JSONL journal:
 *
 *   - a heartbeat line *before* each cell starts, carrying the
 *     campaign cell index — the supervisor's only window into an
 *     otherwise-silent simulation, used both to attribute a worker
 *     death to the in-flight cell and to enforce per-cell wall-clock
 *     timeouts, and
 *   - the ordinary campaign-journal result line *after* each cell
 *     completes (ok or contained failure), written by the regular
 *     ExperimentRunner journal path so shard journals merge with the
 *     exact bytes an in-process run would have produced.
 *
 * Everything here is deliberately plain data: cell-index lists,
 * heartbeat lines, fault-injection specs (all exec-able as command
 * lines), the wait-status → error-class mapping, and the merge of
 * shard journals back into one spec-ordered campaign result.
 */

#ifndef SIMALPHA_RUNNER_SHARD_HH
#define SIMALPHA_RUNNER_SHARD_HH

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "runner/runner.hh"

namespace simalpha {
namespace runner {

/** Round-robin assignment of @p cellCount cells over @p shardCount
 *  shards (mirrors the thread pool's initial distribution). Shards
 *  beyond the cell count come back empty. */
std::vector<std::vector<std::size_t>>
shardCells(std::size_t cellCount, std::size_t shardCount);

/** "0,3,6" ⇄ {0,3,6} — the worker's --cells argument. */
std::string formatCellList(const std::vector<std::size_t> &cells);
bool parseCellList(const std::string &text,
                   std::vector<std::size_t> *out, std::string *error);

/** "17:segfault:1" ⇄ FaultInjection — the worker's --inject argument
 *  (kinds: panic, stall, throw, abort, segfault, hang; the optional
 *  :times counts faulting executions, default every execution). */
std::string formatFaultSpec(const FaultInjection &fault);
bool parseFaultSpec(const std::string &text, FaultInjection *out,
                    std::string *error);

/** The heartbeat line a worker writes (and flushes) into its journal
 *  immediately before cell @p cellIndex starts executing. */
std::string heartbeatLine(const std::string &campaign,
                          std::size_t cellIndex,
                          const std::string &workload);

/** Parse a heartbeat line of @p campaign; false for anything else
 *  (result lines, other campaigns, torn lines). */
bool parseHeartbeatLine(const std::string &line,
                        const std::string &campaign,
                        std::size_t *cellIndex);

/** A worker's (or supervisor's aggregated) persistent-store traffic. */
struct StoreTraffic
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
};

/** The store-traffic summary line a worker appends (and flushes) to
 *  its journal when it finishes (or is interrupted mid-) slice, so the
 *  supervisor can attribute store hits per shard. */
std::string storeSummaryLine(const std::string &campaign,
                             const StoreTraffic &traffic);

/** Parse a store-summary line of @p campaign; false for anything else
 *  (heartbeats, result lines, other campaigns, torn lines). */
bool parseStoreSummaryLine(const std::string &line,
                           const std::string &campaign,
                           StoreTraffic *out);

/**
 * Respawn delay after a worker death: exponential in the respawns
 * already used (base * 2^respawnsUsed), scaled by a deterministic
 * jitter factor in [0.75, 1.25) derived from (shardId, respawnsUsed).
 * The jitter desynchronizes shards that die simultaneously (a shared
 * poison input, an OOM sweep) so their respawns — and likely next
 * crashes — don't land in lockstep; determinism keeps supervisor runs
 * reproducible.
 */
double respawnBackoffSeconds(double baseSeconds, int respawnsUsed,
                             std::uint64_t shardId);

/**
 * Map a waitpid(2) status to the error taxonomy:
 *
 *   exited 0          → ok: *errorClass cleared, returns true
 *   exited nonzero    → "crash" (worker exited without finishing)
 *   killed by signal  → "crash", message names the signal (SIGSEGV,
 *                        SIGABRT, SIGKILL — the OOM killer's spoor)
 *
 * Returns false when the status describes a failure.
 */
bool describeWaitStatus(int waitStatus, std::string *errorClass,
                        std::string *message);

/**
 * Merge shard journals into one spec-ordered campaign result. Entries
 * are matched by cell identity, newest-wins within a journal and
 * later-journal-wins across @p journalPaths; entries whose manifest
 * hash no longer matches the current machine definition are stale and
 * ignored. Cells with no usable entry are listed in *missing and left
 * as default (failed, empty error) results carrying their identity.
 * Missing journal files are skipped (a worker that never spawned
 * writes nothing).
 */
void mergeShardJournals(const CampaignSpec &spec,
                        const std::vector<std::string> &journalPaths,
                        CampaignResult *out,
                        std::vector<std::size_t> *missing);

/** What `simalpha --shard` executes. */
struct ShardWorkerOptions
{
    std::string campaign;               ///< campaign name (re-derived)
    std::vector<std::size_t> cells;     ///< campaign cell indices
    std::string journalPath;            ///< this shard's journal
    std::uint64_t maxInsts = 0;         ///< cap forwarded from the CLI
    checkpoint::SampleSpec sample;      ///< sampling spec, forwarded
    int maxRetries = 0;                 ///< per-cell retry budget
    /** Persistent result store shared with the supervisor and every
     *  sibling shard (empty = none): cells whose identity is already
     *  stored are served instead of recomputed, and a store-summary
     *  line reports this worker's hit counts. */
    std::string storePath;
    /** Fault plan in campaign cell indices (worker filters + remaps). */
    std::vector<FaultInjection> faults;
    /** fsync the shard journal after every result line (forwarded by
     *  the supervisor's --journal-sync). */
    bool journalSync = false;
    /** Set by a signal handler: stop before the next cell, exit 3. */
    const volatile std::sig_atomic_t *interrupted = nullptr;
};

/**
 * Worker entry point: run the slice serially, heartbeat + journal each
 * cell. Returns a process exit code (0 done, 2 bad campaign/options,
 * 3 interrupted). Crash faults never return at all — that is the
 * point.
 */
int runShardWorker(const ShardWorkerOptions &options);

} // namespace runner
} // namespace simalpha

#endif // SIMALPHA_RUNNER_SHARD_HH

/**
 * @file
 * Perf-trajectory harness: measure simulated-instructions-per-second
 * on a fixed capped Table-3 campaign and track the numbers across PRs
 * in BENCH_perf.json at the repo root.
 *
 * Three paths are timed separately so the trajectory distinguishes
 * detailed-core work from functional-emulation work:
 *   - detailed:  the sim-alpha cells of Table 3 (cycle-accurate
 *                AlphaCore, the hot loop this file exists to watch)
 *   - abstract:  the sim-outorder cells (SimpleScalar-style RuuCore)
 *   - emulator:  the raw functional Emulator over the same workloads
 *
 * The JSON file keeps two entries: `baseline` (recorded once, before
 * an optimization lands, and preserved by later runs) and `current`
 * (replaced on every `simalpha bench` run), plus the derived
 * detailed-path speedup. `simalpha bench --check FILE` validates the
 * schema without measuring, so CI can fail on drift cheaply.
 */

#ifndef SIMALPHA_RUNNER_PERFBENCH_HH
#define SIMALPHA_RUNNER_PERFBENCH_HH

#include <cstdint>
#include <string>

namespace simalpha {
namespace runner {

/** Wall-clock measurement of one simulation path. */
struct PerfPath
{
    std::uint64_t insts = 0; ///< total simulated instructions
    double seconds = 0.0;    ///< wall-clock seconds (steady clock)
    double ips = 0.0;        ///< insts / seconds
};

/** One measured snapshot of all measured paths. */
struct PerfEntry
{
    std::string buildType; ///< CMAKE_BUILD_TYPE the binary was built as
    std::uint64_t maxInsts = 0; ///< per-cell committed-instruction cap
    PerfPath detailed;
    PerfPath abstracted;
    PerfPath emulator;
    /**
     * The functional emulator driven through its predecoded batch
     * loop (Emulator::run()) instead of one step() call per
     * instruction — the raw-dispatch ceiling. The delta against
     * `emulator` is the per-call overhead step() pays to keep its
     * precise single-instruction contract. Absent in trajectory files
     * written before predecode existed; parse treats it as optional.
     */
    PerfPath emuPre;
    /**
     * Checkpoint-sampled sim-alpha over the same workloads at 10x the
     * detailed cap: `insts` counts the instructions the sampled run
     * *represents* (the functional fast-forward length), so `ips` is
     * the effective simulation rate including fast-forward and
     * checkpoint generation. Absent in trajectory files written
     * before sampling existed; parse treats it as optional.
     */
    PerfPath sampled;
    /**
     * The detailed path measured a second time with the soft-error
     * injection hooks explicitly disarmed — the injection-overhead
     * row. The hooks cost one predicted-not-taken branch per cycle
     * when no plan is armed, so this should match `detailed` within
     * run-to-run noise; a drift here means the disarmed hook grew a
     * real cost. Absent in trajectory files written before injection
     * existed; parse treats it as optional.
     */
    PerfPath injectIdle;
    /**
     * The campaign service measured end-to-end: a private daemon on a
     * temp store, the same capped Table-3 campaign submitted through
     * the socket, wall clock from submit to done line. `serveCold`
     * computes every cell; `serveWarm` reruns against the populated
     * store (job journal cleared), so the delta is the store's win
     * through the whole service path. Absent before the service
     * existed and in builds that don't wire the hook; optional.
     */
    PerfPath serveCold;
    PerfPath serveWarm;
    /**
     * The two-worker loopback fleet measured end-to-end: two worker
     * daemons plus a dispatcher front-end on private temp stores, the
     * same capped Table-3 campaign submitted to the front-end, wall
     * clock from submit to done line. `fleetCold` computes every cell
     * on a worker; `fleetWarm` reruns against the workers' populated
     * stores (job journals cleared), so the delta is the store's win
     * through two socket hops. Absent before the fleet tier existed
     * and in builds that don't wire the hook; optional.
     */
    PerfPath fleetCold;
    PerfPath fleetWarm;
    /**
     * A warm rerun of the same campaign against a result store whose
     * shards carry a freshly built binary index: the cold fill and
     * the index build happen outside the timed region, so this row is
     * the pure replay rate of index-served lookups (pread by offset +
     * FNV check, zero per-entry JSON parsing). Absent in trajectory
     * files written before the store index existed; optional.
     */
    PerfPath warmStore;
    bool valid = false;
};

/** The whole trajectory file: pinned baseline + latest measurement. */
struct PerfReport
{
    int schemaVersion = 1;
    std::string campaign = "table3";
    PerfEntry baseline;
    PerfEntry current;
    /** current.detailed.ips / baseline.detailed.ips */
    double speedupDetailed = 1.0;
};

/** Default committed-instruction cap for a full `simalpha bench`. */
constexpr std::uint64_t kPerfBenchDefaultMaxInsts = 100000;
/** Cap used by `simalpha bench --quick` (CI smoke). */
constexpr std::uint64_t kPerfBenchQuickMaxInsts = 5000;

/**
 * Run the capped Table-3 campaign serially (jobs=1, cache off) and
 * time the three paths. Prints nothing; throws nothing — a failed
 * cell makes the entry invalid with *error filled.
 */
bool measurePerf(std::uint64_t max_insts, PerfEntry *out,
                 std::string *error);

/**
 * The serve-row measurement is provided by the sim_serve library (the
 * runner cannot link it — serve sits above the runner), injected by
 * the driver before runBenchCommand. When unset, the serve rows stay
 * zero and the trajectory file simply omits measured values for them.
 */
using ServeBenchFn = bool (*)(std::uint64_t maxInsts, PerfPath *cold,
                              PerfPath *warm, std::string *error);
void setServeBenchHook(ServeBenchFn fn);

/** Same injection pattern for the fleet rows (sim_fleet sits above
 *  serve): when unset, the fleet rows stay zero and the trajectory
 *  file omits measured values for them. */
using FleetBenchFn = bool (*)(std::uint64_t maxInsts, PerfPath *cold,
                              PerfPath *warm, std::string *error);
void setFleetBenchHook(FleetBenchFn fn);

/** Render a report as the canonical BENCH_perf.json text. */
std::string perfReportToJson(const PerfReport &report);

/**
 * Parse a BENCH_perf.json text. Returns false with *error filled on
 * malformed JSON or schema drift (missing/ill-typed fields).
 */
bool parsePerfReport(const std::string &text, PerfReport *out,
                     std::string *error);

/**
 * Validate that the file at @p path parses as a PerfReport.
 * Returns false with *error filled on I/O failure or schema drift.
 */
bool checkPerfFile(const std::string &path, std::string *error);

/**
 * The `simalpha bench` verb. argv[0] is "bench". Flags:
 *   --quick         measure at the small CI cap
 *   --max-insts N   explicit per-cell cap
 *   --out FILE      trajectory file (default BENCH_perf.json)
 *   --check FILE    validate FILE's schema only; no measurement
 *   --set-baseline  pin this measurement as the new baseline too
 *   --smoke         regression gate: re-measure only the detailed and
 *                   emulator rows at the pinned baseline's cap and
 *                   fail (exit 1) if either drops below 80% of the
 *                   baseline ips. Never writes the trajectory file;
 *                   when the running build type differs from the
 *                   baseline's the thresholds are reported but not
 *                   enforced (cross-build ips are incomparable).
 * Exit codes: 0 ok, 1 measurement/validation failure, 2 usage.
 */
int runBenchCommand(int argc, char **argv);

} // namespace runner
} // namespace simalpha

#endif // SIMALPHA_RUNNER_PERFBENCH_HH

/**
 * @file
 * The paper's 21-microbenchmark validation suite (Section 3), generated
 * as MiniAlpha programs:
 *
 *  Control:  C-Ca, C-Cb, C-R, C-S1, C-S2, C-S3, C-O
 *  Execute:  E-I, E-F, E-D1..E-D6, E-DM1
 *  Memory:   M-I, M-D, M-L2, M-M, M-IP
 *
 * All benchmarks except the memory-system ones are I-cache, D-cache and
 * TLB resident. C-Ca and C-Cb differ only in unop padding, reproducing
 * the two compilers' code layouts that train the line predictor through
 * different branches.
 */

#ifndef SIMALPHA_WORKLOADS_MICROBENCH_HH
#define SIMALPHA_WORKLOADS_MICROBENCH_HH

#include <string>
#include <vector>

#include "isa/isa.hh"

namespace simalpha {
namespace workloads {

/** Scale factor: iteration counts are multiplied by this (default 1). */
struct MicrobenchOptions
{
    int scale = 1;
};

Program controlConditionalA(const MicrobenchOptions &opt = {});  // C-Ca
Program controlConditionalB(const MicrobenchOptions &opt = {});  // C-Cb
Program controlRecursive(const MicrobenchOptions &opt = {});     // C-R
Program controlSwitch(int n, const MicrobenchOptions &opt = {}); // C-Sn
Program controlComplex(const MicrobenchOptions &opt = {});       // C-O

Program executeIndependent(const MicrobenchOptions &opt = {});   // E-I
Program executeFloat(const MicrobenchOptions &opt = {});         // E-F
Program executeDependent(int n,
                         const MicrobenchOptions &opt = {});     // E-Dn
Program executeDependentMul(const MicrobenchOptions &opt = {});  // E-DM1

Program memoryIndependent(const MicrobenchOptions &opt = {});    // M-I
Program memoryDependent(const MicrobenchOptions &opt = {});      // M-D
Program memoryL2(const MicrobenchOptions &opt = {});             // M-L2
Program memoryMain(const MicrobenchOptions &opt = {});           // M-M
Program memoryInstPrefetch(const MicrobenchOptions &opt = {});   // M-IP

/** The full suite in Table 2 order. */
std::vector<Program> microbenchSuite(const MicrobenchOptions &opt = {});

/** Table 2 row names, in order. */
std::vector<std::string> microbenchNames();

} // namespace workloads
} // namespace simalpha

#endif // SIMALPHA_WORKLOADS_MICROBENCH_HH

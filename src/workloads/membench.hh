/**
 * @file
 * The memory-calibration workloads of Section 4.2: the stream kernels
 * (copy, scale, add, triad) and an lmbench-style loaded-latency walker.
 * Together with M-M these calibrate the DRAM parameters (RAS, CAS,
 * precharge, controller latency, page policy).
 */

#ifndef SIMALPHA_WORKLOADS_MEMBENCH_HH
#define SIMALPHA_WORKLOADS_MEMBENCH_HH

#include <vector>

#include "isa/isa.hh"

namespace simalpha {
namespace workloads {

enum class StreamKernel { Copy, Scale, Add, Triad };

/**
 * One stream kernel over arrays of `elems` 8-byte elements.
 * copy:  c[i] = a[i]
 * scale: b[i] = s * c[i]
 * add:   c[i] = a[i] + b[i]
 * triad: a[i] = b[i] + s * c[i]
 */
Program streamBenchmark(StreamKernel kernel, int elems = 262144,
                        int repeats = 2);

/** All four stream kernels. */
std::vector<Program> streamSuite(int elems = 262144, int repeats = 2);

/**
 * lmbench-style latency walk: a shuffled pointer chase over `kb`
 * kilobytes with the given stride, measuring mean load-to-load latency
 * at one level of the hierarchy.
 */
Program lmbenchLatency(int kb, int stride = 64,
                       std::int64_t accesses = 60000);

} // namespace workloads
} // namespace simalpha

#endif // SIMALPHA_WORKLOADS_MEMBENCH_HH

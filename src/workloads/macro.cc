#include "macro.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/assembler.hh"

namespace simalpha {
namespace workloads {

namespace {

constexpr int kOne = 10;
constexpr int kCount = 9;
constexpr int kLink = 26;

/** Stream-pointer registers (up to four independent streams). */
constexpr int kStreamRegs[4] = {20, 24, 25, 27};

void
loadImm64(ProgramBuilder &b, RegIndex reg, std::int64_t value)
{
    if (value >= -32768 && value <= 32767) {
        b.lda(reg, value);
        return;
    }
    std::int64_t hi = value >> 16;
    std::int64_t lo = value & 0xFFFF;
    b.lda(reg, hi);
    b.lda(R(28), 16);
    b.sll(reg, R(28), reg);
    if (lo)
        b.lda(reg, lo, reg);
}

} // namespace

Program
makeMacro(const MacroProfile &p)
{
    ProgramBuilder b(p.name);
    Random rng(0xC0FFEE ^ std::hash<std::string>{}(p.name));

    const Addr data = Program::kDataBase;
    const std::int64_t footprint = std::int64_t(p.footprintKB) * 1024;
    const int nodes = int(footprint / p.stride);
    sim_assert(nodes > 1);
    const int streams = std::max(1, std::min(4, p.streams));

    // Data image: a shuffled circular chase through the footprint (used
    // when pointerChase) plus payload words on every node.
    {
        std::vector<int> order{};
        order.resize(std::size_t(nodes));
        for (int i = 0; i < nodes; i++)
            order[std::size_t(i)] = i;
        for (int i = nodes - 1; i > 0; i--) {
            int j = int(rng.below(std::uint64_t(i + 1)));
            std::swap(order[std::size_t(i)], order[std::size_t(j)]);
        }
        for (int i = 0; i < nodes; i++) {
            Addr node = data + Addr(order[std::size_t(i)]) *
                                   Addr(p.stride);
            Addr next = data + Addr(order[std::size_t((i + 1) % nodes)]) *
                                   Addr(p.stride);
            b.dataWord(node, next);
            if (p.stride >= 16)
                b.dataWord(node + 8, RegVal(i) * 3 + 1);
        }
    }

    // Register plan: stream pointers per kStreamRegs, r19 data base,
    // r18 stride, r17 footprint limit, r4 iteration counter, r6 sink,
    // r7/r8 scratch, r1..r5 ALU chains (r4/r5 reserved), f1..f6 fp.
    b.lda(R(kOne), 1);
    loadImm64(b, R(kCount), p.iterations);
    loadImm64(b, R(19), std::int64_t(data));
    loadImm64(b, R(18), p.stride);
    loadImm64(b, R(17), std::int64_t(data) + footprint);
    for (int s = 0; s < streams; s++) {
        // Spread the streams across the footprint.
        loadImm64(b, R(kStreamRegs[s]),
                  std::int64_t(data) + (footprint / streams) * s);
    }
    b.lda(R(4), 0);     // iteration counter (drives pattern branches)
    b.lda(R(6), 0);
    if (p.fp)
        b.ldt(F(7), 8, R(19));

    const Addr table = Program::kDataBase + 0x40000000ULL;
    constexpr int kDispatchTargets = 8;

    b.alignOctaword();
    b.label("outer");

    if (p.indirectDispatch) {
        // A jump whose target rotates: line-predictor hostile.
        b.lda(R(7), 7);
        b.and_(R(4), R(7), R(7));
        b.lda(R(8), 3);
        b.sll(R(7), R(8), R(7));
        loadImm64(b, R(8), std::int64_t(table));
        b.addq(R(7), R(8), R(7));
        b.ldq(R(7), 0, R(7));
        b.jmp(R(7));
        for (int t = 0; t < kDispatchTargets; t++) {
            std::string lbl = "disp" + std::to_string(t);
            b.label(lbl);
            b.dataWordLabel(table + Addr(8 * t), lbl);
            b.addq(R(6), R(kOne), R(6));
            b.br("body");
        }
    }

    b.label("body");

    for (int blk = 0; blk < p.blocks; blk++) {
        std::string next_lbl = "blk" + std::to_string(blk + 1);
        int sp = kStreamRegs[blk % streams];

        // Loads: chase or stream through this block's stream pointer.
        for (int l = 0; l < p.loadsPerBlock; l++) {
            if (p.pointerChase && l == 0 && blk % streams == 0) {
                b.ldq(R(sp), 0, R(sp));         // serial chase
                if (p.stride >= 16)
                    b.ldq(R(21), 8, R(sp));
            } else {
                b.ldq(R(21 + (l % 2)), 8 * (l + 1), R(sp));
            }
        }
        if (!p.pointerChase || blk % streams != 0) {
            // Advance and wrap the stream pointer.
            b.addq(R(sp), R(18), R(sp));
            b.cmplt(R(sp), R(17), R(7));
            b.bne(R(7), next_lbl + "w");
            loadImm64(b, R(sp),
                      std::int64_t(data) +
                          (footprint / streams) * (blk % streams));
            b.label(next_lbl + "w");
        }

        // Aliased store/load pairs: write a slot, read it back through
        // the same address a few instructions later.
        for (int s = 0; s < p.aliasedStoresPerBlock; s++) {
            b.stl(R(6), 16, R(sp));
            b.addq(R(6), R(kOne), R(6));
            b.ldl(R(22), 16, R(sp));
            b.addq(R(6), R(22), R(6));
        }

        // ALU work in `chains` interleaved dependence chains.
        for (int a = 0; a < p.aluPerBlock; a++) {
            int chain = a % std::max(1, p.chains);
            if (p.fp && (a % 2) == 0)
                b.addt(F(1 + chain), F(7), F(1 + chain));
            else
                b.addq(R(1 + (chain % 3)), R(21), R(1 + (chain % 3)));
        }

        // Far call creating I-cache way conflicts (eon).
        if (p.wayConflictCalls && blk == 0)
            b.bsr(R(kLink), "farfunc");

        // Block-terminating branch. Three flavours:
        //  - pattern: direction follows an iteration-counter bit — a
        //    TNTN-style pattern the tournament predictor learns but a
        //    line predictor alone cannot follow (what the slot adder
        //    and speculative update are worth);
        //  - hard: direction from loaded data — unpredictable;
        //  - else a predictable always-taken branch.
        int roll = int(rng.below(16));
        if (blk < p.blocks - 1) {
            // The taken path skips a couple of fetch lines of work, so
            // the branch direction genuinely changes the next fetch
            // line (as compiled if/else arms do).
            auto arm = [&](int insts) {
                for (int i = 0; i < insts; i++)
                    b.addq(R(2 + (i & 1)), R(kOne), R(2 + (i & 1)));
            };
            if (roll < p.patternBranchSixteenths) {
                b.lda(R(8), 1 << (blk % 2));
                b.and_(R(4), R(8), R(7));
                b.beq(R(7), next_lbl);
                arm(9);
                b.label(next_lbl);
            } else if (roll < p.patternBranchSixteenths +
                                  p.hardBranchSixteenths) {
                b.lda(R(8), 1);
                b.and_(R(21), R(8), R(7));
                b.beq(R(7), next_lbl);
                arm(7);
                b.label(next_lbl);
            } else {
                b.br(next_lbl);
                b.unop(5);
                b.label(next_lbl);
            }
        }
    }

    // Loop control.
    b.addq(R(4), R(kOne), R(4));
    b.subq(R(kCount), R(kOne), R(kCount));
    b.bne(R(kCount), "outer");
    b.halt();

    if (p.wayConflictCalls) {
        // Park the function 32KB past the loop so its lines share
        // I-cache sets with the caller across the two ways; alternating
        // fetch between them defeats the way predictor.
        while (b.here() * 4 < 32 * 1024 + 512)
            b.unop(4);
        b.label("farfunc");
        for (int i = 0; i < 12; i++)
            b.addq(R(3), R(kOne), R(3));
        b.ret(R(kLink));
    }

    return b.finish();
}

std::vector<MacroProfile>
spec2000Profiles()
{
    std::vector<MacroProfile> ps;

    {   // gzip: integer compression; cache-warm, decent ILP, patterned
        // match/literal branches.
        MacroProfile p;
        p.name = "gzip";
        p.footprintKB = 192;
        p.stride = 24;
        p.blocks = 8;
        p.aluPerBlock = 10;
        p.chains = 4;
        p.loadsPerBlock = 1;
        p.patternBranchSixteenths = 6;
        p.hardBranchSixteenths = 3;
        p.iterations = 2600;
        ps.push_back(p);
    }
    {   // vpr: place-and-route; cache resident, branchy.
        MacroProfile p;
        p.name = "vpr";
        p.footprintKB = 48;
        p.stride = 24;
        p.blocks = 10;
        p.aluPerBlock = 6;
        p.chains = 3;
        p.loadsPerBlock = 2;
        p.patternBranchSixteenths = 6;
        p.hardBranchSixteenths = 5;
        p.iterations = 3000;
        ps.push_back(p);
    }
    {   // gcc: large instruction footprint, branchy, indirect dispatch.
        MacroProfile p;
        p.name = "gcc";
        p.footprintKB = 160;
        p.stride = 40;
        p.blocks = 24;
        p.aluPerBlock = 5;
        p.chains = 2;
        p.loadsPerBlock = 2;
        p.patternBranchSixteenths = 5;
        p.hardBranchSixteenths = 4;
        p.indirectDispatch = true;
        p.iterations = 1500;
        ps.push_back(p);
    }
    {   // parser: linked-list chasing with patterned dictionary walks.
        MacroProfile p;
        p.name = "parser";
        p.footprintKB = 48;
        p.stride = 16;
        p.pointerChase = true;
        p.streams = 2;
        p.blocks = 8;
        p.aluPerBlock = 6;
        p.chains = 3;
        p.loadsPerBlock = 1;
        p.patternBranchSixteenths = 5;
        p.hardBranchSixteenths = 4;
        p.iterations = 2600;
        ps.push_back(p);
    }
    {   // eon: C++ ray tracer; cache resident, way-predictor hostile.
        MacroProfile p;
        p.name = "eon";
        p.footprintKB = 40;
        p.stride = 32;
        p.blocks = 8;
        p.aluPerBlock = 8;
        p.chains = 4;
        p.loadsPerBlock = 2;
        p.patternBranchSixteenths = 4;
        p.hardBranchSixteenths = 1;
        p.wayConflictCalls = true;
        p.iterations = 2600;
        ps.push_back(p);
    }
    {   // twolf: placement; cache resident, branchy.
        MacroProfile p;
        p.name = "twolf";
        p.footprintKB = 56;
        p.stride = 24;
        p.blocks = 12;
        p.aluPerBlock = 6;
        p.chains = 3;
        p.loadsPerBlock = 2;
        p.patternBranchSixteenths = 5;
        p.hardBranchSixteenths = 5;
        p.iterations = 2400;
        ps.push_back(p);
    }
    {   // mesa: 3D rendering; fp streaming with a high L2 miss rate,
        // spatially dense (several loads per block) so the hardware's
        // row locality and prefetch-friendly buses pay off.
        MacroProfile p;
        p.name = "mesa";
        p.footprintKB = 4096;
        p.stride = 16;
        p.streams = 2;
        p.blocks = 6;
        p.aluPerBlock = 12;
        p.chains = 6;
        p.loadsPerBlock = 2;
        p.patternBranchSixteenths = 2;
        p.hardBranchSixteenths = 0;
        p.fp = true;
        p.iterations = 2400;
        ps.push_back(p);
    }
    {   // art: neural-net fp; four concurrent miss streams plus heavy
        // store/load aliasing — the replay-trap storm of the hardware.
        MacroProfile p;
        p.name = "art";
        p.footprintKB = 3072;
        p.stride = 64;
        p.streams = 4;
        p.blocks = 8;
        p.aluPerBlock = 6;
        p.chains = 3;
        p.loadsPerBlock = 2;
        p.patternBranchSixteenths = 1;
        p.hardBranchSixteenths = 1;
        p.fp = true;
        p.aliasedStoresPerBlock = 1;
        p.iterations = 1800;
        ps.push_back(p);
    }
    {   // equake: sparse fp; pointer chase over a mid-size working set.
        MacroProfile p;
        p.name = "equake";
        p.footprintKB = 512;
        p.stride = 48;
        p.pointerChase = true;
        p.streams = 2;
        p.blocks = 6;
        p.aluPerBlock = 8;
        p.chains = 4;
        p.loadsPerBlock = 2;
        p.patternBranchSixteenths = 3;
        p.hardBranchSixteenths = 1;
        p.fp = true;
        p.iterations = 2000;
        ps.push_back(p);
    }
    {   // lucas: fp number theory; dense regular strides, high ILP.
        MacroProfile p;
        p.name = "lucas";
        p.footprintKB = 1536;
        p.stride = 16;
        p.blocks = 4;
        p.aluPerBlock = 14;
        p.chains = 6;
        p.loadsPerBlock = 2;
        p.patternBranchSixteenths = 0;
        p.hardBranchSixteenths = 0;
        p.fp = true;
        p.iterations = 2800;
        ps.push_back(p);
    }
    return ps;
}

std::vector<Program>
spec2000Suite()
{
    std::vector<Program> progs;
    for (const MacroProfile &p : spec2000Profiles())
        progs.push_back(makeMacro(p));
    return progs;
}

std::vector<Program>
spec95Suite()
{
    // The Figure 2 study simulated SPEC95 on machines "balanced to
    // avoid obvious bottlenecks": the kernels here are cache-resident
    // and ILP-rich so the register-file configuration — not the memory
    // system — sets the performance.
    std::vector<MacroProfile> ps;
    auto add = [&](const char *name, int kb, bool fp, int chains,
                   int alu, int pattern, int hard) {
        MacroProfile p;
        p.name = name;
        p.footprintKB = kb;
        p.fp = fp;
        p.chains = chains;
        p.aluPerBlock = alu;
        p.patternBranchSixteenths = pattern;
        p.hardBranchSixteenths = hard;
        p.blocks = 8;
        p.loadsPerBlock = 1;
        p.iterations = 2000;
        ps.push_back(p);
    };
    add("go", 16, false, 4, 10, 4, 5);
    add("compress", 24, false, 5, 10, 4, 2);
    add("gcc95", 16, false, 4, 8, 5, 4);
    add("ijpeg", 16, false, 8, 16, 2, 0);
    add("perl", 16, false, 4, 9, 5, 3);
    add("swim", 24, true, 8, 16, 0, 0);
    add("mgrid", 24, true, 8, 16, 0, 0);
    add("applu", 24, true, 6, 14, 1, 0);
    add("turb3d", 16, true, 6, 12, 1, 0);
    add("fpppp", 16, true, 6, 16, 1, 0);
    add("wave5", 24, true, 6, 14, 1, 0);

    std::vector<Program> progs;
    for (const MacroProfile &p : ps)
        progs.push_back(makeMacro(p));
    return progs;
}

} // namespace workloads
} // namespace simalpha

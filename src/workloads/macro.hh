/**
 * @file
 * Synthetic macrobenchmarks standing in for the ten SPEC2000 programs of
 * Table 3 (and the SPEC95-like suite of Figure 2).
 *
 * Each generator is parameterized by the published behavioural profile
 * of its benchmark — data footprint, branch predictability, ILP shape,
 * floating-point share, pointer-chasing vs streaming access, store/load
 * aliasing intensity, and instruction footprint — so the synthetic
 * program triggers the same microarchitectural mechanisms the paper
 * discusses (mesa's 43% L2 miss rate, art's replay-trap storm, eon's
 * way-misprediction pathology, the low error of cache-resident codes).
 */

#ifndef SIMALPHA_WORKLOADS_MACRO_HH
#define SIMALPHA_WORKLOADS_MACRO_HH

#include <string>
#include <vector>

#include "isa/isa.hh"

namespace simalpha {
namespace workloads {

/** Behavioural profile of one synthetic macrobenchmark. */
struct MacroProfile
{
    std::string name;
    /** Outer loop iterations (sets run length). */
    std::int64_t iterations = 2000;
    /** Data footprint in KB; drives L1/L2/DRAM behaviour. */
    int footprintKB = 64;
    /** Loads walk the footprint with this stride (bytes). */
    int stride = 64;
    /** True: dependent pointer chase; false: independent streaming. */
    bool pointerChase = false;
    /** Independent stream pointers (memory-level parallelism), 1..4. */
    int streams = 1;
    /** Basic blocks per loop body. */
    int blocks = 8;
    /** ALU ops per block. */
    int aluPerBlock = 6;
    /** Dependence chains among the ALU ops (1 = serial). */
    int chains = 3;
    /** Loads per block. */
    int loadsPerBlock = 2;
    /** Fraction of blocks ending in a data-dependent (hard) branch,
     *  in 1/16ths (0 = fully predictable). */
    int hardBranchSixteenths = 4;
    /** Fraction of blocks ending in an iteration-patterned branch: the
     *  tournament predictor learns it, a line predictor alone cannot. */
    int patternBranchSixteenths = 0;
    /** Blocks whose work is floating point. */
    bool fp = false;
    /** Stores per block that a nearby load re-reads (replay-trap and
     *  store-wait pressure). */
    int aliasedStoresPerBlock = 0;
    /** Call a far-away function each block (I-cache way conflicts). */
    bool wayConflictCalls = false;
    /** Indirect dispatch each iteration (line-predictor pressure). */
    bool indirectDispatch = false;
};

/** Build the synthetic program for one profile. */
Program makeMacro(const MacroProfile &profile);

/** The ten SPEC2000 profiles of Table 3, in table order. */
std::vector<MacroProfile> spec2000Profiles();

/** The SPEC2000 programs, generated. */
std::vector<Program> spec2000Suite();

/** The SPEC95-like suite used by the Figure 2 register-file study. */
std::vector<Program> spec95Suite();

} // namespace workloads
} // namespace simalpha

#endif // SIMALPHA_WORKLOADS_MACRO_HH

#include "microbench.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/assembler.hh"

namespace simalpha {
namespace workloads {

namespace {

// Register conventions used by all microbenchmarks.
constexpr int kOne = 10;        ///< holds constant 1
constexpr int kCount = 9;       ///< loop counter
constexpr int kLink = 26;       ///< subroutine link register
constexpr int kSp = 29;         ///< stack pointer

/** Load a 64-bit immediate via lda (possibly in two steps). */
void
loadImm(ProgramBuilder &b, RegIndex reg, std::int64_t value)
{
    // lda handles the common small/medium cases; compose larger values
    // from a shifted upper part.
    if (value >= -32768 && value <= 32767) {
        b.lda(reg, value);
        return;
    }
    std::int64_t hi = value >> 16;
    std::int64_t lo = value & 0xFFFF;
    b.lda(reg, hi);
    b.lda(R(11), 16);
    b.sll(reg, R(11), reg);
    if (lo)
        b.lda(reg, lo, reg);
}

/**
 * The common C-C skeleton: an if-then-else whose condition alternates
 * every iteration. `pad_a` selects the C-Ca code layout; C-Cb pads the
 * arms differently so the line predictor trains on different branches.
 */
Program
controlConditional(bool pad_a, const MicrobenchOptions &opt)
{
    ProgramBuilder b(pad_a ? "C-Ca" : "C-Cb");
    b.lda(R(kOne), 1);
    loadImm(b, R(kCount), 40000LL * opt.scale);
    b.lda(R(5), 0);                 // alternating flag
    b.alignOctaword();
    b.label("loop");
    b.bne(R(5), "else");
    // then arm
    b.addq(R(1), R(kOne), R(1));
    b.addq(R(2), R(kOne), R(2));
    b.addq(R(3), R(kOne), R(3));
    if (pad_a)
        b.unop(1);
    b.br("join");
    if (!pad_a)
        b.unop(3);                  // pushes "else" into a new octaword
    b.label("else");
    b.addq(R(4), R(kOne), R(4));
    b.addq(R(6), R(kOne), R(6));
    b.addq(R(7), R(kOne), R(7));
    if (pad_a)
        b.unop(2);
    b.label("join");
    b.xor_(R(5), R(kOne), R(5));    // flip the flag
    b.subq(R(kCount), R(kOne), R(kCount));
    b.bne(R(kCount), "loop");
    b.halt();
    return b.finish();
}

} // namespace

Program
controlConditionalA(const MicrobenchOptions &opt)
{
    return controlConditional(true, opt);
}

Program
controlConditionalB(const MicrobenchOptions &opt)
{
    return controlConditional(false, opt);
}

Program
controlRecursive(const MicrobenchOptions &opt)
{
    ProgramBuilder b("C-R");
    b.lda(R(kOne), 1);
    loadImm(b, R(kSp), std::int64_t(Program::kStackBase));
    loadImm(b, R(kCount), 60LL * opt.scale);    // outer iterations
    b.label("outer");
    loadImm(b, R(16), 1000);                    // recursion depth
    b.bsr(R(kLink), "func");
    b.subq(R(kCount), R(kOne), R(kCount));
    b.bne(R(kCount), "outer");
    b.halt();

    // A 1,000-deep recursive function: push the link register, recurse,
    // pop, return. The push/pop pair near the base case puts a store
    // and a load to the same stack slot in flight together, the store
    // replay-trap trigger the store-wait table exists to absorb.
    b.label("func");
    b.lda(R(kSp), -16, R(kSp));
    b.stq(R(kLink), 0, R(kSp));
    b.subq(R(16), R(kOne), R(16));
    b.beq(R(16), "unwind");
    b.bsr(R(kLink), "func");
    b.label("unwind");
    b.ldq(R(kLink), 0, R(kSp));
    b.lda(R(kSp), 16, R(kSp));
    b.ret(R(kLink));
    return b.finish();
}

Program
controlSwitch(int n, const MicrobenchOptions &opt)
{
    sim_assert(n >= 1);
    ProgramBuilder b("C-S" + std::to_string(n));
    constexpr int kCases = 10;
    const Addr table = Program::kDataBase;

    b.lda(R(kOne), 1);
    loadImm(b, R(kCount), 40000LL * opt.scale);
    loadImm(b, R(20), std::int64_t(table));     // jump table base
    b.lda(R(11), 3);                            // shift amount
    b.lda(R(12), kCases);
    b.lda(R(13), n);                            // repeats per case
    b.lda(R(5), 0);                             // case index
    b.lda(R(6), 0);                             // repeat counter

    b.label("loop");
    b.sll(R(5), R(11), R(21));
    b.addq(R(21), R(20), R(21));
    b.ldq(R(22), 0, R(21));
    b.jmp(R(22));

    for (int c = 0; c < kCases; c++) {
        std::string lbl = "case" + std::to_string(c);
        b.label(lbl);
        b.dataWordLabel(table + Addr(8 * c), lbl);
        b.addq(R(1), R(kOne), R(1));
        b.br("dispatch");
    }

    // Advance the repeat counter; every n-th execution moves to the
    // next case statement (wrapping at 10).
    b.label("dispatch");
    b.addq(R(6), R(kOne), R(6));
    b.cmpeq(R(6), R(13), R(7));
    b.beq(R(7), "skip");
    b.lda(R(6), 0);
    b.addq(R(5), R(kOne), R(5));
    b.cmplt(R(5), R(12), R(7));
    b.bne(R(7), "skip");
    b.lda(R(5), 0);
    b.label("skip");
    b.subq(R(kCount), R(kOne), R(kCount));
    b.bne(R(kCount), "loop");
    b.halt();
    return b.finish();
}

Program
controlComplex(const MicrobenchOptions &opt)
{
    // C-O: an if-then-else executing a C-S2-style switch in the if
    // clause and a C-S3-style switch in the else clause.
    ProgramBuilder b("C-O");
    constexpr int kCases = 10;
    const Addr table_a = Program::kDataBase;
    const Addr table_b = Program::kDataBase + 0x1000;

    b.lda(R(kOne), 1);
    loadImm(b, R(kCount), 30000LL * opt.scale);
    loadImm(b, R(20), std::int64_t(table_a));
    loadImm(b, R(19), std::int64_t(table_b));
    b.lda(R(11), 3);
    b.lda(R(12), kCases);
    b.lda(R(5), 0);     // case index A
    b.lda(R(6), 0);     // repeat counter A (period 2)
    b.lda(R(15), 0);    // case index B
    b.lda(R(16), 0);    // repeat counter B (period 3)
    b.lda(R(4), 0);     // alternating if/else flag
    b.lda(R(13), 2);
    b.lda(R(14), 3);

    b.label("loop");
    b.bne(R(4), "elsearm");

    // if arm: switch A, advancing every 2nd visit
    b.sll(R(5), R(11), R(21));
    b.addq(R(21), R(20), R(21));
    b.ldq(R(22), 0, R(21));
    b.jmp(R(22));
    for (int c = 0; c < kCases; c++) {
        std::string lbl = "acase" + std::to_string(c);
        b.label(lbl);
        b.dataWordLabel(table_a + Addr(8 * c), lbl);
        b.addq(R(1), R(kOne), R(1));
        b.addq(R(2), R(kOne), R(2));
        b.br("adv_a");
    }
    b.label("adv_a");
    b.addq(R(6), R(kOne), R(6));
    b.cmpeq(R(6), R(13), R(7));
    b.beq(R(7), "join");
    b.lda(R(6), 0);
    b.addq(R(5), R(kOne), R(5));
    b.cmplt(R(5), R(12), R(7));
    b.bne(R(7), "join");
    b.lda(R(5), 0);
    b.br("join");

    // else arm: switch B, advancing every 3rd visit
    b.label("elsearm");
    b.sll(R(15), R(11), R(21));
    b.addq(R(21), R(19), R(21));
    b.ldq(R(22), 0, R(21));
    b.jmp(R(22));
    for (int c = 0; c < kCases; c++) {
        std::string lbl = "bcase" + std::to_string(c);
        b.label(lbl);
        b.dataWordLabel(table_b + Addr(8 * c), lbl);
        b.addq(R(3), R(kOne), R(3));
        b.addq(R(8), R(kOne), R(8));
        b.br("adv_b");
    }
    b.label("adv_b");
    b.addq(R(16), R(kOne), R(16));
    b.cmpeq(R(16), R(14), R(7));
    b.beq(R(7), "join");
    b.lda(R(16), 0);
    b.addq(R(15), R(kOne), R(15));
    b.cmplt(R(15), R(12), R(7));
    b.bne(R(7), "join");
    b.lda(R(15), 0);

    b.label("join");
    b.xor_(R(4), R(kOne), R(4));
    b.subq(R(kCount), R(kOne), R(kCount));
    b.bne(R(kCount), "loop");
    b.halt();
    return b.finish();
}

Program
executeIndependent(const MicrobenchOptions &opt)
{
    // Adds the index variable to eight independent register-allocated
    // integers, twenty times each, per loop iteration. 160 adds + loop
    // control pad to exactly 41 octawords so a taken back-edge lands in
    // the last fetch slot and the pipe sustains 4 IPC.
    ProgramBuilder b("E-I");
    b.lda(R(kOne), 1);
    loadImm(b, R(kCount), 2500LL * opt.scale);
    b.lda(R(15), 0);    // index variable
    b.alignOctaword();
    b.label("loop");
    for (int rep = 0; rep < 20; rep++)
        for (int r = 1; r <= 8; r++)
            b.addq(R(r), R(15), R(r));
    b.addq(R(15), R(kOne), R(15));
    b.subq(R(kCount), R(kOne), R(kCount));
    b.unop(1);
    b.bne(R(kCount), "loop");
    b.halt();
    return b.finish();
}

Program
executeFloat(const MicrobenchOptions &opt)
{
    ProgramBuilder b("E-F");
    b.lda(R(kOne), 1);
    loadImm(b, R(kCount), 600LL * opt.scale);
    b.alignOctaword();
    b.label("loop");
    for (int rep = 0; rep < 20; rep++)
        for (int r = 1; r <= 8; r++)
            b.addt(F(r), F(15), F(r));
    b.subq(R(kCount), R(kOne), R(kCount));
    b.unop(2);
    b.bne(R(kCount), "loop");
    b.halt();
    return b.finish();
}

Program
executeDependent(int n, const MicrobenchOptions &opt)
{
    sim_assert(n >= 1 && n <= 8);
    // n interleaved chains: each add depends on the instruction n
    // positions earlier.
    ProgramBuilder b("E-D" + std::to_string(n));
    b.lda(R(kOne), 1);
    loadImm(b, R(kCount), 2500LL * opt.scale);
    b.alignOctaword();
    b.label("loop");
    for (int i = 0; i < 160; i++) {
        int r = (i % n) + 1;
        b.addq(R(r), R(kOne), R(r));
    }
    b.addq(R(15), R(kOne), R(15));
    b.subq(R(kCount), R(kOne), R(kCount));
    b.unop(1);
    b.bne(R(kCount), "loop");
    b.halt();
    return b.finish();
}

Program
executeDependentMul(const MicrobenchOptions &opt)
{
    ProgramBuilder b("E-DM1");
    b.lda(R(kOne), 1);
    loadImm(b, R(kCount), 400LL * opt.scale);
    b.alignOctaword();
    b.label("loop");
    for (int i = 0; i < 160; i++)
        b.mulq(R(1), R(kOne), R(1));
    b.addq(R(15), R(kOne), R(15));
    b.subq(R(kCount), R(kOne), R(kCount));
    b.unop(1);
    b.bne(R(kCount), "loop");
    b.halt();
    return b.finish();
}

Program
memoryIndependent(const MicrobenchOptions &opt)
{
    // Independent L1-resident loads accumulated into one scalar: load
    // bandwidth bound (two D-cache ports) with a serial accumulate.
    ProgramBuilder b("M-I");
    const Addr base = Program::kDataBase;
    b.lda(R(kOne), 1);
    loadImm(b, R(kCount), 2000LL * opt.scale);
    loadImm(b, R(20), std::int64_t(base));
    for (int i = 0; i < 64; i++)
        b.dataWord(base + Addr(8 * i), RegVal(i));
    b.alignOctaword();
    b.label("loop");
    for (int i = 0; i < 32; i++) {
        b.ldq(R(1 + (i % 4)), 8 * i, R(20));
        b.addq(R(7), R(1 + (i % 4)), R(7));
    }
    b.addq(R(7), R(15), R(7));      // add the loop index
    b.addq(R(15), R(kOne), R(15));
    b.subq(R(kCount), R(kOne), R(kCount));
    b.bne(R(kCount), "loop");
    b.halt();
    return b.finish();
}

namespace {

/**
 * Build a shuffled circular linked list in the data segment, so walking
 * it measures true load-to-load latency rather than a spatial stream.
 * @param node_stride bytes between nodes
 * @param nodes list length
 * @return base address
 */
Addr
buildChase(ProgramBuilder &b, Addr base, int nodes, int node_stride,
           std::uint64_t seed)
{
    Random rng(seed);
    std::vector<int> order{};
    order.resize(std::size_t(nodes));
    for (int i = 0; i < nodes; i++)
        order[std::size_t(i)] = i;
    for (int i = nodes - 1; i > 0; i--) {
        int j = int(rng.below(std::uint64_t(i + 1)));
        std::swap(order[std::size_t(i)], order[std::size_t(j)]);
    }
    for (int i = 0; i < nodes; i++) {
        Addr node = base + Addr(order[std::size_t(i)]) *
                               Addr(node_stride);
        Addr next = base + Addr(order[std::size_t((i + 1) % nodes)]) *
                               Addr(node_stride);
        b.dataWord(node, next);
        b.dataWord(node + 8, RegVal(i));    // payload words
    }
    return base;
}

Program
chaseBenchmark(const char *name, int nodes, int node_stride,
               std::int64_t iters, bool word_payloads)
{
    // Walk a linked list, loading payload fields of each node alongside
    // the next pointer. With `word_payloads`, the two payloads are
    // independent longword loads to different bytes of the SAME 8-byte
    // word: non-overlapping accesses that a masked (low-3-bits-ignored)
    // trap-address compare wrongly flags as load-order conflicts.
    ProgramBuilder b(name);
    const Addr base = Program::kDataBase;
    b.lda(R(kOne), 1);
    loadImm(b, R(kCount), iters);
    loadImm(b, R(20), std::int64_t(buildChase(b, base, nodes,
                                              node_stride, 0x5EED)));
    b.alignOctaword();
    b.label("loop");
    int bodies = word_payloads ? 4 : 1;
    for (int u = 0; u < bodies; u++) {
        if (word_payloads && u == 0) {
            // One body in four delays the OLDER of two same-word
            // longword payload loads behind a copied base register, so
            // the younger one executes first: loads to different bytes
            // of one word running out of order — exactly what a masked
            // trap-address compare wrongly flags as a conflict.
            b.bis(R(20), R(20), R(23));
            b.ldl(R(21), 8, R(23));     // older payload, delayed
            b.ldl(R(22), 12, R(20));    // younger payload, same word
            b.addq(R(21), R(22), R(21));
        } else if (word_payloads) {
            b.ldl(R(21), 8, R(20));
        } else {
            b.ldq(R(21), 8, R(20));     // payload
        }
        b.ldq(R(20), 0, R(20));         // next pointer (serializes)
        b.addq(R(7), R(21), R(7));
    }
    b.subq(R(kCount), R(kOne), R(kCount));
    b.bne(R(kCount), "loop");
    b.halt();
    return b.finish();
}

} // namespace

Program
memoryDependent(const MicrobenchOptions &opt)
{
    // 256 nodes x 16B = 4KB: L1 resident.
    return chaseBenchmark("M-D", 256, 16, 10000LL * opt.scale, true);
}

Program
memoryL2(const MicrobenchOptions &opt)
{
    // 16K nodes x 64B = 1MB: misses L1 on every node, fits in the 2MB
    // L2.
    return chaseBenchmark("M-L2", 16384, 64, 120000LL * opt.scale,
                          false);
}

Program
memoryMain(const MicrobenchOptions &opt)
{
    // 128K nodes x 64B = 8MB: misses both cache levels.
    return chaseBenchmark("M-M", 131072, 64, 8000LL * opt.scale,
                          false);
}

Program
memoryInstPrefetch(const MicrobenchOptions &opt)
{
    // An enormous straight-line loop body (128KB of code) flushes the
    // 64KB I-cache every iteration; throughput is set by instruction
    // prefetch efficacy.
    ProgramBuilder b("M-IP");
    b.lda(R(kOne), 1);
    loadImm(b, R(kCount), 10LL * opt.scale);
    b.alignOctaword();
    b.label("loop");
    for (int i = 0; i < 32768; i++)
        b.addq(R(1 + (i % 8)), R(kOne), R(1 + (i % 8)));
    b.subq(R(kCount), R(kOne), R(kCount));
    b.bne(R(kCount), "loop");
    b.halt();
    return b.finish();
}

std::vector<Program>
microbenchSuite(const MicrobenchOptions &opt)
{
    std::vector<Program> suite;
    suite.push_back(controlConditionalA(opt));
    suite.push_back(controlConditionalB(opt));
    suite.push_back(controlRecursive(opt));
    suite.push_back(controlSwitch(1, opt));
    suite.push_back(controlSwitch(2, opt));
    suite.push_back(controlSwitch(3, opt));
    suite.push_back(controlComplex(opt));
    suite.push_back(executeIndependent(opt));
    suite.push_back(executeFloat(opt));
    for (int n = 1; n <= 6; n++)
        suite.push_back(executeDependent(n, opt));
    suite.push_back(executeDependentMul(opt));
    suite.push_back(memoryIndependent(opt));
    suite.push_back(memoryDependent(opt));
    suite.push_back(memoryL2(opt));
    suite.push_back(memoryMain(opt));
    suite.push_back(memoryInstPrefetch(opt));
    return suite;
}

std::vector<std::string>
microbenchNames()
{
    return {"C-Ca", "C-Cb", "C-R", "C-S1", "C-S2", "C-S3", "C-O",
            "E-I", "E-F", "E-D1", "E-D2", "E-D3", "E-D4", "E-D5",
            "E-D6", "E-DM1", "M-I", "M-D", "M-L2", "M-M", "M-IP"};
}

} // namespace workloads
} // namespace simalpha

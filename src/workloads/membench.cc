#include "membench.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/assembler.hh"

namespace simalpha {
namespace workloads {

namespace {

constexpr int kOne = 10;
constexpr int kCount = 9;

void
loadImm64(ProgramBuilder &b, RegIndex reg, std::int64_t value)
{
    if (value >= -32768 && value <= 32767) {
        b.lda(reg, value);
        return;
    }
    std::int64_t hi = value >> 16;
    std::int64_t lo = value & 0xFFFF;
    b.lda(reg, hi);
    b.lda(R(28), 16);
    b.sll(reg, R(28), reg);
    if (lo)
        b.lda(reg, lo, reg);
}

const char *
kernelName(StreamKernel k)
{
    switch (k) {
      case StreamKernel::Copy: return "stream-copy";
      case StreamKernel::Scale: return "stream-scale";
      case StreamKernel::Add: return "stream-add";
      case StreamKernel::Triad: return "stream-triad";
    }
    return "stream";
}

} // namespace

Program
streamBenchmark(StreamKernel kernel, int elems, int repeats)
{
    ProgramBuilder b(kernelName(kernel));

    // Three disjoint arrays, each elems * 8 bytes.
    const std::int64_t bytes = std::int64_t(elems) * 8;
    const Addr a_base = Program::kDataBase;
    const Addr b_base = a_base + Addr(bytes);
    const Addr c_base = b_base + Addr(bytes);

    // Seed a few words so the arrays exist; untouched words read 0.
    for (int i = 0; i < 64; i++) {
        b.dataWord(a_base + Addr(8 * i), RegVal(i));
        b.dataWord(c_base + Addr(8 * i), RegVal(2 * i));
    }

    b.lda(R(kOne), 1);
    loadImm64(b, R(kCount), repeats);
    b.ldt(F(9), 0, R(31));              // scale factor (zero page: 0.0)

    b.label("repeat");
    loadImm64(b, R(20), std::int64_t(a_base));
    loadImm64(b, R(21), std::int64_t(b_base));
    loadImm64(b, R(22), std::int64_t(c_base));
    loadImm64(b, R(23), elems / 4);     // unrolled 4x
    b.label("loop");
    for (int u = 0; u < 4; u++) {
        std::int64_t off = 8 * u;
        switch (kernel) {
          case StreamKernel::Copy:
            b.ldt(F(1), off, R(20));
            b.stt(F(1), off, R(22));
            break;
          case StreamKernel::Scale:
            b.ldt(F(1), off, R(22));
            b.mult(F(1), F(9), F(2));
            b.stt(F(2), off, R(21));
            break;
          case StreamKernel::Add:
            b.ldt(F(1), off, R(20));
            b.ldt(F(2), off, R(21));
            b.addt(F(1), F(2), F(3));
            b.stt(F(3), off, R(22));
            break;
          case StreamKernel::Triad:
            b.ldt(F(1), off, R(21));
            b.ldt(F(2), off, R(22));
            b.mult(F(2), F(9), F(3));
            b.addt(F(1), F(3), F(4));
            b.stt(F(4), off, R(20));
            break;
        }
    }
    b.lda(R(20), 32, R(20));
    b.lda(R(21), 32, R(21));
    b.lda(R(22), 32, R(22));
    b.subq(R(23), R(kOne), R(23));
    b.bne(R(23), "loop");
    b.subq(R(kCount), R(kOne), R(kCount));
    b.bne(R(kCount), "repeat");
    b.halt();
    return b.finish();
}

std::vector<Program>
streamSuite(int elems, int repeats)
{
    return {streamBenchmark(StreamKernel::Copy, elems, repeats),
            streamBenchmark(StreamKernel::Scale, elems, repeats),
            streamBenchmark(StreamKernel::Add, elems, repeats),
            streamBenchmark(StreamKernel::Triad, elems, repeats)};
}

Program
lmbenchLatency(int kb, int stride, std::int64_t accesses)
{
    ProgramBuilder b("lmbench-" + std::to_string(kb) + "k");
    const Addr base = Program::kDataBase;
    const int nodes = kb * 1024 / stride;
    sim_assert(nodes > 1);

    Random rng(0x1AB5 + std::uint64_t(kb));
    std::vector<int> order{};
    order.resize(std::size_t(nodes));
    for (int i = 0; i < nodes; i++)
        order[std::size_t(i)] = i;
    for (int i = nodes - 1; i > 0; i--) {
        int j = int(rng.below(std::uint64_t(i + 1)));
        std::swap(order[std::size_t(i)], order[std::size_t(j)]);
    }
    for (int i = 0; i < nodes; i++) {
        Addr node = base + Addr(order[std::size_t(i)]) * Addr(stride);
        Addr next =
            base + Addr(order[std::size_t((i + 1) % nodes)]) *
                       Addr(stride);
        b.dataWord(node, next);
    }

    b.lda(R(kOne), 1);
    loadImm64(b, R(kCount), accesses / 8);
    loadImm64(b, R(20), std::int64_t(base));
    b.label("loop");
    for (int u = 0; u < 8; u++)
        b.ldq(R(20), 0, R(20));
    b.subq(R(kCount), R(kOne), R(kCount));
    b.bne(R(kCount), "loop");
    b.halt();
    return b.finish();
}

} // namespace workloads
} // namespace simalpha

/**
 * @file
 * Machine factory: builds every simulator configuration the paper
 * compares, by name.
 *
 *   "ds10l"            the golden reference (the hardware stand-in)
 *   "sim-alpha"        the validated simulator
 *   "sim-initial"      the buggy first cut (all Section 3.4 bugs)
 *   "sim-stripped"     sim-alpha minus the ten low-level features
 *   "sim-alpha-no-X"   sim-alpha minus one feature,
 *                      X in {addr eret luse pref spec stwt vbuf maps
 *                            slot trap}
 *   "sim-outorder"     the abstract RUU machine
 *
 * Any name may carry a `+dram=<backend>` suffix (backends: classic,
 * openpage) selecting the DRAM timing backend for that cell;
 * `+dram=classic` is the default spelled out and changes nothing.
 */

#ifndef SIMALPHA_VALIDATE_MACHINES_HH
#define SIMALPHA_VALIDATE_MACHINES_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/core.hh"
#include "outorder/ruu_core.hh"

namespace simalpha {
namespace validate {

/** Build a machine by configuration name (fatal on unknown names). */
std::unique_ptr<Machine> makeMachine(const std::string &name);

/** The ten Table-4 feature mnemonics, in table order. */
std::vector<std::string> featureNames();

/** All 13 Table-5 configurations, in column order. */
std::vector<std::string> stabilityConfigNames();

/**
 * A Table-5 optimization applied on top of a named configuration.
 */
enum class Optimization
{
    None,
    FastL1,         ///< 3-cycle -> 1-cycle L1 D-cache
    BigL1,          ///< 64KB -> 128KB L1 D-cache
    MoreRegs,       ///< 40 -> 80 rename registers per class
};

/** Build a machine with one optimization applied. */
std::unique_ptr<Machine> makeMachine(const std::string &name,
                                     Optimization opt);

/**
 * Build a machine by name without the fatal-on-unknown behaviour.
 *
 * Unlike makeMachine() this is safe to call with untrusted names (the
 * experiment runner reports bad cells instead of exiting): on an unknown
 * configuration it returns nullptr and, if @p error is non-null, stores
 * a human-readable reason.
 */
std::unique_ptr<Machine> tryMakeMachine(const std::string &name,
                                        Optimization opt,
                                        std::string *error);

/** True if @p name is a buildable machine configuration. */
bool isKnownMachine(const std::string &name);

/** Short artifact mnemonics for the Table-5 optimizations. */
std::string optimizationName(Optimization opt);

/**
 * Full parameter manifest of a named configuration (with optimization
 * applied), without constructing the machine. Fatal on unknown names.
 */
Config describeMachine(const std::string &name,
                       Optimization opt = Optimization::None);

/**
 * Non-fatal variant of describeMachine(): returns false (and fills
 * @p error if non-null) on unknown names instead of exiting.
 */
bool tryDescribeMachine(const std::string &name, Optimization opt,
                        Config *out, std::string *error);

} // namespace validate
} // namespace simalpha

#endif // SIMALPHA_VALIDATE_MACHINES_HH

/**
 * @file
 * Experiment manifests — the paper's Section 7 recommendations made
 * executable: every simulator configuration can emit a complete
 * parameter manifest (the "Reproducibility" and "Consistent
 * parameters" recommendations), so any reported number carries the
 * exact machine that produced it.
 */

#ifndef SIMALPHA_VALIDATE_MANIFEST_HH
#define SIMALPHA_VALIDATE_MANIFEST_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "core/params.hh"
#include "outorder/ruu_core.hh"

namespace simalpha {
namespace validate {

/** Export every parameter of a detailed-core configuration. */
Config describe(const AlphaCoreParams &params);

/** Export every parameter of an abstract-core configuration. */
Config describe(const RuuCoreParams &params);

/** Render a config as sorted "key = value" lines. */
std::string renderManifest(const Config &config);

/**
 * Stable 64-bit FNV-1a hash of the rendered manifest: the identity of a
 * machine configuration for result caching and artifact provenance. Two
 * configs hash equal iff every parameter renders equal.
 */
std::uint64_t manifestHash(const Config &config);

/** manifestHash() as 16 lowercase hex digits (for artifacts/keys). */
std::string manifestHashHex(const Config &config);

} // namespace validate
} // namespace simalpha

#endif // SIMALPHA_VALIDATE_MANIFEST_HH

/**
 * @file
 * Experiment manifests — the paper's Section 7 recommendations made
 * executable: every simulator configuration can emit a complete
 * parameter manifest (the "Reproducibility" and "Consistent
 * parameters" recommendations), so any reported number carries the
 * exact machine that produced it.
 */

#ifndef SIMALPHA_VALIDATE_MANIFEST_HH
#define SIMALPHA_VALIDATE_MANIFEST_HH

#include <string>

#include "common/config.hh"
#include "core/params.hh"
#include "outorder/ruu_core.hh"

namespace simalpha {
namespace validate {

/** Export every parameter of a detailed-core configuration. */
Config describe(const AlphaCoreParams &params);

/** Export every parameter of an abstract-core configuration. */
Config describe(const RuuCoreParams &params);

/** Render a config as sorted "key = value" lines. */
std::string renderManifest(const Config &config);

} // namespace validate
} // namespace simalpha

#endif // SIMALPHA_VALIDATE_MANIFEST_HH

/**
 * @file
 * Error metrics of the validation methodology: percentage error in CPI
 * against the reference machine (the paper's convention — an
 * underestimate of performance is a *negative* error), the arithmetic
 * mean of absolute errors, and harmonic-mean IPC aggregation.
 */

#ifndef SIMALPHA_VALIDATE_METRICS_HH
#define SIMALPHA_VALIDATE_METRICS_HH

#include <vector>

#include "isa/machine.hh"

namespace simalpha {
namespace validate {

/**
 * Percentage error computed as a difference in CPI, signed so that a
 * simulator reporting *lower* performance (higher CPI) than the
 * reference yields a negative value, matching Table 2/3.
 */
double percentErrorCpi(const RunResult &reference, const RunResult &sim);

/** Arithmetic mean of |errors| (the paper's aggregate error). */
double meanAbsoluteError(const std::vector<double> &errors);

/** Harmonic-mean IPC across benchmarks (the paper's aggregate IPC). */
double aggregateIpc(const std::vector<RunResult> &results);

/** Mean percent change of `opt` relative to `base` (Tables 4/5). */
double percentImprovement(const RunResult &base, const RunResult &opt);

} // namespace validate
} // namespace simalpha

#endif // SIMALPHA_VALIDATE_METRICS_HH

#include "dcpi.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace simalpha {
namespace validate {

DcpiMeasurement
measure(const RunResult &truth, const DcpiParams &params)
{
    if (params.samplingInterval == 0)
        fatal("DCPI sampling interval must be nonzero");

    Random rng(params.seed ^ truth.cycles);

    DcpiMeasurement m;
    m.samples = truth.cycles / params.samplingInterval;

    // Instrumentation dilation: each sample costs overhead cycles that
    // inflate the measured run.
    Cycle dilation = m.samples * params.perSampleOverhead;

    // Sampling error: per-sample attribution noise accumulates as a
    // random walk over the samples (scales with sqrt(samples) *
    // interval * noise).
    double walk = 0.0;
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(m.samples,
                                                          4096); i++)
        walk += (rng.unit() - 0.5);
    if (m.samples > 4096)
        walk *= std::sqrt(double(m.samples) / 4096.0);
    double noise_cycles =
        walk * params.sampleNoise * double(params.samplingInterval);

    double reported = double(truth.cycles) + double(dilation) +
                      noise_cycles;
    if (reported < 1.0)
        reported = 1.0;
    m.reportedCycles = Cycle(reported);
    m.reportedInsts = truth.instsCommitted;
    m.reportedIpc =
        double(m.reportedInsts) / double(m.reportedCycles);
    m.cycleError =
        (reported - double(truth.cycles)) / double(truth.cycles);
    return m;
}

} // namespace validate
} // namespace simalpha

/**
 * @file
 * Event-count comparison — the Bose & Conte methodology the paper cites
 * in Section 6: beyond comparing execution time, compare *event counts*
 * (mispredictions, replay traps, cache misses, stalls) between a
 * simulator and the reference to localize performance bugs.
 *
 * This is how the authors actually debugged sim-initial ("in addition
 * to measuring total execution time, we also monitored event counts,
 * such as mispredictions requiring rollback in various predictors");
 * the module packages that workflow.
 */

#ifndef SIMALPHA_VALIDATE_EVENTS_HH
#define SIMALPHA_VALIDATE_EVENTS_HH

#include <string>
#include <vector>

#include "isa/machine.hh"

namespace simalpha {
namespace validate {

/** One event counter diverging between reference and simulator. */
struct EventDivergence
{
    std::string event;
    std::uint64_t reference = 0;
    std::uint64_t simulator = 0;
    /** |sim - ref| normalized per 1000 committed instructions. */
    double perKiloInst = 0.0;
};

/**
 * Compare every event counter two machines produced for the same run.
 *
 * Call after running the same program on both machines. Counters absent
 * on one side are treated as zero there (a simulator that never rolls
 * back reports no rollback counter at all — that *is* the divergence).
 *
 * @param reference the golden machine (after a run)
 * @param simulator the machine under validation (after the same run)
 * @param min_per_kilo_inst suppress divergences smaller than this
 * @return divergences sorted by per-kiloinstruction magnitude,
 *         largest first
 */
std::vector<EventDivergence>
compareEvents(Machine &reference, Machine &simulator,
              double min_per_kilo_inst = 0.1);

/** Render a divergence report ("which events should I look at first"). */
std::string formatDivergences(const std::vector<EventDivergence> &divs,
                              std::size_t top_n = 10);

} // namespace validate
} // namespace simalpha

#endif // SIMALPHA_VALIDATE_EVENTS_HH

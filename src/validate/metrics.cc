#include "metrics.hh"

#include <cmath>

#include "common/logging.hh"

namespace simalpha {
namespace validate {

double
percentErrorCpi(const RunResult &reference, const RunResult &sim)
{
    double ref_cpi = reference.cpi();
    double sim_cpi = sim.cpi();
    if (ref_cpi <= 0.0 || sim_cpi <= 0.0)
        fatal("percentErrorCpi needs positive CPIs");
    // Negative when the simulator underestimates performance (its CPI
    // is higher than the reference's).
    return (ref_cpi - sim_cpi) / ref_cpi * 100.0;
}

double
meanAbsoluteError(const std::vector<double> &errors)
{
    if (errors.empty())
        return 0.0;
    double sum = 0.0;
    for (double e : errors)
        sum += std::fabs(e);
    return sum / double(errors.size());
}

double
aggregateIpc(const std::vector<RunResult> &results)
{
    std::vector<double> ipcs;
    ipcs.reserve(results.size());
    for (const RunResult &r : results)
        ipcs.push_back(r.ipc());
    return harmonicMean(ipcs);
}

double
percentImprovement(const RunResult &base, const RunResult &opt)
{
    return (opt.ipc() - base.ipc()) / base.ipc() * 100.0;
}

} // namespace validate
} // namespace simalpha

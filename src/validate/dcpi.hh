/**
 * @file
 * A model of the DCPI measurement methodology (Section 2.3).
 *
 * DCPI samples hardware counters at a configurable interval. Larger
 * intervals dilate execution time less but introduce more event-count
 * error; the authors settled on 40,000 cycles as the best trade-off.
 * This model reproduces that trade-off: measuring a run through the
 * profiler perturbs the reported cycle count by (a) instrumentation
 * dilation inversely proportional to the interval and (b) sampling
 * noise proportional to the interval, both deterministic per seed.
 */

#ifndef SIMALPHA_VALIDATE_DCPI_HH
#define SIMALPHA_VALIDATE_DCPI_HH

#include "isa/machine.hh"

namespace simalpha {
namespace validate {

struct DcpiParams
{
    Cycle samplingInterval = 40000;     ///< cycles between samples
    /** Dilation cost per sample (interrupt + counter read), cycles. */
    Cycle perSampleOverhead = 200;
    /** Relative magnitude of per-sample attribution noise. */
    double sampleNoise = 0.3;
    std::uint64_t seed = 12345;
};

/** A DCPI-style measurement derived from a true run result. */
struct DcpiMeasurement
{
    Cycle reportedCycles = 0;
    std::uint64_t reportedInsts = 0;
    std::uint64_t samples = 0;
    double reportedIpc = 0.0;
    /** Relative measurement error vs the true cycle count. */
    double cycleError = 0.0;
};

/** Measure a (true) run result through the DCPI model. */
DcpiMeasurement measure(const RunResult &truth,
                        const DcpiParams &params = {});

} // namespace validate
} // namespace simalpha

#endif // SIMALPHA_VALIDATE_DCPI_HH

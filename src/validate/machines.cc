#include "machines.hh"

#include <algorithm>

#include "common/logging.hh"
#include "memory/dram.hh"
#include "validate/manifest.hh"

namespace simalpha {
namespace validate {

std::vector<std::string>
featureNames()
{
    return {"addr", "eret", "luse", "pref", "spec",
            "stwt", "vbuf", "maps", "slot", "trap"};
}

std::vector<std::string>
stabilityConfigNames()
{
    std::vector<std::string> names{"sim-alpha"};
    for (const std::string &f : featureNames())
        names.push_back("sim-alpha-no-" + f);
    names.push_back("sim-stripped");
    names.push_back("sim-outorder");
    return names;
}

namespace {

void
applyAlphaOptimization(AlphaCoreParams &p, Optimization opt)
{
    switch (opt) {
      case Optimization::None:
        break;
      case Optimization::FastL1:
        p.mem.l1d.hitLatency = 1;
        p.name += "+fastl1";
        break;
      case Optimization::BigL1:
        p.mem.l1d.sizeBytes = 128 * 1024;
        p.name += "+bigl1";
        break;
      case Optimization::MoreRegs:
        p.physIntRegs = kNumIntRegs + 80;
        p.physFpRegs = kNumFpRegs + 80;
        p.name += "+regs";
        break;
    }
}

void
applyRuuOptimization(RuuCoreParams &p, Optimization opt)
{
    switch (opt) {
      case Optimization::None:
        break;
      case Optimization::FastL1:
        p.mem.l1d.hitLatency = 1;
        p.name += "+fastl1";
        break;
      case Optimization::BigL1:
        p.mem.l1d.sizeBytes = 128 * 1024;
        p.name += "+bigl1";
        break;
      case Optimization::MoreRegs:
        // The Table-5 sim-outorder column models a separate physical
        // register file [1]; the optimization doubles it.
        p.physRegs = p.physRegs > 0 ? p.physRegs * 2 : 80;
        p.name += "+regs";
        break;
    }
}

/**
 * Strip a trailing `+dram=<backend>` suffix off a machine name. The
 * backend is validated against dramBackendNames() so a typo in a
 * campaign cell stays a reportable error instead of a fatal inside the
 * memory system.
 * @return false (with *error filled) on an unknown backend name
 */
bool
splitDramSuffix(std::string *name, std::string *backend,
                std::string *error)
{
    backend->clear();
    auto pos = name->find("+dram=");
    if (pos == std::string::npos)
        return true;
    std::string b = name->substr(pos + 6);
    const auto &known = dramBackendNames();
    if (std::find(known.begin(), known.end(), b) == known.end()) {
        if (error) {
            std::string list;
            for (const auto &k : known) {
                if (!list.empty())
                    list += ", ";
                list += k;
            }
            *error = "unknown DRAM backend '" + b + "' in machine '" +
                     *name + "' (backends: " + list + ")";
        }
        return false;
    }
    name->resize(pos);
    *backend = b;
    return true;
}

/**
 * Select a non-default DRAM backend on built params. `+dram=classic` is
 * the default spelled out: params (and with them the manifest hash and
 * every store key) stay identical to the bare machine name.
 */
template <typename Params>
void
applyDramBackend(Params &p, const std::string &backend)
{
    if (backend.empty() || backend == "classic")
        return;
    p.mem.dram.backend = backend;
    p.name += "+dram=" + backend;
}

/**
 * Build the AlphaCoreParams for a detailed-core configuration name.
 * @return false (with *error filled) if the name is not recognised.
 */
bool
buildAlphaParams(const std::string &name, Optimization opt,
                 AlphaCoreParams *out, std::string *error)
{
    if (name == "ds10l") {
        *out = AlphaCoreParams::golden();
    } else if (name == "sim-alpha") {
        *out = AlphaCoreParams::simAlpha();
    } else if (name == "sim-initial") {
        *out = AlphaCoreParams::simInitial();
    } else if (name == "sim-stripped") {
        *out = AlphaCoreParams::simStripped();
    } else if (name.rfind("sim-alpha-no-", 0) == 0) {
        // removeFeature() is fatal on unknown mnemonics; check first so
        // a bad cell in a campaign stays a reportable error.
        std::string feature = name.substr(13);
        auto known = featureNames();
        if (std::find(known.begin(), known.end(), feature) ==
            known.end()) {
            if (error)
                *error = "unknown feature '" + feature +
                         "' in machine '" + name + "'";
            return false;
        }
        *out = AlphaCoreParams::withoutFeature(feature);
    } else {
        if (error)
            *error = "unknown machine configuration '" + name + "'";
        return false;
    }
    applyAlphaOptimization(*out, opt);
    return true;
}

} // namespace

std::unique_ptr<Machine>
tryMakeMachine(const std::string &name, Optimization opt,
               std::string *error)
{
    std::string base = name, dram_backend;
    if (!splitDramSuffix(&base, &dram_backend, error))
        return nullptr;

    if (base == "sim-outorder") {
        RuuCoreParams p = RuuCoreParams::simOutorder();
        if (opt == Optimization::MoreRegs && p.physRegs == 0)
            p.physRegs = 40;    // separate-regfile variant baseline
        applyRuuOptimization(p, opt);
        applyDramBackend(p, dram_backend);
        return std::make_unique<RuuCore>(p);
    }

    AlphaCoreParams p;
    if (!buildAlphaParams(base, opt, &p, error))
        return nullptr;
    applyDramBackend(p, dram_backend);
    return std::make_unique<AlphaCore>(p);
}

std::unique_ptr<Machine>
makeMachine(const std::string &name, Optimization opt)
{
    std::string error;
    auto machine = tryMakeMachine(name, opt, &error);
    if (!machine)
        fatal("%s", error.c_str());
    return machine;
}

std::unique_ptr<Machine>
makeMachine(const std::string &name)
{
    return makeMachine(name, Optimization::None);
}

bool
isKnownMachine(const std::string &name)
{
    std::string error;
    Config ignored;
    return tryDescribeMachine(name, Optimization::None, &ignored,
                              &error);
}

std::string
optimizationName(Optimization opt)
{
    switch (opt) {
      case Optimization::None:
        return "none";
      case Optimization::FastL1:
        return "fastl1";
      case Optimization::BigL1:
        return "bigl1";
      case Optimization::MoreRegs:
        return "regs";
    }
    return "none";
}

bool
tryDescribeMachine(const std::string &name, Optimization opt,
                   Config *out, std::string *error)
{
    std::string base = name, dram_backend;
    if (!splitDramSuffix(&base, &dram_backend, error))
        return false;

    if (base == "sim-outorder") {
        RuuCoreParams p = RuuCoreParams::simOutorder();
        if (opt == Optimization::MoreRegs && p.physRegs == 0)
            p.physRegs = 40;
        applyRuuOptimization(p, opt);
        applyDramBackend(p, dram_backend);
        *out = describe(p);
        return true;
    }

    AlphaCoreParams p;
    if (!buildAlphaParams(base, opt, &p, error))
        return false;
    applyDramBackend(p, dram_backend);
    *out = describe(p);
    return true;
}

Config
describeMachine(const std::string &name, Optimization opt)
{
    Config c;
    std::string error;
    if (!tryDescribeMachine(name, opt, &c, &error))
        fatal("%s", error.c_str());
    return c;
}

} // namespace validate
} // namespace simalpha

#include "machines.hh"

#include "common/logging.hh"

namespace simalpha {
namespace validate {

std::vector<std::string>
featureNames()
{
    return {"addr", "eret", "luse", "pref", "spec",
            "stwt", "vbuf", "maps", "slot", "trap"};
}

std::vector<std::string>
stabilityConfigNames()
{
    std::vector<std::string> names{"sim-alpha"};
    for (const std::string &f : featureNames())
        names.push_back("sim-alpha-no-" + f);
    names.push_back("sim-stripped");
    names.push_back("sim-outorder");
    return names;
}

namespace {

void
applyAlphaOptimization(AlphaCoreParams &p, Optimization opt)
{
    switch (opt) {
      case Optimization::None:
        break;
      case Optimization::FastL1:
        p.mem.l1d.hitLatency = 1;
        p.name += "+fastl1";
        break;
      case Optimization::BigL1:
        p.mem.l1d.sizeBytes = 128 * 1024;
        p.name += "+bigl1";
        break;
      case Optimization::MoreRegs:
        p.physIntRegs = kNumIntRegs + 80;
        p.physFpRegs = kNumFpRegs + 80;
        p.name += "+regs";
        break;
    }
}

void
applyRuuOptimization(RuuCoreParams &p, Optimization opt)
{
    switch (opt) {
      case Optimization::None:
        break;
      case Optimization::FastL1:
        p.mem.l1d.hitLatency = 1;
        p.name += "+fastl1";
        break;
      case Optimization::BigL1:
        p.mem.l1d.sizeBytes = 128 * 1024;
        p.name += "+bigl1";
        break;
      case Optimization::MoreRegs:
        // The Table-5 sim-outorder column models a separate physical
        // register file [1]; the optimization doubles it.
        p.physRegs = p.physRegs > 0 ? p.physRegs * 2 : 80;
        p.name += "+regs";
        break;
    }
}

} // namespace

std::unique_ptr<Machine>
makeMachine(const std::string &name, Optimization opt)
{
    if (name == "sim-outorder") {
        RuuCoreParams p = RuuCoreParams::simOutorder();
        if (opt == Optimization::MoreRegs && p.physRegs == 0)
            p.physRegs = 40;    // separate-regfile variant baseline
        applyRuuOptimization(p, opt);
        return std::make_unique<RuuCore>(p);
    }

    AlphaCoreParams p;
    if (name == "ds10l") {
        p = AlphaCoreParams::golden();
    } else if (name == "sim-alpha") {
        p = AlphaCoreParams::simAlpha();
    } else if (name == "sim-initial") {
        p = AlphaCoreParams::simInitial();
    } else if (name == "sim-stripped") {
        p = AlphaCoreParams::simStripped();
    } else if (name.rfind("sim-alpha-no-", 0) == 0) {
        p = AlphaCoreParams::withoutFeature(name.substr(13));
    } else {
        fatal("unknown machine configuration '%s'", name.c_str());
    }
    applyAlphaOptimization(p, opt);
    return std::make_unique<AlphaCore>(p);
}

std::unique_ptr<Machine>
makeMachine(const std::string &name)
{
    return makeMachine(name, Optimization::None);
}

} // namespace validate
} // namespace simalpha

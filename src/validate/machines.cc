#include "machines.hh"

#include <algorithm>

#include "common/logging.hh"
#include "validate/manifest.hh"

namespace simalpha {
namespace validate {

std::vector<std::string>
featureNames()
{
    return {"addr", "eret", "luse", "pref", "spec",
            "stwt", "vbuf", "maps", "slot", "trap"};
}

std::vector<std::string>
stabilityConfigNames()
{
    std::vector<std::string> names{"sim-alpha"};
    for (const std::string &f : featureNames())
        names.push_back("sim-alpha-no-" + f);
    names.push_back("sim-stripped");
    names.push_back("sim-outorder");
    return names;
}

namespace {

void
applyAlphaOptimization(AlphaCoreParams &p, Optimization opt)
{
    switch (opt) {
      case Optimization::None:
        break;
      case Optimization::FastL1:
        p.mem.l1d.hitLatency = 1;
        p.name += "+fastl1";
        break;
      case Optimization::BigL1:
        p.mem.l1d.sizeBytes = 128 * 1024;
        p.name += "+bigl1";
        break;
      case Optimization::MoreRegs:
        p.physIntRegs = kNumIntRegs + 80;
        p.physFpRegs = kNumFpRegs + 80;
        p.name += "+regs";
        break;
    }
}

void
applyRuuOptimization(RuuCoreParams &p, Optimization opt)
{
    switch (opt) {
      case Optimization::None:
        break;
      case Optimization::FastL1:
        p.mem.l1d.hitLatency = 1;
        p.name += "+fastl1";
        break;
      case Optimization::BigL1:
        p.mem.l1d.sizeBytes = 128 * 1024;
        p.name += "+bigl1";
        break;
      case Optimization::MoreRegs:
        // The Table-5 sim-outorder column models a separate physical
        // register file [1]; the optimization doubles it.
        p.physRegs = p.physRegs > 0 ? p.physRegs * 2 : 80;
        p.name += "+regs";
        break;
    }
}

/**
 * Build the AlphaCoreParams for a detailed-core configuration name.
 * @return false (with *error filled) if the name is not recognised.
 */
bool
buildAlphaParams(const std::string &name, Optimization opt,
                 AlphaCoreParams *out, std::string *error)
{
    if (name == "ds10l") {
        *out = AlphaCoreParams::golden();
    } else if (name == "sim-alpha") {
        *out = AlphaCoreParams::simAlpha();
    } else if (name == "sim-initial") {
        *out = AlphaCoreParams::simInitial();
    } else if (name == "sim-stripped") {
        *out = AlphaCoreParams::simStripped();
    } else if (name.rfind("sim-alpha-no-", 0) == 0) {
        // removeFeature() is fatal on unknown mnemonics; check first so
        // a bad cell in a campaign stays a reportable error.
        std::string feature = name.substr(13);
        auto known = featureNames();
        if (std::find(known.begin(), known.end(), feature) ==
            known.end()) {
            if (error)
                *error = "unknown feature '" + feature +
                         "' in machine '" + name + "'";
            return false;
        }
        *out = AlphaCoreParams::withoutFeature(feature);
    } else {
        if (error)
            *error = "unknown machine configuration '" + name + "'";
        return false;
    }
    applyAlphaOptimization(*out, opt);
    return true;
}

} // namespace

std::unique_ptr<Machine>
tryMakeMachine(const std::string &name, Optimization opt,
               std::string *error)
{
    if (name == "sim-outorder") {
        RuuCoreParams p = RuuCoreParams::simOutorder();
        if (opt == Optimization::MoreRegs && p.physRegs == 0)
            p.physRegs = 40;    // separate-regfile variant baseline
        applyRuuOptimization(p, opt);
        return std::make_unique<RuuCore>(p);
    }

    AlphaCoreParams p;
    if (!buildAlphaParams(name, opt, &p, error))
        return nullptr;
    return std::make_unique<AlphaCore>(p);
}

std::unique_ptr<Machine>
makeMachine(const std::string &name, Optimization opt)
{
    std::string error;
    auto machine = tryMakeMachine(name, opt, &error);
    if (!machine)
        fatal("%s", error.c_str());
    return machine;
}

std::unique_ptr<Machine>
makeMachine(const std::string &name)
{
    return makeMachine(name, Optimization::None);
}

bool
isKnownMachine(const std::string &name)
{
    std::string error;
    Config ignored;
    return tryDescribeMachine(name, Optimization::None, &ignored,
                              &error);
}

std::string
optimizationName(Optimization opt)
{
    switch (opt) {
      case Optimization::None:
        return "none";
      case Optimization::FastL1:
        return "fastl1";
      case Optimization::BigL1:
        return "bigl1";
      case Optimization::MoreRegs:
        return "regs";
    }
    return "none";
}

bool
tryDescribeMachine(const std::string &name, Optimization opt,
                   Config *out, std::string *error)
{
    if (name == "sim-outorder") {
        RuuCoreParams p = RuuCoreParams::simOutorder();
        if (opt == Optimization::MoreRegs && p.physRegs == 0)
            p.physRegs = 40;
        applyRuuOptimization(p, opt);
        *out = describe(p);
        return true;
    }

    AlphaCoreParams p;
    if (!buildAlphaParams(name, opt, &p, error))
        return false;
    *out = describe(p);
    return true;
}

Config
describeMachine(const std::string &name, Optimization opt)
{
    Config c;
    std::string error;
    if (!tryDescribeMachine(name, opt, &c, &error))
        fatal("%s", error.c_str());
    return c;
}

} // namespace validate
} // namespace simalpha

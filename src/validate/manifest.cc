#include "manifest.hh"

#include <sstream>

namespace simalpha {
namespace validate {

namespace {

void
describeMemory(const MemorySystemParams &m, Config &c)
{
    auto cache = [&](const char *prefix, const CacheParams &p) {
        std::string pre(prefix);
        c.set(pre + ".size_bytes", std::int64_t(p.sizeBytes));
        c.set(pre + ".assoc", std::int64_t(p.assoc));
        c.set(pre + ".block_bytes", std::int64_t(p.blockBytes));
        c.set(pre + ".hit_latency", std::int64_t(p.hitLatency));
        c.set(pre + ".ports", std::int64_t(p.ports));
        c.set(pre + ".mshr_entries", std::int64_t(p.mshrEntries));
        c.set(pre + ".mshr_targets", std::int64_t(p.mshrTargets));
        c.set(pre + ".victim_entries", std::int64_t(p.victimEntries));
        c.set(pre + ".prefetch_lines", std::int64_t(p.prefetchLines));
        c.set(pre + ".stores_contend", p.storesContend);
    };
    cache("l1i", m.l1i);
    cache("l1d", m.l1d);
    cache("l2", m.l2);

    c.set("dram.banks", std::int64_t(m.dram.banks));
    c.set("dram.row_bytes", std::int64_t(m.dram.rowBytes));
    c.set("dram.ras_cycles", std::int64_t(m.dram.rasCycles));
    c.set("dram.cas_cycles", std::int64_t(m.dram.casCycles));
    c.set("dram.precharge_cycles",
          std::int64_t(m.dram.prechargeCycles));
    c.set("dram.controller_cycles",
          std::int64_t(m.dram.controllerCycles));
    c.set("dram.open_page", m.dram.openPage);
    c.set("dram.flat_latency", std::int64_t(m.dram.flatLatency));
    c.set("dram.reordering_controller", m.dram.reorderingController);
    // The backend key is emitted only when it differs from classic:
    // every pre-backend manifest (and its hash, and every store key and
    // golden artifact derived from it) must stay byte-identical.
    if (!m.dram.backend.empty() && m.dram.backend != "classic") {
        c.set("dram.backend", m.dram.backend);
        c.set("dram.write_to_read_cycles",
              std::int64_t(m.dram.writeToReadCycles));
    }

    c.set("itlb.entries", std::int64_t(m.itlb.entries));
    c.set("itlb.hardware_walk", m.itlb.hardwareWalk);
    c.set("itlb.page_coloring", m.itlb.pageColoring);
    c.set("dtlb.entries", std::int64_t(m.dtlb.entries));
    c.set("dtlb.hardware_walk", m.dtlb.hardwareWalk);
    c.set("dtlb.page_coloring", m.dtlb.pageColoring);
    c.set("shared_maf", m.sharedMaf);
}

} // namespace

Config
describe(const AlphaCoreParams &p)
{
    Config c;
    c.set("name", p.name);
    c.set("model", "alpha-21264");

    c.set("fetch_width", std::int64_t(p.fetchWidth));
    c.set("map_width", std::int64_t(p.mapWidth));
    c.set("retire_width", std::int64_t(p.retireWidth));
    c.set("int_iq_entries", std::int64_t(p.intIqEntries));
    c.set("fp_iq_entries", std::int64_t(p.fpIqEntries));
    c.set("rob_entries", std::int64_t(p.robEntries));
    c.set("phys_int_regs", std::int64_t(p.physIntRegs));
    c.set("phys_fp_regs", std::int64_t(p.physFpRegs));
    c.set("lq_entries", std::int64_t(p.lqEntries));
    c.set("sq_entries", std::int64_t(p.sqEntries));
    c.set("regread_cycles", std::int64_t(p.regreadCycles));
    c.set("full_bypass", p.fullBypass);

    c.set("feature.addr", p.slotAdder);
    c.set("feature.eret", p.earlyUnopRetire);
    c.set("feature.luse", p.loadUseSpec);
    c.set("feature.pref", p.icachePrefetch);
    c.set("feature.spec", p.speculativeUpdate);
    c.set("feature.stwt", p.storeWaitTable);
    c.set("feature.vbuf", p.victimBuffer);
    c.set("feature.maps", p.mapStall);
    c.set("feature.slot", p.slotRestrict);
    c.set("feature.trap", p.mboxTraps);

    c.set("bug.late_branch_recovery", p.bugLateBranchRecovery);
    c.set("bug.extra_way_pred_cycle", p.bugExtraWayPredCycle);
    c.set("bug.octaword_squash_penalty", p.bugOctawordSquashPenalty);
    c.set("bug.masked_load_trap_addr", p.bugMaskedLoadTrapAddr);
    c.set("bug.wrong_fu_mix", p.bugWrongFuMix);
    c.set("bug.no_unop_removal", p.bugNoUnopRemoval);
    c.set("bug.aggressive_cluster", p.bugAggressiveCluster);
    c.set("bug.undercharged_jump", p.bugUnderchargedJump);
    c.set("bug.extra_regread_on_miss", p.bugExtraRegreadOnMiss);
    c.set("bug.undercharged_lu_recovery",
          p.bugUnderchargedLoadUseRecovery);
    c.set("bug.short_mul_latency", p.bugShortMulLatency);

    c.set("approx.bypass_latency", p.approxBypassLatency);
    c.set("approx.delayed_iq_removal", p.approxDelayedIqRemoval);
    c.set("approx.squash_dependents_only", p.squashDependentsOnly);
    c.set("approx.masked_store_trap_addr",
          p.approxMaskedStoreTrapAddr);
    c.set("hw.mbox_extra_traps", p.mboxExtraTraps);

    describeMemory(p.mem, c);
    return c;
}

Config
describe(const RuuCoreParams &p)
{
    Config c;
    c.set("name", p.name);
    c.set("model", "ruu");
    c.set("fetch_width", std::int64_t(p.fetchWidth));
    c.set("decode_width", std::int64_t(p.decodeWidth));
    c.set("issue_width", std::int64_t(p.issueWidth));
    c.set("commit_width", std::int64_t(p.commitWidth));
    c.set("ruu_entries", std::int64_t(p.ruuEntries));
    c.set("lsq_entries", std::int64_t(p.lsqEntries));
    c.set("int_alus", std::int64_t(p.intAlus));
    c.set("int_muls", std::int64_t(p.intMuls));
    c.set("fp_add_units", std::int64_t(p.fpAddUnits));
    c.set("fp_mul_units", std::int64_t(p.fpMulUnits));
    c.set("mem_ports", std::int64_t(p.memPorts));
    c.set("regread_cycles", std::int64_t(p.regreadCycles));
    c.set("full_bypass", p.fullBypass);
    c.set("phys_regs", std::int64_t(p.physRegs));
    describeMemory(p.mem, c);
    return c;
}

std::string
renderManifest(const Config &config)
{
    std::ostringstream os;
    for (const std::string &key : config.keys())
        os << key << " = " << config.renderValue(key) << "\n";
    return os.str();
}

std::uint64_t
manifestHash(const Config &config)
{
    // FNV-1a over the rendered text: stable across platforms and runs,
    // sensitive to every parameter (keys are sorted by renderManifest).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char ch : renderManifest(config)) {
        h ^= ch;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
manifestHashHex(const Config &config)
{
    static const char digits[] = "0123456789abcdef";
    std::uint64_t h = manifestHash(config);
    std::string out(16, '0');
    for (int i = 15; i >= 0; i--, h >>= 4)
        out[std::size_t(i)] = digits[h & 0xF];
    return out;
}

} // namespace validate
} // namespace simalpha

#include "events.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace simalpha {
namespace validate {

std::vector<EventDivergence>
compareEvents(Machine &reference, Machine &simulator,
              double min_per_kilo_inst)
{
    stats::Group &ref = reference.statGroup();
    stats::Group &sim = simulator.statGroup();

    std::uint64_t insts = ref.get("insts_committed");
    if (insts == 0)
        fatal("compareEvents: run the reference machine first");

    std::set<std::string> names;
    for (const std::string &n : ref.counterNames())
        names.insert(n);
    for (const std::string &n : sim.counterNames())
        names.insert(n);
    // Cycle/instruction totals are outcomes, not events.
    names.erase("cycles");
    names.erase("insts_committed");

    std::vector<EventDivergence> divs;
    for (const std::string &n : names) {
        EventDivergence d;
        d.event = n;
        d.reference = ref.get(n);
        d.simulator = sim.get(n);
        double delta = d.reference >= d.simulator
                           ? double(d.reference - d.simulator)
                           : double(d.simulator - d.reference);
        d.perKiloInst = delta * 1000.0 / double(insts);
        if (d.perKiloInst >= min_per_kilo_inst)
            divs.push_back(d);
    }
    std::sort(divs.begin(), divs.end(),
              [](const EventDivergence &a, const EventDivergence &b) {
                  return a.perKiloInst > b.perKiloInst;
              });
    return divs;
}

std::string
formatDivergences(const std::vector<EventDivergence> &divs,
                  std::size_t top_n)
{
    std::ostringstream os;
    os << "event divergences (per 1000 committed instructions):\n";
    if (divs.empty()) {
        os << "  none above threshold\n";
        return os.str();
    }
    std::size_t n = std::min(top_n, divs.size());
    for (std::size_t i = 0; i < n; i++) {
        const EventDivergence &d = divs[i];
        os << "  " << d.event << ": ref " << d.reference << " vs sim "
           << d.simulator << "  (" << d.perKiloInst << "/kinst)\n";
    }
    return os.str();
}

} // namespace validate
} // namespace simalpha

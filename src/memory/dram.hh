/**
 * @file
 * A synchronous DRAM timing model after Cuppu et al. [ISCA 1999], the
 * model the paper plugs into sim-alpha.
 *
 * The device is organized as independent banks, each with one open row.
 * An access pays:
 *   - controller overhead (CPU cycles each way),
 *   - precharge if the bank has a different row open (row miss under the
 *     open-page policy, or always under the closed-page policy),
 *   - RAS (row activate) if no row is open,
 *   - CAS (column access),
 * all in DRAM cycles scaled by the CPU/DRAM clock ratio, plus the data
 * transfer on the memory bus.
 *
 * The calibrated DS-10L parameters from Section 4.2 of the paper are the
 * defaults: open-page policy, 2-cycle RAS, 4-cycle CAS, 2-cycle
 * precharge, 2 CPU cycles of controller latency (total, both ways).
 */

#ifndef SIMALPHA_MEMORY_DRAM_HH
#define SIMALPHA_MEMORY_DRAM_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "memory/memlevel.hh"

namespace simalpha {

struct DramParams
{
    int banks = 4;
    int rowBytes = 4096;            ///< DRAM page (row) size
    int rasCycles = 2;              ///< row activate, DRAM cycles
    int casCycles = 4;              ///< column access, DRAM cycles
    int prechargeCycles = 2;        ///< precharge, DRAM cycles
    int controllerCycles = 2;       ///< CPU cycles, total both ways
    int cpuCyclesPerDramCycle = 4;  ///< DRAM runs at ~25% CPU speed
    bool openPage = true;           ///< open- vs closed-page policy
    /** When nonzero, bypass the bank model entirely and charge this
     *  fixed latency (the abstract sim-outorder memory). */
    int flatLatency = 0;
    /** Controller request reordering (the hardware-only optimization the
     *  paper suspects): precharge/activate overlap behind other work,
     *  halving the row-miss penalty. */
    bool reorderingController = false;
    int busBytesPerBeat = 8;        ///< 64-bit memory bus
    int busCpuCyclesPerBeat = 4;
    int blockBytes = 64;            ///< transfer granularity (L2 block)
};

class Dram : public MemLevel
{
  public:
    explicit Dram(const DramParams &params);

    AccessResult access(Addr addr, bool is_write, Cycle now) override;

    stats::Group &statGroup() { return _stats; }
    std::uint64_t rowHits() const { return _rowHits.value(); }
    std::uint64_t rowMisses() const { return _rowMisses.value(); }

    /** Restore freshly-constructed state (campaign core reuse). */
    void
    reset()
    {
        _banks.assign(_banks.size(), Bank{});
        _bus.reset();
        _stats.reset();
    }

  private:
    struct Bank
    {
        Cycle nextFree = 0;
        Addr openRow = kNoAddr;
    };

    DramParams _p;
    std::vector<Bank> _banks;
    Bus _bus;
    stats::Group _stats;
    stats::Counter &_reads;
    stats::Counter &_writes;
    stats::Counter &_rowHits;
    stats::Counter &_rowMisses;
};

} // namespace simalpha

#endif // SIMALPHA_MEMORY_DRAM_HH

/**
 * @file
 * A synchronous DRAM timing model after Cuppu et al. [ISCA 1999], the
 * model the paper plugs into sim-alpha.
 *
 * The device is organized as independent banks, each with one open row.
 * An access pays:
 *   - controller overhead (CPU cycles each way),
 *   - precharge if the bank has a different row open (row miss under the
 *     open-page policy, or always under the closed-page policy),
 *   - RAS (row activate) if no row is open,
 *   - CAS (column access),
 * all in DRAM cycles scaled by the CPU/DRAM clock ratio, plus the data
 * transfer on the memory bus.
 *
 * The calibrated DS-10L parameters from Section 4.2 of the paper are the
 * defaults: open-page policy, 2-cycle RAS, 4-cycle CAS, 2-cycle
 * precharge, 2 CPU cycles of controller latency (total, both ways).
 */

#ifndef SIMALPHA_MEMORY_DRAM_HH
#define SIMALPHA_MEMORY_DRAM_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "memory/memlevel.hh"

namespace simalpha {

struct DramParams
{
    /** Which DRAM timing backend to instantiate ("classic" is the
     *  calibrated Cuppu-style model below; "openpage" adds a row-buffer
     *  policy with bank queueing and FR-FCFS-style promotion). The cell
     *  manifest records this only when it differs from classic, so every
     *  pre-existing manifest hash — and with it every golden table and
     *  store key — is unchanged. */
    std::string backend = "classic";
    int banks = 4;
    int rowBytes = 4096;            ///< DRAM page (row) size
    int rasCycles = 2;              ///< row activate, DRAM cycles
    int casCycles = 4;              ///< column access, DRAM cycles
    int prechargeCycles = 2;        ///< precharge, DRAM cycles
    int controllerCycles = 2;       ///< CPU cycles, total both ways
    int cpuCyclesPerDramCycle = 4;  ///< DRAM runs at ~25% CPU speed
    bool openPage = true;           ///< open- vs closed-page policy
    /** When nonzero, bypass the bank model entirely and charge this
     *  fixed latency (the abstract sim-outorder memory). */
    int flatLatency = 0;
    /** Controller request reordering (the hardware-only optimization the
     *  paper suspects): precharge/activate overlap behind other work,
     *  halving the row-miss penalty. */
    bool reorderingController = false;
    int busBytesPerBeat = 8;        ///< 64-bit memory bus
    int busCpuCyclesPerBeat = 4;
    int blockBytes = 64;            ///< transfer granularity (L2 block)

    /** Write-to-read turnaround on a bank, DRAM cycles (openpage only). */
    int writeToReadCycles = 2;
};

/**
 * The cell-selectable DRAM timing interface. Every backend is a timed
 * MemLevel plus the reset/stat surface the hierarchy and campaigns rely
 * on; which one a cell gets is chosen by `DramParams::backend` (e.g. the
 * `+dram=openpage` machine-name suffix).
 */
class DramBackend : public MemLevel
{
  public:
    virtual stats::Group &statGroup() = 0;
    virtual std::uint64_t rowHits() const = 0;
    virtual std::uint64_t rowMisses() const = 0;

    /** Restore freshly-constructed state (campaign core reuse). */
    virtual void reset() = 0;

    virtual const char *backendName() const = 0;
};

/** Valid `DramParams::backend` names, for validation and error text. */
const std::vector<std::string> &dramBackendNames();

/**
 * Instantiate the backend `params.backend` names; fatal on an unknown
 * name (machine-name parsing validates earlier with a soft error).
 */
std::unique_ptr<DramBackend> makeDramBackend(const DramParams &params);

class Dram : public DramBackend
{
  public:
    explicit Dram(const DramParams &params);

    AccessResult access(Addr addr, bool is_write, Cycle now) override;

    stats::Group &statGroup() override { return _stats; }
    std::uint64_t rowHits() const override { return _rowHits.value(); }
    std::uint64_t rowMisses() const override { return _rowMisses.value(); }

    const char *backendName() const override { return "classic"; }

    void
    reset() override
    {
        _banks.assign(_banks.size(), Bank{});
        _bus.reset();
        _stats.reset();
    }

  private:
    struct Bank
    {
        Cycle nextFree = 0;
        Addr openRow = kNoAddr;
    };

    DramParams _p;
    std::vector<Bank> _banks;
    Bus _bus;
    stats::Group _stats;
    stats::Counter &_reads;
    stats::Counter &_writes;
    stats::Counter &_rowHits;
    stats::Counter &_rowMisses;
};

/**
 * The `openpage` backend: an open-page row-buffer policy with per-bank
 * state the classic model does not track — write-to-read bus turnaround,
 * a serializing command bus shared by all banks, and an FR-FCFS-style
 * controller that lets a row-buffer hit overtake queued row-miss work on
 * a busy bank (the reordering the paper's §4.2 suspects the real DS-10L
 * controller of, modeled as a bounded queue-delay credit rather than the
 * classic model's blanket halving of the miss penalty).
 */
class OpenPageDram : public DramBackend
{
  public:
    explicit OpenPageDram(const DramParams &params);

    AccessResult access(Addr addr, bool is_write, Cycle now) override;

    stats::Group &statGroup() override { return _stats; }
    std::uint64_t rowHits() const override { return _rowHits.value(); }
    std::uint64_t rowMisses() const override { return _rowMisses.value(); }

    const char *backendName() const override { return "openpage"; }

    std::uint64_t bankConflicts() const { return _conflicts.value(); }
    std::uint64_t promotions() const { return _promotions.value(); }

    void
    reset() override
    {
        _banks.assign(_banks.size(), Bank{});
        _cmdBus.reset();
        _dataBus.reset();
        _stats.reset();
    }

  private:
    struct Bank
    {
        Cycle nextFree = 0;
        Addr openRow = kNoAddr;
        bool lastWasWrite = false;
    };

    DramParams _p;
    std::vector<Bank> _banks;
    Bus _cmdBus;
    Bus _dataBus;
    stats::Group _stats;
    stats::Counter &_reads;
    stats::Counter &_writes;
    stats::Counter &_rowHits;
    stats::Counter &_rowMisses;
    stats::Counter &_conflicts;
    stats::Counter &_promotions;
};

} // namespace simalpha

#endif // SIMALPHA_MEMORY_DRAM_HH

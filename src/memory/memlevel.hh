/**
 * @file
 * Common interface for timed memory levels (caches, DRAM).
 *
 * The memory model is latency-bookkeeping rather than event-driven: an
 * access request made at cycle `now` immediately computes the cycle at
 * which its data is available, reserving bus/bank/MSHR occupancy along
 * the way so later requests observe contention.
 */

#ifndef SIMALPHA_MEMORY_MEMLEVEL_HH
#define SIMALPHA_MEMORY_MEMLEVEL_HH

#include "common/types.hh"

namespace simalpha {

/** Result of a timed memory access. */
struct AccessResult
{
    Cycle done = 0;         ///< cycle at which data is available
    bool hit = false;       ///< hit at the level that was asked
    bool belowHit = false;  ///< hit somewhere below (e.g. L2 for an L1 miss)
};

class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Perform a timed access.
     * @param addr physical address
     * @param is_write true for stores/writebacks
     * @param now request cycle
     */
    virtual AccessResult access(Addr addr, bool is_write, Cycle now) = 0;
};

/**
 * A shared bus with a width (bytes per beat) and a clock divider relative
 * to the CPU clock. Transfers serialize: a request issued while the bus
 * is busy waits for the current transfer to finish.
 */
class Bus
{
  public:
    /**
     * @param bytes_per_beat bus width
     * @param cpu_cycles_per_beat CPU cycles per bus beat
     */
    Bus(int bytes_per_beat, int cpu_cycles_per_beat)
        : _bytesPerBeat(bytes_per_beat),
          _cyclesPerBeat(cpu_cycles_per_beat)
    {
    }

    /**
     * Acquire the bus for a transfer of `bytes`.
     * @param ready earliest cycle the transfer could start
     * @return cycle at which the transfer completes
     */
    Cycle
    transfer(Cycle ready, int bytes)
    {
        Cycle start = ready > _nextFree ? ready : _nextFree;
        int beats = (bytes + _bytesPerBeat - 1) / _bytesPerBeat;
        if (beats < 1)
            beats = 1;
        Cycle done = start + Cycle(beats) * Cycle(_cyclesPerBeat);
        _nextFree = done;
        _transfers++;
        return done;
    }

    Cycle nextFree() const { return _nextFree; }
    std::uint64_t transfers() const { return _transfers; }

    /** Restore freshly-constructed state (campaign core reuse). */
    void
    reset()
    {
        _nextFree = 0;
        _transfers = 0;
    }

  private:
    int _bytesPerBeat;
    int _cyclesPerBeat;
    Cycle _nextFree = 0;
    std::uint64_t _transfers = 0;
};

} // namespace simalpha

#endif // SIMALPHA_MEMORY_MEMLEVEL_HH

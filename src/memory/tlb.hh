/**
 * @file
 * TLB model with two miss-handling modes:
 *  - PAL-code software refill (the real 21264: the pipeline stalls for a
 *    fixed trap-and-refill penalty), and
 *  - a five-level hardware page-table walk (what sim-alpha modeled: each
 *    level costs a memory-hierarchy access, and the pipeline does NOT
 *    stall — only the faulting access is delayed).
 *
 * Also owns the virtual-to-physical mapping. Two mapping policies stand
 * in for the page-allocation behaviour the paper could not replicate:
 * identity-like mapping (models OS page coloring: virtual locality is
 * preserved in the physical address, minimizing L2 conflicts and DRAM
 * page misses) and a hashed mapping (uncolored allocation).
 */

#ifndef SIMALPHA_MEMORY_TLB_HH
#define SIMALPHA_MEMORY_TLB_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "memory/memlevel.hh"

namespace simalpha {

struct TlbParams
{
    std::string name = "tlb";
    int entries = 128;          ///< fully associative
    bool hardwareWalk = true;   ///< hw walk (sim-alpha) vs PAL stall
    int walkLevels = 5;
    int palStallCycles = 50;    ///< pipeline stall per software refill
    bool pageColoring = false;  ///< colored (hardware-like) page mapping
    int pageBytes = 8192;       ///< Alpha 8KB pages
};

/** Outcome of a TLB translation. */
struct TlbResult
{
    Addr paddr = 0;
    bool miss = false;
    Cycle extraLatency = 0;     ///< added to the access (hardware walk)
    Cycle pipelineStall = 0;    ///< stalls the whole pipeline (PAL mode)
};

class Tlb
{
  public:
    /**
     * @param params geometry and policy
     * @param walk_target memory level charged for hardware-walk accesses
     *        (typically the L2); may be nullptr for a fixed-cost walk
     */
    Tlb(const TlbParams &params, MemLevel *walk_target);

    TlbResult translate(Addr vaddr, Cycle now);

    /** Pure address mapping with no TLB state change (for probes). */
    Addr translateProbe(Addr vaddr) const;

    stats::Group &statGroup() { return _stats; }
    const TlbParams &params() const { return _p; }
    std::uint64_t misses() const { return _misses.value(); }

    /** Total entries (injection-index folding). */
    std::size_t entryCount() const { return _entries.size(); }

    /**
     * Soft-error injection: XOR one bit of one entry's virtual page
     * number. Translation compares the stored vpn and recomputes the
     * physical page from the *requested* address, so a corrupted tag
     * perturbs hit/miss timing only — it cannot misdirect a load.
     */
    void
    injectTagFlip(std::uint64_t index, std::uint32_t bit)
    {
        _entries[std::size_t(index % _entries.size())].vpn ^=
            Addr(1) << (bit % 64);
    }

    /** Restore freshly-constructed state (campaign core reuse). */
    void
    reset()
    {
        _entries.assign(_entries.size(), Entry{});
        _useTick = 0;
        _stats.reset();
    }

  private:
    Addr vpnOf(Addr vaddr) const;
    Addr mapPage(Addr vpn) const;

    struct Entry
    {
        Addr vpn = kNoAddr;
        std::uint64_t lastUse = 0;
    };

    TlbParams _p;
    MemLevel *_walkTarget;
    std::vector<Entry> _entries;
    std::uint64_t _useTick = 0;
    int _pageShift;
    stats::Group _stats;
    stats::Counter &_lookups;
    stats::Counter &_misses;
};

} // namespace simalpha

#endif // SIMALPHA_MEMORY_TLB_HH

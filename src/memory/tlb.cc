#include "tlb.hh"

#include <algorithm>

#include "common/logging.hh"

namespace simalpha {

Tlb::Tlb(const TlbParams &params, MemLevel *walk_target)
    : _p(params), _walkTarget(walk_target),
      _entries(std::size_t(params.entries)),
      _stats(params.name),
      _lookups(_stats.counter("lookups")),
      _misses(_stats.counter("misses"))
{
    if (_p.pageBytes <= 0 || (_p.pageBytes & (_p.pageBytes - 1)) != 0)
        fatal("%s: page size must be a power of two", _p.name.c_str());
    _pageShift = 0;
    while ((1 << _pageShift) < _p.pageBytes)
        _pageShift++;
}

Addr
Tlb::vpnOf(Addr vaddr) const
{
    return vaddr >> _pageShift;
}

Addr
Tlb::mapPage(Addr vpn) const
{
    if (_p.pageColoring) {
        // Colored mapping: preserve the virtual page number's low bits so
        // L2 index bits and DRAM row locality survive translation. Fold
        // the high bits down so physical addresses stay compact.
        return vpn & 0xFFFFF;
    }
    // Uncolored mapping: mostly linear (pages are largely allocated in
    // order at program start) with every 32nd page displaced by a
    // hash, the way an unconstrained free-page list fragments. The
    // displaced pages cost extra L2 conflicts and DRAM row misses that
    // a page-coloring allocator would have avoided.
    if ((vpn & 31) != 0)
        return vpn & 0xFFFFF;
    Addr h = vpn * 0x9E3779B97F4A7C15ULL;
    return (h >> 40) & 0xFFFFF;
}

Addr
Tlb::translateProbe(Addr vaddr) const
{
    return (mapPage(vpnOf(vaddr)) << _pageShift) |
           (vaddr & Addr(_p.pageBytes - 1));
}

TlbResult
Tlb::translate(Addr vaddr, Cycle now)
{
    ++_lookups;

    Addr vpn = vpnOf(vaddr);
    TlbResult res;
    res.paddr = (mapPage(vpn) << _pageShift) |
                (vaddr & Addr(_p.pageBytes - 1));

    for (Entry &e : _entries) {
        if (e.vpn == vpn) {
            e.lastUse = ++_useTick;
            return res;
        }
    }

    ++_misses;
    res.miss = true;

    if (_p.hardwareWalk) {
        // Walk the page-table levels through the memory hierarchy; the
        // walk delays only this access.
        Cycle at = now;
        for (int level = 0; level < _p.walkLevels; level++) {
            if (_walkTarget) {
                // Derive a pseudo page-table address per level so upper
                // levels hit in the cache across nearby walks.
                Addr pte = 0x7F0000000ULL + ((vpn >> (9 * level)) << 3);
                AccessResult r = _walkTarget->access(pte, false, at);
                at = r.done;
            } else {
                at += 4;
            }
        }
        res.extraLatency = at - now;
    } else {
        // PAL-code refill: the whole pipeline stalls.
        res.pipelineStall = Cycle(_p.palStallCycles);
    }

    // Refill (LRU victim).
    auto victim = std::min_element(
        _entries.begin(), _entries.end(),
        [](const Entry &a, const Entry &b) {
            return a.lastUse < b.lastUse;
        });
    victim->vpn = vpn;
    victim->lastUse = ++_useTick;
    return res;
}

} // namespace simalpha

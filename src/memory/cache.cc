#include "cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace simalpha {

MshrPool::MshrPool(int entries, int targets_per_entry)
    : _entries(entries), _targetsPerEntry(targets_per_entry)
{
    if (entries <= 0)
        fatal("MSHR pool needs at least one entry");
}

void
MshrPool::expire(Cycle now)
{
    std::erase_if(_active,
                  [now](const Entry &e) { return e.fillDone <= now; });
}

Cycle
MshrPool::findMatch(Addr block, Cycle now)
{
    expire(now);
    for (const Entry &e : _active)
        if (e.block == block)
            return e.fillDone;
    return kNoCycle;
}

bool
MshrPool::addTarget(Addr block, Cycle now)
{
    expire(now);
    for (Entry &e : _active) {
        if (e.block == block) {
            if (e.targetsLeft > 0) {
                e.targetsLeft--;
                return true;
            }
            return false;
        }
    }
    return false;
}

Cycle
MshrPool::earliestFree(Cycle now)
{
    expire(now);
    Cycle earliest = kNoCycle;
    for (const Entry &e : _active)
        earliest = std::min(earliest, e.fillDone);
    return earliest;
}

int
MshrPool::entriesInUse(Cycle now)
{
    expire(now);
    return int(_active.size());
}

void
MshrPool::allocate(Addr block, Cycle fill_done, Cycle now, Cycle &avail_at)
{
    expire(now);
    avail_at = now;
    if (int(_active.size()) >= _entries) {
        // Pool full: the miss waits for the earliest outstanding fill.
        _fullStalls++;
        Cycle earliest = earliestFree(now);
        sim_assert(earliest != kNoCycle);
        avail_at = earliest;
        std::erase_if(_active, [earliest](const Entry &e) {
            return e.fillDone <= earliest;
        });
    }
    _active.push_back(Entry{block, fill_done, _targetsPerEntry - 1});
}

Cache::Cache(const CacheParams &params, MemLevel *downstream, Bus *bus,
             MshrPool *shared_mshrs)
    : _p(params),
      _downstream(downstream),
      _bus(bus),
      _ownMshrs(params.mshrEntries, params.mshrTargets),
      _mshrs(shared_mshrs ? shared_mshrs : &_ownMshrs),
      _stats(params.name),
      _hits(_stats.counter("hits")),
      _misses(_stats.counter("misses")),
      _writebacks(_stats.counter("writebacks")),
      _prefetches(_stats.counter("prefetches")),
      _victimHits(_stats.counter("victim_hits")),
      _mshrCombines(_stats.counter("mshr_combines")),
      _mshrTargetStalls(_stats.counter("mshr_target_stalls"))
{
    if (_p.sizeBytes <= 0 || _p.assoc <= 0 || _p.blockBytes <= 0)
        fatal("%s: invalid geometry", _p.name.c_str());
    int blocks = _p.sizeBytes / _p.blockBytes;
    _sets = blocks / _p.assoc;
    if (_sets <= 0 || (_sets & (_sets - 1)) != 0)
        fatal("%s: set count %d must be a power of two",
              _p.name.c_str(), _sets);
    _blockShift = 0;
    while ((1 << _blockShift) < _p.blockBytes)
        _blockShift++;
    if ((1 << _blockShift) != _p.blockBytes)
        fatal("%s: block size must be a power of two", _p.name.c_str());
    _lines.assign(std::size_t(blocks), Line{});
    _victims.assign(std::size_t(_p.victimEntries), VictimEntry{});
    _portFree.assign(std::size_t(std::max(1, _p.ports)), 0);
}

void
Cache::reset()
{
    _lines.assign(_lines.size(), Line{});
    _victims.assign(_victims.size(), VictimEntry{});
    _portFree.assign(_portFree.size(), 0);
    _useTick = 0;
    _insertTick = 0;
    _ownMshrs.reset();
    _stats.reset();
}

Cache::Line *
Cache::findLine(Addr block)
{
    std::size_t set = setOf(block);
    for (int w = 0; w < _p.assoc; w++) {
        Line &line = _lines[set * _p.assoc + w];
        if (line.tag == block)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr block) const
{
    return const_cast<Cache *>(this)->findLine(block);
}

Cache::Line &
Cache::victimLine(std::size_t set)
{
    Line *victim = nullptr;
    for (int w = 0; w < _p.assoc; w++) {
        Line &line = _lines[set * _p.assoc + w];
        if (line.tag == kNoAddr)
            return line;
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    return *victim;
}

Cycle
Cache::acquirePort(Cycle now)
{
    // Pick the port that frees earliest; the access starts when both the
    // request arrives and that port is free.
    auto it = std::min_element(_portFree.begin(), _portFree.end());
    Cycle start = std::max(now, *it);
    *it = start + 1;
    return start;
}

bool
Cache::probe(Addr addr) const
{
    return findLine(blockOf(addr)) != nullptr;
}

int
Cache::wayOf(Addr addr) const
{
    Addr block = blockOf(addr);
    std::size_t set = setOf(block);
    for (int w = 0; w < _p.assoc; w++)
        if (_lines[set * _p.assoc + w].tag == block)
            return w;
    return -1;
}

int
Cache::victimLookup(Addr block)
{
    for (std::size_t i = 0; i < _victims.size(); i++)
        if (_victims[i].block == block)
            return int(i);
    return -1;
}

void
Cache::installBlock(Addr block, bool dirty, Cycle now, bool prefetched)
{
    std::size_t set = setOf(block);
    Line &line = victimLine(set);
    if (line.tag != kNoAddr && !_victims.empty()) {
        // Push the evicted block into the victim buffer (oldest replaced).
        auto oldest = std::min_element(
            _victims.begin(), _victims.end(),
            [](const VictimEntry &a, const VictimEntry &b) {
                return a.inserted < b.inserted;
            });
        if (oldest->block != kNoAddr && oldest->dirty && _downstream) {
            // The displaced victim writes back; occupancy only.
            ++_writebacks;
            _downstream->access(oldest->block << _blockShift, true, now);
        }
        oldest->block = line.tag;
        oldest->dirty = line.dirty;
        oldest->inserted = ++_insertTick;
    } else if (line.tag != kNoAddr && line.dirty && _p.writeback &&
               _downstream) {
        ++_writebacks;
        _downstream->access(line.tag << _blockShift, true, now);
    }
    line.tag = block;
    line.dirty = dirty;
    line.prefetched = prefetched;
    line.fillDone = now;
    line.lastUse = ++_useTick;
}

Cycle
Cache::fillFromBelow(Addr block, Cycle start, bool &below_hit)
{
    below_hit = false;
    if (!_downstream)
        return start;   // perfect backing store
    Cycle request_at = start;
    if (_bus)
        request_at = _bus->transfer(start, 8);  // address beat
    AccessResult below = _downstream->access(block << _blockShift, false,
                                             request_at);
    below_hit = below.hit;
    Cycle data_at = below.done;
    if (_bus)
        data_at = _bus->transfer(data_at, _p.blockBytes);
    return data_at;
}

void
Cache::issuePrefetches(Addr block, Cycle from)
{
    for (int i = 1; i <= _p.prefetchLines; i++) {
        Addr pf_block = block + Addr(i);
        if (findLine(pf_block) ||
            _mshrs->findMatch(pf_block, from) != kNoCycle)
            continue;
        ++_prefetches;
        bool pf_below_hit = false;
        Cycle pf_done = fillFromBelow(pf_block, from, pf_below_hit);
        Cycle pf_avail;
        _mshrs->allocate(pf_block, pf_done, from, pf_avail);
        installBlock(pf_block, false, pf_done, true);
    }
}

AccessResult
Cache::access(Addr addr, bool is_write, Cycle now)
{
    AccessResult res;
    Addr block = blockOf(addr);

    Cycle start = now;
    if (!is_write || _p.storesContend)
        start = acquirePort(now);

    Line *line = findLine(block);
    if (line) {
        ++_hits;
        line->lastUse = ++_useTick;
        if (is_write)
            line->dirty = true;
        if (line->prefetched) {
            // First demand touch of a prefetched block re-arms the
            // sequential stream so it keeps running ahead of fetch.
            line->prefetched = false;
            issuePrefetches(block, start);
        }
        res.hit = line->fillDone <= start;
        res.belowHit = true;
        // A block still in flight delivers when its fill completes.
        res.done = std::max(start + Cycle(_p.hitLatency),
                            line->fillDone);
        return res;
    }

    ++_misses;

    // Victim buffer: a short bounce back into the cache.
    int vidx = victimLookup(block);
    if (vidx >= 0) {
        ++_victimHits;
        bool vdirty = _victims[vidx].dirty || is_write;
        _victims[vidx].block = kNoAddr;
        installBlock(block, vdirty, start);
        res.hit = false;
        res.belowHit = true;
        res.done = start + Cycle(_p.hitLatency) + 1;
        return res;
    }

    // MAF: combine with an outstanding miss to the same block.
    Cycle in_flight = _mshrs->findMatch(block, start);
    if (in_flight != kNoCycle) {
        ++_mshrCombines;
        Cycle done = in_flight;
        if (!_mshrs->addTarget(block, start)) {
            ++_mshrTargetStalls;
            done += 1;
        }
        res.hit = false;
        res.belowHit = true;
        res.done = std::max(done, start + Cycle(_p.hitLatency));
        return res;
    }

    // New miss: allocate a MAF entry (a full pool delays the miss until
    // the earliest outstanding fill frees an entry), then fetch from
    // below and install.
    bool below_hit = false;
    Cycle alloc_start = start;
    Cycle earliest = _mshrs->earliestFree(start);
    if (_mshrs->entriesInUse(start) >= _mshrs->capacity() &&
        earliest != kNoCycle && earliest > start) {
        alloc_start = earliest;
    }
    Cycle fill_done = fillFromBelow(block, alloc_start, below_hit);
    Cycle avail_at;
    _mshrs->allocate(block, fill_done, alloc_start, avail_at);
    if (avail_at > alloc_start)
        fill_done += (avail_at - alloc_start);

    installBlock(block, is_write, fill_done);

    // Sequential prefetch: bring in the next lines (occupancy only; the
    // demand miss does not wait for them).
    issuePrefetches(block, fill_done);

    res.hit = false;
    res.belowHit = below_hit;
    res.done = fill_done + Cycle(_p.hitLatency);
    return res;
}

} // namespace simalpha

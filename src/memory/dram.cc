#include "dram.hh"

#include "common/logging.hh"

namespace simalpha {

const std::vector<std::string> &
dramBackendNames()
{
    static const std::vector<std::string> names = {"classic", "openpage"};
    return names;
}

std::unique_ptr<DramBackend>
makeDramBackend(const DramParams &params)
{
    if (params.backend.empty() || params.backend == "classic")
        return std::make_unique<Dram>(params);
    if (params.backend == "openpage")
        return std::make_unique<OpenPageDram>(params);
    fatal("unknown DRAM backend '%s' (backends: classic, openpage)",
          params.backend.c_str());
}

Dram::Dram(const DramParams &params)
    : _p(params),
      _banks(std::size_t(params.banks)),
      _bus(params.busBytesPerBeat, params.busCpuCyclesPerBeat),
      _stats("dram"),
      _reads(_stats.counter("reads")),
      _writes(_stats.counter("writes")),
      _rowHits(_stats.counter("row_hits")),
      _rowMisses(_stats.counter("row_misses"))
{
    if (_p.banks <= 0 || (_p.banks & (_p.banks - 1)) != 0)
        fatal("DRAM bank count must be a power of two");
    if (_p.rowBytes <= 0 || (_p.rowBytes & (_p.rowBytes - 1)) != 0)
        fatal("DRAM row size must be a power of two");
}

AccessResult
Dram::access(Addr addr, bool is_write, Cycle now)
{
    ++(is_write ? _writes : _reads);

    if (_p.flatLatency > 0) {
        AccessResult flat;
        flat.done = now + Cycle(_p.flatLatency);
        flat.hit = true;
        flat.belowHit = true;
        return flat;
    }

    // Banks interleave on row-sized chunks.
    Addr row = addr / Addr(_p.rowBytes);
    std::size_t bank_idx = std::size_t(row & Addr(_p.banks - 1));
    Bank &bank = _banks[bank_idx];

    const Cycle dram_cycle = Cycle(_p.cpuCyclesPerDramCycle);

    // One-way controller latency before the command reaches the device.
    Cycle cmd_at = now + Cycle(_p.controllerCycles) / 2;
    Cycle start = cmd_at > bank.nextFree ? cmd_at : bank.nextFree;

    Cycle latency = 0;
    if (_p.openPage) {
        if (bank.openRow == row) {
            ++_rowHits;
        } else {
            ++_rowMisses;
            Cycle toggle = Cycle(_p.rasCycles) * dram_cycle;
            if (bank.openRow != kNoAddr)
                toggle += Cycle(_p.prechargeCycles) * dram_cycle;
            if (_p.reorderingController)
                toggle /= 2;    // precharge hidden behind other requests
            latency += toggle;
            bank.openRow = row;
        }
    } else {
        // Closed-page: the row was precharged after the last access, so
        // every access activates, and the precharge after this access
        // overlaps subsequent idle time (charged to bank occupancy).
        ++_rowMisses;
        latency += Cycle(_p.rasCycles) * dram_cycle;
        bank.openRow = kNoAddr;
    }

    latency += Cycle(_p.casCycles) * dram_cycle;

    Cycle data_ready = start + latency;
    bank.nextFree = data_ready;
    if (!_p.openPage)
        bank.nextFree += Cycle(_p.prechargeCycles) * dram_cycle;

    // Transfer one block over the memory bus, then the return-trip
    // controller latency.
    Cycle done = _bus.transfer(data_ready, _p.blockBytes);
    done += Cycle(_p.controllerCycles) - Cycle(_p.controllerCycles) / 2;

    AccessResult res;
    res.done = done;
    res.hit = true;     // DRAM always "hits"
    res.belowHit = true;
    return res;
}

} // namespace simalpha

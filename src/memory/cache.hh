/**
 * @file
 * A set-associative write-back cache timing model with:
 *  - a miss address file (MAF / MSHR, after Kroft) with combining targets,
 *  - an optional victim buffer for evicted blocks,
 *  - port contention,
 *  - optional sequential hardware prefetch on miss (the 21264 I-cache
 *    prefetches up to four lines),
 *  - an optional *shared* MAF pool so several caches can contend for the
 *    same eight entries (the real 21264 shares one MAF among its caches;
 *    sim-alpha gives each cache its own — both are modeled).
 */

#ifndef SIMALPHA_MEMORY_CACHE_HH
#define SIMALPHA_MEMORY_CACHE_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "memory/memlevel.hh"

namespace simalpha {

/**
 * A pool of miss-status registers. Entries expire when their fill
 * completes; allocation while full stalls until the earliest fill.
 */
class MshrPool
{
  public:
    MshrPool(int entries, int targets_per_entry);

    /**
     * Look for an in-flight miss covering `block`.
     * @return fill-completion cycle, or kNoCycle if none
     */
    Cycle findMatch(Addr block, Cycle now);

    /**
     * Add a combining target to an in-flight miss.
     * @return true if a target slot was available
     */
    bool addTarget(Addr block, Cycle now);

    /**
     * Allocate an entry for a new miss.
     * @param now request cycle
     * @param[out] avail_at cycle the allocation can proceed (now, or when
     *             an entry frees if the pool is full)
     * @return true always (allocation may just be delayed)
     */
    void allocate(Addr block, Cycle fill_done, Cycle now, Cycle &avail_at);

    /** Earliest cycle at which any entry frees (kNoCycle if empty). */
    Cycle earliestFree(Cycle now);

    int entriesInUse(Cycle now);
    int capacity() const { return _entries; }

    std::uint64_t fullStalls() const { return _fullStalls; }

    /** Restore freshly-constructed state (campaign core reuse). */
    void
    reset()
    {
        _active.clear();
        _fullStalls = 0;
    }

  private:
    struct Entry
    {
        Addr block = kNoAddr;
        Cycle fillDone = 0;
        int targetsLeft = 0;
    };

    void expire(Cycle now);

    int _entries;
    int _targetsPerEntry;
    std::vector<Entry> _active;
    std::uint64_t _fullStalls = 0;
};

struct CacheParams
{
    std::string name = "cache";
    int sizeBytes = 64 * 1024;
    int assoc = 2;
    int blockBytes = 64;
    int hitLatency = 1;         ///< cycles from access to data
    int ports = 1;              ///< concurrent accesses per cycle
    int mshrEntries = 8;
    int mshrTargets = 4;
    int victimEntries = 0;
    int prefetchLines = 0;      ///< sequential lines prefetched on miss
    bool writeback = true;
    /** Stores occupy a cache port (golden) vs complete unimpeded. */
    bool storesContend = false;
};

class Cache : public MemLevel
{
  public:
    /**
     * @param params geometry and policy
     * @param downstream next level (L2 or DRAM); may be nullptr for a
     *        perfect backing store with zero extra latency
     * @param bus optional bus between this cache and downstream
     * @param shared_mshrs optional externally owned MAF pool; when given,
     *        the private pool is not used
     */
    Cache(const CacheParams &params, MemLevel *downstream,
          Bus *bus = nullptr, MshrPool *shared_mshrs = nullptr);

    AccessResult access(Addr addr, bool is_write, Cycle now) override;

    /** Non-timing probe: would this address hit right now? */
    bool probe(Addr addr) const;

    /**
     * Which way holds this address (for the way predictor)?
     * @return way index, or -1 on miss
     */
    int wayOf(Addr addr) const;

    stats::Group &statGroup() { return _stats; }
    const CacheParams &params() const { return _p; }

    /** Restore freshly-constructed state (campaign core reuse); the
     *  bound counter references stay valid across the reset. */
    void reset();

    /** Total lines across all sets/ways (injection-index folding). */
    std::size_t lineCount() const { return _lines.size(); }

    /**
     * Soft-error injection: XOR one bit of one tag-array entry. Set
     * lookups mask the tag, so an arbitrarily corrupted tag reads as
     * a miss (or a false hit within its set) — timing-visible state
     * only, never out-of-bounds.
     */
    void
    injectTagFlip(std::uint64_t index, std::uint32_t bit)
    {
        _lines[std::size_t(index % _lines.size())].tag ^=
            Addr(1) << (bit % 64);
    }

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    double
    missRate() const
    {
        std::uint64_t total = hits() + misses();
        return total ? double(misses()) / double(total) : 0.0;
    }

  private:
    struct Line
    {
        Addr tag = kNoAddr;     ///< block address (addr >> blockShift)
        bool dirty = false;
        /** Cycle the fill delivering this block completes; accesses that
         *  arrive earlier wait for it (the block is in flight). */
        Cycle fillDone = 0;
        /** Installed by prefetch and not yet demanded: the first demand
         *  hit re-arms the sequential prefetch stream. */
        bool prefetched = false;
        std::uint64_t lastUse = 0;
    };

    struct VictimEntry
    {
        Addr block = kNoAddr;
        bool dirty = false;
        std::uint64_t inserted = 0;
    };

    Addr blockOf(Addr addr) const { return addr >> _blockShift; }
    std::size_t setOf(Addr block) const
    {
        return std::size_t(block & Addr(_sets - 1));
    }

    Line *findLine(Addr block);
    const Line *findLine(Addr block) const;
    Line &victimLine(std::size_t set);
    Cycle acquirePort(Cycle now);
    void installBlock(Addr block, bool dirty, Cycle now,
                      bool prefetched = false);
    Cycle fillFromBelow(Addr block, Cycle start, bool &below_hit);
    int victimLookup(Addr block);
    void issuePrefetches(Addr block, Cycle from);

    CacheParams _p;
    MemLevel *_downstream;
    Bus *_bus;
    MshrPool _ownMshrs;
    MshrPool *_mshrs;

    int _sets;
    int _blockShift;
    std::vector<Line> _lines;
    std::vector<VictimEntry> _victims;
    std::vector<Cycle> _portFree;
    std::uint64_t _useTick = 0;
    std::uint64_t _insertTick = 0;
    stats::Group _stats;
    // Bound once at construction; the string-keyed map stays for
    // registration and dumps only, never on the access path.
    stats::Counter &_hits;
    stats::Counter &_misses;
    stats::Counter &_writebacks;
    stats::Counter &_prefetches;
    stats::Counter &_victimHits;
    stats::Counter &_mshrCombines;
    stats::Counter &_mshrTargetStalls;
};

} // namespace simalpha

#endif // SIMALPHA_MEMORY_CACHE_HH

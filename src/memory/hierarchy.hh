/**
 * @file
 * The full memory hierarchy of the simulated DS-10L: split L1 I/D caches,
 * a unified direct-mapped L2 over a 128-bit backside bus, SDRAM behind a
 * 64-bit memory bus, I/D TLBs, and the virtually-indexed physically-
 * tagged translation path.
 */

#ifndef SIMALPHA_MEMORY_HIERARCHY_HH
#define SIMALPHA_MEMORY_HIERARCHY_HH

#include <memory>

#include "memory/cache.hh"
#include "memory/dram.hh"
#include "memory/tlb.hh"

namespace simalpha {

struct MemorySystemParams
{
    CacheParams l1i;
    CacheParams l1d;
    CacheParams l2;
    DramParams dram;
    TlbParams itlb;
    TlbParams dtlb;
    /** CPU cycles per beat on the 128-bit backside (L2) bus. */
    int l2BusCpuCyclesPerBeat = 2;
    /** One 8-entry MAF shared by all caches (hardware) vs per-cache. */
    bool sharedMaf = false;
    int sharedMafEntries = 8;
    int sharedMafTargets = 4;

    /** The validated DS-10L configuration (Section 4.2). */
    static MemorySystemParams ds10l();
};

/** Outcome of a timed data access through the hierarchy. */
struct MemAccessResult
{
    Cycle done = 0;             ///< data-available cycle
    bool l1Hit = false;
    bool l2Hit = false;         ///< meaningful only when !l1Hit
    bool tlbMiss = false;
    Cycle pipelineStall = 0;    ///< PAL-mode TLB refill stall
};

class MemorySystem
{
  public:
    explicit MemorySystem(const MemorySystemParams &params);

    /** Timed instruction fetch of the octaword containing `pc`. */
    MemAccessResult fetchAccess(Addr pc, Cycle now);

    /** Timed data access. */
    MemAccessResult dataAccess(Addr vaddr, bool is_write, Cycle now);

    /** Would this data address hit in the L1 D-cache right now? */
    bool dcacheProbe(Addr vaddr);

    Cache &icache() { return *_l1i; }
    Cache &dcache() { return *_l1d; }
    Cache &l2cache() { return *_l2; }
    DramBackend &dram() { return *_dram; }
    Tlb &itlb() { return *_itlb; }
    Tlb &dtlb() { return *_dtlb; }

    const MemorySystemParams &params() const { return _p; }

    /**
     * Soft-error injection: flip one tag bit somewhere in the three
     * cache tag arrays, the index folded over their combined line
     * count (so bigger arrays absorb proportionally more strikes).
     * @return one line naming the struck cache and line
     */
    std::string injectCacheTagFlip(std::uint64_t index,
                                   std::uint32_t bit);

    /** Same folding over the two TLBs' vpn tags. */
    std::string injectTlbTagFlip(std::uint64_t index,
                                 std::uint32_t bit);

    /** Restore every level to freshly-constructed state (campaign
     *  core reuse); geometry is fixed by the construction params. */
    void reset();

  private:
    MemorySystemParams _p;
    std::unique_ptr<DramBackend> _dram;
    std::unique_ptr<Cache> _l2;
    std::unique_ptr<Bus> _l2Bus;
    std::unique_ptr<MshrPool> _sharedMaf;
    std::unique_ptr<Cache> _l1i;
    std::unique_ptr<Cache> _l1d;
    std::unique_ptr<Tlb> _itlb;
    std::unique_ptr<Tlb> _dtlb;
};

} // namespace simalpha

#endif // SIMALPHA_MEMORY_HIERARCHY_HH

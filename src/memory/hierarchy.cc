#include "hierarchy.hh"

namespace simalpha {

MemorySystemParams
MemorySystemParams::ds10l()
{
    MemorySystemParams p;

    p.l1i.name = "l1i";
    p.l1i.sizeBytes = 64 * 1024;
    p.l1i.assoc = 2;
    p.l1i.blockBytes = 64;
    p.l1i.hitLatency = 1;
    p.l1i.ports = 1;
    p.l1i.mshrEntries = 8;
    p.l1i.mshrTargets = 4;
    p.l1i.victimEntries = 0;
    p.l1i.prefetchLines = 4;    // fetch-stage hardware prefetch

    p.l1d.name = "l1d";
    p.l1d.sizeBytes = 64 * 1024;
    p.l1d.assoc = 2;
    p.l1d.blockBytes = 64;
    // 3-cycle load-to-use for integer loads (Table 1); the extra cycle of
    // an FP load is charged by the core.
    p.l1d.hitLatency = 3;
    p.l1d.ports = 2;            // double-pumped: two accesses per cycle
    p.l1d.mshrEntries = 8;
    p.l1d.mshrTargets = 4;
    p.l1d.victimEntries = 8;    // the 8-entry victim/write-back buffer
    p.l1d.prefetchLines = 0;

    p.l2.name = "l2";
    p.l2.sizeBytes = 2 * 1024 * 1024;
    p.l2.assoc = 1;             // direct mapped
    p.l2.blockBytes = 64;
    // 13-cycle load-to-use for an L1 miss / L2 hit: the backside bus
    // round trip supplies part of it, the array the rest.
    p.l2.hitLatency = 6;
    p.l2.ports = 1;
    p.l2.mshrEntries = 8;
    p.l2.mshrTargets = 4;
    p.l2.victimEntries = 0;

    p.itlb.name = "itlb";
    p.itlb.entries = 128;
    p.dtlb.name = "dtlb";
    p.dtlb.entries = 128;

    return p;
}

MemorySystem::MemorySystem(const MemorySystemParams &params)
    : _p(params)
{
    _dram = makeDramBackend(_p.dram);
    _l2 = std::make_unique<Cache>(_p.l2, _dram.get());
    // 128-bit backside bus between the L1s and the off-chip L2.
    _l2Bus = std::make_unique<Bus>(16, _p.l2BusCpuCyclesPerBeat);
    if (_p.sharedMaf)
        _sharedMaf = std::make_unique<MshrPool>(_p.sharedMafEntries,
                                                _p.sharedMafTargets);
    _l1i = std::make_unique<Cache>(_p.l1i, _l2.get(), _l2Bus.get(),
                                   _sharedMaf.get());
    _l1d = std::make_unique<Cache>(_p.l1d, _l2.get(), _l2Bus.get(),
                                   _sharedMaf.get());
    _itlb = std::make_unique<Tlb>(_p.itlb, _l2.get());
    _dtlb = std::make_unique<Tlb>(_p.dtlb, _l2.get());
}

void
MemorySystem::reset()
{
    _dram->reset();
    _l2->reset();
    _l2Bus->reset();
    if (_sharedMaf)
        _sharedMaf->reset();
    _l1i->reset();
    _l1d->reset();
    _itlb->reset();
    _dtlb->reset();
}

MemAccessResult
MemorySystem::fetchAccess(Addr pc, Cycle now)
{
    MemAccessResult res;
    // Virtually indexed, physically tagged: the TLB lookup overlaps the
    // array access, so translation costs nothing on a TLB hit.
    TlbResult tr = _itlb->translate(pc, now);
    res.tlbMiss = tr.miss;
    res.pipelineStall = tr.pipelineStall;
    Cycle start = now + tr.extraLatency;

    AccessResult ar = _l1i->access(tr.paddr, false, start);
    res.l1Hit = ar.hit;
    res.l2Hit = ar.belowHit;
    res.done = ar.done;
    return res;
}

MemAccessResult
MemorySystem::dataAccess(Addr vaddr, bool is_write, Cycle now)
{
    MemAccessResult res;
    TlbResult tr = _dtlb->translate(vaddr, now);
    res.tlbMiss = tr.miss;
    res.pipelineStall = tr.pipelineStall;
    Cycle start = now + tr.extraLatency;

    AccessResult ar = _l1d->access(tr.paddr, is_write, start);
    res.l1Hit = ar.hit;
    res.l2Hit = ar.belowHit;
    res.done = ar.done;
    return res;
}

bool
MemorySystem::dcacheProbe(Addr vaddr)
{
    return _l1d->probe(_dtlb->translateProbe(vaddr));
}

std::string
MemorySystem::injectCacheTagFlip(std::uint64_t index,
                                 std::uint32_t bit)
{
    Cache *caches[] = {_l1i.get(), _l1d.get(), _l2.get()};
    std::size_t total = 0;
    for (Cache *c : caches)
        total += c->lineCount();
    std::size_t i = std::size_t(index % total);
    for (Cache *c : caches) {
        if (i < c->lineCount()) {
            c->injectTagFlip(i, bit);
            return c->params().name + " line " + std::to_string(i) +
                   " tag bit " + std::to_string(bit % 64);
        }
        i -= c->lineCount();
    }
    return "";
}

std::string
MemorySystem::injectTlbTagFlip(std::uint64_t index, std::uint32_t bit)
{
    Tlb *tlbs[] = {_itlb.get(), _dtlb.get()};
    std::size_t total = 0;
    for (Tlb *t : tlbs)
        total += t->entryCount();
    std::size_t i = std::size_t(index % total);
    for (Tlb *t : tlbs) {
        if (i < t->entryCount()) {
            t->injectTagFlip(i, bit);
            return t->params().name + " entry " + std::to_string(i) +
                   " vpn bit " + std::to_string(bit % 64);
        }
        i -= t->entryCount();
    }
    return "";
}

} // namespace simalpha

/**
 * @file
 * The `openpage` DRAM backend: row-buffer policy with bank conflicts,
 * write-to-read turnaround, a serializing command bus, and FR-FCFS-style
 * promotion of row-buffer hits past queued row-miss work.
 *
 * The model stays synchronous latency-bookkeeping like the rest of the
 * hierarchy: each access computes its data-ready cycle immediately while
 * reserving bank, command-bus, and data-bus occupancy so later requests
 * observe the contention. Determinism therefore only depends on the
 * access sequence, which campaign cells already fix.
 */

#include "dram.hh"

#include "common/logging.hh"

namespace simalpha {

OpenPageDram::OpenPageDram(const DramParams &params)
    : _p(params),
      _banks(std::size_t(params.banks)),
      _cmdBus(1, 1),
      _dataBus(params.busBytesPerBeat, params.busCpuCyclesPerBeat),
      _stats("dram"),
      _reads(_stats.counter("reads")),
      _writes(_stats.counter("writes")),
      _rowHits(_stats.counter("row_hits")),
      _rowMisses(_stats.counter("row_misses")),
      _conflicts(_stats.counter("bank_conflicts")),
      _promotions(_stats.counter("frfcfs_promotions"))
{
    if (_p.banks <= 0 || (_p.banks & (_p.banks - 1)) != 0)
        fatal("DRAM bank count must be a power of two");
    if (_p.rowBytes <= 0 || (_p.rowBytes & (_p.rowBytes - 1)) != 0)
        fatal("DRAM row size must be a power of two");
}

AccessResult
OpenPageDram::access(Addr addr, bool is_write, Cycle now)
{
    ++(is_write ? _writes : _reads);

    const Cycle dram_cycle = Cycle(_p.cpuCyclesPerDramCycle);

    // One-way controller latency, then one cycle on the shared command
    // bus — commands to different banks still serialize here.
    Cycle cmd_at = now + Cycle(_p.controllerCycles) / 2;
    cmd_at = _cmdBus.transfer(cmd_at, 1);

    Addr row = addr / Addr(_p.rowBytes);
    std::size_t bank_idx = std::size_t(row & Addr(_p.banks - 1));
    Bank &bank = _banks[bank_idx];

    bool row_hit = bank.openRow == row;
    Cycle start = cmd_at;
    if (bank.nextFree > start) {
        ++_conflicts;
        Cycle wait = bank.nextFree - start;
        if (row_hit) {
            // FR-FCFS flavor: an open-row hit is scheduled ahead of the
            // precharge/activate work queued behind the bank, clawing
            // back up to one precharge of the queueing delay.
            Cycle credit = Cycle(_p.prechargeCycles) * dram_cycle;
            if (credit > wait)
                credit = wait;
            if (credit > 0) {
                ++_promotions;
                wait -= credit;
            }
        }
        start += wait;
    }

    Cycle latency = 0;
    if (row_hit) {
        ++_rowHits;
    } else {
        ++_rowMisses;
        if (bank.openRow != kNoAddr)
            latency += Cycle(_p.prechargeCycles) * dram_cycle;
        latency += Cycle(_p.rasCycles) * dram_cycle;
        bank.openRow = row;
    }
    // Write-to-read turnaround: the data bus must drain the write
    // before the bank can drive read data.
    if (!is_write && bank.lastWasWrite)
        latency += Cycle(_p.writeToReadCycles) * dram_cycle;
    latency += Cycle(_p.casCycles) * dram_cycle;

    Cycle data_ready = start + latency;
    bank.nextFree = data_ready;
    bank.lastWasWrite = is_write;

    Cycle done = _dataBus.transfer(data_ready, _p.blockBytes);
    done += Cycle(_p.controllerCycles) - Cycle(_p.controllerCycles) / 2;

    AccessResult res;
    res.done = done;
    res.hit = true;
    res.belowHit = true;
    return res;
}

} // namespace simalpha

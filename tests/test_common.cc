/**
 * @file
 * Unit tests for the common foundation: statistics, configuration,
 * deterministic RNG, and logging counters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"

using namespace simalpha;

TEST(Counter, StartsAtZeroAndIncrements)
{
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    ++c;
    EXPECT_EQ(c.value(), 2u);
    c += 40;
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, SetAndReset)
{
    stats::Counter c;
    c.set(100);
    EXPECT_EQ(c.value(), 100u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, BucketsSamplesCorrectly)
{
    stats::Distribution d(0, 9, 1);
    d.sample(0);
    d.sample(5);
    d.sample(5);
    d.sample(9);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_EQ(d.bucketCount(5), 2u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.overflow(), 0u);
}

TEST(Distribution, OverflowTracked)
{
    stats::Distribution d(0, 9, 1);
    d.sample(100);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.samples(), 1u);
}

TEST(Distribution, MeanComputed)
{
    stats::Distribution d(0, 63, 1);
    d.sample(2);
    d.sample(4);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(Distribution, WideBuckets)
{
    stats::Distribution d(0, 99, 10);
    d.sample(5);
    d.sample(15);
    d.sample(19);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
}

TEST(StatsGroup, CounterLazilyCreated)
{
    stats::Group g("test");
    EXPECT_FALSE(g.has("events"));
    ++g.counter("events");
    EXPECT_TRUE(g.has("events"));
    EXPECT_EQ(g.get("events"), 1u);
}

TEST(StatsGroup, GetOfUnknownCounterIsZero)
{
    stats::Group g("test");
    EXPECT_EQ(g.get("nothing"), 0u);
}

TEST(StatsGroup, ResetClearsEverything)
{
    stats::Group g("test");
    g.counter("a") += 5;
    g.distribution("d").sample(3);
    g.reset();
    EXPECT_EQ(g.get("a"), 0u);
    EXPECT_EQ(g.distribution("d").samples(), 0u);
}

TEST(StatsGroup, DumpIncludesNameAndFormulas)
{
    stats::Group g("m");
    g.counter("x").set(7);
    g.formula("twice_x", [&]() { return double(g.get("x")) * 2; });
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("m.x 7"), std::string::npos);
    EXPECT_NE(out.find("m.twice_x 14"), std::string::npos);
}

TEST(StatsGroup, CounterNamesSorted)
{
    stats::Group g("m");
    g.counter("zeta");
    g.counter("alpha");
    auto names = g.counterNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(Means, ArithmeticMean)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(Means, HarmonicMean)
{
    // Harmonic mean of 1 and 3 is 1.5.
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 3.0}), 1.5);
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0, 2.0}), 2.0);
}

TEST(Means, HarmonicLessThanArithmetic)
{
    std::vector<double> xs{0.5, 1.0, 4.0};
    EXPECT_LT(harmonicMean(xs), arithmeticMean(xs));
}

TEST(Means, StdDeviation)
{
    EXPECT_DOUBLE_EQ(stdDeviation({2.0, 2.0}), 0.0);
    EXPECT_NEAR(stdDeviation({1.0, 3.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(stdDeviation({5.0}), 0.0);
}

TEST(Config, TypedRoundTrip)
{
    Config c;
    c.set("width", std::int64_t(4));
    c.set("enabled", true);
    c.set("rate", 0.25);
    c.set("name", "sim-alpha");
    EXPECT_EQ(c.getInt("width"), 4);
    EXPECT_TRUE(c.getBool("enabled"));
    EXPECT_DOUBLE_EQ(c.getDouble("rate"), 0.25);
    EXPECT_EQ(c.getString("name"), "sim-alpha");
}

TEST(Config, DefaultsWhenMissing)
{
    Config c;
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_TRUE(c.getBool("missing", true));
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
    EXPECT_EQ(c.getString("missing", "dflt"), "dflt");
}

TEST(Config, HasAndOverwrite)
{
    Config c;
    EXPECT_FALSE(c.has("k"));
    c.set("k", std::int64_t(1));
    EXPECT_TRUE(c.has("k"));
    c.set("k", std::int64_t(2));
    EXPECT_EQ(c.getInt("k"), 2);
}

TEST(Config, MergeOtherWins)
{
    Config a, b;
    a.set("x", std::int64_t(1));
    a.set("y", std::int64_t(2));
    b.set("y", std::int64_t(20));
    a.merge(b);
    EXPECT_EQ(a.getInt("x"), 1);
    EXPECT_EQ(a.getInt("y"), 20);
}

TEST(Config, KeysSorted)
{
    Config c;
    c.set("b", std::int64_t(1));
    c.set("a", std::int64_t(1));
    auto keys = c.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "a");
}

TEST(Random, Deterministic)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 3);
}

TEST(Random, BelowInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(r.below(10), 10u);
}

TEST(Random, UnitInRange)
{
    Random r(9);
    for (int i = 0; i < 1000; i++) {
        double u = r.unit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, ChanceExtremes)
{
    Random r(11);
    for (int i = 0; i < 100; i++) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Logging, WarnCountIncrements)
{
    setQuiet(true);
    std::uint64_t before = warnCount();
    warn("test warning %d", 1);
    EXPECT_EQ(warnCount(), before + 1);
}

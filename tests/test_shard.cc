/**
 * @file
 * The shard protocol behind `--isolate=process` (`ctest -L proc`):
 * cell-slice round-robin, the exec-able cell-list and fault-spec
 * encodings, heartbeat lines, the waitpid-status → error-class
 * mapping, the shard-journal merge (duplicate entries across shards,
 * stale manifest hashes, torn final lines), and the in-process worker
 * entry point `runShardWorker`.
 *
 * Everything here runs inside the test process; the actual fork/exec
 * supervision is exercised end-to-end in test_supervisor.cc.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "runner/artifacts.hh"
#include "runner/campaign.hh"
#include "runner/journal.hh"
#include "runner/runner.hh"
#include "runner/shard.hh"

using namespace simalpha;
using namespace simalpha::runner;
using validate::Optimization;

namespace {

std::string
uniquePath(const std::string &stem)
{
    return testing::TempDir() + "simalpha-shard-" + stem + "-" +
           std::to_string(::getpid()) + ".jsonl";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

/** A journal line for @p cell as a completed-ok result with the given
 *  cycle count, carrying the current manifest hash so the merge
 *  accepts it. */
std::string
okLine(const std::string &campaign, const Cell &cell, Cycle cycles)
{
    CellResult r;
    r.cell = cell;
    r.seed = cellSeed(cell);
    r.ok = true;
    r.cycles = cycles;
    r.instsCommitted = cell.maxInsts;
    r.finished = false;
    r.manifestHash = cellManifestHash(cell);
    return journalLine(campaign, r);
}

} // namespace

// ---------------------------------------------------------------------
// Cell slicing and the exec-able encodings
// ---------------------------------------------------------------------

TEST(ShardProtocol, RoundRobinCoversEveryCellExactlyOnce)
{
    auto shards = shardCells(10, 3);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0], (std::vector<std::size_t>{0, 3, 6, 9}));
    EXPECT_EQ(shards[1], (std::vector<std::size_t>{1, 4, 7}));
    EXPECT_EQ(shards[2], (std::vector<std::size_t>{2, 5, 8}));

    // More shards than cells: the surplus shards are empty, no cell
    // is lost or duplicated.
    auto sparse = shardCells(2, 5);
    ASSERT_EQ(sparse.size(), 5u);
    EXPECT_EQ(sparse[0], (std::vector<std::size_t>{0}));
    EXPECT_EQ(sparse[1], (std::vector<std::size_t>{1}));
    for (std::size_t i = 2; i < 5; i++)
        EXPECT_TRUE(sparse[i].empty());

    // Degenerate shard count is clamped, never a division by zero.
    auto one = shardCells(4, 0);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ShardProtocol, CellListRoundTrips)
{
    std::vector<std::size_t> cells = {0, 3, 17, 442};
    std::string text = formatCellList(cells);
    EXPECT_EQ(text, "0,3,17,442");

    std::vector<std::size_t> parsed;
    std::string error;
    ASSERT_TRUE(parseCellList(text, &parsed, &error)) << error;
    EXPECT_EQ(parsed, cells);

    EXPECT_FALSE(parseCellList("", &parsed, &error));
    EXPECT_FALSE(parseCellList("1,,2", &parsed, &error));
    EXPECT_FALSE(parseCellList("1,x", &parsed, &error));
}

TEST(ShardProtocol, FaultSpecRoundTripsEveryKind)
{
    for (FaultInjection::Kind kind :
         {FaultInjection::Kind::Panic, FaultInjection::Kind::Stall,
          FaultInjection::Kind::Throw, FaultInjection::Kind::Abort,
          FaultInjection::Kind::Segfault, FaultInjection::Kind::Hang})
        for (int times : {-1, 0, 2}) {
            FaultInjection fault{17, kind, times};
            FaultInjection parsed;
            std::string error;
            ASSERT_TRUE(parseFaultSpec(formatFaultSpec(fault), &parsed,
                                       &error))
                << error;
            EXPECT_EQ(parsed.cellIndex, fault.cellIndex);
            EXPECT_EQ(parsed.kind, fault.kind);
            EXPECT_EQ(parsed.times, fault.times);
        }

    FaultInjection parsed;
    std::string error;
    EXPECT_FALSE(parseFaultSpec("17", &parsed, &error));
    EXPECT_FALSE(parseFaultSpec(":segfault", &parsed, &error));
    EXPECT_FALSE(parseFaultSpec("x:segfault", &parsed, &error));
    EXPECT_FALSE(parseFaultSpec("17:frobnicate", &parsed, &error));
    EXPECT_NE(error.find("frobnicate"), std::string::npos) << error;
    EXPECT_FALSE(parseFaultSpec("17:hang:x", &parsed, &error));
}

// ---------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------

TEST(ShardProtocol, HeartbeatLineRoundTrips)
{
    std::string line = heartbeatLine("smoke", 7, "C-S2");
    EXPECT_EQ(line.find('\n'), std::string::npos);

    std::size_t cell = 0;
    EXPECT_TRUE(parseHeartbeatLine(line, "smoke", &cell));
    EXPECT_EQ(cell, 7u);

    // Wrong campaign, result lines, and torn lines are all rejected —
    // the same read-what-we-write contract the journal parser follows.
    EXPECT_FALSE(parseHeartbeatLine(line, "table4", &cell));
    EXPECT_FALSE(
        parseHeartbeatLine(line.substr(0, line.size() / 2), "smoke",
                           &cell));
    Cell c{"sim-outorder", Optimization::None, "C-Ca", 2000, 0};
    EXPECT_FALSE(parseHeartbeatLine(okLine("smoke", c, 100), "smoke",
                                    &cell));
}

// ---------------------------------------------------------------------
// Wait-status → error-class mapping (real statuses via fork/exec)
// ---------------------------------------------------------------------

TEST(ShardProtocol, WaitStatusMapping)
{
    std::string cls, msg;

    // system(3) returns a genuine waitpid status, so the mapping is
    // exercised against statuses the kernel actually produces.
    EXPECT_TRUE(describeWaitStatus(std::system("exit 0"), &cls, &msg));
    EXPECT_TRUE(cls.empty());

    EXPECT_FALSE(describeWaitStatus(std::system("exit 3"), &cls, &msg));
    EXPECT_EQ(cls, "crash");
    EXPECT_NE(msg.find("status 3"), std::string::npos) << msg;

    EXPECT_FALSE(describeWaitStatus(
        std::system("kill -SEGV $$ 2>/dev/null"), &cls, &msg));
    EXPECT_EQ(cls, "crash");
    EXPECT_NE(msg.find("signal 11"), std::string::npos) << msg;

    EXPECT_FALSE(describeWaitStatus(
        std::system("kill -ABRT $$ 2>/dev/null"), &cls, &msg));
    EXPECT_EQ(cls, "crash");
    EXPECT_NE(msg.find("signal 6"), std::string::npos) << msg;

    EXPECT_FALSE(describeWaitStatus(
        std::system("kill -KILL $$ 2>/dev/null"), &cls, &msg));
    EXPECT_EQ(cls, "crash");
    EXPECT_NE(msg.find("signal 9"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------
// Shard-journal merge
// ---------------------------------------------------------------------

TEST(ShardMerge, SpecOrderedMergeAcrossShardJournals)
{
    CampaignSpec spec = smokeCampaign();
    auto slices = shardCells(spec.cells.size(), 3);

    // Three shard journals, each covering its slice.
    std::vector<std::string> paths;
    for (std::size_t s = 0; s < slices.size(); s++) {
        std::string path = uniquePath("merge" + std::to_string(s));
        std::string content;
        for (std::size_t index : slices[s]) {
            content += heartbeatLine(spec.name, index,
                                     spec.cells[index].workload);
            content += '\n';
            content += okLine(spec.name, spec.cells[index],
                              Cycle(1000 + index));
            content += '\n';
        }
        writeFile(path, content);
        paths.push_back(path);
    }

    CampaignResult merged;
    std::vector<std::size_t> missing;
    mergeShardJournals(spec, paths, &merged, &missing);
    EXPECT_TRUE(missing.empty());
    ASSERT_EQ(merged.cells.size(), spec.cells.size());
    for (std::size_t i = 0; i < spec.cells.size(); i++) {
        EXPECT_TRUE(merged.cells[i].ok);
        EXPECT_EQ(merged.cells[i].cycles, Cycle(1000 + i)) << i;
        EXPECT_EQ(merged.cells[i].cell.workload,
                  spec.cells[i].workload);
    }
    for (const std::string &path : paths)
        std::remove(path.c_str());
}

TEST(ShardMerge, DuplicateCellAcrossShardsLaterJournalWins)
{
    CampaignSpec spec = smokeCampaign();
    // Both journals claim cell 0 — as after a respawn that re-ran a
    // cell whose result line raced the worker's death. The merge must
    // pick exactly one, deterministically: the later journal.
    std::string a = uniquePath("dup-a"), b = uniquePath("dup-b");
    writeFile(a, okLine(spec.name, spec.cells[0], 111) + "\n");
    writeFile(b, okLine(spec.name, spec.cells[0], 222) + "\n");

    CampaignResult merged;
    std::vector<std::size_t> missing;
    mergeShardJournals(spec, {a, b}, &merged, &missing);
    EXPECT_EQ(merged.cells[0].cycles, 222u);

    mergeShardJournals(spec, {b, a}, &merged, &missing);
    EXPECT_EQ(merged.cells[0].cycles, 111u);

    // Within one journal it is newest-wins, matching --resume replay.
    writeFile(a, okLine(spec.name, spec.cells[0], 111) + "\n" +
                     okLine(spec.name, spec.cells[0], 333) + "\n");
    mergeShardJournals(spec, {a}, &merged, &missing);
    EXPECT_EQ(merged.cells[0].cycles, 333u);

    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(ShardMerge, StaleManifestHashIsRejected)
{
    CampaignSpec spec = smokeCampaign();
    std::string path = uniquePath("stale");
    std::string line = okLine(spec.name, spec.cells[0], 123);
    std::size_t at = line.find("\"manifest_hash\":\"");
    ASSERT_NE(at, std::string::npos);
    line.replace(at + 17, 4, "zzzz");   // not hex: never matches
    writeFile(path, line + "\n");

    CampaignResult merged;
    std::vector<std::size_t> missing;
    mergeShardJournals(spec, {path}, &merged, &missing);
    EXPECT_FALSE(merged.cells[0].ok);
    ASSERT_FALSE(missing.empty());
    EXPECT_EQ(missing.front(), 0u);
    // The unusable cell still carries its identity and seed, so the
    // supervisor can report it coherently.
    EXPECT_EQ(merged.cells[0].cell.workload, spec.cells[0].workload);
    EXPECT_EQ(merged.cells[0].seed, cellSeed(spec.cells[0]));
    std::remove(path.c_str());
}

TEST(ShardMerge, TruncatedFinalLineIsIgnored)
{
    CampaignSpec spec = smokeCampaign();
    std::string path = uniquePath("torn");
    // Cell 0 settled; cell 1's line was torn mid-write by a kill.
    std::string torn = okLine(spec.name, spec.cells[1], 456);
    writeFile(path, okLine(spec.name, spec.cells[0], 123) + "\n" +
                        torn.substr(0, torn.size() / 2));

    CampaignResult merged;
    std::vector<std::size_t> missing;
    mergeShardJournals(spec, {path}, &merged, &missing);
    EXPECT_TRUE(merged.cells[0].ok);
    EXPECT_EQ(merged.cells[0].cycles, 123u);
    EXPECT_FALSE(merged.cells[1].ok);
    ASSERT_EQ(missing.size(), spec.cells.size() - 1);
    EXPECT_EQ(missing.front(), 1u);
    std::remove(path.c_str());
}

TEST(ShardMerge, MissingJournalFilesAreSkipped)
{
    CampaignSpec spec = smokeCampaign();
    CampaignResult merged;
    std::vector<std::size_t> missing;
    mergeShardJournals(spec, {uniquePath("never-written")}, &merged,
                       &missing);
    EXPECT_EQ(missing.size(), spec.cells.size());
    for (const CellResult &r : merged.cells)
        EXPECT_FALSE(r.ok);
}

// ---------------------------------------------------------------------
// The worker entry point, in-process
// ---------------------------------------------------------------------

TEST(ShardWorker, SliceJournalAlternatesHeartbeatAndResult)
{
    std::string path = uniquePath("worker");
    std::remove(path.c_str());

    ShardWorkerOptions opts;
    opts.campaign = "smoke";
    opts.cells = {0, 3, 6};
    opts.journalPath = path;
    EXPECT_EQ(runShardWorker(opts), 0);

    CampaignSpec spec = smokeCampaign();
    std::istringstream lines(readFile(path));
    std::string line;
    std::vector<std::size_t> started, settled;
    while (std::getline(lines, line)) {
        std::size_t cell = 0;
        CellResult r;
        std::string key;
        if (parseHeartbeatLine(line, "smoke", &cell))
            started.push_back(cell);
        else if (parseJournalLine(line, "smoke", &r, &key))
            settled.push_back(SIZE_MAX);   // order checked below
        else
            FAIL() << "unparseable journal line: " << line;
    }
    // Strict alternation: every cell announces itself before running.
    EXPECT_EQ(started, opts.cells);
    EXPECT_EQ(settled.size(), opts.cells.size());

    // And the merge of that journal equals an in-process run of the
    // same cells, byte for byte.
    CampaignResult merged;
    std::vector<std::size_t> missing;
    mergeShardJournals(spec, {path}, &merged, &missing);
    EXPECT_EQ(missing.size(), spec.cells.size() - opts.cells.size());

    RunnerOptions ro;
    ro.jobs = 1;
    ro.cache = false;
    CampaignResult direct = ExperimentRunner(ro).run(spec);
    for (std::size_t index : opts.cells)
        EXPECT_EQ(journalLine("smoke", merged.cells[index]),
                  journalLine("smoke", direct.cells[index]))
            << "cell " << index;
    std::remove(path.c_str());
}

TEST(ShardWorker, BadOptionsReturnConfigExitCode)
{
    std::string path = uniquePath("badopts");
    ShardWorkerOptions opts;
    opts.campaign = "no-such-campaign";
    opts.cells = {0};
    opts.journalPath = path;
    EXPECT_EQ(runShardWorker(opts), 2);

    opts.campaign = "smoke";
    opts.cells = {9999};    // out of range for the 12-cell smoke grid
    EXPECT_EQ(runShardWorker(opts), 2);
    std::remove(path.c_str());
}

TEST(ShardWorker, InterruptedFlagStopsBeforeNextCell)
{
    std::string path = uniquePath("interrupted");
    std::remove(path.c_str());
    volatile std::sig_atomic_t flag = 1;

    ShardWorkerOptions opts;
    opts.campaign = "smoke";
    opts.cells = {0, 1};
    opts.journalPath = path;
    opts.interrupted = &flag;
    EXPECT_EQ(runShardWorker(opts), 3);
    // Pre-set flag: nothing ran, nothing was journaled — the
    // supervisor treats these cells as simply not attempted.
    EXPECT_TRUE(readFile(path).empty());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Respawn backoff: deterministic, bounded, desynchronized per shard
// ---------------------------------------------------------------------

TEST(ShardProtocol, RespawnBackoffIsDeterministicBoundedAndJittered)
{
    for (int respawn = 0; respawn < 8; respawn++) {
        double d1 = respawnBackoffSeconds(0.5, respawn, 3);
        double d2 = respawnBackoffSeconds(0.5, respawn, 3);
        EXPECT_EQ(d1, d2);      // reproducible schedule
        double nominal = 0.5 * double(1u << respawn);
        EXPECT_GE(d1, nominal * 0.75);
        EXPECT_LT(d1, nominal * 1.25);
    }
    // Two crashed shards never hammer the respawn path in lockstep.
    bool differs = false;
    for (int respawn = 0; respawn < 8; respawn++)
        if (respawnBackoffSeconds(0.5, respawn, 0) !=
            respawnBackoffSeconds(0.5, respawn, 1))
            differs = true;
    EXPECT_TRUE(differs);
    // The exponent is clamped: a pathological respawn count stays a
    // finite delay, not an overflowed shift.
    double huge = respawnBackoffSeconds(0.5, 1000, 0);
    EXPECT_GT(huge, 0.0);
    EXPECT_EQ(huge, respawnBackoffSeconds(0.5, 31, 0));
}

/**
 * @file
 * The pluggable DRAM backend (`ctest -L dram`): the factory and name
 * registry, determinism and reset() of both backends, the openpage
 * model's row-buffer/turnaround properties, the `+dram=<backend>`
 * machine-name suffix (including the invariant that `+dram=classic`
 * changes nothing — manifest, store keys, and cycle counts must stay
 * byte-identical to the bare name), and the dramsweep campaign's cell
 * grammar. Run under -DSIMALPHA_SANITIZE=address and =undefined: the
 * bank model indexes per-bank state straight off address bits.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "memory/dram.hh"
#include "runner/campaign.hh"
#include "validate/machines.hh"
#include "validate/manifest.hh"

using namespace simalpha;
using simalpha::runner::CampaignSpec;

namespace {

/** Replay one access pattern, returning each access's done cycle. */
std::vector<Cycle>
replay(DramBackend &d, const std::vector<std::pair<Addr, bool>> &seq)
{
    std::vector<Cycle> done;
    Cycle now = 0;
    for (const auto &[addr, is_write] : seq) {
        AccessResult r = d.access(addr, is_write, now);
        done.push_back(r.done);
        now += 2;
    }
    return done;
}

/** A mixed pattern: row hits, row conflicts, and write-read turns. */
std::vector<std::pair<Addr, bool>>
mixedPattern()
{
    std::vector<std::pair<Addr, bool>> seq;
    for (int i = 0; i < 40; i++) {
        Addr row = Addr(i % 3) * 0x10000;       // three rows, same banks
        seq.push_back({row + Addr(i) * 64, i % 5 == 0});
    }
    return seq;
}

} // namespace

TEST(DramBackend, RegistryListsEveryConstructibleBackend)
{
    const std::vector<std::string> &names = dramBackendNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_NE(std::find(names.begin(), names.end(), "classic"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "openpage"),
              names.end());
    for (const std::string &n : names) {
        DramParams p;
        p.backend = n;
        std::unique_ptr<DramBackend> d = makeDramBackend(p);
        ASSERT_NE(d, nullptr) << n;
        EXPECT_EQ(d->backendName(), n);
    }
}

TEST(DramBackend, ClassicIsDeterministicAndResetRestoresFreshState)
{
    DramParams p;
    Dram a(p), b(p);
    std::vector<Cycle> first = replay(a, mixedPattern());
    EXPECT_EQ(first, replay(b, mixedPattern()));
    EXPECT_GT(a.rowHits() + a.rowMisses(), 0u);

    a.reset();
    EXPECT_EQ(a.rowHits(), 0u);
    EXPECT_EQ(a.rowMisses(), 0u);
    EXPECT_EQ(replay(a, mixedPattern()), first)
        << "reset() did not restore freshly-constructed timing";
}

TEST(DramBackend, OpenPageIsDeterministicAndResetRestoresFreshState)
{
    DramParams p;
    p.backend = "openpage";
    OpenPageDram a(p), b(p);
    std::vector<Cycle> first = replay(a, mixedPattern());
    EXPECT_EQ(first, replay(b, mixedPattern()));

    a.reset();
    EXPECT_EQ(a.rowHits(), 0u);
    EXPECT_EQ(a.rowMisses(), 0u);
    EXPECT_EQ(replay(a, mixedPattern()), first);
}

TEST(DramBackend, OpenPageRowBufferHitsAreCheaperThanMisses)
{
    DramParams p;
    p.backend = "openpage";
    OpenPageDram d(p);

    // Back-to-back reads in one row: the second is a row-buffer hit.
    Cycle miss = d.access(0x0, false, 0).done;
    Cycle hit = d.access(0x40, false, miss + 100).done - (miss + 100);
    EXPECT_EQ(d.rowHits(), 1u);
    EXPECT_EQ(d.rowMisses(), 1u);
    EXPECT_LT(hit, miss) << "a row hit should be cheaper than the "
                            "activate it skipped";

    // Same bank, different row: precharge + activate again.
    Cycle far = miss + 1000;
    Cycle conflict = d.access(0x100000, false, far).done - far;
    EXPECT_GT(conflict, hit);
    EXPECT_EQ(d.rowMisses(), 2u);
}

TEST(DramBackend, OpenPageChargesWriteToReadTurnaround)
{
    DramParams p;
    p.backend = "openpage";

    // Read-after-read vs read-after-write on one open row, with long
    // idle gaps so bus/bank occupancy can't mask the turnaround.
    OpenPageDram rr(p);
    rr.access(0x0, false, 0);
    Cycle after_read = rr.access(0x40, false, 1000).done - 1000;

    OpenPageDram wr(p);
    wr.access(0x0, true, 0);
    Cycle after_write = wr.access(0x40, false, 1000).done - 1000;

    EXPECT_GT(after_write, after_read)
        << "write-to-read turnaround was not charged";
}

TEST(DramMachine, SuffixSelectsBackendAndClassicIsTheDefault)
{
    std::string error;
    std::unique_ptr<Machine> open = validate::tryMakeMachine(
        "sim-alpha+dram=openpage", validate::Optimization::None,
        &error);
    ASSERT_NE(open, nullptr) << error;
    EXPECT_NE(open->name().find("+dram=openpage"), std::string::npos);

    // `+dram=classic` is the default spelled out: same machine name,
    // and (below) the same manifest and cycle counts.
    std::unique_ptr<Machine> classic = validate::tryMakeMachine(
        "sim-alpha+dram=classic", validate::Optimization::None,
        &error);
    ASSERT_NE(classic, nullptr) << error;
    EXPECT_EQ(classic->name(), "sim-alpha");

    EXPECT_TRUE(validate::isKnownMachine("sim-outorder+dram=openpage"));
    EXPECT_FALSE(validate::isKnownMachine("sim-alpha+dram=bogus"));
}

TEST(DramMachine, UnknownBackendIsASoftReportableError)
{
    std::string error;
    std::unique_ptr<Machine> m = validate::tryMakeMachine(
        "sim-alpha+dram=bogus", validate::Optimization::None, &error);
    EXPECT_EQ(m, nullptr);
    EXPECT_NE(error.find("bogus"), std::string::npos) << error;
    EXPECT_NE(error.find("openpage"), std::string::npos)
        << "the error should list the valid backends: " << error;
}

TEST(DramMachine, ManifestRecordsBackendOnlyWhenNonDefault)
{
    std::string error;
    Config bare, classic, open;
    ASSERT_TRUE(validate::tryDescribeMachine(
        "sim-alpha", validate::Optimization::None, &bare, &error))
        << error;
    ASSERT_TRUE(validate::tryDescribeMachine(
        "sim-alpha+dram=classic", validate::Optimization::None,
        &classic, &error))
        << error;
    ASSERT_TRUE(validate::tryDescribeMachine(
        "sim-alpha+dram=openpage", validate::Optimization::None,
        &open, &error))
        << error;

    // The invariant every pre-existing golden hash and store key rides
    // on: classic — spelled or defaulted — emits no dram.backend key.
    EXPECT_FALSE(bare.has("dram.backend"));
    EXPECT_FALSE(classic.has("dram.backend"));
    EXPECT_EQ(bare.keys(), classic.keys());

    EXPECT_TRUE(open.has("dram.backend"));
    EXPECT_EQ(open.getString("dram.backend"), "openpage");
    EXPECT_TRUE(open.has("dram.write_to_read_cycles"));
}

TEST(DramMachine, ClassicSuffixRunsCycleIdenticalToBareName)
{
    std::string error;
    Program p;
    ASSERT_TRUE(runner::buildWorkload("C-Ca", &p, &error)) << error;

    std::unique_ptr<Machine> bare = validate::tryMakeMachine(
        "sim-alpha", validate::Optimization::None, &error);
    ASSERT_NE(bare, nullptr) << error;
    std::unique_ptr<Machine> classic = validate::tryMakeMachine(
        "sim-alpha+dram=classic", validate::Optimization::None,
        &error);
    ASSERT_NE(classic, nullptr) << error;

    RunResult a = bare->run(p, 20000);
    RunResult b = classic->run(p, 20000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instsCommitted, b.instsCommitted);
    EXPECT_EQ(a.machine, b.machine);
}

TEST(DramMachine, OpenPageBackendRunsDeterministically)
{
    std::string error;
    Program p;
    ASSERT_TRUE(runner::buildWorkload("C-Ca", &p, &error)) << error;

    RunResult first, second;
    {
        std::unique_ptr<Machine> m = validate::tryMakeMachine(
            "sim-alpha+dram=openpage", validate::Optimization::None,
            &error);
        ASSERT_NE(m, nullptr) << error;
        first = m->run(p, 20000);
    }
    {
        std::unique_ptr<Machine> m = validate::tryMakeMachine(
            "sim-alpha+dram=openpage", validate::Optimization::None,
            &error);
        ASSERT_NE(m, nullptr) << error;
        second = m->run(p, 20000);
    }
    EXPECT_GT(first.cycles, 0u);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.instsCommitted, second.instsCommitted);
}

TEST(DramSweep, CampaignFansEveryProfileAcrossBothBackends)
{
    CampaignSpec spec;
    ASSERT_TRUE(runner::campaignByName("dramsweep", &spec));
    EXPECT_EQ(spec.name, "dramsweep");
    ASSERT_GT(spec.cells.size(), 0u);
    EXPECT_EQ(spec.cells.size() % 2, 0u);

    std::size_t classic = 0, openpage = 0;
    for (const auto &cell : spec.cells) {
        ASSERT_TRUE(validate::isKnownMachine(cell.machine))
            << cell.machine;
        if (cell.machine.find("+dram=classic") != std::string::npos)
            classic++;
        if (cell.machine.find("+dram=openpage") != std::string::npos)
            openpage++;
    }
    EXPECT_EQ(classic, spec.cells.size() / 2);
    EXPECT_EQ(openpage, spec.cells.size() / 2);
}

/**
 * @file
 * Golden-value regression tests for the paper's table campaigns.
 *
 * Each golden table runs a campaign through the parallel
 * ExperimentRunner and compares the canonical JSON artifact
 * byte-for-byte against the checked-in golden file — so any change to
 * the machine models, the workloads, or the runner that moves a single
 * cycle count fails loudly.
 *
 *   table2.json  the 21-microbenchmark suite on ds10l, sim-alpha, and
 *                sim-outorder, run to completion
 *   table3.json  the ten SPEC2000 synthetics on ds10l, sim-alpha,
 *                sim-stripped, and sim-outorder, capped at 20k
 *                committed instructions per cell
 *   table4.json  the macro suite on sim-alpha and its ten ablations,
 *                capped at 20k committed instructions per cell (the
 *                full Table 4 takes minutes; the cap keeps the golden
 *                run a few seconds while still exercising every
 *                ablation's timing paths)
 *   table5.json  the macro suite across all 13 stability
 *                configurations × 4 optimization sweeps, capped at
 *                20k — the widest grid, covering every machine the
 *                stability analysis touches
 *
 * When a change intentionally moves the numbers, regenerate all with:
 *
 *   build/tests/test_golden_tables --regenerate
 *
 * and commit the updated golden files alongside the change that
 * explains it.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "runner/artifacts.hh"
#include "runner/campaign.hh"
#include "runner/runner.hh"

using namespace simalpha;
using namespace simalpha::runner;

namespace {

struct GoldenTable
{
    const char *path;                   ///< checked-in artifact
    CampaignResult (*run)();            ///< reproduces it
    std::size_t expectCells;
};

CampaignResult
runTable2()
{
    CampaignSpec spec =
        table2Campaign({"ds10l", "sim-alpha", "sim-outorder"});
    RunnerOptions opts;
    opts.jobs = 4;
    ExperimentRunner runner(opts);
    return runner.run(spec);
}

CampaignResult
runTable3()
{
    CampaignSpec spec = table3Campaign().withMaxInsts(20000);
    RunnerOptions opts;
    opts.jobs = 4;
    ExperimentRunner runner(opts);
    return runner.run(spec);
}

CampaignResult
runTable4()
{
    CampaignSpec spec = table4Campaign().withMaxInsts(20000);
    RunnerOptions opts;
    opts.jobs = 4;
    ExperimentRunner runner(opts);
    return runner.run(spec);
}

CampaignResult
runTable5()
{
    // The widest grid (520 cells); jobs never moves a byte, so run it
    // wide to keep the golden check quick.
    CampaignSpec spec = table5Campaign().withMaxInsts(20000);
    RunnerOptions opts;
    opts.jobs = 8;
    ExperimentRunner runner(opts);
    return runner.run(spec);
}

const GoldenTable kTables[] = {
    {SIMALPHA_GOLDEN_DIR "/table2.json", runTable2, 21u * 3u},
    {SIMALPHA_GOLDEN_DIR "/table3.json", runTable3, 10u * 4u},
    {SIMALPHA_GOLDEN_DIR "/table4.json", runTable4, 110u},
    {SIMALPHA_GOLDEN_DIR "/table5.json", runTable5, 520u},
};

std::string
readFile(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** First differing line of two texts, for a readable failure. */
void
reportFirstDiff(const std::string &golden, const std::string &fresh)
{
    std::istringstream ga(golden), fa(fresh);
    std::string gl, fl;
    int line = 0;
    while (true) {
        bool gok = bool(std::getline(ga, gl));
        bool fok = bool(std::getline(fa, fl));
        line++;
        if (!gok && !fok)
            return;
        if (gl != fl || gok != fok) {
            ADD_FAILURE()
                << "first difference at line " << line << ":\n"
                << "  golden: " << (gok ? gl : "<eof>") << "\n"
                << "  fresh:  " << (fok ? fl : "<eof>");
            return;
        }
    }
}

void
checkTable(const GoldenTable &table)
{
    std::string golden = readFile(table.path);
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << table.path
        << " — regenerate with: build/tests/test_golden_tables "
           "--regenerate";

    CampaignResult result = table.run();
    ASSERT_EQ(result.errorCount(), 0u);
    ASSERT_EQ(result.cells.size(), table.expectCells);

    std::string fresh = toJson(result);
    if (fresh != golden) {
        reportFirstDiff(golden, fresh);
        FAIL() << "campaign diverged from " << table.path
               << " — if the change is intentional, regenerate with: "
                  "build/tests/test_golden_tables --regenerate";
    }

    // Cross-check table-level semantics independent of the byte
    // comparison: every cell ran and made progress.
    for (const CellResult &r : result.cells) {
        EXPECT_TRUE(r.ok) << r.cell.workload;
        EXPECT_GT(r.cycles, 0u) << r.cell.workload;
        EXPECT_GT(r.instsCommitted, 0u) << r.cell.workload;
    }
}

} // namespace

TEST(GoldenTables, Table2MatchesCheckedInArtifact)
{
    checkTable(kTables[0]);
}

TEST(GoldenTables, Table3CappedMatchesCheckedInArtifact)
{
    checkTable(kTables[1]);
}

TEST(GoldenTables, Table4CappedMatchesCheckedInArtifact)
{
    checkTable(kTables[2]);
}

TEST(GoldenTables, Table5CappedMatchesCheckedInArtifact)
{
    checkTable(kTables[3]);
}

int
main(int argc, char **argv)
{
    setQuiet(true);
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--regenerate") == 0) {
            for (const GoldenTable &table : kTables) {
                CampaignResult result = table.run();
                if (result.errorCount()) {
                    std::fprintf(stderr,
                                 "refusing to regenerate %s: %zu "
                                 "cells failed\n",
                                 table.path, result.errorCount());
                    return 1;
                }
                std::string error;
                if (!writeArtifact(result, table.path, &error)) {
                    std::fprintf(stderr, "%s\n", error.c_str());
                    return 1;
                }
                std::printf("wrote %s (%zu cells)\n", table.path,
                            result.cells.size());
            }
            return 0;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}

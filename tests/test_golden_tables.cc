/**
 * @file
 * Golden-value regression test for the paper's Table 2 campaign.
 *
 * Runs the 21-microbenchmark suite on ds10l, sim-alpha, and
 * sim-outorder through the parallel ExperimentRunner and compares the
 * canonical JSON artifact byte-for-byte against the checked-in golden
 * file — so any change to the machine models, the workloads, or the
 * runner that moves a single cycle count fails loudly.
 *
 * When a change intentionally moves the numbers, regenerate with:
 *
 *   build/tests/test_golden_tables --regenerate
 *
 * and commit the updated tests/golden/table2.json alongside the change
 * that explains it.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "runner/artifacts.hh"
#include "runner/campaign.hh"
#include "runner/runner.hh"

using namespace simalpha;
using namespace simalpha::runner;

namespace {

const char *kGoldenPath = SIMALPHA_GOLDEN_DIR "/table2.json";

/** The golden campaign: Table 2 on the three headline machines. */
CampaignResult
runGoldenCampaign()
{
    CampaignSpec spec =
        table2Campaign({"ds10l", "sim-alpha", "sim-outorder"});
    ExperimentRunner runner({4, true});
    return runner.run(spec);
}

std::string
readFile(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** First differing line of two texts, for a readable failure. */
void
reportFirstDiff(const std::string &golden, const std::string &fresh)
{
    std::istringstream ga(golden), fa(fresh);
    std::string gl, fl;
    int line = 0;
    while (true) {
        bool gok = bool(std::getline(ga, gl));
        bool fok = bool(std::getline(fa, fl));
        line++;
        if (!gok && !fok)
            return;
        if (gl != fl || gok != fok) {
            ADD_FAILURE()
                << "first difference at line " << line << ":\n"
                << "  golden: " << (gok ? gl : "<eof>") << "\n"
                << "  fresh:  " << (fok ? fl : "<eof>");
            return;
        }
    }
}

} // namespace

TEST(GoldenTables, Table2MatchesCheckedInArtifact)
{
    std::string golden = readFile(kGoldenPath);
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << kGoldenPath
        << " — regenerate with: build/tests/test_golden_tables "
           "--regenerate";

    CampaignResult result = runGoldenCampaign();
    ASSERT_EQ(result.errorCount(), 0u);
    ASSERT_EQ(result.cells.size(), 21u * 3u);

    std::string fresh = toJson(result);
    if (fresh != golden) {
        reportFirstDiff(golden, fresh);
        FAIL() << "Table 2 campaign diverged from " << kGoldenPath
               << " — if the change is intentional, regenerate with: "
                  "build/tests/test_golden_tables --regenerate";
    }

    // Cross-check a few table-level semantics independent of the byte
    // comparison: the golden reference must finish every benchmark,
    // and cycle counts must be positive everywhere.
    for (const CellResult &r : result.cells) {
        EXPECT_TRUE(r.ok) << r.cell.workload;
        EXPECT_GT(r.cycles, 0u) << r.cell.workload;
        EXPECT_GT(r.instsCommitted, 0u) << r.cell.workload;
    }
}

int
main(int argc, char **argv)
{
    setQuiet(true);
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--regenerate") == 0) {
            CampaignResult result = runGoldenCampaign();
            if (result.errorCount()) {
                std::fprintf(stderr,
                             "refusing to regenerate: %zu cells "
                             "failed\n",
                             result.errorCount());
                return 1;
            }
            std::string error;
            if (!writeArtifact(result, kGoldenPath, &error)) {
                std::fprintf(stderr, "%s\n", error.c_str());
                return 1;
            }
            std::printf("wrote %s (%zu cells)\n", kGoldenPath,
                        result.cells.size());
            return 0;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}

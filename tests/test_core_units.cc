/**
 * @file
 * Unit tests for the 21264 core's building blocks: register renaming,
 * the scoreboard's cross-cluster skew, the collapsible issue queue, and
 * the execution-pipe pool.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/fu_pool.hh"
#include "core/issue_queue.hh"
#include "core/rename.hh"

using namespace simalpha;

TEST(Rename, InitialMappingIsIdentity)
{
    RenameUnit r(72, 72);
    EXPECT_EQ(r.lookup(intReg(5)), PhysReg(5));
    EXPECT_EQ(r.lookup(fpReg(3)), PhysReg(72 + 3));
    EXPECT_EQ(r.freeIntRegs(), 40);
    EXPECT_EQ(r.freeFpRegs(), 40);
}

TEST(Rename, AllocateChangesMapping)
{
    RenameUnit r(72, 72);
    PhysReg old_phys;
    PhysReg p = r.allocate(intReg(5), old_phys);
    EXPECT_NE(p, kNoPhys);
    EXPECT_EQ(old_phys, PhysReg(5));
    EXPECT_EQ(r.lookup(intReg(5)), p);
    EXPECT_EQ(r.freeIntRegs(), 39);
}

TEST(Rename, UndoRestoresMappingAndFreesReg)
{
    RenameUnit r(72, 72);
    PhysReg old_phys;
    PhysReg p = r.allocate(intReg(5), old_phys);
    r.undo(intReg(5), p, old_phys);
    EXPECT_EQ(r.lookup(intReg(5)), PhysReg(5));
    EXPECT_EQ(r.freeIntRegs(), 40);
}

TEST(Rename, ReleaseReturnsOldMapping)
{
    RenameUnit r(72, 72);
    PhysReg old_phys;
    r.allocate(intReg(5), old_phys);
    EXPECT_EQ(r.freeIntRegs(), 39);
    r.release(old_phys);
    EXPECT_EQ(r.freeIntRegs(), 40);
}

TEST(Rename, ExhaustionReturnsNoPhys)
{
    RenameUnit r(72, 72);
    PhysReg old_phys;
    for (int i = 0; i < 40; i++)
        EXPECT_NE(r.allocate(intReg(1), old_phys), kNoPhys);
    EXPECT_EQ(r.allocate(intReg(1), old_phys), kNoPhys);
    // FP side is independent.
    EXPECT_NE(r.allocate(fpReg(1), old_phys), kNoPhys);
}

TEST(Rename, RandomAllocUndoConservesRegisters)
{
    // Property: any interleaving of allocate/undo/release keeps the
    // total register count invariant.
    RenameUnit r(72, 72);
    Random rng(123);
    struct Alloc
    {
        RegIndex arch;
        PhysReg phys;
        PhysReg old;
    };
    std::vector<Alloc> live;
    int released = 0;
    for (int step = 0; step < 4000; step++) {
        int action = int(rng.below(3));
        if (action == 0 || live.empty()) {
            RegIndex arch = intReg(int(rng.below(30)));
            PhysReg old_phys;
            PhysReg p = r.allocate(arch, old_phys);
            if (p != kNoPhys)
                live.push_back({arch, p, old_phys});
        } else if (action == 1) {
            // Undo the youngest (squash semantics are LIFO).
            Alloc a = live.back();
            live.pop_back();
            // Only legal if no younger rename of the same arch reg —
            // guaranteed by LIFO undo order when we undo the youngest.
            if (r.lookup(a.arch) == a.phys) {
                r.undo(a.arch, a.phys, a.old);
            } else {
                live.push_back(a);
            }
        } else {
            // Retire the oldest: release its displaced mapping.
            Alloc a = live.front();
            live.erase(live.begin());
            r.release(a.old);
            released++;
        }
    }
    // Registers live in exactly one place: the free list accounts for
    // everything not mapped or in-flight.
    EXPECT_EQ(r.freeIntRegs(), 40 - int(live.size()));
}

TEST(Scoreboard, SameClusterSeesReadyOnTime)
{
    Scoreboard sb(16);
    sb.setPending(3);
    EXPECT_TRUE(sb.pending(3));
    sb.setReady(3, 100, 0);
    EXPECT_EQ(sb.readyAt(3, 0), 100u);
    EXPECT_EQ(sb.readyAt(3, 1), 101u);  // cross-cluster skew
}

TEST(Scoreboard, BroadcastHasNoSkew)
{
    Scoreboard sb(16);
    sb.setReady(4, 50, -1);
    EXPECT_EQ(sb.readyAt(4, 0), 50u);
    EXPECT_EQ(sb.readyAt(4, 1), 50u);
}

TEST(Scoreboard, PendingReadsNoCycle)
{
    Scoreboard sb(16);
    sb.setPending(2);
    EXPECT_EQ(sb.readyAt(2, 0), kNoCycle);
    sb.setReadyNow(2);
    EXPECT_EQ(sb.readyAt(2, 0), 0u);
}

namespace {

DynInst
makeInst(InstSeq seq)
{
    DynInst d;
    d.seq = seq;
    return d;
}

} // namespace

TEST(IssueQueue, CapacityAndCompaction)
{
    IssueQueue q(4, 1);
    std::vector<DynInst> pool;
    pool.reserve(8);
    for (int i = 0; i < 4; i++) {
        pool.push_back(makeInst(InstSeq(i)));
        q.insert(&pool.back());
    }
    EXPECT_TRUE(q.full());
    pool[0].issued = true;
    pool[0].issueCycle = 10;
    q.noteIssued(10);           // issue sites must schedule the removal
    q.compact(10);              // removal delay 1: not yet
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.nextRemoval(), 11u);
    q.compact(11);
    EXPECT_EQ(q.size(), 3);
}

TEST(IssueQueue, DelayedRemovalHoldsLonger)
{
    IssueQueue q(4, 2);
    DynInst d = makeInst(0);
    q.insert(&d);
    d.issued = true;
    d.issueCycle = 10;
    q.noteIssued(10);
    q.compact(11);
    EXPECT_EQ(q.size(), 1);     // still resident (sim-alpha approx)
    q.compact(12);
    EXPECT_EQ(q.size(), 0);
    EXPECT_EQ(q.nextRemoval(), kNoCycle);
}

TEST(IssueQueue, CompactIsGatedOnScheduledRemovals)
{
    // Without a noteIssued call nothing is due, so compact must skip
    // the scan entirely (the event-driven fast path's whole point).
    IssueQueue q(4, 1);
    DynInst d = makeInst(0);
    q.insert(&d);
    d.issued = true;
    d.issueCycle = 10;
    EXPECT_FALSE(q.compact(100));
    EXPECT_EQ(q.size(), 1);
    q.noteIssued(10);
    EXPECT_TRUE(q.compact(100));
    EXPECT_EQ(q.size(), 0);
}

TEST(IssueQueue, SquashRemovesSuffix)
{
    IssueQueue q(8, 1);
    std::vector<DynInst> pool;
    pool.reserve(6);
    for (int i = 0; i < 6; i++) {
        pool.push_back(makeInst(InstSeq(i)));
        q.insert(&pool.back());
    }
    q.squashFrom(3);
    EXPECT_EQ(q.size(), 3);
    for (DynInst *e : q.entries())
        EXPECT_LT(e->seq, 3u);
}

TEST(IssueQueue, ReinsertKeepsAgeOrderAndDeduplicates)
{
    IssueQueue q(8, 1);
    std::vector<DynInst> pool;
    pool.reserve(4);
    for (int i = 0; i < 4; i++)
        pool.push_back(makeInst(InstSeq(i * 10)));
    q.insert(&pool[0]);
    q.insert(&pool[2]);
    q.insert(&pool[3]);
    q.reinsert(&pool[1]);       // belongs between 0 and 2
    ASSERT_EQ(q.size(), 4);
    InstSeq prev = 0;
    for (DynInst *e : q.entries()) {
        EXPECT_GE(e->seq, prev);
        prev = e->seq;
    }
    q.reinsert(&pool[1]);       // duplicate: no effect
    EXPECT_EQ(q.size(), 4);
}

TEST(FuPool, FourAluPipesPerCycle)
{
    FuPool fu(false);
    int granted = 0;
    for (int i = 0; i < 8; i++)
        if (fu.acquire(OpClass::IntAlu, i % 2, (i / 2) % 2, true, 0))
            granted++;
    EXPECT_EQ(granted, 4);
    // Next cycle they free up.
    EXPECT_TRUE(fu.acquire(OpClass::IntAlu, 0, true, true, 1));
}

TEST(FuPool, OnlyOneMultiplier)
{
    FuPool fu(false);
    EXPECT_TRUE(fu.acquire(OpClass::IntMul, 1, true, true, 0));
    EXPECT_FALSE(fu.acquire(OpClass::IntMul, 1, true, true, 0));
    EXPECT_FALSE(fu.acquire(OpClass::IntMul, 0, true, true, 0));
}

TEST(FuPool, MemoryUsesLowerPipes)
{
    FuPool fu(false);
    EXPECT_TRUE(fu.acquire(OpClass::IntLoad, 0, false, true, 0));
    EXPECT_TRUE(fu.acquire(OpClass::IntLoad, 1, false, true, 0));
    EXPECT_FALSE(fu.acquire(OpClass::IntLoad, 0, false, true, 0));
}

TEST(FuPool, FpDivideBlocksThePipe)
{
    FuPool fu(false);
    EXPECT_TRUE(fu.acquire(OpClass::FpDivD, 0, false, false, 0));
    // The divide occupies the add pipe for its full latency (15).
    EXPECT_FALSE(fu.acquire(OpClass::FpAdd, 0, false, false, 5));
    EXPECT_TRUE(fu.acquire(OpClass::FpAdd, 0, false, false, 15));
    // The multiply pipe is unaffected.
    EXPECT_TRUE(fu.acquire(OpClass::FpMul, 0, false, false, 5));
}

TEST(FuPool, WrongMixHalvesAluThroughput)
{
    FuPool fu(true);
    int granted = 0;
    for (int i = 0; i < 8; i++)
        if (fu.acquire(OpClass::IntAlu, i % 2, (i / 2) % 2, true, 0))
            granted++;
    EXPECT_EQ(granted, 2);      // only the two "adders" remain
    // But it has two multipliers.
    EXPECT_TRUE(fu.acquire(OpClass::IntMul, 0, true, true, 0));
    EXPECT_TRUE(fu.acquire(OpClass::IntMul, 1, true, true, 0));
}

TEST(FuPool, SlotRestrictionBindsAluToSubcluster)
{
    FuPool fu(false);
    // Upper-slotted ALU consumes the upper pipe of its cluster; a second
    // upper-slotted ALU in the same cluster must wait.
    EXPECT_TRUE(fu.acquire(OpClass::IntAlu, 0, true, true, 0));
    EXPECT_FALSE(fu.acquire(OpClass::IntAlu, 0, true, true, 0));
    // Without the restriction it may use the lower pipe.
    EXPECT_TRUE(fu.acquire(OpClass::IntAlu, 0, true, false, 0));
}

TEST(FuPool, PerPipeInterface)
{
    FuPool fu(false);
    EXPECT_EQ(fu.numPipes(), 6);
    int fp_pipes = 0;
    for (int p = 0; p < fu.numPipes(); p++)
        if (fu.pipeIsFp(p))
            fp_pipes++;
    EXPECT_EQ(fp_pipes, 2);
    // Reserve a pipe; it rejects a second op the same cycle.
    for (int p = 0; p < fu.numPipes(); p++) {
        if (fu.pipeIsFp(p))
            continue;
        if (fu.pipeCanIssue(p, OpClass::IntAlu, true, true, 5)) {
            fu.reservePipe(p, OpClass::IntAlu, 5);
            EXPECT_FALSE(fu.pipeCanIssue(p, OpClass::IntAlu, true,
                                         true, 5));
            EXPECT_TRUE(fu.pipeCanIssue(p, OpClass::IntAlu, true,
                                        true, 6));
            break;
        }
    }
}

/**
 * @file
 * Integration tests for the detailed 21264 core: end-to-end runs of
 * small programs, timing sanity (IPC bounds, latency measurements),
 * mispredict and replay-trap behaviour, feature flags, determinism,
 * and the instruction-accounting invariant against the functional
 * emulator.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/core.hh"
#include "isa/assembler.hh"
#include "isa/emulator.hh"
#include "workloads/macro.hh"
#include "workloads/microbench.hh"

using namespace simalpha;

namespace {

class CoreTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
};

/** A simple counted loop with `body` extra adds per iteration. */
Program
countedLoop(std::int64_t iters, int body)
{
    ProgramBuilder b("loop");
    b.lda(R(10), 1);
    b.lda(R(9), iters);
    b.label("top");
    for (int i = 0; i < body; i++)
        b.addq(R(1 + (i % 4)), R(10), R(1 + (i % 4)));
    b.subq(R(9), R(10), R(9));
    b.bne(R(9), "top");
    b.halt();
    return b.finish();
}

std::uint64_t
emulatorInstCount(const Program &p)
{
    Emulator emu(p);
    std::uint64_t n = 0;
    while (!emu.halted()) {
        emu.step();
        n++;
    }
    return n;
}

} // namespace

TEST_F(CoreTest, RunsTrivialProgram)
{
    ProgramBuilder b("t");
    b.lda(R(1), 42);
    b.halt();
    AlphaCore core(AlphaCoreParams::simAlpha());
    RunResult r = core.run(b.finish());
    EXPECT_TRUE(r.finished);
    EXPECT_EQ(r.instsCommitted, 2u);
    EXPECT_GT(r.cycles, 0u);
}

TEST_F(CoreTest, CommitsExactlyTheArchitecturalStream)
{
    // The timing model must commit exactly what the functional emulator
    // executes — no more, no fewer — for every machine configuration.
    Program p = countedLoop(500, 6);
    std::uint64_t expect = emulatorInstCount(p);
    for (const char *cfg : {"golden", "alpha", "initial", "stripped"}) {
        AlphaCoreParams params =
            std::string(cfg) == "golden" ? AlphaCoreParams::golden()
            : std::string(cfg) == "alpha" ? AlphaCoreParams::simAlpha()
            : std::string(cfg) == "initial"
                ? AlphaCoreParams::simInitial()
                : AlphaCoreParams::simStripped();
        AlphaCore core(params);
        RunResult r = core.run(p);
        EXPECT_EQ(r.instsCommitted, expect) << cfg;
        EXPECT_TRUE(r.finished) << cfg;
    }
}

TEST_F(CoreTest, DeterministicAcrossRuns)
{
    Program p = workloads::controlConditionalA({});
    AlphaCore core(AlphaCoreParams::simAlpha());
    RunResult a = core.run(p, 50000);
    RunResult b = core.run(p, 50000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instsCommitted, b.instsCommitted);
}

TEST_F(CoreTest, MaxInstsLimitStopsEarly)
{
    Program p = countedLoop(100000, 6);
    AlphaCore core(AlphaCoreParams::simAlpha());
    RunResult r = core.run(p, 1000);
    EXPECT_FALSE(r.finished);
    EXPECT_GE(r.instsCommitted, 1000u);
    EXPECT_LT(r.instsCommitted, 1100u);
}

TEST_F(CoreTest, IpcNeverExceedsMachineWidth)
{
    Program p = workloads::executeIndependent({});
    AlphaCore core(AlphaCoreParams::golden());
    RunResult r = core.run(p);
    EXPECT_LE(r.ipc(), 4.0);
    EXPECT_GT(r.ipc(), 3.5);    // E-I sustains near-peak throughput
}

TEST_F(CoreTest, DependentChainRunsAtUnitIpc)
{
    Program p = workloads::executeDependent(1, {});
    AlphaCore core(AlphaCoreParams::golden());
    RunResult r = core.run(p);
    EXPECT_NEAR(r.ipc(), 1.0, 0.1);
}

TEST_F(CoreTest, MultiplyChainReflectsTable1Latency)
{
    Program p = workloads::executeDependentMul({});
    AlphaCore core(AlphaCoreParams::golden());
    RunResult r = core.run(p);
    // Dependent multiplies: ~1/7 IPC plus loop overhead.
    EXPECT_NEAR(r.ipc(), 1.0 / 7.0, 0.03);
}

TEST_F(CoreTest, ShortMulLatencyBugSpeedsChain)
{
    Program p = workloads::executeDependentMul({});
    AlphaCoreParams params = AlphaCoreParams::simAlpha();
    params.bugShortMulLatency = true;
    AlphaCore buggy(params);
    AlphaCore good(AlphaCoreParams::simAlpha());
    EXPECT_GT(buggy.run(p).ipc(), good.run(p).ipc() * 3);
}

TEST_F(CoreTest, FpAddsBoundBySingleAddPipe)
{
    Program p = workloads::executeFloat({});
    AlphaCore core(AlphaCoreParams::golden());
    RunResult r = core.run(p);
    EXPECT_NEAR(r.ipc(), 1.0, 0.1);
}

TEST_F(CoreTest, BranchMispredictsAreCounted)
{
    // A data-dependent unpredictable-ish branch pattern must produce
    // mispredict events.
    Program p = workloads::controlSwitch(1, {});
    AlphaCore core(AlphaCoreParams::golden());
    core.run(p, 100000);
    EXPECT_GT(core.statGroup().get("jump_mispredicts"), 1000u);
}

TEST_F(CoreTest, JumpPenaltyExceedsBranchPenalty)
{
    // C-S1 (a jmp mispredict per iteration) must run slower per
    // control transfer than C-Ca (conditional mispredicts only).
    AlphaCore core(AlphaCoreParams::golden());
    RunResult cs1 = core.run(workloads::controlSwitch(1, {}));
    AlphaCore core2(AlphaCoreParams::golden());
    RunResult cca = core2.run(workloads::controlConditionalA({}));
    EXPECT_LT(cs1.ipc(), cca.ipc());
}

TEST_F(CoreTest, UnderchargedJumpBugIsFaster)
{
    Program p = workloads::controlSwitch(1, {});
    AlphaCoreParams params = AlphaCoreParams::simAlpha();
    params.bugUnderchargedJump = true;
    AlphaCore buggy(params);
    AlphaCore good(AlphaCoreParams::simAlpha());
    EXPECT_GT(buggy.run(p).ipc(), good.run(p).ipc());
}

namespace {

/** A store whose data arrives late, re-read immediately: the load runs
 *  ahead of the store and triggers store replay traps until the
 *  store-wait table learns to hold it back. */
Program
aliasedStoreLoadLoop(std::int64_t iters)
{
    ProgramBuilder b("alias");
    b.lda(R(10), 1);
    b.lda(R(9), iters);
    b.lda(R(20), 0x14000);
    b.lda(R(11), 16);
    b.sll(R(20), R(11), R(20));
    b.lda(R(5), 3);
    b.label("top");
    b.mulq(R(5), R(10), R(5));      // slow producer (7 cycles)
    b.stq(R(5), 0, R(20));          // store waits for the multiply
    b.ldq(R(6), 0, R(20));          // load is ready immediately
    b.addq(R(7), R(6), R(7));
    b.subq(R(9), R(10), R(9));
    b.bne(R(9), "top");
    b.halt();
    return b.finish();
}

} // namespace

TEST_F(CoreTest, StoreWaitTableLearnsConflicts)
{
    Program p = aliasedStoreLoadLoop(2000);
    AlphaCore core(AlphaCoreParams::golden());
    RunResult r = core.run(p);
    EXPECT_TRUE(r.finished);
    // Early iterations trap; the table then absorbs the conflicts, so
    // traps must be far rarer than iterations.
    std::uint64_t traps = core.statGroup().get("store_replay_traps");
    EXPECT_GT(traps, 0u);
    EXPECT_LT(traps, 200u);
}

TEST_F(CoreTest, RemovingStoreWaitTableTrapsMore)
{
    Program p = aliasedStoreLoadLoop(2000);
    AlphaCore with(AlphaCoreParams::simAlpha());
    with.run(p);
    AlphaCore without(AlphaCoreParams::withoutFeature("stwt"));
    without.run(p);
    EXPECT_GT(without.statGroup().get("store_replay_traps"),
              with.statGroup().get("store_replay_traps"));
}

TEST_F(CoreTest, MaskedTrapCompareCausesSpuriousTraps)
{
    Program p = workloads::memoryDependent({});
    AlphaCoreParams params = AlphaCoreParams::simAlpha();
    params.bugMaskedLoadTrapAddr = true;
    AlphaCore buggy(params);
    AlphaCore good(AlphaCoreParams::simAlpha());
    buggy.run(p);
    good.run(p);
    EXPECT_GT(buggy.statGroup().get("load_order_traps"),
              good.statGroup().get("load_order_traps") + 100);
}

TEST_F(CoreTest, EarlyUnopRetirementRemovesUnops)
{
    ProgramBuilder b("unops");
    b.lda(R(9), 100);
    b.lda(R(10), 1);
    b.label("top");
    b.unop(6);
    b.subq(R(9), R(10), R(9));
    b.bne(R(9), "top");
    b.halt();
    Program p = b.finish();

    AlphaCore with(AlphaCoreParams::simAlpha());
    RunResult rw = with.run(p);
    EXPECT_GT(with.statGroup().get("unops_removed"), 500u);

    AlphaCoreParams params = AlphaCoreParams::simAlpha();
    params.bugNoUnopRemoval = true;
    AlphaCore without(params);
    RunResult ro = without.run(p);
    EXPECT_EQ(without.statGroup().get("unops_removed"), 0u);
    // Both count the unops as committed instructions.
    EXPECT_EQ(rw.instsCommitted, ro.instsCommitted);
}

TEST_F(CoreTest, MapStallsUnderRegisterPressure)
{
    // Long-latency producers hold rename registers; the map stage must
    // observe <8-free stalls on a machine with heavy in-flight state
    // (art's four concurrent miss streams keep ~80 results pending).
    using namespace workloads;
    auto profiles = spec2000Profiles();
    Program art;
    for (auto &prof : profiles)
        if (prof.name == "art")
            art = makeMacro(prof);
    AlphaCore core(AlphaCoreParams::golden());
    core.run(art, 100000);
    EXPECT_GT(core.statGroup().get("map_stalls"), 0u);
}

TEST_F(CoreTest, LoadUseReplaysOnPredictedHitMiss)
{
    Program p = workloads::memoryL2({});
    AlphaCore core(AlphaCoreParams::golden());
    core.run(p, 50000);
    EXPECT_GT(core.statGroup().get("load_use_replays"), 0u);
}

TEST_F(CoreTest, WayMispredictsOccurOnConflictingFetch)
{
    // eon's far-call pattern alternates two I-cache lines in one set.
    using namespace workloads;
    auto profiles = spec2000Profiles();
    Program eon;
    for (auto &prof : profiles)
        if (prof.name == "eon")
            eon = makeMacro(prof);
    AlphaCore core(AlphaCoreParams::golden());
    core.run(eon, 100000);
    EXPECT_GT(core.statGroup().get("way_mispredicts"), 100u);
}

TEST_F(CoreTest, SpeculativeUpdateChangesTiming)
{
    // Speculative predictor update materially changes front-end
    // behaviour; the direction is workload-dependent (see
    // EXPERIMENTS.md), but the switch must have a real effect.
    Program p = workloads::controlConditionalA({});
    AlphaCore with(AlphaCoreParams::simAlpha());
    AlphaCore without(AlphaCoreParams::withoutFeature("spec"));
    double a = with.run(p, 100000).ipc();
    double b = without.run(p, 100000).ipc();
    EXPECT_GT(std::abs(a - b) / a, 0.01);
}

TEST_F(CoreTest, SlotAdderHelpsControlCode)
{
    Program p = workloads::controlConditionalA({});
    AlphaCore with(AlphaCoreParams::simAlpha());
    AlphaCore without(AlphaCoreParams::withoutFeature("addr"));
    EXPECT_GT(with.run(p).ipc(), without.run(p).ipc() * 1.2);
}

TEST_F(CoreTest, IcachePrefetchHelpsBigCode)
{
    Program p = workloads::memoryInstPrefetch({});
    AlphaCore with(AlphaCoreParams::simAlpha());
    AlphaCore without(AlphaCoreParams::withoutFeature("pref"));
    EXPECT_GT(with.run(p).ipc(), without.run(p).ipc() * 1.1);
}

TEST_F(CoreTest, LoadUseSpeculationHelpsLoadChains)
{
    Program p = workloads::memoryDependent({});
    AlphaCore with(AlphaCoreParams::simAlpha());
    AlphaCore without(AlphaCoreParams::withoutFeature("luse"));
    EXPECT_GT(with.run(p).ipc(), without.run(p).ipc());
}

TEST_F(CoreTest, RemovingMapStallHelps)
{
    Program p = workloads::memoryL2({});
    AlphaCore with(AlphaCoreParams::simAlpha());
    AlphaCore without(AlphaCoreParams::withoutFeature("maps"));
    EXPECT_GE(without.run(p, 100000).ipc(),
              with.run(p, 100000).ipc());
}

TEST_F(CoreTest, LateBranchRecoveryBugIsExpensive)
{
    Program p = workloads::controlConditionalA({});
    AlphaCoreParams params = AlphaCoreParams::simAlpha();
    params.bugLateBranchRecovery = true;
    AlphaCore buggy(params);
    AlphaCore good(AlphaCoreParams::simAlpha());
    EXPECT_LT(buggy.run(p).ipc(), good.run(p).ipc() * 0.7);
}

TEST_F(CoreTest, BiggerRegisterFileNeverHurtsMuch)
{
    Program p = workloads::executeDependent(4, {});
    AlphaCoreParams params = AlphaCoreParams::simAlpha();
    params.physIntRegs = kNumIntRegs + 80;
    params.physFpRegs = kNumFpRegs + 80;
    AlphaCore big(params);
    AlphaCore base(AlphaCoreParams::simAlpha());
    EXPECT_GE(big.run(p).ipc(), base.run(p).ipc() * 0.99);
}

TEST_F(CoreTest, PartialBypassSlowsDependentCode)
{
    Program p = workloads::executeDependent(1, {});
    AlphaCoreParams params = AlphaCoreParams::simAlpha();
    params.regreadCycles = 2;
    params.fullBypass = false;
    AlphaCore partial(params);
    AlphaCore full(AlphaCoreParams::simAlpha());
    EXPECT_LT(partial.run(p).ipc(), full.run(p).ipc());
}

TEST_F(CoreTest, StatsExposeCyclesAndInsts)
{
    Program p = countedLoop(100, 2);
    AlphaCore core(AlphaCoreParams::simAlpha());
    RunResult r = core.run(p);
    EXPECT_EQ(core.statGroup().get("cycles"), r.cycles);
    EXPECT_EQ(core.statGroup().get("insts_committed"),
              r.instsCommitted);
}

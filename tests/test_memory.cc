/**
 * @file
 * Memory-system unit tests: cache hits/misses/LRU, MSHR combining and
 * exhaustion, the victim buffer, in-flight fill timing, prefetch
 * streaming, bus serialization, DRAM page policies, TLB modes, and the
 * full hierarchy wiring.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"
#include "memory/dram.hh"
#include "memory/hierarchy.hh"
#include "memory/tlb.hh"

using namespace simalpha;

namespace {

CacheParams
tinyCache()
{
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = 1024;     // 8 sets x 2 ways x 64B
    p.assoc = 2;
    p.blockBytes = 64;
    p.hitLatency = 3;
    p.ports = 2;
    p.mshrEntries = 4;
    p.mshrTargets = 2;
    return p;
}

/** A fixed-latency backing store for cache tests. */
class FixedLevel : public MemLevel
{
  public:
    explicit FixedLevel(Cycle latency) : _latency(latency) {}

    AccessResult
    access(Addr, bool, Cycle now) override
    {
        accesses++;
        AccessResult r;
        r.done = now + _latency;
        r.hit = true;
        r.belowHit = true;
        return r;
    }

    int accesses = 0;

  private:
    Cycle _latency;
};

} // namespace

TEST(Cache, MissThenHit)
{
    FixedLevel below(50);
    Cache c(tinyCache(), &below);
    AccessResult miss = c.access(0x1000, false, 0);
    EXPECT_FALSE(miss.hit);
    EXPECT_GE(miss.done, 50u);
    AccessResult hit = c.access(0x1008, false, miss.done);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.done, miss.done + 3);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, InFlightFillDelaysEarlyHit)
{
    // A second access to a block whose fill has not completed must wait
    // for the fill, not sail through at hit latency.
    FixedLevel below(100);
    Cache c(tinyCache(), &below);
    c.access(0x1000, false, 0);
    AccessResult early = c.access(0x1000, false, 5);
    EXPECT_GE(early.done, 100u);    // waits out the 100-cycle fill
}

TEST(Cache, LruEvictsOldest)
{
    FixedLevel below(10);
    Cache c(tinyCache(), &below);
    // Three blocks mapping to set 0 (set stride = 8 blocks * 64B).
    c.access(0x0000, false, 0);
    c.access(0x2000, false, 100);
    c.access(0x0000, false, 200);       // touch: 0x2000 becomes LRU
    c.access(0x4000, false, 300);       // evicts 0x2000
    AccessResult r = c.access(0x0000, false, 400);
    EXPECT_TRUE(r.hit);
    AccessResult r2 = c.access(0x2000, false, 500);
    EXPECT_FALSE(r2.hit);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    FixedLevel below(10);
    CacheParams p = tinyCache();
    Cache c(p, &below);
    c.access(0x0000, true, 0);          // dirty
    c.access(0x2000, false, 100);
    c.access(0x4000, false, 200);       // evicts dirty 0x0000
    EXPECT_EQ(c.statGroup().get("writebacks"), 1u);
}

TEST(Cache, VictimBufferBouncesBack)
{
    FixedLevel below(100);
    CacheParams p = tinyCache();
    p.victimEntries = 4;
    Cache c(p, &below);
    c.access(0x0000, false, 0);
    c.access(0x2000, false, 200);
    c.access(0x4000, false, 400);       // 0x0000 evicted to victim buf
    int before = below.accesses;
    AccessResult r = c.access(0x0000, false, 600);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.done, 600u + 3 + 1);    // victim hit: hitLatency + 1
    EXPECT_EQ(below.accesses, before);  // no downstream traffic
    EXPECT_EQ(c.statGroup().get("victim_hits"), 1u);
}

TEST(Cache, MshrCombinesSameBlock)
{
    FixedLevel below(100);
    Cache c(tinyCache(), &below);
    c.access(0x1000, false, 0);
    int before = below.accesses;
    // Second miss to the same in-flight block — the installed line is
    // present with a future fill, so it waits without new traffic.
    AccessResult r = c.access(0x1040 - 0x40, false, 1);
    EXPECT_EQ(below.accesses, before);
    EXPECT_GE(r.done, 100u);
}

TEST(Cache, MshrPoolExhaustionDelays)
{
    MshrPool pool(2, 2);
    Cycle avail;
    pool.allocate(1, 100, 0, avail);
    EXPECT_EQ(avail, 0u);
    pool.allocate(2, 200, 0, avail);
    EXPECT_EQ(avail, 0u);
    // Third allocation waits for the earliest fill (cycle 100).
    pool.allocate(3, 300, 0, avail);
    EXPECT_EQ(avail, 100u);
    EXPECT_EQ(pool.fullStalls(), 1u);
}

TEST(Cache, MshrEntriesExpire)
{
    MshrPool pool(2, 2);
    Cycle avail;
    pool.allocate(1, 50, 0, avail);
    EXPECT_EQ(pool.entriesInUse(10), 1);
    EXPECT_EQ(pool.entriesInUse(60), 0);
    EXPECT_EQ(pool.findMatch(1, 60), kNoCycle);
}

TEST(Cache, PrefetchStreamsAhead)
{
    FixedLevel below(50);
    CacheParams p = tinyCache();
    p.sizeBytes = 4096;
    p.prefetchLines = 2;
    Cache c(p, &below);
    AccessResult r = c.access(0x0000, false, 0);
    // Blocks +1 and +2 were prefetched.
    EXPECT_EQ(c.statGroup().get("prefetches"), 2u);
    // A later demand hit on a prefetched block re-arms the stream.
    c.access(0x0040, false, r.done + 100);
    EXPECT_GT(c.statGroup().get("prefetches"), 2u);
}

TEST(Cache, PortContentionSerializes)
{
    FixedLevel below(10);
    CacheParams p = tinyCache();
    p.ports = 1;
    Cache c(p, &below);
    c.access(0x0000, false, 0);
    AccessResult a = c.access(0x0000, false, 100);
    AccessResult b = c.access(0x0000, false, 100);
    // One port: the second access starts a cycle later.
    EXPECT_EQ(b.done, a.done + 1);
}

TEST(Cache, StoresContendTakesPort)
{
    FixedLevel below(10);
    CacheParams p = tinyCache();
    p.ports = 1;
    p.storesContend = true;
    Cache c(p, &below);
    c.access(0x0000, false, 0);
    AccessResult a = c.access(0x0000, true, 100);
    AccessResult b = c.access(0x0000, false, 100);
    EXPECT_EQ(b.done, a.done + 1);
}

TEST(Bus, TransfersSerialize)
{
    Bus bus(8, 2);      // 8 bytes per beat, 2 cycles per beat
    Cycle first = bus.transfer(0, 64);  // 8 beats = 16 cycles
    EXPECT_EQ(first, 16u);
    Cycle second = bus.transfer(0, 8);
    EXPECT_EQ(second, 18u);             // waits for the first
    EXPECT_EQ(bus.transfers(), 2u);
}

TEST(Dram, OpenPageRowHitsAreFaster)
{
    DramParams p;
    Dram d(p);
    AccessResult first = d.access(0x0000, false, 0);
    Cycle miss_latency = first.done;
    AccessResult second = d.access(0x0008, false, first.done);
    Cycle hit_latency = second.done - first.done;
    EXPECT_LT(hit_latency, miss_latency);
    EXPECT_EQ(d.rowHits(), 1u);
    EXPECT_EQ(d.rowMisses(), 1u);
}

TEST(Dram, ClosedPageNeverRowHits)
{
    DramParams p;
    p.openPage = false;
    Dram d(p);
    d.access(0x0000, false, 0);
    d.access(0x0008, false, 1000);
    EXPECT_EQ(d.rowHits(), 0u);
    EXPECT_EQ(d.rowMisses(), 2u);
}

TEST(Dram, BankConflictSerializes)
{
    DramParams p;
    Dram d(p);
    // Same bank (same row even): back-to-back requests queue.
    AccessResult a = d.access(0x0000, false, 0);
    AccessResult b = d.access(0x0040, false, 0);
    EXPECT_GT(b.done, a.done);
}

TEST(Dram, FlatLatencyMode)
{
    DramParams p;
    p.flatLatency = 62;
    Dram d(p);
    AccessResult a = d.access(0x12345, false, 10);
    EXPECT_EQ(a.done, 72u);
    AccessResult b = d.access(0x9999999, false, 10);
    EXPECT_EQ(b.done, 72u);     // no bank state, no contention
}

TEST(Dram, ReorderingControllerCutsRowMissCost)
{
    DramParams p;
    Dram plain(p);
    p.reorderingController = true;
    Dram reorder(p);
    // Alternate rows in the same bank: all row misses.
    Cycle t_plain = 0, t_re = 0;
    for (int i = 0; i < 8; i++) {
        Addr a = (i % 2) ? 0x40000 : 0x0;
        t_plain = plain.access(a, false, t_plain).done;
        t_re = reorder.access(a, false, t_re).done;
    }
    EXPECT_LT(t_re, t_plain);
}

TEST(Tlb, HitHasNoCost)
{
    TlbParams p;
    Tlb tlb(p, nullptr);
    tlb.translate(0x1000, 0);
    TlbResult r = tlb.translate(0x1008, 10);
    EXPECT_FALSE(r.miss);
    EXPECT_EQ(r.extraLatency, 0u);
    EXPECT_EQ(r.pipelineStall, 0u);
}

TEST(Tlb, HardwareWalkDelaysAccessOnly)
{
    TlbParams p;
    p.hardwareWalk = true;
    Tlb tlb(p, nullptr);
    TlbResult r = tlb.translate(0x123456000ULL, 0);
    EXPECT_TRUE(r.miss);
    EXPECT_GT(r.extraLatency, 0u);
    EXPECT_EQ(r.pipelineStall, 0u);
}

TEST(Tlb, PalModeStallsPipeline)
{
    TlbParams p;
    p.hardwareWalk = false;
    p.palStallCycles = 50;
    Tlb tlb(p, nullptr);
    TlbResult r = tlb.translate(0x123456000ULL, 0);
    EXPECT_TRUE(r.miss);
    EXPECT_EQ(r.pipelineStall, 50u);
    EXPECT_EQ(r.extraLatency, 0u);
}

TEST(Tlb, ColoredMappingPreservesAdjacency)
{
    TlbParams p;
    p.pageColoring = true;
    Tlb tlb(p, nullptr);
    Addr a = tlb.translateProbe(0x140000000ULL);
    Addr b = tlb.translateProbe(0x140002000ULL);   // next 8KB page
    EXPECT_EQ(b - a, 0x2000u);
}

TEST(Tlb, ProbeHasNoSideEffects)
{
    TlbParams p;
    Tlb tlb(p, nullptr);
    tlb.translateProbe(0x98765000ULL);
    EXPECT_EQ(tlb.misses(), 0u);
    EXPECT_EQ(tlb.statGroup().get("lookups"), 0u);
}

TEST(Tlb, OffsetPreserved)
{
    TlbParams p;
    Tlb tlb(p, nullptr);
    Addr v = 0x140001234ULL;
    TlbResult r = tlb.translate(v, 0);
    EXPECT_EQ(r.paddr & 0x1FFFu, v & 0x1FFFu);
}

TEST(Hierarchy, FetchAndDataPathsWork)
{
    MemorySystemParams p = MemorySystemParams::ds10l();
    MemorySystem mem(p);
    MemAccessResult f = mem.fetchAccess(0x120000000ULL, 0);
    EXPECT_FALSE(f.l1Hit);              // cold
    MemAccessResult f2 = mem.fetchAccess(0x120000000ULL, f.done);
    EXPECT_TRUE(f2.l1Hit);
    MemAccessResult d = mem.dataAccess(0x140000000ULL, false, 0);
    EXPECT_FALSE(d.l1Hit);
    MemAccessResult d2 = mem.dataAccess(0x140000000ULL, false, d.done);
    EXPECT_TRUE(d2.l1Hit);
    EXPECT_EQ(d2.done, d.done + 3);     // 3-cycle load-to-use
}

TEST(Hierarchy, L2CatchesL1Misses)
{
    MemorySystemParams p = MemorySystemParams::ds10l();
    MemorySystem mem(p);
    // Two L1-conflicting addresses (64KB/2-way: 32KB apart same set,
    // plus a third to evict) still hit the 2MB L2 on re-access.
    Cycle t = 0;
    for (Addr a : {Addr(0x140000000ULL), Addr(0x140008000ULL),
                   Addr(0x140010000ULL)})
        t = mem.dataAccess(a, false, t).done;
    MemAccessResult r = mem.dataAccess(0x140000000ULL, false, t);
    if (!r.l1Hit)
        EXPECT_TRUE(r.l2Hit);
}

TEST(Hierarchy, ProbeMatchesAccessState)
{
    MemorySystemParams p = MemorySystemParams::ds10l();
    MemorySystem mem(p);
    EXPECT_FALSE(mem.dcacheProbe(0x140000000ULL));
    mem.dataAccess(0x140000000ULL, false, 0);
    EXPECT_TRUE(mem.dcacheProbe(0x140000000ULL));
}

TEST(Hierarchy, SharedMafIsUsedWhenConfigured)
{
    MemorySystemParams p = MemorySystemParams::ds10l();
    p.sharedMaf = true;
    p.sharedMafEntries = 2;
    MemorySystem mem(p);
    // With a 2-entry shared MAF, a burst of distinct misses from both
    // caches must still complete (delayed, not dropped).
    Cycle done = 0;
    for (int i = 0; i < 6; i++) {
        MemAccessResult r =
            mem.dataAccess(0x140000000ULL + Addr(i) * 4096, false, 0);
        done = std::max(done, r.done);
    }
    EXPECT_GT(done, 0u);
}

/**
 * @file
 * The hot-path optimizations must not change a single simulated cycle
 * (`ctest -L perf`; also run under -DSIMALPHA_SANITIZE=address and
 * =thread).
 *
 * Two equivalences are pinned:
 *  - SIMALPHA_SLOWPATH=1 (the dual-run debug mode: original per-cycle
 *    scans executed alongside the event-driven bookkeeping, with
 *    asserts that they agree) produces byte-identical stats dumps to
 *    the default fast path over a mixed micro/macro cell set;
 *  - core reuse via reset() is invisible: N runs on one reused core
 *    produce byte-identical dumps to N runs on N fresh cores.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "isa/machine.hh"
#include "runner/campaign.hh"
#include "validate/machines.hh"

using namespace simalpha;

namespace {

struct CellSpec
{
    const char *machine;
    const char *workload;
    std::uint64_t maxInsts;
};

/** A mixed micro/macro grid over every core type: detailed golden,
 *  sim-alpha, the stripped ablation, and the abstract comparator. */
const std::vector<CellSpec> &
mixedCells()
{
    static const std::vector<CellSpec> cells = {
        {"ds10l", "C-Ca", 4000},        {"ds10l", "E-D3", 4000},
        {"sim-alpha", "C-S1", 4000},    {"sim-alpha", "E-I", 4000},
        {"sim-stripped", "C-R", 4000},  {"sim-outorder", "C-O", 4000},
        {"sim-outorder", "E-D1", 4000},
    };
    return cells;
}

/** Run one cell on @p machine and render every observable: timing
 *  plus the full stats dump. */
std::string
runAndDump(Machine &machine, const CellSpec &cell)
{
    Program program;
    std::string error;
    EXPECT_TRUE(runner::buildWorkload(cell.workload, &program, &error))
        << error;
    RunResult r = machine.run(program, cell.maxInsts);
    std::ostringstream os;
    os << cell.machine << '/' << cell.workload << ": cycles="
       << r.cycles << " insts=" << r.instsCommitted
       << " finished=" << r.finished << '\n';
    machine.statGroup().dump(os);
    return os.str();
}

/** Run the whole mixed set on fresh machines, one per cell. */
std::string
runMixedSetFresh()
{
    std::string all;
    for (const CellSpec &cell : mixedCells()) {
        std::string error;
        std::unique_ptr<Machine> machine = validate::tryMakeMachine(
            cell.machine, validate::Optimization::None, &error);
        EXPECT_TRUE(machine) << error;
        all += runAndDump(*machine, cell);
    }
    return all;
}

/** Scoped SIMALPHA_SLOWPATH=1 (machines read it at run() start). */
class ScopedSlowpath
{
  public:
    ScopedSlowpath() { ::setenv("SIMALPHA_SLOWPATH", "1", 1); }
    ~ScopedSlowpath() { ::unsetenv("SIMALPHA_SLOWPATH"); }
};

} // namespace

TEST(PerfPaths, SlowpathDualRunMatchesFastPathByteForByte)
{
    std::string fast = runMixedSetFresh();
    std::string slow;
    {
        ScopedSlowpath guard;
        slow = runMixedSetFresh();
    }
    ASSERT_FALSE(fast.empty());
    EXPECT_EQ(fast, slow);
}

TEST(PerfPaths, ReusedCoreMatchesFreshCoresByteForByte)
{
    // Every machine type runs its cells twice: once on a core reused
    // across all of its cells (reset() path), once on a fresh core
    // per cell (construction path). The dumps must match bytewise —
    // including a repeat of the first cell after the core has run a
    // different workload, the hardest case for stale state.
    for (const char *name :
         {"ds10l", "sim-alpha", "sim-stripped", "sim-outorder"}) {
        std::vector<CellSpec> cells;
        for (const CellSpec &cell : mixedCells())
            if (std::string(cell.machine) == name)
                cells.push_back(cell);
        cells.push_back({name, "E-D2", 4000});
        cells.push_back(cells.front());     // revisit after reuse

        std::string error;
        std::unique_ptr<Machine> reused = validate::tryMakeMachine(
            name, validate::Optimization::None, &error);
        ASSERT_TRUE(reused) << error;

        for (const CellSpec &cell : cells) {
            std::unique_ptr<Machine> fresh = validate::tryMakeMachine(
                name, validate::Optimization::None, &error);
            ASSERT_TRUE(fresh) << error;
            EXPECT_EQ(runAndDump(*reused, cell),
                      runAndDump(*fresh, cell))
                << name << " diverged on " << cell.workload;
        }
    }
}

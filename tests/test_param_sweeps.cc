/**
 * @file
 * Parameterized property sweeps: cache geometries, DRAM parameter
 * combinations, and issue-queue capacities, checking structural
 * invariants across the whole configuration space the benches exercise.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/core.hh"
#include "memory/cache.hh"
#include "memory/dram.hh"
#include "workloads/microbench.hh"

using namespace simalpha;

// ---------------------------------------------------------------------
// Cache geometry sweep: (size KB, assoc, victim entries)
// ---------------------------------------------------------------------

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheGeometry, InvariantsHoldUnderRandomTraffic)
{
    auto [size_kb, assoc, victims] = GetParam();
    CacheParams p;
    p.name = "sweep";
    p.sizeBytes = size_kb * 1024;
    p.assoc = assoc;
    p.blockBytes = 64;
    p.hitLatency = 3;
    p.victimEntries = victims;
    Cache cache(p, nullptr);

    Random rng(std::uint64_t(size_kb * 131 + assoc * 7 + victims));
    Cycle now = 0;
    for (int i = 0; i < 4000; i++) {
        Addr addr = rng.below(256 * 1024);
        AccessResult r = cache.access(addr, rng.chance(0.25), now);
        ASSERT_GE(r.done, now);
        // Completed access => immediate re-access hits.
        AccessResult again = cache.access(addr, false, r.done);
        ASSERT_TRUE(again.hit);
        now = r.done;
    }
    EXPECT_EQ(cache.hits() + cache.misses(), 8000u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1, 1, 0),
                      std::make_tuple(4, 2, 0),
                      std::make_tuple(4, 2, 8),
                      std::make_tuple(16, 4, 4),
                      std::make_tuple(64, 2, 8),
                      std::make_tuple(8, 8, 2)));

// ---------------------------------------------------------------------
// DRAM parameter sweep: the calibration space of Section 4.2
// ---------------------------------------------------------------------

class DramSweep
    : public ::testing::TestWithParam<std::tuple<bool, int, int, int>>
{
};

TEST_P(DramSweep, LatencyIsPositiveMonotoneAndDeterministic)
{
    auto [open_page, ras, cas, pre] = GetParam();
    DramParams p;
    p.openPage = open_page;
    p.rasCycles = ras;
    p.casCycles = cas;
    p.prechargeCycles = pre;

    Dram a(p), b(p);
    Random rng(std::uint64_t(ras * 100 + cas * 10 + pre));
    Cycle ta = 0, tb = 0;
    for (int i = 0; i < 500; i++) {
        Addr addr = rng.below(1 << 24);
        AccessResult ra = a.access(addr, false, ta);
        AccessResult rb = b.access(addr, false, tb);
        ASSERT_GT(ra.done, ta);         // latency is positive
        ASSERT_EQ(ra.done, rb.done);    // deterministic
        ta = ra.done;
        tb = rb.done;
    }
    if (open_page)
        EXPECT_GT(a.rowHits() + a.rowMisses(), 0u);
    else
        EXPECT_EQ(a.rowHits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Calibration, DramSweep,
    ::testing::Combine(::testing::Bool(),           // page policy
                       ::testing::Values(2, 3),     // RAS
                       ::testing::Values(2, 4),     // CAS
                       ::testing::Values(1, 2)));   // precharge

// ---------------------------------------------------------------------
// Issue-queue capacity sweep on the full core
// ---------------------------------------------------------------------

class IqCapacity : public ::testing::TestWithParam<int>
{
  protected:
    void SetUp() override { setQuiet(true); }
};

TEST_P(IqCapacity, SmallerQueuesNeverFasterOnIlpCode)
{
    int entries = GetParam();
    AlphaCoreParams p = AlphaCoreParams::simAlpha();
    p.intIqEntries = entries;
    AlphaCore small(p);
    AlphaCore full(AlphaCoreParams::simAlpha());
    Program prog = workloads::executeDependent(4, {});
    double ipc_small = small.run(prog, 60000).ipc();
    double ipc_full = full.run(prog, 60000).ipc();
    EXPECT_LE(ipc_small, ipc_full * 1.02) << entries;
    EXPECT_GT(ipc_small, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Capacities, IqCapacity,
                         ::testing::Values(4, 8, 12, 20));

// ---------------------------------------------------------------------
// Fetch width / machine width sweep
// ---------------------------------------------------------------------

class RetireWidth : public ::testing::TestWithParam<int>
{
  protected:
    void SetUp() override { setQuiet(true); }
};

TEST_P(RetireWidth, MachineStillCommitsEverything)
{
    AlphaCoreParams p = AlphaCoreParams::simAlpha();
    p.retireWidth = GetParam();
    AlphaCore core(p);
    Program prog = workloads::controlConditionalA({});
    RunResult r = core.run(prog, 40000);
    EXPECT_GE(r.instsCommitted, 40000u);
    EXPECT_LE(r.ipc(), double(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Widths, RetireWidth,
                         ::testing::Values(1, 2, 4, 11));

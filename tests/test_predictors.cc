/**
 * @file
 * Predictor unit tests: the tournament branch predictor (learning,
 * speculative history, recovery), return address stack, BTB, 2-level
 * predictor, line predictor training/hysteresis, way predictor,
 * load-use counter, and the store-wait table.
 */

#include <gtest/gtest.h>

#include "predictors/branch.hh"
#include "predictors/frontend.hh"

using namespace simalpha;

namespace {

constexpr Addr kPc = 0x120000100ULL;

/** Train-and-measure helper: feed a repeating pattern, return accuracy
 *  over the last `measure` predictions. */
double
patternAccuracy(TournamentPredictor &pred, const std::vector<bool> &pat,
                int warmup, int measure)
{
    int correct = 0;
    for (int i = 0; i < warmup + measure; i++) {
        bool actual = pat[std::size_t(i) % pat.size()];
        BranchSnapshot snap;
        bool p = pred.predict(kPc, snap);
        if (i >= warmup && p == actual)
            correct++;
        if (p != actual)
            pred.recover(snap, actual);
        pred.update(kPc, actual, snap);
    }
    return double(correct) / measure;
}

} // namespace

TEST(Tournament, LearnsAlwaysTaken)
{
    TournamentPredictor pred(true);
    EXPECT_GT(patternAccuracy(pred, {true}, 32, 100), 0.99);
}

TEST(Tournament, LearnsAlwaysNotTaken)
{
    TournamentPredictor pred(true);
    EXPECT_GT(patternAccuracy(pred, {false}, 32, 100), 0.99);
}

TEST(Tournament, LearnsAlternatingPattern)
{
    // The local predictor's 10-bit history captures TNTN perfectly.
    TournamentPredictor pred(true);
    EXPECT_GT(patternAccuracy(pred, {true, false}, 64, 200), 0.95);
}

TEST(Tournament, LearnsPeriodFourPattern)
{
    TournamentPredictor pred(true);
    EXPECT_GT(patternAccuracy(pred, {true, true, true, false}, 128, 200),
              0.9);
}

TEST(Tournament, SnapshotRestoreIsExact)
{
    TournamentPredictor pred(true);
    // Predict several branches, snapshot at one of them, mutate, then
    // restore — the next prediction must match a clone that never
    // speculated past the snapshot.
    BranchSnapshot snaps[8];
    for (int i = 0; i < 8; i++)
        pred.predict(kPc + Addr(4 * i), snaps[i]);
    // Unwind the last five speculative shifts (youngest first).
    for (int i = 7; i >= 3; i--)
        pred.restore(snaps[i]);
    BranchSnapshot fresh;
    pred.predict(kPc + Addr(4 * 3), fresh);
    EXPECT_EQ(fresh.globalHistory, snaps[3].globalHistory);
}

TEST(Tournament, NonSpeculativeModeHoldsHistory)
{
    TournamentPredictor pred(false);
    BranchSnapshot a, b;
    pred.predict(kPc, a);
    pred.predict(kPc, b);
    // Without speculative update the history did not move between the
    // two predictions.
    EXPECT_EQ(a.globalHistory, b.globalHistory);
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras;
    ras.push(100);
    ras.push(200);
    EXPECT_EQ(ras.peek(), 200u);
    EXPECT_EQ(ras.pop(), 200u);
    EXPECT_EQ(ras.pop(), 100u);
}

TEST(Ras, SnapshotRepairsTop)
{
    ReturnAddressStack ras;
    ras.push(100);
    auto snap = ras.snapshot();
    ras.push(200);      // speculative
    ras.pop();
    ras.pop();          // speculatively destroyed the top
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 100u);
}

TEST(Ras, WrapsWithoutCrashing)
{
    ReturnAddressStack ras;
    for (int i = 0; i < 100; i++)
        ras.push(Addr(i));
    // The most recent 32 survive.
    for (int i = 99; i >= 68; i--)
        EXPECT_EQ(ras.pop(), Addr(i));
}

TEST(Ras, RecursionToOneSiteSurvivesOverflow)
{
    // All pushes carry the same return PC: even after wrapping, pops
    // keep producing the right answer (the C-R behaviour).
    ReturnAddressStack ras;
    for (int i = 0; i < 1000; i++)
        ras.push(0x1234);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(ras.pop(), 0x1234u);
}

TEST(Btb, MissThenHit)
{
    Btb btb(64, 2);
    EXPECT_EQ(btb.lookup(kPc), kNoAddr);
    btb.update(kPc, 0x5000);
    EXPECT_EQ(btb.lookup(kPc), 0x5000u);
}

TEST(Btb, LruReplacementWithinSet)
{
    Btb btb(1, 2);      // one set, two ways: third entry evicts LRU
    btb.update(4, 100);
    btb.update(8, 200);
    btb.lookup(4);      // make 4 the MRU
    btb.update(12, 300);
    EXPECT_EQ(btb.lookup(4), 100u);
    EXPECT_EQ(btb.lookup(8), kNoAddr);
    EXPECT_EQ(btb.lookup(12), 300u);
}

TEST(TwoLevel, LearnsBias)
{
    TwoLevelPredictor pred(4096, 12);
    std::uint32_t snap;
    for (int i = 0; i < 64; i++) {
        bool p = pred.predict(kPc, snap);
        if (p != true)
            pred.recover(snap, true);
        pred.update(kPc, true, snap);
    }
    bool p = pred.predict(kPc, snap);
    EXPECT_TRUE(p);
}

TEST(TwoLevel, RecoverRepairsHistory)
{
    TwoLevelPredictor pred(4096, 12);
    std::uint32_t snap1, snap2;
    pred.predict(kPc, snap1);
    pred.recover(snap1, true);
    pred.predict(kPc, snap2);
    EXPECT_EQ(snap2, ((snap1 << 1) | 1u) & 0xFFFu);
}

TEST(LinePredictor, UntrainedPredictsSequential)
{
    LinePredictor lp(1024, 1);
    EXPECT_EQ(lp.predict(0x120000000ULL), 0x120000010ULL);
    EXPECT_EQ(lp.predict(0x120000008ULL), 0x120000010ULL);
}

TEST(LinePredictor, TrainsToNewTarget)
{
    LinePredictor lp(1024, 1);
    Addr pc = 0x120000000ULL;
    // init hysteresis 1 (weak): a single mispredict retrains.
    lp.train(pc, 0x120000400ULL);
    EXPECT_EQ(lp.predict(pc), 0x120000400ULL);
}

TEST(LinePredictor, HysteresisResistsOneOff)
{
    LinePredictor lp(1024, 1);
    Addr pc = 0x120000000ULL;
    lp.train(pc, 0x120000400ULL);   // now predicting 0x400
    lp.train(pc, 0x120000400ULL);   // strengthen
    lp.train(pc, 0x120000400ULL);   // saturate
    // One disagreement only weakens; the prediction survives.
    lp.train(pc, 0x120000010ULL);
    EXPECT_EQ(lp.predict(pc), 0x120000400ULL);
    EXPECT_GT(lp.mispredicts(), 0u);
}

TEST(LinePredictor, RepeatedDisagreementRetrains)
{
    LinePredictor lp(1024, 1);
    Addr pc = 0x120000000ULL;
    for (int i = 0; i < 4; i++)
        lp.train(pc, 0x120000400ULL);
    for (int i = 0; i < 4; i++)
        lp.train(pc, 0x120000800ULL);
    EXPECT_EQ(lp.predict(pc), 0x120000800ULL);
}

TEST(WayPredictor, LearnsWay)
{
    WayPredictor wp(1024);
    Addr line = 0x120004000ULL;
    EXPECT_EQ(wp.predict(line), 0);
    wp.update(line, 1);
    EXPECT_EQ(wp.predict(line), 1);
}

TEST(LoadUse, StartsPredictingHit)
{
    LoadUsePredictor p;
    EXPECT_TRUE(p.predictHit());
}

TEST(LoadUse, MissesDecrementByTwo)
{
    LoadUsePredictor p;
    // From 15, four misses bring the counter to 7: predicts miss.
    for (int i = 0; i < 4; i++)
        p.update(false);
    EXPECT_FALSE(p.predictHit());
    EXPECT_EQ(p.counter(), 7);
}

TEST(LoadUse, HitsRecoverSlowly)
{
    LoadUsePredictor p;
    for (int i = 0; i < 8; i++)
        p.update(false);
    EXPECT_EQ(p.counter(), 0);
    for (int i = 0; i < 8; i++)
        p.update(true);
    EXPECT_TRUE(p.predictHit());
}

TEST(StoreWait, DefaultIsNoWait)
{
    StoreWaitPredictor p;
    EXPECT_FALSE(p.shouldWait(kPc, 0));
}

TEST(StoreWait, MarkedLoadWaits)
{
    StoreWaitPredictor p;
    p.markConflict(kPc);
    EXPECT_TRUE(p.shouldWait(kPc, 0));
    EXPECT_FALSE(p.shouldWait(kPc + 4, 0));
}

TEST(StoreWait, PeriodicClear)
{
    StoreWaitPredictor p(1024, 1000);
    p.markConflict(kPc);
    EXPECT_TRUE(p.shouldWait(kPc, 10));
    EXPECT_FALSE(p.shouldWait(kPc, 2000));
}

/** Property sweep: the tournament predictor must track any short
 *  periodic pattern well above chance. */
class PeriodicPattern : public ::testing::TestWithParam<int>
{
};

TEST_P(PeriodicPattern, BeatsChance)
{
    int period = GetParam();
    std::vector<bool> pat;
    for (int i = 0; i < period; i++)
        pat.push_back(i == 0);      // one taken per period
    TournamentPredictor pred(true);
    EXPECT_GT(patternAccuracy(pred, pat, 256, 400), 0.85)
        << "period " << period;
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodicPattern,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8));

/**
 * @file
 * Functional-emulator tests: architectural semantics of every opcode,
 * sparse memory behaviour, control flow, recursion, and the oracle
 * stream's buffering/rewind contract.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/oracle.hh"
#include "isa/assembler.hh"
#include "isa/emulator.hh"

using namespace simalpha;

namespace {

/** Run a program to completion; return the emulator for inspection. */
Emulator
runToHalt(const Program &p, std::uint64_t limit = 100000)
{
    Emulator emu(p);
    std::uint64_t n = 0;
    while (!emu.halted() && n++ < limit)
        emu.step();
    EXPECT_TRUE(emu.halted()) << "program did not halt";
    return emu;
}

} // namespace

TEST(SparseMemory, ZeroFilled)
{
    SparseMemory m;
    EXPECT_EQ(m.read64(0x12345678), 0u);
    EXPECT_EQ(m.read32(0xFFFF), 0u);
}

TEST(SparseMemory, RoundTrip64And32)
{
    SparseMemory m;
    m.write64(0x1000, 0x1122334455667788ULL);
    EXPECT_EQ(m.read64(0x1000), 0x1122334455667788ULL);
    EXPECT_EQ(m.read32(0x1000), 0x55667788u);
    EXPECT_EQ(m.read32(0x1004), 0x11223344u);
    m.write32(0x1004, 0xAABBCCDDu);
    EXPECT_EQ(m.read64(0x1000), 0xAABBCCDD55667788ULL);
}

TEST(SparseMemory, PageStraddle)
{
    SparseMemory m;
    // 4 KB pages: write across the boundary.
    m.write64(0xFFC, 0xDEADBEEFCAFEF00DULL);
    EXPECT_EQ(m.read64(0xFFC), 0xDEADBEEFCAFEF00DULL);
    EXPECT_GE(m.pagesTouched(), 2u);
}

TEST(Emulator, ArithmeticSemantics)
{
    ProgramBuilder b("t");
    b.lda(R(1), 10);
    b.lda(R(2), 3);
    b.addq(R(1), R(2), R(3));   // 13
    b.subq(R(1), R(2), R(4));   // 7
    b.mulq(R(1), R(2), R(5));   // 30
    b.and_(R(1), R(2), R(6));   // 2
    b.bis(R(1), R(2), R(7));    // 11
    b.xor_(R(1), R(2), R(8));   // 9
    b.halt();
    Emulator emu = runToHalt(b.finish());
    EXPECT_EQ(emu.readIntReg(3), 13u);
    EXPECT_EQ(emu.readIntReg(4), 7u);
    EXPECT_EQ(emu.readIntReg(5), 30u);
    EXPECT_EQ(emu.readIntReg(6), 2u);
    EXPECT_EQ(emu.readIntReg(7), 11u);
    EXPECT_EQ(emu.readIntReg(8), 9u);
}

TEST(Emulator, ShiftsAndCompares)
{
    ProgramBuilder b("t");
    b.lda(R(1), 1);
    b.lda(R(2), 4);
    b.sll(R(1), R(2), R(3));    // 16
    b.srl(R(3), R(1), R(4));    // 8
    b.cmpeq(R(3), R(3), R(5));  // 1
    b.cmplt(R(4), R(3), R(6));  // 8 < 16 -> 1
    b.cmple(R(3), R(4), R(7));  // 16 <= 8 -> 0
    b.halt();
    Emulator emu = runToHalt(b.finish());
    EXPECT_EQ(emu.readIntReg(3), 16u);
    EXPECT_EQ(emu.readIntReg(4), 8u);
    EXPECT_EQ(emu.readIntReg(5), 1u);
    EXPECT_EQ(emu.readIntReg(6), 1u);
    EXPECT_EQ(emu.readIntReg(7), 0u);
}

TEST(Emulator, SignedCompare)
{
    ProgramBuilder b("t");
    b.lda(R(1), -5);
    b.lda(R(2), 3);
    b.cmplt(R(1), R(2), R(3));  // -5 < 3 signed -> 1
    b.halt();
    Emulator emu = runToHalt(b.finish());
    EXPECT_EQ(emu.readIntReg(3), 1u);
}

TEST(Emulator, ConditionalMoves)
{
    ProgramBuilder b("t");
    b.lda(R(1), 0);
    b.lda(R(2), 7);
    b.lda(R(3), 100);
    b.cmoveq(R(1), R(2), R(3)); // r1==0 -> r3=7
    b.lda(R(4), 200);
    b.cmovne(R(1), R(2), R(4)); // r1!=0 false -> r4 stays
    b.halt();
    Emulator emu = runToHalt(b.finish());
    EXPECT_EQ(emu.readIntReg(3), 7u);
    EXPECT_EQ(emu.readIntReg(4), 200u);
}

TEST(Emulator, ZeroRegisterReadsZeroAndIgnoresWrites)
{
    ProgramBuilder b("t");
    b.lda(R(31), 55);               // write to r31: discarded
    b.addq(R(31), R(31), R(1));     // 0 + 0
    b.halt();
    Emulator emu = runToHalt(b.finish());
    EXPECT_EQ(emu.readIntReg(1), 0u);
    EXPECT_EQ(emu.readIntReg(31), 0u);
}

TEST(Emulator, LoadStoreRoundTrip)
{
    const Addr addr = Program::kDataBase;
    ProgramBuilder b("t");
    b.dataWord(addr, 0x123456789ABCDEF0ULL);
    b.lda(R(20), 0x14000);
    b.lda(R(11), 16);
    b.sll(R(20), R(11), R(20));     // r20 = 0x140000000
    b.ldq(R(1), 0, R(20));
    b.stq(R(1), 8, R(20));
    b.ldq(R(2), 8, R(20));
    b.ldl(R(3), 0, R(20));          // sext low 32 bits
    b.stl(R(1), 16, R(20));
    b.ldl(R(4), 16, R(20));
    b.halt();
    Emulator emu = runToHalt(b.finish());
    EXPECT_EQ(emu.readIntReg(1), 0x123456789ABCDEF0ULL);
    EXPECT_EQ(emu.readIntReg(2), 0x123456789ABCDEF0ULL);
    // 0x9ABCDEF0 sign-extends to a negative value.
    EXPECT_EQ(emu.readIntReg(3), 0xFFFFFFFF9ABCDEF0ULL);
    EXPECT_EQ(emu.readIntReg(4), 0xFFFFFFFF9ABCDEF0ULL);
}

TEST(Emulator, FloatingPoint)
{
    const Addr addr = Program::kDataBase;
    ProgramBuilder b("t");
    double three = 3.0, two = 2.0;
    RegVal three_bits, two_bits;
    static_assert(sizeof(double) == sizeof(RegVal));
    std::memcpy(&three_bits, &three, 8);
    std::memcpy(&two_bits, &two, 8);
    b.dataWord(addr, three_bits);
    b.dataWord(addr + 8, two_bits);
    b.lda(R(20), 0x14000);
    b.lda(R(11), 16);
    b.sll(R(20), R(11), R(20));
    b.ldt(F(1), 0, R(20));
    b.ldt(F(2), 8, R(20));
    b.addt(F(1), F(2), F(3));   // 5.0
    b.subt(F(1), F(2), F(4));   // 1.0
    b.mult(F(1), F(2), F(5));   // 6.0
    b.divt(F(1), F(2), F(6));   // 1.5
    b.sqrtt(F(5), F(8));        // sqrt(6)
    b.cpys(F(3), F(9));
    b.halt();
    Emulator emu = runToHalt(b.finish());
    EXPECT_DOUBLE_EQ(emu.readFpReg(3), 5.0);
    EXPECT_DOUBLE_EQ(emu.readFpReg(4), 1.0);
    EXPECT_DOUBLE_EQ(emu.readFpReg(5), 6.0);
    EXPECT_DOUBLE_EQ(emu.readFpReg(6), 1.5);
    EXPECT_NEAR(emu.readFpReg(8), 2.449489742783178, 1e-12);
    EXPECT_DOUBLE_EQ(emu.readFpReg(9), 5.0);
}

TEST(Emulator, BranchDirections)
{
    ProgramBuilder b("t");
    b.lda(R(1), 0);
    b.beq(R(1), "took");        // taken
    b.lda(R(2), 99);            // skipped
    b.label("took");
    b.lda(R(3), 1);
    b.bne(R(1), "nottaken");    // not taken
    b.lda(R(4), 2);
    b.label("nottaken");
    b.halt();
    Emulator emu = runToHalt(b.finish());
    EXPECT_EQ(emu.readIntReg(2), 0u);
    EXPECT_EQ(emu.readIntReg(3), 1u);
    EXPECT_EQ(emu.readIntReg(4), 2u);
}

TEST(Emulator, SignedBranches)
{
    ProgramBuilder b("t");
    b.lda(R(1), -1);
    b.blt(R(1), "a");
    b.lda(R(9), 1);     // skipped
    b.label("a");
    b.bgt(R(1), "b");   // not taken (-1 <= 0)
    b.lda(R(2), 5);
    b.label("b");
    b.lda(R(3), 0);
    b.bge(R(3), "c");   // taken (0 >= 0)
    b.lda(R(4), 9);     // skipped
    b.label("c");
    b.halt();
    Emulator emu = runToHalt(b.finish());
    EXPECT_EQ(emu.readIntReg(9), 0u);
    EXPECT_EQ(emu.readIntReg(2), 5u);
    EXPECT_EQ(emu.readIntReg(4), 0u);
}

TEST(Emulator, CallAndReturn)
{
    ProgramBuilder b("t");
    b.bsr(R(26), "func");
    b.lda(R(2), 2);             // executes after return
    b.halt();
    b.label("func");
    b.lda(R(1), 1);
    b.ret(R(26));
    Emulator emu = runToHalt(b.finish());
    EXPECT_EQ(emu.readIntReg(1), 1u);
    EXPECT_EQ(emu.readIntReg(2), 2u);
}

TEST(Emulator, IndirectJumpViaTable)
{
    ProgramBuilder b("t");
    const Addr table = Program::kDataBase;
    b.dataWordLabel(table, "target");
    b.lda(R(20), 0x14000);
    b.lda(R(11), 16);
    b.sll(R(20), R(11), R(20));
    b.ldq(R(21), 0, R(20));
    b.jmp(R(21));
    b.lda(R(1), 99);            // skipped
    b.label("target");
    b.lda(R(2), 42);
    b.halt();
    Emulator emu = runToHalt(b.finish());
    EXPECT_EQ(emu.readIntReg(1), 0u);
    EXPECT_EQ(emu.readIntReg(2), 42u);
}

TEST(Emulator, DeepRecursionSums)
{
    // f(n) = n + f(n-1), f(0) = 0, computed with explicit stack pushes.
    ProgramBuilder b("t");
    b.lda(R(10), 1);
    b.lda(R(29), 0x16000);
    b.lda(R(11), 16);
    b.sll(R(29), R(11), R(29));     // stack base 0x160000000
    b.lda(R(16), 100);              // n
    b.lda(R(7), 0);                 // accumulator
    b.bsr(R(26), "f");
    b.halt();
    b.label("f");
    b.beq(R(16), "base");
    b.addq(R(7), R(16), R(7));
    b.subq(R(16), R(10), R(16));
    b.lda(R(29), -16, R(29));
    b.stq(R(26), 0, R(29));
    b.bsr(R(26), "f");
    b.ldq(R(26), 0, R(29));
    b.lda(R(29), 16, R(29));
    b.label("base");
    b.ret(R(26));
    Emulator emu = runToHalt(b.finish(), 100000);
    EXPECT_EQ(emu.readIntReg(7), 5050u);
}

TEST(Emulator, ExecutedRecordsCarryMetadata)
{
    ProgramBuilder b("t");
    b.lda(R(1), 0);
    b.beq(R(1), "x");
    b.unop(1);
    b.label("x");
    b.halt();
    Program p = b.finish();
    Emulator emu(p);
    ExecutedInst i0 = emu.step();
    EXPECT_EQ(i0.seq, 0u);
    EXPECT_EQ(i0.pc, p.pcOf(0));
    EXPECT_FALSE(i0.taken);
    ExecutedInst i1 = emu.step();
    EXPECT_TRUE(i1.taken);
    EXPECT_EQ(i1.nextPc, p.pcOf(3));
    ExecutedInst i2 = emu.step();
    EXPECT_TRUE(i2.halted);
    EXPECT_TRUE(emu.halted());
}

TEST(OracleStream, DeliversInOrder)
{
    ProgramBuilder b("t");
    b.unop(4);
    b.halt();
    Program p = b.finish();
    OracleStream o(p);
    for (int i = 0; i < 5; i++) {
        EXPECT_FALSE(o.exhausted());
        EXPECT_EQ(o.next().seq, InstSeq(i));
    }
    EXPECT_TRUE(o.exhausted());
}

TEST(OracleStream, RewindReplaysBufferedRecords)
{
    ProgramBuilder b("t");
    b.lda(R(1), 1);
    b.lda(R(2), 2);
    b.lda(R(3), 3);
    b.halt();
    Program p = b.finish();
    OracleStream o(p);
    o.next();
    InstSeq second = o.next().seq;
    o.next();
    o.rewindTo(second);
    EXPECT_EQ(o.next().seq, second);
    EXPECT_EQ(o.next().seq, second + 1);
}

TEST(OracleStream, RetireTrimsBuffer)
{
    ProgramBuilder b("t");
    b.unop(10);
    b.halt();
    Program p = b.finish();
    OracleStream o(p);
    for (int i = 0; i < 6; i++)
        o.next();
    EXPECT_EQ(o.bufferedRecords(), 6u);
    o.retireBefore(4);
    EXPECT_EQ(o.bufferedRecords(), 2u);
    // Rewind is still possible within the unretired window.
    o.rewindTo(4);
    EXPECT_EQ(o.next().seq, 4u);
}

TEST(OracleStream, NextPcTracksCursor)
{
    ProgramBuilder b("t");
    b.unop(2);
    b.halt();
    Program p = b.finish();
    OracleStream o(p);
    EXPECT_EQ(o.nextPc(), p.pcOf(0));
    o.next();
    EXPECT_EQ(o.nextPc(), p.pcOf(1));
    o.rewindTo(0);
    EXPECT_EQ(o.nextPc(), p.pcOf(0));
}

/**
 * @file
 * Fault-containment suite (`ctest -L fault`): the error taxonomy, the
 * cores' forward-progress watchdog, deterministic fault injection, the
 * bounded-retry policy, and the campaign journal behind --resume.
 *
 * The headline properties, mirroring the PR acceptance criteria:
 *  - an injected panic in one cell of a --jobs 8 campaign leaves every
 *    other cell byte-identical to a fault-free run, and
 *  - a campaign interrupted mid-run and restarted with resume emits
 *    artifacts byte-identical to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/error.hh"
#include "common/logging.hh"
#include "core/core.hh"
#include "inject/inject.hh"
#include "outorder/ruu_core.hh"
#include "runner/artifacts.hh"
#include "runner/campaign.hh"
#include "runner/journal.hh"
#include "runner/runner.hh"
#include "runner/shard.hh"
#include "validate/machines.hh"

using namespace simalpha;
using namespace simalpha::runner;
using validate::Optimization;

namespace {

/** A cheap cell: capped microbenchmark on the abstract core. */
Cell
cheapCell(const std::string &workload,
          const std::string &machine = "sim-outorder")
{
    return {machine, Optimization::None, workload, 2000, 0};
}

/** n distinct cheap cells (distinct workloads, so the result cache
 *  never aliases two cells of one campaign). */
CampaignSpec
cheapSpec(std::size_t n)
{
    static const char *workloads[] = {"C-Ca", "C-Cb", "C-R",  "C-S1",
                                      "C-S2", "C-S3", "C-O",  "E-I",
                                      "E-D1", "E-D2", "E-D3", "E-D4"};
    CampaignSpec spec;
    spec.name = "fault-suite";
    for (std::size_t i = 0; i < n; i++)
        spec.cells.push_back(
            cheapCell(workloads[i % (sizeof(workloads) /
                                     sizeof(workloads[0]))]));
    return spec;
}

Program
program(const std::string &name)
{
    Program p;
    std::string error;
    EXPECT_TRUE(buildWorkload(name, &p, &error)) << error;
    return p;
}

/** The campaign minus one cell, for surviving-cell byte comparisons. */
CampaignResult
without(const CampaignResult &result, std::size_t index)
{
    CampaignResult out = result;
    out.cells.erase(out.cells.begin() + long(index));
    return out;
}

std::string
uniquePath(const std::string &stem)
{
    return testing::TempDir() + "simalpha-" + stem + "-" +
           std::to_string(::getpid()) + ".jsonl";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

} // namespace

// ---------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------

TEST(ErrorTaxonomy, PanicThrowsInvariantErrorWithLocation)
{
    try {
        panic("boom %d", 7);
        FAIL() << "panic returned";
    } catch (const InvariantError &e) {
        EXPECT_EQ(e.kind(), "invariant");
        EXPECT_FALSE(e.retryable());
        std::string what = e.what();
        EXPECT_NE(what.find("boom 7"), std::string::npos) << what;
        EXPECT_NE(what.find("test_fault"), std::string::npos) << what;
    }
}

TEST(ErrorTaxonomy, FatalThrowsConfigError)
{
    try {
        fatal("bad flag '%s'", "--frob");
        FAIL() << "fatal returned";
    } catch (const ConfigError &e) {
        EXPECT_EQ(e.kind(), "config");
        EXPECT_FALSE(e.retryable());
        EXPECT_STREQ(e.what(), "bad flag '--frob'");
    }
}

TEST(ErrorTaxonomy, SimAssertThrowsInvariantError)
{
    EXPECT_THROW({ sim_assert(2 + 2 == 5); }, InvariantError);
    EXPECT_NO_THROW({ sim_assert(2 + 2 == 4); });
}

TEST(ErrorTaxonomy, CrashAndTimeoutAreSupervisorOnlyClasses)
{
    // The process-isolation supervisor's classes: deaths it observed
    // from outside (wait status, wall-clock), never raised inside a
    // simulation — and never retryable, since the same cell would
    // take down the next worker too.
    CrashError crash("worker killed by signal 11");
    EXPECT_EQ(crash.kind(), "crash");
    EXPECT_FALSE(crash.retryable());

    TimeoutError timeout("exceeded its 60s wall-clock timeout");
    EXPECT_EQ(timeout.kind(), "timeout");
    EXPECT_FALSE(timeout.retryable());

    try {
        throw CrashError("boom");
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "crash");
    }
}

TEST(ErrorTaxonomy, ClassesAreCatchableAsSimError)
{
    try {
        throw WorkloadError("no such workload");
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "workload");
    }
    try {
        throw TransientError("disk hiccup");
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "transient");
        EXPECT_TRUE(e.retryable());
    }
}

// ---------------------------------------------------------------------
// Forward-progress watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, AlphaCoreThrowsDeadlockErrorWithSnapshot)
{
    // A watchdog shorter than the pipeline depth fires before the
    // first commit can happen — a deterministic "stopped committing"
    // scenario on the real detailed core.
    AlphaCoreParams params = AlphaCoreParams::simAlpha();
    params.watchdogCycles = 2;
    AlphaCore core(params);

    try {
        core.run(program("C-Ca"), 1000);
        FAIL() << "watchdog did not fire";
    } catch (const DeadlockError &e) {
        EXPECT_EQ(e.kind(), "deadlock");
        EXPECT_FALSE(e.retryable());
        const DeadlockInfo &info = e.info();
        EXPECT_EQ(info.machine, "sim-alpha");
        EXPECT_EQ(info.program, "C-Ca");
        EXPECT_GT(info.cycle, 2u);
        EXPECT_EQ(info.committed, 0u);
        // Nothing committed, so the last-commit marker is still at the
        // start of time and the stall span equals the firing cycle —
        // which must exceed the configured watchdog interval.
        EXPECT_EQ(info.lastCommitCycle, 0u);
        EXPECT_GE(info.cycle - info.lastCommitCycle,
                  params.watchdogCycles);
        // The snapshot carries a real fetch PC; the window is
        // genuinely empty here — a 2-cycle watchdog fires during the
        // cold I-cache fill, before anything reaches the ROB — and
        // the oldest-instruction rendering agrees with the occupancy.
        // (MidRunDeadlockSnapshotCarriesTheWindow covers the
        // populated-window case.)
        EXPECT_NE(info.fetchPc, 0u);
        EXPECT_EQ(info.windowOccupancy, 0u);
        EXPECT_TRUE(info.oldestInst.empty()) << info.oldestInst;
        EXPECT_FALSE(info.detail.empty());
        std::string what = e.what();
        EXPECT_NE(what.find("deadlocked"), std::string::npos) << what;
        EXPECT_NE(what.find("C-Ca"), std::string::npos) << what;
        // summary() renders the snapshot fields, not just the headline.
        EXPECT_NE(what.find("fetchPc=0x"), std::string::npos) << what;
        EXPECT_NE(what.find("window="), std::string::npos) << what;
    }
}

TEST(Watchdog, RuuCoreThrowsDeadlockErrorWithSnapshot)
{
    RuuCoreParams params = RuuCoreParams::simOutorder();
    params.watchdogCycles = 2;
    RuuCore core(params);

    try {
        core.run(program("C-Ca"), 1000);
        FAIL() << "watchdog did not fire";
    } catch (const DeadlockError &e) {
        const DeadlockInfo &info = e.info();
        EXPECT_EQ(info.machine, "sim-outorder");
        EXPECT_EQ(info.program, "C-Ca");
        EXPECT_GT(info.cycle, 2u);
        EXPECT_EQ(info.committed, 0u);
        EXPECT_EQ(info.lastCommitCycle, 0u);
        EXPECT_GE(info.cycle - info.lastCommitCycle,
                  params.watchdogCycles);
        EXPECT_NE(info.fetchPc, 0u);
        EXPECT_EQ(info.windowOccupancy, 0u);
        EXPECT_TRUE(info.oldestInst.empty()) << info.oldestInst;
        EXPECT_FALSE(info.detail.empty());
    }
}

TEST(Watchdog, MidRunDeadlockSnapshotCarriesTheWindow)
{
    // A genuine mid-run deadlock — the head ROB entry's completed
    // flag flipped off, so commit wedges behind it with a full window
    // — must snapshot the in-flight state: occupancy, the oldest
    // instruction's disassembly, the stalled commit point.
    for (const char *machine : {"sim-alpha", "sim-outorder"}) {
        auto m = validate::makeMachine(machine);
        inject::StateInjection flip;
        flip.target = inject::Target::Rob;
        flip.index = 0;
        flip.bit = 1;       // folds to the completed flag
        flip.cycle = 60000; // mid-run: commit is in steady state
        ASSERT_TRUE(m->armInjection(&flip, 0)) << machine;
        try {
            m->run(program("C-Ca"), 800000);
            FAIL() << machine << ": flip did not wedge commit";
        } catch (const DeadlockError &e) {
            const DeadlockInfo &info = e.info();
            EXPECT_EQ(info.machine, machine);
            EXPECT_GT(info.committed, 0u);
            // Commit stalled right at the strike...
            EXPECT_LT(info.lastCommitCycle, flip.cycle);
            EXPECT_GE(info.lastCommitCycle, flip.cycle - 10);
            // ...and the watchdog fired one full (default) interval
            // later.
            EXPECT_GE(info.cycle - info.lastCommitCycle, 100000u)
                << machine;
            EXPECT_NE(info.fetchPc, 0u);
            EXPECT_GT(info.windowOccupancy, 0u) << machine;
            EXPECT_FALSE(info.oldestInst.empty()) << machine;
            EXPECT_NE(info.oldestInst.find("pc=0x"),
                      std::string::npos)
                << info.oldestInst;
            EXPECT_FALSE(info.detail.empty());
            std::string what = e.what();
            EXPECT_NE(what.find("window="), std::string::npos) << what;
            EXPECT_NE(what.find("oldest=["), std::string::npos)
                << what;
        }
    }
}

// ---------------------------------------------------------------------
// Fault-spec grammar: <cell>:<kind>[:<times>]
// ---------------------------------------------------------------------

TEST(FaultSpec, RoundTripsEveryKind)
{
    // Exhaustive over the Kind enum: if a kind is added without a
    // table entry, the default-name fallback breaks the round-trip
    // here. Both the every-execution (times = -1, no :times suffix)
    // and explicit-times renderings are exercised.
    struct
    {
        FaultInjection::Kind kind;
        const char *name;
    } kinds[] = {
        {FaultInjection::Kind::Panic, "panic"},
        {FaultInjection::Kind::Stall, "stall"},
        {FaultInjection::Kind::Throw, "throw"},
        {FaultInjection::Kind::Abort, "abort"},
        {FaultInjection::Kind::Segfault, "segfault"},
        {FaultInjection::Kind::Hang, "hang"},
    };
    std::size_t index = 0;
    for (const auto &k : kinds) {
        for (int times : {-1, 0, 3}) {
            FaultInjection fault;
            fault.cellIndex = index++;
            fault.kind = k.kind;
            fault.times = times;

            std::string text = formatFaultSpec(fault);
            std::string expect =
                std::to_string(fault.cellIndex) + ":" + k.name;
            if (times >= 0)
                expect += ":" + std::to_string(times);
            EXPECT_EQ(text, expect);

            FaultInjection parsed;
            std::string error;
            ASSERT_TRUE(parseFaultSpec(text, &parsed, &error))
                << text << ": " << error;
            EXPECT_EQ(parsed.cellIndex, fault.cellIndex);
            EXPECT_EQ(parsed.kind, fault.kind);
            EXPECT_EQ(parsed.times, fault.times);
        }
    }
}

TEST(FaultSpec, ErrorsListTheValidKinds)
{
    // Both rejection paths — malformed spec and unknown kind — must
    // name every kind so the CLI error is self-documenting.
    const char *all[] = {"panic",    "stall",    "throw",
                         "abort",    "segfault", "hang"};
    FaultInjection fault;
    std::string error;

    EXPECT_FALSE(parseFaultSpec("bogus", &fault, &error));
    for (const char *name : all)
        EXPECT_NE(error.find(name), std::string::npos) << error;

    error.clear();
    EXPECT_FALSE(parseFaultSpec("3:meltdown", &fault, &error));
    EXPECT_NE(error.find("meltdown"), std::string::npos) << error;
    for (const char *name : all)
        EXPECT_NE(error.find(name), std::string::npos) << error;
}

TEST(FaultSpec, RejectsMalformedIndexAndTimes)
{
    FaultInjection fault;
    std::string error;
    EXPECT_FALSE(parseFaultSpec(":panic", &fault, &error));
    EXPECT_FALSE(parseFaultSpec("x:panic", &fault, &error));
    EXPECT_NE(error.find("cell index"), std::string::npos) << error;
    EXPECT_FALSE(parseFaultSpec("1:panic:", &fault, &error));
    EXPECT_FALSE(parseFaultSpec("1:panic:twice", &fault, &error));
    EXPECT_NE(error.find("times"), std::string::npos) << error;
}

TEST(Watchdog, DisabledWatchdogStillCompletesNormally)
{
    AlphaCoreParams params = AlphaCoreParams::simAlpha();
    params.watchdogCycles = 0;   // disabled: normal programs finish
    AlphaCore core(params);
    RunResult r = core.run(program("C-Ca"), 2000);
    EXPECT_GT(r.instsCommitted, 0u);
}

TEST(Watchdog, DefaultThresholdDoesNotFireOnRealWorkloads)
{
    // The shipped default must never misfire on a legitimate cell.
    AlphaCore core(AlphaCoreParams::simAlpha());
    EXPECT_EQ(core.params().watchdogCycles, 100000u);
    RunResult r = core.run(program("M-M"), 5000);
    EXPECT_GT(r.instsCommitted, 0u);
}

// ---------------------------------------------------------------------
// Fault injection + containment
// ---------------------------------------------------------------------

TEST(FaultInjectionTest, InjectedPanicIsContainedAtJobs8)
{
    CampaignSpec spec = cheapSpec(12);
    constexpr std::size_t kFaulted = 5;

    RunnerOptions faulty;
    faulty.jobs = 8;
    faulty.faults.push_back(
        {kFaulted, FaultInjection::Kind::Panic, -1});
    CampaignResult withFault = ExperimentRunner(faulty).run(spec);

    RunnerOptions clean;
    clean.jobs = 8;
    CampaignResult noFault = ExperimentRunner(clean).run(spec);

    ASSERT_EQ(withFault.cells.size(), spec.cells.size());
    EXPECT_EQ(withFault.errorCount(), 1u);
    const CellResult &failed = withFault.cells[kFaulted];
    EXPECT_FALSE(failed.ok);
    EXPECT_EQ(failed.errorClass, "invariant");
    EXPECT_NE(failed.error.find("injected panic"), std::string::npos)
        << failed.error;

    // Every surviving cell is byte-identical to the fault-free run.
    EXPECT_EQ(toJson(without(withFault, kFaulted)),
              toJson(without(noFault, kFaulted)));
}

TEST(FaultInjectionTest, InjectedStallBecomesDeadlockClass)
{
    CampaignSpec spec = cheapSpec(3);
    RunnerOptions opts;
    opts.jobs = 2;
    opts.faults.push_back({1, FaultInjection::Kind::Stall, -1});
    CampaignResult result = ExperimentRunner(opts).run(spec);

    EXPECT_TRUE(result.cells[0].ok);
    EXPECT_TRUE(result.cells[2].ok);
    const CellResult &failed = result.cells[1];
    EXPECT_FALSE(failed.ok);
    EXPECT_EQ(failed.errorClass, "deadlock");
    EXPECT_NE(failed.error.find("deadlocked"), std::string::npos)
        << failed.error;
}

TEST(FaultInjectionTest, ThrowFaultIsRetryableAndBounded)
{
    CampaignSpec spec = cheapSpec(1);

    // Fails twice, succeeds on the third execution: two retries
    // recover the cell.
    RunnerOptions recovering;
    recovering.jobs = 1;
    recovering.maxRetries = 2;
    recovering.faults.push_back({0, FaultInjection::Kind::Throw, 2});
    CampaignResult recovered = ExperimentRunner(recovering).run(spec);
    EXPECT_TRUE(recovered.cells[0].ok) << recovered.cells[0].error;
    EXPECT_EQ(recovered.cells[0].attempts, 3);

    // The same fault with a smaller budget stays failed.
    RunnerOptions exhausted;
    exhausted.jobs = 1;
    exhausted.maxRetries = 1;
    exhausted.faults.push_back({0, FaultInjection::Kind::Throw, 2});
    CampaignResult still = ExperimentRunner(exhausted).run(spec);
    EXPECT_FALSE(still.cells[0].ok);
    EXPECT_EQ(still.cells[0].errorClass, "transient");
    EXPECT_TRUE(still.cells[0].retryable);
    EXPECT_EQ(still.cells[0].attempts, 2);
}

TEST(FaultInjectionTest, DeterministicFailuresAreNeverRetried)
{
    CampaignSpec spec = cheapSpec(1);
    RunnerOptions opts;
    opts.jobs = 1;
    opts.maxRetries = 5;
    opts.faults.push_back({0, FaultInjection::Kind::Stall, -1});
    CampaignResult result = ExperimentRunner(opts).run(spec);
    EXPECT_FALSE(result.cells[0].ok);
    EXPECT_EQ(result.cells[0].errorClass, "deadlock");
    EXPECT_EQ(result.cells[0].attempts, 1);
}

TEST(FaultInjectionTest, RecoveredCellMatchesFaultFreeRunByteForByte)
{
    CampaignSpec spec = cheapSpec(4);
    RunnerOptions recovering;
    recovering.jobs = 4;
    recovering.maxRetries = 1;
    recovering.faults.push_back({2, FaultInjection::Kind::Throw, 1});
    CampaignResult recovered = ExperimentRunner(recovering).run(spec);
    RunnerOptions cleanOpts;
    cleanOpts.jobs = 4;
    CampaignResult clean = ExperimentRunner(cleanOpts).run(spec);
    EXPECT_EQ(recovered.cells[2].attempts, 2);
    EXPECT_EQ(toJson(recovered), toJson(clean));
}

// ---------------------------------------------------------------------
// Campaign journal + resume
// ---------------------------------------------------------------------

TEST(Journal, LineRoundTripsEveryField)
{
    CellResult r;
    r.cell = {"sim-alpha", Optimization::FastL1, "E-D3", 5000, 0};
    r.seed = cellSeed(r.cell);
    r.ok = false;
    r.error = "panic: \"quoted\"\twith\ncontrol\x01stuff";
    r.errorClass = "invariant";
    r.cycles = 123456;
    r.instsCommitted = 5000;
    r.finished = true;
    r.manifestHash = "0123456789abcdef";
    r.counters = {{"cycles", 123456}, {"replay_traps", 17}};

    std::string line = journalLine("camp", r);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    CellResult parsed;
    std::string key;
    ASSERT_TRUE(parseJournalLine(line, "camp", &parsed, &key));
    EXPECT_EQ(key, journalKey(r.cell));
    EXPECT_EQ(parsed.cell.machine, r.cell.machine);
    EXPECT_EQ(parsed.cell.opt, r.cell.opt);
    EXPECT_EQ(parsed.cell.workload, r.cell.workload);
    EXPECT_EQ(parsed.cell.maxInsts, r.cell.maxInsts);
    EXPECT_EQ(parsed.seed, r.seed);
    EXPECT_EQ(parsed.ok, r.ok);
    EXPECT_EQ(parsed.error, r.error);
    EXPECT_EQ(parsed.errorClass, r.errorClass);
    EXPECT_EQ(parsed.cycles, r.cycles);
    EXPECT_EQ(parsed.instsCommitted, r.instsCommitted);
    EXPECT_EQ(parsed.finished, r.finished);
    EXPECT_EQ(parsed.manifestHash, r.manifestHash);
    EXPECT_EQ(parsed.counters, r.counters);
    EXPECT_TRUE(parsed.fromJournal);

    // Wrong campaign or torn line: rejected, not misparsed.
    EXPECT_FALSE(parseJournalLine(line, "other", &parsed, &key));
    EXPECT_FALSE(parseJournalLine(line.substr(0, line.size() / 2),
                                  "camp", &parsed, &key));
}

TEST(Journal, InterruptedCampaignResumesByteIdentical)
{
    std::string path = uniquePath("resume");
    std::remove(path.c_str());
    CampaignSpec spec = cheapSpec(8);

    RunnerOptions journaling;
    journaling.jobs = 4;
    journaling.cache = false;
    journaling.journalPath = path;
    std::string uninterrupted =
        toJson(ExperimentRunner(journaling).run(spec));

    // Simulate a kill after 3 completed cells: truncate the journal.
    std::istringstream lines(readFile(path));
    std::string kept, line;
    for (int i = 0; i < 3 && std::getline(lines, line); i++)
        kept += line + "\n";
    writeFile(path, kept);

    RunnerOptions resuming = journaling;
    resuming.resume = true;
    CampaignResult restarted = ExperimentRunner(resuming).run(spec);

    std::size_t replayed = 0;
    for (const CellResult &r : restarted.cells)
        replayed += r.fromJournal;
    EXPECT_EQ(replayed, 3u);
    EXPECT_EQ(toJson(restarted), uninterrupted);

    // After the restart the journal covers the whole campaign again:
    // a second resume replays everything and still matches.
    RunnerOptions full = resuming;
    CampaignResult all = ExperimentRunner(full).run(spec);
    replayed = 0;
    for (const CellResult &r : all.cells)
        replayed += r.fromJournal;
    EXPECT_EQ(replayed, spec.cells.size());
    EXPECT_EQ(toJson(all), uninterrupted);
    std::remove(path.c_str());
}

TEST(Journal, ResumeReplaysFailedCellsFaithfully)
{
    std::string path = uniquePath("replay-failed");
    std::remove(path.c_str());
    CampaignSpec spec = cheapSpec(5);

    RunnerOptions faulty;
    faulty.jobs = 8;
    faulty.journalPath = path;
    faulty.faults.push_back({3, FaultInjection::Kind::Panic, -1});
    std::string faulted = toJson(ExperimentRunner(faulty).run(spec));

    // Resuming without the fault plan must reproduce the recorded
    // failure, not silently heal it: byte-identical artifacts.
    RunnerOptions resuming;
    resuming.jobs = 8;
    resuming.journalPath = path;
    resuming.resume = true;
    CampaignResult replayed = ExperimentRunner(resuming).run(spec);
    EXPECT_EQ(toJson(replayed), faulted);
    EXPECT_FALSE(replayed.cells[3].ok);
    EXPECT_EQ(replayed.cells[3].errorClass, "invariant");
    EXPECT_TRUE(replayed.cells[3].fromJournal);
    std::remove(path.c_str());
}

TEST(Journal, StaleManifestHashEntriesAreReExecuted)
{
    std::string path = uniquePath("stale");
    std::remove(path.c_str());
    CampaignSpec spec = cheapSpec(2);

    RunnerOptions journaling;
    journaling.jobs = 1;
    journaling.cache = false;
    journaling.journalPath = path;
    std::string clean =
        toJson(ExperimentRunner(journaling).run(spec));

    // Corrupt the first entry's manifest hash, as if the machine
    // definition changed after the journal was written.
    std::istringstream lines(readFile(path));
    std::string rewritten, line;
    bool first = true;
    while (std::getline(lines, line)) {
        if (first) {
            std::size_t at = line.find("\"manifest_hash\":\"");
            ASSERT_NE(at, std::string::npos);
            line.replace(at + 17, 4, "zzzz");   // not hex: never matches
            first = false;
        }
        rewritten += line + "\n";
    }
    writeFile(path, rewritten);

    RunnerOptions resuming = journaling;
    resuming.resume = true;
    CampaignResult result = ExperimentRunner(resuming).run(spec);
    EXPECT_FALSE(result.cells[0].fromJournal);   // re-executed
    EXPECT_TRUE(result.cells[1].fromJournal);
    EXPECT_EQ(toJson(result), clean);
    std::remove(path.c_str());
}

TEST(Journal, CancelFlagSkipsCellsWithoutJournalingThem)
{
    // The Ctrl-C path: a pre-set cancel flag means no cell starts,
    // nothing is journaled, and a later resume re-runs everything —
    // skipped cells must never masquerade as settled results.
    std::string path = uniquePath("cancel");
    std::remove(path.c_str());
    CampaignSpec spec = cheapSpec(4);

    volatile std::sig_atomic_t flag = 1;
    RunnerOptions opts;
    opts.jobs = 2;
    opts.cache = false;
    opts.journalPath = path;
    opts.cancel = &flag;
    CampaignResult cancelled = ExperimentRunner(opts).run(spec);
    for (const CellResult &r : cancelled.cells) {
        EXPECT_FALSE(r.ok);
        EXPECT_TRUE(r.error.empty());   // skipped, not failed
    }
    EXPECT_TRUE(readFile(path).empty());

    // Resuming with the flag clear runs the whole campaign normally.
    flag = 0;
    RunnerOptions resuming = opts;
    resuming.resume = true;
    CampaignResult result = ExperimentRunner(resuming).run(spec);
    EXPECT_EQ(result.okCount(), spec.cells.size());
    for (const CellResult &r : result.cells)
        EXPECT_FALSE(r.fromJournal);
    std::remove(path.c_str());
}

TEST(Journal, MissingJournalFileResumesNothing)
{
    std::string path = uniquePath("missing");
    std::remove(path.c_str());
    CampaignSpec spec = cheapSpec(2);
    RunnerOptions opts;
    opts.jobs = 1;
    opts.journalPath = path;
    opts.resume = true;
    CampaignResult result = ExperimentRunner(opts).run(spec);
    for (const CellResult &r : result.cells) {
        EXPECT_TRUE(r.ok);
        EXPECT_FALSE(r.fromJournal);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Journal durability: torn tails and fsync-per-append
// ---------------------------------------------------------------------

TEST(Journal, TornTailIsDiscardedAndThatCellReExecutes)
{
    // The tail a SIGKILLed (or power-cut) process leaves: the final
    // line cut mid-byte, no terminating newline. Resume must discard
    // exactly that entry, replay everything before it, and re-execute
    // the torn cell — never parse garbage into a "settled" result.
    std::string path = uniquePath("torn");
    std::remove(path.c_str());
    CampaignSpec spec = cheapSpec(4);

    RunnerOptions journaling;
    journaling.jobs = 1;
    journaling.cache = false;
    journaling.journalPath = path;
    std::string clean =
        toJson(ExperimentRunner(journaling).run(spec));

    std::istringstream lines(readFile(path));
    std::string kept, line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        if (n < 3)
            kept += line + "\n";
        else
            kept += line.substr(0, line.size() / 2);    // torn
        n++;
    }
    ASSERT_EQ(n, 4u);
    writeFile(path, kept);

    std::unordered_map<std::string, CellResult> replay;
    std::string error;
    ASSERT_TRUE(loadJournal(path, spec.name, &replay, &error))
        << error;
    EXPECT_EQ(replay.size(), 3u);   // the torn entry is gone

    RunnerOptions resuming = journaling;
    resuming.resume = true;
    CampaignResult result = ExperimentRunner(resuming).run(spec);
    std::size_t fromJournal = 0;
    for (const CellResult &r : result.cells)
        fromJournal += r.fromJournal;
    EXPECT_EQ(fromJournal, 3u);
    EXPECT_FALSE(result.cells[3].fromJournal);  // re-executed
    EXPECT_EQ(toJson(result), clean);
    std::remove(path.c_str());
}

TEST(Journal, SyncFlagAndEnvironmentEnableFsyncPerAppend)
{
    std::string path = uniquePath("sync");
    std::remove(path.c_str());
    CellResult r;
    r.cell = {"sim-alpha", Optimization::None, "C-R", 1000, 0};
    r.seed = cellSeed(r.cell);
    r.ok = true;
    r.manifestHash = "0123456789abcdef";

    {
        CampaignJournal j;
        std::string error;
        ASSERT_TRUE(j.open(path, &error, true)) << error;
        EXPECT_TRUE(j.syncing());
        j.append("camp", r);
        j.appendRaw(journalLine("camp", r));
    }
    std::unordered_map<std::string, CellResult> replay;
    std::string error;
    ASSERT_TRUE(loadJournal(path, "camp", &replay, &error)) << error;
    EXPECT_EQ(replay.size(), 1u);   // same cell, newest wins
    std::remove(path.c_str());

    // SIMALPHA_JOURNAL_SYNC=1 forces syncing on without any flag.
    EXPECT_FALSE(journalSyncFromEnv());
    ::setenv("SIMALPHA_JOURNAL_SYNC", "1", 1);
    EXPECT_TRUE(journalSyncFromEnv());
    {
        CampaignJournal j;
        ASSERT_TRUE(j.open(path, &error, false)) << error;
        EXPECT_TRUE(j.syncing());
    }
    ::unsetenv("SIMALPHA_JOURNAL_SYNC");
    EXPECT_FALSE(journalSyncFromEnv());
    std::remove(path.c_str());
}
